// Package repro's root-level benchmarks expose the experiment suite
// E1–E13 (DESIGN.md §4) as testing.B targets — one per reproduced
// artifact or claim of the paper. Each benchmark runs the corresponding
// experiment at a reduced scale per iteration and reports its headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every table of EXPERIMENTS.md in miniature. Run
// cmd/threev-bench for the full-size tables.
package repro

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/workload"
)

// benchScale keeps per-iteration work small enough for repeated
// iterations on one core.
var benchScale = experiments.Scale{Txns: 120}

// BenchmarkE1_Table1Replay replays the paper's Table 1 execution
// (deterministic, scripted) once per iteration.
func BenchmarkE1_Table1Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1Table1()
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("replay failed:\n%s", res.String())
		}
	}
}

// BenchmarkE3_AnomalyRate measures the hospital anomaly rate for 3V and
// the baselines (3V must be zero).
func BenchmarkE3_AnomalyRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3AnomalyRate(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_VersionBound checks the ≤3 live versions bound under
// aggressive advancement.
func BenchmarkE4_VersionBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4VersionBound(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_AdvancementInterference compares user latency under
// continuous advancement across 3V, SyncAdv and Global2PC.
func BenchmarkE5_AdvancementInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5AdvancementInterference(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_NonCommutingFraction sweeps the NC3V non-commuting share.
func BenchmarkE6_NonCommutingFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6NonCommutingFraction(experiments.Scale{Txns: 80}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_QuiescenceDetection measures Phase 2 termination
// detection cost.
func BenchmarkE7_QuiescenceDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7QuiescenceDetection(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_CopyOverhead compares 3V copy-on-update against the
// copy-per-update schemes of Section 7.
func BenchmarkE8_CopyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8CopyOverhead(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_ThroughputScaling compares throughput vs message latency
// for 3V, NoCoord and Global2PC.
func BenchmarkE9_ThroughputScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9ThroughputScaling(experiments.Scale{Txns: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Compensation sweeps abort rates through compensation.
func BenchmarkE10_Compensation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10Compensation(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_Staleness measures read staleness vs advancement period.
func BenchmarkE11_Staleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E11Staleness(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_CommutingUpdateTxn measures the end-to-end cost of one
// two-node commuting update transaction on an otherwise idle 3V cluster
// — the protocol's fast path (no locks, no coordination).
func BenchmarkMicro_CommutingUpdateTxn(b *testing.B) {
	c, err := core.NewCluster(core.Config{Nodes: 3})
	if err != nil {
		b.Fatal(err)
	}
	rec := model.NewRecord()
	c.Preload(0, "x", rec.Clone())
	c.Preload(1, "y", rec.Clone())
	c.Start()
	defer c.Close()
	spec := &model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{{Key: "x", Op: model.AddOp{Field: "v", Delta: 1}}},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{{Key: "y", Op: model.AddOp{Field: "v", Delta: 1}}}},
		},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !h.WaitTimeout(10 * time.Second) {
			b.Fatal("txn timed out")
		}
	}
}

// BenchmarkMicro_ReadOnlyTxn measures one two-node read-only
// transaction (never delayed, never locked).
func BenchmarkMicro_ReadOnlyTxn(b *testing.B) {
	c, err := core.NewCluster(core.Config{Nodes: 3})
	if err != nil {
		b.Fatal(err)
	}
	rec := model.NewRecord()
	c.Preload(0, "x", rec.Clone())
	c.Preload(1, "y", rec.Clone())
	c.Start()
	defer c.Close()
	spec := &model.TxnSpec{Root: &model.SubtxnSpec{
		Node:     0,
		Reads:    []string{"x"},
		Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"y"}}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !h.WaitTimeout(10 * time.Second) {
			b.Fatal("txn timed out")
		}
	}
}

// BenchmarkMicro_Advancement measures one full four-phase version
// advancement cycle on an idle cluster (its cost is pure protocol
// overhead; user transactions never wait for it).
func BenchmarkMicro_Advancement(b *testing.B) {
	c, err := core.NewCluster(core.Config{Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	rec := model.NewRecord()
	for i := 0; i < 4; i++ {
		c.Preload(model.NodeID(i), "k", rec.Clone())
	}
	c.Start()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance()
	}
}

// BenchmarkMicro_ThroughputLoaded measures sustained mixed-workload
// throughput with continuous advancement, reporting txn/s.
func BenchmarkMicro_ThroughputLoaded(b *testing.B) {
	benchThroughputLoaded(b, false)
}

// BenchmarkMicro_ThroughputLoadedNoObs is the same workload with the
// observability layer disabled; the txn/s delta against
// BenchmarkMicro_ThroughputLoaded is the instrumentation overhead.
func BenchmarkMicro_ThroughputLoadedNoObs(b *testing.B) {
	benchThroughputLoaded(b, true)
}

func benchThroughputLoaded(b *testing.B, disableObs bool) {
	for i := 0; i < b.N; i++ {
		c, err := core.NewCluster(core.Config{Nodes: 4, DisableObs: disableObs,
			NetConfig: transport.Config{Jitter: 100 * time.Microsecond, Seed: 7}})
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		sys := baseline.ThreeV{Cluster: c}
		gen := workload.New(workload.Config{Nodes: 4, Groups: 64, Span: 2, ReadFraction: 0.2, Seed: 9})
		res := harness.Run(sys, harness.RunConfig{
			Txns:            300,
			Concurrency:     8,
			AdvanceInterval: 2 * time.Millisecond,
			Gen:             gen,
			Preload: func(n model.NodeID, k string) {
				rec := model.NewRecord()
				c.Preload(n, k, rec)
			},
		})
		c.Close()
		b.ReportMetric(res.Throughput(), "txn/s")
		if res.Anomalies > 0 {
			b.Fatalf("%d anomalies", res.Anomalies)
		}
	}
}

// BenchmarkE12_DualWriteOverhead measures the dual-write rate ablation.
func BenchmarkE12_DualWriteOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12DualWriteOverhead(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13_RecoveryCost measures coordinator crash recovery.
func BenchmarkE13_RecoveryCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E13RecoveryCost(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}
