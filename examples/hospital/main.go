// Hospital: the paper's Figure 1 scenario at load. Multiple departments
// record charges for shared patients while the front desk answers
// balance inquiries; an auditor verifies that no inquiry ever observes
// a partial visit (the anomaly that motivates the paper), even with an
// aggressively jittered network and continuous version advancement.
//
// Run with:
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/verify"
	"repro/threev"
)

const (
	departments = 4   // one database node per department
	patients    = 32  // each patient has a record in two departments
	visits      = 300 // update transactions
	inquiries   = 100 // read transactions
)

func patientKey(p int) string { return fmt.Sprintf("patient-%02d", p) }

// homes returns the two departments holding patient p's records.
func homes(p int) (threev.NodeID, threev.NodeID) {
	a := threev.NodeID(p % departments)
	return a, threev.NodeID((p + 1) % departments)
}

func main() {
	db, err := threev.Open(threev.Config{
		Nodes:         departments,
		NetworkJitter: 2 * time.Millisecond, // force heavy reordering
		Seed:          1997,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for p := 0; p < patients; p++ {
		a, b := homes(p)
		db.Preload(a, patientKey(p), map[string]int64{"due": 0})
		db.Preload(b, patientKey(p), map[string]int64{"due": 0})
	}

	// Advance versions every few milliseconds — the "Desired Solution"
	// cadence, impossible with manual monthly versioning.
	db.StartAutoAdvance(3 * time.Millisecond)

	rng := rand.New(rand.NewSource(7))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var audited []verify.GroupRead
	anomalies := 0

	// Visits: each writes one tagged tuple per department plus the
	// balance increment — commuting, so no coordination happens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 0; v < visits; v++ {
			p := rng.Intn(patients)
			a, b := homes(p)
			charge := int64(rng.Intn(300) + 20)
			writer := model.MakeTxnID(model.NodeID(1<<15), uint64(v+1))
			visit := threev.At(a).
				Insert(patientKey(p), threev.Tuple{Txn: writer, Part: 1, Total: 2, Attr: "charge", Amount: charge}).
				Add(patientKey(p), "due", charge).
				Child(threev.At(b).
					Insert(patientKey(p), threev.Tuple{Txn: writer, Part: 2, Total: 2, Attr: "charge", Amount: charge}).
					Add(patientKey(p), "due", charge)).
				Update()
			h, err := db.Submit(visit)
			if err != nil {
				log.Fatal(err)
			}
			if v%4 == 0 {
				h.Wait() // mix awaited and fire-and-forget submissions
			}
		}
	}()

	// Inquiries: read both of a patient's records; audit atomic
	// visibility of every visit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < inquiries; i++ {
			p := rng.Intn(patients)
			a, b := homes(p)
			q, err := db.Submit(threev.At(a).Read(patientKey(p)).
				Child(threev.At(b).Read(patientKey(p))).Query())
			if err != nil {
				log.Fatal(err)
			}
			q.Wait()
			gr := verify.GroupRead{Txn: q.ID, Results: q.Reads()}
			mu.Lock()
			audited = append(audited, gr)
			mu.Unlock()
		}
	}()

	wg.Wait()
	db.StopAutoAdvance()
	db.Advance() // publish everything

	anoms := verify.AuditAtomicVisibility(audited)
	anomalies = len(anoms)

	fmt.Printf("recorded %d visits, answered %d inquiries across %d departments\n",
		visits, inquiries, departments)
	fmt.Printf("advancement cycles during load: %d\n", len(db.AdvanceHistory()))
	fmt.Printf("partial-visit anomalies observed: %d (3V guarantees 0)\n", anomalies)
	fmt.Printf("max live versions of any record: %d (paper bound: 3)\n", db.MaxLiveVersions())

	if anomalies > 0 {
		for _, a := range anoms {
			fmt.Println("  ", a)
		}
		log.Fatal("anomaly detected — protocol bug")
	}
	if v := db.Violations(); v != nil {
		log.Fatal("protocol violations: ", v)
	}
	fmt.Println("all inquiries were globally consistent.")
}
