// Call recording: the Section 6 data recording system. A telephone
// network records calls at high rate — each call inserts a call-detail
// tuple and bumps usage summaries on the two switches it traverses —
// while billing inquiries read consistent snapshots and the operator
// tunes how fresh those snapshots are by choosing the advancement
// period (the paper's "Desired Solution": advance every hour, every N
// transactions, or on demand).
//
// Run with:
//
//	go run ./examples/callrecording
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/threev"
)

const (
	switches = 5
	accounts = 64
	calls    = 1500
)

func accountKey(a int) string { return fmt.Sprintf("acct-%03d", a) }

func main() {
	db, err := threev.Open(threev.Config{
		Nodes:         switches,
		NetworkJitter: 300 * time.Microsecond,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for a := 0; a < accounts; a++ {
		db.Preload(threev.NodeID(a%switches), accountKey(a), map[string]int64{"seconds": 0, "calls": 0})
		db.Preload(threev.NodeID((a+1)%switches), accountKey(a), map[string]int64{"seconds": 0, "calls": 0})
	}

	rng := rand.New(rand.NewSource(1))
	start := time.Now()

	// Phase 1: record calls with a fast advancement cadence and measure
	// how fresh billing reads are.
	db.StartAutoAdvance(2 * time.Millisecond)
	var handles []*threev.Handle
	for c := 0; c < calls; c++ {
		a := rng.Intn(accounts)
		origin := threev.NodeID(a % switches)
		terminus := threev.NodeID((a + 1) % switches)
		dur := int64(rng.Intn(600) + 10)
		call := threev.At(origin).
			Add(accountKey(a), "seconds", dur).
			Add(accountKey(a), "calls", 1).
			Child(threev.At(terminus).
				Add(accountKey(a), "seconds", dur).
				Add(accountKey(a), "calls", 1)).
			Update()
		h, err := db.Submit(call)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	rate := float64(calls) / time.Since(start).Seconds()
	db.StopAutoAdvance()
	db.Advance()

	// Billing inquiry: the two copies of an account must agree exactly
	// — each call updated both or neither in the published version.
	mismatches := 0
	var totalCalls int64
	for a := 0; a < accounts; a++ {
		origin := threev.NodeID(a % switches)
		terminus := threev.NodeID((a + 1) % switches)
		q, err := db.Submit(threev.At(origin).Read(accountKey(a)).
			Child(threev.At(terminus).Read(accountKey(a))).Query())
		if err != nil {
			log.Fatal(err)
		}
		q.Wait()
		reads := q.Reads()
		if len(reads) != 2 {
			log.Fatalf("inquiry returned %d records", len(reads))
		}
		if reads[0].Record.Field("seconds") != reads[1].Record.Field("seconds") ||
			reads[0].Record.Field("calls") != reads[1].Record.Field("calls") {
			mismatches++
		}
		totalCalls += reads[0].Record.Field("calls")
	}

	fmt.Printf("recorded %d calls across %d switches at %.0f calls/s (simulated network)\n",
		calls, switches, rate)
	fmt.Printf("advancement cycles: %d; per-cycle phases are asynchronous with recording\n",
		len(db.AdvanceHistory()))
	fmt.Printf("billing audit: %d/%d accounts consistent across switches, %d total calls billed\n",
		accounts-mismatches, accounts, totalCalls)
	fmt.Printf("max live versions: %d\n", db.MaxLiveVersions())

	if mismatches > 0 || totalCalls != int64(calls) {
		log.Fatalf("billing audit failed: mismatches=%d billed=%d want=%d", mismatches, totalCalls, calls)
	}
	if v := db.Violations(); v != nil {
		log.Fatal("protocol violations: ", v)
	}
	fmt.Println("every call is billed exactly once on both switches.")
}
