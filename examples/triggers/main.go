// Triggers: the paper's "Desired Solution" (§1) asks for automated
// version advancement "every hour, or once a certain number of update
// transactions have accumulated, or when the difference in value of
// data items in different versions exceeds some threshold, or after a
// particular update transaction commits." This example wires all four
// policies against a live workload and shows readers catching up as
// each trigger fires.
//
// Run with:
//
//	go run ./examples/triggers
package main

import (
	"fmt"
	"log"
	"time"

	"repro/threev"
)

func main() {
	db, err := threev.Open(threev.Config{Nodes: 2, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Preload(0, "meter", map[string]int64{"kwh": 0})
	db.Preload(1, "meter", map[string]int64{"kwh": 0})

	record := func(n int) {
		for i := 0; i < n; i++ {
			h, err := db.Submit(threev.At(0).Add("meter", "kwh", 3).
				Child(threev.At(1).Add("meter", "kwh", 3)).Update())
			if err != nil {
				log.Fatal(err)
			}
			h.Wait()
		}
	}
	readKwh := func() int64 {
		q, err := db.Submit(threev.At(0).Read("meter").Query())
		if err != nil {
			log.Fatal(err)
		}
		q.Wait()
		return q.Reads()[0].Record.Field("kwh")
	}
	waitFresh := func(want int64, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for readKwh() != want {
			if time.Now().After(deadline) {
				log.Fatalf("%s: readers stuck at %d, want %d", what, readKwh(), want)
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("%-38s readers now see kwh=%d (advancements so far: %d)\n",
			what, readKwh(), len(db.AdvanceHistory()))
	}

	// Policy 1: "once a certain number of update transactions have
	// accumulated" — every 10 commits.
	db.StartPolicy(time.Millisecond, threev.EveryNUpdates(10))
	record(10)
	waitFresh(30, "EveryNUpdates(10):")
	db.StopPolicy()

	// Policy 2: "when the difference in value ... exceeds some
	// threshold" — advance once readers are more than 50 kWh behind.
	db.StartPolicy(time.Millisecond, threev.DivergenceAbove("kwh", 50))
	record(10) // 10 × 3 kWh × 2 copies = 60 divergence > 50
	waitFresh(60, "DivergenceAbove(kwh, 50):")
	db.StopPolicy()

	// Policy 3: combined — whichever fires first.
	db.StartPolicy(time.Millisecond, threev.AnyOf(
		threev.EveryNUpdates(100),
		threev.PendingItemsAbove(0),
	))
	record(1)
	waitFresh(63, "AnyOf(EveryNUpdates, PendingItems):")
	db.StopPolicy()

	// Policy 4: "after a particular update transaction commits" —
	// an explicit Advance after a closing entry.
	h, err := db.Submit(threev.At(0).Add("meter", "kwh", 100).
		Child(threev.At(1).Add("meter", "kwh", 100)).Update())
	if err != nil {
		log.Fatal(err)
	}
	h.Wait()
	db.Advance()
	waitFresh(163, "Advance after specific txn:")

	if v := db.Violations(); v != nil {
		log.Fatal("protocol violations: ", v)
	}
	fmt.Printf("total advancement cycles: %d; max live versions: %d\n",
		len(db.AdvanceHistory()), db.MaxLiveVersions())
}
