// Quickstart: a three-node 3V database, one commuting multi-node
// update, one version advancement, one globally consistent read.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/threev"
)

func main() {
	// Three database nodes; jitter-free network for a deterministic demo.
	db, err := threev.Open(threev.Config{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Fragment the data: the same patient has a record in two
	// departments' databases.
	db.Preload(0, "patient-7", map[string]int64{"due": 0})
	db.Preload(1, "patient-7", map[string]int64{"due": 0})

	// One hospital visit = one global update transaction: the front end
	// (node 2) fans out commuting increments to both departments. No
	// locks, no global commit — the updates commute.
	visit := threev.At(2).
		Child(threev.At(0).Add("patient-7", "due", 120)). // radiology
		Child(threev.At(1).Add("patient-7", "due", 80)).  // pediatrics
		Update()
	h, err := db.Submit(visit)
	if err != nil {
		log.Fatal(err)
	}
	h.Wait()
	fmt.Println("visit recorded:", h.Status())

	// Before advancement, reads use version 0 and see the pre-visit
	// balance — never a partial visit.
	before, _ := db.Submit(threev.At(0).Read("patient-7").
		Child(threev.At(1).Read("patient-7")).Query())
	before.Wait()
	sum := int64(0)
	for _, r := range before.Reads() {
		sum += r.Record.Field("due")
	}
	fmt.Println("balance before advancement:", sum) // 0

	// Advance versions: completely asynchronous with user transactions.
	rep := db.Advance()
	fmt.Printf("advanced to read version %d (%.2fms, %d+%d counter sweeps)\n",
		rep.NewVR, float64(rep.Total.Microseconds())/1000, rep.SweepsPhase2, rep.SweepsPhase4)

	// Now the whole visit is visible — atomically.
	after, _ := db.Submit(threev.At(0).Read("patient-7").
		Child(threev.At(1).Read("patient-7")).Query())
	after.Wait()
	sum = 0
	for _, r := range after.Reads() {
		fmt.Printf("  node %v: due=%d (version %d)\n", r.Node, r.Record.Field("due"), r.VersionRead)
		sum += r.Record.Field("due")
	}
	fmt.Println("balance after advancement:", sum) // 200

	if v := db.Violations(); v != nil {
		log.Fatal("protocol violations:", v)
	}
	fmt.Println("max live versions of any item:", db.MaxLiveVersions(), "(paper bound: 3)")
}
