// Point of sale: inventory recording with occasional NON-commuting
// administrative updates (Section 5, the NC3V extension). Sales are
// commuting (decrement stock, increment revenue, append a sale tuple)
// and run with zero coordination; price overrides are absolute Sets
// that do not commute, so they take non-commuting locks and a global
// two-phase commit — and the system stays serializable throughout.
//
// Run with:
//
//	go run ./examples/pointofsale
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/threev"
)

const (
	stores = 3
	items  = 24
	sales  = 600
)

func itemKey(i int) string { return fmt.Sprintf("sku-%03d", i) }

// stockedAt returns the two stores carrying the item.
func stockedAt(i int) (threev.NodeID, threev.NodeID) {
	return threev.NodeID(i % stores), threev.NodeID((i + 1) % stores)
}

func main() {
	db, err := threev.Open(threev.Config{
		Nodes:         stores,
		NonCommuting:  true, // enable NC3V
		LockWait:      2 * time.Second,
		NetworkJitter: 300 * time.Microsecond,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < items; i++ {
		a, b := stockedAt(i)
		db.Preload(a, itemKey(i), map[string]int64{"sold": 0, "revenue": 0, "price": 100})
		db.Preload(b, itemKey(i), map[string]int64{"sold": 0, "revenue": 0, "price": 100})
	}
	db.StartAutoAdvance(4 * time.Millisecond)

	rng := rand.New(rand.NewSource(9))
	var saleHandles []*threev.Handle
	overrides := 0
	for s := 0; s < sales; s++ {
		i := rng.Intn(items)
		a, b := stockedAt(i)
		if s%75 == 37 {
			// A price override: a non-commuting Set on both copies,
			// executed under NC3V (2PL + two-phase commit).
			newPrice := int64(rng.Intn(150) + 50)
			h, err := db.Submit(threev.At(a).
				Set(itemKey(i), "price", newPrice).
				Child(threev.At(b).Set(itemKey(i), "price", newPrice)).
				NonCommuting())
			if err != nil {
				log.Fatal(err)
			}
			h.Wait()
			if h.Status() == threev.StatusCommitted {
				overrides++
			}
			continue
		}
		// A sale: commuting increments on both stores' copies.
		h, err := db.Submit(threev.At(a).
			Add(itemKey(i), "sold", 1).
			Add(itemKey(i), "revenue", 100).
			Child(threev.At(b).
				Add(itemKey(i), "sold", 1).
				Add(itemKey(i), "revenue", 100)).
			Update())
		if err != nil {
			log.Fatal(err)
		}
		saleHandles = append(saleHandles, h)
	}
	for _, h := range saleHandles {
		h.Wait()
	}
	db.StopAutoAdvance()
	db.Advance()

	// Audit: both copies of every item agree on sold/revenue/price.
	mismatch := 0
	var sold int64
	for i := 0; i < items; i++ {
		a, b := stockedAt(i)
		q, err := db.Submit(threev.At(a).Read(itemKey(i)).
			Child(threev.At(b).Read(itemKey(i))).Query())
		if err != nil {
			log.Fatal(err)
		}
		q.Wait()
		r := q.Reads()
		if len(r) != 2 {
			log.Fatalf("audit read returned %d records", len(r))
		}
		for _, f := range []string{"sold", "revenue", "price"} {
			if r[0].Record.Field(f) != r[1].Record.Field(f) {
				mismatch++
				fmt.Printf("  mismatch on %s.%s: %d vs %d\n", itemKey(i), f,
					r[0].Record.Field(f), r[1].Record.Field(f))
			}
		}
		sold += r[0].Record.Field("sold")
	}

	fmt.Printf("processed %d sales and %d committed price overrides across %d stores\n",
		len(saleHandles), overrides, stores)
	fmt.Printf("inventory audit: %d field mismatches (want 0); %d units sold\n", mismatch, sold)
	fmt.Printf("advancements: %d; max live versions: %d\n",
		len(db.AdvanceHistory()), db.MaxLiveVersions())
	if mismatch > 0 {
		log.Fatal("audit failed")
	}
	if sold != int64(len(saleHandles)) {
		log.Fatalf("sold %d, want %d", sold, len(saleHandles))
	}
	if v := db.Violations(); v != nil {
		log.Fatal("protocol violations: ", v)
	}
	fmt.Println("commuting sales ran lock-free; non-commuting overrides serialized via NC3V.")
}
