// Command threev-bench runs the reproduction's experiment suite E1–E13
// (see DESIGN.md §4) and prints the result tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	threev-bench [-txns N] [-only E5,E9]
//
// -txns scales every experiment's transaction count; -only restricts
// the run to a comma-separated list of experiment ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	txns := flag.Int("txns", experiments.DefaultScale.Txns, "base transaction count per experiment run")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E9); empty = all")
	flag.Parse()

	sc := experiments.Scale{Txns: *txns}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	failures := 0
	start := time.Now()

	if want("E1") || want("E2") {
		fmt.Println("== E1/E2: Table 1 + Figure 2 replay ==")
		res, err := experiments.E1Table1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "E1 error:", err)
			failures++
		} else {
			fmt.Print(res.String())
			if !res.OK() {
				failures++
			}
		}
		fmt.Println()
	}

	type exp struct {
		id  string
		run func(experiments.Scale) (*harness.Table, error)
	}
	for _, e := range []exp{
		{"E3", experiments.E3AnomalyRate},
		{"E4", experiments.E4VersionBound},
		{"E5", experiments.E5AdvancementInterference},
		{"E6", experiments.E6NonCommutingFraction},
		{"E7", experiments.E7QuiescenceDetection},
		{"E8", experiments.E8CopyOverhead},
		{"E9", experiments.E9ThroughputScaling},
		{"E10", experiments.E10Compensation},
		{"E11", experiments.E11Staleness},
		{"E12", experiments.E12DualWriteOverhead},
		{"E13", experiments.E13RecoveryCost},
	} {
		if !want(e.id) {
			continue
		}
		tbl, err := e.run(sc)
		if tbl != nil {
			fmt.Println(tbl.String())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failures++
		}
	}

	fmt.Printf("suite completed in %v; %d failures\n", time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
