// Command threev-bench runs the reproduction's experiment suite E1–E13
// (see DESIGN.md §4) and prints the result tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	threev-bench [-txns N] [-only E5,E9] [-json FILE] [-out BENCH_0.json]
//	             [-transport mem|tcp]
//	             [-pprof :6060] [-cpuprofile FILE] [-memprofile FILE]
//
// -txns scales every experiment's transaction count; -only restricts
// the run to a comma-separated list of experiment ids.
//
// -transport selects the calibration run's network: "mem" (default)
// is the in-memory transport; "tcp" routes every protocol message —
// including self-sends — through the binary wire codec and a real
// loopback TCP socket (tcpnet in ForceTCP mode), measuring the full
// serialization + kernel networking overhead. The mem-vs-tcp delta is
// the "Wire overhead" section of EXPERIMENTS.md. -json writes a
// machine-readable report ("-" = stdout) with each experiment's
// pass/fail plus a calibration run of a loaded 3V cluster capturing
// throughput and the observability snapshot (latency quantiles,
// advancement phase times).
//
// -out FILE writes a small benchmark snapshot (headline throughput and
// latency quantiles of the calibration run) to FILE — the tracked
// baseline format committed as BENCH_<n>.json at the repo root so perf
// regressions show up in review. With -out and no -only, the
// experiment suite is skipped and only the calibration run executes.
//
// -wal MODE replaces the calibration run with the durability topology:
// three single-node clusters in one process connected over loopback
// TCP (the cmd/threev-node wiring), each journaling to a write-ahead
// log in a temporary directory. MODE is the fsync policy — always,
// interval, or never — or "none" for the identical topology without a
// WAL, the baseline the other modes are compared against. The
// none/never/interval/always sweep is the "WAL overhead" section of
// EXPERIMENTS.md.
//
// -failover enables coordinator failover on the calibration run: every
// node hosts a standby FailoverManager, the active coordinator
// heartbeats its term and versions each lease interval, and every
// protocol message carries a fencing term. No takeover happens — the
// coordinator stays healthy — so the measurement is the pure cost of
// the failover machinery on the hot path. The on/off delta is the
// "Failover cost" section of EXPERIMENTS.md (BENCH_3.json).
//
// -batch N turns on the batched hot path for the calibration run and
// groups N client submissions per launch: the mem transport coalesces
// each link's sends into one flush envelope (tcp mode writes batched
// wire frames instead), node workers drain admission chunks under one
// WAL barrier, the coordinator's quiescence sweeps use one batched
// counter request/reply per node, and the harness submits N-txn groups
// through Cluster.SubmitBatch. -per-batch-latency charges the mem
// transport's simulated latency + jitter once per flushed envelope
// instead of once per message — the jitter ablation of the
// EXPERIMENTS.md batching section. -assert-batched fails the run
// unless the observed mean batch size exceeds 1, proving the batched
// path actually carried the load (the CI smoke uses it).
//
// -partitions P runs the calibration with the keyspace split into P
// independently-advancing partitions, and -skew S biases the workload's
// group selection (P(g) ∝ (g+1)^-S) so a few partitions run hot. Every
// per-partition sweep samples the advancement histogram, making the
// advance quantiles per-partition sweep latencies; the run fails unless
// the per-partition convergence/balance audit passes. The P=1-vs-P=4
// delta under skew is the "Partitioned advancement" section of
// EXPERIMENTS.md (BENCH_5.json).
//
// -replicate enables per-partition replica groups on the calibration
// run: every partition primary streams its applied commuting updates
// to the other owners over the reliable session layer (so -reliable is
// required), and backups apply them idempotently. The replicated run
// against its -reliable-only twin is the "Replication overhead"
// ablation of EXPERIMENTS.md (BENCH_6.json).
//
// -gogc N sets the garbage collector's target percentage for the
// process (runtime/debug.SetGCPercent). On a single-core host the
// default target of 100 triggers a concurrent mark for every doubling
// of the live store, and at batched throughputs roughly half of every
// run executes inside a mark phase — the dominant update-p99
// contributor. Snapshots taken with -gogc record the value in the
// JSON so baselines stay honest about their GC configuration.
//
// -pprof/-cpuprofile/-memprofile enable the standard Go profilers
// (package profiling) for hunting hot-path regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
	"repro/internal/transport/tcpnet"
	"repro/internal/verify"
	"repro/internal/wal"
	"repro/internal/workload"
)

// report is the -json output shape.
type report struct {
	Txns        int             `json:"txns"`
	Experiments []expResult     `json:"experiments"`
	Failures    int             `json:"failures"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Calibration *calibrationRun `json:"calibration,omitempty"`
}

type expResult struct {
	ID    string `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// benchSnapshot is the -out format: the headline end-to-end numbers of
// one calibration run, small and stable enough to commit as the
// tracked BENCH_<n>.json baseline. Latencies are milliseconds. The
// stage fields appear only when the run traced (-trace-sample > 0).
type benchSnapshot struct {
	Txns      int  `json:"txns"`
	Completed int  `json:"completed"`
	Failover  bool `json:"failover,omitempty"`
	// Reliable and Replicate record a replica-group run: the reliable
	// session layer (which the replication stream rides) and the
	// per-partition primary→backup streaming itself.
	Reliable  bool `json:"reliable,omitempty"`
	Replicate bool `json:"replicate,omitempty"`
	// Batch is the group-submit size of a batched-mode run, and
	// MeanBatchSize the observed mean messages per net flush envelope.
	Batch         int     `json:"batch,omitempty"`
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`
	// Partitions and Skew record a partitioned-calibration run: P
	// independently-advancing partitions under a (g+1)^-skew key
	// distribution. In such runs every per-partition sweep samples the
	// advance histogram, so AdvanceP99Ms is per-partition sweep latency.
	Partitions int     `json:"partitions,omitempty"`
	Skew       float64 `json:"skew,omitempty"`
	// GOGC records a non-default GC target percentage the run was taken
	// with (the -gogc flag); absent means the runtime default. On a
	// single-core host the default target keeps the batched hot path
	// inside a concurrent mark phase for ~half of every run, which is
	// the dominant p99 contributor (see EXPERIMENTS.md, Batching).
	GOGC          int     `json:"gogc,omitempty"`
	ThroughputTPS float64 `json:"throughput_tps"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	UpdateP50Ms   float64 `json:"update_p50_ms"`
	UpdateP99Ms   float64 `json:"update_p99_ms"`
	AdvanceP99Ms  float64 `json:"advance_p99_ms"`
	Messages      int64   `json:"messages"`
	// Per-stage latency attribution of sampled root transactions
	// (wire + queue + service + ack partitions the end-to-end time).
	StageP50Ms map[string]float64 `json:"stage_p50_ms,omitempty"`
	StageP99Ms map[string]float64 `json:"stage_p99_ms,omitempty"`
}

type calibrationRun struct {
	Txns          int             `json:"txns"`
	Completed     int             `json:"completed"`
	ThroughputTPS float64         `json:"throughput_tps"`
	TransportKind string          `json:"transport_kind,omitempty"`
	DropRate      float64         `json:"drop_rate,omitempty"`
	DupRate       float64         `json:"dup_rate,omitempty"`
	Reliable      bool            `json:"reliable,omitempty"`
	Failover      bool            `json:"failover,omitempty"`
	Replicate     bool            `json:"replicate,omitempty"`
	Batch         int             `json:"batch,omitempty"`
	Partitions    int             `json:"partitions,omitempty"`
	Skew          float64         `json:"skew,omitempty"`
	WALMode       string          `json:"wal_mode,omitempty"`
	WALRecords    uint64          `json:"wal_records,omitempty"`
	WALFsyncs     int64           `json:"wal_fsyncs,omitempty"`
	Transport     transport.Stats `json:"transport"`
	Obs           obs.Snapshot    `json:"obs"`
}

func main() {
	txns := flag.Int("txns", experiments.DefaultScale.Txns, "base transaction count per experiment run")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E9); empty = all")
	jsonOut := flag.String("json", "", "write a JSON report to this file (\"-\" = stdout); adds a calibration run")
	drop := flag.Float64("drop", 0, "calibration run: per-message drop probability (requires -reliable when > 0)")
	dup := flag.Float64("dupmsg", 0, "calibration run: per-message duplication probability")
	reliable := flag.Bool("reliable", false, "calibration run: interpose the reliable-delivery session layer")
	transportKind := flag.String("transport", "mem", "calibration run network: mem (in-memory) or tcp (wire codec + loopback sockets)")
	failover := flag.Bool("failover", false, "calibration run: enable coordinator failover (per-node standbys, lease heartbeats, term fencing) to measure its steady-state overhead")
	walMode := flag.String("wal", "", "durability calibration: none | never | interval | always (three durable single-node clusters over loopback TCP)")
	out := flag.String("out", "", "write a benchmark snapshot (calibration headline numbers) to this file; skips the experiment suite unless -only is set")
	batch := flag.Int("batch", 0, "calibration run: enable the batched hot path and group N submissions per launch (0 = off)")
	partitions := flag.Int("partitions", 1, "calibration run: split the keyspace into P independently-advancing partitions")
	replicateOn := flag.Bool("replicate", false, "calibration run: enable per-partition replica groups (requires -reliable; every primary streams applied updates to the other owners)")
	skew := flag.Float64("skew", 0, "calibration run: workload group-selection skew (P(g) ∝ (g+1)^-skew; 0 = uniform)")
	perBatchLatency := flag.Bool("per-batch-latency", false, "with -batch: charge the mem transport's simulated latency + jitter once per flush envelope instead of once per message (jitter ablation)")
	assertBatched := flag.Bool("assert-batched", false, "with -batch: fail unless the run's observed mean net batch size exceeds 1")
	gogc := flag.Int("gogc", 0, "set the GC target percentage (runtime/debug.SetGCPercent) for the whole process; 0 leaves the runtime default / GOGC env; recorded in -out snapshots")
	traceSample := flag.Int("trace-sample", 0, "calibration run: head-sample 1 in N transactions for causal tracing (prints the stage-attribution table; 0 = off)")
	traceOut := flag.String("trace-out", "", "with -trace-sample: dump the calibration run's assembled traces as JSON to this file")
	stageCheck := flag.Bool("stage-check", false, "with -trace-sample: fail unless the stage means sum to within 5%% of the end-to-end mean")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	if *drop > 0 && !*reliable {
		fmt.Fprintln(os.Stderr, "-drop > 0 requires -reliable (a lost message would wedge the protocol)")
		os.Exit(1)
	}
	if *transportKind != "mem" && *transportKind != "tcp" {
		fmt.Fprintln(os.Stderr, "-transport must be mem or tcp")
		os.Exit(1)
	}
	if *transportKind == "tcp" && (*drop > 0 || *dup > 0) {
		fmt.Fprintln(os.Stderr, "-drop/-dupmsg are features of the in-memory fault injector; use -transport mem")
		os.Exit(1)
	}
	if *walMode != "" && (*drop > 0 || *dup > 0 || *reliable || *transportKind != "mem") {
		fmt.Fprintln(os.Stderr, "-wal fixes its own topology (loopback TCP + reliable sessions); drop -drop/-dupmsg/-reliable/-transport")
		os.Exit(1)
	}
	if *failover && *walMode != "" {
		fmt.Fprintln(os.Stderr, "-failover applies to the mem/tcp calibration run; drop -wal")
		os.Exit(1)
	}
	if *batch > 0 && *walMode != "" {
		fmt.Fprintln(os.Stderr, "-batch applies to the mem/tcp calibration run; drop -wal")
		os.Exit(1)
	}
	if *perBatchLatency && (*batch <= 0 || *transportKind != "mem") {
		fmt.Fprintln(os.Stderr, "-per-batch-latency is the in-memory jitter ablation; it requires -batch > 0 and -transport mem")
		os.Exit(1)
	}
	if *assertBatched && *batch <= 0 {
		fmt.Fprintln(os.Stderr, "-assert-batched requires -batch > 0")
		os.Exit(1)
	}
	if (*traceOut != "" || *stageCheck) && *traceSample <= 0 {
		fmt.Fprintln(os.Stderr, "-trace-out/-stage-check require -trace-sample > 0")
		os.Exit(1)
	}
	if *traceSample > 0 && *walMode != "" {
		fmt.Fprintln(os.Stderr, "-trace-sample applies to the mem/tcp calibration run; drop -wal")
		os.Exit(1)
	}
	if (*partitions > 1 || *skew != 0) && *walMode != "" {
		fmt.Fprintln(os.Stderr, "-partitions/-skew apply to the mem/tcp calibration run; drop -wal")
		os.Exit(1)
	}
	if *replicateOn && !*reliable {
		fmt.Fprintln(os.Stderr, "-replicate requires -reliable (the replication stream rides the session layer for dedup and FIFO)")
		os.Exit(1)
	}
	if *replicateOn && *walMode != "" {
		fmt.Fprintln(os.Stderr, "-replicate applies to the mem/tcp calibration run; drop -wal")
		os.Exit(1)
	}
	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	sc := experiments.Scale{Txns: *txns}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	// -out or -wal without -only means "just take the measurement":
	// the experiment suite is skipped and only calibration runs.
	runSuite := (*out == "" && *walMode == "") || len(selected) > 0
	want := func(id string) bool { return runSuite && (len(selected) == 0 || selected[id]) }

	failures := 0
	var results []expResult
	start := time.Now()

	if want("E1") || want("E2") {
		fmt.Println("== E1/E2: Table 1 + Figure 2 replay ==")
		res, err := experiments.E1Table1()
		r := expResult{ID: "E1", OK: true}
		if err != nil {
			fmt.Fprintln(os.Stderr, "E1 error:", err)
			failures++
			r.OK, r.Error = false, err.Error()
		} else {
			fmt.Print(res.String())
			if !res.OK() {
				failures++
				r.OK, r.Error = false, "replay checks failed"
			}
		}
		results = append(results, r)
		fmt.Println()
	}

	type exp struct {
		id  string
		run func(experiments.Scale) (*harness.Table, error)
	}
	for _, e := range []exp{
		{"E3", experiments.E3AnomalyRate},
		{"E4", experiments.E4VersionBound},
		{"E5", experiments.E5AdvancementInterference},
		{"E6", experiments.E6NonCommutingFraction},
		{"E7", experiments.E7QuiescenceDetection},
		{"E8", experiments.E8CopyOverhead},
		{"E9", experiments.E9ThroughputScaling},
		{"E10", experiments.E10Compensation},
		{"E11", experiments.E11Staleness},
		{"E12", experiments.E12DualWriteOverhead},
		{"E13", experiments.E13RecoveryCost},
	} {
		if !want(e.id) {
			continue
		}
		tbl, err := e.run(sc)
		if tbl != nil {
			fmt.Println(tbl.String())
		}
		r := expResult{ID: e.id, OK: true}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failures++
			r.OK, r.Error = false, err.Error()
		}
		results = append(results, r)
	}

	if runSuite {
		fmt.Printf("suite completed in %v; %d failures\n", time.Since(start).Round(time.Millisecond), failures)
	}

	var cal *calibrationRun
	var traces []obs.Trace
	if *walMode != "" {
		var calErr error
		cal, calErr = calibrateWAL(*txns, *walMode)
		if calErr != nil {
			fmt.Fprintln(os.Stderr, "wal calibration error:", calErr)
			failures++
		} else {
			fmt.Printf("wal calibration (%s): %.1f txn/s over %d txns, %d wal records, %d fsyncs\n",
				cal.WALMode, cal.ThroughputTPS, cal.Txns, cal.WALRecords, cal.WALFsyncs)
		}
	} else if *jsonOut != "" || *out != "" || *traceSample > 0 {
		var calErr error
		cal, traces, calErr = calibrate(*txns, *drop, *dup, *reliable, *transportKind, *traceSample, *failover, *batch, *perBatchLatency, *partitions, *skew, *replicateOn)
		if calErr != nil {
			fmt.Fprintln(os.Stderr, "calibration error:", calErr)
			failures++
		}
	}

	if cal != nil && *walMode == "" {
		if adv := cal.Obs.AdvTotal; adv.Count > 0 {
			fmt.Printf("advancement sweeps: %d, latency p50/p99 %.3f/%.3f ms\n",
				adv.Count, float64(adv.P50())/1e6, float64(adv.P99())/1e6)
		}
	}

	if cal != nil && *assertBatched {
		mean := cal.Obs.Gauges[obs.GaugeNetBatchMeanSize]
		if mean > 1 {
			fmt.Printf("assert-batched OK: mean net batch size %.2f over %d flushes\n",
				mean, int64(cal.Obs.Gauges[obs.GaugeNetFlushes]))
		} else {
			fmt.Fprintf(os.Stderr, "assert-batched FAILED: mean net batch size %.2f (want > 1) — the batched path did not carry the load\n", mean)
			failures++
		}
	}

	if cal != nil && *traceSample > 0 {
		printStageTable(cal.Obs)
		if *stageCheck && !stageSumsCheckOut(cal.Obs) {
			failures++
		}
		if *traceOut != "" {
			buf, terr := json.MarshalIndent(traces, "", "  ")
			if terr != nil {
				fmt.Fprintln(os.Stderr, "trace encode:", terr)
				failures++
			} else if terr := os.WriteFile(*traceOut, append(buf, '\n'), 0o644); terr != nil {
				fmt.Fprintln(os.Stderr, "trace write:", terr)
				failures++
			} else {
				complete := 0
				for _, tr := range traces {
					if tr.Complete {
						complete++
					}
				}
				fmt.Printf("traces: %d (%d complete) -> %s\n", len(traces), complete, *traceOut)
			}
		}
	}

	if *jsonOut != "" {
		rep := report{
			Txns:        *txns,
			Experiments: results,
			Failures:    failures,
			ElapsedMS:   time.Since(start).Milliseconds(),
			Calibration: cal,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json encode:", err)
			failures++
		} else {
			buf = append(buf, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(buf)
			} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "json write:", err)
				failures++
			}
		}
	}

	if *out != "" && cal != nil {
		snap := benchSnapshot{
			Txns:          cal.Txns,
			Completed:     cal.Completed,
			Failover:      cal.Failover,
			Reliable:      cal.Reliable,
			Replicate:     cal.Replicate,
			Batch:         cal.Batch,
			MeanBatchSize: roundMs(cal.Obs.Gauges[obs.GaugeNetBatchMeanSize]),
			Partitions:    cal.Partitions,
			Skew:          cal.Skew,
			GOGC:          *gogc,
			ThroughputTPS: roundMs(cal.ThroughputTPS),
			ReadP50Ms:     roundMs(float64(cal.Obs.TxnRead.P50()) / 1e6),
			ReadP99Ms:     roundMs(float64(cal.Obs.TxnRead.P99()) / 1e6),
			UpdateP50Ms:   roundMs(float64(cal.Obs.TxnUpdate.P50()) / 1e6),
			UpdateP99Ms:   roundMs(float64(cal.Obs.TxnUpdate.P99()) / 1e6),
			AdvanceP99Ms:  roundMs(float64(cal.Obs.AdvTotal.P99()) / 1e6),
			Messages:      cal.Transport.Messages,
		}
		if *traceSample > 0 {
			snap.StageP50Ms = make(map[string]float64)
			snap.StageP99Ms = make(map[string]float64)
			for i, name := range obs.StageNames {
				if s := cal.Obs.Stages[i]; s.Count > 0 {
					snap.StageP50Ms[name] = roundMs(float64(s.P50()) / 1e6)
					snap.StageP99Ms[name] = roundMs(float64(s.P99()) / 1e6)
				}
			}
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "snapshot encode:", err)
			failures++
		} else if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot write:", err)
			failures++
		} else {
			fmt.Printf("benchmark snapshot: %.1f txn/s over %d txns -> %s\n", snap.ThroughputTPS, snap.Txns, *out)
		}
	}

	if failures > 0 {
		stopProf()
		os.Exit(1)
	}
}

// roundMs keeps the snapshot diff-friendly: three decimals are plenty
// for millisecond latencies and whole-txn/s throughputs.
func roundMs(v float64) float64 { return math.Round(v*1000) / 1000 }

// printStageTable renders the per-stage latency attribution of the
// sampled root transactions: where an end-to-end millisecond actually
// goes. wire + queue + service + ack partition the total exactly per
// transaction; fsync is a sub-interval of service and session of wire,
// so those two are shown but excluded from the sum row.
func printStageTable(s obs.Snapshot) {
	total := s.Stages[obs.StageTotal]
	if total.Count == 0 {
		fmt.Println("stage attribution: no sampled transactions (raise -trace-sample coverage)")
		return
	}
	tbl := &harness.Table{Title: "stage attribution (sampled txns)", Header: []string{"stage", "mean (ms)", "p50 (ms)", "p99 (ms)", "share"}}
	meanOf := func(h obs.HistSnapshot) float64 {
		if h.Count == 0 {
			return 0
		}
		return float64(h.Sum) / float64(h.Count) / 1e6
	}
	totalMean := meanOf(total)
	var sumMean float64
	for _, i := range []int{obs.StageWire, obs.StageQueue, obs.StageService, obs.StageAck} {
		h := s.Stages[i]
		m := meanOf(h)
		sumMean += m
		tbl.Add(obs.StageNames[i], harness.F2(m), harness.Ms(time.Duration(h.P50())), harness.Ms(time.Duration(h.P99())),
			fmt.Sprintf("%4.1f%%", 100*m/math.Max(totalMean, 1e-9)))
	}
	tbl.Add("= total (e2e)", harness.F2(totalMean), harness.Ms(time.Duration(total.P50())), harness.Ms(time.Duration(total.P99())), "100%")
	for _, i := range []int{obs.StageFsync, obs.StageSession} {
		h := s.Stages[i]
		tbl.Add("  ("+obs.StageNames[i]+")", harness.F2(meanOf(h)), harness.Ms(time.Duration(h.P50())), harness.Ms(time.Duration(h.P99())), "sub")
	}
	fmt.Println(tbl.String())
	fmt.Printf("stage sum check: wire+queue+service+ack mean %.3f ms vs e2e mean %.3f ms (%.2f%% apart)\n",
		sumMean, totalMean, 100*math.Abs(sumMean-totalMean)/math.Max(totalMean, 1e-9))
}

// stageSumsCheckOut is the -stage-check gate: the four partition stages
// are measured per-transaction and telescoped, so their means must sum
// to the end-to-end mean up to clamping slack (negative residuals clamp
// to zero). 5% is comfortably above observed slack and far below any
// real attribution bug.
func stageSumsCheckOut(s obs.Snapshot) bool {
	total := s.Stages[obs.StageTotal]
	if total.Count == 0 {
		fmt.Fprintln(os.Stderr, "stage-check FAILED: no sampled transactions recorded")
		return false
	}
	var sum float64
	for _, i := range []int{obs.StageWire, obs.StageQueue, obs.StageService, obs.StageAck} {
		h := s.Stages[i]
		if h.Count != total.Count {
			fmt.Fprintf(os.Stderr, "stage-check FAILED: stage %q has %d samples, total has %d\n",
				obs.StageNames[i], h.Count, total.Count)
			return false
		}
		sum += float64(h.Sum)
	}
	tm := float64(total.Sum)
	if diff := math.Abs(sum - tm); diff > 0.05*tm {
		fmt.Fprintf(os.Stderr, "stage-check FAILED: stage sum %.0f ns vs e2e %.0f ns (%.1f%% apart, epsilon 5%%)\n",
			sum, tm, 100*diff/tm)
		return false
	}
	fmt.Println("stage-check OK: stage sums match end-to-end latency within 5%")
	return true
}

// calibrate runs a loaded 4-node 3V cluster and returns its throughput
// together with the observability snapshot — the reference numbers the
// JSON report pairs with the experiment outcomes. With drop/dup rates
// (and the reliable session layer) it doubles as the lossy-network
// overhead measurement recorded in EXPERIMENTS.md. transportKind "tcp"
// swaps the in-memory network for tcpnet in ForceTCP mode: the cluster
// stays in one process, but every message is binary-encoded and pushed
// through a real loopback socket — the wire-overhead measurement.
// failoverOn runs the identical load with Config.Failover: per-node
// standby managers, lease heartbeats, and term fencing on every
// message, with the coordinator kept healthy — the failover-cost
// measurement. batch > 0 turns on the batched hot path (link
// coalescing or batched wire frames, chunked admission, batched
// counter sweeps) and submits batch-sized groups through
// Cluster.SubmitBatch; perBatchLat additionally charges the mem
// transport's simulated latency + jitter once per flush envelope —
// the jitter ablation. partitions > 1 splits the keyspace into
// independently-advancing partitions (every sweep samples AdvTotal per
// partition, so the advance quantiles become per-partition sweep
// latencies) and skew biases group selection toward hot keys — together
// they are the "Partitioned advancement" measurement of EXPERIMENTS.md.
func calibrate(txns int, drop, dup float64, reliableNet bool, transportKind string, traceSample int, failoverOn bool, batch int, perBatchLat bool, partitions int, skew float64, replicateOn bool) (*calibrationRun, []obs.Trace, error) {
	const nodes = 4
	if partitions <= 1 {
		partitions = 0 // unpartitioned: keep the field out of snapshots
	}
	ccfg := core.Config{
		Nodes:      nodes,
		Partitions: partitions,
		NetConfig: transport.Config{
			Jitter: 200 * time.Microsecond,
			Seed:   1,
			Faults: transport.Faults{Default: transport.LinkFaults{DropRate: drop, DupRate: dup}},
		},
		Reliable:  reliableNet,
		Failover:  failoverOn,
		Replicate: replicateOn,
		Obs:       obs.Options{TraceSampleN: traceSample},
	}
	if batch > 0 {
		const window = 100 * time.Microsecond
		ccfg.NetConfig.BatchWindow = window
		ccfg.NetConfig.PerBatchLatency = perBatchLat
		ccfg.ExecChunk = 64
		ccfg.BatchedCounters = true
		if reliableNet {
			ccfg.ReliableConfig.FlushInterval = window
		}
	}
	var tn *tcpnet.Net
	if transportKind == "tcp" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		// Endpoint space: with failover every node also hosts a
		// coordinator endpoint (ids Nodes..2*Nodes-1); without, only the
		// single coordinator endpoint id Nodes exists.
		span := nodes + 1
		if failoverOn {
			span = 2 * nodes
		}
		local := make([]model.NodeID, span)
		for i := range local {
			local[i] = model.NodeID(i)
		}
		tn, err = tcpnet.New(tcpnet.Config{Local: local, Listener: ln, ForceTCP: true, BatchFrames: batch > 0})
		if err != nil {
			return nil, nil, err
		}
		defer tn.Close() // idempotent; also closed via the cluster when reliable wraps it
		ccfg.Transport = tn
	}
	if reliableNet {
		ccfg.ResendInterval = 5 * time.Millisecond
		ccfg.AckTimeout = 30 * time.Second
	}
	cluster, err := core.NewCluster(ccfg)
	if err != nil {
		return nil, nil, err
	}
	if tn != nil {
		tn.SetObs(cluster.Obs())
	}
	cluster.Start()
	defer cluster.Close()

	gen := workload.New(workload.Config{
		Nodes:        4,
		Groups:       256,
		Span:         2,
		ReadFraction: 0.2,
		Skew:         skew,
		Seed:         1,
	})
	res := harness.Run(baseline.ThreeV{Cluster: cluster}, harness.RunConfig{
		Txns:            txns,
		Concurrency:     8,
		Batch:           batch,
		AdvanceInterval: 5 * time.Millisecond,
		FinalAdvance:    true,
		Gen:             gen,
		Preload: func(n model.NodeID, k string) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			cluster.Preload(n, k, rec)
		},
	})
	if partitions > 1 {
		if prep := verify.CheckPartitions(cluster); !prep.OK() {
			return nil, nil, fmt.Errorf("per-partition audit failed: %v", prep.Violations)
		}
		fmt.Printf("partitioned calibration: %d partitions, per-partition audit OK\n", partitions)
	}
	if replicateOn {
		s := cluster.ObsSnapshot()
		fmt.Printf("replicated calibration: %d repl sends, %d repl applies, %d acks\n",
			s.Counters["repl_sends"], s.Counters["repl_applies"], s.Counters["repl_acks"])
	}
	cal := &calibrationRun{
		Txns:          txns,
		Completed:     res.Completed,
		ThroughputTPS: res.Throughput(),
		TransportKind: transportKind,
		DropRate:      drop,
		DupRate:       dup,
		Reliable:      reliableNet,
		Failover:      failoverOn,
		Replicate:     replicateOn,
		Batch:         batch,
		Partitions:    partitions,
		Skew:          skew,
		Transport:     cluster.Metrics().Transport,
		Obs:           cluster.ObsSnapshot(),
	}
	return cal, cluster.ObsTraces(), nil
}

// calibrateWAL measures the durability tax end-to-end: three
// single-node clusters in one OS process, wired exactly like three
// cmd/threev-node processes (loopback TCP, reliable sessions), each
// journaling to its own WAL under the given fsync policy. mode "none"
// runs the identical topology without a WAL — the baseline the
// never/interval/always sweep in EXPERIMENTS.md is measured against.
// The workload is the commuting all-node tree of the node binary's
// /workload endpoint, rooted round-robin across the three clusters.
func calibrateWAL(txns int, mode string) (*calibrationRun, error) {
	const nodes = 3
	var policy wal.Policy
	if mode != "none" {
		p, err := wal.ParsePolicy(mode)
		if err != nil {
			return nil, fmt.Errorf("-wal: %w", err)
		}
		policy = p
	}
	tmp, err := os.MkdirTemp("", "threev-wal-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	listeners := make([]net.Listener, nodes)
	for i := range listeners {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return nil, lerr
		}
		listeners[i] = ln
	}
	type proc struct {
		db      *durable.DB
		cluster *core.Cluster
	}
	procs := make([]*proc, nodes)
	defer func() {
		for _, p := range procs {
			if p == nil {
				continue
			}
			if p.cluster != nil {
				p.cluster.Close()
			}
			if p.db != nil {
				p.db.Close()
			}
		}
	}()
	for i := 0; i < nodes; i++ {
		local := []model.NodeID{model.NodeID(i)}
		if i == 0 {
			local = append(local, model.NodeID(nodes)) // coordinator endpoint
		}
		tpeers := make(map[model.NodeID]string)
		for j, ln := range listeners {
			if j != i {
				tpeers[model.NodeID(j)] = ln.Addr().String()
			}
		}
		if i != 0 {
			tpeers[model.NodeID(nodes)] = listeners[0].Addr().String()
		}
		tn, terr := tcpnet.New(tcpnet.Config{Local: local, Peers: tpeers, Listener: listeners[i]})
		if terr != nil {
			return nil, terr
		}
		p := &proc{}
		var restore *core.NodeRestore
		var sess *reliable.SessionState
		if mode != "none" {
			p.db, restore, sess, err = durable.Open(durable.Options{
				Dir:   fmt.Sprintf("%s/node%d", tmp, i),
				Self:  model.NodeID(i),
				Nodes: nodes,
				Fsync: policy,
			})
			if err != nil {
				return nil, err
			}
		}
		cfg := core.Config{
			Nodes:            nodes,
			LocalNodes:       []int{i},
			LocalCoordinator: i == 0,
			Transport:        tn,
			Reliable:         true,
			ReliableConfig: reliable.Config{
				RetransmitInterval: 5 * time.Millisecond,
				MaxBackoff:         100 * time.Millisecond,
			},
			AckTimeout:     30 * time.Second,
			ResendInterval: 20 * time.Millisecond,
		}
		if p.db != nil {
			cfg.Journal = p.db
			cfg.Restore = restore
			cfg.ReliableConfig.Journal = p.db
			cfg.ReliableConfig.Gate = p.db.Gate()
			cfg.ReliableConfig.Restore = sess
		}
		p.cluster, err = core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		tn.SetObs(p.cluster.Obs())
		if p.db != nil {
			p.db.Bind(p.cluster.Node(i), p.cluster.Session())
			p.db.SetObs(p.cluster.Obs())
		}
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		p.cluster.Preload(model.NodeID(i), fmt.Sprintf("acct-%d", i), rec)
		if p.db != nil {
			if cerr := p.db.Checkpoint(); cerr != nil {
				return nil, cerr
			}
		}
		p.cluster.Start()
		if p.db != nil {
			p.db.StartCheckpoints()
		}
		procs[i] = p
	}

	// Round-robin the commuting all-node tree across the clusters with
	// bounded in-flight per submitter, then wait for every root.
	start := time.Now()
	var wg sync.WaitGroup
	completed := make([]int, nodes)
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		share := txns / nodes
		if i < txns%nodes {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			const window = 16
			handles := make([]*core.Handle, 0, share)
			for k := 0; k < share; k++ {
				root := &model.SubtxnSpec{
					Node:    model.NodeID(i),
					Updates: []model.KeyOp{{Key: fmt.Sprintf("acct-%d", i), Op: model.AddOp{Field: "bal", Delta: 1}}},
				}
				for j := 0; j < nodes; j++ {
					if j != i {
						root.Children = append(root.Children, &model.SubtxnSpec{
							Node:    model.NodeID(j),
							Updates: []model.KeyOp{{Key: fmt.Sprintf("acct-%d", j), Op: model.AddOp{Field: "bal", Delta: 1}}},
						})
					}
				}
				h, serr := procs[i].cluster.Submit(&model.TxnSpec{Label: fmt.Sprintf("wal-%d-%d", i, k), Root: root})
				if serr != nil {
					errs[i] = serr
					return
				}
				handles = append(handles, h)
				if over := len(handles) - window; over >= 0 && !handles[over].WaitTimeout(time.Minute) {
					errs[i] = fmt.Errorf("cluster %d: txn %d did not complete", i, over)
					return
				}
			}
			for _, h := range handles {
				if !h.WaitTimeout(time.Minute) {
					errs[i] = fmt.Errorf("cluster %d: a txn did not complete", i)
					return
				}
			}
			completed[i] = len(handles)
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if rep := procs[0].cluster.Advance(); rep.Err != nil {
		return nil, fmt.Errorf("final advancement: %w", rep.Err)
	}
	elapsed := time.Since(start)

	cal := &calibrationRun{
		Txns:          txns,
		Completed:     completed[0] + completed[1] + completed[2],
		ThroughputTPS: float64(txns) / elapsed.Seconds(),
		TransportKind: "tcp",
		Reliable:      true,
		WALMode:       mode,
		Transport:     procs[0].cluster.Metrics().Transport,
		Obs:           procs[0].cluster.ObsSnapshot(),
	}
	for _, p := range procs {
		if p.db != nil {
			st := p.db.Stats()
			cal.WALRecords += st.Records
			cal.WALFsyncs += st.Fsyncs
		}
	}
	return cal, nil
}
