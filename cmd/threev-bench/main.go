// Command threev-bench runs the reproduction's experiment suite E1–E13
// (see DESIGN.md §4) and prints the result tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	threev-bench [-txns N] [-only E5,E9] [-json FILE]
//
// -txns scales every experiment's transaction count; -only restricts
// the run to a comma-separated list of experiment ids. -json writes a
// machine-readable report ("-" = stdout) with each experiment's
// pass/fail plus a calibration run of a loaded 3V cluster capturing
// throughput and the observability snapshot (latency quantiles,
// advancement phase times).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

// report is the -json output shape.
type report struct {
	Txns        int             `json:"txns"`
	Experiments []expResult     `json:"experiments"`
	Failures    int             `json:"failures"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Calibration *calibrationRun `json:"calibration,omitempty"`
}

type expResult struct {
	ID    string `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

type calibrationRun struct {
	Txns          int             `json:"txns"`
	Completed     int             `json:"completed"`
	ThroughputTPS float64         `json:"throughput_tps"`
	DropRate      float64         `json:"drop_rate,omitempty"`
	DupRate       float64         `json:"dup_rate,omitempty"`
	Reliable      bool            `json:"reliable,omitempty"`
	Transport     transport.Stats `json:"transport"`
	Obs           obs.Snapshot    `json:"obs"`
}

func main() {
	txns := flag.Int("txns", experiments.DefaultScale.Txns, "base transaction count per experiment run")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E9); empty = all")
	jsonOut := flag.String("json", "", "write a JSON report to this file (\"-\" = stdout); adds a calibration run")
	drop := flag.Float64("drop", 0, "calibration run: per-message drop probability (requires -reliable when > 0)")
	dup := flag.Float64("dupmsg", 0, "calibration run: per-message duplication probability")
	reliable := flag.Bool("reliable", false, "calibration run: interpose the reliable-delivery session layer")
	flag.Parse()
	if *drop > 0 && !*reliable {
		fmt.Fprintln(os.Stderr, "-drop > 0 requires -reliable (a lost message would wedge the protocol)")
		os.Exit(1)
	}

	sc := experiments.Scale{Txns: *txns}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	failures := 0
	var results []expResult
	start := time.Now()

	if want("E1") || want("E2") {
		fmt.Println("== E1/E2: Table 1 + Figure 2 replay ==")
		res, err := experiments.E1Table1()
		r := expResult{ID: "E1", OK: true}
		if err != nil {
			fmt.Fprintln(os.Stderr, "E1 error:", err)
			failures++
			r.OK, r.Error = false, err.Error()
		} else {
			fmt.Print(res.String())
			if !res.OK() {
				failures++
				r.OK, r.Error = false, "replay checks failed"
			}
		}
		results = append(results, r)
		fmt.Println()
	}

	type exp struct {
		id  string
		run func(experiments.Scale) (*harness.Table, error)
	}
	for _, e := range []exp{
		{"E3", experiments.E3AnomalyRate},
		{"E4", experiments.E4VersionBound},
		{"E5", experiments.E5AdvancementInterference},
		{"E6", experiments.E6NonCommutingFraction},
		{"E7", experiments.E7QuiescenceDetection},
		{"E8", experiments.E8CopyOverhead},
		{"E9", experiments.E9ThroughputScaling},
		{"E10", experiments.E10Compensation},
		{"E11", experiments.E11Staleness},
		{"E12", experiments.E12DualWriteOverhead},
		{"E13", experiments.E13RecoveryCost},
	} {
		if !want(e.id) {
			continue
		}
		tbl, err := e.run(sc)
		if tbl != nil {
			fmt.Println(tbl.String())
		}
		r := expResult{ID: e.id, OK: true}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failures++
			r.OK, r.Error = false, err.Error()
		}
		results = append(results, r)
	}

	fmt.Printf("suite completed in %v; %d failures\n", time.Since(start).Round(time.Millisecond), failures)

	if *jsonOut != "" {
		rep := report{
			Txns:        *txns,
			Experiments: results,
			Failures:    failures,
			ElapsedMS:   time.Since(start).Milliseconds(),
		}
		cal, err := calibrate(*txns, *drop, *dup, *reliable)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibration error:", err)
			failures++
		} else {
			rep.Calibration = cal
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json encode:", err)
			failures++
		} else {
			buf = append(buf, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(buf)
			} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "json write:", err)
				failures++
			}
		}
	}

	if failures > 0 {
		os.Exit(1)
	}
}

// calibrate runs a loaded 4-node 3V cluster and returns its throughput
// together with the observability snapshot — the reference numbers the
// JSON report pairs with the experiment outcomes. With drop/dup rates
// (and the reliable session layer) it doubles as the lossy-network
// overhead measurement recorded in EXPERIMENTS.md.
func calibrate(txns int, drop, dup float64, reliableNet bool) (*calibrationRun, error) {
	ccfg := core.Config{
		Nodes: 4,
		NetConfig: transport.Config{
			Jitter: 200 * time.Microsecond,
			Seed:   1,
			Faults: transport.Faults{Default: transport.LinkFaults{DropRate: drop, DupRate: dup}},
		},
		Reliable: reliableNet,
	}
	if reliableNet {
		ccfg.ResendInterval = 5 * time.Millisecond
		ccfg.AckTimeout = 30 * time.Second
	}
	cluster, err := core.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Close()

	gen := workload.New(workload.Config{
		Nodes:        4,
		Groups:       256,
		Span:         2,
		ReadFraction: 0.2,
		Seed:         1,
	})
	res := harness.Run(baseline.ThreeV{Cluster: cluster}, harness.RunConfig{
		Txns:            txns,
		Concurrency:     8,
		AdvanceInterval: 5 * time.Millisecond,
		FinalAdvance:    true,
		Gen:             gen,
		Preload: func(n model.NodeID, k string) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			cluster.Preload(n, k, rec)
		},
	})
	return &calibrationRun{
		Txns:          txns,
		Completed:     res.Completed,
		ThroughputTPS: res.Throughput(),
		DropRate:      drop,
		DupRate:       dup,
		Reliable:      reliableNet,
		Transport:     cluster.Metrics().Transport,
		Obs:           cluster.ObsSnapshot(),
	}, nil
}
