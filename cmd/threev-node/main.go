// Command threev-node runs one process of a real 3V cluster: one
// database node speaking the protocol over TCP (length-prefixed binary
// frames, reliable-delivery session layer on top), plus a coordinator
// slot. Exactly one process starts with the active coordinator role
// (-coordinator active, or id 0 under the default -coordinator auto);
// every other process runs a standby that watches the active
// coordinator's heartbeat lease and takes over — under a higher fencing
// term — if it goes silent. -lease-interval / -lease-timeout tune the
// failure detector.
//
// Usage:
//
//	threev-node -id 0 -nodes 3 -listen 127.0.0.1:7100 \
//	            -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 \
//	            -metrics 127.0.0.1:8100 \
//	            -data-dir /var/lib/threev/node0 -fsync always
//
// -data-dir enables crash durability: a write-ahead log plus periodic
// checkpoints in that directory (internal/durable). A process restarted
// with the same directory replays its way back to exactly the state its
// peers hold it accountable for and rejoins the cluster. -fsync picks
// the durability/latency trade-off (always | interval | never).
//
// Every process is given the same -peers map (its own entry is used by
// the others; extra entries are rejected). Each process additionally
// hosts its own coordinator endpoint (id = nodes + id) at the same
// address as its node, so the map needs no extra entries.
//
// -batch N turns on the batched hot path: the tcpnet writer coalesces
// outbound frames into batched envelopes, the reliable session layer
// piggybacks cumulative acks on them, node workers drain admission in
// chunks under one WAL barrier, coordinator sweeps use batched counter
// messages, and /workload submits its transactions in groups of N
// through Cluster.SubmitBatch. /state reports the observed
// mean_batch_size so a driver can assert coalescing actually happened.
//
// -replicate makes partition owner groups real: each partition's
// primary streams every applied commuting update to the other owners
// over the reliable session, backups apply idempotently (journaling
// through -data-dir when set), and a per-partition replication lease
// promotes the next live owner when the primary dies, so the partition
// stays readable. -repl-lease-interval / -repl-lease-timeout tune the
// replication lease independently of the coordinator's (the interval
// defaults to -lease-interval).
// /workload and /read route through the current (possibly promoted)
// primary, and /health reports each partition's role and lag.
//
// -trace-sample enables causal tracing: 1 in N transactions carries a
// trace context across the wire and assembles a full span tree (submit →
// per-subtransaction hops → fsync → completion) on its root process,
// served at /traces.json (?slow=DUR filters). -trace-slow additionally
// logs one structured record per slow transaction with its stage
// breakdown. -log-level/-log-format select slog verbosity and encoding.
//
// -metrics serves the observability endpoints (/metrics Prometheus
// text, /metrics.json, /events.json, /traces.json) plus a small control
// surface:
//
//	/state               JSON: versions (legacy vr/vu plus a per-partition
//	                     array with version/term/lag and the placement map),
//	                     coordinator role + term, transport stats
//	/health              JSON: per-partition replica-group status (role,
//	                     current primary + term, last-heartbeat age,
//	                     replication frontiers and lag), WAL counters and
//	                     session link frontiers
//	/workload?txns=N     run N commuting update trees rooted here (+1 on
//	                     every process's account, children fan out; with
//	                     -partitions P > 1, one single-account update per
//	                     txn routed to its partition's primary owner)
//	/read                read this process's account at the read version
//	                     (partitioned: the accounts this process owns)
//	/advance[?part=N]    run one advancement cycle — all partitions, or
//	                     just partition N (active coordinator only)
//	/killconns           sever every TCP connection (recovery testing)
//	/quit                graceful shutdown
//
// The line "control: http://ADDR" on stdout announces the bound
// metrics address (useful with -metrics 127.0.0.1:0).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport/reliable"
	"repro/internal/transport/tcpnet"
	"repro/internal/wal"
)

// accountKey is the one preloaded item each process owns; the demo
// workload updates every process's account in one transaction tree.
func accountKey(id int) string { return fmt.Sprintf("acct%d", id) }

// parsePeers parses "0=host:port,1=host:port,..." into an id->addr map.
func parsePeers(s string, nodes int) (map[int]string, error) {
	out := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil || n < 0 || n >= nodes {
			return nil, fmt.Errorf("peer %q: id must be in [0,%d)", part, nodes)
		}
		if _, dup := out[n]; dup {
			return nil, fmt.Errorf("peer id %d listed twice", n)
		}
		out[n] = strings.TrimSpace(addr)
	}
	return out, nil
}

type nodeServer struct {
	id      int
	nodes   int
	batch   int // group size for /workload submissions (0/1 = one at a time)
	cluster *core.Cluster
	tnet    *tcpnet.Net
	db      *durable.DB // nil without -data-dir
	quit    chan struct{}
}

// partitionState is one partition's entry in the /state response:
// core.PartitionState (part, primary, vr, vu, max_lag) plus the highest
// fencing term this process has observed for that partition.
type partitionState struct {
	core.PartitionState
	Term uint64 `json:"term"`
}

// stateReport is the /state response. VR/VU are the legacy single-pair
// fields: partition 0's pair, which with -partitions 1 (the default) is
// the cluster's only version pair. Partitioned state lives in
// Partitions, one entry per partition.
type stateReport struct {
	ID          int    `json:"id"`
	Nodes       int    `json:"nodes"`
	Coordinator bool   `json:"coordinator"`
	Role        string `json:"role"`
	Term        uint64 `json:"term"`
	VR          int64  `json:"vr"`
	VU          int64  `json:"vu"`
	// NumPartitions and the placement map: which node group owns each
	// partition, and the map's version (bumped on future rebalances).
	NumPartitions    int              `json:"num_partitions"`
	PlacementVersion int              `json:"placement_version"`
	Placement        [][]model.NodeID `json:"placement,omitempty"`
	Partitions       []partitionState `json:"partitions,omitempty"`
	Committed   int64    `json:"committed_updates"`
	Violations  []string `json:"violations"`
	Convergence []string `json:"convergence_errors"`
	Messages    int64    `json:"messages"`
	BytesSent   int64    `json:"bytes_sent"`
	BytesRecv   int64    `json:"bytes_received"`
	Reconnects  int64    `json:"reconnects"`
	Durable     bool     `json:"durable"`
	WALRecords  uint64   `json:"wal_records,omitempty"`
	WALFsyncs   int64    `json:"wal_fsyncs,omitempty"`
	// MeanBatchSize is the observed mean messages per batched wire
	// frame; present only when the batched hot path is on (-batch) and
	// traffic has flowed.
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`
}

func (s *nodeServer) handleState(w http.ResponseWriter, _ *http.Request) {
	vr, vu := s.cluster.Node(s.id).Versions()
	ts := s.tnet.Stats()
	active, term := s.cluster.CoordinatorStatus()
	role := "standby"
	if active {
		role = "active"
	}
	pm := s.cluster.PlacementMap()
	parts := make([]partitionState, 0, s.cluster.Partitions())
	for _, st := range s.cluster.PartitionStates() {
		parts = append(parts, partitionState{
			PartitionState: st,
			Term:           s.cluster.Node(s.id).TermPart(st.Part),
		})
	}
	rep := stateReport{
		ID:          s.id,
		Nodes:       s.nodes,
		Coordinator: active,
		Role:        role,
		Term:        term,
		VR:          int64(vr),
		VU:          int64(vu),

		NumPartitions:    s.cluster.Partitions(),
		PlacementVersion: pm.Version,
		Placement:        pm.Owners,
		Partitions:       parts,

		Committed: s.cluster.CommittedUpdates(),
		Violations:  s.cluster.Violations(),
		Convergence: s.cluster.ConvergenceErrors(),
		Messages:    ts.Messages,
		BytesSent:   ts.BytesSent,
		BytesRecv:   ts.BytesReceived,
		Reconnects:  ts.Reconnects,
	}
	if s.db != nil {
		ws := s.db.Stats()
		rep.Durable = true
		rep.WALRecords = ws.Records
		rep.WALFsyncs = ws.Fsyncs
	}
	if s.batch > 0 {
		rep.MeanBatchSize = s.cluster.Metrics().Obs.Gauges[obs.GaugeNetBatchMeanSize]
	}
	writeJSON(w, rep)
}

// healthLink is one directed session link's frontier in the /health
// response (links not involving this process are omitted).
type healthLink struct {
	From         int    `json:"from"`
	To           int    `json:"to"`
	NextSeq      uint64 `json:"next_seq,omitempty"`
	Unacked      int    `json:"unacked,omitempty"`
	NextExpected uint64 `json:"next_expected,omitempty"`
}

// healthReport is the /health response: per-partition replica-group
// status (role, lease age, replication frontiers and lag), WAL
// counters, and session link frontiers — everything an operator or a
// failover gate needs to decide whether this process is a healthy
// primary, a caught-up backup, or neither.
type healthReport struct {
	ID         int                      `json:"id"`
	Replicate  bool                     `json:"replicate"`
	Partitions []core.ReplicaPartHealth `json:"partitions,omitempty"`
	Durable    bool                     `json:"durable"`
	WALRecords uint64                   `json:"wal_records,omitempty"`
	WALFsyncs  int64                    `json:"wal_fsyncs,omitempty"`
	Sessions   []healthLink             `json:"sessions,omitempty"`
}

func (s *nodeServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rep := healthReport{
		ID:         s.id,
		Replicate:  s.cluster.Replicating(),
		Partitions: s.cluster.ReplicaHealth(),
	}
	if s.db != nil {
		ws := s.db.Stats()
		rep.Durable = true
		rep.WALRecords = ws.Records
		rep.WALFsyncs = ws.Fsyncs
	}
	if sess := s.cluster.Session(); sess != nil {
		st := sess.ExportState()
		for _, ls := range st.Send {
			if int(ls.From) == s.id {
				rep.Sessions = append(rep.Sessions, healthLink{
					From: int(ls.From), To: int(ls.To), NextSeq: ls.NextSeq, Unacked: len(ls.Unacked)})
			}
		}
		for _, lr := range st.Recv {
			if int(lr.To) == s.id {
				rep.Sessions = append(rep.Sessions, healthLink{
					From: int(lr.From), To: int(lr.To), NextExpected: lr.NextExpected})
			}
		}
	}
	writeJSON(w, rep)
}

// handleWorkload submits N commuting update trees rooted at the local
// node: +1 on the local account plus one child per remote process
// adding +1 there. It waits for the root-only handles and reports.
func (s *nodeServer) handleWorkload(w http.ResponseWriter, r *http.Request) {
	txns := 100
	if q := r.URL.Query().Get("txns"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "txns must be a positive integer", http.StatusBadRequest)
			return
		}
		txns = n
	}
	specs := make([]*model.TxnSpec, txns)
	pm := s.cluster.PlacementMap()
	for i := range specs {
		var root *model.SubtxnSpec
		if s.cluster.Partitions() > 1 {
			// Partitioned: transactions may not cross partitions, and the
			// account keys hash to arbitrary ones — so each transaction
			// updates one account, round-robin across processes, addressed
			// to the primary owner of that key's partition (owner routing
			// rather than a broadcast tree). Submit requires the root to
			// be hosted locally, so when the owner is a remote node the
			// update rides a single child subtxn under a keyless local
			// root — one wire hop to the owner, nothing sent anywhere
			// else.
			key := accountKey(i % s.nodes)
			op := model.KeyOp{Key: key, Op: model.AddOp{Field: "bal", Delta: 1}}
			root = &model.SubtxnSpec{Node: model.NodeID(s.id)}
			if owner := s.cluster.CurrentPrimary(pm.Of(key)); owner == model.NodeID(s.id) {
				root.Updates = []model.KeyOp{op}
			} else {
				root.Children = []*model.SubtxnSpec{{Node: owner, Updates: []model.KeyOp{op}}}
			}
		} else {
			root = &model.SubtxnSpec{
				Node:    model.NodeID(s.id),
				Updates: []model.KeyOp{{Key: accountKey(s.id), Op: model.AddOp{Field: "bal", Delta: 1}}},
			}
			for j := 0; j < s.nodes; j++ {
				if j != s.id {
					root.Children = append(root.Children, &model.SubtxnSpec{
						Node:    model.NodeID(j),
						Updates: []model.KeyOp{{Key: accountKey(j), Op: model.AddOp{Field: "bal", Delta: 1}}},
					})
				}
			}
		}
		specs[i] = &model.TxnSpec{Label: fmt.Sprintf("demo-%d", i), Root: root}
	}
	handles := make([]*core.Handle, 0, txns)
	group := s.batch
	if group < 1 {
		group = 1
	}
	for i := 0; i < txns; i += group {
		end := i + group
		if end > txns {
			end = txns
		}
		if group > 1 {
			hs, err := s.cluster.SubmitBatch(specs[i:end])
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			handles = append(handles, hs...)
		} else {
			h, err := s.cluster.Submit(specs[i])
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			handles = append(handles, h)
		}
		// Crash-harness hook: THREEV_CRASHPOINT=workload-submit:N kills
		// this process (exit 137) right after the Nth submission round.
		harness.MaybeCrash("workload-submit")
	}
	for _, h := range handles {
		if !h.WaitTimeout(time.Minute) {
			http.Error(w, fmt.Sprintf("transaction %v did not complete", h.ID), http.StatusGatewayTimeout)
			return
		}
	}
	writeJSON(w, map[string]int{"submitted": txns})
}

func (s *nodeServer) handleRead(w http.ResponseWriter, _ *http.Request) {
	// readLocal runs one locally-rooted read transaction for key and
	// returns its balance and the version the read was served at.
	readLocal := func(key string) (any, model.Version, error) {
		h, err := s.cluster.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:  model.NodeID(s.id),
			Reads: []string{key},
		}})
		if err != nil {
			return nil, 0, err
		}
		if !h.WaitTimeout(time.Minute) {
			return nil, 0, fmt.Errorf("read of %q did not complete", key)
		}
		reads := h.Reads()
		if len(reads) != 1 {
			return nil, 0, fmt.Errorf("read of %q returned %d results", key, len(reads))
		}
		return reads[0].Record.Field("bal"), reads[0].VersionRead, nil
	}
	if s.cluster.Partitions() > 1 {
		// Partitioned: the workload routes every update to the primary
		// owner of its key's partition, so account records materialize
		// only at their owners. Each process reports the accounts whose
		// partition it is primary for; a process owning no partition
		// returns an empty map. Reads stay one-key-per-transaction
		// because two owned accounts may live in different partitions
		// and transactions cannot cross them.
		pm := s.cluster.PlacementMap()
		owned := map[string]any{}
		var ver model.Version
		for j := 0; j < s.nodes; j++ {
			key := accountKey(j)
			if s.cluster.CurrentPrimary(pm.Of(key)) != model.NodeID(s.id) {
				continue
			}
			bal, v, err := readLocal(key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			owned[key] = bal
			if v > ver {
				ver = v
			}
		}
		writeJSON(w, map[string]any{"owned": owned, "version": ver})
		return
	}
	bal, ver, err := readLocal(accountKey(s.id))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{
		"key":     accountKey(s.id),
		"bal":     bal,
		"version": ver,
	})
}

func (s *nodeServer) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var rep core.AdvanceReport
	if q := r.URL.Query().Get("part"); q != "" {
		part, err := strconv.Atoi(q)
		if err != nil || part < 0 || part >= s.cluster.Partitions() {
			http.Error(w, fmt.Sprintf("part must be an integer in [0,%d)", s.cluster.Partitions()), http.StatusBadRequest)
			return
		}
		rep = s.cluster.AdvancePartition(part)
	} else {
		rep = s.cluster.Advance()
	}
	if rep.Err != nil {
		http.Error(w, rep.Err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{
		"part":     rep.Part,
		"new_vr":   rep.NewVR,
		"new_vu":   rep.NewVU,
		"total_ms": float64(rep.Total) / 1e6,
		"sweeps":   rep.SweepsPhase2 + rep.SweepsPhase4,
	})
}

func (s *nodeServer) handleKillConns(w http.ResponseWriter, _ *http.Request) {
	s.tnet.KillConnections()
	writeJSON(w, map[string]bool{"killed": true})
}

func (s *nodeServer) handleQuit(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]bool{"quitting": true})
	close(s.quit)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func main() {
	id := flag.Int("id", -1, "this process's node id (0..nodes-1)")
	nodes := flag.Int("nodes", 3, "total database nodes in the cluster")
	coordRole := flag.String("coordinator", "auto", "starting coordinator role: auto (active iff id 0) | active | standby")
	leaseInterval := flag.Duration("lease-interval", 50*time.Millisecond, "active coordinator's heartbeat period")
	leaseTimeout := flag.Duration("lease-timeout", 0, "standby takeover threshold on heartbeat silence (0 = 4x lease-interval)")
	listen := flag.String("listen", "", "protocol listen address, e.g. 127.0.0.1:7100")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port for every process (own entry allowed)")
	metricsAddr := flag.String("metrics", "", "serve metrics + control endpoints on this address (e.g. 127.0.0.1:8100)")
	autoAdvance := flag.Duration("auto-advance", 0, "run version advancement on this period (active coordinator only; 0 = manual via /advance)")
	ackTimeout := flag.Duration("ack-timeout", 30*time.Second, "coordinator wait bound on node acknowledgements")
	dataDir := flag.String("data-dir", "", "enable crash durability: write-ahead log + checkpoints in this directory")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always | interval | never")
	ckptInterval := flag.Duration("checkpoint-interval", 2*time.Second, "background checkpoint period with -data-dir")
	batch := flag.Int("batch", 0, "enable the batched hot path (batched wire frames, chunked admission, batched counter sweeps) and group /workload submissions N at a time (0 = off)")
	partitions := flag.Int("partitions", 1, "split the keyspace into P partitions, each with its own independently-advancing version pair (same value on every process)")
	replicate := flag.Bool("replicate", false, "enable per-partition replica groups: the primary of each partition streams applied updates to the other owners, and a replication lease promotes the next owner if the primary dies")
	replLeaseInterval := flag.Duration("repl-lease-interval", 0, "replication-lease heartbeat period with -replicate (0 = -lease-interval)")
	replLeaseTimeout := flag.Duration("repl-lease-timeout", 0, "backup promotion threshold on replication-heartbeat silence with -replicate (0 = -repl-lease-interval x 4)")
	traceSample := flag.Int("trace-sample", 64, "head-sample 1 in N transactions for causal tracing (1 = every txn, 0 = tracing off)")
	traceSlow := flag.Duration("trace-slow", 0, "also trace and log any transaction slower than this, sampled or not (0 = off)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log encoding: text | json")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := run(*id, *nodes, *coordRole, *leaseInterval, *leaseTimeout, *listen, *peersFlag, *metricsAddr, *autoAdvance, *ackTimeout, *dataDir, *fsyncFlag, *ckptInterval, *batch, *partitions, *replicate, *replLeaseInterval, *replLeaseTimeout, *traceSample, *traceSlow, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr; stdout keeps the documented machine-readable
// announcement lines ("control: http://ADDR").
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// slowTxnAttrs renders a completed slow transaction's root span as slog
// attributes: trace id, total, and the per-stage breakdown when the
// transaction was head-sampled (stage data exists only then).
func slowTxnAttrs(sp obs.Span) []any {
	attrs := []any{
		slog.String("trace", fmt.Sprintf("%016x", sp.TraceID)),
		slog.Duration("total", time.Duration(sp.Dur)),
		slog.String("txn", sp.Attr),
	}
	for _, st := range sp.Stages {
		attrs = append(attrs, slog.Duration(st.Name, time.Duration(st.Dur)))
	}
	return attrs
}

func run(id, nodes int, coordRole string, leaseInterval, leaseTimeout time.Duration, listen, peersFlag, metricsAddr string, autoAdvance, ackTimeout time.Duration, dataDir, fsyncFlag string, ckptInterval time.Duration, batch, partitions int, replicate bool, replLeaseInterval, replLeaseTimeout time.Duration, traceSample int, traceSlow time.Duration, logger *slog.Logger) error {
	if id < 0 || id >= nodes {
		return fmt.Errorf("-id must be in [0,%d)", nodes)
	}
	var startActive bool
	switch coordRole {
	case "auto":
		startActive = id == 0
	case "active":
		startActive = true
	case "standby":
		startActive = false
	default:
		return fmt.Errorf("-coordinator %q: want auto, active, or standby", coordRole)
	}
	if listen == "" {
		return fmt.Errorf("-listen is required")
	}
	peers, err := parsePeers(peersFlag, nodes)
	if err != nil {
		return err
	}
	if len(peers) != nodes && len(peers) != nodes-1 {
		return fmt.Errorf("-peers must name all %d processes (own entry optional), got %d", nodes, len(peers))
	}
	for j := 0; j < nodes; j++ {
		if j != id {
			if _, ok := peers[j]; !ok {
				return fmt.Errorf("-peers is missing process %d", j)
			}
		}
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Each process hosts its node endpoint and its coordinator endpoint
	// (nodes + id): node 0's coordinator endpoint is the legacy id
	// `nodes`, the rest are the standbys' takeover endpoints.
	local := []model.NodeID{model.NodeID(id), model.NodeID(nodes + id)}
	tpeers := make(map[model.NodeID]string)
	for j, addr := range peers {
		if j != id {
			tpeers[model.NodeID(j)] = addr
			tpeers[model.NodeID(nodes+j)] = addr
		}
	}
	tnet, err := tcpnet.New(tcpnet.Config{Local: local, Peers: tpeers, Listener: ln, BatchFrames: batch > 0})
	if err != nil {
		return err
	}

	// Crash durability: open the data directory before the cluster so a
	// recovered store/counters/session state can be restored into it.
	var db *durable.DB
	var restore *core.NodeRestore
	var sessState *reliable.SessionState
	if dataDir != "" {
		policy, perr := wal.ParsePolicy(fsyncFlag)
		if perr != nil {
			return perr
		}
		db, restore, sessState, err = durable.Open(durable.Options{
			Dir:                dataDir,
			Self:               model.NodeID(id),
			Nodes:              nodes,
			Partitions:         partitions,
			Fsync:              policy,
			CheckpointInterval: ckptInterval,
		})
		if err != nil {
			return err
		}
		// Registered before cluster.Close's defer so the log outlives
		// the workers that journal to it.
		defer db.Close()
	}

	cfg := core.Config{
		Nodes:            nodes,
		Partitions:       partitions,
		LocalNodes:       []int{id},
		LocalCoordinator: startActive,
		Failover:         true,
		FailoverConfig: core.FailoverConfig{
			LeaseInterval: leaseInterval,
			LeaseTimeout:  leaseTimeout,
			OnRoleChange: func(active bool, term uint64) {
				if active {
					logger.Warn("coordinator takeover", "id", id, "term", term)
				} else {
					logger.Warn("coordinator demoted", "id", id, "term", term)
				}
			},
		},
		Transport: tnet,
		Reliable:  true,
		ReliableConfig: reliable.Config{
			RetransmitInterval: 20 * time.Millisecond,
			MaxBackoff:         time.Second,
		},
		AckTimeout:     ackTimeout,
		ResendInterval: 50 * time.Millisecond,
		Obs: obs.Options{
			TraceSampleN: traceSample,
			TraceSlow:    traceSlow,
		},
	}
	if batch > 0 {
		cfg.ExecChunk = 64
		cfg.BatchedCounters = true
		cfg.ReliableConfig.FlushInterval = 100 * time.Microsecond
	}
	if replicate {
		if replLeaseInterval <= 0 {
			replLeaseInterval = leaseInterval
		}
		cfg.Replicate = true
		cfg.ReplicaConfig = core.ReplicaConfig{
			LeaseInterval: replLeaseInterval,
			LeaseTimeout:  replLeaseTimeout,
			OnRoleChange: func(part int, primary model.NodeID, term uint64) {
				if primary == model.NodeID(id) {
					logger.Warn("replica takeover", "part", part, "id", id, "term", term)
				} else {
					logger.Warn("replica primary changed", "part", part, "primary", primary, "term", term)
				}
			},
		}
	}
	if db != nil {
		cfg.Journal = db
		cfg.Restore = restore
		cfg.ReliableConfig.Journal = db
		cfg.ReliableConfig.Gate = db.Gate()
		cfg.ReliableConfig.Restore = sessState
	}
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return err
	}
	// Crash-harness hook: THREEV_CRASHPOINT=advance-phaseN:K kills this
	// process (exit 137) the Kth time a sweep it drives completes
	// advancement phase N — the failover CI gate's seam for killing the
	// active coordinator at every protocol point. Partitioned clusters
	// additionally expose advance-pP-phaseN so a kill can target one
	// partition's sweep while the others keep advancing.
	cluster.SetPartPhaseHook(func(part, phase int) {
		harness.MaybeCrash(fmt.Sprintf("advance-phase%d", phase))
		if partitions > 1 {
			harness.MaybeCrash(fmt.Sprintf("advance-p%d-phase%d", part, phase))
		}
	})
	// Replication crash seams: THREEV_CRASHPOINT=repl-send:K kills the
	// process after the Kth replication fan-out it emits as a primary,
	// repl-apply:K after the Kth replicated effect set it applies as a
	// backup — the replica CI gates' deterministic kill points.
	if replicate {
		cluster.SetReplHooks(
			func(part int) {
				harness.MaybeCrash("repl-send")
				harness.MaybeCrash(fmt.Sprintf("repl-p%d-send", part))
			},
			func(part int) {
				harness.MaybeCrash("repl-apply")
				harness.MaybeCrash(fmt.Sprintf("repl-p%d-apply", part))
			})
	}
	// Route wire-codec latency histograms into the cluster's registry so
	// /metrics exposes threev_wire_encode/decode_seconds.
	tnet.SetObs(cluster.Obs())
	// One structured record per slow transaction: trace id plus the
	// stage breakdown (wire/queue/service/ack/fsync) when sampled.
	cluster.Obs().SetSlowTraceHook(func(sp obs.Span) {
		logger.Warn("slow transaction", slowTxnAttrs(sp)...)
	})
	if db != nil {
		db.Bind(cluster.Node(id), cluster.Session())
		db.SetObs(cluster.Obs())
	}
	if restore == nil {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		cluster.Preload(model.NodeID(id), accountKey(id), rec)
		if replicate {
			// Replicated: every account key must exist at every owner of
			// its partition, so a promoted backup serves version-0 reads
			// even before the first replicated update materializes it.
			pm := cluster.PlacementMap()
			for j := 0; j < nodes; j++ {
				key := accountKey(j)
				if j == id {
					continue
				}
				for _, o := range pm.OwnerSet(pm.Of(key)) {
					if o == model.NodeID(id) {
						r := model.NewRecord()
						r.Fields["bal"] = 0
						cluster.Preload(model.NodeID(id), key, r)
						break
					}
				}
			}
		}
		if db != nil {
			// Anchor the log before any traffic so every later record
			// replays on top of a checkpoint that includes the preload.
			if cerr := db.Checkpoint(); cerr != nil {
				return cerr
			}
		}
	}
	cluster.Start()
	defer cluster.Close()
	if db != nil {
		db.StartCheckpoints()
	}

	role := "standby"
	if startActive {
		role = "active"
	}
	logger.Info("listening", "id", id, "nodes", nodes, "coordinator", role, "addr", ln.Addr().String(),
		"trace_sample", traceSample)
	if db != nil {
		mode := "fresh"
		if restore != nil {
			mode = "recovered"
		}
		logger.Info("durability", "dir", dataDir, "fsync", fsyncFlag, "state", mode)
	}
	peerList := make([]string, 0, len(tpeers))
	for j, addr := range tpeers {
		peerList = append(peerList, fmt.Sprintf("%d=%s", j, addr))
	}
	sort.Strings(peerList)
	logger.Info("peers", "map", strings.Join(peerList, " "))

	srv := &nodeServer{id: id, nodes: nodes, batch: batch, cluster: cluster, tnet: tnet, db: db, quit: make(chan struct{})}
	if metricsAddr != "" {
		mln, lerr := net.Listen("tcp", metricsAddr)
		if lerr != nil {
			return lerr
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/state", srv.handleState)
		mux.HandleFunc("/health", srv.handleHealth)
		mux.HandleFunc("/workload", srv.handleWorkload)
		mux.HandleFunc("/read", srv.handleRead)
		mux.HandleFunc("/advance", srv.handleAdvance)
		mux.HandleFunc("/killconns", srv.handleKillConns)
		mux.HandleFunc("/quit", srv.handleQuit)
		mux.Handle("/", obs.Handler(cluster))
		go func() {
			if serr := http.Serve(mln, mux); serr != nil {
				logger.Error("control server", "err", serr)
			}
		}()
		// Documented machine-readable announcement; scripts scrape it, so
		// it stays on stdout in this exact shape regardless of log format.
		fmt.Printf("control: http://%s\n", mln.Addr())
	}

	if autoAdvance > 0 && startActive {
		go func() {
			t := time.NewTicker(autoAdvance)
			defer t.Stop()
			for {
				select {
				case <-srv.quit:
					return
				case <-t.C:
					if rep := cluster.Advance(); rep.Err != nil {
						logger.Error("advancement", "err", rep.Err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		logger.Info("interrupted, shutting down")
	case <-srv.quit:
	}
	return nil
}
