// Command threev-trace replays the paper's Table 1 example execution
// deterministically and prints every step with its checked counter
// values and version states (reproducing Table 1 and Figure 2).
//
// Usage:
//
//	threev-trace
//
// Exit status is nonzero if any check fails.
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	res, err := trace.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay error:", err)
		os.Exit(1)
	}
	fmt.Print(res.String())
	if !res.OK() {
		os.Exit(1)
	}
}
