// Command threev-trace replays the paper's Table 1 example execution
// deterministically and prints every step with its checked counter
// values and version states (reproducing Table 1 and Figure 2).
//
// Usage:
//
//	threev-trace [-q]
//
// -q suppresses the step-by-step listing and prints only the summary
// line. Exit status is nonzero if any check fails, making the command
// usable directly as a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "print only the PASS/FAIL summary line")
	flag.Parse()

	res, err := trace.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay error:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(res.String())
	}
	verdict := "PASS"
	if !res.OK() {
		verdict = "FAIL"
	}
	fmt.Printf("table-1 replay: %s (%d checks passed, %d failed)\n", verdict, res.Passed, res.Failed)
	if !res.OK() {
		os.Exit(1)
	}
}
