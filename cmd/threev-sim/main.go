// Command threev-sim runs a live database under a configurable data
// recording load and prints its metrics — a playground for exploring
// node counts, network shapes, advancement cadence and transaction
// mixes, and for head-to-head runs against the baseline schemes.
//
// Usage:
//
//	threev-sim [-system 3v|nocoord|2pc|manual|syncadv]
//	           [-nodes 4] [-txns 2000] [-read 0.2] [-nc 0] [-abort 0]
//	           [-latency 0] [-jitter 500us] [-advance 5ms] [-conc 8]
//	           [-seed 1]
//
// The exit status is nonzero if the run observed an atomic-visibility
// anomaly (expected for -system nocoord, and for -system manual with a
// short enough stabilization delay) or a protocol violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/baseline/globalsync"
	"repro/internal/baseline/manualver"
	"repro/internal/baseline/nocoord"
	"repro/internal/baseline/syncadv"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	system := flag.String("system", "3v", "scheme to run: 3v, nocoord, 2pc, manual, syncadv")
	nodes := flag.Int("nodes", 4, "database nodes")
	txns := flag.Int("txns", 2000, "transactions to run")
	readFrac := flag.Float64("read", 0.2, "read fraction")
	ncFrac := flag.Float64("nc", 0, "non-commuting fraction of updates (enables NC3V when > 0)")
	abortFrac := flag.Float64("abort", 0, "abort (compensation) fraction of updates")
	latency := flag.Duration("latency", 0, "base one-way message latency")
	jitter := flag.Duration("jitter", 500*time.Microsecond, "message jitter (enables reordering)")
	advance := flag.Duration("advance", 5*time.Millisecond, "version advancement period (0 = manual only)")
	conc := flag.Int("conc", 8, "in-flight transactions")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	netCfg := transport.Config{
		BaseLatency: *latency,
		Jitter:      *jitter,
		Seed:        *seed,
	}
	var (
		sys     baseline.System
		cluster *core.Cluster // non-nil only for 3v
		preload func(model.NodeID, string, *model.Record)
		err     error
	)
	switch *system {
	case "3v":
		cluster, err = core.NewCluster(core.Config{
			Nodes:     *nodes,
			NCMode:    *ncFrac > 0,
			LockWait:  time.Second,
			NetConfig: netCfg,
		})
		if err == nil {
			cluster.Start()
			sys = baseline.ThreeV{Cluster: cluster}
			preload = func(n model.NodeID, k string, rec *model.Record) { cluster.Preload(n, k, rec) }
		}
	case "nocoord":
		var s *nocoord.System
		s, err = nocoord.New(nocoord.Config{Nodes: *nodes, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "2pc":
		var s *globalsync.System
		s, err = globalsync.New(globalsync.Config{Nodes: *nodes, LockWait: 5 * time.Second, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "manual":
		var s *manualver.System
		s, err = manualver.New(manualver.Config{Nodes: *nodes, StabilizationDelay: *advance / 2, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "syncadv":
		var s *syncadv.System
		s, err = syncadv.New(syncadv.Config{Nodes: *nodes, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	default:
		err = fmt.Errorf("unknown -system %q", *system)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Close()
	if *ncFrac > 0 && *system != "3v" {
		fmt.Fprintln(os.Stderr, "-nc requires -system 3v (NC3V)")
		os.Exit(1)
	}

	gen := workload.New(workload.Config{
		Nodes:                *nodes,
		Groups:               256,
		Span:                 2,
		ReadFraction:         *readFrac,
		NonCommutingFraction: *ncFrac,
		AbortFraction:        *abortFrac,
		Seed:                 *seed,
	})

	fmt.Printf("%s simulation: %d nodes, %d txns, read=%.0f%% nc=%.0f%% abort=%.0f%%, latency=%v jitter=%v, advance every %v\n",
		sys.Name(), *nodes, *txns, *readFrac*100, *ncFrac*100, *abortFrac*100, *latency, *jitter, *advance)

	res := harness.Run(sys, harness.RunConfig{
		Txns:            *txns,
		Concurrency:     *conc,
		AdvanceInterval: *advance,
		FinalAdvance:    true,
		Gen:             gen,
		Preload: func(n model.NodeID, k string) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			rec.Fields["count"] = 0
			preload(n, k, rec)
		},
	})

	tbl := &harness.Table{Title: "results", Header: []string{"metric", "value"}}
	tbl.Add("completed", fmt.Sprint(res.Completed))
	tbl.Add("timed out", fmt.Sprint(res.TimedOut))
	tbl.Add("updates / reads / nc", fmt.Sprintf("%d / %d / %d", res.Updates, res.Reads, res.NCs))
	tbl.Add("throughput (txn/s)", harness.F2(res.Throughput()))
	tbl.Add("latency p50/p99/max (ms)", fmt.Sprintf("%s / %s / %s",
		harness.Ms(res.LatAll.Quantile(0.5)), harness.Ms(res.LatAll.Quantile(0.99)), harness.Ms(res.LatAll.Max())))
	tbl.Add("advancements", fmt.Sprint(res.Advances))
	tbl.Add("read staleness mean/max (updates)", fmt.Sprintf("%s / %d", harness.F2(res.StalenessMean), res.StalenessMax))
	tbl.Add("anomalies (atomic visibility)", fmt.Sprint(res.Anomalies))
	fmt.Println(tbl.String())

	structuralOK := true
	if cluster != nil {
		rep := verify.CheckStructural(cluster)
		fmt.Println(rep.String())
		structuralOK = rep.OK()

		m := cluster.Metrics()
		var dual, comp, impl int64
		for _, nm := range m.PerNode {
			dual += nm.DualWrites
			comp += nm.Compensations
			impl += nm.ImplicitAdvances
		}
		fmt.Printf("protocol events: dual-writes=%d compensations=%d implicit-advances=%d messages=%d\n",
			dual, comp, impl, m.Transport.Messages)
	}

	if res.Anomalies > 0 || !structuralOK {
		os.Exit(1)
	}
}
