// Command threev-sim runs a live database under a configurable data
// recording load and prints its metrics — a playground for exploring
// node counts, network shapes, advancement cadence and transaction
// mixes, and for head-to-head runs against the baseline schemes.
//
// Usage:
//
//	threev-sim [-system 3v|nocoord|2pc|manual|syncadv]
//	           [-nodes 4] [-partitions 1] [-txns 2000] [-read 0.2] [-nc 0] [-abort 0]
//	           [-latency 0] [-jitter 500us] [-advance 5ms] [-conc 8]
//	           [-seed 1] [-batch 8] [-metrics :8080] [-hold 30s]
//	           [-pprof :6060] [-cpuprofile FILE] [-memprofile FILE]
//
// With -metrics ADDR (3v only) the process serves the observability
// snapshot over HTTP while the workload runs: Prometheus text at
// /metrics, JSON at /metrics.json, the event log at /events.json, and —
// with -trace-sample N — assembled causal traces at /traces.json.
// After the run it keeps serving for -hold (0 = until interrupted).
//
// The exit status is nonzero if the run observed an atomic-visibility
// anomaly (expected for -system nocoord, and for -system manual with a
// short enough stabilization delay) or a protocol violation.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/baseline"
	"repro/internal/baseline/globalsync"
	"repro/internal/baseline/manualver"
	"repro/internal/baseline/nocoord"
	"repro/internal/baseline/syncadv"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/transport"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	system := flag.String("system", "3v", "scheme to run: 3v, nocoord, 2pc, manual, syncadv")
	nodes := flag.Int("nodes", 4, "database nodes")
	txns := flag.Int("txns", 2000, "transactions to run")
	readFrac := flag.Float64("read", 0.2, "read fraction")
	ncFrac := flag.Float64("nc", 0, "non-commuting fraction of updates (enables NC3V when > 0)")
	abortFrac := flag.Float64("abort", 0, "abort (compensation) fraction of updates")
	latency := flag.Duration("latency", 0, "base one-way message latency")
	jitter := flag.Duration("jitter", 500*time.Microsecond, "message jitter (enables reordering)")
	advance := flag.Duration("advance", 5*time.Millisecond, "version advancement period (0 = manual only)")
	conc := flag.Int("conc", 8, "in-flight transactions")
	seed := flag.Int64("seed", 1, "workload seed")
	metricsAddr := flag.String("metrics", "", "serve metrics over HTTP on this address, e.g. :8080 (3v only)")
	hold := flag.Duration("hold", 0, "with -metrics: keep serving this long after the run (0 = until interrupted)")
	chaos := flag.Bool("chaos", false, "chaos mode (3v only): inject faults while the load runs, heal, then require full convergence")
	drop := flag.Float64("drop", 0.01, "with -chaos: per-message drop probability")
	dup := flag.Float64("dupmsg", 0.01, "with -chaos: per-message duplication probability")
	partAt := flag.Duration("partition-at", 200*time.Millisecond, "with -chaos: inject a two-way partition this long into the run")
	partFor := flag.Duration("partition-for", 300*time.Millisecond, "with -chaos: heal the partition after this long (0 = no partition)")
	reliable := flag.Bool("reliable", true, "with -chaos: interpose the reliable-delivery session layer")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N transactions for causal tracing, served at /traces.json (3v only; 0 = off)")
	batch := flag.Int("batch", 0, "3v only: enable the batched hot path (link coalescing, chunked admission, batched counter sweeps) and group N submissions per launch (0 = off)")
	partitions := flag.Int("partitions", 1, "3v only: split the keyspace into P partitions, each with its own independently-advancing version pair")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()
	stopProf, perr := prof.Start()
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	defer stopProf()

	netCfg := transport.Config{
		BaseLatency: *latency,
		Jitter:      *jitter,
		Seed:        *seed,
	}
	var (
		sys     baseline.System
		cluster *core.Cluster // non-nil only for 3v
		preload func(model.NodeID, string, *model.Record)
		err     error
	)
	if *chaos && *system != "3v" {
		fmt.Fprintln(os.Stderr, "-chaos requires -system 3v")
		os.Exit(1)
	}
	if *batch > 0 && *system != "3v" {
		fmt.Fprintln(os.Stderr, "-batch requires -system 3v")
		os.Exit(1)
	}
	if *batch > 0 && *ncFrac > 0 {
		fmt.Fprintln(os.Stderr, "-batch cannot be combined with -nc (chunked admission bypasses the NC3V lock path)")
		os.Exit(1)
	}
	if *partitions > 1 && *system != "3v" {
		fmt.Fprintln(os.Stderr, "-partitions requires -system 3v")
		os.Exit(1)
	}
	if *partitions > 1 && *ncFrac > 0 {
		fmt.Fprintln(os.Stderr, "-partitions cannot be combined with -nc (NC3V assumes a single global epoch)")
		os.Exit(1)
	}
	switch *system {
	case "3v":
		ccfg := core.Config{
			Nodes:      *nodes,
			NCMode:     *ncFrac > 0,
			Partitions: *partitions,
			LockWait:   time.Second,
			NetConfig:  netCfg,
			Obs:        obs.Options{TraceSampleN: *traceSample},
		}
		if *chaos {
			ccfg.Reliable = *reliable
			ccfg.ResendInterval = 5 * time.Millisecond
			ccfg.AckTimeout = 30 * time.Second
		}
		if *batch > 0 {
			const window = 50 * time.Microsecond
			ccfg.NetConfig.BatchWindow = window
			ccfg.ExecChunk = 64
			ccfg.BatchedCounters = true
			if ccfg.Reliable {
				ccfg.ReliableConfig.FlushInterval = window
			}
		}
		cluster, err = core.NewCluster(ccfg)
		if err == nil {
			cluster.Start()
			sys = baseline.ThreeV{Cluster: cluster}
			preload = func(n model.NodeID, k string, rec *model.Record) { cluster.Preload(n, k, rec) }
		}
	case "nocoord":
		var s *nocoord.System
		s, err = nocoord.New(nocoord.Config{Nodes: *nodes, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "2pc":
		var s *globalsync.System
		s, err = globalsync.New(globalsync.Config{Nodes: *nodes, LockWait: 5 * time.Second, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "manual":
		var s *manualver.System
		s, err = manualver.New(manualver.Config{Nodes: *nodes, StabilizationDelay: *advance / 2, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	case "syncadv":
		var s *syncadv.System
		s, err = syncadv.New(syncadv.Config{Nodes: *nodes, NetConfig: netCfg})
		if err == nil {
			sys = s
			preload = func(n model.NodeID, k string, rec *model.Record) { s.Preload(n, k, rec) }
		}
	default:
		err = fmt.Errorf("unknown -system %q", *system)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Close()
	if *ncFrac > 0 && *system != "3v" {
		fmt.Fprintln(os.Stderr, "-nc requires -system 3v (NC3V)")
		os.Exit(1)
	}

	serving := false
	if *metricsAddr != "" {
		if cluster == nil {
			fmt.Fprintln(os.Stderr, "-metrics requires -system 3v")
			os.Exit(1)
		}
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(1)
		}
		go func() {
			if serr := http.Serve(ln, obs.Handler(cluster)); serr != nil {
				fmt.Fprintln(os.Stderr, serr)
			}
		}()
		serving = true
		fmt.Printf("metrics: http://%s/metrics (also /metrics.json, /events.json, /traces.json)\n", ln.Addr())
	}

	gen := workload.New(workload.Config{
		Nodes:                *nodes,
		Groups:               256,
		Span:                 2,
		ReadFraction:         *readFrac,
		NonCommutingFraction: *ncFrac,
		AbortFraction:        *abortFrac,
		Seed:                 *seed,
	})

	fmt.Printf("%s simulation: %d nodes, %d txns, read=%.0f%% nc=%.0f%% abort=%.0f%%, latency=%v jitter=%v, advance every %v\n",
		sys.Name(), *nodes, *txns, *readFrac*100, *ncFrac*100, *abortFrac*100, *latency, *jitter, *advance)
	if *partitions > 1 {
		fmt.Printf("partitioned: %d partitions, placement map v%d\n", *partitions, cluster.PlacementMap().Version)
	}

	var cc *harness.Chaos
	if *chaos {
		fi, ok := cluster.Network().(transport.FaultInjector)
		if !ok {
			fmt.Fprintln(os.Stderr, "-chaos: network does not support fault injection")
			os.Exit(1)
		}
		fmt.Printf("chaos: drop=%.1f%% dup=%.1f%% partition 0<->%d at %v for %v, reliable=%v\n",
			*drop*100, *dup*100, *nodes-1, *partAt, *partFor, *reliable)
		cc = harness.StartChaos(fi, harness.ChaosConfig{
			DropRate:     *drop,
			DupRate:      *dup,
			PartitionAt:  *partAt,
			PartitionFor: *partFor,
			PartitionA:   0,
			PartitionB:   model.NodeID(*nodes - 1),
		})
	}

	res := harness.Run(sys, harness.RunConfig{
		Txns:            *txns,
		Concurrency:     *conc,
		Batch:           *batch,
		AdvanceInterval: *advance,
		FinalAdvance:    !*chaos, // chaos: heal first, then advance below
		Gen:             gen,
		Preload: func(n model.NodeID, k string) {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			rec.Fields["count"] = 0
			preload(n, k, rec)
		},
	})

	var convErrs []string
	chaosOK := true
	if *chaos {
		cc.Stop() // heal everything; retransmissions repair the backlog
		sys.Advance()
		sys.Advance()
		convErrs = cluster.ConvergenceErrors()
		ts := cluster.Metrics().Transport
		fmt.Printf("chaos outcome: dropped=%d partition-dropped=%d duplicated=%d retransmits=%d dup-frames-discarded=%d partitions=%d\n",
			ts.Dropped, ts.PartitionDrops, ts.Duplicated, ts.Retransmits, ts.DupDropped, cc.Partitions())
		for _, e := range convErrs {
			fmt.Printf("convergence FAILED: %s\n", e)
		}
		if res.TimedOut > 0 {
			fmt.Printf("chaos FAILED: %d transaction(s) timed out\n", res.TimedOut)
		}
		faultsSeen := (*drop == 0 || ts.Dropped > 0) && (*dup == 0 || ts.Duplicated > 0)
		if !faultsSeen {
			fmt.Println("chaos FAILED: fault rates set but no faults observed — the run proved nothing")
		}
		chaosOK = len(convErrs) == 0 && res.TimedOut == 0 && faultsSeen
		if chaosOK {
			fmt.Println("chaos PASS: all transactions completed and the cluster converged after heal")
		}
	}

	tbl := &harness.Table{Title: "results", Header: []string{"metric", "value"}}
	tbl.Add("completed", fmt.Sprint(res.Completed))
	tbl.Add("timed out", fmt.Sprint(res.TimedOut))
	tbl.Add("updates / reads / nc", fmt.Sprintf("%d / %d / %d", res.Updates, res.Reads, res.NCs))
	tbl.Add("throughput (txn/s)", harness.F2(res.Throughput()))
	tbl.Add("latency p50/p99/max (ms)", fmt.Sprintf("%s / %s / %s",
		harness.Ms(res.LatAll.Quantile(0.5)), harness.Ms(res.LatAll.Quantile(0.99)), harness.Ms(res.LatAll.Max())))
	tbl.Add("advancements", fmt.Sprint(res.Advances))
	if *batch > 0 && cluster != nil {
		tbl.Add("mean net batch size", harness.F2(cluster.Metrics().Obs.Gauges[obs.GaugeNetBatchMeanSize]))
	}
	tbl.Add("read staleness mean/max (updates)", fmt.Sprintf("%s / %d", harness.F2(res.StalenessMean), res.StalenessMax))
	tbl.Add("anomalies (atomic visibility)", fmt.Sprint(res.Anomalies))
	fmt.Println(tbl.String())

	structuralOK := true
	partitionsOK := true
	if cluster != nil {
		rep := verify.CheckStructural(cluster)
		fmt.Println(rep.String())
		structuralOK = rep.OK()

		if cluster.Partitions() > 1 {
			pt := &harness.Table{Title: "partitions", Header: []string{"part", "primary", "vr", "vu", "max lag"}}
			for _, st := range cluster.PartitionStates() {
				pt.Add(fmt.Sprint(st.Part), fmt.Sprint(st.Primary), fmt.Sprint(st.VR), fmt.Sprint(st.VU), fmt.Sprint(st.MaxLag))
			}
			fmt.Println(pt.String())
			prep := verify.CheckPartitions(cluster)
			fmt.Println(prep.String())
			partitionsOK = prep.OK()
		}

		m := cluster.Metrics()
		var dual, comp, impl int64
		for _, nm := range m.PerNode {
			dual += nm.DualWrites
			comp += nm.Compensations
			impl += nm.ImplicitAdvances
		}
		fmt.Printf("protocol events: dual-writes=%d compensations=%d implicit-advances=%d messages=%d\n",
			dual, comp, impl, m.Transport.Messages)

		if s := m.Obs; s.TxnRead.Count+s.TxnUpdate.Count > 0 {
			ot := &harness.Table{Title: "observability", Header: []string{"metric", "p50 / p95 / p99 / max"}}
			ot.Add("read txn latency", quantileRow(s.TxnRead))
			ot.Add("update txn latency", quantileRow(s.TxnUpdate))
			ot.Add("subtxn hop latency", quantileRow(s.SubtxnHop))
			ot.Add("subtxn exec time", quantileRow(s.SubtxnExec))
			for i, ph := range s.AdvPhases {
				ot.Add(fmt.Sprintf("advance phase %d", i+1), quantileRow(ph))
			}
			ot.Add("advance total", quantileRow(s.AdvTotal))
			fmt.Println(ot.String())
			fmt.Printf("obs counters:")
			for _, k := range []string{"txns_submitted", "txns_committed", "txns_compensated", "txns_aborted", "advancements", "dual_writes"} {
				fmt.Printf(" %s=%d", k, s.Counters[k])
			}
			fmt.Printf(" events_recorded=%d\n", s.EventsRecorded)
		}

		if *traceSample > 0 {
			trs := cluster.ObsTraces()
			complete := 0
			for _, tr := range trs {
				if tr.Complete {
					complete++
				}
			}
			fmt.Printf("traces: %d in ring, %d complete (newest %d spans)\n",
				len(trs), complete, func() int {
					if len(trs) > 0 {
						return trs[0].Spans
					}
					return 0
				}())
		}
	}

	if serving {
		if *hold > 0 {
			fmt.Printf("holding %v for scrapes...\n", *hold)
			time.Sleep(*hold)
		} else {
			fmt.Println("serving metrics until interrupted (ctrl-c)...")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
	}

	if res.Anomalies > 0 || !structuralOK || !chaosOK || !partitionsOK {
		stopProf() // os.Exit skips the deferred finalizer
		os.Exit(1)
	}
}

// quantileRow renders a histogram snapshot's headline quantiles in
// milliseconds.
func quantileRow(s obs.HistSnapshot) string {
	if s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s / %s / %s / %s",
		harness.Ms(time.Duration(s.P50())), harness.Ms(time.Duration(s.Quantile(0.95))),
		harness.Ms(time.Duration(s.P99())), harness.Ms(time.Duration(s.Max)))
}
