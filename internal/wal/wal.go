// Package wal is the per-node write-ahead log underpinning crash
// durability: an append-only, CRC-framed, fsync-batched record log with
// segment rotation, plus atomically installed checkpoint blobs that
// bound replay work and let old segments be truncated.
//
// The log stores opaque records — the semantic record set (applied
// subtransactions, counter increments, version switches, session
// watermarks) is defined one layer up in internal/durable, keeping this
// package free of protocol imports and reusable by tests and fuzzing.
//
// # Framing and torn-write tolerance
//
// Each record is framed as
//
//	uint32 BE  body length
//	uint32 BE  CRC-32C (Castagnoli) of the body
//	...        body
//
// A crash can tear the tail of the current segment: a partial length
// prefix, a partial body, or garbage from a reused block. Replay
// therefore treats the first framing violation — short header, short
// body, CRC mismatch, or an implausible length — as the durable end of
// the log: everything before it is applied, everything at and after it
// is ignored. Replay never panics on corrupt input and never hands a
// record to the caller whose checksum does not match.
//
// # Segments
//
// Records append to numbered segment files (wal-00000042.log). A
// segment rotates once it exceeds Options.SegmentBytes, and Open always
// starts a fresh segment after the highest existing one rather than
// appending to a possibly-torn tail. Checkpoints record the first
// segment that must be replayed; older segments are deleted by
// TruncateBefore.
//
// # Fsync policies
//
// FsyncAlways gives group commit: Barrier blocks until every record
// appended before the call is fdatasync'd, and concurrent barriers
// coalesce into one fsync. FsyncInterval flushes on a timer (bounded
// loss window, documented in README "Durability"); FsyncNever leaves
// flushing to the OS. Barrier is a no-op under the latter two.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Policy selects when appended records are forced to stable storage.
type Policy int

const (
	// FsyncAlways makes Barrier block until the log is durable up to
	// the caller's last append (group-committed across callers).
	FsyncAlways Policy = iota
	// FsyncInterval flushes on a background timer; Barrier is a no-op
	// and a crash can lose up to one interval of acknowledged records.
	FsyncInterval
	// FsyncNever performs no explicit flushing at all.
	FsyncNever
)

// ParsePolicy maps the -fsync flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return FsyncAlways, nil
	case "interval", "batch":
		return FsyncInterval, nil
	case "never", "off", "none":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options parameterizes a Log.
type Options struct {
	// Dir is the log directory; created if absent.
	Dir string
	// Fsync selects the durability policy (default FsyncAlways).
	Fsync Policy
	// FsyncInterval spaces timer flushes under FsyncInterval; 0 means
	// 5ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size; 0 means
	// 8 MiB.
	SegmentBytes int64
	// Obs, when non-nil, receives append/fsync latency observations and
	// segment gauges.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	return o
}

// MaxRecord bounds a single record body; a corrupt length prefix past
// this is treated as the end of the log rather than an allocation.
const MaxRecord = 32 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is the append side of the write-ahead log. All methods are safe
// for concurrent use.
type Log struct {
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	seg       uint64 // current segment number
	segBytes  int64
	appended  uint64 // records appended (monotonic)
	durable   uint64 // records known durable
	syncReq   bool   // flusher wake-up flag
	closed    bool
	err       error // sticky I/O error; the log refuses further appends
	bytesTot  int64
	fsyncs    int64
	wg        sync.WaitGroup
	stopTimer chan struct{}
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	Segments      int
	SegmentBytes  int64 // bytes in the active segment
	TotalAppended int64 // bytes appended since Open
	Records       uint64
	Fsyncs        int64
}

// Open creates (or reuses) the log directory and starts a fresh
// segment strictly after the highest existing one — recovery replays
// old segments read-only; the appender never touches them again.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := ListSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	l := &Log{opts: opts, seg: next - 1, stopTimer: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.flusher()
	if opts.Fsync == FsyncInterval {
		l.wg.Add(1)
		go l.intervalFlusher()
	}
	return l, nil
}

func segName(seg uint64) string { return fmt.Sprintf("wal-%08d.log", seg) }

// ListSegments returns the segment numbers present in dir, ascending.
func ListSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil && e.Name() == segName(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openSegmentLocked syncs and closes the current segment (if any) and
// opens segment number seg. Callers hold mu (or own the log solely).
func (l *Log) openSegmentLocked(seg uint64) error {
	if l.f != nil {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
		l.opts.Obs.ObserveWALFsync(time.Since(start))
		l.fsyncs++
		l.durable = l.appended
		l.cond.Broadcast()
		l.f.Close()
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(seg)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		l.err = err
		return err
	}
	l.f = f
	l.seg = seg
	l.segBytes = 0
	l.publishGauges()
	return nil
}

func (l *Log) publishGauges() {
	if l.opts.Obs == nil {
		return
	}
	l.opts.Obs.SetGauge(obs.GaugeWALSegment, float64(l.seg))
	l.opts.Obs.SetGauge(obs.GaugeWALBytes, float64(l.bytesTot))
}

// Append frames and writes one record, rotating the segment if needed,
// and returns the record's LSN (1-based append index). The write lands
// in the OS page cache; durability is Barrier's job.
func (l *Log) Append(body []byte) (uint64, error) {
	start := time.Now()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.openSegmentLocked(l.seg + 1); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.err = err
		return 0, err
	}
	if _, err := l.f.Write(body); err != nil {
		l.err = err
		return 0, err
	}
	n := int64(len(body) + 8)
	l.segBytes += n
	l.bytesTot += n
	l.appended++
	l.publishGauges()
	l.opts.Obs.ObserveWALAppend(time.Since(start))
	return l.appended, nil
}

// Barrier blocks until every record appended before the call is
// durable (FsyncAlways), or returns immediately under the relaxed
// policies. Concurrent barriers share one fsync.
func (l *Log) Barrier() error {
	if l.opts.Fsync != FsyncAlways {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	for l.durable < target && l.err == nil && !l.closed {
		l.syncReq = true
		l.cond.Broadcast() // wake the flusher
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.closed && l.durable < target {
		return ErrClosed
	}
	return nil
}

// flusher is the group-commit goroutine: whenever barriers are waiting
// it performs one fsync covering every record appended so far.
func (l *Log) flusher() {
	defer l.wg.Done()
	l.mu.Lock()
	for {
		for !l.syncReq && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		l.syncReq = false
		target := l.appended
		f := l.f
		l.mu.Unlock()

		start := time.Now()
		err := f.Sync()
		d := time.Since(start)

		l.mu.Lock()
		l.opts.Obs.ObserveWALFsync(d)
		l.fsyncs++
		if err != nil && l.err == nil {
			l.err = err
		}
		if err == nil && target > l.durable && f == l.f {
			l.durable = target
		}
		l.cond.Broadcast()
	}
}

// intervalFlusher drives the FsyncInterval policy.
func (l *Log) intervalFlusher() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTimer:
			return
		case <-t.C:
			l.mu.Lock()
			dirty := l.durable < l.appended && l.err == nil && !l.closed
			f := l.f
			target := l.appended
			l.mu.Unlock()
			if !dirty {
				continue
			}
			start := time.Now()
			err := f.Sync()
			l.mu.Lock()
			l.opts.Obs.ObserveWALFsync(time.Since(start))
			l.fsyncs++
			if err != nil && l.err == nil {
				l.err = err
			}
			if err == nil && target > l.durable && f == l.f {
				l.durable = target
			}
			l.mu.Unlock()
		}
	}
}

// Rotate forces a segment boundary and returns the new (empty) active
// segment's number — the checkpoint anchor: a checkpoint taken
// immediately after Rotate covers every record in segments before it,
// so replay starts at the returned segment.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.openSegmentLocked(l.seg + 1); err != nil {
		return 0, err
	}
	return l.seg, nil
}

// TruncateBefore deletes segments numbered strictly below seg —
// checkpoint garbage collection. Deletion failures are ignored (a
// leftover segment below the checkpoint anchor is never replayed).
func (l *Log) TruncateBefore(seg uint64) {
	segs, err := ListSegments(l.opts.Dir)
	if err != nil {
		return
	}
	for _, n := range segs {
		if n < seg {
			os.Remove(filepath.Join(l.opts.Dir, segName(n)))
		}
	}
}

// Seg returns the active segment number.
func (l *Log) Seg() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// SetObs late-binds the observability registry — for callers whose
// registry only exists after the log is opened (the node binary opens
// the log before building the cluster that owns the registry). Call
// before checkpoints start; append/fsync observation is synchronized.
func (l *Log) SetObs(r *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Obs = r
}

// Stats returns accounting for gauges and tests.
func (l *Log) Stats() Stats {
	segs, _ := ListSegments(l.opts.Dir)
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:      len(segs),
		SegmentBytes:  l.segBytes,
		TotalAppended: l.bytesTot,
		Records:       l.appended,
		Fsyncs:        l.fsyncs,
	}
}

// Close syncs and closes the active segment. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.f
	err := l.err
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.stopTimer)
	l.wg.Wait()
	if f != nil {
		if serr := f.Sync(); serr != nil && err == nil {
			err = serr
		}
		f.Close()
	}
	return err
}

// Replay iterates every record in segments numbered >= fromSeg in
// order, invoking fn on each CRC-verified body. The first framing
// violation anywhere — torn tail, bad CRC, implausible length, or a
// missing segment in the sequence — ends the replay: records past the
// damage are never delivered, because their predecessors may be lost.
// fn errors abort the replay and are returned verbatim.
func Replay(dir string, fromSeg uint64, fn func(body []byte) error) error {
	segs, err := ListSegments(dir)
	if err != nil {
		return err
	}
	expect := fromSeg
	for _, seg := range segs {
		if seg < fromSeg {
			continue
		}
		if fromSeg == 0 && expect == 0 {
			expect = seg // no checkpoint anchor: start at the first segment present
		}
		if seg != expect {
			return nil // gap in the sequence: stop at the last contiguous segment
		}
		expect++
		ok, err := replaySegment(filepath.Join(dir, segName(seg)), fn)
		if err != nil {
			return err
		}
		if !ok {
			return nil // torn or corrupt record: durable end of log
		}
	}
	return nil
}

// replaySegment streams one segment. Returns ok=false on the first
// framing violation (replay must stop), or an fn error verbatim.
func replaySegment(path string, fn func(body []byte) error) (ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, nil // unreadable segment: treat as end of log
	}
	defer f.Close()
	var hdr [8]byte
	var body []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header. Either
			// way this segment has no further valid records; a clean EOF
			// lets the next segment continue, a torn one must stop.
			return err == io.EOF, nil
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if size > MaxRecord {
			return false, nil
		}
		if cap(body) < int(size) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(f, body); err != nil {
			return false, nil // torn body
		}
		if crc32.Checksum(body, castagnoli) != want {
			return false, nil // bit rot or torn write across the CRC
		}
		if err := fn(body); err != nil {
			return false, err
		}
	}
}

// --- Checkpoints ---

// checkpoint file layout: uint32 BE CRC-32C of the rest, uint64 BE
// anchor segment, then the opaque snapshot blob.
func ckptName(seg uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", seg) }

// SaveCheckpoint atomically installs a checkpoint blob anchored at
// segment seg (replay resumes at seg): write to a temp file, fsync,
// rename into place, fsync the directory, then delete older
// checkpoints and truncate segments below the anchor.
func (l *Log) SaveCheckpoint(seg uint64, blob []byte) error {
	dir := l.opts.Dir
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[4:12], seg)
	crc := crc32.Update(crc32.Checksum(hdr[4:12], castagnoli), castagnoli, blob)
	binary.BigEndian.PutUint32(hdr[0:4], crc)

	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, ckptName(seg))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	syncDir(dir)
	// Older checkpoints and out-replayed segments are now garbage.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%d.ckpt", &n); err == nil && e.Name() == ckptName(n) && n < seg {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	l.TruncateBefore(seg)
	l.opts.Obs.Inc(obs.CtrCheckpoints, 1)
	return nil
}

// LoadCheckpoint returns the newest checkpoint whose CRC verifies,
// falling back to older ones if the newest is damaged. found is false
// when no usable checkpoint exists (replay then starts at the first
// segment with empty state).
func LoadCheckpoint(dir string) (seg uint64, blob []byte, found bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	var segs []uint64
	for _, e := range ents {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%d.ckpt", &n); err == nil && e.Name() == ckptName(n) {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] > segs[j] }) // newest first
	for _, n := range segs {
		data, rerr := os.ReadFile(filepath.Join(dir, ckptName(n)))
		if rerr != nil || len(data) < 12 {
			continue
		}
		want := binary.BigEndian.Uint32(data[0:4])
		if crc32.Checksum(data[4:], castagnoli) != want {
			continue // damaged: try an older checkpoint
		}
		anchor := binary.BigEndian.Uint64(data[4:12])
		if anchor != n {
			continue
		}
		return anchor, data[12:], true, nil
	}
	return 0, nil, false, nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
