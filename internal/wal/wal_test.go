package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, mut func(*Options)) *Log {
	t.Helper()
	opts := Options{Dir: dir, Fsync: FsyncNever}
	if mut != nil {
		mut(&opts)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendAll(t *testing.T, l *Log, bodies [][]byte) {
	t.Helper()
	for _, b := range bodies {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string, fromSeg uint64) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Replay(dir, fromSeg, func(body []byte) error {
		out = append(out, append([]byte(nil), body...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func wantBodies(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	bodies := [][]byte{[]byte("one"), {}, []byte("three"), bytes.Repeat([]byte{0xAB}, 4096)}
	appendAll(t, l, bodies)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantBodies(t, replayAll(t, dir, 0), bodies)
}

func TestReplaySpansSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation on nearly every append.
	l := openTest(t, dir, func(o *Options) { o.SegmentBytes = 32 })
	var bodies [][]byte
	for i := 0; i < 50; i++ {
		bodies = append(bodies, []byte(fmt.Sprintf("record-%03d", i)))
	}
	appendAll(t, l, bodies)
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wantBodies(t, replayAll(t, dir, 0), bodies)
}

func TestOpenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	appendAll(t, l, [][]byte{[]byte("first-life")})
	seg1 := l.Seg()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, nil)
	if l2.Seg() <= seg1 {
		t.Fatalf("reopen stayed on segment %d (was %d); must start a fresh one", l2.Seg(), seg1)
	}
	appendAll(t, l2, [][]byte{[]byte("second-life")})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	wantBodies(t, replayAll(t, dir, 0), [][]byte{[]byte("first-life"), []byte("second-life")})
}

func TestBarrierGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) { o.Fsync = FsyncAlways })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", i, j))); err != nil {
					t.Error(err)
					return
				}
				if err := l.Barrier(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Fsyncs == 0 {
		t.Fatal("FsyncAlways barriers performed zero fsyncs")
	}
	if st.Fsyncs >= int64(st.Records) {
		t.Logf("no group-commit coalescing observed (%d fsyncs for %d records) — legal but unexpected", st.Fsyncs, st.Records)
	}
	if got := len(replayAll(t, dir, 0)); got != int(st.Records) {
		t.Fatalf("replayed %d of %d records", got, st.Records)
	}
}

func TestIntervalPolicyFlushes(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) {
		o.Fsync = FsyncInterval
		o.FsyncInterval = time.Millisecond
	})
	appendAll(t, l, [][]byte{[]byte("timed")})
	if err := l.Barrier(); err != nil { // no-op under FsyncInterval
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := openTest(t, t.TempDir(), nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", FsyncAlways, false},
		{"always", FsyncAlways, false},
		{"ALWAYS", FsyncAlways, false},
		{"interval", FsyncInterval, false},
		{"batch", FsyncInterval, false},
		{"never", FsyncNever, false},
		{"off", FsyncNever, false},
		{"none", FsyncNever, false},
		{"bogus", 0, true},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.err != (err != nil) || (!tc.err && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// --- Corruption table tests: recovery stops at the last valid record,
// never panics, never delivers a record whose checksum fails. ---

// writeSegments lays down bodies into a single segment and returns its
// path plus the framed bytes, for surgical corruption.
func writeSegments(t *testing.T, dir string, bodies [][]byte) string {
	t.Helper()
	l := openTest(t, dir, nil)
	appendAll(t, l, bodies)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return filepath.Join(dir, segName(segs[0]))
}

func frameLen(body []byte) int { return 8 + len(body) }

func TestReplayCorruption(t *testing.T) {
	bodies := [][]byte{[]byte("alpha"), []byte("bravo-longer"), []byte("charlie")}
	off01 := frameLen(bodies[0])         // start of record 1
	off12 := off01 + frameLen(bodies[1]) // start of record 2
	cases := []struct {
		name    string
		corrupt func(t *testing.T, data []byte) []byte
		want    int // records surviving replay
	}{
		{"truncated tail mid-body", func(t *testing.T, d []byte) []byte {
			return d[:len(d)-3]
		}, 2},
		{"truncated tail mid-header", func(t *testing.T, d []byte) []byte {
			return d[:off12+4]
		}, 2},
		{"torn record: header only", func(t *testing.T, d []byte) []byte {
			return d[:off12+8]
		}, 2},
		{"bad CRC in last record", func(t *testing.T, d []byte) []byte {
			d[len(d)-1] ^= 0xFF
			return d
		}, 2},
		{"mid-segment corruption halts before later valid records", func(t *testing.T, d []byte) []byte {
			d[off01+8] ^= 0xFF // flip first body byte of record 1
			return d
		}, 1},
		{"implausible length prefix", func(t *testing.T, d []byte) []byte {
			binary.BigEndian.PutUint32(d[off12:off12+4], MaxRecord+1)
			return d
		}, 2},
		{"length prefix larger than file", func(t *testing.T, d []byte) []byte {
			binary.BigEndian.PutUint32(d[off12:off12+4], 1<<20)
			return d
		}, 2},
		{"empty segment", func(t *testing.T, d []byte) []byte {
			return nil
		}, 0},
		{"pure garbage", func(t *testing.T, d []byte) []byte {
			g := bytes.Repeat([]byte{0xDE, 0xAD}, 64)
			return g
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := writeSegments(t, dir, bodies)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(t, data), 0o644); err != nil {
				t.Fatal(err)
			}
			got := replayAll(t, dir, 0)
			wantBodies(t, got, bodies[:tc.want])
		})
	}
}

func TestReplayStopsAtSegmentGap(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 }) // rotate every append
	bodies := [][]byte{[]byte("s1"), []byte("s2"), []byte("s3")}
	appendAll(t, l, bodies)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v", segs)
	}
	// Delete the middle segment: replay must stop at the gap rather
	// than skip over missing history.
	if err := os.Remove(filepath.Join(dir, segName(segs[1]))); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, segs[0])
	wantBodies(t, got, bodies[:1])
}

func TestReplayFromSegSkipsOlder(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 })
	appendAll(t, l, [][]byte{[]byte("old"), []byte("new")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	got := replayAll(t, dir, segs[len(segs)-1])
	wantBodies(t, got, [][]byte{[]byte("new")})
	got = replayAll(t, dir, segs[0])
	wantBodies(t, got, [][]byte{[]byte("old"), []byte("new")})
}

// --- Checkpoints ---

func TestCheckpointRoundTripAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, func(o *Options) { o.SegmentBytes = 1 })
	appendAll(t, l, [][]byte{[]byte("pre-1"), []byte("pre-2")})
	anchor, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("snapshot-state")
	if err := l.SaveCheckpoint(anchor, blob); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, [][]byte{[]byte("post-1")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg, got, found, err := LoadCheckpoint(dir)
	if err != nil || !found {
		t.Fatalf("LoadCheckpoint: found=%v err=%v", found, err)
	}
	if seg != anchor || !bytes.Equal(got, blob) {
		t.Fatalf("checkpoint (%d, %q), want (%d, %q)", seg, got, anchor, blob)
	}
	// Segments below the anchor were truncated…
	segs, _ := ListSegments(dir)
	for _, s := range segs {
		if s < anchor {
			t.Fatalf("segment %d survived truncation below anchor %d", s, anchor)
		}
	}
	// …and replay-from-anchor yields exactly the post-checkpoint records.
	wantBodies(t, replayAll(t, dir, seg), [][]byte{[]byte("post-1")})
}

func TestLoadCheckpointFallsBackPastCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, nil)
	a1, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(a1, []byte("older-good")); err != nil {
		t.Fatal(err)
	}
	a2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SaveCheckpoint(a2, []byte("newer-soon-bad")); err != nil {
		t.Fatal(err)
	}
	// SaveCheckpoint(a2) deleted the older file; recreate it as
	// SaveCheckpoint would have written it, then damage the newest.
	if err := l.SaveCheckpoint(a1, []byte("older-good")); err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, ckptName(a2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seg, blob, found, err := LoadCheckpoint(dir)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if seg != a1 || string(blob) != "older-good" {
		t.Fatalf("fell back to (%d, %q), want (%d, %q)", seg, blob, a1, "older-good")
	}
	l.Close()
}

func TestLoadCheckpointMissing(t *testing.T) {
	_, _, found, err := LoadCheckpoint(t.TempDir())
	if err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
	_, _, found, err = LoadCheckpoint(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || found {
		t.Fatalf("missing dir: found=%v err=%v", found, err)
	}
}

// FuzzWALReplay builds a log from three fuzzer-chosen record bodies,
// then applies a fuzzer-chosen truncation and byte flip to the segment
// file. Replay must never panic, must deliver only CRC-clean records,
// and must deliver a strict prefix of what was written.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte("alpha"), []byte(""), []byte("gamma-longer"), uint16(0), byte(0))
	f.Add([]byte("a"), []byte("bb"), []byte("ccc"), uint16(5), byte(0xFF))
	f.Add(bytes.Repeat([]byte{0x00}, 100), []byte("x"), []byte("y"), uint16(40), byte(1))
	f.Fuzz(func(t *testing.T, b1, b2, b3 []byte, cut uint16, flip byte) {
		dir := t.TempDir()
		bodies := [][]byte{b1, b2, b3}
		l, err := Open(Options{Dir: dir, Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bodies {
			if _, err := l.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := ListSegments(dir)
		if err != nil || len(segs) == 0 {
			t.Fatalf("segments: %v (%v)", segs, err)
		}
		path := filepath.Join(dir, segName(segs[0]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 && flip != 0 {
			data[int(cut)%len(data)] ^= flip
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var got [][]byte
		if err := Replay(dir, 0, func(body []byte) error {
			got = append(got, append([]byte(nil), body...))
			return nil
		}); err != nil {
			t.Fatalf("replay returned error on corrupt input: %v", err)
		}
		if len(got) > len(bodies) {
			t.Fatalf("replay invented records: got %d, wrote %d", len(got), len(bodies))
		}
		for i, b := range got {
			if !bytes.Equal(b, bodies[i]) {
				// A flipped bit can only produce a mismatching record if
				// the CRC collides — with CRC-32C over our framing that
				// means the flip hit after the prefix we replayed, so any
				// delivered record must match what was written.
				t.Fatalf("record %d = %q, want %q", i, b, bodies[i])
			}
		}
	})
}

// Guard: the castagnoli table in this package must actually be
// Castagnoli — replay correctness depends on matching Append's polynomial.
func TestChecksumPolynomial(t *testing.T) {
	if crc32.Checksum([]byte("123456789"), castagnoli) != 0xE3069283 {
		t.Fatal("castagnoli table does not implement CRC-32C")
	}
}
