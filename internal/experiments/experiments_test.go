package experiments

import (
	"strings"
	"testing"
)

// The experiment suite runs at reduced scale in tests; each experiment
// carries its own expected-shape assertions and returns an error when a
// paper claim fails to reproduce.

var testScale = Scale{Txns: 150}

func TestE1Table1(t *testing.T) {
	res, err := E1Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("Table 1 replay failed:\n%s", res.String())
	}
}

func TestE3AnomalyRate(t *testing.T) {
	tbl, err := E3AnomalyRate(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	out := tbl.String()
	if !strings.Contains(out, "3V") || !strings.Contains(out, "NoCoord") {
		t.Errorf("table missing systems:\n%s", out)
	}
}

func TestE4VersionBound(t *testing.T) {
	tbl, err := E4VersionBound(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE5AdvancementInterference(t *testing.T) {
	tbl, err := E5AdvancementInterference(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	if !strings.Contains(tbl.String(), "SyncAdv") {
		t.Error("missing SyncAdv row")
	}
}

func TestE6NonCommutingFraction(t *testing.T) {
	tbl, err := E6NonCommutingFraction(Scale{Txns: 80})
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE7QuiescenceDetection(t *testing.T) {
	tbl, err := E7QuiescenceDetection(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	if len(strings.Split(strings.TrimSpace(tbl.String()), "\n")) < 7 {
		t.Errorf("expected 6 sweep rows:\n%s", tbl)
	}
}

func TestE8CopyOverhead(t *testing.T) {
	tbl, err := E8CopyOverhead(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE9ThroughputScaling(t *testing.T) {
	tbl, err := E9ThroughputScaling(Scale{Txns: 100})
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE10Compensation(t *testing.T) {
	tbl, err := E10Compensation(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE11Staleness(t *testing.T) {
	tbl, err := E11Staleness(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
}

func TestE12DualWriteOverhead(t *testing.T) {
	tbl, err := E12DualWriteOverhead(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	if !strings.Contains(tbl.String(), "dual-rate") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestE13RecoveryCost(t *testing.T) {
	tbl, err := E13RecoveryCost(testScale)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	out := tbl.String()
	if !strings.Contains(out, "clean crash") || !strings.Contains(out, "mid-cycle crash") {
		t.Errorf("table missing scenarios:\n%s", out)
	}
}
