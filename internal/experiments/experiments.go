// Package experiments implements the reproduction's experiment suite
// E1–E13 (see DESIGN.md §4): every artifact of the paper (Table 1,
// Figure 2) plus every measurable claim (no-delay advancement, ≤3
// versions, anomaly elimination, scalability vs. global two-phase
// commit, compensation-safe counters, staleness control). Each
// experiment returns a rendered table; cmd/threev-bench prints them and
// bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/baseline/copyalways"
	"repro/internal/baseline/globalsync"
	"repro/internal/baseline/manualver"
	"repro/internal/baseline/nocoord"
	"repro/internal/baseline/syncadv"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Scale tunes experiment sizes: 1 is the quick suite (seconds), larger
// values multiply transaction counts.
type Scale struct {
	Txns int // base transaction count per run
}

// DefaultScale is used by cmd/threev-bench.
var DefaultScale = Scale{Txns: 400}

// preloadFields is the record every generator-touched item starts with.
func preloadRec() *model.Record {
	rec := model.NewRecord()
	rec.Fields["bal"] = 0
	rec.Fields["count"] = 0
	return rec
}

// newThreeV builds a started 3V cluster as a baseline.System.
func newThreeV(nodes int, ncMode bool, net transport.Config) (baseline.ThreeV, *core.Cluster, error) {
	c, err := core.NewCluster(core.Config{
		Nodes:     nodes,
		NCMode:    ncMode,
		LockWait:  time.Second,
		NetConfig: net,
	})
	if err != nil {
		return baseline.ThreeV{}, nil, err
	}
	c.Start()
	return baseline.ThreeV{Cluster: c}, c, nil
}

// E1Table1 replays the paper's Table 1 / Figure 2 execution and
// returns the step report (experiments E1+E2).
func E1Table1() (*trace.Result, error) {
	return trace.Replay()
}

// E3AnomalyRate measures the fraction of group reads that observe a
// partial multi-node update — the hospital anomaly — for 3V, the
// no-coordination baseline, and manual versioning at two stabilization
// delays. Expected shape: 3V = 0; NoCoord > 0; ManualVer > 0 with zero
// delay, shrinking as the delay grows.
func E3AnomalyRate(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E3: anomaly rate (hospital workload, 3 nodes, jittered network)",
		Header: []string{"system", "reads", "anomalies", "rate", "throughput(txn/s)"},
	}
	net := transport.Config{Jitter: 500 * time.Microsecond, Seed: 7}
	run := func(sys baseline.System, preload func(model.NodeID, string), advance time.Duration) harness.RunResult {
		gen := workload.New(workload.Hospital(3, 11))
		return harness.Run(sys, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: advance,
			Gen:             gen,
			Preload:         preload,
		})
	}

	tv, c, err := newThreeV(3, false, net)
	if err != nil {
		return nil, err
	}
	res := run(tv, func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) }, 2*time.Millisecond)
	tv.Close()
	tbl.Add(res.System, fmt.Sprint(res.AuditedReads), fmt.Sprint(res.Anomalies),
		harness.F2(res.AnomalyRate()), harness.F2(res.Throughput()))
	if res.Anomalies != 0 {
		return tbl, fmt.Errorf("E3: 3V produced %d anomalies", res.Anomalies)
	}

	nc, err := nocoord.New(nocoord.Config{Nodes: 3, NetConfig: net})
	if err != nil {
		return nil, err
	}
	res = run(nc, func(n model.NodeID, k string) { nc.Preload(n, k, preloadRec()) }, 0)
	nc.Close()
	tbl.Add(res.System, fmt.Sprint(res.AuditedReads), fmt.Sprint(res.Anomalies),
		harness.F2(res.AnomalyRate()), harness.F2(res.Throughput()))

	for _, delay := range []time.Duration{0, 5 * time.Millisecond} {
		mv, err := manualver.New(manualver.Config{Nodes: 3, StabilizationDelay: delay, NetConfig: net})
		if err != nil {
			return nil, err
		}
		res = run(mv, func(n model.NodeID, k string) { mv.Preload(n, k, preloadRec()) }, 2*time.Millisecond)
		mv.Close()
		tbl.Add(fmt.Sprintf("%s(delay=%v)", res.System, delay), fmt.Sprint(res.AuditedReads),
			fmt.Sprint(res.Anomalies), harness.F2(res.AnomalyRate()), harness.F2(res.Throughput()))
	}
	return tbl, nil
}

// E4VersionBound runs the call-recording workload with aggressive
// continuous advancement and reports the version-bound invariants: the
// largest number of live versions ever observed (paper bound: 3) and
// any structural violations.
func E4VersionBound(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E4: version bound under aggressive advancement (call recording, 4 nodes)",
		Header: []string{"advance-interval", "txns", "advances", "max-live-versions", "violations"},
	}
	for _, interval := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond} {
		tv, c, err := newThreeV(4, false, transport.Config{Jitter: 300 * time.Microsecond, Seed: 3})
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.CallRecording(4, 17))
		res := harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: interval,
			FinalAdvance:    true,
			Gen:             gen,
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		maxLive := c.MaxLiveVersionsEver()
		vio := len(c.Violations())
		tv.Close()
		tbl.Add(fmt.Sprint(interval), fmt.Sprint(res.Completed), fmt.Sprint(res.Advances),
			fmt.Sprint(maxLive), fmt.Sprint(vio))
		if maxLive > 3 || vio > 0 {
			return tbl, fmt.Errorf("E4: bound violated: maxLive=%d violations=%d", maxLive, vio)
		}
	}
	return tbl, nil
}

// E5AdvancementInterference measures user-transaction latency while
// version advancement runs continuously: 3V (asynchronous advancement)
// vs 3V with advancement off (control) vs the synchronous-advancement
// strawman vs global 2PC. Expected shape: 3V's p99 is unaffected by
// advancement; SyncAdv's max latency balloons (transactions queue
// behind the freeze); Global2PC is slower across the board.
func E5AdvancementInterference(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E5: user latency with continuous advancement (4 nodes, 500µs base latency)",
		Header: []string{"system", "advances", "p50(ms)", "p99(ms)", "max(ms)", "throughput(txn/s)"},
	}
	net := transport.Config{BaseLatency: 500 * time.Microsecond, Jitter: 200 * time.Microsecond, Seed: 23}
	mkGen := func() *workload.Generator {
		return workload.New(workload.Config{Nodes: 4, Groups: 64, Span: 2, ReadFraction: 0.2, Seed: 29})
	}
	add := func(res harness.RunResult, label string) {
		tbl.Add(label, fmt.Sprint(res.Advances), harness.Ms(res.LatAll.Quantile(0.5)),
			harness.Ms(res.LatAll.Quantile(0.99)), harness.Ms(res.LatAll.Max()),
			harness.F2(res.Throughput()))
	}

	// 3V without advancement (control).
	tv, c, err := newThreeV(4, false, net)
	if err != nil {
		return nil, err
	}
	res := harness.Run(tv, harness.RunConfig{Txns: sc.Txns, Concurrency: 8, Gen: mkGen(),
		Preload: func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) }})
	tv.Close()
	add(res, "3V (no advancement)")
	control99 := res.LatAll.Quantile(0.99)

	// 3V with continuous advancement.
	tv, c, err = newThreeV(4, false, net)
	if err != nil {
		return nil, err
	}
	res = harness.Run(tv, harness.RunConfig{Txns: sc.Txns, Concurrency: 8, Gen: mkGen(),
		AdvanceInterval: time.Millisecond,
		Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) }})
	tv.Close()
	add(res, "3V (continuous advancement)")
	threeV99 := res.LatAll.Quantile(0.99)

	// SyncAdv with the same advancement cadence.
	sa, err := syncadv.New(syncadv.Config{Nodes: 4, NetConfig: net})
	if err != nil {
		return nil, err
	}
	res = harness.Run(sa, harness.RunConfig{Txns: sc.Txns, Concurrency: 8, Gen: mkGen(),
		AdvanceInterval: time.Millisecond,
		Preload:         func(n model.NodeID, k string) { sa.Preload(n, k, preloadRec()) }})
	sa.Close()
	add(res, "SyncAdv (continuous advancement)")

	// Global 2PC (no advancement concept).
	gs, err := globalsync.New(globalsync.Config{Nodes: 4, LockWait: 2 * time.Second, NetConfig: net})
	if err != nil {
		return nil, err
	}
	res = harness.Run(gs, harness.RunConfig{Txns: sc.Txns, Concurrency: 8, Gen: mkGen(),
		Preload: func(n model.NodeID, k string) { gs.Preload(n, k, preloadRec()) }})
	gs.Close()
	add(res, "Global2PC")

	// Sanity of the headline claim: advancement must not blow up 3V's
	// tail latency (allow generous headroom for scheduler noise).
	if control99 > 0 && threeV99 > control99*20 {
		return tbl, fmt.Errorf("E5: advancement inflated 3V p99 from %v to %v", control99, threeV99)
	}
	return tbl, nil
}

// E6NonCommutingFraction sweeps the share of non-commuting transactions
// through NC3V. Expected shape: graceful throughput degradation, and
// the 0%% point behaving like plain 3V with zero anomalies throughout.
func E6NonCommutingFraction(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E6: NC3V with a non-commuting fraction (point-of-sale, 4 nodes)",
		Header: []string{"nc-fraction", "completed", "timeouts", "p99(ms)", "throughput(txn/s)", "anomalies"},
	}
	for _, frac := range []float64{0, 0.05, 0.2, 0.5} {
		tv, c, err := newThreeV(4, true, transport.Config{Jitter: 200 * time.Microsecond, Seed: 41})
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.PointOfSale(4, frac, 43))
		res := harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: 5 * time.Millisecond,
			Gen:             gen,
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		vio := len(c.Violations())
		tv.Close()
		tbl.Add(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprint(res.Completed), fmt.Sprint(res.TimedOut),
			harness.Ms(res.LatAll.Quantile(0.99)), harness.F2(res.Throughput()), fmt.Sprint(res.Anomalies))
		if res.Anomalies > 0 || vio > 0 {
			return tbl, fmt.Errorf("E6: frac %.2f: anomalies=%d violations=%d", frac, res.Anomalies, vio)
		}
	}
	return tbl, nil
}

// E7QuiescenceDetection measures Phase 2 of version advancement — the
// asynchronous termination detector — as in-flight load and message
// latency grow: how long the updates phase-out takes and how many
// counter sweeps it needs. Soundness (never declaring early) is checked
// by the protocol invariants: an early declaration would corrupt the
// read version and show up as an anomaly or violation.
func E7QuiescenceDetection(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E7: quiescence detection cost (Phase 2) vs latency and fan-out",
		Header: []string{"base-latency", "fan-out", "phase2(ms)", "sweeps", "phase4(ms)", "total(ms)"},
	}
	for _, lat := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		for _, span := range []int{2, 4} {
			tv, c, err := newThreeV(4, false, transport.Config{BaseLatency: lat, Jitter: lat / 2, Seed: 51})
			if err != nil {
				return nil, err
			}
			gen := workload.New(workload.Config{Nodes: 4, Groups: 64, Span: span, Seed: 53})
			done := make(chan harness.RunResult, 1)
			go func() {
				done <- harness.Run(tv, harness.RunConfig{
					Txns:        sc.Txns / 2,
					Concurrency: 8,
					Gen:         gen,
					Preload:     func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
				})
			}()
			// Let load build, then advance mid-flight.
			time.Sleep(5 * time.Millisecond)
			rep := c.Advance()
			<-done
			tv.Close()
			tbl.Add(fmt.Sprint(lat), fmt.Sprint(span), harness.Ms(rep.Phase2),
				fmt.Sprint(rep.SweepsPhase2), harness.Ms(rep.Phase4), harness.Ms(rep.Total))
		}
	}
	return tbl, nil
}

// E8CopyOverhead compares 3V's copy-on-first-update-per-epoch against
// the related-work discipline of copying the whole object on every
// update (Section 7). Expected shape: with u updates per item per
// epoch, 3V makes ~1/u as many copies; the gap widens as records grow.
func E8CopyOverhead(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E8: copies per committed update — 3V vs copy-per-update (single node stream)",
		Header: []string{"updates/item/epoch", "updates", "3V-copies", "3V-bytes", "CA-copies", "CA-bytes", "copy-ratio"},
	}
	for _, perEpoch := range []int{1, 4, 16} {
		const items = 32
		updates := items * perEpoch * 4 // four epochs
		st := storage.New()
		ca := copyalways.New(2)
		for i := 0; i < items; i++ {
			key := fmt.Sprintf("k%02d", i)
			st.Preload(key, preloadRec())
			ca.Preload(key, preloadRec())
		}
		rng := rand.New(rand.NewSource(61))
		epoch := model.Version(1)
		for u := 0; u < updates; u++ {
			key := fmt.Sprintf("k%02d", rng.Intn(items))
			op := model.AddOp{Field: "bal", Delta: 1}
			// 3V: copy-on-update into the current epoch version.
			st.EnsureVersion(key, epoch)
			st.ApplyFrom(key, epoch, op)
			ca.Apply(key, op)
			if (u+1)%(items*perEpoch) == 0 {
				st.GC(epoch) // publish the epoch, drop superseded copies
				epoch++
			}
		}
		s3, sca := st.Stats(), ca.Stats()
		ratio := float64(sca.Copies) / float64(maxI64(s3.Copies, 1))
		tbl.Add(fmt.Sprint(perEpoch), fmt.Sprint(updates), fmt.Sprint(s3.Copies),
			fmt.Sprint(s3.BytesCopied), fmt.Sprint(sca.Copies), fmt.Sprint(sca.BytesCopied),
			harness.F2(ratio))
		if perEpoch > 1 && sca.Copies <= s3.Copies {
			return tbl, fmt.Errorf("E8: copy-always (%d) not costlier than 3V (%d) at %d updates/item/epoch",
				sca.Copies, s3.Copies, perEpoch)
		}
	}
	return tbl, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E9ThroughputScaling compares transaction throughput of 3V, NoCoord
// (upper bound) and Global2PC as per-message latency grows. Expected
// shape: 3V tracks NoCoord (its messages are one-way and off the
// commit path); Global2PC degrades with latency because every commit
// waits for the vote and decision rounds.
func E9ThroughputScaling(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E9: throughput vs message latency (4 nodes, recording workload)",
		Header: []string{"latency", "3V(txn/s)", "NoCoord(txn/s)", "Global2PC(txn/s)", "3V/2PC"},
	}
	for _, lat := range []time.Duration{0, time.Millisecond, 3 * time.Millisecond} {
		net := transport.Config{BaseLatency: lat, Seed: 71}
		mkGen := func() *workload.Generator {
			return workload.New(workload.Config{Nodes: 4, Groups: 128, Span: 2, ReadFraction: 0.1, Seed: 73})
		}
		txns := sc.Txns
		if lat >= 3*time.Millisecond {
			txns = sc.Txns / 2 // keep the slow points affordable
		}

		tv, c, err := newThreeV(4, false, net)
		if err != nil {
			return nil, err
		}
		r3 := harness.Run(tv, harness.RunConfig{Txns: txns, Concurrency: 16, Gen: mkGen(),
			AdvanceInterval: 10 * time.Millisecond,
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) }})
		tv.Close()

		ncS, err := nocoord.New(nocoord.Config{Nodes: 4, NetConfig: net})
		if err != nil {
			return nil, err
		}
		rn := harness.Run(ncS, harness.RunConfig{Txns: txns, Concurrency: 16, Gen: mkGen(),
			Preload: func(n model.NodeID, k string) { ncS.Preload(n, k, preloadRec()) }})
		ncS.Close()

		gs, err := globalsync.New(globalsync.Config{Nodes: 4, LockWait: 5 * time.Second, NetConfig: net})
		if err != nil {
			return nil, err
		}
		rg := harness.Run(gs, harness.RunConfig{Txns: txns, Concurrency: 16, Gen: mkGen(),
			Preload: func(n model.NodeID, k string) { gs.Preload(n, k, preloadRec()) }})
		gs.Close()

		speedup := r3.Throughput() / maxF(rg.Throughput(), 0.001)
		tbl.Add(fmt.Sprint(lat), harness.F2(r3.Throughput()), harness.F2(rn.Throughput()),
			harness.F2(rg.Throughput()), harness.F2(speedup))
	}
	return tbl, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// E10Compensation sweeps the abort rate: compensating subtransactions
// must keep the counters balanced (advancement completes), reads must
// never observe any part of a compensated transaction, and the version
// bound must hold.
func E10Compensation(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E10: compensation under aborts (hospital workload, 3 nodes)",
		Header: []string{"abort-rate", "completed", "compensations", "anomalies", "advances", "violations"},
	}
	for _, abort := range []float64{0, 0.1, 0.3} {
		tv, c, err := newThreeV(3, false, transport.Config{Jitter: 300 * time.Microsecond, Seed: 83})
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{Nodes: 3, Groups: 64, Span: 2,
			ReadFraction: 0.3, AbortFraction: abort, Seed: 89})
		res := harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: 2 * time.Millisecond,
			FinalAdvance:    true,
			Gen:             gen,
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		comp := int64(0)
		for _, nm := range c.Metrics().PerNode {
			comp += nm.Compensations
		}
		vio := len(c.Violations())
		tv.Close()
		tbl.Add(fmt.Sprintf("%.0f%%", abort*100), fmt.Sprint(res.Completed), fmt.Sprint(comp),
			fmt.Sprint(res.Anomalies), fmt.Sprint(res.Advances), fmt.Sprint(vio))
		if res.Anomalies > 0 || vio > 0 {
			return tbl, fmt.Errorf("E10: abort %.2f: anomalies=%d violations=%d", abort, res.Anomalies, vio)
		}
		if abort > 0 && comp == 0 {
			return tbl, fmt.Errorf("E10: abort %.2f ran but no compensations recorded", abort)
		}
	}
	return tbl, nil
}

// E11Staleness measures how far reads trail committed updates (in
// missed updates per group) as the advancement period varies, for 3V's
// automated advancement vs manual versioning. Expected shape: 3V's
// staleness shrinks as advancement quickens; manual versioning adds its
// stabilization delay on top of the period.
func E11Staleness(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E11: read staleness vs advancement period (call recording, 3 nodes)",
		Header: []string{"system", "period", "mean-staleness(updates)", "max-staleness", "anomalies"},
	}
	net := transport.Config{Jitter: 200 * time.Microsecond, Seed: 97}
	gencfg := workload.Config{Nodes: 3, Groups: 8, Span: 2, ReadFraction: 0.3, Seed: 101}
	for _, period := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		tv, c, err := newThreeV(3, false, net)
		if err != nil {
			return nil, err
		}
		res := harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: period,
			Gen:             workload.New(gencfg),
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		tv.Close()
		tbl.Add("3V", fmt.Sprint(period), harness.F2(res.StalenessMean),
			fmt.Sprint(res.StalenessMax), fmt.Sprint(res.Anomalies))
	}
	for _, period := range []time.Duration{5 * time.Millisecond} {
		mv, err := manualver.New(manualver.Config{Nodes: 3, StabilizationDelay: 10 * time.Millisecond, NetConfig: net})
		if err != nil {
			return nil, err
		}
		res := harness.Run(mv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: period,
			Gen:             workload.New(gencfg),
			Preload:         func(n model.NodeID, k string) { mv.Preload(n, k, preloadRec()) },
		})
		mv.Close()
		tbl.Add("ManualVer(+10ms delay)", fmt.Sprint(period), harness.F2(res.StalenessMean),
			fmt.Sprint(res.StalenessMax), fmt.Sprint(res.Anomalies))
	}
	return tbl, nil
}

// E12DualWriteOverhead quantifies the paper's Section 2.3 remark: "the
// overhead of performing two updates instead of one applies only when
// there is data contention" — i.e. dual writes happen only to items
// touched on both sides of an in-flight advancement, so their rate
// grows with advancement frequency and contention, and is zero when no
// advancement runs.
func E12DualWriteOverhead(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E12: dual-write rate vs advancement frequency (ablation of §2.3)",
		Header: []string{"advance-interval", "groups", "updates-applied", "dual-writes", "dual-rate"},
	}
	for _, cfg := range []struct {
		interval time.Duration
		groups   int
	}{
		{0, 8},                      // no advancement: dual writes impossible
		{10 * time.Millisecond, 8},  // slow cadence, high contention
		{2 * time.Millisecond, 8},   // aggressive cadence, high contention
		{2 * time.Millisecond, 256}, // aggressive cadence, low contention
	} {
		// Heavy jitter makes in-flight version-v subtransactions
		// straddle advancement windows — the precondition for a dual
		// write.
		tv, c, err := newThreeV(3, false, transport.Config{
			BaseLatency: 500 * time.Microsecond, Jitter: 3 * time.Millisecond, Seed: 111})
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{Nodes: 3, Groups: cfg.groups, Span: 2, Seed: 113})
		harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns,
			Concurrency:     8,
			AdvanceInterval: cfg.interval,
			Gen:             gen,
			Preload:         func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		var applied, dual int64
		for _, nm := range c.Metrics().PerNode {
			applied += nm.SubtxnsExecuted
			dual += nm.DualWrites
		}
		tv.Close()
		rate := float64(dual) / float64(maxI64(applied, 1))
		tbl.Add(fmt.Sprint(cfg.interval), fmt.Sprint(cfg.groups), fmt.Sprint(applied),
			fmt.Sprint(dual), harness.F2(rate))
		if cfg.interval == 0 && dual != 0 {
			return tbl, fmt.Errorf("E12: %d dual writes with advancement disabled", dual)
		}
	}
	return tbl, nil
}

// E13RecoveryCost measures the coordinator crash/recovery extension:
// how long a successor takes to adopt a clean state vs finish an
// interrupted cycle, and that user transactions keep flowing either
// way.
func E13RecoveryCost(sc Scale) (*harness.Table, error) {
	tbl := &harness.Table{
		Title:  "E13: coordinator recovery (extension; see internal/core/recovery.go)",
		Header: []string{"scenario", "resumed", "recovery(ms)", "sweeps", "post-recovery-anomalies"},
	}
	for _, crashMid := range []bool{false, true} {
		tv, c, err := newThreeV(3, false, transport.Config{Jitter: 300 * time.Microsecond, Seed: 121})
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{Nodes: 3, Groups: 32, Span: 2, ReadFraction: 0.3, Seed: 123})
		res1 := harness.Run(tv, harness.RunConfig{
			Txns:        sc.Txns / 2,
			Concurrency: 8,
			Gen:         gen,
			Preload:     func(n model.NodeID, k string) { c.Preload(n, k, preloadRec()) },
		})
		_ = res1
		if crashMid {
			advDone := c.AdvanceAsync()
			time.Sleep(200 * time.Microsecond)
			c.CrashCoordinator()
			<-advDone
		} else {
			c.Advance()
			c.CrashCoordinator()
		}
		fresh := c.Coordinator()
		rep, err := fresh.Recover()
		if err != nil {
			tv.Close()
			return tbl, fmt.Errorf("E13: recovery failed: %v", err)
		}
		// Post-recovery load must stay anomaly-free.
		res2 := harness.Run(tv, harness.RunConfig{
			Txns:            sc.Txns / 2,
			Concurrency:     8,
			AdvanceInterval: 2 * time.Millisecond,
			Gen:             gen,
		})
		vio := len(c.Violations())
		tv.Close()
		scenario := "clean crash"
		if crashMid {
			scenario = "mid-cycle crash"
		}
		tbl.Add(scenario, fmt.Sprint(rep.Resumed), harness.Ms(rep.Took),
			fmt.Sprint(rep.Sweeps), fmt.Sprint(res2.Anomalies))
		if res2.Anomalies > 0 || vio > 0 {
			return tbl, fmt.Errorf("E13: %s: anomalies=%d violations=%d", scenario, res2.Anomalies, vio)
		}
	}
	return tbl, nil
}
