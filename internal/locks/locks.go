// Package locks implements the lock manager required by the NC3V
// extension (Section 5 of the paper), which admits update transactions
// that do not commute.
//
// Three lock modes exist:
//
//   - CommuteRead (CR): taken by well-behaved transactions on items
//     they read.
//   - CommuteUpdate (CU): taken by well-behaved transactions on items
//     they update.
//   - NonCommuting (NC): taken by non-well-behaved transactions on
//     every item they access; exclusive against everything, including
//     other NC locks.
//
// Commuting locks are compatible with each other ("Commuting locks are
// compatible with each other but not with their non-commuting
// counterparts"), so in the absence of non-well-behaved transactions a
// commute lock is granted without any waiting and the system performs
// exactly as plain 3V. Well-behaved transactions follow two-phase
// locking with an asynchronous clean-up phase: locks are released only
// after the whole transaction tree has committed, by a clean-up message
// that is asynchronous with respect to the user transaction.
// Non-well-behaved transactions follow classical strict 2PL with global
// two-phase commit.
//
// Deadlock resolution is by timeout: an Acquire that cannot be granted
// within the configured wait bound fails, and the caller aborts the
// requesting transaction (for NC transactions, via 2PC abort).
package locks

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
)

// Mode is a lock mode.
type Mode int

// Lock modes; see the package comment.
const (
	CommuteRead Mode = iota
	CommuteUpdate
	NonCommuting
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CommuteRead:
		return "CR"
	case CommuteUpdate:
		return "CU"
	case NonCommuting:
		return "NC"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Compatible reports whether a lock of mode a held by one transaction
// is compatible with a request of mode b from another transaction.
func Compatible(a, b Mode) bool {
	return a != NonCommuting && b != NonCommuting
}

// ErrTimeout is returned when a lock cannot be granted within the wait
// bound; the caller treats it as a deadlock victim notice and aborts.
var ErrTimeout = errors.New("locks: wait timeout (deadlock victim)")

// holder records one transaction's grant on one item.
type holder struct {
	txn  model.TxnID
	mode Mode
}

// entry is the lock state of one item.
type entry struct {
	holders []holder
	// waiters count is implicit: goroutines blocked on cond.
}

// Manager is one node's lock table. All methods are safe for concurrent
// use.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	table map[string]*entry
	held  map[model.TxnID][]string // txn -> keys it holds (for ReleaseAll)

	// WaitBound limits how long an Acquire may block; zero means a
	// default of one second.
	WaitBound time.Duration

	stats Stats
}

// Stats counts lock activity.
type Stats struct {
	Grants       int64
	ImmediateOK  int64 // granted without waiting
	Waits        int64 // granted after waiting
	Timeouts     int64
	MaxQueueSeen int
}

// New returns an empty lock manager.
func New() *Manager {
	m := &Manager{
		table: make(map[string]*entry),
		held:  make(map[model.TxnID][]string),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire requests a lock of the given mode on key for txn, blocking up
// to the wait bound. Re-acquisition by the same transaction upgrades in
// place when the new mode is stronger (CR→CU, anything→NC follows the
// same compatibility rules against OTHER holders only). Returns
// ErrTimeout if the request cannot be granted in time.
func (m *Manager) Acquire(txn model.TxnID, key string, mode Mode) error {
	deadline := time.Now().Add(m.waitBound())
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		e := m.table[key]
		if e == nil {
			e = &entry{}
			m.table[key] = e
		}
		if idx, compatible := m.check(e, txn, mode); compatible {
			if idx >= 0 {
				// Upgrade in place if stronger; otherwise keep.
				if mode > e.holders[idx].mode {
					e.holders[idx].mode = mode
				}
			} else {
				e.holders = append(e.holders, holder{txn: txn, mode: mode})
				m.held[txn] = append(m.held[txn], key)
			}
			m.stats.Grants++
			return nil
		}
		m.stats.Waits++
		if !m.waitUntil(deadline) {
			m.stats.Timeouts++
			return fmt.Errorf("%w: %v mode %v on %q", ErrTimeout, txn, mode, key)
		}
	}
}

// check reports whether txn may take mode on e. idx is the position of
// txn's existing grant in e.holders, or -1.
func (m *Manager) check(e *entry, txn model.TxnID, mode Mode) (idx int, compatible bool) {
	idx = -1
	for i, h := range e.holders {
		if h.txn == txn {
			idx = i
			continue
		}
		if !Compatible(h.mode, mode) {
			return idx, false
		}
	}
	return idx, true
}

// waitUntil blocks on the manager's condition variable until signaled
// or the deadline passes; it returns false on deadline. The caller
// holds m.mu. A ticker goroutine wakes all waiters periodically so
// deadlines are observed without per-waiter timers.
func (m *Manager) waitUntil(deadline time.Time) bool {
	if !time.Now().Before(deadline) {
		return false
	}
	// Wake ourselves at the deadline in case nobody releases.
	t := time.AfterFunc(time.Until(deadline), func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	m.cond.Wait()
	t.Stop()
	return time.Now().Before(deadline)
}

// TryAcquire is Acquire without waiting: it either grants immediately
// or returns false leaving no trace. Commute locks taken by
// well-behaved transactions use this first — when no NC transaction is
// active it always succeeds, preserving the paper's "no wait to obtain
// a commute lock" property — and fall back to Acquire when it fails.
func (m *Manager) TryAcquire(txn model.TxnID, key string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[key]
	if e == nil {
		e = &entry{}
		m.table[key] = e
	}
	idx, compatible := m.check(e, txn, mode)
	if !compatible {
		return false
	}
	if idx >= 0 {
		if mode > e.holders[idx].mode {
			e.holders[idx].mode = mode
		}
	} else {
		e.holders = append(e.holders, holder{txn: txn, mode: mode})
		m.held[txn] = append(m.held[txn], key)
	}
	m.stats.Grants++
	m.stats.ImmediateOK++
	return true
}

// ReleaseAll drops every lock txn holds on this node and wakes waiters.
// It is the clean-up phase for well-behaved transactions and the
// post-commit/post-abort release for NC transactions. Releasing a
// transaction that holds nothing is a no-op.
func (m *Manager) ReleaseAll(txn model.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := m.held[txn]
	if len(keys) == 0 {
		return
	}
	delete(m.held, txn)
	for _, k := range keys {
		e := m.table[k]
		if e == nil {
			continue
		}
		for i := 0; i < len(e.holders); i++ {
			if e.holders[i].txn == txn {
				e.holders = append(e.holders[:i], e.holders[i+1:]...)
				i--
			}
		}
		if len(e.holders) == 0 {
			delete(m.table, k)
		}
	}
	m.cond.Broadcast()
}

// Holds reports whether txn currently holds any lock on key, and in
// which mode.
func (m *Manager) Holds(txn model.TxnID, key string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[key]
	if e == nil {
		return 0, false
	}
	for _, h := range e.holders {
		if h.txn == txn {
			return h.mode, true
		}
	}
	return 0, false
}

// ActiveNC reports whether any non-commuting lock is currently held on
// this node (diagnostic used by tests to confirm the fast path).
func (m *Manager) ActiveNC() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.table {
		for _, h := range e.holders {
			if h.mode == NonCommuting {
				return true
			}
		}
	}
	return false
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Manager) waitBound() time.Duration {
	if m.WaitBound > 0 {
		return m.WaitBound
	}
	return time.Second
}
