package locks

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{CommuteRead, CommuteRead, true},
		{CommuteRead, CommuteUpdate, true},
		{CommuteUpdate, CommuteRead, true},
		{CommuteUpdate, CommuteUpdate, true},
		{NonCommuting, CommuteRead, false},
		{NonCommuting, CommuteUpdate, false},
		{CommuteRead, NonCommuting, false},
		{CommuteUpdate, NonCommuting, false},
		{NonCommuting, NonCommuting, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestModeString(t *testing.T) {
	if CommuteRead.String() != "CR" || CommuteUpdate.String() != "CU" || NonCommuting.String() != "NC" {
		t.Error("mode String values wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Errorf("unknown mode String = %q", Mode(9).String())
	}
}

func TestCommuteLocksNeverConflict(t *testing.T) {
	m := New()
	t1, t2, t3 := model.TxnID(1), model.TxnID(2), model.TxnID(3)
	if !m.TryAcquire(t1, "x", CommuteUpdate) {
		t.Fatal("first CU failed")
	}
	if !m.TryAcquire(t2, "x", CommuteUpdate) {
		t.Fatal("concurrent CU failed: commute locks must be compatible")
	}
	if !m.TryAcquire(t3, "x", CommuteRead) {
		t.Fatal("CR alongside CUs failed")
	}
	st := m.Stats()
	if st.ImmediateOK != 3 {
		t.Errorf("ImmediateOK = %d, want 3 (the no-wait fast path)", st.ImmediateOK)
	}
}

func TestNCExcludesEverything(t *testing.T) {
	m := New()
	m.WaitBound = 50 * time.Millisecond
	nc, wb := model.TxnID(1), model.TxnID(2)
	if err := m.Acquire(nc, "x", NonCommuting); err != nil {
		t.Fatal(err)
	}
	if m.TryAcquire(wb, "x", CommuteUpdate) {
		t.Fatal("CU granted while NC held")
	}
	if err := m.Acquire(wb, "x", CommuteRead); !errors.Is(err, ErrTimeout) {
		t.Fatalf("CR against NC: err = %v, want ErrTimeout", err)
	}
	if !m.ActiveNC() {
		t.Error("ActiveNC = false while NC held")
	}
	m.ReleaseAll(nc)
	if m.ActiveNC() {
		t.Error("ActiveNC = true after release")
	}
	if err := m.Acquire(wb, "x", CommuteUpdate); err != nil {
		t.Errorf("CU after NC release: %v", err)
	}
}

func TestWaiterWakesOnRelease(t *testing.T) {
	m := New()
	m.WaitBound = 5 * time.Second
	nc, wb := model.TxnID(1), model.TxnID(2)
	if err := m.Acquire(nc, "x", NonCommuting); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() { granted <- m.Acquire(wb, "x", CommuteUpdate) }()
	time.Sleep(20 * time.Millisecond) // let the waiter block
	m.ReleaseAll(nc)
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("waiter got error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by release")
	}
	if mode, ok := m.Holds(wb, "x"); !ok || mode != CommuteUpdate {
		t.Errorf("Holds = %v %v, want CU true", mode, ok)
	}
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := New()
	txn := model.TxnID(7)
	if err := m.Acquire(txn, "x", CommuteRead); err != nil {
		t.Fatal(err)
	}
	// Same txn upgrading CR -> CU must succeed immediately.
	if err := m.Acquire(txn, "x", CommuteUpdate); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(txn, "x"); mode != CommuteUpdate {
		t.Errorf("after upgrade mode = %v, want CU", mode)
	}
	// Downgrade attempt keeps the stronger mode.
	if err := m.Acquire(txn, "x", CommuteRead); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(txn, "x"); mode != CommuteUpdate {
		t.Errorf("after weaker re-acquire mode = %v, want CU", mode)
	}
}

func TestUpgradeToNCWaitsForOthers(t *testing.T) {
	m := New()
	m.WaitBound = 50 * time.Millisecond
	a, b := model.TxnID(1), model.TxnID(2)
	if err := m.Acquire(a, "x", CommuteUpdate); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(b, "x", CommuteUpdate); err != nil {
		t.Fatal(err)
	}
	// a upgrading to NC must time out while b holds CU.
	if err := m.Acquire(a, "x", NonCommuting); !errors.Is(err, ErrTimeout) {
		t.Fatalf("upgrade to NC with other holder: err = %v, want timeout", err)
	}
	m.ReleaseAll(b)
	if err := m.Acquire(a, "x", NonCommuting); err != nil {
		t.Fatalf("upgrade to NC after release: %v", err)
	}
}

func TestReleaseAllIsCompleteAndIdempotent(t *testing.T) {
	m := New()
	txn := model.TxnID(3)
	for _, k := range []string{"a", "b", "c"} {
		if err := m.Acquire(txn, k, CommuteUpdate); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll(txn)
	m.ReleaseAll(txn) // idempotent
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := m.Holds(txn, k); ok {
			t.Errorf("still holds %q after ReleaseAll", k)
		}
	}
	// Table entries are garbage collected.
	other := model.TxnID(4)
	if err := m.Acquire(other, "a", NonCommuting); err != nil {
		t.Errorf("NC after full release: %v", err)
	}
}

func TestTimeoutStats(t *testing.T) {
	m := New()
	m.WaitBound = 10 * time.Millisecond
	m.Acquire(model.TxnID(1), "x", NonCommuting)
	m.Acquire(model.TxnID(2), "x", NonCommuting) // times out
	st := m.Stats()
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	if st.Waits == 0 {
		t.Errorf("Waits = 0, want > 0")
	}
}

// TestPropertyNoWaitWithoutNC: any random sequence of commute-lock
// acquisitions (CR/CU, many transactions, many keys) is granted
// immediately — the paper's guarantee that well-behaved transactions
// never wait when no non-commuting transaction is active.
func TestPropertyNoWaitWithoutNC(t *testing.T) {
	f := func(ops []struct {
		Txn uint8
		Key uint8
		Upd bool
	}) bool {
		m := New()
		for _, op := range ops {
			mode := CommuteRead
			if op.Upd {
				mode = CommuteUpdate
			}
			if !m.TryAcquire(model.TxnID(op.Txn), string(rune('a'+op.Key%8)), mode) {
				return false
			}
		}
		st := m.Stats()
		return st.Waits == 0 && st.Timeouts == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentChurn(t *testing.T) {
	m := New()
	m.WaitBound = 2 * time.Second
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := model.TxnID(100 + g)
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (g+i)%4))
				mode := CommuteUpdate
				if g == 0 && i%50 == 0 {
					mode = NonCommuting
				}
				if err := m.Acquire(txn, key, mode); err != nil {
					continue // timeout under churn is acceptable
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	// After everything releases, the table must be empty enough that a
	// fresh NC lock on every key succeeds immediately.
	for _, k := range []string{"a", "b", "c", "d"} {
		if !m.TryAcquire(model.TxnID(999), k, NonCommuting) {
			t.Errorf("lock on %q leaked after churn", k)
		}
	}
}
