package localcc

import (
	"sync"
	"testing"
	"time"
)

func TestAcquireReleasesCleanly(t *testing.T) {
	m := New()
	rel := m.Acquire([]string{"b", "a", "a"})
	rel()
	rel() // double release must be a no-op (sync.Once)
	rel2 := m.Acquire([]string{"a"})
	rel2()
	if m.Acquisitions() != 2 {
		t.Errorf("Acquisitions = %d, want 2", m.Acquisitions())
	}
}

func TestEmptyAcquire(t *testing.T) {
	m := New()
	rel := m.Acquire(nil)
	rel()
}

func TestMutualExclusionPerKey(t *testing.T) {
	m := New()
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel := m.Acquire([]string{"k"})
				counter++ // safe only if latching works
				rel()
			}
		}()
	}
	wg.Wait()
	if counter != 1600 {
		t.Errorf("counter = %d, want 1600 (latching failed)", counter)
	}
}

func TestDisjointKeysDoNotBlock(t *testing.T) {
	m := New()
	relA := m.Acquire([]string{"a"})
	done := make(chan struct{})
	go func() {
		relB := m.Acquire([]string{"b"})
		relB()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("acquisition of disjoint key blocked")
	}
	relA()
}

func TestSortedOrderPreventsDeadlock(t *testing.T) {
	// Two goroutines repeatedly latch {a,b} and {b,a}; without sorted
	// acquisition this interleaving deadlocks almost immediately.
	m := New()
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		keys := []string{"a", "b"}
		if g == 1 {
			keys = []string{"b", "a"}
		}
		go func(keys []string) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rel := m.Acquire(keys)
				rel()
			}
		}(keys)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: sorted acquisition order violated")
	}
}
