// Package localcc supplies the per-node local concurrency control the
// paper assumes as a substrate: "We assume that a local concurrency
// scheme serializes update subtransactions on each node" (Section 3.1).
//
// The scheme here is conservative multi-key latching: a subtransaction
// declares the local keys it will touch, acquires their latches in a
// canonical (sorted) order — which makes local deadlock impossible —
// performs its local work, and releases. Because every subtransaction
// holds all its latches for the duration of its local execution, local
// schedules are trivially serializable (equivalent to the latch-grant
// order).
//
// Note what is deliberately NOT protected by these latches: the node's
// version numbers (vu, vr) and the request/completion counters. The
// paper requires only that individual reads/writes of those variables
// are atomic and explicitly places them outside local concurrency
// control so that they can never cause synchronization delays (Section
// 4, "The Model"); package core honors that by using its own small
// mutexes/atomics for them.
package localcc

import (
	"sort"
	"sync"
)

// Manager is one node's latch table. The zero value is not usable; use
// New.
type Manager struct {
	mu      sync.Mutex
	latches map[string]*sync.Mutex

	statMu       sync.Mutex
	acquisitions int64
}

// New returns an empty latch manager.
func New() *Manager {
	return &Manager{latches: make(map[string]*sync.Mutex)}
}

// Acquire latches all the given keys (duplicates are coalesced) in
// sorted order and returns a release function. The release function
// must be called exactly once; calling Acquire with an empty key set
// returns a no-op release.
func (m *Manager) Acquire(keys []string) (release func()) {
	if len(keys) == 0 {
		return func() {}
	}
	uniq := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	sort.Strings(uniq)
	held := make([]*sync.Mutex, len(uniq))
	for i, k := range uniq {
		held[i] = m.latch(k)
	}
	for _, l := range held {
		l.Lock()
	}
	m.statMu.Lock()
	m.acquisitions++
	m.statMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			// Unlock in reverse order (not required for correctness,
			// but conventional).
			for i := len(held) - 1; i >= 0; i-- {
				held[i].Unlock()
			}
		})
	}
}

// latch returns (creating if needed) the mutex for key.
func (m *Manager) latch(key string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.latches[key]
	if !ok {
		l = &sync.Mutex{}
		m.latches[key] = l
	}
	return l
}

// Acquisitions returns the total number of successful multi-key
// acquisitions (metrics).
func (m *Manager) Acquisitions() int64 {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.acquisitions
}
