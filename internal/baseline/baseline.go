// Package baseline defines the driver-facing abstraction shared by the
// 3V system and the alternative schemes the paper discusses in Sections
// 1 and 7, plus the adapter that presents the 3V cluster through it.
//
// The four implemented comparison points are:
//
//   - globalsync: "Global Synchronization" — distributed strict
//     two-phase locking with global two-phase commit for every
//     transaction, reads included.
//   - nocoord: "No Coordination" — subtransactions execute immediately
//     against a single-version store; fast but globally inconsistent.
//   - manualver: "Manual Versioning" — period-based versions published
//     to readers after a fixed stabilization delay, with no correctness
//     check that in-flight updates have drained.
//   - syncadv: the "naive version advancement" strawman of Section 2.1
//     — two versions with a stop-the-world switch that freezes new
//     transactions while in-flight ones drain.
package baseline

import (
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Handle observes one submitted transaction. core.Handle satisfies it.
type Handle interface {
	WaitTimeout(d time.Duration) bool
	Reads() []model.ReadResult
}

// System is a database under test: 3V or one of the baselines.
type System interface {
	// Name identifies the scheme in result tables.
	Name() string
	// Submit launches a transaction.
	Submit(spec *model.TxnSpec) (Handle, error)
	// Advance publishes accumulated updates to readers. For nocoord it
	// is a no-op (updates are immediately visible); for manualver it is
	// the period switch; for syncadv it is the stop-the-world switch.
	Advance()
	// Close shuts the system down.
	Close()
}

// BatchSystem is an optional System extension: systems that can admit
// a group of transactions in one batched submission. The harness uses
// it for group submit; systems without it are driven one at a time.
type BatchSystem interface {
	// SubmitBatch launches every spec, returning one handle per spec,
	// aligned. Either all specs are admitted or none (validation).
	SubmitBatch(specs []*model.TxnSpec) ([]Handle, error)
}

// ThreeV adapts a core.Cluster to the System interface.
type ThreeV struct {
	Cluster *core.Cluster
}

// Name implements System.
func (t ThreeV) Name() string { return "3V" }

// Submit implements System.
func (t ThreeV) Submit(spec *model.TxnSpec) (Handle, error) {
	return t.Cluster.Submit(spec)
}

// SubmitBatch implements BatchSystem: members bound for the same root
// node travel in one batched loopback envelope.
func (t ThreeV) SubmitBatch(specs []*model.TxnSpec) ([]Handle, error) {
	hs, err := t.Cluster.SubmitBatch(specs)
	if err != nil {
		return nil, err
	}
	out := make([]Handle, len(hs))
	for i, h := range hs {
		out[i] = h
	}
	return out, nil
}

// Advance implements System.
func (t ThreeV) Advance() { t.Cluster.Advance() }

// Close implements System.
func (t ThreeV) Close() { t.Cluster.Close() }

var _ System = ThreeV{}
var _ BatchSystem = ThreeV{}
var _ Handle = (*core.Handle)(nil)
