package copyalways

import (
	"testing"

	"repro/internal/model"
)

func TestEveryUpdateCopies(t *testing.T) {
	s := New(2)
	rec := model.NewRecord()
	rec.Fields["v"] = 0
	s.Preload("x", rec)
	for i := 0; i < 10; i++ {
		s.Apply("x", model.AddOp{Field: "v", Delta: 1})
	}
	st := s.Stats()
	if st.Updates != 10 {
		t.Errorf("Updates = %d, want 10", st.Updates)
	}
	if st.Copies != 10 {
		t.Errorf("Copies = %d, want 10 — the scheme copies on EVERY update", st.Copies)
	}
	if st.BytesCopied <= 0 {
		t.Error("BytesCopied not accounted")
	}
	got, ok := s.Latest("x")
	if !ok || got.Field("v") != 10 {
		t.Errorf("Latest = %v %v", got, ok)
	}
}

func TestFreshItemNoCopy(t *testing.T) {
	s := New(0) // default retain
	s.Apply("new", model.AddOp{Field: "v", Delta: 5})
	st := s.Stats()
	if st.Copies != 0 {
		t.Errorf("first write of a fresh item copied %d times", st.Copies)
	}
	if got, ok := s.Latest("new"); !ok || got.Field("v") != 5 {
		t.Errorf("Latest = %v %v", got, ok)
	}
	if _, ok := s.Latest("missing"); ok {
		t.Error("Latest of missing item reported ok")
	}
}

func TestRetentionPrunes(t *testing.T) {
	s := New(3)
	s.Preload("x", model.NewRecord())
	for i := 0; i < 20; i++ {
		s.Apply("x", model.AddOp{Field: "v", Delta: 1})
	}
	if n := len(s.records["x"]); n != 3 {
		t.Errorf("retained %d versions, want 3", n)
	}
}

func TestCopyCostGrowsWithRecordSize(t *testing.T) {
	// The paper's complaint: the copy cost is proportional to object
	// size, "no matter how small the modification". A record with a big
	// log costs more per increment than an empty one.
	small, big := New(2), New(2)
	small.Preload("x", model.NewRecord())
	bigRec := model.NewRecord()
	for i := 0; i < 100; i++ {
		bigRec.Log = append(bigRec.Log, model.Tuple{Txn: model.TxnID(i), Part: 1, Total: 1})
	}
	big.Preload("x", bigRec)
	small.Apply("x", model.AddOp{Field: "v", Delta: 1})
	big.Apply("x", model.AddOp{Field: "v", Delta: 1})
	if big.Stats().BytesCopied <= small.Stats().BytesCopied {
		t.Errorf("big-record copy (%d B) not costlier than small (%d B)",
			big.Stats().BytesCopied, small.Stats().BytesCopied)
	}
}
