// Package copyalways models the versioning discipline of the
// multiversion schemes the paper compares against in Section 7 (Chan et
// al., Chan & Gray, Agrawal & Sengupta, Bober & Carey): every update
// transaction creates a new version of the data object it modifies,
// "copying an entire data object on every update, no matter how small
// the modification".
//
// It is a storage-level ablation, not a full protocol: experiment E8
// replays the same update stream against this engine and against 3V's
// copy-on-first-update-per-epoch engine and compares copies made and
// bytes copied. Reads always see the latest committed version, so the
// engine also tracks how many versions must be retained to serve a
// reader pinned n updates in the past.
package copyalways

import (
	"sync"

	"repro/internal/model"
)

// Stats is the copy accounting.
type Stats struct {
	Updates     int64
	Copies      int64
	BytesCopied int64
}

// Store is a single-node copy-per-update engine.
type Store struct {
	mu      sync.Mutex
	records map[string][]*model.Record // full version history per key
	retain  int
	stats   Stats
}

// New returns an empty store that retains up to retain versions per
// item (older ones are pruned, as products did with version pools);
// retain <= 0 means keep 2.
func New(retain int) *Store {
	if retain <= 0 {
		retain = 2
	}
	return &Store{records: make(map[string][]*model.Record), retain: retain}
}

// Preload installs the initial version of key.
func (s *Store) Preload(key string, rec *model.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[key] = []*model.Record{rec}
}

// Apply performs one update: it copies the latest version of the item
// (the scheme's defining cost), applies op to the copy, and installs it
// as the new latest version.
func (s *Store) Apply(key string, op model.Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.records[key]
	var next *model.Record
	if len(hist) == 0 {
		next = model.NewRecord()
	} else {
		latest := hist[len(hist)-1]
		next = latest.Clone()
		s.stats.Copies++
		s.stats.BytesCopied += latest.SizeBytes()
	}
	op.Apply(next)
	hist = append(hist, next)
	if len(hist) > s.retain {
		hist = hist[len(hist)-s.retain:]
	}
	s.records[key] = hist
	s.stats.Updates++
}

// Latest returns a copy of the newest version of key.
func (s *Store) Latest(key string) (*model.Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := s.records[key]
	if len(hist) == 0 {
		return nil, false
	}
	return hist[len(hist)-1].Clone(), true
}

// Stats returns a copy of the accounting counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
