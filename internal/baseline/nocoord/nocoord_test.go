package nocoord

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
)

func TestBasicUpdateAndRead(t *testing.T) {
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(0, "x", model.NewRecord())
	h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{{Key: "x", Op: model.AddOp{Field: "v", Delta: 3}}},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{{Key: "y", Op: model.AddOp{Field: "v", Delta: 4}}}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
	s.Advance() // no-op
	q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Reads: []string{"x"},
		Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"y"}}},
	}})
	if !q.WaitTimeout(5 * time.Second) {
		t.Fatal("read timed out")
	}
	for _, r := range q.Reads() {
		want := map[string]int64{"x": 3, "y": 4}[r.Key]
		if r.Record.Field("v") != want {
			t.Errorf("%s = %d, want %d", r.Key, r.Record.Field("v"), want)
		}
	}
	if s.Name() != "NoCoord" {
		t.Error("name wrong")
	}
}

func TestSubmitValidates(t *testing.T) {
	s, _ := New(Config{Nodes: 1})
	defer s.Close()
	if _, err := s.Submit(&model.TxnSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
}

// TestExhibitsPartialVisibility demonstrates the defining flaw: with
// artificial delay on one leg of a two-node update, a concurrent read
// can observe the transaction's first part without its second — the
// anomaly 3V eliminates. The test retries until the race lands (it
// lands almost immediately with a large jitter window).
func TestExhibitsPartialVisibility(t *testing.T) {
	s, err := New(Config{Nodes: 2, NetConfig: transport.Config{Jitter: 2 * time.Millisecond, Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(0, "g", model.NewRecord())
	s.Preload(1, "g", model.NewRecord())

	deadline := time.Now().Add(15 * time.Second)
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		w := model.MakeTxnID(1<<15, uint64(attempt+1))
		h, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 1, Total: 2}}}}},
				{Node: 1, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 2, Total: 2}}}}},
			},
		}})
		q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0, Reads: []string{"g"},
			Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"g"}}},
		}})
		q.WaitTimeout(5 * time.Second)
		h.WaitTimeout(5 * time.Second)
		anoms := verify.AuditAtomicVisibility([]verify.GroupRead{{
			Txn: model.MakeTxnID(0, uint64(attempt)), Results: q.Reads(),
		}})
		if len(anoms) > 0 {
			return // anomaly demonstrated
		}
	}
	t.Error("no partial-visibility anomaly observed; nocoord should exhibit one readily")
}
