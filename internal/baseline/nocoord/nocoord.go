// Package nocoord implements the "No Coordination" baseline of Section
// 1: global transactions run with no synchronization between nodes —
// every subtransaction executes against a single-version store the
// moment it arrives, and reads see whatever happens to be there.
//
// The scheme is fast (it pays only local work plus message latency,
// exactly like 3V) but sacrifices correctness: a read can observe a
// partial multi-node update — the hospital/telephone anomaly the paper
// opens with. Experiment E3 measures that anomaly rate; this baseline
// is also the throughput upper bound 3V is compared against in E9.
package nocoord

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/localcc"
	"repro/internal/model"
	"repro/internal/transport"
)

// Config parameterizes the system.
type Config struct {
	Nodes     int
	NetConfig transport.Config
}

// subtxnMsg ships one subtransaction.
type subtxnMsg struct {
	seq  uint64
	spec *model.SubtxnSpec
}

// System is a running no-coordination database.
type System struct {
	net   *transport.Net
	nodes []*node

	seq     uint64
	seqMu   sync.Mutex
	handles sync.Map // uint64 -> *handle
}

// node is one site: a single-version store with local latching only.
type node struct {
	id      model.NodeID
	sys     *System
	mu      sync.RWMutex
	records map[string]*model.Record
	latches *localcc.Manager
}

// New builds and starts the system.
func New(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("nocoord: Nodes must be positive")
	}
	nc := cfg.NetConfig
	nc.Nodes = cfg.Nodes
	s := &System{net: transport.NewNet(nc)}
	for i := 0; i < cfg.Nodes; i++ {
		nd := &node{
			id:      model.NodeID(i),
			sys:     s,
			records: make(map[string]*model.Record),
			latches: localcc.New(),
		}
		s.nodes = append(s.nodes, nd)
		s.net.Register(nd.id, nd.handle)
	}
	s.net.Start()
	return s, nil
}

// Name implements baseline.System.
func (s *System) Name() string { return "NoCoord" }

// Advance implements baseline.System: a no-op — updates are visible to
// readers the instant each subtransaction commits locally.
func (s *System) Advance() {}

// Close implements baseline.System.
func (s *System) Close() { s.net.Close() }

// Preload installs an initial record.
func (s *System) Preload(nodeID model.NodeID, key string, rec *model.Record) {
	nd := s.nodes[nodeID]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.records[key] = rec
}

// Submit implements baseline.System.
func (s *System) Submit(spec *model.TxnSpec) (baseline.Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.seqMu.Lock()
	s.seq++
	id := s.seq
	s.seqMu.Unlock()
	h := newHandle()
	s.handles.Store(id, h)
	h.addExpected(1)
	s.net.Send(transport.Message{From: spec.Root.Node, To: spec.Root.Node, Payload: subtxnMsg{seq: id, spec: spec.Root}})
	return h, nil
}

func (nd *node) handle(m transport.Message) {
	msg := m.Payload.(subtxnMsg)
	spec := msg.spec
	hv, _ := nd.sys.handles.Load(msg.seq)
	h := hv.(*handle)

	release := nd.latches.Acquire(touched(spec))
	var reads []model.ReadResult
	for _, k := range spec.Reads {
		nd.mu.RLock()
		rec := nd.records[k]
		var cp *model.Record
		if rec != nil {
			cp = rec.Clone()
		} else {
			cp = model.NewRecord()
		}
		nd.mu.RUnlock()
		reads = append(reads, model.ReadResult{Node: nd.id, Key: k, Record: cp})
	}
	for _, u := range spec.Updates {
		nd.mu.Lock()
		rec := nd.records[u.Key]
		if rec == nil {
			rec = model.NewRecord()
			nd.records[u.Key] = rec
		}
		u.Op.Apply(rec)
		nd.mu.Unlock()
	}
	release()

	for _, child := range spec.Children {
		h.addExpected(1)
		nd.sys.net.Send(transport.Message{From: nd.id, To: child.Node, Payload: subtxnMsg{seq: msg.seq, spec: child}})
	}
	h.reportDone(reads)
}

func touched(spec *model.SubtxnSpec) []string {
	keys := append([]string(nil), spec.Reads...)
	for _, u := range spec.Updates {
		keys = append(keys, u.Key)
	}
	return keys
}

// handle tracks completion by spawn/termination balance, like the 3V
// client handle.
type handle struct {
	mu        sync.Mutex
	expected  int
	done      int
	reads     []model.ReadResult
	completed chan struct{}
	closed    bool
}

func newHandle() *handle {
	return &handle{completed: make(chan struct{})}
}

func (h *handle) addExpected(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expected += n
}

func (h *handle) reportDone(reads []model.ReadResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done++
	h.reads = append(h.reads, reads...)
	if !h.closed && h.expected > 0 && h.done == h.expected {
		h.closed = true
		close(h.completed)
	}
}

// WaitTimeout implements baseline.Handle.
func (h *handle) WaitTimeout(d time.Duration) bool {
	select {
	case <-h.completed:
		return true
	case <-time.After(d):
		return false
	}
}

// Reads implements baseline.Handle.
func (h *handle) Reads() []model.ReadResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ReadResult, len(h.reads))
	copy(out, h.reads)
	return out
}

var _ baseline.System = (*System)(nil)
