package syncadv

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

func add(key string, d int64) model.KeyOp {
	return model.KeyOp{Key: key, Op: model.AddOp{Field: "v", Delta: d}}
}

func mkSys(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Preload(0, "x", model.NewRecord())
	s.Preload(1, "y", model.NewRecord())
	return s
}

func readV(t *testing.T, s *System, node model.NodeID, key string) int64 {
	t.Helper()
	q, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: node, Reads: []string{key}}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.WaitTimeout(10 * time.Second) {
		t.Fatal("read timed out")
	}
	return q.Reads()[0].Record.Field("v")
}

func TestTwoVersionSemantics(t *testing.T) {
	s := mkSys(t, Config{})
	h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{add("x", 7)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{add("y", 9)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
	if got := readV(t, s, 0, "x"); got != 0 {
		t.Errorf("pre-advancement read = %d, want 0", got)
	}
	s.Advance()
	if got := readV(t, s, 0, "x"); got != 7 {
		t.Errorf("post-advancement read = %d, want 7", got)
	}
	if got := readV(t, s, 1, "y"); got != 9 {
		t.Errorf("post-advancement read y = %d, want 9", got)
	}
	if s.Name() != "SyncAdv" {
		t.Error("name wrong")
	}
}

func TestFreezeDelaysNewTransactions(t *testing.T) {
	// Submit a slow update (high latency legs), start an advancement
	// (which must drain it), and submit a new transaction mid-freeze:
	// the new transaction's latency must include the freeze window.
	s := mkSys(t, Config{NetConfig: transport.Config{BaseLatency: 5 * time.Millisecond}})
	var handles []interface{ WaitTimeout(time.Duration) bool }
	for i := 0; i < 10; i++ {
		h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    0,
			Updates: []model.KeyOp{add("x", 1)},
			Children: []*model.SubtxnSpec{
				{Node: 1, Updates: []model.KeyOp{add("y", 1)}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	advStart := time.Now()
	go func() {
		defer wg.Done()
		s.Advance()
	}()
	time.Sleep(2 * time.Millisecond) // land inside the freeze window
	mid, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{add("x", 100)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	submitAt := time.Now()
	if !mid.WaitTimeout(30 * time.Second) {
		t.Fatal("mid-freeze txn never completed")
	}
	midLatency := time.Since(submitAt)
	wg.Wait()
	advDuration := time.Since(advStart)
	for _, h := range handles {
		if !h.WaitTimeout(10 * time.Second) {
			t.Fatal("pre-freeze txn timed out")
		}
	}
	// The queued transaction waited for a large part of the drain.
	if midLatency < advDuration/4 {
		t.Logf("note: mid-freeze latency %v vs advancement %v (freeze may have started late)", midLatency, advDuration)
	}
	// After a second advancement, all increments are visible: 10 + 100.
	s.Advance()
	if got := readV(t, s, 0, "x"); got != 110 {
		t.Errorf("x = %d, want 110", got)
	}
	if got := readV(t, s, 1, "y"); got != 10 {
		t.Errorf("y = %d, want 10", got)
	}
}

func TestQueriesAlsoFrozen(t *testing.T) {
	// Reads submitted during the freeze are queued too: post-unfreeze
	// they read the NEW read version.
	s := mkSys(t, Config{NetConfig: transport.Config{BaseLatency: 3 * time.Millisecond}})
	h, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{add("x", 5)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{add("y", 5)}},
		},
	}})
	done := make(chan struct{})
	go func() {
		s.Advance()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	got := readV(t, s, 0, "x") // may land inside or after the freeze
	<-done
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
	if got != 0 && got != 5 {
		t.Errorf("read during advancement = %d, want 0 (before) or 5 (queued past switch)", got)
	}
}

func TestRepeatedAdvancements(t *testing.T) {
	s := mkSys(t, Config{})
	for i := 0; i < 4; i++ {
		h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0, Updates: []model.KeyOp{add("x", 1)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !h.WaitTimeout(5 * time.Second) {
			t.Fatal("update timed out")
		}
		s.Advance()
	}
	if got := readV(t, s, 0, "x"); got != 4 {
		t.Errorf("x = %d, want 4", got)
	}
	// Two-version scheme: never more than 2 live versions per item.
	if got := s.nodes[0].store.Stats().MaxLiveVersions; got > 2 {
		t.Errorf("max live versions = %d, want ≤ 2", got)
	}
}

func TestSubmitValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	s := mkSys(t, Config{})
	if _, err := s.Submit(&model.TxnSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
