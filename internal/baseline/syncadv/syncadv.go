// Package syncadv implements the "naive version advancement" strawman
// of Section 2.1: a two-version scheme whose advancement requires
// global synchronization between the advancement process and user
// transactions.
//
// Advancement here is stop-the-world: the coordinator freezes admission
// of new root transactions at every node, waits for every in-flight
// transaction to drain (using the same counter machinery 3V uses, but
// synchronously — transactions queue behind it), switches the read
// version to the drained update version, garbage-collects, and
// unfreezes. Transactions submitted during the freeze wait out the
// whole drain — the latency spike experiment E5 measures, and exactly
// what 3V's asynchronous protocol eliminates.
package syncadv

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/counters"
	"repro/internal/localcc"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Config parameterizes the system.
type Config struct {
	Nodes int
	// PollInterval spaces the coordinator's drain polls; 0 means 200µs.
	PollInterval time.Duration
	NetConfig    transport.Config
}

type subtxnMsg struct {
	seq  uint64
	ver  model.Version
	root bool
	read bool
	spec *model.SubtxnSpec
	// parent is the invoking node of a non-root subtransaction (for
	// the completion counters); hasParent distinguishes it from the
	// zero node id.
	parent    model.NodeID
	hasParent bool
}

type freezeMsg struct{}
type unfreezeMsg struct {
	newRead, newUpd model.Version
}
type ackMsg struct{ node model.NodeID }
type counterReqMsg struct {
	ver   model.Version
	round int
}
type counterReplyMsg struct {
	round int
	node  model.NodeID
	r, c  []int64
}

// System is a running two-version / synchronous-advancement database.
type System struct {
	net     *transport.Net
	nodes   []*node
	coordID model.NodeID
	n       int
	poll    time.Duration

	seqMu   sync.Mutex
	seq     uint64
	handles sync.Map

	mu      sync.Mutex
	cond    *sync.Cond
	acks    int
	replies map[int]map[model.NodeID]counterReplyMsg
	round   int

	advMu sync.Mutex
	vu    model.Version
	vr    model.Version
}

type node struct {
	id      model.NodeID
	sys     *System
	store   *storage.Store
	cnt     *counters.Table
	latches *localcc.Manager

	verMu  sync.Mutex
	vu, vr model.Version
	frozen bool
	held   []subtxnMsg
}

// New builds and starts the system.
func New(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("syncadv: Nodes must be positive")
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	nc := cfg.NetConfig
	nc.Nodes = cfg.Nodes + 1
	s := &System{
		net:     transport.NewNet(nc),
		coordID: model.NodeID(cfg.Nodes),
		n:       cfg.Nodes,
		poll:    poll,
		replies: make(map[int]map[model.NodeID]counterReplyMsg),
		vu:      1,
		vr:      0,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Nodes; i++ {
		nd := &node{
			id:      model.NodeID(i),
			sys:     s,
			store:   storage.New(),
			cnt:     counters.NewTable(model.NodeID(i), cfg.Nodes),
			latches: localcc.New(),
			vu:      1,
			vr:      0,
		}
		s.nodes = append(s.nodes, nd)
		s.net.Register(nd.id, nd.handle)
	}
	s.net.Register(s.coordID, s.coordHandle)
	s.net.Start()
	return s, nil
}

// Name implements baseline.System.
func (s *System) Name() string { return "SyncAdv" }

// Close implements baseline.System.
func (s *System) Close() { s.net.Close() }

// Preload installs an initial version-0 record.
func (s *System) Preload(nodeID model.NodeID, key string, rec *model.Record) {
	s.nodes[nodeID].store.Preload(key, rec)
}

// Submit implements baseline.System.
func (s *System) Submit(spec *model.TxnSpec) (baseline.Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.seqMu.Lock()
	s.seq++
	id := s.seq
	s.seqMu.Unlock()
	h := newHandle()
	s.handles.Store(id, h)
	h.addExpected(1)
	s.net.Send(transport.Message{From: spec.Root.Node, To: spec.Root.Node, Payload: subtxnMsg{
		seq: id, root: true, read: spec.ReadOnly(), spec: spec.Root,
	}})
	return h, nil
}

// Advance implements baseline.System: freeze admission everywhere, wait
// for the current update version to drain, switch, unfreeze. New
// transactions queue for the entire drain — the synchronization cost
// 3V avoids.
func (s *System) Advance() {
	s.advMu.Lock()
	defer s.advMu.Unlock()
	vuold := s.vu

	// Freeze.
	s.mu.Lock()
	s.acks = 0
	s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		s.net.Send(transport.Message{From: s.coordID, To: model.NodeID(i), Payload: freezeMsg{}})
	}
	s.waitAcks()

	// Drain: poll counters until the in-flight work of vuold (and the
	// still-running queries of vr) completes.
	s.pollQuiescence(vuold)
	s.pollQuiescence(s.vr)

	// Switch + unfreeze.
	s.vr = vuold
	s.vu = vuold + 1
	s.mu.Lock()
	s.acks = 0
	s.mu.Unlock()
	for i := 0; i < s.n; i++ {
		s.net.Send(transport.Message{From: s.coordID, To: model.NodeID(i), Payload: unfreezeMsg{newRead: s.vr, newUpd: s.vu}})
	}
	s.waitAcks()
}

func (s *System) waitAcks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.acks < s.n {
		s.cond.Wait()
	}
}

func (s *System) pollQuiescence(v model.Version) {
	det := &counters.Detector{}
	for {
		s.mu.Lock()
		s.round++
		round := s.round
		s.mu.Unlock()
		for i := 0; i < s.n; i++ {
			s.net.Send(transport.Message{From: s.coordID, To: model.NodeID(i), Payload: counterReqMsg{ver: v, round: round}})
		}
		s.mu.Lock()
		for len(s.replies[round]) < s.n {
			s.cond.Wait()
		}
		snap := counters.NewSnapshot(s.n)
		for nid, rep := range s.replies[round] {
			snap.SetFromNode(nid, rep.r, rep.c)
		}
		delete(s.replies, round)
		s.mu.Unlock()
		if det.Offer(snap) {
			return
		}
		time.Sleep(s.poll)
	}
}

func (s *System) coordHandle(m transport.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p := m.Payload.(type) {
	case ackMsg:
		s.acks++
	case counterReplyMsg:
		rm := s.replies[p.round]
		if rm == nil {
			rm = make(map[model.NodeID]counterReplyMsg)
			s.replies[p.round] = rm
		}
		rm[p.node] = p
	}
	s.cond.Broadcast()
}

func (nd *node) handle(m transport.Message) {
	switch p := m.Payload.(type) {
	case subtxnMsg:
		if p.root {
			nd.verMu.Lock()
			if nd.frozen {
				// The synchronization cost: new roots wait out the
				// whole advancement.
				nd.held = append(nd.held, p)
				nd.verMu.Unlock()
				return
			}
			if p.read {
				p.ver = nd.vr
			} else {
				p.ver = nd.vu
			}
			nd.cnt.IncR(p.ver, nd.id)
			nd.verMu.Unlock()
		}
		nd.exec(p)
	case freezeMsg:
		nd.verMu.Lock()
		nd.frozen = true
		nd.verMu.Unlock()
		nd.sys.net.Send(transport.Message{From: nd.id, To: nd.sys.coordID, Payload: ackMsg{node: nd.id}})
	case unfreezeMsg:
		nd.verMu.Lock()
		nd.vr, nd.vu = p.newRead, p.newUpd
		held := nd.held
		nd.held = nil
		nd.frozen = false
		nd.verMu.Unlock()
		nd.store.GC(p.newRead)
		nd.cnt.DropBelow(p.newRead)
		// Admit the queued roots with the new versions.
		for _, q := range held {
			nd.verMu.Lock()
			if q.read {
				q.ver = nd.vr
			} else {
				q.ver = nd.vu
			}
			nd.cnt.IncR(q.ver, nd.id)
			nd.verMu.Unlock()
			nd.exec(q)
		}
		nd.sys.net.Send(transport.Message{From: nd.id, To: nd.sys.coordID, Payload: ackMsg{node: nd.id}})
	case counterReqMsg:
		nd.sys.net.Send(transport.Message{From: nd.id, To: nd.sys.coordID, Payload: counterReplyMsg{
			round: p.round, node: nd.id, r: nd.cnt.SnapshotR(p.ver), c: nd.cnt.SnapshotC(p.ver),
		}})
	}
}

func (nd *node) exec(msg subtxnMsg) {
	hv, _ := nd.sys.handles.Load(msg.seq)
	h := hv.(*handle)
	spec := msg.spec
	from := nd.id
	if !msg.root {
		from = msg.from()
	}

	keys := append([]string(nil), spec.Reads...)
	for _, u := range spec.Updates {
		keys = append(keys, u.Key)
	}
	release := nd.latches.Acquire(keys)
	var reads []model.ReadResult
	for _, k := range spec.Reads {
		rec, ver, ok := nd.store.ReadMax(k, msg.ver)
		if !ok {
			rec, ver = model.NewRecord(), 0
		}
		reads = append(reads, model.ReadResult{Node: nd.id, Key: k, VersionRead: ver, Record: rec})
	}
	if !msg.read {
		for _, u := range spec.Updates {
			nd.store.EnsureVersion(u.Key, msg.ver)
			nd.store.ApplyFrom(u.Key, msg.ver, u.Op)
		}
	}
	release()

	for _, child := range spec.Children {
		nd.cnt.IncR(msg.ver, child.Node)
		h.addExpected(1)
		nd.sys.net.Send(transport.Message{From: nd.id, To: child.Node, Payload: subtxnMsg{
			seq: msg.seq, ver: msg.ver, read: msg.read, spec: child, parent: nd.id, hasParent: true,
		}})
	}
	h.reportDone(reads)
	nd.cnt.IncC(msg.ver, from)
}

// parent plumbing: subtxnMsg carries the invoking node for completion
// counters.
func (m subtxnMsg) from() model.NodeID {
	if m.hasParent {
		return m.parent
	}
	return 0
}

// handle mirrors the nocoord handle.
type handle struct {
	mu        sync.Mutex
	expected  int
	done      int
	reads     []model.ReadResult
	completed chan struct{}
	closed    bool
}

func newHandle() *handle { return &handle{completed: make(chan struct{})} }

func (h *handle) addExpected(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expected += n
}

func (h *handle) reportDone(reads []model.ReadResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done++
	h.reads = append(h.reads, reads...)
	if !h.closed && h.expected > 0 && h.done == h.expected {
		h.closed = true
		close(h.completed)
	}
}

// WaitTimeout implements baseline.Handle.
func (h *handle) WaitTimeout(d time.Duration) bool {
	select {
	case <-h.completed:
		return true
	case <-time.After(d):
		return false
	}
}

// Reads implements baseline.Handle.
func (h *handle) Reads() []model.ReadResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ReadResult, len(h.reads))
	copy(out, h.reads)
	return out
}

var _ baseline.System = (*System)(nil)
