package baseline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

func TestThreeVAdapter(t *testing.T) {
	c, err := core.NewCluster(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := model.NewRecord()
	c.Preload(0, "x", rec)
	c.Start()
	sys := ThreeV{Cluster: c}
	defer sys.Close()
	if sys.Name() != "3V" {
		t.Errorf("Name = %q", sys.Name())
	}
	h, err := sys.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{{Key: "x", Op: model.AddOp{Field: "v", Delta: 2}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
	sys.Advance()
	q, err := sys.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 0, Reads: []string{"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.WaitTimeout(5 * time.Second) {
		t.Fatal("read timed out")
	}
	if got := q.Reads()[0].Record.Field("v"); got != 2 {
		t.Errorf("read = %d, want 2", got)
	}
}
