// Package globalsync implements the "Global Synchronization" baseline
// of Section 1: every global transaction — reads included — runs as a
// full-fledged distributed transaction under strict two-phase locking
// with global two-phase commitment.
//
// This is the scheme that guarantees global serializability the
// classical way, and the one whose "often prohibitive" delays motivate
// the paper: a client observes its transaction as committed only after
// the vote and decision rounds complete, and every lock is held across
// those rounds, so throughput collapses as message latency or node
// count grows (experiments E5 and E9).
//
// Locking uses the shared lock manager with S = CommuteRead (shared,
// compatible with itself) and X = NonCommuting (exclusive); deadlocks
// are resolved by wait timeout, aborting the victim.
package globalsync

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/localcc"
	"repro/internal/locks"
	"repro/internal/model"
	"repro/internal/transport"
)

// Config parameterizes the system.
type Config struct {
	Nodes     int
	LockWait  time.Duration
	NetConfig transport.Config
}

type txnID = uint64

// subtxnMsg ships one subtransaction; rootNode is the 2PC coordinator.
type subtxnMsg struct {
	txn      txnID
	spec     *model.SubtxnSpec
	rootNode model.NodeID
	root     bool
}

// voteMsg is the 2PC vote, carrying the spawned-children count so the
// coordinator learns the tree size as votes arrive.
type voteMsg struct {
	txn      txnID
	node     model.NodeID
	ok       bool
	children int
	// root marks the root subtransaction's vote; the coordinator must
	// not decide before it arrives (a child's vote can overtake it).
	root bool
}

// decisionMsg is the 2PC outcome. participants is the total number of
// participant nodes, so each one can tell the client handle when the
// last participant has reported.
type decisionMsg struct {
	txn          txnID
	commit       bool
	participants int
}

// System is a running global-2PL database.
type System struct {
	net   *transport.Net
	nodes []*node

	seqMu   sync.Mutex
	seq     txnID
	handles sync.Map // txnID -> *handle

	aborted int64
	statMu  sync.Mutex
}

// undoRec is a before-image for rollback (nil prev = key created).
type undoRec struct {
	key  string
	prev *model.Record
}

type exec struct {
	reads []model.ReadResult
	undo  []undoRec
}

type coordState struct {
	votes, expected int
	ok              bool
	rootVoted       bool
	nodes           map[model.NodeID]bool
}

// node is one site.
type node struct {
	id      model.NodeID
	sys     *System
	mu      sync.RWMutex
	records map[string]*model.Record
	latches *localcc.Manager
	lm      *locks.Manager

	stMu  sync.Mutex
	part  map[txnID]*exec
	coord map[txnID]*coordState
}

// New builds and starts the system.
func New(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("globalsync: Nodes must be positive")
	}
	nc := cfg.NetConfig
	nc.Nodes = cfg.Nodes
	s := &System{net: transport.NewNet(nc)}
	for i := 0; i < cfg.Nodes; i++ {
		lm := locks.New()
		lm.WaitBound = cfg.LockWait
		nd := &node{
			id:      model.NodeID(i),
			sys:     s,
			records: make(map[string]*model.Record),
			latches: localcc.New(),
			lm:      lm,
			part:    make(map[txnID]*exec),
			coord:   make(map[txnID]*coordState),
		}
		s.nodes = append(s.nodes, nd)
		s.net.Register(nd.id, nd.handle)
	}
	s.net.Start()
	return s, nil
}

// Name implements baseline.System.
func (s *System) Name() string { return "Global2PC" }

// Advance implements baseline.System: a no-op — committed updates are
// immediately visible (that is what all the locking buys).
func (s *System) Advance() {}

// Close implements baseline.System.
func (s *System) Close() { s.net.Close() }

// Aborted returns how many transactions were aborted (deadlock
// victims).
func (s *System) Aborted() int64 {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.aborted
}

// Preload installs an initial record.
func (s *System) Preload(nodeID model.NodeID, key string, rec *model.Record) {
	nd := s.nodes[nodeID]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.records[key] = rec
}

// Submit implements baseline.System.
func (s *System) Submit(spec *model.TxnSpec) (baseline.Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.seqMu.Lock()
	s.seq++
	id := s.seq
	s.seqMu.Unlock()
	h := newHandle()
	s.handles.Store(id, h)
	s.net.Send(transport.Message{From: spec.Root.Node, To: spec.Root.Node, Payload: subtxnMsg{
		txn: id, spec: spec.Root, rootNode: spec.Root.Node, root: true,
	}})
	return h, nil
}

func (nd *node) handle(m transport.Message) {
	switch p := m.Payload.(type) {
	case subtxnMsg:
		// Executions may block on locks; run each on its own goroutine
		// so control traffic keeps flowing.
		go nd.exec(p)
	case voteMsg:
		nd.handleVote(p)
	case decisionMsg:
		nd.handleDecision(p)
	}
}

// exec runs one subtransaction: lock everything (S for reads, X for
// writes), execute with before-images, spawn children, vote.
func (nd *node) exec(msg subtxnMsg) {
	spec := msg.spec
	ltx := model.TxnID(msg.txn)
	ok := true
	for _, k := range spec.Reads {
		if err := nd.lm.Acquire(ltx, k, locks.CommuteRead); err != nil {
			ok = false
			break
		}
	}
	if ok {
		for _, u := range spec.Updates {
			if err := nd.lm.Acquire(ltx, u.Key, locks.NonCommuting); err != nil {
				ok = false
				break
			}
		}
	}

	ex := &exec{}
	if ok {
		release := nd.latches.Acquire(touched(spec))
		for _, k := range spec.Reads {
			nd.mu.RLock()
			rec := nd.records[k]
			var cp *model.Record
			if rec != nil {
				cp = rec.Clone()
			} else {
				cp = model.NewRecord()
			}
			nd.mu.RUnlock()
			ex.reads = append(ex.reads, model.ReadResult{Node: nd.id, Key: k, Record: cp})
		}
		for _, u := range spec.Updates {
			nd.mu.Lock()
			rec := nd.records[u.Key]
			if rec == nil {
				ex.undo = append(ex.undo, undoRec{key: u.Key, prev: nil})
				rec = model.NewRecord()
				nd.records[u.Key] = rec
			} else {
				ex.undo = append(ex.undo, undoRec{key: u.Key, prev: rec.Clone()})
			}
			u.Op.Apply(rec)
			nd.mu.Unlock()
		}
		release()
	}

	children := 0
	if ok {
		for _, child := range spec.Children {
			nd.sys.net.Send(transport.Message{From: nd.id, To: child.Node, Payload: subtxnMsg{
				txn: msg.txn, spec: child, rootNode: msg.rootNode,
			}})
			children++
		}
	}

	nd.stMu.Lock()
	cur := nd.part[msg.txn]
	if cur == nil {
		nd.part[msg.txn] = ex
	} else {
		cur.reads = append(cur.reads, ex.reads...)
		cur.undo = append(cur.undo, ex.undo...)
	}
	nd.stMu.Unlock()

	nd.sys.net.Send(transport.Message{From: nd.id, To: msg.rootNode, Payload: voteMsg{
		txn: msg.txn, node: nd.id, ok: ok, children: children, root: msg.root,
	}})
}

func (nd *node) handleVote(p voteMsg) {
	nd.stMu.Lock()
	st := nd.coord[p.txn]
	if st == nil {
		st = &coordState{expected: 1, ok: true, nodes: make(map[model.NodeID]bool)}
		nd.coord[p.txn] = st
	}
	st.votes++
	st.expected += p.children
	st.ok = st.ok && p.ok
	if p.root {
		st.rootVoted = true
	}
	st.nodes[p.node] = true
	done := st.rootVoted && st.votes == st.expected
	var participants []model.NodeID
	commit := false
	if done {
		commit = st.ok
		for n := range st.nodes {
			participants = append(participants, n)
		}
		delete(nd.coord, p.txn)
	}
	nd.stMu.Unlock()
	if !done {
		return
	}
	for _, n := range participants {
		nd.sys.net.Send(transport.Message{From: nd.id, To: n, Payload: decisionMsg{
			txn: p.txn, commit: commit, participants: len(participants),
		}})
	}
}

func (nd *node) handleDecision(p decisionMsg) {
	nd.stMu.Lock()
	ex := nd.part[p.txn]
	delete(nd.part, p.txn)
	nd.stMu.Unlock()
	if ex == nil {
		return
	}
	if !p.commit {
		nd.mu.Lock()
		for i := len(ex.undo) - 1; i >= 0; i-- {
			u := ex.undo[i]
			if u.prev == nil {
				delete(nd.records, u.key)
			} else {
				nd.records[u.key] = u.prev
			}
		}
		nd.mu.Unlock()
	}
	nd.lm.ReleaseAll(model.TxnID(p.txn))

	hv, okh := nd.sys.handles.Load(p.txn)
	if !okh {
		return
	}
	h := hv.(*handle)
	h.reportDecision(ex.reads, p.commit, p.participants, nd.sys)
}

func touched(spec *model.SubtxnSpec) []string {
	keys := append([]string(nil), spec.Reads...)
	for _, u := range spec.Updates {
		keys = append(keys, u.Key)
	}
	return keys
}

// handle completes when every participant has processed the decision,
// so Reads() is complete once WaitTimeout returns — and the measured
// latency includes the full two-phase commitment, which is the point
// of this baseline.
type handle struct {
	mu        sync.Mutex
	reads     []model.ReadResult
	aborted   bool
	completed chan struct{}
	closed    bool
	decisions int
}

func newHandle() *handle {
	return &handle{completed: make(chan struct{})}
}

// reportDecision accumulates per-participant outcomes, closing the
// handle when the last participant reports.
func (h *handle) reportDecision(reads []model.ReadResult, commit bool, participants int, sys *System) {
	h.mu.Lock()
	h.decisions++
	h.reads = append(h.reads, reads...)
	if !commit && !h.aborted {
		h.aborted = true
		sys.statMu.Lock()
		sys.aborted++
		sys.statMu.Unlock()
	}
	if !h.closed && h.decisions >= participants {
		h.closed = true
		close(h.completed)
	}
	h.mu.Unlock()
}

// WaitTimeout implements baseline.Handle.
func (h *handle) WaitTimeout(d time.Duration) bool {
	select {
	case <-h.completed:
		return true
	case <-time.After(d):
		return false
	}
}

// Reads implements baseline.Handle.
func (h *handle) Reads() []model.ReadResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ReadResult, len(h.reads))
	copy(out, h.reads)
	return out
}

// Aborted reports whether the transaction was a deadlock victim.
func (h *handle) Aborted() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.aborted
}

var _ baseline.System = (*System)(nil)
