package globalsync

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
)

func add(key string, d int64) model.KeyOp {
	return model.KeyOp{Key: key, Op: model.AddOp{Field: "v", Delta: d}}
}

func TestCommitAcrossNodes(t *testing.T) {
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(0, "x", model.NewRecord())
	s.Preload(1, "y", model.NewRecord())
	h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{add("x", 3)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{add("y", 4)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("txn timed out")
	}
	if h.(*handle).Aborted() {
		t.Fatal("unexpected abort")
	}
	q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Reads: []string{"x"},
		Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"y"}}},
	}})
	if !q.WaitTimeout(5 * time.Second) {
		t.Fatal("read timed out")
	}
	got := map[string]int64{}
	for _, r := range q.Reads() {
		got[r.Key] = r.Record.Field("v")
	}
	if got["x"] != 3 || got["y"] != 4 {
		t.Errorf("read %v, want x=3 y=4", got)
	}
	if s.Name() != "Global2PC" {
		t.Error("name wrong")
	}
}

func TestNeverShowsPartialUpdates(t *testing.T) {
	// The whole point of global synchronization: with jitter and many
	// concurrent two-node updates, reads must never observe a partial
	// transaction.
	s, err := New(Config{Nodes: 2, LockWait: 2 * time.Second,
		NetConfig: transport.Config{Jitter: 300 * time.Microsecond, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(0, "g", model.NewRecord())
	s.Preload(1, "g", model.NewRecord())
	type pair struct {
		u, q interface {
			WaitTimeout(time.Duration) bool
			Reads() []model.ReadResult
		}
	}
	var pairs []pair
	for i := 0; i < 40; i++ {
		w := model.MakeTxnID(1<<15, uint64(i+1))
		u, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 1, Total: 2}}}}},
				{Node: 1, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 2, Total: 2}}}}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		q, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 1, Reads: []string{"g"},
			Children: []*model.SubtxnSpec{{Node: 0, Reads: []string{"g"}}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{u, q})
	}
	var reads []verify.GroupRead
	for i, p := range pairs {
		if !p.u.WaitTimeout(10*time.Second) || !p.q.WaitTimeout(10*time.Second) {
			t.Fatal("timed out")
		}
		reads = append(reads, verify.GroupRead{Txn: model.MakeTxnID(0, uint64(i)), Results: p.q.Reads()})
	}
	// Aborted writers (deadlock victims) leave no tuples at all, so the
	// atomic-visibility audit is exact here.
	if anoms := verify.AuditAtomicVisibility(reads); len(anoms) > 0 {
		t.Errorf("Global2PC produced anomalies: %v", anoms[0])
	}
}

func TestDeadlockVictimAborts(t *testing.T) {
	s, err := New(Config{Nodes: 2, LockWait: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(0, "x", model.NewRecord())
	s.Preload(1, "y", model.NewRecord())
	// Two transactions locking x and y from opposite ends.
	mk := func(first model.NodeID) *model.TxnSpec {
		keys := map[model.NodeID]string{0: "x", 1: "y"}
		return &model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    first,
			Updates: []model.KeyOp{add(keys[first], 1)},
			Children: []*model.SubtxnSpec{
				{Node: 1 - first, Updates: []model.KeyOp{add(keys[1-first], 1)}},
			},
		}}
	}
	var hs []*handle
	for i := 0; i < 20; i++ {
		h1, _ := s.Submit(mk(0))
		h2, _ := s.Submit(mk(1))
		hs = append(hs, h1.(*handle), h2.(*handle))
	}
	committed := 0
	for _, h := range hs {
		if !h.WaitTimeout(10 * time.Second) {
			t.Fatal("handle stuck (locks leaked)")
		}
		if !h.Aborted() {
			committed++
		}
	}
	// Values must equal the committed count on both nodes (atomicity).
	q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Reads: []string{"x"},
		Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"y"}}},
	}})
	q.WaitTimeout(5 * time.Second)
	got := map[string]int64{}
	for _, r := range q.Reads() {
		got[r.Key] = r.Record.Field("v")
	}
	if got["x"] != int64(committed) || got["y"] != int64(committed) {
		t.Errorf("x=%d y=%d, want both == committed %d", got["x"], got["y"], committed)
	}
	if s.Aborted() != int64(len(hs)-committed) {
		t.Errorf("Aborted() = %d, want %d", s.Aborted(), len(hs)-committed)
	}
}

func TestSubmitValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	s, _ := New(Config{Nodes: 1})
	defer s.Close()
	if _, err := s.Submit(&model.TxnSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
