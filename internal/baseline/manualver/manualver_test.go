package manualver

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
)

func add(key string, d int64) model.KeyOp {
	return model.KeyOp{Key: key, Op: model.AddOp{Field: "v", Delta: d}}
}

func mkSys(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Preload(0, "x", model.NewRecord())
	s.Preload(1, "y", model.NewRecord())
	return s
}

func TestUpdatesHiddenUntilPeriodPublished(t *testing.T) {
	s := mkSys(t, Config{StabilizationDelay: 10 * time.Millisecond})
	h, err := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{add("x", 5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update timed out")
	}
	read := func() int64 {
		q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 0, Reads: []string{"x"}}})
		if !q.WaitTimeout(5 * time.Second) {
			t.Fatal("read timed out")
		}
		return q.Reads()[0].Record.Field("v")
	}
	if got := read(); got != 0 {
		t.Errorf("pre-switch read = %d, want 0", got)
	}
	s.Advance()
	// The read switch is an async message; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for read() != 5 {
		if time.Now().After(deadline) {
			t.Fatal("period never published")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Name() != "ManualVer" {
		t.Error("name wrong")
	}
}

func TestZeroDelayExhibitsPartialVisibility(t *testing.T) {
	// With jitter on the wire and zero stabilization delay, a period
	// switch racing a two-node update splits the transaction across
	// periods, and a reader of the old period sees it partially.
	s := mkSys(t, Config{
		StabilizationDelay: 0,
		NetConfig:          transport.Config{Jitter: 2 * time.Millisecond, Seed: 31},
	})
	s.Preload(0, "g", model.NewRecord())
	s.Preload(1, "g", model.NewRecord())
	deadline := time.Now().Add(20 * time.Second)
	for attempt := 1; time.Now().Before(deadline); attempt++ {
		w := model.MakeTxnID(1<<15, uint64(attempt))
		h, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 1, Total: 2}}}}},
				{Node: 1, Updates: []model.KeyOp{{Key: "g", Op: model.AppendOp{T: model.Tuple{Txn: w, Part: 2, Total: 2}}}}},
			},
		}})
		s.Advance() // race the period switch against the in-flight update
		h.WaitTimeout(5 * time.Second)
		q, _ := s.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0, Reads: []string{"g"},
			Children: []*model.SubtxnSpec{{Node: 1, Reads: []string{"g"}}},
		}})
		q.WaitTimeout(5 * time.Second)
		anoms := verify.AuditAtomicVisibility([]verify.GroupRead{{
			Txn: model.MakeTxnID(0, uint64(attempt)), Results: q.Reads(),
		}})
		if len(anoms) > 0 {
			return // the paper's correctness gap, demonstrated
		}
	}
	t.Error("manual versioning with zero delay never showed a partial read")
}

func TestSubmitValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	s := mkSys(t, Config{})
	if _, err := s.Submit(&model.TxnSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}
