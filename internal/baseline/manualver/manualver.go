// Package manualver implements the "Manual Versioning" baseline of
// Section 1: updates accumulate in a period (a month, in the paper's
// billing example); some time after the period closes — a fixed,
// conservatively chosen stabilization delay — that period's data is
// made available to readers, in the hope that all in-flight updates
// have landed by then.
//
// Two deficiencies the paper calls out are reproduced measurably:
//
//   - Correctness is hoped for, not guaranteed: each subtransaction
//     stamps its writes with the executing node's CURRENT update
//     period, so a transaction racing the period switch can land partly
//     in period k and partly in k+1 — and a period-k reader sees a
//     partial transaction (experiment E3 sweeps the delay).
//   - Staleness: readers always trail by up to a full period plus the
//     stabilization delay (experiment E11).
package manualver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/localcc"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Config parameterizes the system.
type Config struct {
	Nodes int
	// StabilizationDelay is how long after closing a period the
	// coordinator waits before letting readers use it. The paper's
	// operators set this "conservatively high"; setting it low exposes
	// the correctness gap.
	StabilizationDelay time.Duration
	NetConfig          transport.Config
}

type subtxnMsg struct {
	seq  uint64
	spec *model.SubtxnSpec
	read bool
}

// periodSwitchMsg opens a new update period.
type periodSwitchMsg struct{ newUpd model.Version }

// readSwitchMsg publishes a period to readers (and garbage-collects
// older ones).
type readSwitchMsg struct{ newRead model.Version }

// System is a running manual-versioning database.
type System struct {
	net   *transport.Net
	nodes []*node

	seqMu   sync.Mutex
	seq     uint64
	handles sync.Map

	advMu sync.Mutex
	upd   model.Version
	read  model.Version
	delay time.Duration
}

type node struct {
	id      model.NodeID
	sys     *System
	store   *storage.Store
	latches *localcc.Manager

	verMu sync.Mutex
	upd   model.Version
	read  model.Version
}

// New builds and starts the system. Period 0 is initially readable;
// updates accumulate in period 1.
func New(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("manualver: Nodes must be positive")
	}
	nc := cfg.NetConfig
	nc.Nodes = cfg.Nodes
	s := &System{net: transport.NewNet(nc), upd: 1, read: 0, delay: cfg.StabilizationDelay}
	for i := 0; i < cfg.Nodes; i++ {
		nd := &node{
			id:      model.NodeID(i),
			sys:     s,
			store:   storage.New(),
			latches: localcc.New(),
			upd:     1,
			read:    0,
		}
		s.nodes = append(s.nodes, nd)
		s.net.Register(nd.id, nd.handle)
	}
	s.net.Start()
	return s, nil
}

// Name implements baseline.System.
func (s *System) Name() string { return "ManualVer" }

// Close implements baseline.System.
func (s *System) Close() { s.net.Close() }

// Preload installs an initial period-0 record.
func (s *System) Preload(nodeID model.NodeID, key string, rec *model.Record) {
	s.nodes[nodeID].store.Preload(key, rec)
}

// Submit implements baseline.System.
func (s *System) Submit(spec *model.TxnSpec) (baseline.Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.seqMu.Lock()
	s.seq++
	id := s.seq
	s.seqMu.Unlock()
	h := newHandle()
	s.handles.Store(id, h)
	h.addExpected(1)
	s.net.Send(transport.Message{From: spec.Root.Node, To: spec.Root.Node, Payload: subtxnMsg{
		seq: id, spec: spec.Root, read: spec.ReadOnly(),
	}})
	return h, nil
}

// Advance implements baseline.System: close the current period, wait
// the fixed stabilization delay (hoping in-flight updates drain), then
// publish it to readers. Unlike 3V's Phase 2, nothing checks that the
// hope was justified.
func (s *System) Advance() {
	s.advMu.Lock()
	defer s.advMu.Unlock()
	s.upd++
	for i := range s.nodes {
		s.net.Send(transport.Message{From: model.NodeID(0), To: model.NodeID(i), Payload: periodSwitchMsg{newUpd: s.upd}})
	}
	time.Sleep(s.delay)
	s.read++
	for i := range s.nodes {
		s.net.Send(transport.Message{From: model.NodeID(0), To: model.NodeID(i), Payload: readSwitchMsg{newRead: s.read}})
	}
}

func (nd *node) handle(m transport.Message) {
	switch p := m.Payload.(type) {
	case periodSwitchMsg:
		nd.verMu.Lock()
		if p.newUpd > nd.upd {
			nd.upd = p.newUpd
		}
		nd.verMu.Unlock()
	case readSwitchMsg:
		nd.verMu.Lock()
		if p.newRead > nd.read {
			nd.read = p.newRead
		}
		keep := nd.read
		nd.verMu.Unlock()
		nd.store.GC(keep)
	case subtxnMsg:
		nd.exec(p)
	}
}

func (nd *node) exec(msg subtxnMsg) {
	hv, _ := nd.sys.handles.Load(msg.seq)
	h := hv.(*handle)
	spec := msg.spec

	// Each subtransaction uses the node's CURRENT periods — there is no
	// transaction-carried version id. This is the scheme's flaw.
	nd.verMu.Lock()
	upd, read := nd.upd, nd.read
	nd.verMu.Unlock()

	keys := append([]string(nil), spec.Reads...)
	for _, u := range spec.Updates {
		keys = append(keys, u.Key)
	}
	release := nd.latches.Acquire(keys)
	var reads []model.ReadResult
	for _, k := range spec.Reads {
		rec, ver, ok := nd.store.ReadMax(k, read)
		if !ok {
			rec, ver = model.NewRecord(), 0
		}
		reads = append(reads, model.ReadResult{Node: nd.id, Key: k, VersionRead: ver, Record: rec})
	}
	for _, u := range spec.Updates {
		nd.store.EnsureVersion(u.Key, upd)
		nd.store.ApplyFrom(u.Key, upd, u.Op)
	}
	release()

	for _, child := range spec.Children {
		h.addExpected(1)
		nd.sys.net.Send(transport.Message{From: nd.id, To: child.Node, Payload: subtxnMsg{
			seq: msg.seq, spec: child, read: msg.read,
		}})
	}
	h.reportDone(reads)
}

// handle mirrors the nocoord handle.
type handle struct {
	mu        sync.Mutex
	expected  int
	done      int
	reads     []model.ReadResult
	completed chan struct{}
	closed    bool
}

func newHandle() *handle { return &handle{completed: make(chan struct{})} }

func (h *handle) addExpected(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expected += n
}

func (h *handle) reportDone(reads []model.ReadResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done++
	h.reads = append(h.reads, reads...)
	if !h.closed && h.expected > 0 && h.done == h.expected {
		h.closed = true
		close(h.completed)
	}
}

// WaitTimeout implements baseline.Handle.
func (h *handle) WaitTimeout(d time.Duration) bool {
	select {
	case <-h.completed:
		return true
	case <-time.After(d):
		return false
	}
}

// Reads implements baseline.Handle.
func (h *handle) Reads() []model.ReadResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ReadResult, len(h.reads))
	copy(out, h.reads)
	return out
}

var _ baseline.System = (*System)(nil)
