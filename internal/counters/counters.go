// Package counters implements the per-version request/completion
// counter scheme of Section 2.2 / 4 of the paper, and the asynchronous
// stable-property detector the version-advancement coordinator uses in
// Phases 2 and 4.
//
// For every version v and every ordered pair of nodes (p, q):
//
//   - R[v][p][q], stored at node p, counts subtransaction requests sent
//     from p to q against version v (including p's own roots: R[v][p][p]
//     is bumped when a root subtransaction is assigned version v at p).
//   - C[v][p][q], stored at node q, counts subtransactions invoked from
//     p that completed at q against version v.
//
// All transactions of version v are complete exactly when
// R[v][p][q] == C[v][p][q] for every pair — and once every node has
// advanced past v (so no new roots join v), this is a *stable* property
// (Section 4.4 property 5): it can only flip from false to true, never
// back. The coordinator therefore does not need to lock all counters
// globally; it reads them asynchronously and repeatedly. Because a
// sender increments R strictly before the message leaves and a receiver
// increments C only at termination, a sloppy (non-atomic) observation
// could in principle read a C increment caused by a request whose R
// increment it missed; the standard remedy from the stable-property
// detection literature (Chandy/Lamport, Helary et al.) is the double
// collect implemented by Detector: two consecutive sweeps that agree
// with each other and balance R against C prove quiescence.
package counters

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// row holds the two flat counter rows of one version at one node. The
// slices are allocated once, zeroed, and only ever mutated through
// atomic adds, so a published *row is safe to share without locks.
type row struct {
	r []atomic.Int64 // r[q]: requests sent self -> q
	c []atomic.Int64 // c[o]: completions at self of subtxns invoked from o
}

// verIndex is the immutable version → row index. A new version (rare:
// once per advancement) or a DropBelow (once per GC) builds a fresh
// index and publishes it wholesale via Table.idx; the hot paths only
// ever load it. vers is ascending and tiny — at most three versions are
// active under 3V, so lookup is a short linear scan.
type verIndex struct {
	vers []model.Version
	rows []*row
}

// lookup returns version v's row, or nil.
func (ix *verIndex) lookup(v model.Version) *row {
	for i, ver := range ix.vers {
		if ver == v {
			return ix.rows[i]
		}
	}
	return nil
}

// Table holds one node's counters for all active versions. A Table is
// created with the cluster size and the owning node's id; the zero
// value is not usable.
//
// All methods are safe for concurrent use, and the hot ones (IncR,
// IncC) are lock-free: a single atomic add on a row reached through one
// atomic pointer load. This implements Section 4's access model
// *literally* — the paper's only concurrency assumption is that
// individual counter reads and writes are atomic, with no larger
// atomicity anywhere. The earlier implementation wrapped the whole
// table in a mutex, which is stronger than the algorithm requires and
// made every subtransaction on a node serialize on one lock.
//
// Correctness of the sloppy reads (see DESIGN.md §3 decision 2): the
// coordinator decides quiescence of version v from SnapshotR/SnapshotC
// observations that are NOT atomic with respect to concurrent
// increments — exactly the situation of Chandy–Lamport-style stable
// property detection. "All transactions of version v are complete"
// (R[v][p][q] == C[v][p][q] for all pairs, with no new roots joining v)
// is stable: once true it stays true, because a sender bumps R strictly
// before the request leaves and the receiver bumps C only at
// termination. A single sloppy sweep can therefore produce a false
// *negative* (miss an R increment whose C it observed) but a balanced
// pair of *consecutive identical* sweeps — the Detector's double
// collect — proves genuine quiescence. Nothing about that argument
// needs table-level locking, so the mutex bought nothing but
// contention.
type Table struct {
	self model.NodeID
	n    int
	idx  atomic.Pointer[verIndex]
	mu   sync.Mutex // serializes index rebuilds only (never on hot paths)
}

// NewTable returns a counter table for a cluster of n nodes, owned by
// node self. All counters start at zero for version 0 (and any version
// is lazily materialized on first touch).
func NewTable(self model.NodeID, n int) *Table {
	t := &Table{self: self, n: n}
	t.idx.Store(&verIndex{})
	return t
}

// row returns version v's counter row, materializing it (rare) if
// absent. The fast path is one atomic load and a ≤3-entry scan.
func (t *Table) row(v model.Version) *row {
	if r := t.idx.Load().lookup(v); r != nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.idx.Load()
	if r := cur.lookup(v); r != nil { // lost the race to another creator
		return r
	}
	nr := &row{r: make([]atomic.Int64, t.n), c: make([]atomic.Int64, t.n)}
	next := &verIndex{
		vers: make([]model.Version, 0, len(cur.vers)+1),
		rows: make([]*row, 0, len(cur.rows)+1),
	}
	inserted := false
	for i, ver := range cur.vers {
		if !inserted && v < ver {
			next.vers = append(next.vers, v)
			next.rows = append(next.rows, nr)
			inserted = true
		}
		next.vers = append(next.vers, ver)
		next.rows = append(next.rows, cur.rows[i])
	}
	if !inserted {
		next.vers = append(next.vers, v)
		next.rows = append(next.rows, nr)
	}
	t.idx.Store(next)
	return nr
}

// EnsureVersion allocates zeroed counter rows for version v if absent —
// the "allocate and initialize to zero all the request and completion
// counters for the new version" step of Sections 4.1 and 4.3.
func (t *Table) EnsureVersion(v model.Version) {
	t.row(v)
}

// IncR increments R[v][self][to]: a subtransaction request against
// version v is about to be sent from this node to node to. Callers must
// invoke IncR strictly before handing the message to the transport —
// the quiescence argument depends on it.
func (t *Table) IncR(v model.Version, to model.NodeID) {
	t.row(v).r[to].Add(1)
}

// IncC increments C[v][from][self]: a subtransaction of version v
// invoked from node from has terminated (committed or aborted) at this
// node. Callers invoke IncC atomically with local termination.
func (t *Table) IncC(v model.Version, from model.NodeID) {
	t.row(v).c[from].Add(1)
}

// SnapshotR returns a copy of this node's R row for version v
// (requests sent to each destination). Elements are read individually
// atomically; the row as a whole is a sloppy observation, which is all
// the double-collect detector needs (see the Table doc comment).
func (t *Table) SnapshotR(v model.Version) []int64 {
	r := t.row(v)
	out := make([]int64, t.n)
	for i := range out {
		out[i] = r.r[i].Load()
	}
	return out
}

// SnapshotC returns a copy of this node's C row for version v
// (completions here, indexed by invoking node).
func (t *Table) SnapshotC(v model.Version) []int64 {
	r := t.row(v)
	out := make([]int64, t.n)
	for i := range out {
		out[i] = r.c[i].Load()
	}
	return out
}

// R returns the current value of R[v][self][to] (test/trace accessor).
func (t *Table) R(v model.Version, to model.NodeID) int64 {
	return t.row(v).r[to].Load()
}

// C returns the current value of C[v][from][self] (test/trace accessor).
func (t *Table) C(v model.Version, from model.NodeID) int64 {
	return t.row(v).c[from].Load()
}

// RestoreRow installs version v's rows from a durable snapshot —
// crash-recovery only, before the node serves traffic. Values are
// written with atomic stores so a Table being restored is still safe to
// read, but restore is not meant to race live increments: recovery
// rebuilds the table before the transport delivers anything.
func (t *Table) RestoreRow(v model.Version, rRow, cRow []int64) {
	row := t.row(v)
	for i := 0; i < t.n; i++ {
		if i < len(rRow) {
			row.r[i].Store(rRow[i])
		}
		if i < len(cRow) {
			row.c[i].Store(cRow[i])
		}
	}
}

// DropBelow discards counter rows for all versions strictly below v —
// the counter garbage collection of advancement Phase 4. It publishes a
// filtered index; an increment racing the rebuild on a dropped
// version's row can land on the orphaned row and vanish, which is
// benign: GC runs only for versions whose quiescence was already
// detected, so the protocol guarantees no such increment exists (and
// the old mutex gave the same end state — the late increment would
// recreate a row that nothing ever reads again).
func (t *Table) DropBelow(v model.Version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.idx.Load()
	next := &verIndex{}
	for i, ver := range cur.vers {
		if ver >= v {
			next.vers = append(next.vers, ver)
			next.rows = append(next.rows, cur.rows[i])
		}
	}
	t.idx.Store(next)
}

// Versions returns the versions that currently have counter rows,
// ascending.
func (t *Table) Versions() []model.Version {
	ix := t.idx.Load()
	out := make([]model.Version, len(ix.vers))
	copy(out, ix.vers)
	return out
}

// Snapshot is one sweep of the whole cluster's counters for a single
// version: R[p][q] as reported by each node p, and C[p][q] as reported
// by each node q (stored here already transposed to [p][q] so the
// quiescence condition is a plain element-wise comparison).
type Snapshot struct {
	N int
	R [][]int64 // R[p][q]
	C [][]int64 // C[p][q]
}

// NewSnapshot allocates an n×n snapshot.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{N: n, R: make([][]int64, n), C: make([][]int64, n)}
	for i := 0; i < n; i++ {
		s.R[i] = make([]int64, n)
		s.C[i] = make([]int64, n)
	}
	return s
}

// SetFromNode installs node p's reported rows into the snapshot: rRow
// is p's R row (requests p→q, indexed by q) and cRow is p's C row
// (completions at p invoked from o, indexed by o — transposed into
// C[o][p] here).
func (s *Snapshot) SetFromNode(p model.NodeID, rRow, cRow []int64) {
	copy(s.R[p], rRow)
	for o := 0; o < s.N; o++ {
		s.C[o][p] = cRow[o]
	}
}

// Balanced reports whether R[p][q] == C[p][q] for all pairs.
func (s *Snapshot) Balanced() bool {
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != s.C[p][q] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two snapshots carry identical counters.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if o == nil || s.N != o.N {
		return false
	}
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != o.R[p][q] || s.C[p][q] != o.C[p][q] {
				return false
			}
		}
	}
	return true
}

// String renders the snapshot for traces and failures.
func (s *Snapshot) String() string {
	out := ""
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != 0 || s.C[p][q] != 0 {
				out += fmt.Sprintf("R[%v->%v]=%d C=%d ", model.NodeID(p), model.NodeID(q), s.R[p][q], s.C[p][q])
			}
		}
	}
	if out == "" {
		return "(all zero)"
	}
	return out
}

// Detector decides quiescence of one version from a stream of
// asynchronous snapshots using the double-collect rule: declare
// quiescence after two consecutive snapshots that are balanced and
// identical to each other. Feed it snapshots in the order collected;
// Quiescent latches true once satisfied (stable property).
type Detector struct {
	prev      *Snapshot
	quiescent bool
	sweeps    int
}

// Offer feeds the next collected snapshot and returns the current
// verdict.
func (d *Detector) Offer(s *Snapshot) bool {
	d.sweeps++
	if d.quiescent {
		return true
	}
	if s.Balanced() && s.Equal(d.prev) {
		d.quiescent = true
	}
	d.prev = s
	return d.quiescent
}

// Quiescent returns the latched verdict.
func (d *Detector) Quiescent() bool { return d.quiescent }

// Sweeps returns how many snapshots have been offered — the detection
// cost metric of experiment E7.
func (d *Detector) Sweeps() int { return d.sweeps }
