// Package counters implements the per-version request/completion
// counter scheme of Section 2.2 / 4 of the paper, and the asynchronous
// stable-property detector the version-advancement coordinator uses in
// Phases 2 and 4.
//
// For every version v and every ordered pair of nodes (p, q):
//
//   - R[v][p][q], stored at node p, counts subtransaction requests sent
//     from p to q against version v (including p's own roots: R[v][p][p]
//     is bumped when a root subtransaction is assigned version v at p).
//   - C[v][p][q], stored at node q, counts subtransactions invoked from
//     p that completed at q against version v.
//
// All transactions of version v are complete exactly when
// R[v][p][q] == C[v][p][q] for every pair — and once every node has
// advanced past v (so no new roots join v), this is a *stable* property
// (Section 4.4 property 5): it can only flip from false to true, never
// back. The coordinator therefore does not need to lock all counters
// globally; it reads them asynchronously and repeatedly. Because a
// sender increments R strictly before the message leaves and a receiver
// increments C only at termination, a sloppy (non-atomic) observation
// could in principle read a C increment caused by a request whose R
// increment it missed; the standard remedy from the stable-property
// detection literature (Chandy/Lamport, Helary et al.) is the double
// collect implemented by Detector: two consecutive sweeps that agree
// with each other and balance R against C prove quiescence.
package counters

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Table holds one node's counters for all active versions. A Table is
// created with the cluster size and the owning node's id; the zero
// value is not usable.
//
// All methods are safe for concurrent use. Per Section 4's only
// concurrency assumption, individual reads and writes are atomic; no
// larger atomicity is provided or needed.
type Table struct {
	mu   sync.Mutex
	self model.NodeID
	n    int
	r    map[model.Version][]int64 // r[v][q]: requests sent self -> q
	c    map[model.Version][]int64 // c[v][o]: completions at self of subtxns invoked from o
}

// NewTable returns a counter table for a cluster of n nodes, owned by
// node self. All counters start at zero for version 0 (and any version
// is lazily materialized on first touch).
func NewTable(self model.NodeID, n int) *Table {
	return &Table{
		self: self,
		n:    n,
		r:    make(map[model.Version][]int64),
		c:    make(map[model.Version][]int64),
	}
}

// EnsureVersion allocates zeroed counter rows for version v if absent —
// the "allocate and initialize to zero all the request and completion
// counters for the new version" step of Sections 4.1 and 4.3.
func (t *Table) EnsureVersion(v model.Version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
}

func (t *Table) ensureLocked(v model.Version) {
	if _, ok := t.r[v]; !ok {
		t.r[v] = make([]int64, t.n)
	}
	if _, ok := t.c[v]; !ok {
		t.c[v] = make([]int64, t.n)
	}
}

// IncR increments R[v][self][to]: a subtransaction request against
// version v is about to be sent from this node to node to. Callers must
// invoke IncR strictly before handing the message to the transport —
// the quiescence argument depends on it.
func (t *Table) IncR(v model.Version, to model.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	t.r[v][to]++
}

// IncC increments C[v][from][self]: a subtransaction of version v
// invoked from node from has terminated (committed or aborted) at this
// node. Callers invoke IncC atomically with local termination.
func (t *Table) IncC(v model.Version, from model.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	t.c[v][from]++
}

// SnapshotR returns a copy of this node's R row for version v
// (requests sent to each destination).
func (t *Table) SnapshotR(v model.Version) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	out := make([]int64, t.n)
	copy(out, t.r[v])
	return out
}

// SnapshotC returns a copy of this node's C row for version v
// (completions here, indexed by invoking node).
func (t *Table) SnapshotC(v model.Version) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	out := make([]int64, t.n)
	copy(out, t.c[v])
	return out
}

// R returns the current value of R[v][self][to] (test/trace accessor).
func (t *Table) R(v model.Version, to model.NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	return t.r[v][to]
}

// C returns the current value of C[v][from][self] (test/trace accessor).
func (t *Table) C(v model.Version, from model.NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureLocked(v)
	return t.c[v][from]
}

// DropBelow discards counter rows for all versions strictly below v —
// the counter garbage collection of advancement Phase 4.
func (t *Table) DropBelow(v model.Version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for ver := range t.r {
		if ver < v {
			delete(t.r, ver)
		}
	}
	for ver := range t.c {
		if ver < v {
			delete(t.c, ver)
		}
	}
}

// Versions returns the versions that currently have counter rows,
// ascending.
func (t *Table) Versions() []model.Version {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]model.Version, 0, len(t.r))
	for v := range t.r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot is one sweep of the whole cluster's counters for a single
// version: R[p][q] as reported by each node p, and C[p][q] as reported
// by each node q (stored here already transposed to [p][q] so the
// quiescence condition is a plain element-wise comparison).
type Snapshot struct {
	N int
	R [][]int64 // R[p][q]
	C [][]int64 // C[p][q]
}

// NewSnapshot allocates an n×n snapshot.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{N: n, R: make([][]int64, n), C: make([][]int64, n)}
	for i := 0; i < n; i++ {
		s.R[i] = make([]int64, n)
		s.C[i] = make([]int64, n)
	}
	return s
}

// SetFromNode installs node p's reported rows into the snapshot: rRow
// is p's R row (requests p→q, indexed by q) and cRow is p's C row
// (completions at p invoked from o, indexed by o — transposed into
// C[o][p] here).
func (s *Snapshot) SetFromNode(p model.NodeID, rRow, cRow []int64) {
	copy(s.R[p], rRow)
	for o := 0; o < s.N; o++ {
		s.C[o][p] = cRow[o]
	}
}

// Balanced reports whether R[p][q] == C[p][q] for all pairs.
func (s *Snapshot) Balanced() bool {
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != s.C[p][q] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two snapshots carry identical counters.
func (s *Snapshot) Equal(o *Snapshot) bool {
	if o == nil || s.N != o.N {
		return false
	}
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != o.R[p][q] || s.C[p][q] != o.C[p][q] {
				return false
			}
		}
	}
	return true
}

// String renders the snapshot for traces and failures.
func (s *Snapshot) String() string {
	out := ""
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			if s.R[p][q] != 0 || s.C[p][q] != 0 {
				out += fmt.Sprintf("R[%v->%v]=%d C=%d ", model.NodeID(p), model.NodeID(q), s.R[p][q], s.C[p][q])
			}
		}
	}
	if out == "" {
		return "(all zero)"
	}
	return out
}

// Detector decides quiescence of one version from a stream of
// asynchronous snapshots using the double-collect rule: declare
// quiescence after two consecutive snapshots that are balanced and
// identical to each other. Feed it snapshots in the order collected;
// Quiescent latches true once satisfied (stable property).
type Detector struct {
	prev      *Snapshot
	quiescent bool
	sweeps    int
}

// Offer feeds the next collected snapshot and returns the current
// verdict.
func (d *Detector) Offer(s *Snapshot) bool {
	d.sweeps++
	if d.quiescent {
		return true
	}
	if s.Balanced() && s.Equal(d.prev) {
		d.quiescent = true
	}
	d.prev = s
	return d.quiescent
}

// Quiescent returns the latched verdict.
func (d *Detector) Quiescent() bool { return d.quiescent }

// Sweeps returns how many snapshots have been offered — the detection
// cost metric of experiment E7.
func (d *Detector) Sweeps() int { return d.sweeps }
