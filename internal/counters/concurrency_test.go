package counters

import (
	"sync"
	"testing"

	"repro/internal/model"
)

// TestConcurrentIncExactTotals checks that the lock-free table loses no
// increments: many goroutines hammer IncR/IncC on shared rows while
// snapshot readers sweep concurrently; after everyone joins, the totals
// must be exact.
func TestConcurrentIncExactTotals(t *testing.T) {
	const (
		n          = 4
		goroutines = 8
		iters      = 5000
	)
	tb := NewTable(0, n)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				to := model.NodeID((g + i) % n)
				tb.IncR(1, to)
				tb.IncC(1, to)
				if i%512 == 0 {
					// Sloppy sweeps racing the increments must never
					// observe a value above the true running total.
					r := tb.SnapshotR(1)
					for q, v := range r {
						if v > int64(goroutines*iters) {
							t.Errorf("SnapshotR[%d] = %d exceeds possible total", q, v)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var sumR, sumC int64
	for _, v := range tb.SnapshotR(1) {
		sumR += v
	}
	for _, v := range tb.SnapshotC(1) {
		sumC += v
	}
	want := int64(goroutines * iters)
	if sumR != want || sumC != want {
		t.Errorf("totals R=%d C=%d, want %d each (lost increments)", sumR, sumC, want)
	}
}

// TestConcurrentVersionChurn races lazy version materialization (the
// copy-on-write index publish) against increments and DropBelow, the
// way advancement churns versions while subtransactions run. Increments
// on surviving versions must all be preserved.
func TestConcurrentVersionChurn(t *testing.T) {
	const goroutines = 8
	tb := NewTable(0, 2)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := model.Version(10 + i%5) // churning set of versions
				tb.IncR(v, 0)
				tb.EnsureVersion(v + 100) // pure index churn
				if i%100 == 0 {
					tb.Versions()
					tb.SnapshotC(v)
				}
			}
		}(g)
	}
	// A stable version no churn ever drops: its counts must be exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tb.IncR(1, 1)
			tb.IncC(1, 0)
		}
	}()
	wg.Wait()
	if got := tb.R(1, 1); got != 2000 {
		t.Errorf("R(1,1) = %d, want 2000", got)
	}
	if got := tb.C(1, 0); got != 2000 {
		t.Errorf("C(1,0) = %d, want 2000", got)
	}
	for _, v := range []model.Version{10, 11, 12, 13, 14} {
		var sum int64
		for _, x := range tb.SnapshotR(v) {
			sum += x
		}
		if sum != int64(goroutines*400) { // each goroutine hits each of 5 versions 400×
			t.Errorf("R total for v%d = %d, want %d", v, sum, goroutines*400)
		}
	}
}

// TestConcurrentDropBelow races DropBelow against increments on
// versions at or above the drop point; those must never be lost (the
// protocol only drops versions already proven quiescent, so increments
// below the drop point are out of scope).
func TestConcurrentDropBelow(t *testing.T) {
	tb := NewTable(0, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tb.DropBelow(5) // 7 is always safe
			}
		}
	}()
	const iters = 20000
	for i := 0; i < iters; i++ {
		tb.IncR(7, 1)
	}
	close(stop)
	wg.Wait()
	if got := tb.R(7, 1); got != iters {
		t.Errorf("R(7,1) = %d after DropBelow churn, want %d", got, iters)
	}
	vs := tb.Versions()
	for _, v := range vs {
		if v < 5 {
			t.Errorf("version %d survived DropBelow(5): %v", v, vs)
		}
	}
}
