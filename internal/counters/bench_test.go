package counters

import (
	"testing"

	"repro/internal/model"
)

// BenchmarkCountersIncParallel hammers IncR+IncC from all procs — the
// counter bumps every subtransaction performs (request before send,
// completion at termination). Section 4 models these as individual
// atomic writes; the acceptance gate for the atomic table is ≥2× over
// the mutex implementation at GOMAXPROCS ≥ 4.
func BenchmarkCountersIncParallel(b *testing.B) {
	tb := NewTable(0, 4)
	tb.EnsureVersion(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			to := model.NodeID(i & 3)
			tb.IncR(1, to)
			tb.IncC(1, to)
			i++
		}
	})
}

// BenchmarkCountersIncNewVersion measures the uncommon slow path: the
// first touch of a fresh version (row allocation / index publication).
// DropBelow keeps at most three versions live, mirroring the protocol
// (advancement Phase 4 discards rows as versions retire) — without it
// the copy-on-write index would grow with b.N and the benchmark would
// measure an index size the system never reaches.
func BenchmarkCountersIncNewVersion(b *testing.B) {
	tb := NewTable(0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := model.Version(i)
		tb.IncR(v, 1)
		if v >= 3 {
			tb.DropBelow(v - 2)
		}
	}
}

// BenchmarkCountersSnapshotParallel measures the coordinator's sweep
// reads racing user-path increments.
func BenchmarkCountersSnapshotParallel(b *testing.B) {
	tb := NewTable(0, 4)
	tb.EnsureVersion(1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i&15 == 0 {
				tb.SnapshotR(1)
				tb.SnapshotC(1)
			} else {
				tb.IncR(1, model.NodeID(i&3))
			}
			i++
		}
	})
}
