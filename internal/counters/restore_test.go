package counters

import (
	"sync"
	"testing"

	"repro/internal/model"
)

// dump collects every version's R and C rows — the exact material a
// checkpoint persists.
func dump(tb *Table) (vers []model.Version, rs, cs [][]int64) {
	vers = tb.Versions()
	for _, v := range vers {
		rs = append(rs, tb.SnapshotR(v))
		cs = append(cs, tb.SnapshotC(v))
	}
	return
}

// restore rebuilds a fresh table from a dump, the way crash recovery
// does.
func restore(self model.NodeID, n int, vers []model.Version, rs, cs [][]int64) *Table {
	tb := NewTable(self, n)
	for i, v := range vers {
		tb.RestoreRow(v, rs[i], cs[i])
	}
	return tb
}

// requireIdentical asserts two tables agree on every version's every
// counter cell — the bit-equivalence a restarted node needs for
// Theorem 4.1's quiescence detection to stay sound.
func requireIdentical(t *testing.T, live, restored *Table) {
	t.Helper()
	lv, rv := live.Versions(), restored.Versions()
	if len(lv) != len(rv) {
		t.Fatalf("version sets differ: live %v, restored %v", lv, rv)
	}
	for i := range lv {
		if lv[i] != rv[i] {
			t.Fatalf("version sets differ: live %v, restored %v", lv, rv)
		}
	}
	for _, v := range lv {
		lr, rr := live.SnapshotR(v), restored.SnapshotR(v)
		lc, rc := live.SnapshotC(v), restored.SnapshotC(v)
		for q := range lr {
			if lr[q] != rr[q] {
				t.Fatalf("R[%d][self][%d]: live %d, restored %d", v, q, lr[q], rr[q])
			}
			if lc[q] != rc[q] {
				t.Fatalf("C[%d][%d][self]: live %d, restored %d", v, q, lc[q], rc[q])
			}
		}
	}
}

// TestRestoreRowEquivalence drives a concurrent increment workload on a
// live table (under -race this also exercises RestoreRow's atomic
// stores against snapshot loads), quiesces, snapshots, restores into a
// fresh table, and requires bit-identical counters — then replays an
// identical post-restore workload on both tables and requires they
// still agree, so a restored table is indistinguishable going forward.
func TestRestoreRowEquivalence(t *testing.T) {
	const (
		n          = 4
		goroutines = 8
		iters      = 4000
	)
	live := NewTable(1, n)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := model.Version(1 + (g+i)%3) // three live versions, as under 3V
				to := model.NodeID((g * 7) % n)
				live.IncR(v, to)
				if i%3 == 0 {
					live.IncC(v, model.NodeID(i%n))
				}
			}
		}(g)
	}
	wg.Wait()

	vers, rs, cs := dump(live)
	restored := restore(1, n, vers, rs, cs)
	requireIdentical(t, live, restored)

	// The restored table must behave identically under further load.
	apply := func(tb *Table) {
		for i := 0; i < 1000; i++ {
			tb.IncR(3, model.NodeID(i%n))
			tb.IncC(2, model.NodeID((i+1)%n))
		}
		tb.DropBelow(2)
	}
	apply(live)
	apply(restored)
	requireIdentical(t, live, restored)
}

// TestRestoreRowSnapshotConsistency restores from a snapshot taken
// *while* increments are still in flight. The restored table cannot
// equal the still-moving live table, but it must exactly equal the
// observation itself: restore must neither lose nor invent counts.
func TestRestoreRowSnapshotConsistency(t *testing.T) {
	const n = 3
	live := NewTable(0, n)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				live.IncR(1, model.NodeID(i%n))
				live.IncC(1, model.NodeID(i%n))
			}
		}
	}()

	for round := 0; round < 50; round++ {
		r := live.SnapshotR(1)
		c := live.SnapshotC(1)
		restored := NewTable(0, n)
		restored.RestoreRow(1, r, c)
		gotR, gotC := restored.SnapshotR(1), restored.SnapshotC(1)
		for q := 0; q < n; q++ {
			if gotR[q] != r[q] || gotC[q] != c[q] {
				t.Fatalf("round %d: restored (%v,%v) != observed (%v,%v)", round, gotR, gotC, r, c)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRestoreRowShortRows tolerates rows from a smaller cluster (or a
// truncated checkpoint field): missing tail cells stay zero.
func TestRestoreRowShortRows(t *testing.T) {
	tb := NewTable(0, 4)
	tb.RestoreRow(2, []int64{5, 6}, []int64{7})
	wantR := []int64{5, 6, 0, 0}
	wantC := []int64{7, 0, 0, 0}
	gotR, gotC := tb.SnapshotR(2), tb.SnapshotC(2)
	for i := 0; i < 4; i++ {
		if gotR[i] != wantR[i] || gotC[i] != wantC[i] {
			t.Fatalf("short restore: R=%v C=%v, want R=%v C=%v", gotR, gotC, wantR, wantC)
		}
	}
}
