package counters

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestTableIncrements(t *testing.T) {
	tb := NewTable(0, 3)
	tb.IncR(1, 1)
	tb.IncR(1, 1)
	tb.IncR(1, 0)
	tb.IncC(1, 2)
	if got := tb.R(1, 1); got != 2 {
		t.Errorf("R(1,q) = %d, want 2", got)
	}
	if got := tb.R(1, 0); got != 1 {
		t.Errorf("R(1,p) = %d, want 1", got)
	}
	if got := tb.C(1, 2); got != 1 {
		t.Errorf("C(1,s) = %d, want 1", got)
	}
	if got := tb.C(1, 0); got != 0 {
		t.Errorf("C(1,p) = %d, want 0", got)
	}
}

func TestSnapshotRows(t *testing.T) {
	tb := NewTable(1, 3)
	tb.IncR(2, 0)
	tb.IncC(2, 2)
	r := tb.SnapshotR(2)
	c := tb.SnapshotC(2)
	if r[0] != 1 || r[1] != 0 || r[2] != 0 {
		t.Errorf("SnapshotR = %v", r)
	}
	if c[2] != 1 || c[0] != 0 {
		t.Errorf("SnapshotC = %v", c)
	}
	// Snapshots are copies.
	r[0] = 99
	if tb.R(2, 0) != 1 {
		t.Error("mutating snapshot changed table")
	}
}

func TestDropBelowAndVersions(t *testing.T) {
	tb := NewTable(0, 2)
	tb.EnsureVersion(0)
	tb.EnsureVersion(1)
	tb.EnsureVersion(2)
	vs := tb.Versions()
	if len(vs) != 3 || vs[0] != 0 || vs[2] != 2 {
		t.Fatalf("Versions = %v", vs)
	}
	tb.DropBelow(2)
	vs = tb.Versions()
	if len(vs) != 1 || vs[0] != 2 {
		t.Errorf("Versions after DropBelow = %v", vs)
	}
}

func TestSnapshotBalanced(t *testing.T) {
	s := NewSnapshot(2)
	if !s.Balanced() {
		t.Error("zero snapshot not balanced")
	}
	s.R[0][1] = 1
	if s.Balanced() {
		t.Error("unbalanced snapshot reported balanced")
	}
	s.C[0][1] = 1
	if !s.Balanced() {
		t.Error("balanced snapshot reported unbalanced")
	}
}

func TestSnapshotSetFromNodeTransposesC(t *testing.T) {
	// Node q=1 reports it completed 3 subtxns invoked from p=0; the
	// snapshot must store that as C[0][1].
	s := NewSnapshot(2)
	s.SetFromNode(1, []int64{0, 0}, []int64{3, 0})
	if s.C[0][1] != 3 {
		t.Errorf("C[0][1] = %d, want 3 (transposition wrong)", s.C[0][1])
	}
	s.SetFromNode(0, []int64{0, 3}, []int64{0, 0})
	if s.R[0][1] != 3 {
		t.Errorf("R[0][1] = %d, want 3", s.R[0][1])
	}
	if !s.Balanced() {
		t.Error("matched R/C not balanced after SetFromNode")
	}
}

func TestSnapshotEqualAndString(t *testing.T) {
	a, b := NewSnapshot(2), NewSnapshot(2)
	if !a.Equal(b) {
		t.Error("zero snapshots unequal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
	if a.Equal(NewSnapshot(3)) {
		t.Error("snapshots of different size equal")
	}
	b.R[1][0] = 5
	if a.Equal(b) {
		t.Error("different snapshots equal")
	}
	if a.String() != "(all zero)" {
		t.Errorf("zero String = %q", a.String())
	}
	if b.String() == "(all zero)" {
		t.Error("nonzero snapshot rendered as all zero")
	}
}

func TestDetectorNeedsDoubleCollect(t *testing.T) {
	d := &Detector{}
	s1 := NewSnapshot(2) // balanced (all zero)
	if d.Offer(s1) {
		t.Fatal("detector fired after a single balanced snapshot")
	}
	s2 := NewSnapshot(2)
	if !d.Offer(s2) {
		t.Fatal("detector did not fire after two identical balanced snapshots")
	}
	if !d.Quiescent() {
		t.Error("Quiescent() = false after firing")
	}
	if d.Sweeps() != 2 {
		t.Errorf("Sweeps = %d, want 2", d.Sweeps())
	}
	// Latches: later garbage does not un-fire it.
	bad := NewSnapshot(2)
	bad.R[0][0] = 7
	if !d.Offer(bad) {
		t.Error("latched detector un-fired")
	}
}

func TestDetectorRejectsChangingCounters(t *testing.T) {
	d := &Detector{}
	s1 := NewSnapshot(2)
	s1.R[0][1], s1.C[0][1] = 1, 1 // balanced
	d.Offer(s1)
	s2 := NewSnapshot(2)
	s2.R[0][1], s2.C[0][1] = 2, 2 // balanced but different → activity between sweeps
	if d.Offer(s2) {
		t.Fatal("detector fired on two balanced but different snapshots")
	}
	s3 := NewSnapshot(2)
	s3.R[0][1], s3.C[0][1] = 2, 2
	if !d.Offer(s3) {
		t.Fatal("detector did not fire on repeated identical balanced snapshot")
	}
}

// TestPropertyDetectorNeverFiresEarly simulates a random execution
// obeying the protocol's structure: before "closure" (the moment every
// node has advanced its update version) new roots may join version 1;
// after closure, new version-1 requests originate only from still
// in-flight version-1 subtransactions (a parent spawning children
// before it terminates). Under that structure "all version-1 work
// done" is a stable property, and the detector — fed sweeps taken at
// arbitrary interleavings — must never fire while work is outstanding,
// and must fire once everything drains.
func TestPropertyDetectorNeverFiresEarly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		tables := make([]*Table, n)
		for i := range tables {
			tables[i] = NewTable(model.NodeID(i), n)
		}
		type msg struct{ from, to model.NodeID }
		var inflight []msg
		send := func(from, to model.NodeID) {
			tables[from].IncR(1, to) // R is bumped strictly before the send
			inflight = append(inflight, msg{from, to})
		}
		d := &Detector{}
		collect := func() *Snapshot {
			s := NewSnapshot(n)
			for p := 0; p < n; p++ {
				s.SetFromNode(model.NodeID(p), tables[p].SnapshotR(1), tables[p].SnapshotC(1))
			}
			return s
		}
		const closure = 80 // after this step no new roots join version 1
		for step := 0; step < 240; step++ {
			switch rng.Intn(5) {
			case 0, 1: // a new root arrives (only before closure)
				if step < closure {
					p := model.NodeID(rng.Intn(n))
					send(p, p) // root bumps R[v][p][p]
				}
			case 2, 3: // an in-flight subtransaction executes: it may
				// spawn children (bumping R before each send), then
				// terminates (bumping C).
				if len(inflight) > 0 {
					i := rng.Intn(len(inflight))
					m := inflight[i]
					inflight = append(inflight[:i], inflight[i+1:]...)
					for k := rng.Intn(3); k > 0 && step < 200; k-- {
						send(m.to, model.NodeID(rng.Intn(n)))
					}
					tables[m.to].IncC(1, m.from)
				}
			case 4: // coordinator sweep
				if step < closure {
					continue // coordinator only polls after closure
				}
				if d.Offer(collect()) && len(inflight) > 0 {
					return false // fired early: unsound
				}
			}
		}
		// Drain whatever is left (no further spawning) and confirm the
		// detector eventually fires.
		for _, m := range inflight {
			tables[m.to].IncC(1, m.from)
		}
		inflight = nil
		d.Offer(collect())
		return d.Offer(collect())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentTableAccess(t *testing.T) {
	tb := NewTable(0, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tb.IncR(model.Version(i%3), model.NodeID(i%4))
				tb.IncC(model.Version(i%3), model.NodeID(g))
				tb.SnapshotR(model.Version(i % 3))
			}
		}(g)
	}
	wg.Wait()
	// 4 goroutines × 1000 increments spread over 3 versions and 4 destinations.
	total := int64(0)
	for _, v := range tb.Versions() {
		for _, x := range tb.SnapshotR(v) {
			total += x
		}
	}
	if total != 4000 {
		t.Errorf("total R increments = %d, want 4000", total)
	}
}
