// Package verify implements the correctness auditors of the
// reproduction: the atomic-visibility check that formalizes the paper's
// motivating anomaly (a customer seeing only part of the charges of a
// single visit, Section 1), the serializability check of Theorem 4.1,
// and the structural invariant checks of Section 4.4.
//
// The auditors work on tuple logs: every update transaction that should
// be atomic writes one Tuple per data item it touches, with Part set to
// 1..Total and Total set to the number of items. A read transaction
// that covers the same item set then either observes all Total parts of
// a transaction or none of them — anything in between is exactly the
// anomaly the 3V algorithm eliminates and the No-Coordination baseline
// exhibits.
package verify

import (
	"fmt"
	"math/bits"

	"repro/internal/model"
)

// GroupRead is one audited read observation: a read-only transaction
// that covered a whole item group, the version it was assigned (zero
// for unversioned baselines), and its per-item results.
type GroupRead struct {
	Txn         model.TxnID
	ReadVersion model.Version
	Results     []model.ReadResult
}

// Anomaly is one detected consistency violation.
type Anomaly struct {
	Read   model.TxnID
	Writer model.TxnID
	Kind   string
	Detail string
}

// String implements fmt.Stringer.
func (a Anomaly) String() string {
	return fmt.Sprintf("%s: read %v vs writer %v: %s", a.Kind, a.Read, a.Writer, a.Detail)
}

// UpdateMeta describes one committed update transaction for the
// serializability audit.
type UpdateMeta struct {
	// Version the transaction executed in (its V(T)).
	Version model.Version
	// Parts is the number of tuples the transaction wrote (its Total).
	Parts int
	// Compensated marks transactions that were aborted and compensated:
	// no part of them may ever be visible.
	Compensated bool
}

// partCount tallies how many distinct parts of one writer a read saw.
// Parts 1..64 live in a bitmask (transactions rarely write more parts
// than that); larger part numbers spill into a map. The audit runs per
// read on the measurement path, so it avoids a map allocation per
// writer in the common case.
type partCount struct {
	mask  uint64
	spill map[int]bool
	total int
	ver   model.Version
}

func (pc *partCount) add(part int) {
	if part >= 1 && part <= 64 {
		pc.mask |= 1 << (part - 1)
		return
	}
	if pc.spill == nil {
		pc.spill = make(map[int]bool)
	}
	pc.spill[part] = true
}

func (pc *partCount) distinct() int {
	return bits.OnesCount64(pc.mask) + len(pc.spill)
}

// collect gathers, per writer transaction, the parts visible across all
// of a read's results (normalizing compensation tombstones first).
func collect(g GroupRead) map[model.TxnID]*partCount {
	byWriter := make(map[model.TxnID]*partCount)
	for _, r := range g.Results {
		if r.Record == nil {
			continue
		}
		for _, t := range model.NormalizeLog(r.Record.Log) {
			pc := byWriter[t.Txn]
			if pc == nil {
				pc = &partCount{}
				byWriter[t.Txn] = pc
			}
			pc.add(t.Part)
			if t.Total > pc.total {
				pc.total = t.Total
			}
			if t.TxnVersion > pc.ver {
				pc.ver = t.TxnVersion
			}
		}
	}
	return byWriter
}

// AuditAtomicVisibility checks each read in isolation: every writer
// whose tuples appear must appear with ALL its parts. This audit needs
// no knowledge of the workload beyond the Part/Total convention, so it
// applies to baselines without versioning too.
func AuditAtomicVisibility(reads []GroupRead) []Anomaly {
	var out []Anomaly
	for _, g := range reads {
		for writer, pc := range collect(g) {
			if pc.distinct() < pc.total {
				out = append(out, Anomaly{
					Read:   g.Txn,
					Writer: writer,
					Kind:   "partial-visibility",
					Detail: fmt.Sprintf("saw %d of %d parts", pc.distinct(), pc.total),
				})
			}
		}
	}
	return out
}

// AuditSerializability checks Theorem 4.1 against ground truth: a read
// assigned version v must observe exactly the update transactions with
// version ≤ v — all parts of each such transaction (unless it was
// compensated, in which case none), and no part of any transaction with
// a greater version. updates maps every committed update transaction to
// its metadata; reads must cover the full item group the updates wrote.
func AuditSerializability(reads []GroupRead, updates map[model.TxnID]UpdateMeta) []Anomaly {
	var out []Anomaly
	for _, g := range reads {
		seen := collect(g)
		for writer, meta := range updates {
			pc := seen[writer]
			visible := 0
			if pc != nil {
				visible = pc.distinct()
			}
			switch {
			case meta.Compensated:
				if visible != 0 {
					out = append(out, Anomaly{
						Read: g.Txn, Writer: writer, Kind: "compensated-visible",
						Detail: fmt.Sprintf("saw %d parts of a compensated transaction", visible),
					})
				}
			case meta.Version <= g.ReadVersion:
				if visible != meta.Parts {
					out = append(out, Anomaly{
						Read: g.Txn, Writer: writer, Kind: "missing-committed",
						Detail: fmt.Sprintf("version %d ≤ read version %d but saw %d of %d parts", meta.Version, g.ReadVersion, visible, meta.Parts),
					})
				}
			default: // meta.Version > g.ReadVersion
				if visible != 0 {
					out = append(out, Anomaly{
						Read: g.Txn, Writer: writer, Kind: "future-visible",
						Detail: fmt.Sprintf("version %d > read version %d but saw %d parts", meta.Version, g.ReadVersion, visible),
					})
				}
			}
		}
		// Writers that appear in the read but not in ground truth are
		// foreign tuples — flag them.
		for writer := range seen {
			if _, ok := updates[writer]; !ok {
				out = append(out, Anomaly{
					Read: g.Txn, Writer: writer, Kind: "unknown-writer",
					Detail: "tuples from a transaction absent from ground truth",
				})
			}
		}
	}
	return out
}

// StructuralReport summarizes the Section 4.4 structural checks of a
// finished run.
type StructuralReport struct {
	MaxLiveVersions int
	Violations      []string
}

// OK reports whether the structural invariants held: at most three live
// versions anywhere, ever, and no node-recorded violations.
func (r StructuralReport) OK() bool {
	return r.MaxLiveVersions <= 3 && len(r.Violations) == 0
}

// String implements fmt.Stringer.
func (r StructuralReport) String() string {
	if r.OK() {
		return fmt.Sprintf("structural OK (max live versions %d)", r.MaxLiveVersions)
	}
	return fmt.Sprintf("structural FAIL: max live versions %d, violations %v", r.MaxLiveVersions, r.Violations)
}

// structuralSource is the slice of cluster behaviour the checker needs;
// core.Cluster satisfies it.
type structuralSource interface {
	MaxLiveVersionsEver() int
	Violations() []string
}

// CheckStructural gathers the structural report from a cluster.
func CheckStructural(c structuralSource) StructuralReport {
	return StructuralReport{
		MaxLiveVersions: c.MaxLiveVersionsEver(),
		Violations:      c.Violations(),
	}
}

// PartitionReport summarizes the per-partition invariant checks of a
// partitioned run. Each partition runs its own independent epoch, so
// the Section 4.4 window invariant vr < vu ≤ vr+2 must hold for every
// partition separately, and the convergence audit (itself per-partition
// when the cluster is partitioned) must be clean.
type PartitionReport struct {
	Partitions int
	// Pairs holds each partition's (vr, vu), indexed by partition id.
	Pairs      [][2]model.Version
	Violations []string
}

// OK reports whether every per-partition invariant held.
func (r PartitionReport) OK() bool { return len(r.Violations) == 0 }

// String implements fmt.Stringer.
func (r PartitionReport) String() string {
	if r.OK() {
		return fmt.Sprintf("partitions OK (%d partitions)", r.Partitions)
	}
	return fmt.Sprintf("partitions FAIL: %v", r.Violations)
}

// partitionSource is the slice of partitioned-cluster behaviour the
// checker needs; core.Cluster satisfies it.
type partitionSource interface {
	Partitions() int
	PartitionPairs() [][2]model.Version
	ConvergenceErrors() []string
}

// CheckPartitions audits a partitioned cluster: the window invariant
// per partition, one pair per configured partition, and the (already
// partition-aware) balance/convergence audit. It also applies to P=1
// clusters, where it degenerates to the global checks.
func CheckPartitions(c partitionSource) PartitionReport {
	r := PartitionReport{Partitions: c.Partitions(), Pairs: c.PartitionPairs()}
	if len(r.Pairs) != r.Partitions {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"cluster reports %d version pairs for %d partitions", len(r.Pairs), r.Partitions))
	}
	for p, pair := range r.Pairs {
		vr, vu := pair[0], pair[1]
		if !(vr < vu && vu <= vr+2) {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"partition %d: window invariant vr < vu ≤ vr+2 violated: vr=%d vu=%d", p, vr, vu))
		}
	}
	r.Violations = append(r.Violations, c.ConvergenceErrors()...)
	return r
}
