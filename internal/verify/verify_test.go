package verify

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// mkRead builds a GroupRead whose two items carry the given tuples.
func mkRead(readVer model.Version, itemA, itemB []model.Tuple) GroupRead {
	ra := model.NewRecord()
	ra.Log = itemA
	rb := model.NewRecord()
	rb.Log = itemB
	return GroupRead{
		Txn:         model.MakeTxnID(2, 99),
		ReadVersion: readVer,
		Results: []model.ReadResult{
			{Node: 0, Key: "A", Record: ra},
			{Node: 1, Key: "D", Record: rb},
		},
	}
}

func tup(txn model.TxnID, part, total int, ver model.Version) model.Tuple {
	return model.Tuple{Txn: txn, Part: part, Total: total, Attr: "chg", Amount: 1, TxnVersion: ver}
}

func TestAtomicVisibilityCleanRead(t *testing.T) {
	w := model.MakeTxnID(0, 1)
	g := mkRead(1,
		[]model.Tuple{tup(w, 1, 2, 1)},
		[]model.Tuple{tup(w, 2, 2, 1)},
	)
	if got := AuditAtomicVisibility([]GroupRead{g}); len(got) != 0 {
		t.Errorf("clean read flagged: %v", got)
	}
}

func TestAtomicVisibilityPartialRead(t *testing.T) {
	w := model.MakeTxnID(0, 1)
	g := mkRead(1,
		[]model.Tuple{tup(w, 1, 2, 1)},
		nil, // second part missing: the hospital anomaly
	)
	got := AuditAtomicVisibility([]GroupRead{g})
	if len(got) != 1 || got[0].Kind != "partial-visibility" {
		t.Fatalf("anomalies = %v, want one partial-visibility", got)
	}
	if !strings.Contains(got[0].String(), "1 of 2") {
		t.Errorf("detail = %q", got[0].String())
	}
}

func TestAtomicVisibilityNormalizesTombstones(t *testing.T) {
	// A compensated append (tombstone + append pair) must not count as
	// a visible part.
	w := model.MakeTxnID(0, 1)
	tb := tup(w, 1, 2, 1)
	tb.Total = -tb.Total // tombstone
	g := mkRead(1,
		[]model.Tuple{tup(w, 1, 2, 1), tb},
		nil,
	)
	if got := AuditAtomicVisibility([]GroupRead{g}); len(got) != 0 {
		t.Errorf("annihilated pair flagged: %v", got)
	}
}

func TestAtomicVisibilityNilRecord(t *testing.T) {
	g := GroupRead{Results: []model.ReadResult{{Key: "A", Record: nil}}}
	if got := AuditAtomicVisibility([]GroupRead{g}); got != nil {
		t.Errorf("nil record flagged: %v", got)
	}
}

func TestSerializabilityHappyPath(t *testing.T) {
	w1 := model.MakeTxnID(0, 1) // version 1, visible to read@1
	w2 := model.MakeTxnID(0, 2) // version 2, not yet visible
	updates := map[model.TxnID]UpdateMeta{
		w1: {Version: 1, Parts: 2},
		w2: {Version: 2, Parts: 2},
	}
	g := mkRead(1,
		[]model.Tuple{tup(w1, 1, 2, 1)},
		[]model.Tuple{tup(w1, 2, 2, 1)},
	)
	if got := AuditSerializability([]GroupRead{g}, updates); len(got) != 0 {
		t.Errorf("correct read flagged: %v", got)
	}
}

func TestSerializabilityCatchesMissingCommitted(t *testing.T) {
	w1 := model.MakeTxnID(0, 1)
	updates := map[model.TxnID]UpdateMeta{w1: {Version: 1, Parts: 2}}
	g := mkRead(1, nil, nil) // read@1 sees nothing of a version-1 txn
	got := AuditSerializability([]GroupRead{g}, updates)
	if len(got) != 1 || got[0].Kind != "missing-committed" {
		t.Fatalf("anomalies = %v", got)
	}
}

func TestSerializabilityCatchesFutureVisible(t *testing.T) {
	w2 := model.MakeTxnID(0, 2)
	updates := map[model.TxnID]UpdateMeta{w2: {Version: 2, Parts: 2}}
	g := mkRead(1,
		[]model.Tuple{tup(w2, 1, 2, 2)},
		[]model.Tuple{tup(w2, 2, 2, 2)},
	)
	got := AuditSerializability([]GroupRead{g}, updates)
	if len(got) != 1 || got[0].Kind != "future-visible" {
		t.Fatalf("anomalies = %v", got)
	}
}

func TestSerializabilityCatchesCompensatedVisible(t *testing.T) {
	w := model.MakeTxnID(0, 3)
	updates := map[model.TxnID]UpdateMeta{w: {Version: 1, Parts: 2, Compensated: true}}
	g := mkRead(1, []model.Tuple{tup(w, 1, 2, 1)}, nil)
	got := AuditSerializability([]GroupRead{g}, updates)
	if len(got) != 1 || got[0].Kind != "compensated-visible" {
		t.Fatalf("anomalies = %v", got)
	}
	// Fully compensated (invisible) is fine.
	g2 := mkRead(1, nil, nil)
	if got := AuditSerializability([]GroupRead{g2}, updates); len(got) != 0 {
		t.Errorf("invisible compensated txn flagged: %v", got)
	}
}

func TestSerializabilityCatchesUnknownWriter(t *testing.T) {
	ghost := model.MakeTxnID(1, 77)
	g := mkRead(1, []model.Tuple{tup(ghost, 1, 1, 1)}, nil)
	got := AuditSerializability([]GroupRead{g}, map[model.TxnID]UpdateMeta{})
	if len(got) != 1 || got[0].Kind != "unknown-writer" {
		t.Fatalf("anomalies = %v", got)
	}
}

type fakeCluster struct {
	max  int
	vios []string
}

func (f fakeCluster) MaxLiveVersionsEver() int { return f.max }
func (f fakeCluster) Violations() []string     { return f.vios }

func TestStructuralReport(t *testing.T) {
	ok := CheckStructural(fakeCluster{max: 3})
	if !ok.OK() {
		t.Errorf("report not OK: %v", ok)
	}
	if !strings.Contains(ok.String(), "OK") {
		t.Errorf("String = %q", ok.String())
	}
	bad := CheckStructural(fakeCluster{max: 4})
	if bad.OK() {
		t.Error("4 live versions passed")
	}
	bad2 := CheckStructural(fakeCluster{max: 2, vios: []string{"x"}})
	if bad2.OK() {
		t.Error("violations passed")
	}
	if !strings.Contains(bad2.String(), "FAIL") {
		t.Errorf("String = %q", bad2.String())
	}
}

type fakePartitioned struct {
	nparts int
	pairs  [][2]model.Version
	errs   []string
}

func (f fakePartitioned) Partitions() int                    { return f.nparts }
func (f fakePartitioned) PartitionPairs() [][2]model.Version { return f.pairs }
func (f fakePartitioned) ConvergenceErrors() []string        { return f.errs }

func TestPartitionReport(t *testing.T) {
	ok := CheckPartitions(fakePartitioned{
		nparts: 2,
		pairs:  [][2]model.Version{{3, 4}, {0, 1}},
	})
	if !ok.OK() {
		t.Errorf("independent healthy partitions failed: %v", ok)
	}
	if !strings.Contains(ok.String(), "OK") {
		t.Errorf("String = %q", ok.String())
	}

	window := CheckPartitions(fakePartitioned{
		nparts: 2,
		pairs:  [][2]model.Version{{3, 4}, {1, 4}},
	})
	if window.OK() || !strings.Contains(window.String(), "partition 1") {
		t.Errorf("vr=1 vu=4 passed the window invariant: %v", window)
	}

	short := CheckPartitions(fakePartitioned{
		nparts: 4,
		pairs:  [][2]model.Version{{0, 1}},
	})
	if short.OK() {
		t.Error("missing partition pairs passed")
	}

	conv := CheckPartitions(fakePartitioned{
		nparts: 1,
		pairs:  [][2]model.Version{{0, 1}},
		errs:   []string{"partition 0: node 1 at vr=0, want 1"},
	})
	if conv.OK() {
		t.Error("convergence errors passed")
	}
}
