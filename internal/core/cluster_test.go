package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// newTestCluster builds and starts a 3-node cluster with items spread
// as in the paper's example: A, B at p(0); D, E at q(1); F at s(2).
func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for node, keys := range map[model.NodeID][]string{0: {"A", "B"}, 1: {"D", "E"}, 2: {"F"}} {
		for _, k := range keys {
			if int(node) < cfg.Nodes {
				rec := model.NewRecord()
				rec.Fields["bal"] = 0
				c.Preload(node, k, rec)
			}
		}
	}
	c.Start()
	t.Cleanup(c.Close)
	return c
}

func addOp(key string, delta int64) model.KeyOp {
	return model.KeyOp{Key: key, Op: model.AddOp{Field: "bal", Delta: delta}}
}

func waitHandle(t *testing.T, h *Handle) {
	t.Helper()
	if !h.WaitTimeout(10 * time.Second) {
		t.Fatalf("transaction %v did not complete", h.ID)
	}
}

// readBal submits a read-only transaction for key at node and returns
// the balance it observed and the version it read.
func readBal(t *testing.T, c *Cluster, node model.NodeID, key string) (int64, model.Version) {
	t.Helper()
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: node, Reads: []string{key}}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	reads := h.Reads()
	if len(reads) != 1 {
		t.Fatalf("read returned %d results", len(reads))
	}
	return reads[0].Record.Field("bal"), reads[0].VersionRead
}

func TestUpdateInvisibleUntilAdvancement(t *testing.T) {
	c := newTestCluster(t, Config{})
	// A multi-node commuting update: +30 on A at p, +70 on D at q.
	h, err := c.Submit(&model.TxnSpec{Label: "visit", Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{addOp("A", 30)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 70)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	if got := h.Status(); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
	if v, ok := h.Version(); !ok || v != 1 {
		t.Fatalf("version = %d %v, want 1 true", v, ok)
	}

	// Reads use version 0: the update must be invisible.
	if bal, ver := readBal(t, c, 0, "A"); bal != 0 || ver != 0 {
		t.Errorf("pre-advancement read A = %d@v%d, want 0@v0", bal, ver)
	}

	// Advance; now reads use version 1 and see the update.
	rep := c.Advance()
	if rep.NewVR != 1 || rep.NewVU != 2 {
		t.Fatalf("advancement installed vr=%d vu=%d", rep.NewVR, rep.NewVU)
	}
	if bal, ver := readBal(t, c, 0, "A"); bal != 30 || ver != 1 {
		t.Errorf("post-advancement read A = %d@v%d, want 30@v1", bal, ver)
	}
	if bal, _ := readBal(t, c, 1, "D"); bal != 70 {
		t.Errorf("post-advancement read D = %d, want 70", bal)
	}
	// Untouched item E was renumbered by GC and still reads 0.
	if bal, ver := readBal(t, c, 1, "E"); bal != 0 || ver != 1 {
		t.Errorf("post-advancement read E = %d@v%d, want 0@v1", bal, ver)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestVersionsAfterAdvancement(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Advance()
	for i := 0; i < c.NumNodes(); i++ {
		vr, vu := c.Node(i).Versions()
		if vr != 1 || vu != 2 {
			t.Errorf("node %d: vr=%d vu=%d, want 1,2", i, vr, vu)
		}
	}
	vr, vu := c.Coordinator().Versions()
	if vr != 1 || vu != 2 {
		t.Errorf("coordinator: vr=%d vu=%d", vr, vu)
	}
	if len(c.Coordinator().History()) != 1 {
		t.Error("history not recorded")
	}
}

func TestRepeatedAdvancementsBoundVersions(t *testing.T) {
	c := newTestCluster(t, Config{})
	for round := 0; round < 5; round++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    0,
			Updates: []model.KeyOp{addOp("A", 1)},
			Children: []*model.SubtxnSpec{
				{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
				{Node: 2, Updates: []model.KeyOp{addOp("F", 1)}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		waitHandle(t, h)
		c.Advance()
	}
	if bal, _ := readBal(t, c, 0, "A"); bal != 5 {
		t.Errorf("A after 5 rounds = %d, want 5", bal)
	}
	if got := c.MaxLiveVersionsEver(); got > 3 {
		t.Errorf("max live versions ever = %d, paper bound is 3", got)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestManyConcurrentCommutingUpdates(t *testing.T) {
	c := newTestCluster(t, Config{NetConfig: transport.Config{Jitter: 200 * time.Microsecond}})
	const txns = 200
	handles := make([]*Handle, 0, txns)
	for i := 0; i < txns; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    model.NodeID(i % 3),
			Updates: nil,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{addOp("A", 1)}},
				{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		waitHandle(t, h)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != txns {
		t.Errorf("A = %d, want %d (lost or duplicated commuting updates)", bal, txns)
	}
	if bal, _ := readBal(t, c, 1, "D"); bal != txns {
		t.Errorf("D = %d, want %d", bal, txns)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestUpdatesDuringAdvancementAreNotLost(t *testing.T) {
	// Keep submitting while an advancement runs; every increment must
	// land exactly once regardless of which version executed it (the
	// dual-write guarantee).
	c := newTestCluster(t, Config{NetConfig: transport.Config{Jitter: 300 * time.Microsecond}})
	const txns = 150
	handles := make([]*Handle, 0, txns)
	advDone := c.AdvanceAsync()
	for i := 0; i < txns; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: model.NodeID(i % 3),
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{addOp("A", 1)}},
				{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		if i == txns/2 {
			// Mid-stream, let the advancement make progress.
			time.Sleep(time.Millisecond)
		}
	}
	for _, h := range handles {
		waitHandle(t, h)
	}
	<-advDone
	c.Advance() // second advancement publishes everything
	if bal, _ := readBal(t, c, 0, "A"); bal != txns {
		t.Errorf("A = %d, want %d", bal, txns)
	}
	if bal, _ := readBal(t, c, 1, "D"); bal != txns {
		t.Errorf("D = %d, want %d", bal, txns)
	}
	if got := c.MaxLiveVersionsEver(); got > 3 {
		t.Errorf("max live versions = %d > 3", got)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestCompensationNetsToZero(t *testing.T) {
	c := newTestCluster(t, Config{})
	// Root aborts after spawning: the whole tree must be compensated.
	h, err := c.Submit(&model.TxnSpec{Label: "doomed", Root: &model.SubtxnSpec{
		Node:    0,
		Abort:   true,
		Updates: []model.KeyOp{addOp("A", 5)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 5)}},
			{Node: 2, Updates: []model.KeyOp{addOp("F", 5)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	if got := h.Status(); got != StatusCompensated {
		t.Fatalf("status = %v, want compensated", got)
	}
	c.Advance() // phase 2 waits for compensators too (counter discipline)
	for _, probe := range []struct {
		node model.NodeID
		key  string
	}{{0, "A"}, {1, "D"}, {2, "F"}} {
		if bal, _ := readBal(t, c, probe.node, probe.key); bal != 0 {
			t.Errorf("%s = %d after compensation, want 0", probe.key, bal)
		}
	}
	m := c.Metrics()
	comp := int64(0)
	for _, nm := range m.PerNode {
		comp += nm.Compensations
	}
	if comp != 2 {
		t.Errorf("compensations sent = %d, want 2", comp)
	}
}

func TestDeepTreeAndRevisit(t *testing.T) {
	// p -> q -> p: the tree revisits its root node (allowed by the
	// model, exercised in Table 1 by subtransaction iqp).
	c := newTestCluster(t, Config{})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{addOp("A", 1)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 2)}, Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{addOp("B", 3)}},
			}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	nodes := h.Nodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("involved nodes = %v, want [p q]", nodes)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "B"); bal != 3 {
		t.Errorf("B = %d, want 3", bal)
	}
	// Counter bookkeeping for the revisit: R[1][q][p] at q must be 1
	// and C[1][q][p] at p must be 1.
	if got := c.Node(1).Counters().R(1, 0); got != 1 {
		t.Errorf("R[1][q][p] = %d, want 1", got)
	}
	if got := c.Node(0).Counters().C(1, 1); got != 1 {
		t.Errorf("C[1][q][p] = %d, want 1", got)
	}
}

func TestSubmitErrors(t *testing.T) {
	c := newTestCluster(t, Config{})
	if _, err := c.Submit(&model.TxnSpec{Label: "nil"}); err == nil {
		t.Error("nil root accepted")
	}
	if _, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{{Key: "A", Op: model.SetOp{Field: "bal", Value: 1}}},
	}}); err == nil {
		t.Error("NC transaction accepted without NCMode")
	}
	if _, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 99}}); err == nil {
		t.Error("out-of-range root node accepted")
	}
	if _, err := NewCluster(Config{}); err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestReadSeesConsistentVersionAcrossNodes(t *testing.T) {
	// The hospital anomaly (Figure 1): a read must never observe a
	// partial multi-node update. With 3V, reads of version vr only see
	// transactions wholly contained in vr.
	c := newTestCluster(t, Config{NetConfig: transport.Config{Jitter: 500 * time.Microsecond}})
	var handles []*Handle
	for i := 0; i < 100; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{addOp("A", 1)}},
				{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Interleave reads while updates fly; every read must see A == D
	// (each update adds 1 to both).
	for i := 0; i < 20; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 2,
			Children: []*model.SubtxnSpec{
				{Node: 0, Reads: []string{"A"}},
				{Node: 1, Reads: []string{"D"}},
			},
		}})
		if err != nil {
			t.Fatal(err)
		}
		waitHandle(t, h)
		var a, d int64 = -1, -1
		for _, r := range h.Reads() {
			switch r.Key {
			case "A":
				a = r.Record.Field("bal")
			case "D":
				d = r.Record.Field("bal")
			}
		}
		if a != d {
			t.Fatalf("read observed partial update: A=%d D=%d", a, d)
		}
	}
	for _, h := range handles {
		waitHandle(t, h)
	}
	c.Advance()
	// Post-advancement reads still balanced, and now include everything.
	a, _ := readBal(t, c, 0, "A")
	d, _ := readBal(t, c, 1, "D")
	if a != 100 || d != 100 {
		t.Errorf("final A=%d D=%d, want 100/100", a, d)
	}
}
