package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// This file makes partition owner groups real (Config.Replicate): each
// locally hosted node runs one replicator that tracks, per partition, a
// replication lease — who is currently primary and under which term.
//
//   - The primary of a partition streams every applied effect set to
//     the other owners as ReplicateMsg (emitted from executeSubtxn, so
//     frames share the Exec durability barrier), and broadcasts empty
//     ReplicateMsgs as lease heartbeats every LeaseInterval.
//   - A backup that hears nothing for LeaseTimeout plus an
//     owner-position stagger (so the next owner in OwnerSet order
//     deterministically moves first) promotes itself: it mints a term
//     above everything seen — proposer-partitioned exactly like
//     coordinator fencing terms, but in a separate register space so a
//     replica election can never fence off a valid coordinator —
//     journals it, and starts heartbeating.
//   - Safety never depends on the lease: commuting ops merge in any
//     order, and backups apply every stream idempotently (per-sender
//     seq frontiers) regardless of term. The lease adds read routing
//     (reads of a dead node's partitions move to the promoted backup
//     within a bounded window) and bounds dual-primary windows.

// ReplicaConfig tunes per-partition replica groups (Config.Replicate).
type ReplicaConfig struct {
	// LeaseInterval is a partition primary's heartbeat period; 0 means
	// 25ms.
	LeaseInterval time.Duration
	// LeaseTimeout is how long a backup tolerates heartbeat silence
	// before promoting itself (plus an owner-position stagger of one
	// LeaseInterval per position, so earlier owners win ties); 0 means
	// 4×LeaseInterval.
	LeaseTimeout time.Duration
	// OnRoleChange, when set, observes this process's view of a
	// partition's primaryship changing: on self-promotion primary is the
	// local node, on demotion/adoption it is the peer whose heartbeat
	// won. Called outside replicator locks; used for logging.
	OnRoleChange func(part int, primary model.NodeID, term uint64)
}

func (rc ReplicaConfig) withDefaults() ReplicaConfig {
	if rc.LeaseInterval <= 0 {
		rc.LeaseInterval = 25 * time.Millisecond
	}
	if rc.LeaseTimeout <= 0 {
		rc.LeaseTimeout = 4 * rc.LeaseInterval
	}
	return rc
}

// ReplicaPartHealth is one partition's replica-group status at one
// node, served machine-readable by threev-node's /health.
type ReplicaPartHealth struct {
	Part          int          `json:"part"`
	Role          string       `json:"role"` // "primary" | "backup"
	Primary       model.NodeID `json:"primary"`
	Term          uint64       `json:"term"`
	LastBeatAgeMs int64        `json:"last_beat_age_ms"`
	// SentSeq is this node's replication stream frontier (as a primary,
	// past or present); Acked maps backup node id -> applied frontier it
	// acked; Applied maps sender node id -> frontier this node applied
	// (as a backup). MaxLag is SentSeq minus the slowest backup's ack.
	SentSeq uint64            `json:"sent_seq"`
	Acked   map[string]uint64 `json:"acked,omitempty"`
	Applied map[string]uint64 `json:"applied,omitempty"`
	MaxLag  uint64            `json:"max_lag"`
}

// replicator supervises one locally hosted node's replica-group roles
// across all partitions.
type replicator struct {
	c   *Cluster
	nd  *Node
	cfg ReplicaConfig

	mu       sync.Mutex
	prim     []model.NodeID // current primary view per partition
	primTerm []uint64       // term under which prim claimed the partition
	lastBeat []time.Time    // last accepted heartbeat (or own claim)
	acked    [][]uint64     // [part][node] applied frontier acked by each backup
	stopped  bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

func newReplicator(c *Cluster, nd *Node, cfg ReplicaConfig) *replicator {
	nparts := nd.nparts
	r := &replicator{
		c:        c,
		nd:       nd,
		cfg:      cfg,
		prim:     make([]model.NodeID, nparts),
		primTerm: make([]uint64, nparts),
		lastBeat: make([]time.Time, nparts),
		acked:    make([][]uint64, nparts),
		stopCh:   make(chan struct{}),
	}
	for p := 0; p < nparts; p++ {
		r.prim[p] = c.pmap.Primary(p)
		r.acked[p] = make([]uint64, c.cfg.Nodes)
	}
	return r
}

// ownerPos returns this node's position in a partition's owner group
// (0 = placement primary), or -1 when the node is not an owner (never
// eligible for promotion).
func (r *replicator) ownerPos(part int) int {
	for i, o := range r.nd.pmap.OwnerSet(part) {
		if o == r.nd.id {
			return i
		}
	}
	return -1
}

// start seeds the lease clocks, claims the partitions this node is
// placement primary for (minting a fresh term above anything durably
// recovered, so a restarted ex-primary cannot reuse a fenced one), and
// launches the lease loop.
func (r *replicator) start() {
	now := time.Now()
	r.mu.Lock()
	for p := range r.lastBeat {
		r.lastBeat[p] = now // grace period before the first election
	}
	r.mu.Unlock()
	for p := 0; p < r.nd.nparts; p++ {
		if r.c.pmap.Primary(p) == r.nd.id {
			r.claim(p)
		}
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.LeaseInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
				r.tick()
			}
		}
	}()
}

func (r *replicator) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopCh)
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *replicator) tick() {
	now := time.Now()
	for part := 0; part < r.nd.nparts; part++ {
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		isPrim := r.prim[part] == r.nd.id
		term := r.primTerm[part]
		last := r.lastBeat[part]
		r.mu.Unlock()
		if isPrim {
			r.heartbeat(part, term)
			r.publishLag(part)
			continue
		}
		pos := r.ownerPos(part)
		if pos < 0 {
			continue
		}
		// Staggered expiry: the owner at position k waits k extra lease
		// intervals, so the earliest live owner in OwnerSet order claims
		// first and its announcement renews everyone else's lease before
		// their own threshold passes.
		wait := r.cfg.LeaseTimeout + time.Duration(pos)*r.cfg.LeaseInterval
		if now.Sub(last) > wait {
			r.claim(part)
		}
	}
}

// claim elects this node primary for one partition: mint a term above
// everything seen, journal it (observeReplTerm) before announcing, and
// heartbeat immediately so surviving owners adopt the new primary
// before their own staggered thresholds pass.
func (r *replicator) claim(part int) {
	maxSeen := r.nd.replTerms[part].Load()
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	if t := r.primTerm[part]; t > maxSeen {
		maxSeen = t
	}
	term := nextTerm(maxSeen, r.nd.id, r.c.cfg.Nodes)
	r.prim[part] = r.nd.id
	r.primTerm[part] = term
	r.lastBeat[part] = time.Now()
	r.mu.Unlock()
	// Durable before the announcement: a post-crash restart of this
	// process must not propose a term at or below this one.
	r.nd.observeReplTerm(part, term)
	r.nd.reg.Inc(obs.CtrPromotions, 1)
	r.nd.reg.RecordEvent(obs.Event{Kind: obs.EvTakeover, Node: int(r.nd.id),
		Detail: "replica promotion, partition " + itoa(uint64(part)) + ", term " + itoa(term)})
	if f := r.cfg.OnRoleChange; f != nil {
		f(part, r.nd.id, term)
	}
	r.heartbeat(part, term)
}

// heartbeat broadcasts an empty ReplicateMsg — lease renewal plus the
// stream frontier, so caught-up backups ack a fresh lag sample — to the
// partition's other owners.
func (r *replicator) heartbeat(part int, term uint64) {
	msg := ReplicateMsg{Part: part, Term: term, Seq: r.nd.replSeqs[part].Load()}
	for _, o := range r.nd.pmap.OwnerSet(part) {
		if o != r.nd.id {
			r.nd.net.Send(transport.Message{From: r.nd.id, To: o, Payload: msg})
		}
	}
}

// noteBeat folds an accepted lease heartbeat (or data frame — any
// current-or-higher-term ReplicateMsg renews) into the lease view.
// Called from the node's delivery path via Node.onReplBeat.
func (r *replicator) noteBeat(part int, from model.NodeID, term uint64) {
	var deposed bool
	r.mu.Lock()
	if term < r.primTerm[part] {
		r.mu.Unlock()
		return
	}
	if term > r.primTerm[part] || from == r.prim[part] {
		deposed = r.prim[part] == r.nd.id && from != r.nd.id
		r.prim[part] = from
		r.primTerm[part] = term
		r.lastBeat[part] = time.Now()
	}
	r.mu.Unlock()
	if deposed {
		if f := r.cfg.OnRoleChange; f != nil {
			f(part, from, term)
		}
	}
}

// noteAck folds a backup's applied-frontier ack into the lag view.
// Called from the node's delivery path via Node.onReplAck.
func (r *replicator) noteAck(part int, from model.NodeID, seq uint64) {
	if int(from) < 0 || int(from) >= r.c.cfg.Nodes {
		return
	}
	r.mu.Lock()
	if seq > r.acked[part][from] {
		r.acked[part][from] = seq
	}
	r.mu.Unlock()
}

// publishLag gauges sent-minus-acked per backup for one partition this
// node is primary of (threev_replica_lag{part,node} in Prometheus).
func (r *replicator) publishLag(part int) {
	sent := r.nd.replSeqs[part].Load()
	r.mu.Lock()
	acked := append([]uint64(nil), r.acked[part]...)
	r.mu.Unlock()
	for _, o := range r.nd.pmap.OwnerSet(part) {
		if o == r.nd.id {
			continue
		}
		var lag uint64
		if sent > acked[o] {
			lag = sent - acked[o]
		}
		r.nd.reg.SetGauge(obs.ReplicaLagGauge(part, int(o)), float64(lag))
	}
}

// currentPrimary returns this node's view of a partition's primary and
// the term it holds the lease under.
func (r *replicator) currentPrimary(part int) (model.NodeID, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if part < 0 || part >= len(r.prim) {
		return 0, 0
	}
	return r.prim[part], r.primTerm[part]
}

// health snapshots every partition's replica-group status at this node.
func (r *replicator) health() []ReplicaPartHealth {
	now := time.Now()
	out := make([]ReplicaPartHealth, r.nd.nparts)
	for part := 0; part < r.nd.nparts; part++ {
		r.mu.Lock()
		prim := r.prim[part]
		term := r.primTerm[part]
		last := r.lastBeat[part]
		acked := append([]uint64(nil), r.acked[part]...)
		r.mu.Unlock()
		h := ReplicaPartHealth{
			Part:    part,
			Role:    "backup",
			Primary: prim,
			Term:    term,
			SentSeq: r.nd.replSeqs[part].Load(),
		}
		if !last.IsZero() {
			h.LastBeatAgeMs = now.Sub(last).Milliseconds()
		}
		if prim == r.nd.id {
			h.Role = "primary"
			h.Acked = make(map[string]uint64)
			for _, o := range r.nd.pmap.OwnerSet(part) {
				if o == r.nd.id {
					continue
				}
				h.Acked[fmt.Sprint(int(o))] = acked[o]
				if h.SentSeq > acked[o] && h.SentSeq-acked[o] > h.MaxLag {
					h.MaxLag = h.SentSeq - acked[o]
				}
			}
		} else {
			h.Applied = make(map[string]uint64)
			for _, o := range r.nd.pmap.OwnerSet(part) {
				if o == r.nd.id {
					continue
				}
				h.Applied[fmt.Sprint(int(o))] = r.nd.replApplied[part][o].Load()
			}
		}
		out[part] = h
	}
	return out
}
