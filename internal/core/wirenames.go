package core

import "repro/internal/transport"

// Stable accounting names for every protocol payload. transport.Stats
// keys its per-type counts by these, and internal/wire's codec registry
// uses the same names (asserted by a wire test), so metrics labels are
// identical across processes and across transports.
func init() {
	transport.RegisterPayloadName(SubtxnMsg{}, "subtxn")
	transport.RegisterPayloadName(StartAdvancementMsg{}, "start_advancement")
	transport.RegisterPayloadName(AckAdvancementMsg{}, "ack_advancement")
	transport.RegisterPayloadName(ReadVersionMsg{}, "read_version")
	transport.RegisterPayloadName(AckReadVersionMsg{}, "ack_read_version")
	transport.RegisterPayloadName(GCMsg{}, "gc")
	transport.RegisterPayloadName(AckGCMsg{}, "ack_gc")
	transport.RegisterPayloadName(CounterReqMsg{}, "counter_req")
	transport.RegisterPayloadName(CounterReplyMsg{}, "counter_reply")
	transport.RegisterPayloadName(CountersReqMsg{}, "counters_req")
	transport.RegisterPayloadName(CountersMsg{}, "counters")
	transport.RegisterPayloadName(NCVoteMsg{}, "nc_vote")
	transport.RegisterPayloadName(NCDecisionMsg{}, "nc_decision")
	transport.RegisterPayloadName(VersionProbeMsg{}, "version_probe")
	transport.RegisterPayloadName(VersionReplyMsg{}, "version_reply")
	transport.RegisterPayloadName(UnlockMsg{}, "unlock")
	transport.RegisterPayloadName(SpanReportMsg{}, "span_report")
	transport.RegisterPayloadName(CoordStateMsg{}, "coord_state")
	transport.RegisterPayloadName(StaleTermMsg{}, "stale_term")
	transport.RegisterPayloadName(ReplicateMsg{}, "replicate")
	transport.RegisterPayloadName(ReplicateAckMsg{}, "replicate_ack")
}
