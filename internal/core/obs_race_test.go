package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// TestObsSnapshotConcurrentWithWorkload hammers the observability
// readers — Metrics, ObsSnapshot, ObsEvents, the Prometheus writer —
// while update/read transactions and version advancements run. Run
// under -race this is the data-race gate for the whole obs layer.
func TestObsSnapshotConcurrentWithWorkload(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes:     3,
		NetConfig: transport.Config{Jitter: 50 * time.Microsecond, Seed: 3},
		Obs:       obs.Options{EventCapacity: 256, EventSampleN: 2},
	})

	const txns = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer side: a stream of two-node updates and single reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < txns; i++ {
			var spec *model.TxnSpec
			if i%4 == 0 {
				spec = &model.TxnSpec{Root: &model.SubtxnSpec{Node: 1, Reads: []string{"D"}}}
			} else {
				spec = &model.TxnSpec{Root: &model.SubtxnSpec{
					Node:     0,
					Updates:  []model.KeyOp{addOp("A", 1)},
					Children: []*model.SubtxnSpec{{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}}},
				}}
			}
			h, err := c.Submit(spec)
			if err != nil {
				t.Error(err)
				return
			}
			if !h.WaitTimeout(10 * time.Second) {
				t.Error("txn timed out")
				return
			}
		}
	}()

	// Advancement side: continuous version advancement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Advance()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	// Reader side: three goroutines scraping each surface concurrently.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Metrics()
					s := c.ObsSnapshot()
					var sb strings.Builder
					obs.WritePrometheus(&sb, s)
					_ = c.ObsEvents()
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}

	// Wait for the workload, then stop the scrapers and the advancer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			goto finished
		case <-time.After(10 * time.Millisecond):
			if m := c.Metrics(); m.Obs.Counters["txns_submitted"] >= txns {
				close(stop)
				<-done
				goto finished
			}
		}
	}
finished:

	if vio := c.Violations(); vio != nil {
		t.Fatalf("violations: %v", vio)
	}
	s := c.ObsSnapshot()
	if s.Counters["txns_submitted"] != txns {
		t.Fatalf("submitted = %d, want %d", s.Counters["txns_submitted"], txns)
	}
	if s.TxnRead.Count+s.TxnUpdate.Count != txns {
		t.Fatalf("latency observations = %d, want %d", s.TxnRead.Count+s.TxnUpdate.Count, txns)
	}
	if s.Counters["advancements"] == 0 {
		t.Fatal("no advancements recorded")
	}
	if s.EventsRecorded == 0 {
		t.Fatal("no events recorded")
	}
}

// TestObsDisabled checks the DisableObs path yields zero-value
// snapshots and nil event dumps while the protocol still works.
func TestObsDisabled(t *testing.T) {
	c := newTestCluster(t, Config{DisableObs: true})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	c.Advance()
	s := c.ObsSnapshot()
	if s.Counters != nil || s.TxnUpdate.Count != 0 || s.EventsRecorded != 0 {
		t.Fatalf("disabled obs produced data: %+v", s)
	}
	if ev := c.ObsEvents(); ev != nil {
		t.Fatalf("disabled obs produced events: %v", ev)
	}
	if bal, _ := readBal(t, c, 0, "A"); bal != 5 {
		t.Fatalf("A = %d, want 5", bal)
	}
}

// TestObsEndToEnd checks a plain run populates every obs surface the
// exposition advertises: latency histograms, phase timers, counter
// lag (observed live during the run), and the event log.
func TestObsEndToEnd(t *testing.T) {
	c := newTestCluster(t, Config{Obs: obs.Options{EventSampleN: 1}})
	for i := 0; i < 10; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:     0,
			Updates:  []model.KeyOp{addOp("A", 1)},
			Children: []*model.SubtxnSpec{{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		waitHandle(t, h)
	}
	rep := c.Advance()
	if rep.Interrupted {
		t.Fatal("advancement interrupted")
	}

	s := c.ObsSnapshot()
	if s.TxnUpdate.Count != 10 {
		t.Fatalf("update latency count = %d", s.TxnUpdate.Count)
	}
	if s.SubtxnHop.Count == 0 || s.SubtxnExec.Count == 0 {
		t.Fatalf("hop=%d exec=%d, want both > 0", s.SubtxnHop.Count, s.SubtxnExec.Count)
	}
	for i, p := range s.AdvPhases {
		if p.Count != 1 {
			t.Fatalf("phase %d count = %d, want 1", i+1, p.Count)
		}
	}
	if s.Gauges[obs.GaugeVersionRead] != 1 || s.Gauges[obs.GaugeVersionUpdate] != 2 {
		t.Fatalf("version gauges: %v", s.Gauges)
	}

	events := c.ObsEvents()
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[obs.EvTxnSpawn] == 0 || kinds[obs.EvTxnDone] == 0 || kinds[obs.EvVersionSwitch] == 0 {
		t.Fatalf("event kinds: %v", kinds)
	}
}
