package core

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// This file extends the paper: Section 4.3 assumes "a distributed
// mutual exclusion mechanism ... ensures that at most one instance of
// the version advancement process can run at any time", and the paper
// does not discuss what happens if that one instance dies mid-cycle.
// Because every advancement step is idempotent — version switches take
// the max, counter rows are allocated lazily, garbage collection can
// re-run — a replacement coordinator can always finish a predecessor's
// cycle from the nodes' observable state alone:
//
//   - If every node agrees on (vr, vu) with vu == vr+1, no cycle was in
//     flight (or it fully finished): adopt the state.
//   - Otherwise some cycle targeting vuNew = max vu was interrupted.
//     Re-run its remaining phases: re-broadcast the start-advancement
//     notice (idempotent), wait for quiescence of vuNew-1, re-broadcast
//     the read-version switch to vuNew-1 (idempotent), wait for
//     quiescence of vuNew-2's queries, and garbage-collect.
//
// Crash simulation: Cluster.CrashCoordinator tears down the current
// coordinator (any in-flight RunAdvancement returns with Interrupted
// set) and installs a fresh one, whose Recover method performs the
// procedure above.

// RecoveryReport describes a Recover run.
type RecoveryReport struct {
	// Resumed is true when an interrupted cycle was found and finished;
	// false when the cluster state was already clean.
	Resumed bool
	// VR and VU are the versions in force after recovery.
	VR, VU model.Version
	// Sweeps counts counter collections performed while resuming.
	Sweeps int
	Took   time.Duration
}

// crash marks the coordinator dead and wakes every blocked wait so
// RunAdvancement unwinds.
func (c *Coordinator) crash() {
	c.mu.Lock()
	c.dead = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// probeVersions collects every node's (vr, vu) for one partition,
// re-probing silent nodes and timing out per the coordinator's
// hardening configuration.
func (c *Coordinator) probeVersions(part int) (map[model.NodeID]VersionReplyMsg, error) {
	c.mu.Lock()
	c.round++
	round := c.round
	c.mu.Unlock()
	for i := 0; i < c.n; i++ {
		c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: VersionProbeMsg{Round: round, Term: c.term, Part: part}})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	deadline := c.deadlineAfter(start)
	nextResend := start.Add(c.resend)
	for len(c.probes[round]) < c.n {
		if err := c.abortErrLocked(); err != nil {
			return nil, fmt.Errorf("probing node versions: %w", err)
		}
		now := time.Now()
		if !deadline.IsZero() && now.After(deadline) {
			return nil, fmt.Errorf("probing node versions: %w", ErrTimeout)
		}
		if c.resend > 0 && now.After(nextResend) {
			for i := 0; i < c.n; i++ {
				if _, ok := c.probes[round][model.NodeID(i)]; !ok {
					c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: VersionProbeMsg{Round: round, Term: c.term, Part: part}})
				}
			}
			nextResend = now.Add(c.resend)
		}
		c.waitKick(c.kickInterval())
	}
	out := c.probes[round]
	delete(c.probes, round)
	return out, nil
}

// resyncLagging probes every node's (vr, vu) and re-issues the
// idempotent advancement notices to any node behind the coordinator's
// installed versions — the signature of a node restarted from a
// checkpoint older than the last completed cycle. Without this, such a
// node would sit one version back until the next cycle's Phase 1
// reached it, serving stale reads and holding un-collected garbage.
// Runs only when re-broadcast hardening is on (resend > 0) and at
// least one cycle has completed (at vu = 1 nothing can lag): the
// deterministic trace configurations never restart nodes and must not
// see extra probe traffic, and scripted tests stage the first cycle's
// messages exactly. Callers hold the partition's advMu.
func (c *Coordinator) resyncLagging(part int) error {
	cp := c.parts[part]
	if c.resend <= 0 || cp.vu <= 1 {
		return nil
	}
	views, err := c.probeVersions(part)
	if err != nil {
		return err
	}
	var lagVU, lagVR bool
	for _, v := range views {
		if v.VU < cp.vu {
			lagVU = true
		}
		if v.VR < cp.vr {
			lagVR = true
		}
	}
	if lagVU {
		c.broadcast(StartAdvancementMsg{NewVU: cp.vu, Term: c.term, Part: part})
		if err := c.waitAcks(c.ackVU, ackKey{part, cp.vu}, StartAdvancementMsg{NewVU: cp.vu, Term: c.term, Part: part}); err != nil {
			return fmt.Errorf("resyncing update version: %w", err)
		}
	}
	if lagVR {
		c.broadcast(ReadVersionMsg{NewVR: cp.vr, Term: c.term, Part: part})
		if err := c.waitAcks(c.ackVR, ackKey{part, cp.vr}, ReadVersionMsg{NewVR: cp.vr, Term: c.term, Part: part}); err != nil {
			return fmt.Errorf("resyncing read version: %w", err)
		}
		// The rejoiner may still hold versions the cluster collected.
		c.broadcast(GCMsg{Keep: cp.vr, Term: c.term, Part: part})
		if err := c.waitAcks(c.ackGC, ackKey{part, cp.vr}, GCMsg{Keep: cp.vr, Term: c.term, Part: part}); err != nil {
			return fmt.Errorf("resyncing garbage collection: %w", err)
		}
	}
	return nil
}

// Recover reconstructs the cluster's advancement state and finishes
// any interrupted cycle, partition by partition. It must be called on
// a fresh coordinator (after Cluster.CrashCoordinator or a failover
// takeover) before any new RunAdvancement. The report carries
// partition 0's versions, summed sweeps, and Resumed set if any
// partition had an interrupted cycle to finish.
func (c *Coordinator) Recover() (RecoveryReport, error) {
	agg, err := c.recoverPart(0)
	if err != nil {
		return agg, err
	}
	for part := 1; part < c.nparts; part++ {
		rep, err := c.recoverPart(part)
		agg.Sweeps += rep.Sweeps
		agg.Took += rep.Took
		agg.Resumed = agg.Resumed || rep.Resumed
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// recoverPart reconstructs one partition's advancement state and
// finishes its interrupted cycle, if any.
func (c *Coordinator) recoverPart(part int) (RecoveryReport, error) {
	cp := c.parts[part]
	cp.advMu.Lock()
	defer cp.advMu.Unlock()
	start := time.Now()

	views, err := c.probeVersions(part)
	if err != nil {
		return RecoveryReport{}, err
	}
	var maxVU, maxVR model.Version
	clean := true
	gcPending := false
	var firstVR, firstVU model.Version
	first := true
	for _, v := range views {
		if v.VU > maxVU {
			maxVU = v.VU
		}
		if v.VR > maxVR {
			maxVR = v.VR
		}
		if v.BelowVR {
			gcPending = true
		}
		if first {
			firstVR, firstVU = v.VR, v.VU
			first = false
		} else if v.VR != firstVR || v.VU != firstVU {
			clean = false
		}
	}
	if clean && maxVU == maxVR+1 && !gcPending {
		c.setVersions(part, maxVU, maxVR)
		return RecoveryReport{Resumed: false, VR: maxVR, VU: maxVU, Took: time.Since(start)}, nil
	}
	if clean && maxVU == maxVR+1 && gcPending {
		// Phases 1–3 finished but Phase 4 did not: drain the old read
		// version's queries and garbage-collect.
		rep := RecoveryReport{Resumed: true}
		c.enterPhase(part, 4)
		defer c.enterPhase(part, 0)
		s, _, err := c.pollQuiescence(part, maxVR-1)
		rep.Sweeps += s
		if err != nil {
			return rep, fmt.Errorf("resuming phase 4 quiescence: %w", err)
		}
		c.broadcast(GCMsg{Keep: maxVR, Term: c.term, Part: part})
		if err := c.waitAcks(c.ackGC, ackKey{part, maxVR}, GCMsg{Keep: maxVR, Term: c.term, Part: part}); err != nil {
			return rep, fmt.Errorf("resuming garbage collection: %w", err)
		}
		c.setVersions(part, maxVU, maxVR)
		rep.VR, rep.VU = maxVR, maxVU
		rep.Took = time.Since(start)
		return rep, nil
	}

	// An interrupted cycle targeted vuNew = maxVU (Phase 1 at least
	// partially ran, or an implicit notification advanced someone).
	// Its read-version target is vuNew-1.
	vuNew := maxVU
	vrNew := vuNew - 1
	rep := RecoveryReport{Resumed: true}
	defer c.enterPhase(part, 0)

	// Finish Phase 1 (idempotent: nodes take the max and always ack).
	c.enterPhase(part, 1)
	c.broadcast(StartAdvancementMsg{NewVU: vuNew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackVU, ackKey{part, vuNew}, StartAdvancementMsg{NewVU: vuNew, Term: c.term, Part: part}); err != nil {
		return rep, fmt.Errorf("resuming phase 1: %w", err)
	}

	// Phase 2: quiesce the outgoing update version.
	c.enterPhase(part, 2)
	s2, _, err := c.pollQuiescence(part, vuNew-1)
	rep.Sweeps += s2
	if err != nil {
		return rep, fmt.Errorf("resuming phase 2 quiescence: %w", err)
	}

	// Phase 3 (idempotent).
	c.enterPhase(part, 3)
	c.broadcast(ReadVersionMsg{NewVR: vrNew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackVR, ackKey{part, vrNew}, ReadVersionMsg{NewVR: vrNew, Term: c.term, Part: part}); err != nil {
		return rep, fmt.Errorf("resuming phase 3: %w", err)
	}

	// Phase 4: quiesce the outgoing read version's queries, then GC.
	// vrNew is at least 1 here (the first possible interrupted cycle
	// targets vu=2/vr=1), so vrNew-1 is well-defined.
	c.enterPhase(part, 4)
	s4, _, err := c.pollQuiescence(part, vrNew-1)
	rep.Sweeps += s4
	if err != nil {
		return rep, fmt.Errorf("resuming phase 4 quiescence: %w", err)
	}
	c.broadcast(GCMsg{Keep: vrNew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackGC, ackKey{part, vrNew}, GCMsg{Keep: vrNew, Term: c.term, Part: part}); err != nil {
		return rep, fmt.Errorf("resuming garbage collection: %w", err)
	}

	c.setVersions(part, vuNew, vrNew)
	rep.VR, rep.VU = vrNew, vuNew
	rep.Took = time.Since(start)
	return rep, nil
}

// CrashCoordinator simulates the advancement coordinator dying: any
// in-flight cycle is abandoned (its RunAdvancement returns with
// Interrupted set) and a fresh coordinator takes over the endpoint.
// Call Recover on the returned coordinator to finish whatever the dead
// one left behind.
func (c *Cluster) CrashCoordinator() *Coordinator {
	if c.fo != nil {
		panic("core: CrashCoordinator is the pinned-coordinator crash hook; use KillActiveCoordinator with Config.Failover")
	}
	old := c.currentCoordinator()
	old.crash()
	fresh := newCoordinator(c.cfg.Nodes, c.nparts, c.net, c.cfg.PollInterval, c.cfg.AckTimeout, c.cfg.ResendInterval, c.reg)
	fresh.batchedCounters = c.cfg.BatchedCounters
	c.coordMu.Lock()
	c.coord = fresh
	c.coordMu.Unlock()
	return fresh
}
