package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// waitForTrace polls the cluster's assembled traces until pred accepts
// one (span reports from executing nodes travel asynchronously, so a
// trace may finish assembling shortly after the handle completes).
func waitForTrace(t *testing.T, c *Cluster, pred func(obs.Trace) bool) obs.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, tr := range c.ObsTraces() {
			if pred(tr) {
				return tr
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never assembled; have %+v", c.ObsTraces())
		}
		time.Sleep(time.Millisecond)
	}
}

// collectSpans flattens an assembled trace tree.
func collectSpans(n *obs.TraceSpan, out *[]*obs.TraceSpan) {
	if n == nil {
		return
	}
	*out = append(*out, n)
	for _, ch := range n.Children {
		collectSpans(ch, out)
	}
}

// TestEndToEndTraceAssembly runs a three-node update whose subtree
// spans all three nodes with tracing at sample-everything, and asserts
// the sampled transaction assembles into one complete causal tree: a
// root "txn" span carrying the stage partition, the root
// subtransaction's execution span beneath it, and one child span per
// remote subtransaction (shipped home via SpanReportMsg).
func TestEndToEndTraceAssembly(t *testing.T) {
	c := newTestCluster(t, Config{
		Nodes:     3,
		NetConfig: transport.Config{Jitter: 20 * time.Microsecond, Seed: 7},
		Obs:       obs.Options{TraceSampleN: 1},
	})

	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{addOp("A", 1)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
			{Node: 2, Updates: []model.KeyOp{addOp("F", 1)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(10 * time.Second) {
		t.Fatal("txn timed out")
	}

	tr := waitForTrace(t, c, func(tr obs.Trace) bool {
		return tr.TraceID == uint64(h.ID) && tr.Complete && tr.Spans >= 4
	})

	if tr.Root.Name != "txn" {
		t.Fatalf("root span name = %q, want txn", tr.Root.Name)
	}
	if tr.Root.SpanID != tr.TraceID {
		t.Fatalf("root span id %#x != trace id %#x", tr.Root.SpanID, tr.TraceID)
	}
	if !strings.Contains(tr.Root.Attr, "committed") {
		t.Fatalf("root attr %q missing status", tr.Root.Attr)
	}

	// Stage partition on the root: wire+queue+service+ack telescopes to
	// the end-to-end duration exactly; fsync is a sub-interval.
	var sum, fsync int64
	seen := map[string]bool{}
	for _, st := range tr.Root.Stages {
		seen[st.Name] = true
		switch st.Name {
		case "fsync":
			fsync = st.Dur
		case "wire", "queue", "service", "ack":
			sum += st.Dur
		}
	}
	for _, want := range []string{"wire", "queue", "service", "ack", "fsync"} {
		if !seen[want] {
			t.Errorf("root span missing stage %q (have %v)", want, tr.Root.Stages)
		}
	}
	if sum != tr.Root.Dur {
		t.Errorf("stage sum %d != root dur %d", sum, tr.Root.Dur)
	}
	if fsync < 0 || fsync > tr.Root.Dur {
		t.Errorf("fsync %d outside [0, %d]", fsync, tr.Root.Dur)
	}

	// Tree shape: every executing node contributed a span, and the two
	// remote children hang off the root subtransaction's execution span.
	var all []*obs.TraceSpan
	collectSpans(tr.Root, &all)
	nodes := map[int]int{}
	execSpans := 0
	for _, sp := range all {
		if sp.Name == "subtxn" {
			nodes[sp.Node]++
			execSpans++
		}
	}
	if execSpans != 3 {
		t.Fatalf("want 3 subtxn execution spans, got %d (%+v)", execSpans, all)
	}
	for n := 0; n < 3; n++ {
		if nodes[n] != 1 {
			t.Errorf("node %d contributed %d subtxn spans, want 1", n, nodes[n])
		}
	}
	if tr.Orphans != 0 {
		t.Errorf("trace has %d orphan spans", tr.Orphans)
	}

	// Sampled root transactions feed the per-stage histograms.
	snap := c.ObsSnapshot()
	for _, i := range []int{obs.StageWire, obs.StageQueue, obs.StageService, obs.StageAck, obs.StageTotal} {
		if snap.Stages[i].Count == 0 {
			t.Errorf("stage histogram %q empty", obs.StageNames[i])
		}
	}
}

// TestSweepTraceAssembly asserts a completed advancement cycle records
// an "advance" root span with the four phase children of Section 4.3.
func TestSweepTraceAssembly(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 3, Obs: obs.Options{TraceSampleN: 1}})

	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	if rep := c.Advance(); rep.Err != nil {
		t.Fatal(rep.Err)
	}

	tr := waitForTrace(t, c, func(tr obs.Trace) bool {
		return tr.Complete && tr.Root != nil && tr.Root.Name == "advance"
	})
	if tr.TraceID&(1<<63) == 0 {
		t.Errorf("sweep trace id %#x should set bit 63", tr.TraceID)
	}
	if len(tr.Root.Children) != 4 {
		t.Fatalf("advance span has %d phase children, want 4", len(tr.Root.Children))
	}
	wantPhases := []string{"phase1_switch_vu", "phase2_quiesce_updates", "phase3_switch_vr", "phase4_quiesce_queries_gc"}
	for i, ch := range tr.Root.Children {
		if ch.Name != wantPhases[i] {
			t.Errorf("phase child %d = %q, want %q", i, ch.Name, wantPhases[i])
		}
	}
}

// TestTracingDisabledRecordsNothing pins the off-by-default discipline:
// with TraceSampleN zero no spans are recorded and no stage histograms
// fill, whatever the workload does.
func TestTracingDisabledRecordsNothing(t *testing.T) {
	c := newTestCluster(t, Config{Nodes: 2})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:     0,
		Updates:  []model.KeyOp{addOp("A", 1)},
		Children: []*model.SubtxnSpec{{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	c.Advance()
	if got := c.ObsTraces(); len(got) != 0 {
		t.Fatalf("tracing disabled but %d traces recorded", len(got))
	}
	if snap := c.ObsSnapshot(); snap.SpansRecorded != 0 {
		t.Fatalf("tracing disabled but %d spans recorded", snap.SpansRecorded)
	}
}
