package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestNCStressWithContinuousAdvancement is a regression test for two
// deadlocks found during development: (1) NC3V roots blocking worker
// goroutines while waiting out an advancement starved the very drain
// that would release them (fixed by off-thread parking), and (2) a
// child's 2PC vote overtaking the root's vote caused a premature
// partial decision (fixed by requiring the root's vote). It runs a
// point-of-sale mix with 20% non-commuting transactions under
// continuous version advancement and jittered message delivery.
func TestNCStressWithContinuousAdvancement(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 4, NCMode: true, LockWait: time.Second,
		NetConfig: transport.Config{Jitter: 200 * time.Microsecond, Seed: 41}})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(workload.PointOfSale(4, 0.2, 43))
	for _, p := range gen.PreloadSpecs() {
		rec := model.NewRecord()
		c.Preload(p.Node, p.Key, rec)
	}
	c.Start()
	defer c.Close()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				c.Advance()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	var handles []*Handle
	for i := 0; i < 200; i++ {
		txn := gen.Next()
		h, err := c.Submit(txn.Spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		if i%8 == 7 {
			for _, h2 := range handles {
				if !h2.WaitTimeout(10 * time.Second) {
					dumpState(t, c, h2)
				}
			}
			handles = handles[:0]
		}
	}
	for _, h := range handles {
		if !h.WaitTimeout(10 * time.Second) {
			dumpState(t, c, h)
		}
	}
	close(stop)
}

func dumpState(t *testing.T, c *Cluster, h *Handle) {
	t.Helper()
	v, _ := h.Version()
	fmt.Printf("STUCK txn %v version=%d status=%v nodes=%v\n", h.ID, v, h.Status(), h.Nodes())
	h.mu.Lock()
	fmt.Printf("  expected=%d done=%d\n", h.expected, h.done)
	h.mu.Unlock()
	for i := 0; i < c.NumNodes(); i++ {
		nd := c.Node(i)
		vr, vu := nd.Versions()
		nd.ncMu.Lock()
		fmt.Printf("  node %d vr=%d vu=%d parked=%d ncCoord=%d ncPart=%d\n", i, vr, vu, len(nd.ncParked), len(nd.ncCoord), len(nd.ncPart))
		for txn, st := range nd.ncCoord {
			fmt.Printf("    coord %v votes=%d expected=%d ok=%v\n", txn, st.votes, st.expected, st.ok)
		}
		for txn, st := range nd.ncPart {
			fmt.Printf("    part %v execs=%d\n", txn, len(st.execs))
		}
		nd.ncMu.Unlock()
	}
	t.Fatal("stuck")
}
