// Package core implements the paper's contribution: the 3V
// multiversioning algorithm (Sections 2 and 4), its completely
// asynchronous version-advancement protocol with counter-based
// termination detection (Sections 2.2 and 4.3), compensation-aware
// bookkeeping (Section 3.2), and the NC3V extension for non-commuting
// update transactions (Section 5).
//
// Topology: a cluster of N database nodes (ids 0..N-1) plus one
// coordinator endpoint (id N) that drives version advancement. All
// parties communicate exclusively through a transport.Network, so every
// protocol interaction — subtransaction shipping, advancement notices,
// counter snapshots, NC3V votes and decisions — is an asynchronous
// message that tests can delay or reorder.
package core

import (
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// SubtxnMsg ships one subtransaction to the node that must execute it
// (Spec.Node == the envelope's To). Version is the transaction version
// number V(T) assigned by the root and carried by every descendant
// (Section 4.1); a zero-valued Version together with Root=true means
// "assign on arrival" — the root subtransaction is versioned by the
// receiving node reading its current vu (or vr for queries).
type SubtxnMsg struct {
	Txn     model.TxnID
	Version model.Version
	Root    bool
	// Assigned marks a root whose version number was already assigned
	// (and request-counted): an NC3V root parked during a version
	// advancement is re-dispatched with Assigned=true so it is not
	// re-versioned.
	Assigned bool
	Spec     *model.SubtxnSpec
	// ReadOnly marks subtransactions of read-only transactions, which
	// are versioned from vr rather than vu.
	ReadOnly bool
	// NC marks subtransactions of non-well-behaved transactions, which
	// run under the NC3V protocol: NC locks, no dual writes, two-phase
	// commit. RootNode is the node coordinating K's 2PC (the node that
	// received the root).
	NC       bool
	RootNode model.NodeID
	// Compensating marks compensating subtransactions. They follow
	// exactly the ordinary protocol (Section 3.2: "we do not
	// distinguish between compensating and ordinary subtransactions");
	// the flag exists only for observability.
	Compensating bool
	// SentAt is the sender's wall clock at Send time, used by the
	// observability layer to histogram per-hop RPC latency (queue +
	// network + worker wait). Zero when the sender is not instrumented
	// (scripted replays); the protocol never reads it.
	SentAt time.Time
	// Part is the keyspace partition the transaction belongs to
	// (partition.Map.Of over the tree's keys, stamped on the root by
	// Cluster.Submit and inherited by every descendant). All counter
	// increments for the transaction land in partition Part's table, so
	// quiescence detection for one partition never waits on another's
	// traffic. Always 0 in single-partition deployments.
	Part int
}

// StartAdvancementMsg is the Phase 1 notice: switch the update version
// to NewVU, allocating fresh counters (Section 4.3). Term is the
// sending coordinator's fencing term (see CoordStateMsg); 0 means
// unfenced (single-coordinator deployments, scripted replays).
type StartAdvancementMsg struct {
	NewVU model.Version
	Term  uint64
	// Part scopes the notice to one partition's epoch.
	Part int
}

// AckAdvancementMsg acknowledges StartAdvancementMsg.
type AckAdvancementMsg struct {
	NewVU model.Version
	Node  model.NodeID
	Part  int
}

// ReadVersionMsg is the Phase 3 notice: queries arriving from now on
// use NewVR. Term fences stale coordinators (0 = unfenced).
type ReadVersionMsg struct {
	NewVR model.Version
	Term  uint64
	Part  int
}

// AckReadVersionMsg acknowledges ReadVersionMsg.
type AckReadVersionMsg struct {
	NewVR model.Version
	Node  model.NodeID
	Part  int
}

// GCMsg is the Phase 4 notice: garbage-collect all data and counter
// versions below Keep (the new read version). Term fences stale
// coordinators (0 = unfenced).
type GCMsg struct {
	Keep model.Version
	Term uint64
	// Part scopes collection: only keys owned by the partition are
	// dropped, so one partition's Phase 4 cannot disturb versions still
	// live in another partition's epoch.
	Part int
}

// AckGCMsg acknowledges GCMsg.
type AckGCMsg struct {
	Keep model.Version
	Node model.NodeID
	Part int
}

// CounterReqMsg asks a node for its counter rows for one version; the
// coordinator sends these during Phases 2 and 4. Round tags the sweep
// so late replies from a previous sweep are not mixed into the current
// snapshot. Term fences stale coordinators (0 = unfenced).
type CounterReqMsg struct {
	Version model.Version
	Round   int
	Term    uint64
	Part    int
}

// CounterReplyMsg carries one node's R row (requests sent, indexed by
// destination) and C row (completions here, indexed by invoking node)
// for the requested version.
type CounterReplyMsg struct {
	Version model.Version
	Round   int
	Node    model.NodeID
	R       []int64
	C       []int64
	Part    int
}

// CountersReqMsg is the batched form of CounterReqMsg: one request
// asking a node for its counter rows for every listed version, so a
// quiescence sweep costs one request/reply pair per node however many
// versions it is tracking. Round and Term work exactly as in
// CounterReqMsg.
type CountersReqMsg struct {
	Versions []model.Version
	Round    int
	Term     uint64
	Part     int
}

// VersionCounters is one version's R/C rows inside a CountersMsg.
type VersionCounters struct {
	Version model.Version
	R       []int64
	C       []int64
}

// CountersMsg answers a CountersReqMsg: the node's counter rows for
// every requested version, snapshotted together in one message. All
// entries are fresh reads taken when the request was served — the
// double-collect quiescence detector requires two consecutive fresh
// snapshots, so entries are never cached across rounds.
type CountersMsg struct {
	Round   int
	Node    model.NodeID
	Entries []VersionCounters
	Part    int
}

// NCVoteMsg is the first phase of NC3V's two-phase commit: a node that
// finished executing a subtransaction of non-commuting transaction Txn
// reports to the transaction's coordinating node whether its local part
// succeeded (OK) and how many child subtransactions it spawned
// (Children), which lets the coordinator know how many more votes to
// expect without knowing the tree shape in advance.
type NCVoteMsg struct {
	Txn      model.TxnID
	Node     model.NodeID
	OK       bool
	Children int
	// Root marks the root subtransaction's vote. The coordinator must
	// not decide before it arrives: a child's vote can overtake the
	// root's on the network, and without this guard a single child vote
	// would look like a complete tree (votes == expected == 1) and
	// trigger a premature partial decision.
	Root bool
}

// NCDecisionMsg is the second phase: commit or abort. On commit a
// participant makes its local effects permanent, increments the
// completion counters for every subtransaction of Txn it executed
// (atomically with commitment, per Section 5 step 6) and releases NC
// locks; on abort it rolls back via its undo log first.
type NCDecisionMsg struct {
	Txn    model.TxnID
	Commit bool
}

// VersionProbeMsg asks a node for its current (vr, vu) pair. A
// recovering coordinator (see Coordinator.Recover) uses probes to
// reconstruct where a crashed predecessor left off. Term fences stale
// coordinators (0 = unfenced).
type VersionProbeMsg struct {
	Round int
	Term  uint64
	Part  int
}

// VersionReplyMsg answers a VersionProbeMsg. BelowVR reports whether
// the node still holds data versions below its read version — evidence
// of an interrupted Phase 4 (garbage collection pending).
type VersionReplyMsg struct {
	Round   int
	Node    model.NodeID
	VR      model.Version
	VU      model.Version
	BelowVR bool
	Part    int
}

// UnlockMsg is the asynchronous clean-up phase for well-behaved
// transactions in NC3V mode: once the whole tree of Txn has committed,
// the cluster tells every involved node to release Txn's commute locks
// (Section 5: "a special clean-up phase ... asynchronous with respect
// to well-behaved transactions").
type UnlockMsg struct {
	Txn model.TxnID
}

// CoordStateMsg is the active coordinator's lease heartbeat and state
// mirror, broadcast to every node each FailoverConfig.LeaseInterval.
// Term is the sender's fencing term; Coord its endpoint id; VR/VU the
// versions it has installed; Phase the advancement phase in flight
// (0 = idle, 1–4 mid-sweep). Nodes relay it to their co-located
// FailoverManager: a fresh heartbeat renews the lease, a missing one
// eventually triggers a standby takeover, and the mirrored state lets
// the successor's journal carry the predecessor's term forward.
type CoordStateMsg struct {
	Term  uint64
	Coord model.NodeID
	VR    model.Version
	VU    model.Version
	Phase int
}

// StaleTermMsg tells a coordinator it has been fenced off: the sending
// node has observed Term (higher than the recipient's), so the
// recipient must stop driving sweeps (see ErrStaleTerm).
type StaleTermMsg struct {
	Term uint64
	Node model.NodeID
}

// ReplicateMsg streams one applied effect set from a partition's
// primary to the other owners in OwnerSet(part). It rides the reliable
// session layer, so FIFO order and frame-level dedup come for free; Seq
// is an additional application-level per-(part, sender) sequence number
// that lets a backup skip an effect set it already applied durably —
// the crash window between a backup's WAL append and the session
// watermark can otherwise replay a frame whose effects are already on
// disk. Term is the sender's replication lease term for the partition
// (separate register from the coordinator fencing terms); a message
// with an empty Ops slice is a pure lease heartbeat. Version is the
// update version the ops were applied at on the primary; backups clamp
// it up to their own vr so replication never resurrects a GC'd version.
type ReplicateMsg struct {
	Part    int
	Term    uint64
	Seq     uint64
	Version model.Version
	Ops     []AppliedOp
}

// ReplicateAckMsg reports a backup's applied replication frontier for
// one partition back to the primary, which uses it to compute replica
// lag (sent seq − acked seq) for /health and threev_replica_lag.
type ReplicateAckMsg struct {
	Part int
	Seq  uint64
	Node model.NodeID
}

// SpanReportMsg ships completed trace spans from an executing node home
// to the transaction's root node, where the full causal tree assembles
// (internal/obs.AssembleTraces). It is observability-only traffic: sent
// solely for head-sampled transactions, never read by the protocol, and
// absent entirely when tracing is disabled.
type SpanReportMsg struct {
	Spans []obs.Span
}
