package core

import (
	"testing"
	"time"

	"repro/internal/model"
)

func setOp(key string, val int64) model.KeyOp {
	return model.KeyOp{Key: key, Op: model.SetOp{Field: "bal", Value: val}}
}

func TestNCCommitAcrossNodes(t *testing.T) {
	c := newTestCluster(t, Config{NCMode: true})
	h, err := c.Submit(&model.TxnSpec{Label: "K", NonCommuting: true, Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{setOp("A", 100)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{setOp("D", 200)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	if got := h.Status(); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != 100 {
		t.Errorf("A = %d, want 100", bal)
	}
	if bal, _ := readBal(t, c, 1, "D"); bal != 200 {
		t.Errorf("D = %d, want 200", bal)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestNCSerializesWithCommuting(t *testing.T) {
	// A set followed by adds (each awaited) must compose in submission
	// order: set(100) then +1 +1 = 102.
	c := newTestCluster(t, Config{NCMode: true})
	h1, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{setOp("A", 100)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h1)
	for i := 0; i < 2; i++ {
		h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node: 0, Updates: []model.KeyOp{addOp("A", 1)},
		}})
		if err != nil {
			t.Fatal(err)
		}
		waitHandle(t, h)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != 102 {
		t.Errorf("A = %d, want 102", bal)
	}
}

func TestNCAbortOnHigherVersion(t *testing.T) {
	// Section 5 step 4: an NC transaction updating an item that already
	// exists in a greater version must abort. Force the condition by
	// materializing a future version directly in storage.
	c := newTestCluster(t, Config{NCMode: true})
	c.Node(0).Store().EnsureVersion("A", 5)
	h, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{setOp("A", 100), setOp("B", 7)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	if got := h.Status(); got != StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	// The abort must leave no trace on B (undo) and release locks so a
	// later NC transaction succeeds.
	h2, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{setOp("B", 9)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h2)
	if got := h2.Status(); got != StatusCommitted {
		t.Fatalf("follow-up status = %v, want committed", got)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "B"); bal != 9 {
		t.Errorf("B = %d, want 9 (abort leaked state or lock)", bal)
	}
}

func TestNCAbortRollsBackAcrossNodes(t *testing.T) {
	// Child at q hits the higher-version conflict; the root's local
	// write at p must be rolled back by the global abort.
	c := newTestCluster(t, Config{NCMode: true})
	c.Node(1).Store().EnsureVersion("D", 5)
	h, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{setOp("A", 777)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{setOp("D", 888)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	if got := h.Status(); got != StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != 0 {
		t.Errorf("A = %d after global abort, want 0", bal)
	}
	m := c.Metrics()
	aborts := int64(0)
	for _, nm := range m.PerNode {
		aborts += nm.NCAborts
	}
	if aborts == 0 {
		t.Error("no NC aborts recorded at participants")
	}
}

func TestNCAbortedBeforeImageRestored(t *testing.T) {
	// Establish A=50 in version 1, advance so it becomes the read
	// version, then have an NC transaction overwrite and abort: the
	// pre-existing version-2 value (copied 50) must be restored.
	c := newTestCluster(t, Config{NCMode: true})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 50)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	c.Advance() // vr=1, vu=2

	// Commuting update creates A@2 (copy of 50, +5 = 55).
	h2, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 5)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h2)

	// NC transaction sets A=0 at version 2 but aborts because B has a
	// fabricated higher version.
	c.Node(0).Store().EnsureVersion("B", 9)
	h3, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{setOp("A", 0), setOp("B", 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h3)
	if got := h3.Status(); got != StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != 55 {
		t.Errorf("A = %d, want 55 (before-image not restored)", bal)
	}
}

func TestNCConcurrentConflictResolvedByTimeout(t *testing.T) {
	// Two NC transactions locking the same keys from different roots;
	// the lock-timeout deadlock rule guarantees every handle completes
	// and the surviving state is one of the two serial outcomes.
	c := newTestCluster(t, Config{NCMode: true, LockWait: 50 * time.Millisecond})
	itemAt := map[model.NodeID]string{0: "A", 1: "D"}
	mk := func(root model.NodeID, val int64) *model.TxnSpec {
		return &model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
			Node:    root,
			Updates: []model.KeyOp{setOp(itemAt[root], val)},
			Children: []*model.SubtxnSpec{
				{Node: 1 - root, Updates: []model.KeyOp{setOp(itemAt[1-root], val)}},
			},
		}}
	}
	h1, err := c.Submit(mk(0, 111))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(mk(1, 222))
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h1)
	waitHandle(t, h2)
	c.Advance()
	a, _ := readBal(t, c, 0, "A")
	d, _ := readBal(t, c, 1, "D")
	okOutcome := (a == 111 && d == 111) || (a == 222 && d == 222) ||
		(h1.Status() == StatusAborted && a != 111 && d != 111) ||
		(h2.Status() == StatusAborted && a != 222 && d != 222)
	if !okOutcome {
		t.Errorf("inconsistent outcome: A=%d D=%d h1=%v h2=%v", a, d, h1.Status(), h2.Status())
	}
	// Whatever happened, the values must agree if both committed, and
	// counters must balance (advancement above would hang otherwise).
	if h1.Status() == StatusCommitted && h2.Status() == StatusCommitted && a != d {
		t.Errorf("both committed but A=%d D=%d", a, d)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestNCWaitsForAdvancementWindow(t *testing.T) {
	// An NC root submitted while an advancement is between Phase 1 and
	// Phase 3 sees vu == vr+2 and must wait for the read version to
	// catch up (Section 5 step 2) — then complete normally.
	c := newTestCluster(t, Config{NCMode: true})
	// Start an advancement and immediately submit the NC transaction;
	// whichever interleaving occurs, the NC transaction must complete
	// and its write must land in its assigned version.
	advDone := c.AdvanceAsync()
	h, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{setOp("A", 42)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-advDone
	waitHandle(t, h)
	if got := h.Status(); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
	c.Advance()
	c.Advance()
	if bal, _ := readBal(t, c, 0, "A"); bal != 42 {
		t.Errorf("A = %d, want 42", bal)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestCommuteLocksReleasedByCleanup(t *testing.T) {
	// A well-behaved transaction's commute locks must be released by
	// the asynchronous clean-up so a later NC transaction can proceed.
	c := newTestCluster(t, Config{NCMode: true, LockWait: 2 * time.Second})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	h2, err := c.Submit(&model.TxnSpec{NonCommuting: true, Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{setOp("A", 10)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h2)
	if got := h2.Status(); got != StatusCommitted {
		t.Fatalf("NC after commuting: status = %v (commute locks leaked?)", got)
	}
}
