package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// TestChunkDrainEquivalence drives one identical pseudo-random stream
// of commuting multi-node updates through two clusters — a reference
// with the one-at-a-time worker path and a fully batched one (link
// coalescing, ExecChunk admission, batched counter sweeps, group
// submit) — and demands bit-identical read-visible state afterwards.
// Commuting ops make the final state independent of execution
// grouping, so any divergence is a batching bug: a chunk boundary
// splitting a dual write, a counter increment folded twice, or a
// subtransaction dropped between mailbox slices.
func TestChunkDrainEquivalence(t *testing.T) {
	const (
		nodes = 3
		txns  = 240
		group = 8
	)
	keys := map[model.NodeID][]string{0: {"A", "B"}, 1: {"D", "E"}, 2: {"F"}}

	// stream generates the same pseudo-random transactions for both
	// clusters: every txn updates 1..3 distinct keys, each on its home
	// node, with the first key's node hosting the root.
	stream := func() []*model.TxnSpec {
		rng := rand.New(rand.NewSource(42))
		specs := make([]*model.TxnSpec, txns)
		for i := range specs {
			n := 1 + rng.Intn(3)
			picked := map[string]bool{}
			var root *model.SubtxnSpec
			for len(picked) < n {
				node := model.NodeID(rng.Intn(nodes))
				key := keys[node][rng.Intn(len(keys[node]))]
				if picked[key] {
					continue
				}
				picked[key] = true
				ko := []model.KeyOp{
					{Key: key, Op: model.AddOp{Field: "bal", Delta: int64(rng.Intn(100) - 50)}},
					{Key: key, Op: model.AppendOp{T: model.Tuple{
						Txn: model.MakeTxnID(0, uint64(i)), Part: len(picked), Total: n, Attr: "bal",
					}}},
				}
				if root == nil {
					root = &model.SubtxnSpec{Node: node, Updates: ko}
				} else {
					root.Children = append(root.Children, &model.SubtxnSpec{Node: node, Updates: ko})
				}
			}
			specs[i] = &model.TxnSpec{Label: fmt.Sprintf("equiv-%d", i), Root: root}
		}
		return specs
	}

	run := func(t *testing.T, cfg Config, batched bool) map[string]*model.Record {
		c := newTestCluster(t, cfg)
		specs := stream()
		if batched {
			for i := 0; i < len(specs); i += group {
				end := i + group
				if end > len(specs) {
					end = len(specs)
				}
				hs, err := c.SubmitBatch(specs[i:end])
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range hs {
					waitHandle(t, h)
				}
			}
		} else {
			for _, spec := range specs {
				h, err := c.Submit(spec)
				if err != nil {
					t.Fatal(err)
				}
				waitHandle(t, h)
			}
		}
		// Two advances publish everything; reads then see the full load.
		c.Advance()
		c.Advance()
		out := map[string]*model.Record{}
		for node, ks := range keys {
			for _, k := range ks {
				h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: node, Reads: []string{k}}})
				if err != nil {
					t.Fatal(err)
				}
				waitHandle(t, h)
				out[k] = h.Reads()[0].Record
			}
		}
		if vio := c.Violations(); vio != nil {
			t.Fatalf("violations: %v", vio)
		}
		return out
	}

	ref := run(t, Config{Nodes: nodes}, false)
	chunked := run(t, Config{
		Nodes: nodes,
		NetConfig: transport.Config{
			BatchWindow: 50 * time.Microsecond,
			Seed:        7,
			Jitter:      20 * time.Microsecond,
		},
		ExecChunk:       64,
		BatchedCounters: true,
	}, true)

	for k, want := range ref {
		got := chunked[k]
		if got == nil {
			t.Fatalf("key %s: missing from batched run", k)
		}
		if !want.Equal(got) {
			t.Errorf("key %s diverged:\n  reference %v\n  batched   %v", k, want, got)
		}
	}
}
