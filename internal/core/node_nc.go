package core

import (
	"repro/internal/locks"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// executeNC runs one subtransaction of a non-well-behaved transaction
// under the NC3V algorithm (Section 5): non-commuting locks, no dual
// writes, a write-conflict abort rule, and two-phase commit with the
// completion counter incremented atomically with the commit decision.
func (nd *Node) executeNC(from model.NodeID, msg SubtxnMsg) {
	v := msg.Version
	rootNode := msg.RootNode
	if msg.Root && !msg.Assigned {
		rootNode = nd.id
		// Step 1: V(K) := vu, bumping the request counter in the same
		// critical section as assignment (see executeSubtxn).
		// NC3V is restricted to unpartitioned clusters, so all NC
		// bookkeeping pins partition 0.
		nd.verMu.Lock()
		v = nd.pv[0].vu
		nd.cnts[0].IncR(v, nd.id)
		// Step 2: the transaction may proceed only when V(K) = vr + 1,
		// i.e. no version advancement is in flight — the one wait the
		// NC3V protocol imposes, and it affects non-well-behaved
		// transactions only. Blocking this worker goroutine would risk
		// starving the very version-drain that lets vr catch up, so the
		// root is parked off-thread and re-dispatched by the
		// read-version switch (handleReadVersion).
		if nd.pv[0].vr < v-1 {
			parked := msg
			parked.Assigned = true
			parked.Version = v
			parked.RootNode = nd.id
			nd.ncParked = append(nd.ncParked, parkedNC{from: from, msg: parked})
			nd.verMu.Unlock()
			nd.metMu.Lock()
			nd.metrics.RootsAssigned++
			nd.metMu.Unlock()
			nd.obs.onVersion(msg.Txn, v)
			return
		}
		nd.verMu.Unlock()
		nd.metMu.Lock()
		nd.metrics.RootsAssigned++
		nd.metMu.Unlock()
		nd.obs.onVersion(msg.Txn, v)
	} else if !msg.Root {
		// Implicit advancement notification applies to NC
		// subtransactions exactly as to well-behaved ones.
		nd.maybeAdvanceVU(0, v)
	}

	spec := msg.Spec
	localOK := true
	var reads []model.ReadResult
	var undo []ncUndo

	// Acquire NC locks on everything the subtransaction touches.
	// Timeout is the deadlock victim rule; the vote below carries the
	// failure to the 2PC coordinator.
	for _, k := range touchedKeys(spec) {
		if err := nd.lm.Acquire(msg.Txn, k, locks.NonCommuting); err != nil {
			localOK = false
			nd.metMu.Lock()
			nd.metrics.LockAborts++
			nd.metMu.Unlock()
			break
		}
	}

	if localOK {
		release := nd.latches.Acquire(touchedKeys(spec))
		// Step 3: reads.
		for _, k := range spec.Reads {
			rec, ver, ok := nd.store.ReadMax(k, v)
			if !ok {
				rec, ver = model.NewRecord(), 0
			}
			reads = append(reads, model.ReadResult{Node: nd.id, Key: k, VersionRead: ver, Record: rec})
		}
		// Step 4: for every updated item, abort if it already exists in
		// a version greater than V(K); otherwise check-and-create
		// x(V(K)) and update exactly that version (no dual write).
		for _, u := range spec.Updates {
			if nd.store.ExistsAbove(u.Key, v) {
				localOK = false
				break
			}
			if rec, ok := nd.store.Peek(u.Key, v); ok {
				undo = append(undo, ncUndo{key: u.Key, ver: v, prev: rec.Clone()})
			} else {
				undo = append(undo, ncUndo{key: u.Key, ver: v, prev: nil})
				nd.store.EnsureVersion(u.Key, v)
			}
			nd.store.ApplyExact(u.Key, v, u.Op)
		}
		release()
	}

	// Step 5: spawn children (only if the local part succeeded).
	children := 0
	if localOK {
		for _, child := range spec.Children {
			nd.cnts[0].IncR(v, child.Node)
			nd.obs.onSpawn(msg.Txn, 1)
			nd.net.Send(transport.Message{From: nd.id, To: child.Node, Payload: SubtxnMsg{
				Txn:      msg.Txn,
				Version:  v,
				Spec:     child,
				NC:       true,
				RootNode: rootNode,
				SentAt:   nd.sendStamp(),
			}})
			children++
		}
	}

	// Register the executed subtransaction as participant state; the
	// completion counter is NOT incremented yet — Section 5 step 6
	// increments it atomically with the commit (or abort) decision.
	nd.ncMu.Lock()
	st := nd.ncPart[msg.Txn]
	if st == nil {
		st = &ncPartState{}
		nd.ncPart[msg.Txn] = st
	}
	st.execs = append(st.execs, ncExec{source: from, ver: v, reads: reads, undo: undo})
	nd.ncMu.Unlock()
	nd.metMu.Lock()
	nd.metrics.NCExecuted++
	nd.metMu.Unlock()

	// Phase 1 of 2PC: vote.
	nd.net.Send(transport.Message{From: nd.id, To: rootNode, Payload: NCVoteMsg{
		Txn:      msg.Txn,
		Node:     nd.id,
		OK:       localOK,
		Children: children,
		Root:     msg.Root,
	}})
}

// handleNCVote runs at the NC transaction's coordinating node (the node
// that received the root). Votes double as tree-size discovery: each
// vote adds the voter's spawned-children count to the expected total,
// so the coordinator knows when the last vote is in without knowing the
// tree shape in advance.
func (nd *Node) handleNCVote(p NCVoteMsg) {
	nd.ncMu.Lock()
	st := nd.ncCoord[p.Txn]
	if st == nil {
		st = &ncCoordState{expected: 1, ok: true, nodes: make(map[model.NodeID]bool)}
		nd.ncCoord[p.Txn] = st
	}
	st.votes++
	st.expected += p.Children
	st.ok = st.ok && p.OK
	if p.Root {
		st.rootVoted = true
	}
	st.nodes[p.Node] = true
	done := st.rootVoted && st.votes == st.expected
	var participants []model.NodeID
	commit := false
	if done {
		commit = st.ok
		for n := range st.nodes {
			participants = append(participants, n)
		}
		delete(nd.ncCoord, p.Txn)
	}
	nd.ncMu.Unlock()

	if !done {
		return
	}
	// Phase 2 of 2PC: decision to every participant node.
	if !commit {
		nd.obs.onNCAbort(p.Txn)
		nd.reg.RecordEvent(obs.Event{Kind: obs.EvNCAbort, Node: int(nd.id), Txn: p.Txn.String()})
	}
	for _, n := range participants {
		nd.net.Send(transport.Message{From: nd.id, To: n, Payload: NCDecisionMsg{Txn: p.Txn, Commit: commit}})
	}
}

// handleNCDecision applies the 2PC outcome at a participant: on abort,
// restore before-images (in reverse order) and drop versions this
// transaction created; either way, increment the completion counter
// for every subtransaction executed here — atomically with the
// decision, per Section 5 step 6 — release the NC locks, and report.
func (nd *Node) handleNCDecision(p NCDecisionMsg) {
	nd.ncMu.Lock()
	st := nd.ncPart[p.Txn]
	delete(nd.ncPart, p.Txn)
	nd.ncMu.Unlock()
	if st == nil {
		nd.violate("node %v: NC decision for unknown txn %v", nd.id, p.Txn)
		return
	}
	if !p.Commit {
		nd.metMu.Lock()
		nd.metrics.NCAborts++
		nd.metMu.Unlock()
		for i := len(st.execs) - 1; i >= 0; i-- {
			ex := st.execs[i]
			for j := len(ex.undo) - 1; j >= 0; j-- {
				u := ex.undo[j]
				if u.prev == nil {
					nd.store.Restore(u.key, u.ver, nil, true)
				} else {
					nd.store.Restore(u.key, u.ver, u.prev, false)
				}
			}
		}
	}
	for _, ex := range st.execs {
		// root=false: NC3V is cluster-local (rejected in distributed
		// mode), so handles here are never root-only.
		nd.obs.onDone(p.Txn, nd.id, ex.reads, !p.Commit, false)
		nd.cnts[0].IncC(ex.ver, ex.source)
	}
	nd.lm.ReleaseAll(p.Txn)
}
