// Distributed-mode tests: three core.Clusters in one test process,
// wired together over real TCP loopback exactly as three node
// processes would be. External test package because tcpnet depends on
// the wire codec, which depends on core's message types.
package core_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport/reliable"
	"repro/internal/transport/tcpnet"
)

// distKeys assigns one preloaded item per node, as in the paper's
// example layout.
var distKeys = [3]string{"A", "D", "F"}

// newDistributedClusters builds and starts three single-node clusters
// over TCP: process i hosts node i, process 0 also hosts the
// advancement coordinator (endpoint 3). The tcpnet networks are
// returned too so tests can kill connections out from under the
// reliable layer.
func newDistributedClusters(t *testing.T) ([3]*core.Cluster, [3]*tcpnet.Net) {
	t.Helper()
	const nodes = 3
	var listeners [nodes]net.Listener
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
	}
	var clusters [nodes]*core.Cluster
	var nets [nodes]*tcpnet.Net
	for i := 0; i < nodes; i++ {
		local := []model.NodeID{model.NodeID(i)}
		if i == 0 {
			local = append(local, model.NodeID(nodes)) // coordinator endpoint
		}
		peers := make(map[model.NodeID]string)
		for j := 0; j < nodes; j++ {
			if j != i {
				peers[model.NodeID(j)] = listeners[j].Addr().String()
			}
		}
		if i != 0 {
			peers[model.NodeID(nodes)] = listeners[0].Addr().String()
		}
		nw, err := tcpnet.New(tcpnet.Config{
			Local:        local,
			Peers:        peers,
			Listener:     listeners[i],
			ReconnectMin: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.NewCluster(core.Config{
			Nodes:            nodes,
			LocalNodes:       []int{i},
			LocalCoordinator: i == 0,
			Transport:        nw,
			Reliable:         true,
			ReliableConfig: reliable.Config{
				RetransmitInterval: 10 * time.Millisecond,
				MaxBackoff:         100 * time.Millisecond,
			},
			AckTimeout:     20 * time.Second,
			ResendInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		c.Preload(model.NodeID(i), distKeys[i], rec)
		clusters[i] = c
		nets[i] = nw
	}
	for _, c := range clusters {
		c.Start()
		t.Cleanup(c.Close)
	}
	return clusters, nets
}

// distWorkload submits per-process commuting update trees (+1 on the
// local key at the root, +1 on each remote key via children) and waits
// for every root-only handle.
func distWorkload(t *testing.T, clusters [3]*core.Cluster, txns int, eachTxn func(i, n int)) {
	t.Helper()
	var handles []*core.Handle
	for i, c := range clusters {
		for n := 0; n < txns; n++ {
			root := &model.SubtxnSpec{
				Node:    model.NodeID(i),
				Updates: []model.KeyOp{{Key: distKeys[i], Op: model.AddOp{Field: "bal", Delta: 1}}},
			}
			for j := range clusters {
				if j != i {
					root.Children = append(root.Children, &model.SubtxnSpec{
						Node:    model.NodeID(j),
						Updates: []model.KeyOp{{Key: distKeys[j], Op: model.AddOp{Field: "bal", Delta: 1}}},
					})
				}
			}
			h, err := c.Submit(&model.TxnSpec{Label: fmt.Sprintf("p%d-%d", i, n), Root: root})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
			if eachTxn != nil {
				eachTxn(i, n)
			}
		}
	}
	for _, h := range handles {
		if !h.WaitTimeout(20 * time.Second) {
			t.Fatalf("transaction %v did not complete", h.ID)
		}
	}
}

// distReadBal reads key through a read-only transaction rooted at the
// hosting process (the only place it can be submitted).
func distReadBal(t *testing.T, c *core.Cluster, node model.NodeID, key string) int64 {
	t.Helper()
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: node, Reads: []string{key}}})
	if err != nil {
		t.Fatal(err)
	}
	if !h.WaitTimeout(20 * time.Second) {
		t.Fatalf("read at node %d did not complete", node)
	}
	reads := h.Reads()
	if len(reads) != 1 {
		t.Fatalf("read returned %d results", len(reads))
	}
	return reads[0].Record.Field("bal")
}

func TestDistributedClusterConvergesOverTCP(t *testing.T) {
	clusters, _ := newDistributedClusters(t)
	const txns = 8
	distWorkload(t, clusters, txns, nil)

	// Advancement runs from the coordinator process; its quiescence
	// polls are what wait out remote subtransactions still in flight.
	rep := clusters[0].Advance()
	if rep.Err != nil {
		t.Fatalf("advancement failed: %v", rep.Err)
	}
	if rep.NewVR != 1 || rep.NewVU != 2 {
		t.Fatalf("advancement installed vr=%d vu=%d, want 1/2", rep.NewVR, rep.NewVU)
	}

	// Every node received txns adds from each of the three processes.
	const want = 3 * txns
	for i, c := range clusters {
		if got := distReadBal(t, c, model.NodeID(i), distKeys[i]); got != want {
			t.Errorf("node %d: bal %d, want %d", i, got, want)
		}
	}
	for i, c := range clusters {
		if v := c.Violations(); len(v) > 0 {
			t.Errorf("process %d violations: %v", i, v)
		}
		if errs := c.ConvergenceErrors(); len(errs) > 0 {
			t.Errorf("process %d convergence: %v", i, errs)
		}
	}
}

func TestDistributedClusterSurvivesConnectionKills(t *testing.T) {
	clusters, nets := newDistributedClusters(t)
	const txns = 12
	distWorkload(t, clusters, txns, func(i, n int) {
		// Kill every live TCP connection mid-workload; the reliable
		// session layer must heal the gap by retransmission. Wait for
		// cross-process traffic first so the kill hits live connections.
		if n == txns/2 {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) && nets[i].Stats().FramesSent == 0 {
				time.Sleep(time.Millisecond)
			}
			for _, nw := range nets {
				nw.KillConnections()
			}
		}
	})
	rep := clusters[0].Advance()
	if rep.Err != nil {
		t.Fatalf("advancement failed after connection kills: %v", rep.Err)
	}
	const want = 3 * txns
	for i, c := range clusters {
		if got := distReadBal(t, c, model.NodeID(i), distKeys[i]); got != want {
			t.Errorf("node %d: bal %d, want %d", i, got, want)
		}
	}
	reconnects := int64(0)
	for _, nw := range nets {
		reconnects += nw.Stats().Reconnects
	}
	if reconnects == 0 {
		t.Error("expected reconnects after KillConnections")
	}
}

func TestDistributedModeValidation(t *testing.T) {
	if _, err := core.NewCluster(core.Config{Nodes: 3, LocalNodes: []int{0}}); err == nil {
		t.Error("distributed mode without Transport accepted")
	}
	nw, err := tcpnet.New(tcpnet.Config{
		Local: []model.NodeID{0, 3},
		Listener: func() net.Listener {
			l, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				t.Fatal(lerr)
			}
			return l
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := core.NewCluster(core.Config{Nodes: 3, LocalNodes: []int{0}, NCMode: true, Transport: nw}); err == nil {
		t.Error("distributed NCMode accepted")
	}
	if _, err := core.NewCluster(core.Config{Nodes: 3, LocalNodes: []int{0, 0}, Transport: nw}); err == nil {
		t.Error("duplicate LocalNodes accepted")
	}
	if _, err := core.NewCluster(core.Config{Nodes: 3, LocalNodes: []int{7}, Transport: nw}); err == nil {
		t.Error("out-of-range LocalNodes accepted")
	}

	c, err := core.NewCluster(core.Config{Nodes: 3, LocalNodes: []int{0}, Transport: nw})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: only validation-level behaviour is exercised.
	if _, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 1, Reads: []string{"D"}}}); err == nil {
		t.Error("submit with remote root accepted")
	}
	if rep := c.Advance(); !errors.Is(rep.Err, core.ErrNoCoordinator) {
		t.Errorf("Advance without coordinator: err %v, want ErrNoCoordinator", rep.Err)
	}
	if c.Coordinator() != nil {
		t.Error("Coordinator() non-nil in a coordinator-less process")
	}
	if c.Node(1) != nil {
		t.Error("Node(1) non-nil for a remote node")
	}
}
