package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/storage"
)

// ClusterSnapshot is a serializable image of a quiesced cluster: every
// node's versioned store plus the version numbers and the transaction
// sequence counter. It supports backup/restore of a data recording
// system between runs (the paper's systems are operational databases;
// durability is a substrate the paper takes as given).
//
// A snapshot is only meaningful when taken at quiescence — no
// in-flight transactions and no advancement running. ExportSnapshot
// verifies the observable part of that condition (all request and
// completion counters balanced, version numbers uniform) and refuses
// otherwise; in-flight client handles cannot be saved in any case.
type ClusterSnapshot struct {
	Nodes  int
	VR, VU model.Version
	Seq    uint64
	Stores [][]storage.ExportedItem
}

// ExportSnapshot captures the cluster state. It fails if the cluster is
// visibly not quiescent (unbalanced counters or version disagreement).
func (c *Cluster) ExportSnapshot() (*ClusterSnapshot, error) {
	// Client-side check: every submitted transaction must have
	// completed (a just-submitted root may not have touched any counter
	// yet, so the counter check below cannot see it).
	pending := 0
	c.handles.Range(func(_, v any) bool {
		if v.(*Handle).Status() == StatusPending {
			pending++
		}
		return true
	})
	if pending > 0 {
		return nil, fmt.Errorf("core: snapshot refused: %d transactions still in flight", pending)
	}
	if c.distributed {
		return nil, fmt.Errorf("core: snapshots require a single-process cluster")
	}
	if c.nparts > 1 {
		return nil, fmt.Errorf("core: snapshots require an unpartitioned cluster (the format carries one version pair)")
	}
	snap := &ClusterSnapshot{Nodes: len(c.nodes), Seq: c.seq.Load()}
	vrRef, vuRef := c.nodes[0].Versions()
	for i, nd := range c.nodes {
		vr, vu := nd.Versions()
		if vr != vrRef || vu != vuRef {
			return nil, fmt.Errorf("core: snapshot refused: node %d at vr=%d/vu=%d, node 0 at vr=%d/vu=%d (advancement in flight?)",
				i, vr, vu, vrRef, vuRef)
		}
	}
	// Counter balance check: for every active version anywhere in the
	// cluster, everything sent from p to q must have completed at q.
	versions := make(map[model.Version]bool)
	for _, nd := range c.nodes {
		for _, v := range nd.Counters().Versions() {
			versions[v] = true
		}
	}
	for v := range versions {
		for p := range c.nodes {
			for q := range c.nodes {
				r := c.nodes[p].Counters().R(v, model.NodeID(q))
				cc := c.nodes[q].Counters().C(v, model.NodeID(p))
				if r != cc {
					return nil, fmt.Errorf("core: snapshot refused: version %d has R[%d][%d]=%d but C=%d (transactions in flight)",
						v, p, q, r, cc)
				}
			}
		}
	}
	snap.VR, snap.VU = vrRef, vuRef
	for _, nd := range c.nodes {
		snap.Stores = append(snap.Stores, nd.store.Export())
	}
	return snap, nil
}

// RestoreSnapshot installs a snapshot into a freshly built (not yet
// used) cluster of the same size. Call before submitting transactions;
// typically immediately after NewCluster and before/after Start.
func (c *Cluster) RestoreSnapshot(s *ClusterSnapshot) error {
	if c.distributed {
		return fmt.Errorf("core: snapshots require a single-process cluster")
	}
	if c.nparts > 1 {
		return fmt.Errorf("core: snapshots require an unpartitioned cluster (the format carries one version pair)")
	}
	if s.Nodes != len(c.nodes) {
		return fmt.Errorf("core: snapshot is for %d nodes, cluster has %d", s.Nodes, len(c.nodes))
	}
	if s.VU != s.VR+1 {
		return fmt.Errorf("core: snapshot has vu=%d vr=%d; expected vu == vr+1", s.VU, s.VR)
	}
	for i, nd := range c.nodes {
		nd.store.Import(s.Stores[i])
		nd.verMu.Lock()
		nd.pv[0] = verPair{vu: s.VU, vr: s.VR}
		nd.verMu.Unlock()
		nd.cnts[0].EnsureVersion(s.VR)
		nd.cnts[0].EnsureVersion(s.VU)
	}
	coord := c.currentCoordinator()
	cp := coord.parts[0]
	cp.advMu.Lock()
	cp.vr, cp.vu = s.VR, s.VU
	cp.advMu.Unlock()
	c.seq.Store(s.Seq)
	return nil
}
