package core
