package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

func TestRecoverOnCleanCluster(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Advance() // one clean cycle: vr=1, vu=2
	fresh := c.CrashCoordinator()
	rep, err := fresh.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed {
		t.Error("Recover resumed a cycle on a clean cluster")
	}
	if rep.VR != 1 || rep.VU != 2 {
		t.Errorf("recovered state vr=%d vu=%d, want 1/2", rep.VR, rep.VU)
	}
	// The fresh coordinator can run new cycles.
	adv := c.Advance()
	if adv.Interrupted || adv.NewVR != 2 {
		t.Errorf("post-recovery advancement: %+v", adv)
	}
}

func TestRecoverFinishesInterruptedCycle(t *testing.T) {
	// Use a scripted transport to freeze an advancement mid-Phase-1:
	// deliver the start-advancement notice to only one node, then crash
	// the coordinator. The successor must finish the cycle.
	script := transport.NewScript(4)
	c, err := NewCluster(Config{Nodes: 3, Transport: script, SyncExec: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := model.NewRecord()
	rec.Fields["bal"] = 0
	c.Preload(0, "A", rec)
	c.Start()
	defer c.Close()

	// An update that must survive the interrupted advancement.
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{{Key: "A", Op: model.AddOp{Field: "bal", Delta: 9}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	script.DeliverAll()
	if !h.WaitTimeout(5 * time.Second) {
		t.Fatal("update did not complete")
	}

	advDone := c.AdvanceAsync()
	// Wait for the three Phase 1 notices to be parked, deliver ONE.
	deadline := time.Now().Add(5 * time.Second)
	for script.CountWhere(func(m transport.Message) bool {
		_, ok := m.Payload.(StartAdvancementMsg)
		return ok
	}) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("phase 1 notices never sent")
		}
		time.Sleep(time.Millisecond)
	}
	script.DeliverWhere(func(m transport.Message) bool {
		_, ok := m.Payload.(StartAdvancementMsg)
		return ok && m.To == 1
	})
	vr1, vu1 := c.Node(1).Versions()
	if vu1 != 2 || vr1 != 0 {
		t.Fatalf("node q not advanced: vr=%d vu=%d", vr1, vu1)
	}

	// Crash the coordinator mid-cycle.
	fresh := c.CrashCoordinator()
	rep := <-advDone
	if !rep.Interrupted {
		t.Fatal("in-flight advancement did not report interruption")
	}

	// Recover on the successor; pump the scripted network until done.
	type recResult struct {
		rep RecoveryReport
		err error
	}
	done := make(chan recResult, 1)
	go func() {
		r, err := fresh.Recover()
		done <- recResult{r, err}
	}()
	var rr recResult
	pumpDeadline := time.Now().Add(10 * time.Second)
	for {
		script.DeliverAll()
		select {
		case rr = <-done:
		default:
			if time.Now().After(pumpDeadline) {
				t.Fatal("recovery never completed")
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		break
	}
	if rr.err != nil {
		t.Fatal(rr.err)
	}
	if !rr.rep.Resumed {
		t.Error("Recover did not notice the interrupted cycle")
	}
	if rr.rep.VR != 1 || rr.rep.VU != 2 {
		t.Errorf("recovered to vr=%d vu=%d, want 1/2", rr.rep.VR, rr.rep.VU)
	}
	for i := 0; i < 3; i++ {
		vr, vu := c.Node(i).Versions()
		if vr != 1 || vu != 2 {
			t.Errorf("node %d at vr=%d vu=%d after recovery", i, vr, vu)
		}
	}

	// The pre-crash update is now visible to readers.
	q, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 0, Reads: []string{"A"}}})
	if err != nil {
		t.Fatal(err)
	}
	script.DeliverAll()
	if !q.WaitTimeout(5 * time.Second) {
		t.Fatal("post-recovery read did not complete")
	}
	reads := q.Reads()
	if len(reads) != 1 || reads[0].Record.Field("bal") != 9 || reads[0].VersionRead != 1 {
		t.Errorf("post-recovery read = %+v", reads)
	}
	if vio := c.Violations(); vio != nil {
		t.Errorf("violations: %v", vio)
	}
}

func TestRecoverAfterPhase3Interruption(t *testing.T) {
	// Freeze between Phase 3 and Phase 4: read versions switched on one
	// node only, GC never ran. The successor must finish Phase 3
	// everywhere and garbage-collect.
	script := transport.NewScript(4)
	c, err := NewCluster(Config{Nodes: 3, Transport: script, SyncExec: true, PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := model.NewRecord()
	c.Preload(0, "A", rec)
	c.Start()
	defer c.Close()

	advDone := c.AdvanceAsync()
	// Pump everything EXCEPT ReadVersion messages to node 2 and GC
	// messages, stopping once phase 3 has partially run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		script.DeliverWhere(func(m transport.Message) bool {
			switch m.Payload.(type) {
			case ReadVersionMsg:
				return m.To != 2
			case GCMsg:
				return false
			default:
				return true
			}
		})
		vr0, _ := c.Node(0).Versions()
		vr2, _ := c.Node(2).Versions()
		if vr0 == 1 && vr2 == 0 {
			break // the split state we want
		}
		if time.Now().After(deadline) {
			t.Fatal("never reached the split phase-3 state")
		}
		time.Sleep(100 * time.Microsecond)
	}

	fresh := c.CrashCoordinator()
	rep := <-advDone
	if !rep.Interrupted {
		t.Fatal("advancement not interrupted")
	}

	done := make(chan error, 1)
	go func() {
		r, err := fresh.Recover()
		if err == nil && (!r.Resumed || r.VR != 1 || r.VU != 2) {
			t.Errorf("recovery report %+v", r)
		}
		done <- err
	}()
	pumpDeadline := time.Now().Add(10 * time.Second)
	for {
		script.DeliverAll()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		default:
			if time.Now().After(pumpDeadline) {
				t.Fatal("recovery never completed")
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		break
	}
	for i := 0; i < 3; i++ {
		vr, vu := c.Node(i).Versions()
		if vr != 1 || vu != 2 {
			t.Errorf("node %d at vr=%d vu=%d after recovery", i, vr, vu)
		}
	}
	// GC ran: item A (never updated) was renumbered to version 1.
	if vs := c.Node(0).Store().LiveVersions("A"); len(vs) != 1 || vs[0] != 1 {
		t.Errorf("A versions after recovery GC = %v, want [1]", vs)
	}
}

func TestCrashedCoordinatorReportsInterrupted(t *testing.T) {
	// Crashing with no cycle in flight must be harmless, and a new
	// advancement through the cluster goes to the fresh coordinator.
	c := newTestCluster(t, Config{})
	fresh := c.CrashCoordinator()
	if _, err := fresh.Recover(); err != nil {
		t.Fatal(err)
	}
	rep := c.Advance()
	if rep.Interrupted || rep.NewVR != 1 {
		t.Errorf("advancement after idle crash: %+v", rep)
	}
}
