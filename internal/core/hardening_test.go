package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// The paper assumes a reliable network, so the seed coordinator waited
// forever on lost acknowledgements. These tests cover the hardening:
// bounded waits surfacing ErrTimeout, re-broadcast repairing scripted
// losses, and Cluster.Close unblocking a wedged advancement.

func TestAdvanceTimesOutOnSilentNodes(t *testing.T) {
	// A scripted transport that never delivers anything is the limit
	// case of a lossy network: without AckTimeout the advancement would
	// block forever on Phase 1 acks.
	script := transport.NewScript(3)
	c, err := NewCluster(Config{Nodes: 2, Transport: script, SyncExec: true, AckTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	done := make(chan AdvanceReport, 1)
	go func() { done <- c.Advance() }()
	select {
	case rep := <-done:
		if !rep.Interrupted {
			t.Fatalf("advancement completed with no message delivery: %+v", rep)
		}
		if !errors.Is(rep.Err, ErrTimeout) {
			t.Fatalf("Err = %v, want ErrTimeout", rep.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Advance still blocked long after AckTimeout")
	}
	// The versions must be untouched by the failed cycle.
	if vr, vu := c.Coordinator().Versions(); vr != 0 || vu != 1 {
		t.Fatalf("versions after failed cycle: vr=%d vu=%d, want 0/1", vr, vu)
	}
}

func TestCloseUnblocksWaitingAdvance(t *testing.T) {
	// No AckTimeout: the wait would be unbounded (the paper's
	// behaviour). Close must still unwind it with ErrClosed.
	script := transport.NewScript(3)
	c, err := NewCluster(Config{Nodes: 2, Transport: script, SyncExec: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	done := make(chan AdvanceReport, 1)
	go func() { done <- c.Advance() }()
	// Let the advancement park its Phase 1 broadcast and block.
	deadline := time.Now().Add(5 * time.Second)
	for script.PendingCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("Phase 1 notices never sent")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	select {
	case rep := <-done:
		if !rep.Interrupted || !errors.Is(rep.Err, ErrClosed) {
			t.Fatalf("report after Close: interrupted=%v err=%v, want ErrClosed", rep.Interrupted, rep.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the waiting advancement")
	}
}

func TestResendRepairsLostPhase1Notice(t *testing.T) {
	// Drop both Phase 1 notices outright; the coordinator's re-broadcast
	// must repair the loss and the cycle must complete.
	script := transport.NewScript(3)
	c, err := NewCluster(Config{
		Nodes: 2, Transport: script, SyncExec: true,
		PollInterval:   time.Millisecond,
		ResendInterval: 2 * time.Millisecond,
		AckTimeout:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	done := make(chan AdvanceReport, 1)
	go func() { done <- c.Advance() }()

	isStart := func(m transport.Message) bool { _, ok := m.Payload.(StartAdvancementMsg); return ok }
	deadline := time.Now().Add(5 * time.Second)
	for drops := 0; drops < 2; {
		if script.DropWhere(isStart) {
			drops++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("initial Phase 1 notices never appeared")
		}
		time.Sleep(time.Millisecond)
	}

	// From here on, deliver everything as it appears: the re-broadcast
	// supplies fresh copies of the dropped notices.
	for {
		select {
		case rep := <-done:
			if rep.Interrupted {
				t.Fatalf("advancement failed despite re-broadcast: %v", rep.Err)
			}
			if rep.NewVU != 2 || rep.NewVR != 1 {
				t.Fatalf("advanced to vu=%d vr=%d, want 2/1", rep.NewVU, rep.NewVR)
			}
			if c.Obs() != nil && c.Obs().Snapshot().Counters["coord_resends"] == 0 {
				t.Fatal("no re-broadcasts counted, yet the dropped notices were repaired")
			}
			return
		default:
			script.DeliverAll()
			if time.Now().After(deadline) {
				t.Fatal("advancement never completed")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestChaoticLossyClusterConverges(t *testing.T) {
	// End-to-end: a live lossy, duplicating network under the reliable
	// session layer. Every transaction must complete, advancement must
	// succeed, and the counters must balance afterwards.
	c, err := NewCluster(Config{
		Nodes:          3,
		Reliable:       true,
		ResendInterval: 5 * time.Millisecond,
		AckTimeout:     30 * time.Second,
		NetConfig: transport.Config{
			Jitter: 200 * time.Microsecond,
			Seed:   17,
			Faults: transport.Faults{Default: transport.LinkFaults{DropRate: 0.05, DupRate: 0.05}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for node, key := range map[model.NodeID]string{0: "A", 1: "B", 2: "C"} {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		c.Preload(node, key, rec)
	}
	c.Start()
	defer c.Close()

	var handles []*Handle
	for i := 0; i < 40; i++ {
		// A two-node tree so subtransactions actually cross the lossy
		// links.
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    model.NodeID(i % 3),
			Updates: []model.KeyOp{{Key: []string{"A", "B", "C"}[i%3], Op: model.AddOp{Field: "bal", Delta: 1}}},
			Children: []*model.SubtxnSpec{{
				Node:    model.NodeID((i + 1) % 3),
				Updates: []model.KeyOp{{Key: []string{"A", "B", "C"}[(i+1)%3], Op: model.AddOp{Field: "bal", Delta: 1}}},
			}},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("update lost on the lossy network despite the session layer")
		}
	}
	if rep := c.Advance(); rep.Interrupted {
		t.Fatalf("advancement failed: %v", rep.Err)
	}
	if rep := c.Advance(); rep.Interrupted {
		t.Fatalf("second advancement failed: %v", rep.Err)
	}
	if errs := c.ConvergenceErrors(); len(errs) != 0 {
		t.Fatalf("convergence errors: %v", errs)
	}
	st := c.Metrics().Transport
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("fault injection inactive (dropped=%d duplicated=%d); the test proved nothing", st.Dropped, st.Duplicated)
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions, yet messages were dropped")
	}
}
