package core

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// This file removes the advancement coordinator as a single point of
// failure. The paper (Section 4.3) assumes "a distributed mutual
// exclusion mechanism" keeps at most one advancement running and never
// discusses coordinator death; recovery.go already showed that a
// successor can finish any interrupted cycle from the nodes' observable
// state because every phase is an idempotent max-merge. What remained
// was detection and election, which this file supplies:
//
//   - every locally hosted node gets a FailoverManager owning
//     coordinator endpoint Nodes+id (node 0's manager owns the legacy
//     endpoint id Nodes);
//   - the active manager broadcasts CoordStateMsg heartbeats every
//     LeaseInterval, mirroring its term, (vr, vu) and current phase to
//     all standbys;
//   - a standby that hears nothing for LeaseTimeout plus an id-scaled
//     stagger (so the lowest live id deterministically moves first)
//     bumps the term, journals it through the node's TermJournal, and
//     re-drives the in-flight sweep via Coordinator.Recover — exactly
//     the idempotent ResendInterval path;
//   - terms are partitioned by proposer (term ≡ id+1 mod Nodes), so
//     two simultaneous takeovers can never mint the same term, and the
//     nodes' stale-term fencing (Node.observeTerm) deposes whichever
//     coordinator loses.
//
// Safety never depends on the lease: even two coordinators driving
// phases concurrently only exchange idempotent max-merges (DESIGN.md
// §5a item 8). The term layer adds liveness and determinism — a deposed
// coordinator stops quickly instead of re-driving a fenced-off sweep.

// FailoverConfig tunes coordinator failover (Config.Failover).
type FailoverConfig struct {
	// LeaseInterval is the active coordinator's heartbeat period;
	// 0 means 25ms.
	LeaseInterval time.Duration
	// LeaseTimeout is how long a standby tolerates heartbeat silence
	// before electing itself (plus an id-scaled stagger of one
	// LeaseInterval per id, so lower ids win ties); 0 means
	// 4×LeaseInterval.
	LeaseTimeout time.Duration
	// OnRoleChange, when set, observes this process's role flips:
	// active=true on takeover (with the new term), active=false on
	// demotion. Called outside manager locks; used for logging.
	OnRoleChange func(active bool, term uint64)
}

func (fc FailoverConfig) withDefaults() FailoverConfig {
	if fc.LeaseInterval <= 0 {
		fc.LeaseInterval = 25 * time.Millisecond
	}
	if fc.LeaseTimeout <= 0 {
		fc.LeaseTimeout = 4 * fc.LeaseInterval
	}
	return fc
}

// nextTerm returns the smallest term node id may propose that is
// strictly greater than maxSeen. Terms are partitioned by proposer —
// term ≡ id+1 (mod n) — so concurrent takeovers by different nodes
// always mint distinct, totally ordered terms.
func nextTerm(maxSeen uint64, id model.NodeID, n int) uint64 {
	k := maxSeen / uint64(n)
	t := k*uint64(n) + uint64(id) + 1
	if t <= maxSeen {
		t += uint64(n)
	}
	return t
}

// failoverSet is the cluster's collection of local managers.
type failoverSet struct {
	managers []*FailoverManager
}

// FailoverManager supervises one locally hosted node's claim on the
// coordinator role. At most one manager cluster-wide is active (holds a
// live Coordinator and heartbeats); the rest are standbys watching the
// lease through their co-located node's accepted heartbeats.
type FailoverManager struct {
	c    *Cluster
	node *Node
	ep   model.NodeID // this manager's coordinator endpoint: Nodes + node id
	cfg  FailoverConfig

	mu       sync.Mutex
	active   bool
	halted   bool // chaos-killed: never heartbeats or elects again
	stopped  bool
	term     uint64       // highest term this manager has minted or heard
	coord    *Coordinator // non-nil once this manager ever took over
	lastBeat time.Time    // last accepted heartbeat from another manager
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

func newFailoverManager(c *Cluster, nd *Node, cfg FailoverConfig) *FailoverManager {
	return &FailoverManager{
		c:      c,
		node:   nd,
		ep:     model.NodeID(c.cfg.Nodes + int(nd.id)),
		cfg:    cfg,
		stopCh: make(chan struct{}),
	}
}

// Endpoint returns the coordinator endpoint this manager owns.
func (m *FailoverManager) Endpoint() model.NodeID { return m.ep }

// handleEndpoint is the transport handler for the manager's coordinator
// endpoint: it dispatches to whatever coordinator the manager currently
// hosts (acks and replies keep folding into a demoted coordinator
// harmlessly; a manager that never took over drops the traffic).
func (m *FailoverManager) handleEndpoint(msg transport.Message) {
	m.mu.Lock()
	co := m.coord
	m.mu.Unlock()
	if co != nil {
		co.handleMessage(msg)
	}
}

// noteBeat is called by the co-located node for every heartbeat it
// accepted (stale terms were already fenced off in Node.handleMessage).
func (m *FailoverManager) noteBeat(p CoordStateMsg) {
	m.mu.Lock()
	if p.Coord != m.ep && p.Term >= m.term {
		m.lastBeat = time.Now()
	}
	if p.Term > m.term {
		m.term = p.Term
	}
	active := m.active
	co := m.coord
	m.mu.Unlock()
	if active && co != nil && p.Term > co.term {
		// Someone with a higher term is heartbeating: we lost.
		co.depose()
	}
}

// start launches the lease loop (Cluster.Start).
func (m *FailoverManager) start() {
	m.mu.Lock()
	if m.lastBeat.IsZero() {
		m.lastBeat = time.Now() // grace period before the first election
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.LeaseInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stopCh:
				return
			case <-t.C:
				m.tick()
			}
		}
	}()
}

func (m *FailoverManager) tick() {
	m.mu.Lock()
	if m.halted || m.stopped {
		m.mu.Unlock()
		return
	}
	if m.active {
		co, term := m.coord, m.term
		m.mu.Unlock()
		if co.isDeposed() {
			m.demote(co)
			return
		}
		m.heartbeat(co, term)
		return
	}
	last := m.lastBeat
	m.mu.Unlock()
	// Staggered expiry: node id i waits i extra lease intervals, so the
	// lowest live id deterministically claims the role first and its
	// takeover heartbeat renews everyone else's lease before their own
	// threshold passes.
	wait := m.cfg.LeaseTimeout + time.Duration(m.node.id)*m.cfg.LeaseInterval
	if time.Since(last) > wait {
		m.takeover()
	}
}

// heartbeat broadcasts the lease renewal and state mirror. VR/VU come
// from the co-located node (lock-free with respect to the sweep itself;
// Coordinator.Versions would block on advMu for the whole sweep).
func (m *FailoverManager) heartbeat(co *Coordinator, term uint64) {
	vr, vu := m.node.Versions()
	msg := CoordStateMsg{Term: term, Coord: m.ep, VR: vr, VU: vu, Phase: co.currentPhase()}
	for i := 0; i < m.c.cfg.Nodes; i++ {
		m.c.net.Send(transport.Message{From: m.ep, To: model.NodeID(i), Payload: msg})
	}
}

// takeover elects this manager: mint a term above everything seen,
// journal it, install a fresh coordinator at our endpoint, and resume
// the predecessor's sweep in the background (heartbeats flow from the
// lease loop while Recover probes and re-drives phases). Also the test
// hook for double-coordinator fencing: calling it on a standby while
// the incumbent is alive starts a second, higher-term coordinator.
func (m *FailoverManager) takeover() *Coordinator {
	m.mu.Lock()
	if m.active || m.halted || m.stopped {
		m.mu.Unlock()
		return nil
	}
	maxSeen := m.term
	if t := m.node.coordTerm.Load(); t > maxSeen {
		maxSeen = t
	}
	term := nextTerm(maxSeen, m.node.id, m.c.cfg.Nodes)
	cfg := &m.c.cfg
	co := newCoordinator(cfg.Nodes, m.c.nparts, m.c.net, cfg.PollInterval, cfg.AckTimeout, cfg.ResendInterval, m.c.reg)
	co.id = m.ep
	co.term = term
	co.batchedCounters = cfg.BatchedCounters
	co.phaseHook = m.c.getPhaseHook()
	m.term = term
	m.coord = co
	m.active = true
	m.lastBeat = time.Now()
	m.wg.Add(1)
	m.mu.Unlock()

	// Durable before driving any phase: a post-crash restart of this
	// process must not propose a term at or below this one.
	m.node.observeTermAll(term)
	m.c.reg.SetGauge(obs.GaugeCoordActive, 1)
	m.c.reg.Inc(obs.CtrTakeovers, 1)
	m.c.reg.RecordEvent(obs.Event{Kind: obs.EvTakeover, Node: int(m.node.id),
		Detail: "coordinator takeover, term " + itoa(term)})
	if f := m.cfg.OnRoleChange; f != nil {
		f(true, term)
	}
	m.heartbeat(co, term) // announce immediately; renews standbys' leases

	go func() {
		defer m.wg.Done()
		if _, err := co.Recover(); err != nil {
			// Deposed, closed, or crashed mid-recovery: relinquish the
			// role. A later tick may elect us again if the lease lapses.
			m.demote(co)
		}
	}()
	return co
}

// demote drops the active role for coordinator co (no-op if another
// takeover already replaced it).
func (m *FailoverManager) demote(co *Coordinator) {
	m.mu.Lock()
	if m.coord != co || !m.active {
		m.mu.Unlock()
		return
	}
	m.active = false
	m.lastBeat = time.Now() // full lease before trying to re-elect
	term := m.term
	m.mu.Unlock()
	m.c.reg.SetGauge(obs.GaugeCoordActive, 0)
	if f := m.cfg.OnRoleChange; f != nil {
		f(false, term)
	}
}

// kill chaos-crashes this manager: its coordinator dies mid-sweep (any
// in-flight RunAdvancement/Recover unwinds with ErrCrashed) and the
// manager is permanently out of the election — the in-process stand-in
// for kill -9 of the coordinator's host.
func (m *FailoverManager) kill() (term uint64, wasActive bool) {
	m.mu.Lock()
	co := m.coord
	wasActive = m.active
	term = m.term
	m.halted = true
	m.active = false
	m.mu.Unlock()
	m.c.reg.SetGauge(obs.GaugeCoordActive, 0)
	if co != nil {
		co.crash()
	}
	return term, wasActive
}

// stop shuts the manager down (Cluster.Close): the lease loop exits,
// any hosted coordinator's waits unwind with ErrClosed, and stop blocks
// until the background recovery goroutine (if any) has unwound — so
// Close never leaks a takeover that would double-run a sweep.
func (m *FailoverManager) stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	co := m.coord
	close(m.stopCh)
	m.mu.Unlock()
	if co != nil {
		co.shutdown()
	}
	m.wg.Wait()
}

// snapshot returns the manager's role and term for status surfaces.
func (m *FailoverManager) snapshot() (active bool, term uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active, m.term
}

// promoteInitial makes this manager the cluster's starting coordinator
// without an election (NewCluster: node 0 in-process, or the process
// started with the active role in distributed mode). The minted term
// sits above any durably recovered one, so a restarted ex-coordinator
// rejoining as active cannot reuse a fenced term.
func (m *FailoverManager) promoteInitial() {
	m.mu.Lock()
	maxSeen := m.node.coordTerm.Load()
	term := nextTerm(maxSeen, m.node.id, m.c.cfg.Nodes)
	cfg := &m.c.cfg
	co := newCoordinator(cfg.Nodes, m.c.nparts, m.c.net, cfg.PollInterval, cfg.AckTimeout, cfg.ResendInterval, m.c.reg)
	co.id = m.ep
	co.term = term
	co.batchedCounters = cfg.BatchedCounters
	m.term = term
	m.coord = co
	m.active = true
	m.lastBeat = time.Now()
	m.mu.Unlock()
	m.node.observeTermAll(term)
	m.c.reg.SetGauge(obs.GaugeCoordActive, 1)
}

// itoa is strconv.Itoa for uint64 without pulling fmt into the hot path.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
