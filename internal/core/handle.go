package core

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// Status is the outcome of a transaction as observed by its handle.
type Status int

// Handle outcomes.
const (
	// StatusPending: subtransactions are still in flight.
	StatusPending Status = iota
	// StatusCommitted: every subtransaction terminated normally.
	StatusCommitted
	// StatusCompensated: at least one subtransaction aborted; the tree
	// (including compensators) has fully terminated and all effects of
	// the aborted branches were compensated away.
	StatusCompensated
	// StatusAborted: an NC3V transaction was globally aborted by
	// two-phase commit; no effects remain.
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusCommitted:
		return "committed"
	case StatusCompensated:
		return "compensated"
	case StatusAborted:
		return "aborted"
	}
	return "unknown"
}

// Handle is the client-side observer of one submitted transaction. It
// is pure instrumentation: the protocol never waits on it, and it never
// delays a subtransaction. Completion is detected by balancing
// "subtransactions spawned" against "subtransactions terminated" —
// the client-local analogue of the paper's request/completion counters.
type Handle struct {
	ID model.TxnID

	mu        sync.Mutex
	expected  int
	done      int
	aborts    int
	ncAborted bool
	version   model.Version
	verSet    bool
	reads     []model.ReadResult
	nodes     map[model.NodeID]bool
	completed chan struct{}
	closed    bool
	submitted time.Time
	finished  time.Time
	// needsUnlock marks well-behaved update transactions in NC3V mode,
	// whose commute locks must be released by the asynchronous clean-up
	// once the tree completes. takeUnlock consumes the flag so clean-up
	// fires exactly once.
	needsUnlock bool
	// isUpdate marks update (non-read-only) transactions; counted marks
	// that the cluster already tallied this handle's commit.
	isUpdate bool
	counted  bool
	// rootOnly (distributed mode) completes the handle when the root
	// subtransaction terminates: descendants may execute in other
	// processes, whose terminations this process never observes. Spawn
	// notifications are ignored and expected stays at 1, mirroring the
	// paper's guarantee that no user transaction waits on remote
	// activity.
	rootOnly bool
	// tc is the trace context minted at submission when this transaction
	// was head-sampled; the zero value means untraced. Immutable after
	// Submit publishes the handle.
	tc obs.TraceContext
}

// markCounted flags the handle as tallied; it returns true at most once.
func (h *Handle) markCounted() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counted {
		return false
	}
	h.counted = true
	return true
}

// takeUnlock consumes the clean-up obligation; it returns true at most
// once per handle.
func (h *Handle) takeUnlock() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.needsUnlock {
		h.needsUnlock = false
		return true
	}
	return false
}

func newHandle(id model.TxnID) *Handle {
	return &Handle{
		ID:        id,
		nodes:     make(map[model.NodeID]bool),
		completed: make(chan struct{}),
		submitted: time.Now(),
	}
}

// addExpected notes that n more subtransactions will terminate. Called
// before the corresponding messages are sent, so done can never catch
// up with expected while work remains.
func (h *Handle) addExpected(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expected += n
}

// reportDone records the termination of one subtransaction at node,
// along with its read results and whether it aborted. It reports
// whether this call completed the whole tree (true exactly once per
// handle), which is the edge the cluster's instrumentation keys off.
func (h *Handle) reportDone(node model.NodeID, reads []model.ReadResult, aborted bool) (completed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done++
	h.nodes[node] = true
	h.reads = append(h.reads, reads...)
	if aborted {
		h.aborts++
	}
	wasClosed := h.closed
	h.maybeComplete()
	return h.closed && !wasClosed
}

// reportVersion records the version the root assigned to the tree.
func (h *Handle) reportVersion(v model.Version) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.version = v
	h.verSet = true
}

// reportNCAbort records that 2PC decided abort for this NC transaction.
func (h *Handle) reportNCAbort() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ncAborted = true
}

func (h *Handle) maybeComplete() {
	if !h.closed && h.expected > 0 && h.done == h.expected {
		h.closed = true
		h.finished = time.Now()
		close(h.completed)
	}
}

// Done returns a channel closed when the whole tree (including any
// compensating subtransactions) has terminated everywhere.
func (h *Handle) Done() <-chan struct{} { return h.completed }

// Wait blocks until completion.
func (h *Handle) Wait() { <-h.completed }

// WaitTimeout blocks up to d; it reports whether the transaction
// completed in time. The fast path avoids arming a timer at all — in
// batched submission a group's later members are usually already done
// by the time the waiter reaches them — and the slow path stops its
// timer on completion rather than leaving a long-deadline entry in the
// runtime timer heap per call (at tens of thousands of waits per
// second that churn was visible in profiles).
func (h *Handle) WaitTimeout(d time.Duration) bool {
	select {
	case <-h.completed:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-h.completed:
		return true
	case <-t.C:
		return false
	}
}

// Status returns the current outcome.
func (h *Handle) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		return StatusPending
	}
	if h.ncAborted {
		return StatusAborted
	}
	if h.aborts > 0 {
		return StatusCompensated
	}
	return StatusCommitted
}

// Version returns the version number assigned to the transaction by
// its root subtransaction; ok is false if the root has not executed
// yet.
func (h *Handle) Version() (v model.Version, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.version, h.verSet
}

// Reads returns the read results reported so far. For a completed
// read-only transaction this is the full, globally consistent result
// set (Theorem 4.1).
func (h *Handle) Reads() []model.ReadResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.ReadResult, len(h.reads))
	copy(out, h.reads)
	return out
}

// Nodes returns the set of nodes the tree actually executed on.
func (h *Handle) Nodes() []model.NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]model.NodeID, 0, len(h.nodes))
	for n := range h.nodes {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Latency returns the wall-clock time from submission to completion;
// valid only after completion (zero otherwise).
func (h *Handle) Latency() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		return 0
	}
	return h.finished.Sub(h.submitted)
}
