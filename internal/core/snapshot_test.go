package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

func TestExportSnapshotQuiesced(t *testing.T) {
	c := newTestCluster(t, Config{})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{addOp("A", 4)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 6)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	c.Advance()
	snap, err := c.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Nodes != 3 || snap.VR != 1 || snap.VU != 2 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if snap.Seq == 0 {
		t.Error("sequence not captured")
	}
	// Item A at node 0 must be present at version 1 with bal=4.
	found := false
	for _, item := range snap.Stores[0] {
		if item.Key == "A" {
			found = true
			if len(item.Versions) != 1 || item.Versions[0].Ver != 1 || item.Versions[0].Rec.Field("bal") != 4 {
				t.Errorf("A exported as %+v", item.Versions)
			}
		}
	}
	if !found {
		t.Error("A missing from export")
	}
}

func TestRestoreSnapshotIntoFreshCluster(t *testing.T) {
	src := newTestCluster(t, Config{})
	h, err := src.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 9)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	src.Advance()
	snap, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	dst := newTestCluster(t, Config{})
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if bal, ver := readBal(t, dst, 0, "A"); bal != 9 || ver != 1 {
		t.Errorf("restored A = %d@v%d, want 9@v1", bal, ver)
	}
	// The restored cluster advances from where the source left off.
	rep := dst.Advance()
	if rep.NewVR != 2 || rep.NewVU != 3 {
		t.Errorf("post-restore advancement = %+v", rep)
	}
	// Transaction ids continue past the source's sequence (no reuse).
	h2, err := dst.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if h2.ID.Seq() <= snap.Seq {
		t.Errorf("restored cluster reused sequence %d ≤ %d", h2.ID.Seq(), snap.Seq)
	}
	waitHandle(t, h2)
}

func TestExportSnapshotRefusals(t *testing.T) {
	// In-flight transaction (never delivered on a scripted net).
	script := transport.NewScript(3)
	c, err := NewCluster(Config{Nodes: 2, Transport: script, SyncExec: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()
	if _, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node: 0, Updates: []model.KeyOp{addOp("A", 1)},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExportSnapshot(); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Errorf("in-flight snapshot err = %v", err)
	}
	script.DeliverAll()

	// Version disagreement (mid-advancement).
	advDone := c.AdvanceAsync()
	deadline := time.Now().Add(5 * time.Second)
	for script.CountWhere(func(m transport.Message) bool {
		_, ok := m.Payload.(StartAdvancementMsg)
		return ok
	}) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("advancement notices never parked")
		}
		time.Sleep(time.Millisecond)
	}
	script.DeliverWhere(func(m transport.Message) bool {
		_, ok := m.Payload.(StartAdvancementMsg)
		return ok && m.To == 0
	})
	if _, err := c.ExportSnapshot(); err == nil {
		t.Error("split-version snapshot accepted")
	}
	// Finish the advancement so the cluster closes cleanly.
	for {
		script.DeliverAll()
		select {
		case <-advDone:
			return
		default:
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func TestRestoreSnapshotValidation(t *testing.T) {
	c := newTestCluster(t, Config{})
	if err := c.RestoreSnapshot(&ClusterSnapshot{Nodes: 7, VR: 0, VU: 1}); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if err := c.RestoreSnapshot(&ClusterSnapshot{Nodes: 3, VR: 0, VU: 2}); err == nil {
		t.Error("vu != vr+1 accepted")
	}
}
