package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// These tests cover the coordinator-failover layer: terms fence stale
// coordinators, Close unwinds a takeover instead of deadlocking, and
// two live coordinators with overlapping terms can never regress the
// cluster's versions (the idempotent max-merge argument of DESIGN.md
// §5a item 8, exercised for real under -race and a lossy network).

func TestNextTermPartitionsProposers(t *testing.T) {
	const n = 3
	// Any two nodes proposing after the same observed maximum must mint
	// distinct terms, and every proposal must be strictly above it.
	for maxSeen := uint64(0); maxSeen < 20; maxSeen++ {
		minted := map[uint64]model.NodeID{}
		for id := model.NodeID(0); id < n; id++ {
			term := nextTerm(maxSeen, id, n)
			if term <= maxSeen {
				t.Fatalf("nextTerm(%d, %d, %d) = %d, not above maxSeen", maxSeen, id, n, term)
			}
			if term%n != uint64(id+1)%n {
				t.Fatalf("nextTerm(%d, %d, %d) = %d, breaks proposer partitioning", maxSeen, id, n, term)
			}
			if prev, dup := minted[term]; dup {
				t.Fatalf("nodes %d and %d both minted term %d after maxSeen %d", prev, id, term, maxSeen)
			}
			minted[term] = id
		}
	}
}

func TestStaleTermCoordinatorIsFenced(t *testing.T) {
	// A node that has fenced term 5 must reject a positive lower term
	// (counting the rejection) and keep accepting term 0 (unfenced
	// legacy traffic) and the current term.
	script := transport.NewScript(3)
	c, err := NewCluster(Config{Nodes: 2, Transport: script, SyncExec: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	nd := c.Node(0)
	if !nd.observeTerm(0, 5) {
		t.Fatal("first observation of term 5 rejected")
	}
	if nd.observeTerm(0, 3) {
		t.Fatal("term 3 accepted after term 5 was fenced")
	}
	if !nd.observeTerm(0, 0) || !nd.observeTerm(0, 5) {
		t.Fatal("term 0 (legacy) and the current term must stay accepted")
	}

	// A fenced Phase 1 notice is dropped: no ack, no version change,
	// and a StaleTermMsg goes back to the sender.
	nd.handleMessage(transport.Message{From: 1, To: 0, Payload: StartAdvancementMsg{NewVU: 7, Term: 3}})
	if _, vu := nd.Versions(); vu != 1 {
		t.Fatalf("stale-term notice advanced vu to %d", vu)
	}
	found := script.DeliverWhere(func(m transport.Message) bool {
		p, ok := m.Payload.(StaleTermMsg)
		return ok && m.To == 1 && p.Term == 5
	})
	if !found {
		t.Fatalf("no StaleTermMsg carrying the fenced term went back: %v", script.Pending())
	}
	if rej := c.ObsSnapshot().Counters["stale_term_rejects"]; rej != 1 {
		t.Fatalf("stale_term_rejects = %d, want 1", rej)
	}
}

func TestCloseUnwindsRacingTakeover(t *testing.T) {
	// A failover cluster on a scripted transport that delivers nothing:
	// heartbeats never arrive, so a standby elects itself and its
	// Recover blocks forever on undelivered version probes (no
	// AckTimeout — the paper's unbounded wait). Close must unwind that
	// in-flight takeover with ErrClosed, not deadlock on it.
	script := transport.NewScript(4) // 2 nodes + 2 coordinator endpoints
	c, err := NewCluster(Config{
		Nodes: 2, Transport: script, SyncExec: true, Failover: true,
		FailoverConfig: FailoverConfig{LeaseInterval: 2 * time.Millisecond, LeaseTimeout: 6 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	deadline := time.Now().Add(5 * time.Second)
	for c.ObsSnapshot().Counters["takeovers"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("standby never started a takeover")
		}
		time.Sleep(time.Millisecond)
	}
	// The blocked Recover must not have advanced anything.
	if vr, vu := c.Node(0).Versions(); vr != 0 || vu != 1 {
		t.Fatalf("takeover advanced versions with no delivery: vr=%d vu=%d", vr, vu)
	}

	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against the in-flight takeover")
	}
}

func TestOverlappingCoordinatorTermsNeverRegress(t *testing.T) {
	// The §5a item 8 property test: start a second coordinator under a
	// higher term while the incumbent is mid-sweep, on a lossy
	// duplicating network. Counters and versions must never regress at
	// any node, the incumbent must finish or unwind with ErrStaleTerm,
	// and the cluster must converge.
	c, err := NewCluster(Config{
		Nodes:          3,
		Reliable:       true,
		Failover:       true,
		ResendInterval: 5 * time.Millisecond,
		AckTimeout:     30 * time.Second,
		FailoverConfig: FailoverConfig{
			// A long lease keeps elections out of the picture: the only
			// second coordinator is the one this test starts by hand.
			LeaseInterval: 20 * time.Millisecond,
			LeaseTimeout:  30 * time.Second,
		},
		NetConfig: transport.Config{
			Jitter: 200 * time.Microsecond,
			Seed:   23,
			Faults: transport.Faults{Default: transport.LinkFaults{DropRate: 0.05, DupRate: 0.05}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[model.NodeID]string{0: "A", 1: "B", 2: "C"}
	for node, key := range keys {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		c.Preload(node, key, rec)
	}
	c.Start()
	defer c.Close()

	var handles []*Handle
	for i := 0; i < 30; i++ {
		h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    model.NodeID(i % 3),
			Updates: []model.KeyOp{{Key: keys[model.NodeID(i%3)], Op: model.AddOp{Field: "bal", Delta: 1}}},
		}})
		if serr != nil {
			t.Fatal(serr)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("update lost on the lossy network")
		}
	}

	// Watcher: versions and terms must be monotone at every node for
	// the whole double-coordinator window.
	type view struct {
		vr, vu model.Version
		term   uint64
	}
	last := make([]view, c.NumNodes())
	var regress []string
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < c.NumNodes(); i++ {
				nd := c.Node(i)
				vr, vu := nd.Versions()
				term := nd.coordTerm.Load()
				mu.Lock()
				if vr < last[i].vr || vu < last[i].vu || term < last[i].term {
					regress = append(regress, fmt.Sprintf(
						"node %d regressed: (vr=%d vu=%d term=%d) after (vr=%d vu=%d term=%d)",
						i, vr, vu, term, last[i].vr, last[i].vu, last[i].term))
				}
				last[i] = view{vr, vu, term}
				mu.Unlock()
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Incumbent sweep in flight; then a second, higher-term coordinator
	// via the standby's takeover hook.
	advCh := c.AdvanceAsync()
	m1 := c.FailoverManagers()[1]
	if co := m1.takeover(); co == nil {
		t.Fatal("standby takeover hook returned no coordinator")
	}
	rep := <-advCh
	if rep.Interrupted && !errors.Is(rep.Err, ErrStaleTerm) {
		t.Fatalf("incumbent unwound with %v, want completion or ErrStaleTerm", rep.Err)
	}

	// Whoever holds the role now must complete a full sweep. The kill
	// window decides how much of the incumbent's cycle survived — the
	// successor may have adopted clean state rather than resumed — so
	// drive sweeps until one completes, tolerating the transients: a
	// deposed incumbent still routed unwinds with ErrStaleTerm, and a
	// demotion gap briefly leaves no local coordinator.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rep := c.Advance()
		if !rep.Interrupted {
			break
		}
		if !errors.Is(rep.Err, ErrStaleTerm) && !errors.Is(rep.Err, ErrNoCoordinator) {
			t.Fatalf("post-fencing sweep failed with %v", rep.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no coordinator could complete a sweep after the fencing window")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A completed sweep means every node acked both switches: they all
	// agree on (vr, vr+1) with vr >= 1, publishing the updates.
	for i := 0; i < c.NumNodes(); i++ {
		vr, vu := c.Node(i).Versions()
		if vr < 1 || vu != vr+1 {
			t.Fatalf("node %d at (vr=%d, vu=%d) after a completed sweep", i, vr, vu)
		}
	}
	close(stop)
	wg.Wait()
	if len(regress) != 0 {
		t.Fatalf("monotonicity violated: %v", regress)
	}

	if errs := c.ConvergenceErrors(); len(errs) != 0 {
		t.Fatalf("convergence errors: %v", errs)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}
