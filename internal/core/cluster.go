package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/counters"
	"repro/internal/locks"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
)

// Config parameterizes a Cluster.
type Config struct {
	// Nodes is the number of database nodes (ids 0..Nodes-1). The
	// coordinator occupies endpoint id Nodes.
	Nodes int
	// Partitions splits the keyspace into P independently versioned
	// partitions (see internal/partition): each runs its own R/C counter
	// matrix, quiescence detection and epoch, so advancing one partition
	// never waits on in-flight traffic in another. Every transaction must
	// stay within one partition (its keys all hash to the same partition;
	// keyless trees run in partition 0). 0 or 1 selects the unpartitioned
	// behaviour. Incompatible with NCMode: NC3V's commute locks and
	// read-version parking assume the single global epoch.
	Partitions int
	// LocalNodes, when non-nil, selects distributed mode: only the
	// listed node ids are hosted by this process; the rest live in
	// other processes reachable through Transport, which must then be
	// supplied explicitly (e.g. a tcpnet.Net spanning the processes).
	// Submit only accepts transactions whose root node is local, and
	// the returned handle completes when the root subtransaction
	// terminates — descendants running in other processes are not
	// observable here (the protocol itself never waits on them either).
	// NCMode is unsupported in distributed mode: NC3V's 2PC bookkeeping
	// is cluster-local. nil (the default) hosts everything in-process.
	LocalNodes []int
	// LocalCoordinator hosts the advancement coordinator (endpoint id
	// Nodes) in this process. Distributed mode only; ignored when
	// LocalNodes is nil, where the coordinator is always local.
	LocalCoordinator bool
	// Workers is the per-node worker-pool width for subtransaction
	// execution; 0 means 4.
	Workers int
	// NCMode enables the NC3V extension: well-behaved transactions take
	// commute locks and non-well-behaved transactions are admitted.
	// With NCMode false, submitting a NonCommuting transaction is an
	// error and no locks exist at all (plain 3V).
	NCMode bool
	// LockWait bounds NC3V lock waits (deadlock victims time out);
	// 0 means one second.
	LockWait time.Duration
	// PollInterval spaces the coordinator's counter sweeps; 0 means
	// 200µs.
	PollInterval time.Duration
	// SyncExec executes subtransactions inline in the transport
	// delivery call instead of on the worker pool. Used with the
	// scripted transport to make replays (the Table 1 trace) fully
	// deterministic. Must not be combined with NCMode: NC3V
	// subtransactions block on locks and the read-version wait, which
	// would deadlock a single-threaded scripted delivery.
	SyncExec bool
	// Transport, when non-nil, overrides the network (used by the
	// scripted trace). Otherwise a live transport.Net is built from
	// NetConfig (whose Nodes field is filled in automatically).
	Transport transport.Network
	// NetConfig configures the default live network.
	NetConfig transport.Config
	// Reliable wraps the network (owned or supplied) in the
	// reliable-delivery session layer (transport/reliable): sequence
	// numbers, dedup, cumulative acks and retransmission. Required for
	// correct operation whenever NetConfig.Faults drops messages.
	Reliable bool
	// ReliableConfig tunes the session layer when Reliable is set; the
	// zero value selects defaults.
	ReliableConfig reliable.Config
	// Journal, when non-nil, receives the local node's durability
	// callbacks (command arrival, execution effects, version switches,
	// GC). Distributed mode with exactly one local node only; requires
	// Reliable and is incompatible with SyncExec (execution must run on
	// the worker pool so checkpoint freezes have a lock boundary) and
	// NCMode. The session layer's own hooks are wired separately through
	// ReliableConfig.Journal/Restore/Gate.
	Journal Journal
	// Restore, when non-nil, rebuilds the local node from recovered
	// state before Start: store, counters, (vr, vu) and the commands
	// that were journaled but never durably executed (re-enqueued to the
	// worker pool on Start). Same restrictions as Journal.
	Restore *NodeRestore
	// Failover removes the coordinator single point of failure: every
	// locally hosted node runs a FailoverManager owning coordinator
	// endpoint Nodes+id, the active one heartbeats a lease, and a
	// standby takes over under a higher fencing term when the lease
	// lapses (see failover.go). The network must then route endpoints
	// 0..2*Nodes-1 (owned networks are sized automatically; an explicit
	// Transport must span them). In-process clusters start with node
	// 0's manager active; distributed processes start active only with
	// LocalCoordinator set.
	Failover bool
	// FailoverConfig tunes the lease when Failover is set; the zero
	// value selects defaults.
	FailoverConfig FailoverConfig
	// Replicate makes partition owner groups real (see replication.go):
	// the primary of each partition streams every applied commuting
	// effect set to the other owners in pmap.OwnerSet(part), backups
	// apply idempotently (and journal, when a Journal is configured), and
	// a per-partition replication lease promotes the next live owner when
	// the primary dies, keeping the partition readable. Requires
	// Reliable (replication frames ride the session layer's dedup and
	// FIFO guarantees) and is meaningful only when owner groups have at
	// least two members (Nodes >= 2).
	Replicate bool
	// ReplicaConfig tunes the replication lease when Replicate is set;
	// the zero value selects defaults.
	ReplicaConfig ReplicaConfig
	// ExecChunk batches the receive side of the hot path: each node
	// worker wakeup drains up to ExecChunk queued subtransactions and
	// executes them as one chunk — one checkpoint hold, and (with a
	// chunk-capable journal) a single WAL barrier covering the whole
	// chunk, with every member's acknowledgement edges deferred past it.
	// <= 1 preserves one-at-a-time admission. Incompatible with NCMode
	// (an NC subtransaction can block on locks mid-chunk, starving the
	// chunk's tail); ignored under SyncExec.
	ExecChunk int
	// BatchedCounters switches the coordinator's quiescence sweeps to
	// the batched counter protocol (CountersReqMsg out, one CountersMsg
	// back per node per round) instead of per-version CounterReqMsg
	// exchanges. Counter snapshots are still taken fresh every round.
	BatchedCounters bool
	// AckTimeout bounds every coordinator wait on node responses
	// (advancement acks, counter replies, version probes). 0 preserves
	// the paper's behaviour: wait forever on the assumed-reliable
	// network. When it fires, Advance/Recover surface ErrTimeout
	// instead of wedging.
	AckTimeout time.Duration
	// ResendInterval makes the coordinator re-broadcast unanswered
	// notices/requests to the nodes still missing, every interval (all
	// coordinator messages are idempotent). 0 means never re-send.
	ResendInterval time.Duration
	// DisableObs turns the observability layer off entirely (no
	// registry is allocated; every instrumentation call is a no-op).
	// Used to measure instrumentation overhead; leave false otherwise.
	DisableObs bool
	// Obs tunes the observability layer (event ring capacity and
	// sampling); the zero value selects defaults.
	Obs obs.Options
}

// Cluster is a running 3V system: Nodes database nodes, one
// advancement coordinator, and a network connecting them. It is the
// package's facade; the public threev package wraps it.
type Cluster struct {
	cfg     Config
	net     transport.Network
	ownsNet bool
	// nodes has length cfg.Nodes; in distributed mode entries for
	// remotely hosted nodes are nil.
	nodes       []*Node
	distributed bool
	reg         *obs.Registry // nil when cfg.DisableObs

	// nparts is the partition count (>= 1); pmap routes keys to
	// partitions and partitions to owner node groups.
	nparts int
	pmap   *partition.Map

	coordMu sync.RWMutex
	coord   *Coordinator

	// fo is non-nil when Config.Failover is set; it replaces the single
	// pinned coordinator above with per-node managers.
	fo *failoverSet

	// repl holds one replicator per locally hosted node when
	// Config.Replicate is set (aligned with nodes; nil entries for
	// remote nodes).
	repl []*replicator

	hookMu    sync.Mutex
	phaseHook func(part, phase int)

	seq     atomic.Uint64
	handles sync.Map // model.TxnID -> *Handle

	updatesDone atomic.Int64

	closed atomic.Bool
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: Config.Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.SyncExec && cfg.NCMode {
		return nil, fmt.Errorf("core: SyncExec cannot be combined with NCMode")
	}
	if cfg.ExecChunk > 1 && cfg.NCMode {
		return nil, fmt.Errorf("core: ExecChunk cannot be combined with NCMode")
	}
	if cfg.Partitions > 1 && cfg.NCMode {
		return nil, fmt.Errorf("core: Partitions cannot be combined with NCMode (NC3V assumes a single global epoch)")
	}
	if cfg.Replicate && !cfg.Reliable {
		return nil, fmt.Errorf("core: Replicate requires the reliable session layer (replication streams depend on its dedup and FIFO delivery)")
	}
	if cfg.Replicate && cfg.NCMode {
		return nil, fmt.Errorf("core: Replicate cannot be combined with NCMode")
	}
	if cfg.Journal != nil || cfg.Restore != nil {
		if cfg.LocalNodes == nil || len(cfg.LocalNodes) != 1 {
			return nil, fmt.Errorf("core: Journal/Restore require distributed mode with exactly one local node")
		}
		if !cfg.Reliable {
			return nil, fmt.Errorf("core: Journal/Restore require the reliable session layer")
		}
		if cfg.SyncExec {
			return nil, fmt.Errorf("core: Journal cannot be combined with SyncExec")
		}
	}
	localSet := map[int]bool{}
	if cfg.LocalNodes != nil {
		if cfg.Transport == nil {
			return nil, fmt.Errorf("core: distributed mode (LocalNodes) requires an explicit Transport")
		}
		if cfg.NCMode {
			return nil, fmt.Errorf("core: NCMode is unsupported in distributed mode (NC3V 2PC state is cluster-local)")
		}
		for _, id := range cfg.LocalNodes {
			if id < 0 || id >= cfg.Nodes {
				return nil, fmt.Errorf("core: LocalNodes id %d out of range [0,%d)", id, cfg.Nodes)
			}
			if localSet[id] {
				return nil, fmt.Errorf("core: LocalNodes id %d listed twice", id)
			}
			localSet[id] = true
		}
	}
	nparts := cfg.Partitions
	if nparts < 1 {
		nparts = 1
	}
	c := &Cluster{cfg: cfg, distributed: cfg.LocalNodes != nil,
		nparts: nparts, pmap: partition.NewMap(nparts, cfg.Nodes)}
	if !cfg.DisableObs {
		c.reg = obs.New(cfg.Obs)
		c.reg.SetGauge(obs.GaugeVersionRead, 0)
		c.reg.SetGauge(obs.GaugeVersionUpdate, 1)
		if nparts > 1 {
			for p := 0; p < nparts; p++ {
				c.reg.SetGauge(obs.PartitionVersionGauge(p), 0)
			}
		}
	}
	// Endpoint space: nodes 0..Nodes-1 plus coordinator endpoints. A
	// pinned coordinator occupies the single endpoint Nodes; with
	// failover every node id gets a potential coordinator endpoint at
	// Nodes+id (node 0's doubles as the legacy id Nodes).
	endpoints := cfg.Nodes + 1
	if cfg.Failover {
		endpoints = 2 * cfg.Nodes
	}
	if cfg.Transport != nil {
		c.net = cfg.Transport
	} else {
		nc := cfg.NetConfig
		nc.Nodes = endpoints
		mn := transport.NewNet(nc)
		mn.SetObs(c.reg)
		c.net = mn
		c.ownsNet = true
	}
	if cfg.Reliable {
		// The session layer owns whatever it wraps; closing it closes
		// the inner network, so the cluster now owns the wrapper.
		rc := cfg.ReliableConfig
		rc.Obs = c.reg
		c.net = reliable.Wrap(c.net, endpoints, rc)
		c.ownsNet = true
	}
	coordID := model.NodeID(cfg.Nodes)
	c.nodes = make([]*Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		if c.distributed && !localSet[i] {
			continue
		}
		var lm *locks.Manager
		if cfg.NCMode {
			lm = locks.New()
			lm.WaitBound = cfg.LockWait
		}
		nd := newNode(model.NodeID(i), cfg.Nodes, c.pmap, coordID, c.net, c, cfg.NCMode, cfg.Workers, lm, c.reg)
		nd.syncExec = cfg.SyncExec
		nd.chunk = cfg.ExecChunk
		nd.journal = cfg.Journal
		if r := cfg.Restore; r != nil {
			if r.Store != nil {
				nd.store = r.Store
			}
			// Per-partition recovered state when present; the legacy
			// single-partition fields describe partition 0 otherwise.
			if r.PartCounters != nil {
				for p, t := range r.PartCounters {
					if p < nparts && t != nil {
						nd.cnts[p] = t
					}
				}
			} else if r.Counters != nil {
				nd.cnts[0] = r.Counters
			}
			if r.PartVU != nil {
				for p, vu := range r.PartVU {
					if p < nparts && vu != 0 {
						nd.pv[p] = verPair{vu: vu, vr: r.PartVR[p]}
					}
				}
			} else if r.VU != 0 {
				nd.pv[0] = verPair{vu: r.VU, vr: r.VR}
			}
			nd.seedTerm(r.CoordTerm)
			nd.seedRepl(r.ReplTerms, r.ReplSeqs, r.ReplApplied)
		}
		c.nodes[i] = nd
		c.net.Register(nd.id, nd.handleMessage)
	}
	if cfg.Replicate {
		rc := cfg.ReplicaConfig.withDefaults()
		c.repl = make([]*replicator, cfg.Nodes)
		for i, nd := range c.nodes {
			if nd == nil {
				continue
			}
			r := newReplicator(c, nd, rc)
			nd.replicate = true
			nd.onReplBeat = r.noteBeat
			nd.onReplAck = r.noteAck
			c.repl[i] = r
		}
	}
	if cfg.Failover {
		fc := cfg.FailoverConfig.withDefaults()
		c.fo = &failoverSet{}
		for i := 0; i < cfg.Nodes; i++ {
			nd := c.nodes[i]
			if nd == nil {
				continue
			}
			m := newFailoverManager(c, nd, fc)
			nd.onCoordState = m.noteBeat
			c.net.Register(m.ep, m.handleEndpoint)
			c.fo.managers = append(c.fo.managers, m)
			if (!c.distributed && i == 0) || (c.distributed && cfg.LocalCoordinator) {
				m.promoteInitial()
			}
		}
	} else if !c.distributed || cfg.LocalCoordinator {
		c.coord = newCoordinator(cfg.Nodes, c.nparts, c.net, cfg.PollInterval, cfg.AckTimeout, cfg.ResendInterval, c.reg)
		c.coord.batchedCounters = cfg.BatchedCounters
		// The registered handler indirects through currentCoordinator so a
		// crashed coordinator can be replaced (CrashCoordinator/Recover)
		// without touching the transport.
		c.net.Register(coordID, func(m transport.Message) {
			c.currentCoordinator().handleMessage(m)
		})
	}
	return c, nil
}

// Start launches node worker pools and (if owned) the network.
func (c *Cluster) Start() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.start()
		}
	}
	if r := c.cfg.Restore; r != nil {
		// Re-enqueue the commands recovery found journaled but not
		// durably executed, under their original ids so re-execution
		// journals against the same command. Peers treat the resulting
		// child frames as retransmissions (same sequence numbers).
		nd := c.nodes[c.cfg.LocalNodes[0]]
		for _, p := range r.Pending {
			nd.work.put(workItem{from: p.From, sub: p.Msg, enqID: p.EnqID})
		}
	}
	c.net.Start()
	if c.fo != nil {
		for _, m := range c.fo.managers {
			m.start()
		}
	}
	for _, r := range c.repl {
		if r != nil {
			r.start()
		}
	}
}

// Close shuts the cluster down. Callers should quiesce (wait for
// outstanding handles) first; queued work is abandoned. Any
// coordinator blocked in Advance/Recover is woken and unwinds with
// ErrClosed.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range c.repl {
		if r != nil {
			r.stop()
		}
	}
	if c.fo != nil {
		// Stop every manager first: this unwinds any in-flight takeover
		// (its Recover returns ErrClosed) and blocks until its goroutines
		// exit, so Close can never race an election into a half-run sweep.
		for _, m := range c.fo.managers {
			m.stop()
		}
	} else if coord := c.currentCoordinator(); coord != nil {
		coord.shutdown()
	}
	if c.ownsNet {
		c.net.Close()
	}
	for _, nd := range c.nodes {
		if nd != nil {
			nd.stop()
		}
	}
}

// Node returns database node i (tests, trace, verifiers). In
// distributed mode it is nil for nodes hosted by other processes.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NumNodes returns the number of database nodes cluster-wide
// (including, in distributed mode, nodes hosted elsewhere).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Partitions returns the partition count (1 when unpartitioned).
func (c *Cluster) Partitions() int { return c.nparts }

// PlacementMap returns the cluster's partition placement map. The map
// is immutable after construction; callers must not mutate it.
func (c *Cluster) PlacementMap() *partition.Map { return c.pmap }

// Replicating reports whether per-partition replica groups are active.
func (c *Cluster) Replicating() bool { return c.repl != nil }

// localReplicator returns the first locally hosted replicator, or nil.
func (c *Cluster) localReplicator() *replicator {
	for _, r := range c.repl {
		if r != nil {
			return r
		}
	}
	return nil
}

// CurrentPrimary returns this process's view of a partition's current
// primary — the placement primary until a replication-lease takeover
// promotes a backup, after which routing (reads, /state) follows the
// promoted owner. Without Replicate it is always the placement primary.
func (c *Cluster) CurrentPrimary(part int) model.NodeID {
	if r := c.localReplicator(); r != nil {
		p, _ := r.currentPrimary(part)
		return p
	}
	return c.pmap.Primary(part)
}

// ReplicaHealth reports every partition's replica-group status as seen
// by this process's first local node (role, lease age, stream and
// applied frontiers) — the payload behind threev-node's /health. Nil
// unless Config.Replicate.
func (c *Cluster) ReplicaHealth() []ReplicaPartHealth {
	if r := c.localReplicator(); r != nil {
		return r.health()
	}
	return nil
}

// SetReplHooks arms callbacks fired after a replication frame is sent
// (per destination fan-out completes) and after a backup applies one —
// the seams the crash harness uses to kill processes at deterministic
// replication points. Pass nil, nil to disarm. Affects all local nodes.
func (c *Cluster) SetReplHooks(send, apply func(part int)) {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.replSendHook = send
			nd.replApplyHook = apply
		}
	}
}

// PartitionState is one partition's operator-visible status, as served
// by threev-node's /state and checked by the verifiers.
type PartitionState struct {
	Part    int           `json:"part"`
	Primary model.NodeID  `json:"primary"`
	VR      model.Version `json:"vr"`
	VU      model.Version `json:"vu"`
	// MaxLag is the largest outstanding R−C counter-lag entry for the
	// partition, or -1 in distributed-mode processes, where the
	// cluster-wide matrix is not computable locally.
	MaxLag int64 `json:"max_lag"`
}

// PartitionStates reports each partition's version pair (the
// coordinator's view when hosted here, else the first local node's) and
// its largest outstanding counter lag.
func (c *Cluster) PartitionStates() []PartitionState {
	coord := c.currentCoordinator()
	var ref *Node
	for _, nd := range c.nodes {
		if nd != nil {
			ref = nd
			break
		}
	}
	out := make([]PartitionState, c.nparts)
	for p := 0; p < c.nparts; p++ {
		st := PartitionState{Part: p, Primary: c.CurrentPrimary(p)}
		if coord != nil {
			st.VR, st.VU = coord.VersionsPart(p)
		} else if ref != nil {
			st.VR, st.VU = ref.VersionsPart(p)
		}
		if c.distributed {
			st.MaxLag = -1
		}
		out[p] = st
	}
	if !c.distributed {
		for _, l := range c.CounterLagSamples() {
			if l.Part >= 0 && l.Part < len(out) && l.MaxPairLag > out[l.Part].MaxLag {
				out[l.Part].MaxLag = l.MaxPairLag
			}
		}
	}
	return out
}

// PartitionPairs returns each partition's (vr, vu) pair indexed by
// partition id — the flat form verify.CheckPartitions consumes.
func (c *Cluster) PartitionPairs() [][2]model.Version {
	states := c.PartitionStates()
	out := make([][2]model.Version, len(states))
	for i, st := range states {
		out[i] = [2]model.Version{st.VR, st.VU}
	}
	return out
}

// Coordinator returns the current advancement coordinator, or nil in a
// distributed-mode process that does not host it.
func (c *Cluster) Coordinator() *Coordinator { return c.currentCoordinator() }

func (c *Cluster) currentCoordinator() *Coordinator {
	if c.fo != nil {
		if m := c.activeManager(); m != nil {
			m.mu.Lock()
			defer m.mu.Unlock()
			return m.coord
		}
		return nil
	}
	c.coordMu.RLock()
	defer c.coordMu.RUnlock()
	return c.coord
}

// activeManager returns the local failover manager currently holding
// the coordinator role, or nil (failover disabled, or this process is
// all standbys). Two local managers can transiently both be active —
// near-simultaneous takeovers before the lower term's coordinator is
// fenced and demoted — so the highest term wins routing.
func (c *Cluster) activeManager() *FailoverManager {
	if c.fo == nil {
		return nil
	}
	var best *FailoverManager
	var bestTerm uint64
	for _, m := range c.fo.managers {
		if active, term := m.snapshot(); active && (best == nil || term > bestTerm) {
			best, bestTerm = m, term
		}
	}
	return best
}

// FailoverManagers returns the local managers (tests, chaos harness);
// nil unless Config.Failover.
func (c *Cluster) FailoverManagers() []*FailoverManager {
	if c.fo == nil {
		return nil
	}
	return c.fo.managers
}

// CoordinatorStatus reports whether this process currently hosts the
// active advancement coordinator and the highest fencing term observed
// here (0 in non-failover clusters, where terms are not in play).
func (c *Cluster) CoordinatorStatus() (active bool, term uint64) {
	if c.fo == nil {
		return c.currentCoordinator() != nil, 0
	}
	for _, m := range c.fo.managers {
		a, t := m.snapshot()
		if a {
			active = true
		}
		if t > term {
			term = t
		}
	}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if t := nd.coordTerm.Load(); t > term {
			term = t
		}
	}
	return active, term
}

// SetPhaseHook arms a callback fired after each completed phase (1–4)
// of every advancement sweep driven from this process — the seam the
// chaos harness uses to kill the coordinator at a deterministic
// protocol point. Pass nil to disarm. The hook runs on the sweep's
// goroutine, outside coordinator locks. Partition-aware callers should
// use SetPartPhaseHook, which also reports which partition's sweep
// completed the phase.
func (c *Cluster) SetPhaseHook(h func(phase int)) {
	if h == nil {
		c.SetPartPhaseHook(nil)
		return
	}
	c.SetPartPhaseHook(func(_, phase int) { h(phase) })
}

// SetPartPhaseHook arms the partition-aware variant of SetPhaseHook:
// the callback receives (partition, phase) after each completed phase
// of every sweep driven from this process. Pass nil to disarm.
func (c *Cluster) SetPartPhaseHook(h func(part, phase int)) {
	c.hookMu.Lock()
	c.phaseHook = h
	c.hookMu.Unlock()
	if c.fo != nil {
		for _, m := range c.fo.managers {
			m.mu.Lock()
			co := m.coord
			m.mu.Unlock()
			if co != nil {
				co.setPhaseHook(h)
			}
		}
		return
	}
	if co := c.currentCoordinator(); co != nil {
		co.setPhaseHook(h)
	}
}

func (c *Cluster) getPhaseHook() func(part, phase int) {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	return c.phaseHook
}

// KillActiveCoordinator chaos-crashes whichever local manager is
// currently active (failover mode only): its in-flight sweep unwinds
// with ErrCrashed and the manager leaves the election permanently, so
// a standby must take over via lease expiry. Returns the killed term
// and true, or 0 and false when no local manager was active.
func (c *Cluster) KillActiveCoordinator() (uint64, bool) {
	m := c.activeManager()
	if m == nil {
		return 0, false
	}
	return m.kill()
}

// Network returns the underlying transport (stats, scripted delivery).
func (c *Cluster) Network() transport.Network { return c.net }

// Session returns the reliable-delivery session layer, or nil when the
// cluster was built without Reliable. The durability layer binds to it
// for the two-phase (Prepare/CommitPrepared) child sends.
func (c *Cluster) Session() *reliable.Session {
	s, _ := c.net.(*reliable.Session)
	return s
}

// Preload installs an initial version-0 record at a node, as in the
// paper's initial state. Call before Start.
func (c *Cluster) Preload(node model.NodeID, key string, rec *model.Record) {
	nd := c.nodes[node]
	if nd == nil {
		panic(fmt.Sprintf("core: Preload of node %d, which is not hosted by this process", node))
	}
	nd.store.Preload(key, rec)
}

// Submit validates and launches a transaction; the returned handle
// observes its progress. The root subtransaction is sent to
// spec.Root.Node and versioned there, per the tree model.
func (c *Cluster) Submit(spec *model.TxnSpec) (*Handle, error) {
	if err := c.validateSpec(spec); err != nil {
		return nil, err
	}
	h, m := c.launch(spec)
	c.net.Send(m)
	return h, nil
}

// SubmitBatch validates and launches a group of transactions as one
// admission flush: all specs are validated before any is launched, and
// the root subtransactions bound for the same node travel in a single
// batched loopback envelope instead of one frame each. Returns one
// handle per spec, aligned with specs. Semantically equivalent to
// calling Submit in a loop — every member still runs as an independent
// transaction — but the hot path pays one send (and downstream, one
// admission wakeup) per destination instead of per transaction.
func (c *Cluster) SubmitBatch(specs []*model.TxnSpec) ([]*Handle, error) {
	for _, spec := range specs {
		if err := c.validateSpec(spec); err != nil {
			return nil, err
		}
	}
	handles := make([]*Handle, len(specs))
	byNode := make(map[model.NodeID][]transport.Message)
	var order []model.NodeID
	for i, spec := range specs {
		h, m := c.launch(spec)
		handles[i] = h
		if _, ok := byNode[m.To]; !ok {
			order = append(order, m.To)
		}
		byNode[m.To] = append(byNode[m.To], m)
	}
	for _, n := range order {
		msgs := byNode[n]
		if len(msgs) == 1 {
			c.net.Send(msgs[0])
			continue
		}
		c.net.Send(transport.Message{From: n, To: n, Payload: transport.BatchMsg{Msgs: msgs}})
	}
	return handles, nil
}

// validateSpec runs Submit's admission checks without side effects, so
// SubmitBatch can reject a whole batch before launching any member.
func (c *Cluster) validateSpec(spec *model.TxnSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.NonCommuting && !c.cfg.NCMode {
		return fmt.Errorf("core: non-commuting transaction %q requires NCMode", spec.Label)
	}
	if int(spec.Root.Node) >= len(c.nodes) {
		return fmt.Errorf("core: root node %d out of range", spec.Root.Node)
	}
	if c.nodes[spec.Root.Node] == nil {
		return fmt.Errorf("core: root node %d is not hosted by this process (submit at its host)", spec.Root.Node)
	}
	if c.nparts > 1 {
		part := -1
		if err := checkSinglePartition(c.pmap, spec.Root, spec.Label, &part); err != nil {
			return err
		}
	}
	return nil
}

// checkSinglePartition enforces the partitioned admission rule: every
// key a transaction tree touches must hash to one partition.
// Cross-partition trees would increment counters in two independent
// epochs and are out of scope until distributed NC3V (DESIGN.md §5a).
func checkSinglePartition(pmap *partition.Map, s *model.SubtxnSpec, label string, part *int) error {
	check := func(key string) error {
		p := pmap.Of(key)
		if *part == -1 {
			*part = p
			return nil
		}
		if *part != p {
			return fmt.Errorf("core: transaction %q touches partitions %d and %d; cross-partition transactions are unsupported", label, *part, p)
		}
		return nil
	}
	for _, k := range s.Reads {
		if err := check(k); err != nil {
			return err
		}
	}
	for _, op := range s.Updates {
		if err := check(op.Key); err != nil {
			return err
		}
	}
	for _, ch := range s.Children {
		if err := checkSinglePartition(pmap, ch, label, part); err != nil {
			return err
		}
	}
	return nil
}

// specPartition returns the partition a validated spec is pinned to:
// the partition of the first key the tree touches (keyless trees run in
// partition 0). validateSpec has already checked the tree is
// single-partition, so any key is representative.
func (c *Cluster) specPartition(spec *model.TxnSpec) int {
	if c.nparts <= 1 {
		return 0
	}
	part := -1
	if err := checkSinglePartition(c.pmap, spec.Root, spec.Label, &part); err != nil || part < 0 {
		return 0
	}
	return part
}

// launch creates the handle and root message for a validated spec. The
// caller sends the returned message (directly, or inside a batch).
func (c *Cluster) launch(spec *model.TxnSpec) (*Handle, transport.Message) {
	// TxnIDs embed the root node id, and each node is hosted by exactly
	// one process, so the per-process sequence stays globally unique.
	id := model.MakeTxnID(spec.Root.Node, c.seq.Add(1))
	h := newHandle(id)
	h.rootOnly = c.distributed
	h.isUpdate = !spec.ReadOnly()
	h.needsUnlock = c.cfg.NCMode && h.isUpdate && !spec.NonCommuting
	c.handles.Store(id, h)
	h.addExpected(1)
	c.reg.Inc(obs.CtrTxnsSubmitted, 1)
	if c.reg.SampleTick() {
		c.reg.RecordEvent(obs.Event{Kind: obs.EvTxnSpawn, Node: int(spec.Root.Node),
			Txn: id.String(), Detail: spec.Label})
	}
	// Head sampling: 1 in TraceSampleN submissions carries a trace
	// context (trace id = transaction id, root span id = trace id by
	// convention). SentAt aligns with the handle's submit stamp so the
	// stage partition telescopes to the handle's measured latency.
	if c.reg.TraceSampleTick() && !spec.NonCommuting {
		h.tc = obs.TraceContext{TraceID: uint64(id), SpanID: uint64(id)}
	}
	var sentAt time.Time
	if c.reg != nil {
		sentAt = h.submitted
	}
	return h, transport.Message{
		From: spec.Root.Node,
		To:   spec.Root.Node,
		TC:   h.tc,
		Payload: SubtxnMsg{
			Txn:      id,
			Root:     true,
			Spec:     spec.Root,
			ReadOnly: spec.ReadOnly(),
			NC:       spec.NonCommuting,
			RootNode: spec.Root.Node,
			SentAt:   sentAt,
			Part:     c.specPartition(spec),
		},
	}
}

// Advance runs one full version-advancement cycle and blocks until it
// completes (user transactions are unaffected throughout). In a
// distributed-mode process without the coordinator it fails with
// ErrNoCoordinator.
func (c *Cluster) Advance() AdvanceReport {
	coord := c.currentCoordinator()
	if coord == nil {
		return AdvanceReport{Interrupted: true, Err: ErrNoCoordinator}
	}
	return coord.RunAdvancement()
}

// AdvancePartition runs one advancement cycle for a single partition
// and blocks until it completes. Sweeps for different partitions are
// independent: each takes its own per-partition lock, exchanges
// partition-tagged messages and polls a disjoint counter matrix, so an
// advancement of partition a never waits on in-flight traffic in
// partition b.
func (c *Cluster) AdvancePartition(part int) AdvanceReport {
	if part < 0 || part >= c.nparts {
		return AdvanceReport{Part: part, Interrupted: true,
			Err: fmt.Errorf("core: partition %d out of range [0,%d)", part, c.nparts)}
	}
	coord := c.currentCoordinator()
	if coord == nil {
		return AdvanceReport{Part: part, Interrupted: true, Err: ErrNoCoordinator}
	}
	return coord.RunAdvancementPart(part)
}

// AdvanceAsync launches an advancement cycle in the background.
func (c *Cluster) AdvanceAsync() <-chan AdvanceReport {
	ch := make(chan AdvanceReport, 1)
	go func() { ch <- c.Advance() }()
	return ch
}

// observer implementation: route node callbacks to handles. Lookups
// that miss (a handle for a foreign cluster, never here in practice)
// are ignored.

func (c *Cluster) handleFor(txn model.TxnID) *Handle {
	v, ok := c.handles.Load(txn)
	if !ok {
		return nil
	}
	return v.(*Handle)
}

func (c *Cluster) onSpawn(txn model.TxnID, n int) {
	if h := c.handleFor(txn); h != nil && !h.rootOnly {
		h.addExpected(n)
	}
}

func (c *Cluster) onDone(txn model.TxnID, node model.NodeID, reads []model.ReadResult, aborted, root bool) {
	h := c.handleFor(txn)
	if h == nil {
		return
	}
	if h.rootOnly && !root {
		// Distributed mode: descendants (local or remote) do not gate
		// the handle; the root's termination is the completion edge.
		return
	}
	completed := h.reportDone(node, reads, aborted)
	if completed && c.reg != nil {
		status := h.Status()
		total := h.Latency()
		c.reg.ObserveTxnLatency(!h.isUpdate, total)
		kind, ctr := obs.EvTxnDone, ctrForStatus(status)
		if status != StatusCommitted {
			kind = obs.EvTxnAbort
		}
		c.reg.Inc(ctr, 1)
		if c.reg.SampleTick() {
			c.reg.RecordEvent(obs.Event{Kind: kind, Node: int(node), Txn: txn.String(),
				Detail: status.String()})
		}
		// Completion edge of the trace: record the root span (merging the
		// stage breakdown the root's executing node parked) and feed the
		// stage histograms; slow unsampled transactions get a post-hoc
		// root-only span.
		c.reg.TraceTxnDone(uint64(txn), int(node), h.tc.Sampled(), h.submitted, total,
			txn.String()+" "+status.String())
	}
	if h.Status() == StatusCommitted && h.isUpdate && h.markCounted() {
		c.updatesDone.Add(1)
	}
	if h.Status() != StatusPending && h.takeUnlock() {
		// Asynchronous clean-up phase (Section 5): release the commute
		// locks this well-behaved transaction holds, now that its whole
		// tree has committed.
		coordID := model.NodeID(c.cfg.Nodes)
		for _, n := range h.Nodes() {
			c.net.Send(transport.Message{From: coordID, To: n, Payload: UnlockMsg{Txn: txn}})
		}
	}
}

func (c *Cluster) onVersion(txn model.TxnID, v model.Version) {
	if h := c.handleFor(txn); h != nil {
		h.reportVersion(v)
	}
}

func (c *Cluster) onNCAbort(txn model.TxnID) {
	if h := c.handleFor(txn); h != nil {
		h.reportNCAbort()
	}
}

// ctrForStatus maps a terminal handle status to its obs counter.
func ctrForStatus(s Status) int {
	switch s {
	case StatusCompensated:
		return obs.CtrTxnsCompensated
	case StatusAborted:
		return obs.CtrTxnsAborted
	default:
		return obs.CtrTxnsCommitted
	}
}

// ClusterMetrics aggregates per-node, transport and observability
// accounting.
type ClusterMetrics struct {
	PerNode   []NodeMetrics
	Storage   []storage.Stats
	Transport transport.Stats
	// Obs is the observability snapshot (latency histograms, phase
	// timers, counter-lag gauges); zero-valued when observability is
	// disabled.
	Obs obs.Snapshot
}

// Metrics returns a snapshot of all counters.
func (c *Cluster) Metrics() ClusterMetrics {
	m := ClusterMetrics{Transport: c.net.Stats(), Obs: c.ObsSnapshot()}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		m.PerNode = append(m.PerNode, nd.Metrics())
		m.Storage = append(m.Storage, nd.store.Stats())
	}
	return m
}

// Obs exposes the cluster's observability registry (nil when disabled).
func (c *Cluster) Obs() *obs.Registry { return c.reg }

// ObsSnapshot refreshes the live counter-lag gauges from the nodes'
// counter tables and returns the full observability snapshot. It is
// safe to call concurrently with a running workload: it only reads
// counter snapshots the protocol itself exchanges.
func (c *Cluster) ObsSnapshot() obs.Snapshot {
	if c.reg == nil {
		return obs.Snapshot{}
	}
	for _, l := range c.CounterLagSamples() {
		c.reg.SetCounterLag(l)
	}
	ts := c.net.Stats()
	c.reg.SetGauge(obs.GaugeNetDropped, float64(ts.Dropped+ts.PartitionDrops))
	c.reg.SetGauge(obs.GaugeNetDuplicated, float64(ts.Duplicated))
	c.reg.SetGauge(obs.GaugeNetRetransmits, float64(ts.Retransmits))
	c.reg.SetGauge(obs.GaugeNetDupDropped, float64(ts.DupDropped))
	c.reg.SetGauge(obs.GaugeNetBytesSent, float64(ts.BytesSent))
	c.reg.SetGauge(obs.GaugeNetBytesReceived, float64(ts.BytesReceived))
	c.reg.SetGauge(obs.GaugeNetReconnects, float64(ts.Reconnects))
	return c.reg.Snapshot()
}

// ObsEvents returns the retained structured-event-log entries
// oldest-first (post-mortem dump).
func (c *Cluster) ObsEvents() []obs.Event { return c.reg.Events() }

// ObsTraces assembles the sampled-transaction and sweep traces recorded
// on this process, newest-root-first. Empty unless tracing was enabled
// via obs.Options.TraceSampleN.
func (c *Cluster) ObsTraces() []obs.Trace { return c.reg.Traces() }

// CounterLagSamples assembles, for every version that still has
// counter rows anywhere, the cluster-wide R[v][p][q] − C[v][p][q] lag —
// the exact quantity whose convergence to zero the advancement
// coordinator polls for in Phases 2 and 4. Sampling is asynchronous
// (the same sloppy-read regime the coordinator operates under), so a
// transiently negative pair is clamped rather than reported.
func (c *Cluster) CounterLagSamples() []obs.CounterLag {
	var out []obs.CounterLag
	for part := 0; part < c.nparts; part++ {
		versions := make(map[model.Version]bool)
		for _, nd := range c.nodes {
			if nd == nil {
				continue
			}
			for _, v := range nd.cnts[part].Versions() {
				versions[v] = true
			}
		}
		for v := range versions {
			snap := counters.NewSnapshot(len(c.nodes))
			for _, nd := range c.nodes {
				if nd == nil {
					continue
				}
				snap.SetFromNode(nd.id, nd.cnts[part].SnapshotR(v), nd.cnts[part].SnapshotC(v))
			}
			lag := lagOf(snap)
			lag.Version = int64(v)
			lag.Part = part
			out = append(out, lag)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Part != out[j].Part {
			return out[i].Part < out[j].Part
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// ConvergenceErrors checks that the cluster has settled into the
// quiescent state the protocol promises once all activity stops: every
// node and the coordinator agree on (vr, vu), and for every live
// version the cluster-wide counter matrices balance (R[v] == C[v]^T) —
// no subtransaction was ever lost or double-counted. Call after
// workloads drain (and, under fault injection, after Heal plus a
// settle delay); a healthy cluster returns nil.
func (c *Cluster) ConvergenceErrors() []string {
	var errs []string
	if coord := c.currentCoordinator(); coord != nil {
		for part := 0; part < c.nparts; part++ {
			cvr, cvu := coord.VersionsPart(part)
			for _, nd := range c.nodes {
				if nd == nil {
					continue
				}
				vr, vu := nd.VersionsPart(part)
				if vr != cvr || vu != cvu {
					if c.nparts > 1 {
						errs = append(errs, fmt.Sprintf(
							"partition %d: node %d at (vr=%d, vu=%d), coordinator at (vr=%d, vu=%d)",
							part, nd.id, vr, vu, cvr, cvu))
					} else {
						errs = append(errs, fmt.Sprintf(
							"node %d at (vr=%d, vu=%d), coordinator at (vr=%d, vu=%d)",
							nd.id, vr, vu, cvr, cvu))
					}
				}
			}
		}
	}
	if c.distributed {
		// Counter matrices span processes and each process holds only its
		// own nodes' rows, so the cluster-wide balance check is not
		// computable here. Cross-process balance is what a completed
		// advancement cycle certifies: its quiescence polls collect the
		// full matrix over the network.
		sort.Strings(errs)
		return errs
	}
	for part := 0; part < c.nparts; part++ {
		versions := make(map[model.Version]bool)
		for _, nd := range c.nodes {
			for _, v := range nd.cnts[part].Versions() {
				versions[v] = true
			}
		}
		for v := range versions {
			snap := counters.NewSnapshot(len(c.nodes))
			for _, nd := range c.nodes {
				snap.SetFromNode(nd.id, nd.cnts[part].SnapshotR(v), nd.cnts[part].SnapshotC(v))
			}
			if !snap.Balanced() {
				if c.nparts > 1 {
					errs = append(errs, fmt.Sprintf(
						"partition %d version %d counters unbalanced: R != C (lost or duplicated subtransactions)", part, v))
				} else {
					errs = append(errs, fmt.Sprintf(
						"version %d counters unbalanced: R != C (lost or duplicated subtransactions)", v))
				}
			}
		}
	}
	sort.Strings(errs)
	return errs
}

// Violations gathers every recorded invariant violation across nodes;
// a correct run returns nil.
func (c *Cluster) Violations() []string {
	var out []string
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		out = append(out, nd.Metrics().Violations...)
	}
	return out
}

// CommittedUpdates returns the number of update transactions that have
// fully committed since the cluster started — the quantity behind the
// "advance once N update transactions have accumulated" trigger policy.
func (c *Cluster) CommittedUpdates() int64 { return c.updatesDone.Load() }

// PendingItems sums, across nodes, the items carrying updates not yet
// visible to readers (each node judged against its own read version).
func (c *Cluster) PendingItems() int {
	n := 0
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		n += nd.store.PendingItems(nd.minVR())
	}
	return n
}

// Divergence sums, across nodes, the per-item difference of the named
// summary field between the newest version and the readable version —
// the paper's value-divergence trigger quantity.
func (c *Cluster) Divergence(field string) int64 {
	var total int64
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		total += nd.store.Divergence(nd.minVR(), field)
	}
	return total
}

// MaxLiveVersionsEver returns the largest number of simultaneously live
// versions any item on any node ever had — the paper's "at most three
// copies" bound, measured.
func (c *Cluster) MaxLiveVersionsEver() int {
	max := 0
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if n := nd.store.Stats().MaxLiveVersions; n > max {
			max = n
		}
	}
	return max
}

var _ observer = (*Cluster)(nil)
