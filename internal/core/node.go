package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/counters"
	"repro/internal/localcc"
	"repro/internal/locks"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
)

// observer receives instrumentation callbacks from nodes. The cluster
// implements it to drive transaction handles; the protocol itself never
// waits on an observer.
type observer interface {
	onSpawn(txn model.TxnID, n int)
	// onDone reports one terminated subtransaction; root marks the
	// tree's root, which is the completion edge for handles in
	// distributed mode (descendants may terminate in other processes).
	onDone(txn model.TxnID, node model.NodeID, reads []model.ReadResult, aborted, root bool)
	onVersion(txn model.TxnID, v model.Version)
	onNCAbort(txn model.TxnID)
}

// nopObserver is used when no cluster-level observation is wanted.
type nopObserver struct{}

func (nopObserver) onSpawn(model.TxnID, int)                                         {}
func (nopObserver) onDone(model.TxnID, model.NodeID, []model.ReadResult, bool, bool) {}
func (nopObserver) onVersion(model.TxnID, model.Version)                             {}
func (nopObserver) onNCAbort(model.TxnID)                                            {}

// NodeMetrics counts protocol events at one node. All fields are
// cumulative.
type NodeMetrics struct {
	RootsAssigned    int64 // root subtransactions versioned here
	SubtxnsExecuted  int64 // update subtransactions executed (incl. compensating)
	QueriesExecuted  int64 // read-only subtransactions executed
	DualWrites       int64 // update ops applied to more than one version
	ImplicitAdvances int64 // vu advanced by an arriving subtransaction's version-id
	Compensations    int64 // compensating subtransactions sent
	LockAborts       int64 // subtransactions cancelled by lock timeout
	NCExecuted       int64 // NC subtransactions executed
	NCAborts         int64 // NC decisions that were aborts (counted at participants)
	Violations       []string
}

// ncExec records one executed NC subtransaction awaiting the 2PC
// decision.
type ncExec struct {
	source model.NodeID
	ver    model.Version
	reads  []model.ReadResult
	undo   []ncUndo
}

// ncUndo is one before-image for NC rollback.
type ncUndo struct {
	key  string
	ver  model.Version
	prev *model.Record // nil means the version was created by this txn: drop it
}

// ncCoordState is the 2PC coordinator state kept at the node that
// received an NC transaction's root.
type ncCoordState struct {
	votes     int
	expected  int
	ok        bool
	rootVoted bool
	nodes     map[model.NodeID]bool
}

// ncPartState is the participant state for one NC transaction at one
// node.
type ncPartState struct {
	execs []ncExec
}

// workItem is a unit handed to the node's worker pool.
type workItem struct {
	from model.NodeID
	sub  SubtxnMsg
	// enqID is the journal's id for this command (0 when not journaled);
	// the execution record cites it so recovery can retire the command.
	enqID uint64
	// tc is the trace context the command's envelope carried; recvAt is
	// its delivery time (stamped only for sampled commands, so queue
	// wait can be attributed without clock reads on the untraced path).
	tc     obs.TraceContext
	recvAt time.Time
}

// parkedNC is an NC3V root waiting out a version advancement.
type parkedNC struct {
	from model.NodeID
	msg  SubtxnMsg
}

// workQueue is an unbounded FIFO so that the node's delivery goroutine
// never blocks handing work to (possibly busy) workers — control
// messages must keep flowing even when every worker is waiting on an
// NC lock. It is backed by a growable power-of-two ring (internal/ring)
// rather than an append + items[1:] slice, so steady-state memory is
// bounded by the backlog high-water mark instead of growing with
// cumulative throughput, and bursts stop triggering per-lap
// reallocations.
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  ring.Ring[workItem]
	closed bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) put(it workItem) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items.Push(it)
	q.cond.Signal()
}

func (q *workQueue) get() (workItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.items.Pop()
}

// getChunk blocks for at least one item, then drains up to max items in
// one critical section — the receive-side half of batching: a worker
// wakes once per chunk instead of once per message. Appends into buf
// (callers pass a reused buf[:0]) and returns false only when the queue
// is closed and empty.
func (q *workQueue) getChunk(buf []workItem, max int) ([]workItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	for len(buf) < max {
		it, ok := q.items.Pop()
		if !ok {
			break
		}
		buf = append(buf, it)
	}
	return buf, len(buf) > 0
}

func (q *workQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// verPair is one partition's version-number pair at a node.
type verPair struct {
	vu, vr model.Version
}

// Node is one database site running the 3V protocol. Create nodes via
// Cluster; direct construction is for tests and the trace replay.
type Node struct {
	id      model.NodeID
	n       int // number of database nodes in the cluster
	nparts  int // number of keyspace partitions (>= 1)
	pmap    *partition.Map
	coordID model.NodeID
	net     transport.Network
	store   *storage.Store
	// cnts holds one independent R/C counter table per partition: a
	// transaction's increments all land in its partition's table, so
	// quiescence of one partition is decided without reading another's
	// counters. cnts[0] is the whole table in unpartitioned mode.
	cnts    []*counters.Table
	latches *localcc.Manager
	lm      *locks.Manager // non-nil only in NC mode
	obs     observer
	reg     *obs.Registry // nil when observability is disabled
	ncMode  bool
	journal Journal // nil without durability

	// coordTerm is the highest coordinator fencing term this node has
	// observed on any partition (0 until a fenced coordinator speaks).
	// It feeds the journal and the obs gauge; the fencing decision
	// itself is per partition (coordTerms below), so a successor
	// re-driving partition A's sweep fences A immediately while a
	// not-yet-recovered partition B still accepts its (idempotent)
	// stragglers until the successor's first message touches B.
	coordTerm atomic.Uint64
	// coordTerms are the per-partition fencing registers: phase
	// messages for partition i carrying a positive term below
	// coordTerms[i] are rejected. Partition-less control traffic
	// (heartbeats, stale-term notices) folds into every register.
	coordTerms []atomic.Uint64
	// onCoordState, when set (failover mode), receives every accepted
	// coordinator heartbeat so the co-located FailoverManager can renew
	// its lease view. Set before the node's handler is registered;
	// immutable afterwards.
	onCoordState func(CoordStateMsg)

	// Replica-group state (Config.Replicate). replicate gates the
	// emission path; replTerms are the per-partition replication lease
	// registers (a separate term space from coordTerms — fencing a
	// replication lease must never fence a valid coordinator); replSeqs
	// are the per-partition sent-sequence counters this node uses as a
	// primary; replApplied[part][node] is the applied frontier per
	// sending node this node uses as a backup to dedup a replication
	// stream across the session layer's crash window. onReplBeat and
	// onReplAck relay accepted lease heartbeats and frontier acks to the
	// co-located replicator; replSendHook/replApplyHook are the chaos
	// harness's crashpoint seams. All are set before the node's handler
	// is registered; immutable afterwards.
	replicate     bool
	replTerms     []atomic.Uint64
	replSeqs      []atomic.Uint64
	replApplied   [][]atomic.Uint64
	onReplBeat    func(part int, from model.NodeID, term uint64)
	onReplAck     func(part int, from model.NodeID, seq uint64)
	replSendHook  func(part int)
	replApplyHook func(part int)

	// chk excludes subtransaction execution during checkpoint freezes:
	// workers hold it shared around executeSubtxn so the journaled effect
	// record and the in-memory mutations it describes always land on the
	// same side of a checkpoint anchor. Frozen takes it exclusively.
	// Unused (never locked) when journal is nil.
	chk sync.RWMutex

	// verMu guards pv (every partition's version pair). Critical
	// sections are a handful of machine instructions; per Section 4's
	// model, accesses to version numbers and counters are atomic but
	// sit outside local concurrency control, so they can never delay a
	// subtransaction on another item's behalf. Root version assignment
	// and its R-counter bump share one critical section with version
	// advancement so that a root assigned version v is always visible
	// in v's counters before the node acknowledges advancing past v.
	// One mutex across partitions is deliberate: the sections are so
	// short that sharding it buys nothing, and a sweep never holds it
	// while waiting — so partition A's advancement cannot block on
	// partition B's traffic through this lock.
	verMu  sync.Mutex
	vrCond *sync.Cond
	pv     []verPair
	// ncParked holds NC3V roots that were assigned a version during an
	// in-flight advancement (vu == vr+2) and must wait for the read
	// version to catch up (Section 5 step 2). They are parked here
	// rather than blocking a worker goroutine, and re-dispatched by
	// handleReadVersion.
	ncParked []parkedNC

	work     *workQueue
	workers  int
	syncExec bool
	// chunk is the admission chunk size (Config.ExecChunk): each worker
	// wakeup drains up to this many queued subtransactions and executes
	// them under one checkpoint hold and (with a ChunkJournal) one
	// durability barrier. <= 1 preserves one-at-a-time admission.
	chunk int
	wg    sync.WaitGroup

	ncMu    sync.Mutex
	ncCoord map[model.TxnID]*ncCoordState
	ncPart  map[model.TxnID]*ncPartState

	metMu   sync.Mutex
	metrics NodeMetrics
}

// newNode wires a node; the caller registers node.handleMessage on the
// network and calls start. pmap may be nil (single partition).
func newNode(id model.NodeID, n int, pmap *partition.Map, coordID model.NodeID, net transport.Network, observer observer, ncMode bool, workers int, lm *locks.Manager, reg *obs.Registry) *Node {
	if workers <= 0 {
		workers = 4
	}
	nparts := 1
	if pmap != nil && pmap.P > 1 {
		nparts = pmap.P
	}
	nd := &Node{
		id:         id,
		n:          n,
		nparts:     nparts,
		pmap:       pmap,
		coordID:    coordID,
		net:        net,
		store:      storage.New(),
		cnts:       make([]*counters.Table, nparts),
		coordTerms: make([]atomic.Uint64, nparts),
		latches:    localcc.New(),
		lm:         lm,
		obs:        observer,
		reg:        reg,
		ncMode:     ncMode,
		pv:         make([]verPair, nparts),
		work:       newWorkQueue(),
		workers:    workers,
		ncCoord:    make(map[model.TxnID]*ncCoordState),
		ncPart:     make(map[model.TxnID]*ncPartState),
	}
	nd.replTerms = make([]atomic.Uint64, nparts)
	nd.replSeqs = make([]atomic.Uint64, nparts)
	nd.replApplied = make([][]atomic.Uint64, nparts)
	for i := range nd.pv {
		// Initial state per partition: read version 0, update version 1.
		nd.pv[i] = verPair{vu: 1, vr: 0}
		nd.cnts[i] = counters.NewTable(id, n)
		nd.replApplied[i] = make([]atomic.Uint64, n)
	}
	nd.vrCond = sync.NewCond(&nd.verMu)
	return nd
}

// partOK validates a message's partition index; out-of-range indices
// are protocol violations (a peer running a different placement map).
func (nd *Node) partOK(part int) bool {
	if part >= 0 && part < nd.nparts {
		return true
	}
	nd.violate("node %v: partition %d out of range (P=%d)", nd.id, part, nd.nparts)
	return false
}

// ctab returns the counter table for one partition.
func (nd *Node) ctab(part int) *counters.Table { return nd.cnts[part] }

// gcPred returns the key filter for one partition's garbage collection,
// or nil in unpartitioned mode (collect everything).
func (nd *Node) gcPred(part int) func(string) bool {
	if nd.nparts <= 1 {
		return nil
	}
	return func(key string) bool { return nd.pmap.Of(key) == part }
}

// start launches the worker pool (skipped in SyncExec mode).
func (nd *Node) start() {
	if nd.syncExec {
		return
	}
	max := nd.chunk
	if max < 1 {
		max = 1
	}
	for i := 0; i < nd.workers; i++ {
		nd.wg.Add(1)
		go func() {
			defer nd.wg.Done()
			buf := make([]workItem, 0, max)
			for {
				items, ok := nd.work.getChunk(buf[:0], max)
				if !ok {
					return
				}
				if nd.journal != nil {
					nd.chk.RLock()
					nd.executeChunk(items)
					nd.chk.RUnlock()
				} else {
					nd.executeChunk(items)
				}
			}
		}()
	}
}

// stop drains the worker pool. In-flight subtransactions finish;
// queued ones are abandoned (callers quiesce first).
func (nd *Node) stop() {
	nd.work.close()
	// Wake any NC roots waiting for a read-version change so their
	// workers can observe shutdown via lock timeouts; harmless
	// otherwise.
	nd.verMu.Lock()
	nd.vrCond.Broadcast()
	nd.verMu.Unlock()
	nd.wg.Wait()
}

// Frozen runs fn with subtransaction execution paused: every worker is
// between subtransactions and stays parked until fn returns. The
// durability layer composes this with the session's delivery gate to
// take checkpoints that are consistent across the store, the counter
// table, the pending-command set and the session link state.
func (nd *Node) Frozen(fn func()) {
	nd.chk.Lock()
	defer nd.chk.Unlock()
	fn()
}

// Store exposes the node's storage engine (tests, trace, verifiers).
func (nd *Node) Store() *storage.Store { return nd.store }

// Counters exposes the node's counter table (tests, trace, verifiers).
// In partitioned mode this is partition 0's table; see CountersPart.
func (nd *Node) Counters() *counters.Table { return nd.cnts[0] }

// CountersPart exposes one partition's counter table.
func (nd *Node) CountersPart(part int) *counters.Table { return nd.cnts[part] }

// Partitions returns the number of keyspace partitions at this node.
func (nd *Node) Partitions() int { return nd.nparts }

// Versions returns the node's current (vr, vu) pair. In partitioned
// mode this is partition 0's pair; see VersionsPart.
func (nd *Node) Versions() (vr, vu model.Version) { return nd.VersionsPart(0) }

// VersionsPart returns one partition's current (vr, vu) pair.
func (nd *Node) VersionsPart(part int) (vr, vu model.Version) {
	nd.verMu.Lock()
	defer nd.verMu.Unlock()
	return nd.pv[part].vr, nd.pv[part].vu
}

// minVR returns the smallest read version across partitions — the
// conservative bound used for store-wide trigger quantities (pending
// items, divergence), whose per-key partition is not tracked there.
// TermPart returns the highest coordinator fencing term this node has
// observed for one partition (the operator-surface companion of
// VersionsPart; threev-node's /state reports it per partition).
func (nd *Node) TermPart(part int) uint64 {
	if part < 0 || part >= len(nd.coordTerms) {
		return 0
	}
	return nd.coordTerms[part].Load()
}

func (nd *Node) minVR() model.Version {
	nd.verMu.Lock()
	defer nd.verMu.Unlock()
	min := nd.pv[0].vr
	for _, p := range nd.pv[1:] {
		if p.vr < min {
			min = p.vr
		}
	}
	return min
}

// Metrics returns a copy of the node's counters.
func (nd *Node) Metrics() NodeMetrics {
	nd.metMu.Lock()
	defer nd.metMu.Unlock()
	m := nd.metrics
	m.Violations = append([]string(nil), nd.metrics.Violations...)
	return m
}

func (nd *Node) violate(format string, args ...any) {
	nd.metMu.Lock()
	defer nd.metMu.Unlock()
	nd.metrics.Violations = append(nd.metrics.Violations, fmt.Sprintf(format, args...))
}

// handleMessage is the node's transport handler. Subtransactions are
// dispatched to the worker pool; all control traffic is handled inline
// (it is quick and must keep flowing even when workers are blocked on
// NC locks).
func (nd *Node) handleMessage(m transport.Message) {
	switch p := m.Payload.(type) {
	case SubtxnMsg:
		var enqID uint64
		if nd.journal != nil {
			// Journal the command before the session layer acknowledges
			// the frame that carried it (the NoteRecv barrier after this
			// handler returns covers the append): a restarted node must
			// know every command its peers consider delivered.
			enqID = nd.journal.Enq(m.From, p)
		}
		var recvAt time.Time
		if m.TC.Sampled() && nd.reg.TraceEnabled() {
			recvAt = time.Now()
		}
		if nd.syncExec {
			nd.executeSubtxn(m.From, p, enqID, m.TC, recvAt, nil)
		} else {
			nd.work.put(workItem{from: m.From, sub: p, enqID: enqID, tc: m.TC, recvAt: recvAt})
		}
	case StartAdvancementMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		nd.handleStartAdvancement(m.From, p)
	case ReadVersionMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		nd.handleReadVersion(m.From, p)
	case GCMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		nd.handleGC(m.From, p)
	case CounterReqMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		nd.handleCounterReq(m.From, p)
	case CountersReqMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		nd.handleCountersReq(m.From, p)
	case VersionProbeMsg:
		if !nd.partOK(p.Part) {
			return
		}
		if !nd.observeTerm(p.Part, p.Term) {
			nd.rejectStale(m.From, p.Part)
			return
		}
		vr, vu := nd.VersionsPart(p.Part)
		below := false
		if pred := nd.gcPred(p.Part); pred != nil {
			below = nd.store.HasVersionsBelowFunc(vr, pred)
		} else {
			below = nd.store.HasVersionsBelow(vr)
		}
		nd.net.Send(transport.Message{From: nd.id, To: m.From, Payload: VersionReplyMsg{
			Round: p.Round, Node: nd.id, VR: vr, VU: vu,
			BelowVR: below, Part: p.Part,
		}})
	case CoordStateMsg:
		if !nd.observeTermAll(p.Term) {
			nd.rejectStale(m.From, 0)
			return
		}
		if f := nd.onCoordState; f != nil {
			f(p)
		}
	case StaleTermMsg:
		// Addressed to coordinator endpoints; one reaching a node is
		// stray cross-talk. Fold the term in and drop it.
		nd.observeTermAll(p.Term)
	case ReplicateMsg:
		nd.handleReplicate(m.From, p)
	case ReplicateAckMsg:
		nd.handleReplicateAck(p)
	case NCVoteMsg:
		nd.handleNCVote(p)
	case NCDecisionMsg:
		nd.handleNCDecision(p)
	case UnlockMsg:
		if nd.lm != nil {
			nd.lm.ReleaseAll(p.Txn)
		}
	case SpanReportMsg:
		// Spans shipped home by executing nodes: record them into this
		// (the root) node's ring for assembly.
		for _, s := range p.Spans {
			nd.reg.RecordSpan(s)
		}
	default:
		nd.violate("node %v: unknown payload %T", nd.id, m.Payload)
	}
}

// observeTerm folds a coordinator fencing term into one partition's
// register, returning false when t is stale — positive but below a
// term this partition has already seen — in which case the caller must
// drop the message. Term 0 is the unfenced single-coordinator mode and
// is always accepted. A term raising the cross-partition high-water
// mark is journaled before the node acts on any message carrying it,
// so a restarted node cannot be tricked into acknowledging an
// already-fenced coordinator.
func (nd *Node) observeTerm(part int, t uint64) bool {
	if t == 0 {
		return true
	}
	for {
		cur := nd.coordTerms[part].Load()
		if t < cur {
			return false
		}
		if t == cur {
			return true
		}
		if nd.coordTerms[part].CompareAndSwap(cur, t) {
			nd.noteTermHigh(t)
			return true
		}
	}
}

// observeTermAll folds a partition-less term (heartbeat, stale-term
// notice) into every partition's register. It reports false when the
// term is stale on every partition.
func (nd *Node) observeTermAll(t uint64) bool {
	if t == 0 {
		return true
	}
	ok := false
	for part := range nd.coordTerms {
		if nd.observeTerm(part, t) {
			ok = true
		}
	}
	return ok
}

// noteTermHigh journals and gauges a term that raised any partition's
// register, deduplicated through the cross-partition high-water mark.
func (nd *Node) noteTermHigh(t uint64) {
	for {
		cur := nd.coordTerm.Load()
		if t <= cur {
			return
		}
		if nd.coordTerm.CompareAndSwap(cur, t) {
			if j, ok := nd.journal.(TermJournal); ok {
				j.CoordTerm(t)
			}
			nd.reg.SetGauge(obs.GaugeCoordTerm, float64(t))
			return
		}
	}
}

// seedTerm installs a restored fencing term on every partition
// (restart adoption; the journal already holds it).
func (nd *Node) seedTerm(t uint64) {
	nd.coordTerm.Store(t)
	for i := range nd.coordTerms {
		nd.coordTerms[i].Store(t)
	}
}

// observeReplTerm folds a replication lease term into one partition's
// register, returning false when t is stale. Terms live in their own
// register space: a partition's replication lease and its coordinator
// fencing term advance independently, so minting a replica term never
// fences off a valid coordinator. A term that raises the register is
// journaled (ReplJournal) before the caller acts on the message that
// carried it, so a restarted node cannot re-adopt a deposed primary.
func (nd *Node) observeReplTerm(part int, t uint64) bool {
	if t == 0 {
		return true
	}
	for {
		cur := nd.replTerms[part].Load()
		if t < cur {
			return false
		}
		if t == cur {
			return true
		}
		if nd.replTerms[part].CompareAndSwap(cur, t) {
			if j, ok := nd.journal.(ReplJournal); ok {
				j.ReplTerm(part, t)
			}
			return true
		}
	}
}

// ReplTermPart returns the highest replication lease term this node has
// observed for one partition (threev-node's /health reports it).
func (nd *Node) ReplTermPart(part int) uint64 {
	if part < 0 || part >= len(nd.replTerms) {
		return 0
	}
	return nd.replTerms[part].Load()
}

// ReplSentSeq returns the highest replication sequence number this node
// has stamped on its partition-part stream (as a primary).
func (nd *Node) ReplSentSeq(part int) uint64 {
	if part < 0 || part >= len(nd.replSeqs) {
		return 0
	}
	return nd.replSeqs[part].Load()
}

// ReplAppliedSeq returns this node's applied replication frontier for
// partition part's stream from one sending node (as a backup).
func (nd *Node) ReplAppliedSeq(part int, from model.NodeID) uint64 {
	if part < 0 || part >= len(nd.replApplied) || int(from) < 0 || int(from) >= nd.n {
		return 0
	}
	return nd.replApplied[part][from].Load()
}

// seedRepl installs recovered replica-group frontiers (restart
// adoption; the journal already holds them).
func (nd *Node) seedRepl(terms, seqs []uint64, applied [][]uint64) {
	for i := range nd.replTerms {
		if i < len(terms) {
			nd.replTerms[i].Store(terms[i])
		}
		if i < len(seqs) {
			nd.replSeqs[i].Store(seqs[i])
		}
		if i < len(applied) {
			for j := range nd.replApplied[i] {
				if j < len(applied[i]) {
					nd.replApplied[i][j].Store(applied[i][j])
				}
			}
		}
	}
}

// handleReplicate is the backup half of a replica group: apply one
// effect set streamed by the partition's primary, idempotently, and
// report the applied frontier back. The reliable session provides FIFO
// and frame-level dedup; the per-(part, sender) applied frontier adds
// the app-level guard for the crash window where a backup's WAL holds
// an applied effect set but the session watermark was not yet durable —
// on restart the frame is retransmitted and must be skipped, not
// re-applied (AddOp twice is not idempotent).
func (nd *Node) handleReplicate(from model.NodeID, p ReplicateMsg) {
	if !nd.partOK(p.Part) {
		return
	}
	if int(from) < 0 || int(from) >= nd.n {
		nd.violate("node %v: replicate from non-node endpoint %v", nd.id, from)
		return
	}
	// Lease bookkeeping: a current-or-higher term renews the sender's
	// primaryship in the co-located replicator's view.
	if nd.observeReplTerm(p.Part, p.Term) {
		if f := nd.onReplBeat; f != nil {
			f(p.Part, from, p.Term)
		}
	}
	// Apply regardless of term: a deposed primary's in-flight ops are
	// acknowledged updates, and commuting ops merge with the successor's
	// stream in any order. Fencing arbitrates the lease, not the data.
	applied := false
	if len(p.Ops) > 0 {
		fr := &nd.replApplied[p.Part][from]
		if p.Seq > fr.Load() {
			// Clamp the apply version up to the local read version: Phase 4
			// may have collected versions below vr since the primary sent
			// this, and ApplyFrom's dual write folds the op into every
			// version >= the clamp, which is exactly where the update must
			// survive.
			nd.maybeAdvanceVU(p.Part, p.Version)
			nd.verMu.Lock()
			v := nd.pv[p.Part].vr
			nd.verMu.Unlock()
			if p.Version > v {
				v = p.Version
			}
			keys := make([]string, 0, len(p.Ops))
			for _, op := range p.Ops {
				keys = append(keys, op.Key)
			}
			release := nd.latches.Acquire(keys)
			for _, op := range p.Ops {
				nd.store.EnsureVersion(op.Key, v)
				nd.store.ApplyFrom(op.Key, v, op.Op)
			}
			release()
			fr.Store(p.Seq)
			if j, ok := nd.journal.(ReplJournal); ok {
				// Lazy append: the session's NoteRecv barrier after this
				// handler covers it before the frame is acknowledged.
				j.ReplApply(p.Part, from, p.Seq, v, p.Ops)
			}
			nd.reg.Inc(obs.CtrReplApplies, 1)
			applied = true
		}
	}
	// Always ack with the local applied frontier — never the message's
	// seq — so a heartbeat arriving ahead of unapplied data frames can
	// not fake a caught-up backup in the primary's lag view.
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: ReplicateAckMsg{
		Part: p.Part, Seq: nd.replApplied[p.Part][from].Load(), Node: nd.id,
	}})
	if applied {
		if h := nd.replApplyHook; h != nil {
			h(p.Part)
		}
	}
}

// handleReplicateAck is the primary half's lag bookkeeping: fold a
// backup's applied frontier into the replicator's acked view.
func (nd *Node) handleReplicateAck(p ReplicateAckMsg) {
	if !nd.partOK(p.Part) {
		return
	}
	nd.reg.Inc(obs.CtrReplAcks, 1)
	if f := nd.onReplAck; f != nil {
		f(p.Part, p.Node, p.Seq)
	}
}

// emitReplication streams one executed effect set to the partition's
// other owners. Called by executeSubtxn after local application; frames
// go through its send closure, so with a journal they ride the Exec
// barrier's outbox (durable before the wire) exactly like child
// subtransactions. The sent seq is journaled lazily before Exec's
// barrier — a recovered primary must never reuse a sequence number a
// backup may already have deduped against.
func (nd *Node) emitReplication(part int, v model.Version, ops []AppliedOp, send func(transport.Message)) {
	owners := nd.pmap.OwnerSet(part)
	if len(owners) < 2 {
		return
	}
	seq := nd.replSeqs[part].Add(1)
	if j, ok := nd.journal.(ReplJournal); ok {
		j.ReplSend(part, seq)
	}
	msg := ReplicateMsg{Part: part, Term: nd.replTerms[part].Load(), Seq: seq, Version: v, Ops: ops}
	for _, owner := range owners {
		if owner == nd.id {
			continue
		}
		send(transport.Message{From: nd.id, To: owner, Payload: msg})
		nd.reg.Inc(obs.CtrReplSends, 1)
	}
	if h := nd.replSendHook; h != nil {
		h(part)
	}
}

// rejectStale counts a fenced-off phase message and tells its sender
// which term supersedes it, so a deposed coordinator stops re-driving
// its sweep instead of timing out.
func (nd *Node) rejectStale(from model.NodeID, part int) {
	nd.reg.Inc(obs.CtrStaleTermRejects, 1)
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: StaleTermMsg{
		Term: nd.coordTerms[part].Load(), Node: nd.id,
	}})
}

// maybeAdvanceVU performs the implicit advancement notification of
// Section 2.2: an arriving subtransaction carrying a version greater
// than the local update version is itself the notice that advancement
// has begun.
func (nd *Node) maybeAdvanceVU(part int, v model.Version) {
	nd.verMu.Lock()
	defer nd.verMu.Unlock()
	if v > nd.pv[part].vu {
		nd.pv[part].vu = v
		nd.cnts[part].EnsureVersion(v)
		nd.metMu.Lock()
		nd.metrics.ImplicitAdvances++
		nd.metMu.Unlock()
		nd.checkVersionInvariantLocked(part)
	}
}

func (nd *Node) handleStartAdvancement(from model.NodeID, p StartAdvancementMsg) {
	nd.verMu.Lock()
	if p.NewVU > nd.pv[p.Part].vu {
		nd.pv[p.Part].vu = p.NewVU
		nd.cnts[p.Part].EnsureVersion(p.NewVU)
		nd.checkVersionInvariantLocked(p.Part)
	}
	nd.verMu.Unlock()
	if nd.journal != nil {
		// Durable before the ack: the coordinator will never repeat a
		// notice every node acknowledged.
		nd.journal.VersionUpdate(p.Part, p.NewVU)
	}
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: AckAdvancementMsg{NewVU: p.NewVU, Node: nd.id, Part: p.Part}})
}

func (nd *Node) handleReadVersion(from model.NodeID, p ReadVersionMsg) {
	var release []parkedNC
	nd.verMu.Lock()
	if p.NewVR > nd.pv[p.Part].vr {
		nd.pv[p.Part].vr = p.NewVR
		nd.vrCond.Broadcast()
		nd.checkVersionInvariantLocked(p.Part)
	}
	if p.Part == 0 {
		// NC3V roots only park in unpartitioned mode (partition 0).
		keep := nd.ncParked[:0]
		for _, it := range nd.ncParked {
			if it.msg.Version == nd.pv[0].vr+1 {
				release = append(release, it)
			} else {
				keep = append(keep, it)
			}
		}
		nd.ncParked = keep
	}
	nd.verMu.Unlock()
	// Re-dispatch NC roots whose advancement window has closed.
	for _, it := range release {
		nd.work.put(workItem{from: it.from, sub: it.msg})
	}
	if nd.journal != nil {
		nd.journal.VersionRead(p.Part, p.NewVR)
	}
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: AckReadVersionMsg{NewVR: p.NewVR, Node: nd.id, Part: p.Part}})
}

func (nd *Node) handleGC(from model.NodeID, p GCMsg) {
	if pred := nd.gcPred(p.Part); pred != nil {
		nd.store.GCFunc(p.Keep, pred)
	} else {
		nd.store.GC(p.Keep)
	}
	nd.cnts[p.Part].DropBelow(p.Keep)
	nd.reg.RecordEvent(obs.Event{Kind: obs.EvGC, Node: int(nd.id), Version: int64(p.Keep)})
	if nd.journal != nil {
		nd.journal.GC(p.Part, p.Keep)
	}
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: AckGCMsg{Keep: p.Keep, Node: nd.id, Part: p.Part}})
}

// sendStamp returns the SentAt stamp for outgoing subtransactions: the
// current time when instrumented, zero (no clock read) otherwise.
func (nd *Node) sendStamp() time.Time {
	if nd.reg == nil {
		return time.Time{}
	}
	return time.Now()
}

func (nd *Node) handleCounterReq(from model.NodeID, p CounterReqMsg) {
	cnt := nd.cnts[p.Part]
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: CounterReplyMsg{
		Version: p.Version,
		Round:   p.Round,
		Node:    nd.id,
		R:       cnt.SnapshotR(p.Version),
		C:       cnt.SnapshotC(p.Version),
		Part:    p.Part,
	}})
}

// handleCountersReq answers a batched counter sweep: one reply frame
// carrying a counter-matrix row pair per requested version. Snapshots
// are taken fresh at reply time — never cached across rounds — because
// the coordinator's double-collect detector compares consecutive
// rounds and a stale snapshot could fake quiescence.
func (nd *Node) handleCountersReq(from model.NodeID, p CountersReqMsg) {
	cnt := nd.cnts[p.Part]
	entries := make([]VersionCounters, len(p.Versions))
	for i, v := range p.Versions {
		entries[i] = VersionCounters{Version: v, R: cnt.SnapshotR(v), C: cnt.SnapshotC(v)}
	}
	nd.net.Send(transport.Message{From: nd.id, To: from, Payload: CountersMsg{
		Round:   p.Round,
		Node:    nd.id,
		Entries: entries,
		Part:    p.Part,
	}})
}

// checkVersionInvariantLocked asserts Section 4.4 property 3 for one
// partition: vr < vu ≤ vr + 2. Called with verMu held.
func (nd *Node) checkVersionInvariantLocked(part int) {
	vr, vu := nd.pv[part].vr, nd.pv[part].vu
	if !(vr < vu && vu <= vr+2) {
		nd.violate("node %v: partition %d version invariant broken: vr=%d vu=%d", nd.id, part, vr, vu)
	}
}

// execChunk accumulates the durability records and deferred tails of
// one admission chunk. Each journaled execution contributes its record,
// its outbox, and a tail closure; executeChunk then makes the whole
// chunk durable under one barrier and only afterwards runs the tails —
// the acknowledgement edges (child transmission is inside the journal
// call; local re-enqueue, client completion and the completion-counter
// increment are in the tail). Deferring IncC is always safe: the
// quiescence detector only ever errs toward "not yet terminated".
type execChunk struct {
	recs     []ExecRecord
	outboxes [][]transport.Message
	tails    []func(ids []uint64, fsyncD time.Duration, localAt time.Time)
	traced   bool
}

// executeChunk executes a drained chunk of work items. Without a
// journal every item runs to completion inline (the chunk only
// amortized the queue wakeup); with one, the journaled members share a
// single durability barrier via ChunkJournal when available.
func (nd *Node) executeChunk(items []workItem) {
	if nd.journal == nil {
		for _, it := range items {
			nd.executeSubtxn(it.from, it.sub, it.enqID, it.tc, it.recvAt, nil)
		}
		return
	}
	ch := &execChunk{}
	for _, it := range items {
		nd.executeSubtxn(it.from, it.sub, it.enqID, it.tc, it.recvAt, ch)
	}
	if len(ch.recs) == 0 {
		return
	}
	var t0 time.Time
	if ch.traced {
		t0 = time.Now()
	}
	var idss [][]uint64
	if cj, ok := nd.journal.(ChunkJournal); ok && len(ch.recs) > 1 {
		idss = cj.ExecChunk(ch.recs, ch.outboxes)
	} else {
		idss = make([][]uint64, len(ch.recs))
		for i := range ch.recs {
			idss[i] = nd.journal.Exec(ch.recs[i], ch.outboxes[i])
		}
	}
	var fsyncD time.Duration
	var localAt time.Time
	if ch.traced {
		// The shared barrier's full duration is charged to every traced
		// member: that is the fsync latency each one actually waited.
		fsyncD = time.Since(t0)
		localAt = time.Now()
	}
	for i, tail := range ch.tails {
		tail(idss[i], fsyncD, localAt)
	}
}

// executeSubtxn runs one subtransaction on a worker goroutine. enqID is
// the journal's id for the command (0 when not journaled); tc and
// recvAt are the envelope's trace context and delivery time (zero when
// the command is unsampled or tracing is off). A non-nil batch defers
// the journaled tail — durability barrier, local re-enqueue, span,
// completion report and C-counter increment — to the caller's chunk
// (see execChunk); everything the tail needs is captured in a closure.
func (nd *Node) executeSubtxn(from model.NodeID, msg SubtxnMsg, enqID uint64, tc obs.TraceContext, recvAt time.Time, batch *execChunk) {
	var start time.Time
	if nd.reg != nil {
		start = time.Now()
		if !msg.SentAt.IsZero() {
			nd.reg.ObserveHop(start.Sub(msg.SentAt))
		}
		defer func() { nd.reg.ObserveExec(time.Since(start)) }()
	}
	// Trace bookkeeping for sampled commands: mint this execution's span
	// id (children cite it as their parent) and split the pre-execution
	// delay into wire transit and worker-queue wait. NC subtransactions
	// are not traced (their 2PC detour is outside the stage model).
	traced := tc.Sampled() && nd.reg.TraceEnabled() && !msg.NC
	var spanID uint64
	var childTC obs.TraceContext
	var wireD, queueD time.Duration
	if traced {
		spanID = nd.reg.NextSpanID(int(nd.id))
		childTC = obs.TraceContext{TraceID: tc.TraceID, SpanID: spanID}
		if !recvAt.IsZero() {
			if !msg.SentAt.IsZero() {
				if wireD = recvAt.Sub(msg.SentAt); wireD < 0 {
					wireD = 0
				}
			}
			if queueD = start.Sub(recvAt); queueD < 0 {
				queueD = 0
			}
		}
	}
	if msg.NC {
		nd.executeNC(from, msg)
		return
	}
	// When journaled, the effect record is accumulated alongside the
	// in-memory mutations and every outgoing frame is held back in the
	// outbox: journal.Exec makes record and frames durable together,
	// then transmits. Without a journal, send transmits immediately and
	// the path is exactly the pre-durability one.
	part := msg.Part
	if part < 0 || part >= nd.nparts {
		nd.violate("node %v: subtxn %v partition %d out of range (P=%d)", nd.id, msg.Txn, part, nd.nparts)
		part = 0
	}
	cnt := nd.cnts[part]
	var rec *ExecRecord
	var outbox []transport.Message
	if nd.journal != nil {
		rec = &ExecRecord{EnqID: enqID, Txn: msg.Txn, From: from, Root: msg.Root, ReadOnly: msg.ReadOnly, Part: part}
	}
	send := func(m transport.Message) {
		if rec != nil {
			// Self-targeted children skip the network entirely: Exec
			// assigns them pending enq ids and they re-enter the worker
			// pool below, so a crash after the barrier re-enqueues rather
			// than loses them (and a retransmit can never double-run them).
			if m.To == nd.id {
				rec.Local = append(rec.Local, m.Payload.(SubtxnMsg))
			} else {
				outbox = append(outbox, m)
			}
			return
		}
		nd.net.Send(m)
	}
	v := msg.Version
	if msg.Root {
		// Step 1: assign the current update (or read) version and bump
		// the local-local request counter in one atomic step with
		// respect to version advancement.
		nd.verMu.Lock()
		if msg.ReadOnly {
			v = nd.pv[part].vr
		} else {
			v = nd.pv[part].vu
		}
		cnt.IncR(v, nd.id)
		nd.verMu.Unlock()
		if rec != nil {
			rec.IncR = append(rec.IncR, nd.id)
		}
		nd.metMu.Lock()
		nd.metrics.RootsAssigned++
		nd.metMu.Unlock()
		nd.obs.onVersion(msg.Txn, v)
	} else if !msg.ReadOnly {
		// Step 2: implicit advancement notification.
		nd.maybeAdvanceVU(part, v)
	}
	if rec != nil {
		rec.Version = v
	}

	spec := msg.Spec
	aborting := spec.Abort && !msg.ReadOnly
	// replOps mirrors rec.Ops for the replication stream; kept separate
	// because replication also runs without a journal (in-process
	// clusters) where rec is nil.
	var replOps []AppliedOp

	// In NC mode, well-behaved update subtransactions take commute
	// locks (two-phase, released by the asynchronous clean-up). Queries
	// take no locks (Section 8).
	lockOK := true
	if nd.ncMode && !msg.ReadOnly {
		lockOK = nd.acquireCommuteLocks(msg.Txn, spec)
		if !lockOK {
			// Lock timeout: cancel this subtree. Nothing was applied.
			nd.metMu.Lock()
			nd.metrics.LockAborts++
			nd.metMu.Unlock()
			aborting = true
		}
	}

	var reads []model.ReadResult
	if lockOK {
		keys := touchedKeys(spec)
		release := nd.latches.Acquire(keys)

		// Steps 3: reads see the maximum existing version ≤ V(T).
		for _, k := range spec.Reads {
			rec, ver, ok := nd.store.ReadMax(k, v)
			if ok {
				reads = append(reads, model.ReadResult{Node: nd.id, Key: k, VersionRead: ver, Record: rec})
			} else {
				reads = append(reads, model.ReadResult{Node: nd.id, Key: k, VersionRead: 0, Record: model.NewRecord()})
			}
		}

		// Step 4: copy-on-update, then apply to all versions ≥ V(T)
		// (the generalized dual write).
		if !msg.ReadOnly {
			for _, u := range spec.Updates {
				nd.store.EnsureVersion(u.Key, v)
				if rec != nil {
					rec.Ops = append(rec.Ops, AppliedOp{Key: u.Key, Op: u.Op})
				}
				if nd.replicate {
					replOps = append(replOps, AppliedOp{Key: u.Key, Op: u.Op})
				}
				if n := nd.store.ApplyFrom(u.Key, v, u.Op); n > 1 {
					nd.metMu.Lock()
					nd.metrics.DualWrites += int64(n - 1)
					nd.metMu.Unlock()
					nd.reg.Inc(obs.CtrDualWrites, int64(n-1))
					if nd.reg.SampleTick() {
						nd.reg.RecordEvent(obs.Event{Kind: obs.EvDualWrite, Node: int(nd.id),
							Txn: msg.Txn.String(), Version: int64(v), Detail: u.Key})
					}
				}
			}
		}
		release()
	}

	// Step 5: spawn children; bump the request counter strictly before
	// each send.
	if lockOK {
		for _, child := range spec.Children {
			cnt.IncR(v, child.Node)
			if rec != nil {
				rec.IncR = append(rec.IncR, child.Node)
			}
			nd.obs.onSpawn(msg.Txn, 1)
			send(transport.Message{From: nd.id, To: child.Node, TC: childTC, Payload: SubtxnMsg{
				Txn:          msg.Txn,
				Version:      v,
				Spec:         child,
				ReadOnly:     msg.ReadOnly,
				RootNode:     msg.RootNode,
				Compensating: msg.Compensating,
				SentAt:       nd.sendStamp(),
				Part:         part,
			}})
		}
	}

	if aborting {
		nd.abortSubtree(msg.Txn, v, part, spec, lockOK, rec, &replOps, send, childTC, msg.RootNode)
	}

	// Replica groups: stream the applied effect set (inverses included —
	// an aborted subtree's net effect replicates as-is) to the other
	// owners of this partition. Riding the send closure means the frames
	// share the Exec barrier with the effect record when journaled.
	if nd.replicate && len(replOps) > 0 {
		nd.emitReplication(part, v, replOps, send)
	}

	// finish is the termination tail: re-enqueue of journaled local
	// children, trace recording, and the acknowledgement edges (client
	// completion, C-counter increment). In chunk mode it is deferred
	// until after the chunk's shared durability barrier.
	finish := func(ids []uint64, fsyncD time.Duration, localAt time.Time) {
		if rec != nil {
			for i, m := range rec.Local {
				nd.work.put(workItem{from: nd.id, sub: m, enqID: ids[i], tc: childTC, recvAt: localAt})
			}
		}
		nd.finishSubtxn(from, msg, v, part, reads, aborting, traced, tc, spanID, start, wireD, queueD, fsyncD)
	}

	if batch != nil && rec != nil {
		// Chunk mode: park the record, its outbox and the tail with the
		// chunk. Nothing observable has happened yet — children are
		// unsent, completion unreported, IncC pending — so the chunk's
		// one barrier covers every acknowledgement edge of every member.
		batch.recs = append(batch.recs, *rec)
		batch.outboxes = append(batch.outboxes, outbox)
		batch.tails = append(batch.tails, finish)
		if traced {
			batch.traced = true
		}
		return
	}

	var fsyncD time.Duration
	var localAt time.Time
	var ids []uint64
	if rec != nil {
		// Durability barrier: the effect record and its child frames hit
		// the log before the first child reaches the wire, before the
		// client observes completion, and before the completion counter
		// tells the quiescence detector this subtransaction terminated.
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		ids = nd.journal.Exec(*rec, outbox)
		if traced {
			fsyncD = time.Since(t0)
			localAt = time.Now()
		}
	}
	finish(ids, fsyncD, localAt)
}

// finishSubtxn is Step 6 plus trace recording: runs strictly after the
// subtransaction's effects are durable (when journaled). It reports
// completion and only then increments the completion counter.
func (nd *Node) finishSubtxn(from model.NodeID, msg SubtxnMsg, v model.Version, part int, reads []model.ReadResult, aborting, traced bool, tc obs.TraceContext, spanID uint64, start time.Time, wireD, queueD, fsyncD time.Duration) {
	if traced {
		// Park the root's stage breakdown for the completion edge, then
		// record this execution's span — locally when this node is the
		// trace's root, else shipped home in a SpanReportMsg. Both happen
		// strictly before onDone so the completion path always finds the
		// breakdown parked.
		execEnd := time.Now()
		serviceD := execEnd.Sub(start)
		if msg.Root {
			nd.reg.TraceRootExec(tc.TraceID, int(nd.id), wireD, queueD, serviceD, fsyncD, execEnd)
		}
		name := "subtxn"
		if msg.ReadOnly {
			name = "query"
		}
		if msg.Compensating {
			name = "compensate"
		}
		attr := msg.Txn.String()
		if aborting {
			attr += " aborted"
		}
		sp := obs.Span{
			TraceID:  tc.TraceID,
			SpanID:   spanID,
			ParentID: tc.SpanID,
			Name:     name,
			Node:     int(nd.id),
			Start:    start.UnixNano(),
			Dur:      int64(serviceD),
			Attr:     attr,
			Stages: []obs.SpanStage{
				{Name: obs.StageNames[obs.StageWire], Dur: int64(wireD)},
				{Name: obs.StageNames[obs.StageQueue], Dur: int64(queueD)},
				{Name: obs.StageNames[obs.StageFsync], Dur: int64(fsyncD)},
			},
		}
		if nd.id == msg.RootNode {
			nd.reg.RecordSpan(sp)
		} else {
			nd.net.Send(transport.Message{From: nd.id, To: msg.RootNode, Payload: SpanReportMsg{Spans: []obs.Span{sp}}})
		}
	}

	// Step 6: report, then increment the completion counter and
	// terminate. source(T) is the invoking node; for roots it is this
	// node itself (the cluster submits roots with From == To).
	nd.metMu.Lock()
	if msg.ReadOnly {
		nd.metrics.QueriesExecuted++
	} else {
		nd.metrics.SubtxnsExecuted++
	}
	nd.metMu.Unlock()
	nd.obs.onDone(msg.Txn, nd.id, reads, aborting, msg.Root)
	nd.cnts[part].IncC(v, from)
}

// abortSubtree implements Section 3.2 for a subtransaction that aborts
// after doing its local work and spawning its children: roll back the
// local updates by applying their inverses (inverses of commuting ops
// commute, so this is correct regardless of interleaving) and send a
// compensating subtransaction chasing each spawned child. If applied is
// false the local updates were never performed (lock timeout) and only
// the children need compensating — but in that case no children were
// sent either, so there is nothing to do beyond bookkeeping.
func (nd *Node) abortSubtree(txn model.TxnID, v model.Version, part int, spec *model.SubtxnSpec, applied bool, rec *ExecRecord, replOps *[]AppliedOp, send func(transport.Message), childTC obs.TraceContext, rootNode model.NodeID) {
	if !applied {
		return
	}
	if len(spec.Updates) > 0 {
		keys := make([]string, 0, len(spec.Updates))
		for _, u := range spec.Updates {
			keys = append(keys, u.Key)
		}
		release := nd.latches.Acquire(keys)
		for _, u := range spec.Updates {
			if inv := u.Op.Inverse(); inv != nil {
				nd.store.ApplyFrom(u.Key, v, inv)
				if rec != nil {
					rec.Ops = append(rec.Ops, AppliedOp{Key: u.Key, Op: inv})
				}
				if nd.replicate {
					*replOps = append(*replOps, AppliedOp{Key: u.Key, Op: inv})
				}
			}
		}
		release()
	}
	for _, child := range spec.Children {
		comp := child.Compensator()
		nd.cnts[part].IncR(v, comp.Node)
		if rec != nil {
			rec.IncR = append(rec.IncR, comp.Node)
		}
		nd.obs.onSpawn(txn, 1)
		nd.metMu.Lock()
		nd.metrics.Compensations++
		nd.metMu.Unlock()
		send(transport.Message{From: nd.id, To: comp.Node, TC: childTC, Payload: SubtxnMsg{
			Txn:          txn,
			Version:      v,
			Spec:         comp,
			RootNode:     rootNode,
			Compensating: true,
			SentAt:       nd.sendStamp(),
			Part:         part,
		}})
	}
}

// acquireCommuteLocks takes CU locks on updated keys and CR locks on
// read keys for a well-behaved subtransaction. The fast path
// (TryAcquire) never waits; when an NC transaction holds a conflicting
// lock the slow path waits up to the lock manager's bound. Returns
// false on timeout (the subtree is then cancelled). Locks are held
// until the cluster's clean-up UnlockMsg.
func (nd *Node) acquireCommuteLocks(txn model.TxnID, spec *model.SubtxnSpec) bool {
	for _, u := range spec.Updates {
		if nd.lm.TryAcquire(txn, u.Key, locks.CommuteUpdate) {
			continue
		}
		if err := nd.lm.Acquire(txn, u.Key, locks.CommuteUpdate); err != nil {
			nd.lm.ReleaseAll(txn)
			return false
		}
	}
	for _, k := range spec.Reads {
		if nd.lm.TryAcquire(txn, k, locks.CommuteRead) {
			continue
		}
		if err := nd.lm.Acquire(txn, k, locks.CommuteRead); err != nil {
			nd.lm.ReleaseAll(txn)
			return false
		}
	}
	return true
}

// touchedKeys returns the local keys a spec reads or updates.
func touchedKeys(spec *model.SubtxnSpec) []string {
	keys := make([]string, 0, len(spec.Reads)+len(spec.Updates))
	keys = append(keys, spec.Reads...)
	for _, u := range spec.Updates {
		keys = append(keys, u.Key)
	}
	return keys
}
