package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/counters"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Typed failures a coordinator wait can surface instead of blocking
// forever. Test with errors.Is against AdvanceReport.Err or the error
// returned by Recover.
var (
	// ErrTimeout: a node never acknowledged (or never answered a
	// counter/version request) within Config.AckTimeout, re-broadcasts
	// included. With a reliable transport this indicates a down node;
	// without one, a lost message.
	ErrTimeout = errors.New("core: timed out waiting for node acknowledgements")
	// ErrClosed: Cluster.Close was called while the coordinator was
	// waiting; the cycle is abandoned.
	ErrClosed = errors.New("core: cluster closed while advancement was waiting")
	// ErrCrashed: the coordinator was crashed mid-cycle (see
	// Cluster.CrashCoordinator); a successor's Recover finishes the
	// cycle.
	ErrCrashed = errors.New("core: coordinator crashed")
	// ErrNoCoordinator: Advance was called in a distributed-mode
	// process that does not host the coordinator endpoint (see
	// Config.LocalCoordinator); drive advancement from the process
	// that does.
	ErrNoCoordinator = errors.New("core: this process does not host the advancement coordinator")
	// ErrStaleTerm: a node reported a fencing term higher than this
	// coordinator's — a successor has taken over, so this coordinator
	// is deposed and its in-flight cycle abandoned (the successor
	// re-drives it; every phase is idempotent).
	ErrStaleTerm = errors.New("core: coordinator deposed by a higher term")
)

// AdvanceReport describes one completed version-advancement cycle.
type AdvanceReport struct {
	// Part is the keyspace partition the cycle advanced (always 0 in
	// unpartitioned mode; aggregated reports from RunAdvancement over
	// several partitions report 0).
	Part int
	// Interrupted is true when the cycle did not complete: the
	// coordinator crashed, timed out, or the cluster closed mid-cycle.
	// Err carries the cause.
	Interrupted bool
	// Err is nil for a completed cycle; otherwise one of ErrCrashed,
	// ErrTimeout or ErrClosed.
	Err error
	// NewVU and NewVR are the versions installed by this cycle.
	NewVU, NewVR model.Version
	// Phase1 .. Phase4 are wall-clock durations of the four phases of
	// Section 4.3 (switch update version / updates phase-out / switch
	// read version / query phase-out + GC).
	Phase1, Phase2, Phase3, Phase4 time.Duration
	// SweepsPhase2 and SweepsPhase4 count the asynchronous counter
	// collections the termination detector needed.
	SweepsPhase2, SweepsPhase4 int
	// MaxCounterLag is the largest Σ(R−C) the quiescence polls of
	// Phases 2 and 4 observed — how far behind completion the cluster
	// was when advancement started draining it.
	MaxCounterLag int64
	Total         time.Duration
}

// Coordinator drives version advancement. It occupies its own endpoint
// on the network (id = number of database nodes) and talks to nodes
// exclusively through messages, so its activity is asynchronous with
// respect to every user transaction — the paper's central requirement.
//
// The paper assumes a distributed mutual-exclusion mechanism guarantees
// at most one advancement runs at a time; here a process-local mutex
// plays that role (see DESIGN.md substitutions).
type Coordinator struct {
	id           model.NodeID
	n            int
	net          transport.Network
	pollInterval time.Duration
	// ackTimeout bounds every wait on node responses (0 = wait
	// forever, the paper's reliable-network behaviour); resend is the
	// interval at which unanswered notices are re-broadcast to the
	// nodes still missing (0 = never — all notices are idempotent, so
	// re-broadcast is always safe when enabled).
	ackTimeout time.Duration
	resend     time.Duration
	reg        *obs.Registry // nil when observability is disabled
	// batchedCounters switches the quiescence sweeps to the batched
	// counter protocol: CountersReqMsg out, one CountersMsg per node
	// back (folded into the same replies map, so snapshot building and
	// the double-collect detector are unchanged). Set before Start.
	batchedCounters bool
	// term is this coordinator's fencing term, stamped on every phase
	// message it sends. 0 = unfenced (single-coordinator deployments);
	// failover-managed coordinators get a positive term before their
	// endpoint handler is registered, and the field is immutable after
	// that. See FailoverManager.
	term uint64

	mu      sync.Mutex
	cond    *sync.Cond
	ackVU   map[ackKey]map[model.NodeID]bool
	ackVR   map[ackKey]map[model.NodeID]bool
	ackGC   map[ackKey]map[model.NodeID]bool
	replies map[int]map[model.NodeID]CounterReplyMsg
	probes  map[int]map[model.NodeID]VersionReplyMsg
	round   int
	dead    bool // set by crash(); wakes and unwinds blocked waits
	closed  bool // set by shutdown() (Cluster.Close); unwinds blocked waits
	deposed bool // a node reported a higher term; unwinds waits with ErrStaleTerm
	// phaseHook, when set, is invoked at the end of each completed
	// phase of RunAdvancement with the partition and phase number
	// (1–4). It exists for chaos injection (kill the coordinator
	// mid-sweep at a deterministic protocol point) and runs without
	// c.mu held.
	phaseHook func(part, phase int)

	// nparts is the number of keyspace partitions; parts holds one
	// independent epoch per partition. Each partition has its own
	// advancement mutex, so sweeps on different partitions proceed
	// concurrently — partition A's quiescence never waits on partition
	// B's in-flight traffic. The shared fields above (ack registries,
	// reply maps, round counter) are keyed by partition or by globally
	// unique round, so concurrent sweeps never cross-talk; c.mu is held
	// only for map bookkeeping, never across a wait... the waits
	// themselves release it via cond.
	nparts int
	parts  []*coordPart

	histMu  sync.Mutex
	history []AdvanceReport
}

// ackKey scopes an acknowledgement registry entry to one partition's
// version: two partitions acknowledging the same version number must
// not satisfy each other's waits.
type ackKey struct {
	part int
	v    model.Version
}

// coordPart is one partition's epoch state at the coordinator.
type coordPart struct {
	advMu sync.Mutex // the "distributed mutex": one advancement per partition at a time
	// vu/vr are written only under advMu (one sweep per partition at a
	// time) and additionally under c.mu, so Versions() can observe them
	// without blocking on a sweep in flight (status surfaces poll it
	// while a failover recovery waits on unreachable nodes).
	vu, vr model.Version
	// phase is the advancement phase currently executing on this
	// partition (0 = idle, 1–4 mid-sweep), published in failover
	// heartbeats. Guarded by c.mu.
	phase int
}

// newCoordinator wires a coordinator for n database nodes and nparts
// keyspace partitions (pass 1 for the unpartitioned protocol).
func newCoordinator(n, nparts int, net transport.Network, pollInterval, ackTimeout, resend time.Duration, reg *obs.Registry) *Coordinator {
	if pollInterval <= 0 {
		pollInterval = 200 * time.Microsecond
	}
	if nparts < 1 {
		nparts = 1
	}
	c := &Coordinator{
		id:           model.NodeID(n),
		n:            n,
		nparts:       nparts,
		net:          net,
		pollInterval: pollInterval,
		ackTimeout:   ackTimeout,
		resend:       resend,
		reg:          reg,
		ackVU:        make(map[ackKey]map[model.NodeID]bool),
		ackVR:        make(map[ackKey]map[model.NodeID]bool),
		ackGC:        make(map[ackKey]map[model.NodeID]bool),
		replies:      make(map[int]map[model.NodeID]CounterReplyMsg),
		probes:       make(map[int]map[model.NodeID]VersionReplyMsg),
		parts:        make([]*coordPart, nparts),
	}
	for i := range c.parts {
		c.parts[i] = &coordPart{vu: 1, vr: 0}
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// handleMessage is the coordinator's transport handler.
func (c *Coordinator) handleMessage(m transport.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch p := m.Payload.(type) {
	case AckAdvancementMsg:
		ackInto(c.ackVU, ackKey{p.Part, p.NewVU}, p.Node)
	case AckReadVersionMsg:
		ackInto(c.ackVR, ackKey{p.Part, p.NewVR}, p.Node)
	case AckGCMsg:
		ackInto(c.ackGC, ackKey{p.Part, p.Keep}, p.Node)
	case CounterReplyMsg:
		rm := c.replies[p.Round]
		if rm == nil {
			rm = make(map[model.NodeID]CounterReplyMsg)
			c.replies[p.Round] = rm
		}
		rm[p.Node] = p
	case CountersMsg:
		// Batched reply: fold each entry into the per-round replies map
		// the unbatched path fills, one CounterReplyMsg per version (a
		// sweep round requests exactly one version, so this stores one).
		rm := c.replies[p.Round]
		if rm == nil {
			rm = make(map[model.NodeID]CounterReplyMsg)
			c.replies[p.Round] = rm
		}
		for _, e := range p.Entries {
			rm[p.Node] = CounterReplyMsg{Version: e.Version, Round: p.Round, Node: p.Node, R: e.R, C: e.C}
		}
	case VersionReplyMsg:
		pm := c.probes[p.Round]
		if pm == nil {
			pm = make(map[model.NodeID]VersionReplyMsg)
			c.probes[p.Round] = pm
		}
		pm[p.Node] = p
	case StaleTermMsg:
		// A node has seen a higher term than ours: a successor is
		// active. Depose this coordinator so any blocked wait unwinds
		// with ErrStaleTerm rather than re-driving a fenced-off sweep.
		if p.Term > c.term {
			c.deposed = true
		}
	default:
		return // stray message; ignore
	}
	c.cond.Broadcast()
}

func ackInto(m map[ackKey]map[model.NodeID]bool, k ackKey, node model.NodeID) {
	set := m[k]
	if set == nil {
		set = make(map[model.NodeID]bool)
		m[k] = set
	}
	set[node] = true
}

// Versions returns the coordinator's view of (vr, vu). It never blocks
// on an advancement in flight. In partitioned mode this is partition
// 0's pair; see VersionsPart.
func (c *Coordinator) Versions() (vr, vu model.Version) { return c.VersionsPart(0) }

// VersionsPart returns one partition's (vr, vu) pair.
func (c *Coordinator) VersionsPart(part int) (vr, vu model.Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parts[part].vr, c.parts[part].vu
}

// setVersions installs a new version pair for one partition. Callers
// hold the partition's advMu; c.mu is taken so concurrent Versions()
// readers see a consistent pair.
func (c *Coordinator) setVersions(part int, vu, vr model.Version) {
	c.mu.Lock()
	c.parts[part].vu, c.parts[part].vr = vu, vr
	c.mu.Unlock()
}

// History returns reports of completed advancement cycles.
func (c *Coordinator) History() []AdvanceReport {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	out := make([]AdvanceReport, len(c.history))
	copy(out, c.history)
	return out
}

// RunAdvancement executes one full four-phase advancement cycle
// (Section 4.3) on every partition, in partition order, and blocks
// until garbage collection has been acknowledged everywhere. With one
// partition this is exactly the unpartitioned protocol. User
// transactions are never blocked by it: every interaction with nodes
// is an asynchronous message. The returned report carries partition
// 0's installed versions, summed phase durations and sweep counts, and
// the first error that interrupted a partition's cycle (remaining
// partitions are skipped — a dead or deposed coordinator stays dead).
func (c *Coordinator) RunAdvancement() AdvanceReport {
	agg := c.RunAdvancementPart(0)
	for part := 1; part < c.nparts; part++ {
		if agg.Interrupted {
			break
		}
		rep := c.RunAdvancementPart(part)
		agg.Phase1 += rep.Phase1
		agg.Phase2 += rep.Phase2
		agg.Phase3 += rep.Phase3
		agg.Phase4 += rep.Phase4
		agg.Total += rep.Total
		agg.SweepsPhase2 += rep.SweepsPhase2
		agg.SweepsPhase4 += rep.SweepsPhase4
		if rep.MaxCounterLag > agg.MaxCounterLag {
			agg.MaxCounterLag = rep.MaxCounterLag
		}
		agg.Interrupted = rep.Interrupted
		if agg.Err == nil {
			agg.Err = rep.Err
		}
	}
	return agg
}

// RunAdvancementPart executes one four-phase advancement cycle on a
// single partition. Sweeps on different partitions hold different
// advancement mutexes and therefore run concurrently; each one drains
// and garbage-collects only its own partition's versions and counters.
func (c *Coordinator) RunAdvancementPart(part int) AdvanceReport {
	cp := c.parts[part]
	cp.advMu.Lock()
	defer cp.advMu.Unlock()

	// Bring any restarted-from-checkpoint node back to the installed
	// versions before opening a new cycle (no-op unless hardening is on
	// and a node actually lags).
	if err := c.resyncLagging(part); err != nil {
		return AdvanceReport{NewVU: cp.vu + 1, NewVR: cp.vr + 1, Interrupted: true, Err: err}
	}

	vuold, vunew := cp.vu, cp.vu+1
	vrold, vrnew := cp.vr, cp.vr+1
	rep := AdvanceReport{NewVU: vunew, NewVR: vrnew, Part: part}
	start := time.Now()

	interrupted := func(err error) AdvanceReport {
		c.enterPhase(part, 0)
		rep.Interrupted = true
		rep.Err = err
		rep.Total = time.Since(start)
		return rep
	}

	// Phase 1: switch to the new update version.
	c.enterPhase(part, 1)
	c.broadcast(StartAdvancementMsg{NewVU: vunew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackVU, ackKey{part, vunew}, StartAdvancementMsg{NewVU: vunew, Term: c.term, Part: part}); err != nil {
		return interrupted(err)
	}
	if err := c.phaseDone(part, 1); err != nil {
		return interrupted(err)
	}
	rep.Phase1 = time.Since(start)

	// Phase 2: updates phase-out — wait for inter-node consistency of
	// vuold by asynchronous counter reads.
	t2 := time.Now()
	c.enterPhase(part, 2)
	var lag2 int64
	var err error
	rep.SweepsPhase2, lag2, err = c.pollQuiescence(part, vuold)
	if err != nil {
		return interrupted(err)
	}
	if err := c.phaseDone(part, 2); err != nil {
		return interrupted(err)
	}
	rep.MaxCounterLag = lag2
	rep.Phase2 = time.Since(t2)

	// Phase 3: switch to the new read version.
	t3 := time.Now()
	c.enterPhase(part, 3)
	c.broadcast(ReadVersionMsg{NewVR: vrnew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackVR, ackKey{part, vrnew}, ReadVersionMsg{NewVR: vrnew, Term: c.term, Part: part}); err != nil {
		return interrupted(err)
	}
	if err := c.phaseDone(part, 3); err != nil {
		return interrupted(err)
	}
	rep.Phase3 = time.Since(t3)

	// Phase 4: wait for queries on vrold to terminate, then garbage
	// collect.
	t4 := time.Now()
	c.enterPhase(part, 4)
	var lag4 int64
	rep.SweepsPhase4, lag4, err = c.pollQuiescence(part, vrold)
	if err != nil {
		return interrupted(err)
	}
	if err := c.phaseDone(part, 4); err != nil {
		return interrupted(err)
	}
	if lag4 > rep.MaxCounterLag {
		rep.MaxCounterLag = lag4
	}
	c.broadcast(GCMsg{Keep: vrnew, Term: c.term, Part: part})
	if err := c.waitAcks(c.ackGC, ackKey{part, vrnew}, GCMsg{Keep: vrnew, Term: c.term, Part: part}); err != nil {
		return interrupted(err)
	}
	rep.Phase4 = time.Since(t4)

	c.setVersions(part, vunew, vrnew)
	c.enterPhase(part, 0)
	rep.Total = time.Since(start)

	c.reg.ObserveAdvance(
		[4]time.Duration{rep.Phase1, rep.Phase2, rep.Phase3, rep.Phase4},
		rep.Total, rep.SweepsPhase2+rep.SweepsPhase4)
	if part == 0 {
		c.reg.SetGauge(obs.GaugeVersionRead, float64(vrnew))
		c.reg.SetGauge(obs.GaugeVersionUpdate, float64(vunew))
	}
	if c.nparts > 1 {
		c.reg.SetGauge(obs.PartitionVersionGauge(part), float64(vrnew))
	}
	c.reg.DropPartLagsBelow(part, int64(vrnew))
	c.reg.RecordEvent(obs.Event{Kind: obs.EvVersionSwitch, Version: int64(vunew),
		Detail: fmt.Sprintf("part=%d vr=%d vu=%d sweeps=%d/%d", part, vrnew, vunew, rep.SweepsPhase2, rep.SweepsPhase4)})
	c.traceSweep(rep, start, t2, t3, t4)

	c.histMu.Lock()
	c.history = append(c.history, rep)
	c.histMu.Unlock()
	return rep
}

// traceSweep records a trace of one completed advancement cycle: a root
// "advance" span plus one child per phase of Section 4.3. Sweeps are rare
// (one per advancement, not per transaction), so every completed cycle is
// traced whenever tracing is enabled — no head sampling. Sweep trace ids
// set bit 63, disjoint from both transaction trace ids (bits 62 and 63
// clear) and minted subtransaction span ids (bit 62), so the three id
// spaces can share one ring without collision.
func (c *Coordinator) traceSweep(rep AdvanceReport, start, t2, t3, t4 time.Time) {
	if !c.reg.TraceEnabled() {
		return
	}
	traceID := c.reg.NextSpanID(c.n) | 1<<63
	end := start.Add(rep.Total)
	c.reg.RecordSpan(obs.Span{
		TraceID: traceID, SpanID: traceID, Name: "advance", Node: c.n,
		Start: start.UnixNano(), Dur: int64(rep.Total),
		Attr: fmt.Sprintf("part=%d vr=%d vu=%d sweeps=%d/%d maxlag=%d",
			rep.Part, rep.NewVR, rep.NewVU, rep.SweepsPhase2, rep.SweepsPhase4, rep.MaxCounterLag),
	})
	phases := []struct {
		name  string
		start time.Time
		dur   time.Duration
		attr  string
	}{
		{"phase1_switch_vu", start, rep.Phase1, fmt.Sprintf("vu=%d", rep.NewVU)},
		{"phase2_quiesce_updates", t2, rep.Phase2, fmt.Sprintf("sweeps=%d", rep.SweepsPhase2)},
		{"phase3_switch_vr", t3, rep.Phase3, fmt.Sprintf("vr=%d", rep.NewVR)},
		{"phase4_quiesce_queries_gc", t4, end.Sub(t4), fmt.Sprintf("sweeps=%d keep=%d", rep.SweepsPhase4, rep.NewVR)},
	}
	for _, p := range phases {
		c.reg.RecordSpan(obs.Span{
			TraceID: traceID, SpanID: c.reg.NextSpanID(c.n), ParentID: traceID,
			Name: p.name, Node: c.n, Start: p.start.UnixNano(), Dur: int64(p.dur), Attr: p.attr,
		})
	}
}

// broadcast sends the payload to every database node.
func (c *Coordinator) broadcast(payload any) {
	for i := 0; i < c.n; i++ {
		c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: payload})
	}
}

// shutdown (Cluster.Close) wakes every blocked wait so in-flight
// RunAdvancement/Recover calls unwind with ErrClosed instead of
// blocking a closing process forever.
func (c *Coordinator) shutdown() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// abortErrLocked returns the error that should unwind a blocked wait,
// or nil to keep waiting. Callers hold c.mu.
func (c *Coordinator) abortErrLocked() error {
	switch {
	case c.dead:
		return ErrCrashed
	case c.deposed:
		return ErrStaleTerm
	case c.closed:
		return ErrClosed
	}
	return nil
}

// abortErr is abortErrLocked without the lock held.
func (c *Coordinator) abortErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abortErrLocked()
}

// isDeposed reports whether a higher-term successor fenced this
// coordinator off.
func (c *Coordinator) isDeposed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deposed
}

// depose marks the coordinator fenced off by a higher term and wakes
// every blocked wait so it unwinds with ErrStaleTerm.
func (c *Coordinator) depose() {
	c.mu.Lock()
	c.deposed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// setPhaseHook installs (or clears) the per-phase chaos hook.
func (c *Coordinator) setPhaseHook(h func(part, phase int)) {
	c.mu.Lock()
	c.phaseHook = h
	c.mu.Unlock()
}

// getPhaseHook returns the installed chaos hook (takeover inheritance).
func (c *Coordinator) getPhaseHook() func(part, phase int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phaseHook
}

// enterPhase records the advancement phase now executing on one
// partition (0 = idle), for failover heartbeats and chaos attribution.
func (c *Coordinator) enterPhase(part, p int) {
	c.mu.Lock()
	c.parts[part].phase = p
	c.mu.Unlock()
}

// phaseDone fires the chaos hook for a just-completed phase and returns
// any abort condition that arose — possibly from inside the hook (e.g.
// a mid-sweep coordinator kill) — so RunAdvancement stops before
// issuing the next phase's messages instead of leaking them from a
// dead coordinator.
func (c *Coordinator) phaseDone(part, p int) error {
	c.mu.Lock()
	h := c.phaseHook
	c.mu.Unlock()
	if h != nil {
		h(part, p)
	}
	return c.abortErr()
}

// currentPhase returns the advancement phase in flight (0 = idle).
// With several partitions mid-sweep it reports the first non-idle one
// (heartbeats carry a single phase for operator display only).
func (c *Coordinator) currentPhase() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cp := range c.parts {
		if cp.phase != 0 {
			return cp.phase
		}
	}
	return 0
}

// currentPhasePart returns the advancement phase in flight on one
// partition (0 = idle).
func (c *Coordinator) currentPhasePart(part int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parts[part].phase
}

// waitKick waits on the coordinator's cond, but wakes after at most d
// even if no message arrives (d <= 0: wait indefinitely). Callers hold
// c.mu.
func (c *Coordinator) waitKick(d time.Duration) {
	if d <= 0 {
		c.cond.Wait()
		return
	}
	t := time.AfterFunc(d, c.cond.Broadcast)
	c.cond.Wait()
	t.Stop()
}

// kickInterval is the wake granularity for a bounded wait: the resend
// interval when re-broadcast is enabled, else a fraction of the
// timeout, else "block until signalled".
func (c *Coordinator) kickInterval() time.Duration {
	if c.resend > 0 {
		return c.resend
	}
	if c.ackTimeout > 0 {
		return c.ackTimeout / 4
	}
	return 0
}

// deadlineAfter returns the wait deadline implied by ackTimeout (zero
// time = none).
func (c *Coordinator) deadlineAfter(start time.Time) time.Time {
	if c.ackTimeout <= 0 {
		return time.Time{}
	}
	return start.Add(c.ackTimeout)
}

// waitAcks blocks until every node has acknowledged version v in the
// given ack registry, then clears the entry. When resend is configured
// the payload is periodically re-sent to the nodes still missing (all
// advancement notices are idempotent, so duplicates are harmless);
// when ackTimeout is configured the wait gives up with ErrTimeout
// instead of wedging on a lost message or a dead node.
func (c *Coordinator) waitAcks(reg map[ackKey]map[model.NodeID]bool, k ackKey, payload any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	deadline := c.deadlineAfter(start)
	nextResend := start.Add(c.resend)
	for len(reg[k]) < c.n {
		if err := c.abortErrLocked(); err != nil {
			return err
		}
		now := time.Now()
		if !deadline.IsZero() && now.After(deadline) {
			return ErrTimeout
		}
		if c.resend > 0 && now.After(nextResend) {
			for i := 0; i < c.n; i++ {
				if !reg[k][model.NodeID(i)] {
					c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: payload})
					c.reg.Inc(obs.CtrCoordResends, 1)
				}
			}
			nextResend = now.Add(c.resend)
		}
		c.waitKick(c.kickInterval())
	}
	delete(reg, k)
	return nil
}

// pollQuiescence repeatedly sweeps the cluster's counters for version v
// until the double-collect detector declares all version-v transactions
// terminated. It returns the number of sweeps used and the largest
// Σ(R−C) lag any sweep observed; the error is non-nil if the
// coordinator crashed, timed out or was closed while polling. Each
// sweep also publishes the version's live lag to the observability
// registry, so quiescence convergence is visible on the metrics
// endpoint while it happens.
func (c *Coordinator) pollQuiescence(part int, v model.Version) (sweeps int, maxLag int64, err error) {
	det := &counters.Detector{}
	for {
		c.mu.Lock()
		c.round++
		round := c.round
		c.mu.Unlock()

		var req any = CounterReqMsg{Version: v, Round: round, Term: c.term, Part: part}
		if c.batchedCounters {
			req = CountersReqMsg{Versions: []model.Version{v}, Round: round, Term: c.term, Part: part}
		}
		c.broadcast(req)

		c.mu.Lock()
		start := time.Now()
		deadline := c.deadlineAfter(start)
		nextResend := start.Add(c.resend)
		for len(c.replies[round]) < c.n {
			if werr := c.abortErrLocked(); werr != nil {
				c.mu.Unlock()
				return det.Sweeps(), maxLag, werr
			}
			now := time.Now()
			if !deadline.IsZero() && now.After(deadline) {
				c.mu.Unlock()
				return det.Sweeps(), maxLag, ErrTimeout
			}
			if c.resend > 0 && now.After(nextResend) {
				// Re-ask the nodes that have not answered this round
				// (the request or the reply was lost).
				for i := 0; i < c.n; i++ {
					if _, ok := c.replies[round][model.NodeID(i)]; !ok {
						c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: req})
						c.reg.Inc(obs.CtrCoordResends, 1)
					}
				}
				nextResend = now.Add(c.resend)
			}
			c.waitKick(c.kickInterval())
		}
		snap := counters.NewSnapshot(c.n)
		for node, rep := range c.replies[round] {
			snap.SetFromNode(node, rep.R, rep.C)
		}
		delete(c.replies, round)
		c.mu.Unlock()

		lag := lagOf(snap)
		if lag.SumLag > maxLag {
			maxLag = lag.SumLag
		}
		lag.Version = int64(v)
		lag.Part = part
		c.reg.SetCounterLag(lag)

		if det.Offer(snap) {
			return det.Sweeps(), maxLag, nil
		}
		time.Sleep(c.pollInterval)
	}
}

// lagOf reduces one counter sweep to its lag gauge: the summed and the
// largest per-pair R−C difference. A sloppy (asynchronous) observation
// can transiently read C ahead of R for a pair; those pairs clamp to 0
// rather than letting phantom negatives cancel real lag.
func lagOf(s *counters.Snapshot) obs.CounterLag {
	var lag obs.CounterLag
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			d := s.R[p][q] - s.C[p][q]
			if d < 0 {
				continue
			}
			lag.SumLag += d
			if d > lag.MaxPairLag {
				lag.MaxPairLag = d
			}
		}
	}
	return lag
}
