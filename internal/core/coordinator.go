package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/counters"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// AdvanceReport describes one completed version-advancement cycle.
type AdvanceReport struct {
	// Interrupted is true when the coordinator crashed mid-cycle (see
	// Cluster.CrashCoordinator); the cycle's effects, if any, are
	// finished by the successor's Recover.
	Interrupted bool
	// NewVU and NewVR are the versions installed by this cycle.
	NewVU, NewVR model.Version
	// Phase1 .. Phase4 are wall-clock durations of the four phases of
	// Section 4.3 (switch update version / updates phase-out / switch
	// read version / query phase-out + GC).
	Phase1, Phase2, Phase3, Phase4 time.Duration
	// SweepsPhase2 and SweepsPhase4 count the asynchronous counter
	// collections the termination detector needed.
	SweepsPhase2, SweepsPhase4 int
	// MaxCounterLag is the largest Σ(R−C) the quiescence polls of
	// Phases 2 and 4 observed — how far behind completion the cluster
	// was when advancement started draining it.
	MaxCounterLag int64
	Total         time.Duration
}

// Coordinator drives version advancement. It occupies its own endpoint
// on the network (id = number of database nodes) and talks to nodes
// exclusively through messages, so its activity is asynchronous with
// respect to every user transaction — the paper's central requirement.
//
// The paper assumes a distributed mutual-exclusion mechanism guarantees
// at most one advancement runs at a time; here a process-local mutex
// plays that role (see DESIGN.md substitutions).
type Coordinator struct {
	id           model.NodeID
	n            int
	net          transport.Network
	pollInterval time.Duration
	reg          *obs.Registry // nil when observability is disabled

	mu      sync.Mutex
	cond    *sync.Cond
	ackVU   map[model.Version]map[model.NodeID]bool
	ackVR   map[model.Version]map[model.NodeID]bool
	ackGC   map[model.Version]map[model.NodeID]bool
	replies map[int]map[model.NodeID]CounterReplyMsg
	probes  map[int]map[model.NodeID]VersionReplyMsg
	round   int
	dead    bool // set by crash(); wakes and unwinds blocked waits

	advMu  sync.Mutex // the "distributed mutex": one advancement at a time
	vu, vr model.Version

	histMu  sync.Mutex
	history []AdvanceReport
}

// newCoordinator wires a coordinator for n database nodes.
func newCoordinator(n int, net transport.Network, pollInterval time.Duration, reg *obs.Registry) *Coordinator {
	if pollInterval <= 0 {
		pollInterval = 200 * time.Microsecond
	}
	c := &Coordinator{
		id:           model.NodeID(n),
		n:            n,
		net:          net,
		pollInterval: pollInterval,
		reg:          reg,
		ackVU:        make(map[model.Version]map[model.NodeID]bool),
		ackVR:        make(map[model.Version]map[model.NodeID]bool),
		ackGC:        make(map[model.Version]map[model.NodeID]bool),
		replies:      make(map[int]map[model.NodeID]CounterReplyMsg),
		probes:       make(map[int]map[model.NodeID]VersionReplyMsg),
		vu:           1,
		vr:           0,
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// handleMessage is the coordinator's transport handler.
func (c *Coordinator) handleMessage(m transport.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch p := m.Payload.(type) {
	case AckAdvancementMsg:
		ackInto(c.ackVU, p.NewVU, p.Node)
	case AckReadVersionMsg:
		ackInto(c.ackVR, p.NewVR, p.Node)
	case AckGCMsg:
		ackInto(c.ackGC, p.Keep, p.Node)
	case CounterReplyMsg:
		rm := c.replies[p.Round]
		if rm == nil {
			rm = make(map[model.NodeID]CounterReplyMsg)
			c.replies[p.Round] = rm
		}
		rm[p.Node] = p
	case VersionReplyMsg:
		pm := c.probes[p.Round]
		if pm == nil {
			pm = make(map[model.NodeID]VersionReplyMsg)
			c.probes[p.Round] = pm
		}
		pm[p.Node] = p
	default:
		return // stray message; ignore
	}
	c.cond.Broadcast()
}

func ackInto(m map[model.Version]map[model.NodeID]bool, v model.Version, node model.NodeID) {
	set := m[v]
	if set == nil {
		set = make(map[model.NodeID]bool)
		m[v] = set
	}
	set[node] = true
}

// Versions returns the coordinator's view of (vr, vu).
func (c *Coordinator) Versions() (vr, vu model.Version) {
	c.advMu.Lock()
	defer c.advMu.Unlock()
	return c.vr, c.vu
}

// History returns reports of completed advancement cycles.
func (c *Coordinator) History() []AdvanceReport {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	out := make([]AdvanceReport, len(c.history))
	copy(out, c.history)
	return out
}

// RunAdvancement executes one full four-phase advancement cycle
// (Section 4.3) and blocks until garbage collection has been
// acknowledged everywhere. User transactions are never blocked by it:
// every interaction with nodes is an asynchronous message.
func (c *Coordinator) RunAdvancement() AdvanceReport {
	c.advMu.Lock()
	defer c.advMu.Unlock()

	vuold, vunew := c.vu, c.vu+1
	vrold, vrnew := c.vr, c.vr+1
	rep := AdvanceReport{NewVU: vunew, NewVR: vrnew}
	start := time.Now()

	interrupted := func() AdvanceReport {
		rep.Interrupted = true
		rep.Total = time.Since(start)
		return rep
	}

	// Phase 1: switch to the new update version.
	c.broadcast(StartAdvancementMsg{NewVU: vunew})
	if !c.waitAcks(c.ackVU, vunew) {
		return interrupted()
	}
	rep.Phase1 = time.Since(start)

	// Phase 2: updates phase-out — wait for inter-node consistency of
	// vuold by asynchronous counter reads.
	t2 := time.Now()
	var lag2 int64
	rep.SweepsPhase2, lag2 = c.pollQuiescence(vuold)
	if rep.SweepsPhase2 < 0 {
		return interrupted()
	}
	rep.MaxCounterLag = lag2
	rep.Phase2 = time.Since(t2)

	// Phase 3: switch to the new read version.
	t3 := time.Now()
	c.broadcast(ReadVersionMsg{NewVR: vrnew})
	if !c.waitAcks(c.ackVR, vrnew) {
		return interrupted()
	}
	rep.Phase3 = time.Since(t3)

	// Phase 4: wait for queries on vrold to terminate, then garbage
	// collect.
	t4 := time.Now()
	var lag4 int64
	rep.SweepsPhase4, lag4 = c.pollQuiescence(vrold)
	if rep.SweepsPhase4 < 0 {
		return interrupted()
	}
	if lag4 > rep.MaxCounterLag {
		rep.MaxCounterLag = lag4
	}
	c.broadcast(GCMsg{Keep: vrnew})
	if !c.waitAcks(c.ackGC, vrnew) {
		return interrupted()
	}
	rep.Phase4 = time.Since(t4)

	c.vu, c.vr = vunew, vrnew
	rep.Total = time.Since(start)

	c.reg.ObserveAdvance(
		[4]time.Duration{rep.Phase1, rep.Phase2, rep.Phase3, rep.Phase4},
		rep.Total, rep.SweepsPhase2+rep.SweepsPhase4)
	c.reg.SetGauge(obs.GaugeVersionRead, float64(vrnew))
	c.reg.SetGauge(obs.GaugeVersionUpdate, float64(vunew))
	c.reg.DropLagsBelow(int64(vrnew))
	c.reg.RecordEvent(obs.Event{Kind: obs.EvVersionSwitch, Version: int64(vunew),
		Detail: fmt.Sprintf("vr=%d vu=%d sweeps=%d/%d", vrnew, vunew, rep.SweepsPhase2, rep.SweepsPhase4)})

	c.histMu.Lock()
	c.history = append(c.history, rep)
	c.histMu.Unlock()
	return rep
}

// broadcast sends the payload to every database node.
func (c *Coordinator) broadcast(payload any) {
	for i := 0; i < c.n; i++ {
		c.net.Send(transport.Message{From: c.id, To: model.NodeID(i), Payload: payload})
	}
}

// waitAcks blocks until every node has acknowledged version v in the
// given ack registry, then clears the entry. It returns false if the
// coordinator crashed while waiting.
func (c *Coordinator) waitAcks(reg map[model.Version]map[model.NodeID]bool, v model.Version) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(reg[v]) < c.n {
		if c.dead {
			return false
		}
		c.cond.Wait()
	}
	delete(reg, v)
	return true
}

// pollQuiescence repeatedly sweeps the cluster's counters for version v
// until the double-collect detector declares all version-v transactions
// terminated. It returns the number of sweeps used (or -1 if the
// coordinator crashed while polling) and the largest Σ(R−C) lag any
// sweep observed. Each sweep also publishes the version's live lag to
// the observability registry, so quiescence convergence is visible on
// the metrics endpoint while it happens.
func (c *Coordinator) pollQuiescence(v model.Version) (sweeps int, maxLag int64) {
	det := &counters.Detector{}
	for {
		c.mu.Lock()
		c.round++
		round := c.round
		c.mu.Unlock()

		c.broadcast(CounterReqMsg{Version: v, Round: round})

		c.mu.Lock()
		for len(c.replies[round]) < c.n {
			if c.dead {
				c.mu.Unlock()
				return -1, maxLag
			}
			c.cond.Wait()
		}
		snap := counters.NewSnapshot(c.n)
		for node, rep := range c.replies[round] {
			snap.SetFromNode(node, rep.R, rep.C)
		}
		delete(c.replies, round)
		c.mu.Unlock()

		lag := lagOf(snap)
		if lag.SumLag > maxLag {
			maxLag = lag.SumLag
		}
		lag.Version = int64(v)
		c.reg.SetCounterLag(lag)

		if det.Offer(snap) {
			return det.Sweeps(), maxLag
		}
		time.Sleep(c.pollInterval)
	}
}

// lagOf reduces one counter sweep to its lag gauge: the summed and the
// largest per-pair R−C difference. A sloppy (asynchronous) observation
// can transiently read C ahead of R for a pair; those pairs clamp to 0
// rather than letting phantom negatives cancel real lag.
func lagOf(s *counters.Snapshot) obs.CounterLag {
	var lag obs.CounterLag
	for p := 0; p < s.N; p++ {
		for q := 0; q < s.N; q++ {
			d := s.R[p][q] - s.C[p][q]
			if d < 0 {
				continue
			}
			lag.SumLag += d
			if d > lag.MaxPairLag {
				lag.MaxPairLag = d
			}
		}
	}
	return lag
}
