package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

func TestHandleLifecycle(t *testing.T) {
	h := newHandle(model.MakeTxnID(0, 1))
	if h.Status() != StatusPending {
		t.Fatalf("new handle status = %v", h.Status())
	}
	if h.Latency() != 0 {
		t.Error("pending handle has nonzero latency")
	}
	if _, ok := h.Version(); ok {
		t.Error("version set before root ran")
	}
	h.addExpected(2)
	h.reportVersion(3)
	h.reportDone(1, []model.ReadResult{{Key: "a"}}, false)
	if h.Status() != StatusPending {
		t.Fatal("handle completed early")
	}
	select {
	case <-h.Done():
		t.Fatal("Done closed early")
	default:
	}
	h.reportDone(0, nil, false)
	select {
	case <-h.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed at completion")
	}
	if h.Status() != StatusCommitted {
		t.Errorf("status = %v, want committed", h.Status())
	}
	if v, ok := h.Version(); !ok || v != 3 {
		t.Errorf("version = %d/%v", v, ok)
	}
	if got := h.Nodes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Nodes = %v, want [0 1]", got)
	}
	if len(h.Reads()) != 1 {
		t.Errorf("Reads = %v", h.Reads())
	}
	if h.Latency() <= 0 {
		t.Error("completed handle has zero latency")
	}
}

func TestHandleAbortStatuses(t *testing.T) {
	h := newHandle(model.MakeTxnID(0, 2))
	h.addExpected(1)
	h.reportDone(0, nil, true)
	if h.Status() != StatusCompensated {
		t.Errorf("status = %v, want compensated", h.Status())
	}
	h2 := newHandle(model.MakeTxnID(0, 3))
	h2.addExpected(1)
	h2.reportNCAbort()
	h2.reportDone(0, nil, true)
	if h2.Status() != StatusAborted {
		t.Errorf("status = %v, want aborted", h2.Status())
	}
}

func TestHandleMarkCountedOnce(t *testing.T) {
	h := newHandle(model.MakeTxnID(0, 4))
	if !h.markCounted() {
		t.Fatal("first markCounted = false")
	}
	if h.markCounted() {
		t.Fatal("second markCounted = true")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending:     "pending",
		StatusCommitted:   "committed",
		StatusCompensated: "compensated",
		StatusAborted:     "aborted",
		Status(99):        "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestNodeRejectsUnknownPayload(t *testing.T) {
	c := newTestCluster(t, Config{})
	type alien struct{}
	c.Network().Send(transport.Message{From: 0, To: 0, Payload: alien{}})
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Node(0).Metrics().Violations) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown payload not recorded as violation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoordinatorIgnoresStrayMessages(t *testing.T) {
	// A stray subtransaction-like payload sent to the coordinator must
	// not break subsequent advancement.
	c := newTestCluster(t, Config{})
	coordID := model.NodeID(c.NumNodes())
	c.Network().Send(transport.Message{From: 0, To: coordID, Payload: SubtxnMsg{}})
	rep := c.Advance()
	if rep.Interrupted || rep.NewVR != 1 {
		t.Errorf("advancement after stray message: %+v", rep)
	}
}

func TestConcurrentAdvancementsSerialize(t *testing.T) {
	// Two concurrent Advance calls must produce two distinct,
	// sequential cycles (the advMu "distributed mutex").
	c := newTestCluster(t, Config{})
	a := c.AdvanceAsync()
	b := c.AdvanceAsync()
	ra, rb := <-a, <-b
	got := map[model.Version]bool{ra.NewVR: true, rb.NewVR: true}
	if !got[1] || !got[2] {
		t.Errorf("cycles produced NewVRs %d and %d, want 1 and 2", ra.NewVR, rb.NewVR)
	}
	vr, vu := c.Coordinator().Versions()
	if vr != 2 || vu != 3 {
		t.Errorf("final versions vr=%d vu=%d, want 2/3", vr, vu)
	}
}

func TestMetricsAccounting(t *testing.T) {
	c := newTestCluster(t, Config{})
	h, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
		Node:    0,
		Updates: []model.KeyOp{addOp("A", 1)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{addOp("D", 1)}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, h)
	q, err := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{Node: 0, Reads: []string{"A"}}})
	if err != nil {
		t.Fatal(err)
	}
	waitHandle(t, q)
	m := c.Metrics()
	var roots, subtxns, queries int64
	for _, nm := range m.PerNode {
		roots += nm.RootsAssigned
		subtxns += nm.SubtxnsExecuted
		queries += nm.QueriesExecuted
	}
	if roots != 2 {
		t.Errorf("RootsAssigned total = %d, want 2", roots)
	}
	if subtxns != 2 { // update root + one child
		t.Errorf("SubtxnsExecuted = %d, want 2", subtxns)
	}
	if queries != 1 {
		t.Errorf("QueriesExecuted = %d, want 1", queries)
	}
	if m.Transport.Messages == 0 {
		t.Error("transport accounting empty")
	}
	if c.CommittedUpdates() != 1 {
		t.Errorf("CommittedUpdates = %d, want 1", c.CommittedUpdates())
	}
}
