package core

import (
	"repro/internal/counters"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/transport"
)

// This file defines the node's durability seam. core stays free of any
// disk or codec dependency: it describes each command and each executed
// subtransaction's effects to a Journal (implemented by
// internal/durable over internal/wal + internal/wire), and accepts
// recovered state back through NodeRestore. With a nil Journal every
// hook compiles away to the pre-durability behaviour.
//
// The invariant the hooks thread through the execution path is
// "nothing acknowledged is ever lost":
//
//   - a subtransaction command is journaled on arrival (Enq), before
//     the reliable session acknowledges the frame that carried it, so a
//     crashed node still knows every command its peers consider
//     delivered;
//   - a subtransaction's effects — store ops, counter increments, and
//     the exact child frames it spawns — are journaled atomically
//     (Exec) and made durable before any child frame reaches the wire,
//     so recovery can re-send the same frames with the same sequence
//     numbers and peers dedup them;
//   - version switches and GC are journaled (VersionUpdate/VersionRead/
//     GC) before the node acknowledges them to the coordinator.
//
// Replaying effects in WAL order is correct even though it can differ
// from the original latch order: concurrent subtransactions only ever
// race commuting ops (AddOp and friends; NC mode is forbidden with a
// journal), and the generalized dual write applies each op to every
// version ≥ v, so both interleavings produce identical version chains.

// AppliedOp is one durable store mutation of an executed
// subtransaction: EnsureVersion(Key, rec.Version) followed by
// ApplyFrom(Key, rec.Version, Op). Abort inverses appear as ordinary
// AppliedOps after the ops they undo.
type AppliedOp struct {
	Key string
	Op  model.Op
}

// ExecRecord is the complete effect set of one executed
// subtransaction — everything recovery must re-apply if the node dies
// after this record is durable.
type ExecRecord struct {
	// EnqID identifies the command (from Journal.Enq) this execution
	// consumed; recovery drops it from the pending set.
	EnqID    uint64
	Txn      model.TxnID
	From     model.NodeID
	Version  model.Version
	Root     bool
	ReadOnly bool
	// Part is the keyspace partition the subtransaction belongs to;
	// recovery restores its counter increments into that partition's
	// table. Always 0 in unpartitioned deployments.
	Part int
	// Ops are the store mutations in application order.
	Ops []AppliedOp
	// IncR lists the destinations whose request counter R[Version][self][to]
	// this execution bumped, in order: the root's self-increment first
	// (roots only), then one entry per spawned child and compensator.
	// The completion increment C[Version][From][self] is implied.
	IncR []model.NodeID
	// Local holds child/compensator commands addressed to this node
	// itself, in spawn order. They never touch the network: Exec assigns
	// each a pending enq id (returned in order) and the node loops them
	// straight back to its worker pool, so a crash after Exec re-enqueues
	// them from the pending set instead of losing them.
	Local []SubtxnMsg
}

// Journal receives the node's durability callbacks. Implementations
// must make Exec, VersionUpdate, VersionRead and GC durable before
// returning; Enq may be lazy (the reliable session's NoteRecv barrier
// covers it before the frame is acknowledged).
type Journal interface {
	// Enq records an arrived subtransaction command and returns its
	// journal-assigned id.
	Enq(from model.NodeID, msg SubtxnMsg) uint64
	// Exec records an execution's effects and transmits its outbox
	// (child and compensator SubtxnMsgs, in spawn order) — durable
	// strictly before the first frame leaves. The returned slice has one
	// journal-assigned enq id per rec.Local entry, in order; the caller
	// re-enqueues those commands locally.
	Exec(rec ExecRecord, outbox []transport.Message) []uint64
	// VersionUpdate records partition part's vu = max(vu, v)
	// (advancement Phase 1).
	VersionUpdate(part int, v model.Version)
	// VersionRead records partition part's vr = max(vr, v)
	// (advancement Phase 3).
	VersionRead(part int, v model.Version)
	// GC records the truncation of partition part's versions below v
	// (Phase 4).
	GC(part int, v model.Version)
}

// ChunkJournal is an optional Journal extension: implementations that
// can make a whole chunk of execution records durable under a single
// barrier. ExecChunk is Exec over recs[i]/outboxes[i] pairs, except
// that one durability barrier covers every record, and no outbox frame
// of any member reaches the wire (and no member's returned ids are
// acted on) before that shared barrier. The invariant "nothing
// acknowledged is ever lost" is preserved because the node defers
// every acknowledgement edge of every member — child transmission,
// client completion, and the completion-counter increment — until
// ExecChunk returns. Checked by type assertion; a Journal without it
// simply pays one barrier per record.
type ChunkJournal interface {
	// ExecChunk journals recs[i] with child frames outboxes[i] for every
	// i, makes them durable under one barrier, then transmits. Returns
	// one id slice per record, aligned with recs (see Journal.Exec).
	ExecChunk(recs []ExecRecord, outboxes [][]transport.Message) [][]uint64
}

// TermJournal is an optional Journal extension: implementations that
// support coordinator failover record the node's highest observed
// fencing term durably (max-merge on replay), so a restarted node
// cannot acknowledge a coordinator the cluster fenced off before the
// crash. Checked by type assertion; a Journal without it simply keeps
// terms in memory only.
type TermJournal interface {
	// CoordTerm records term = max(term, t), durable before return.
	CoordTerm(t uint64)
}

// ReplJournal is an optional Journal extension for per-partition
// replica groups. Implementations journal three things: effect sets a
// backup applied from its primary's replication stream (ReplApply —
// lazy, covered by the reliable session's NoteRecv barrier exactly like
// Enq), the node's replication lease term per partition (ReplTerm —
// durable before return, max-merge on replay, so a restarted node never
// acks a deposed primary's stream as current), and the primary's sent
// replication sequence number per partition (ReplSend — lazy, covered
// by the Exec barrier that follows it, so a recovered primary never
// reuses a sequence number a backup already deduped against). Checked
// by type assertion; a Journal without it replicates from memory only.
type ReplJournal interface {
	// ReplApply records that this node applied the effect set (part,
	// from, seq) at version v with store mutations ops.
	ReplApply(part int, from model.NodeID, seq uint64, v model.Version, ops []AppliedOp)
	// ReplTerm records partition part's replication term = max(term, t),
	// durable before return.
	ReplTerm(part int, t uint64)
	// ReplSend records partition part's highest sent replication seq.
	ReplSend(part int, seq uint64)
}

// PendingSubtxn is a command that was journaled (Enq) but whose
// execution record never became durable: recovery re-enqueues it.
type PendingSubtxn struct {
	EnqID uint64
	From  model.NodeID
	Msg   SubtxnMsg
}

// NodeRestore carries a crashed node's recovered state into NewCluster
// (distributed mode, single local node). Store and Counters are adopted
// as-is; Pending is re-enqueued to the worker pool on Start, preserving
// original enq ids so re-execution journals against the same command.
type NodeRestore struct {
	Store    *storage.Store
	Counters *counters.Table
	VR, VU   model.Version
	Pending  []PendingSubtxn
	// NextEnq seeds the journal's enq-id sequence past every recovered
	// id (informational here; the journal implementation owns it).
	NextEnq uint64
	// CoordTerm is the highest coordinator fencing term the node had
	// durably observed before the crash (0 when failover never ran).
	CoordTerm uint64
	// PartVR/PartVU/PartCounters carry per-partition state when the
	// deployment runs more than one keyspace partition; index =
	// partition id, and all three must have length Partitions. When
	// nil, the legacy VR/VU/Counters fields describe partition 0 (the
	// only partition).
	PartVR, PartVU []model.Version
	PartCounters   []*counters.Table
	// ReplTerms/ReplSeqs/ReplApplied carry the replica-group frontiers
	// when replication ran before the crash: the highest replication
	// lease term observed per partition, the highest replication seq
	// this node sent per partition (as a primary), and the highest seq
	// applied per partition per sending node (as a backup, the dedup
	// frontier). Nil when replication never ran.
	ReplTerms   []uint64
	ReplSeqs    []uint64
	ReplApplied [][]uint64
}
