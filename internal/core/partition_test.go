package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// TestPartitionSweepsDoNotBlockEachOther is the partition-independence
// gate (run under -race in CI): wedge partition 1's sweep mid-
// advancement — the phase hook blocks while that sweep holds its own
// per-partition advancement lock — and require that partition 0's full
// sweep still completes, with update traffic flowing in BOTH partitions
// the whole time. Under a single global epoch either the shared lock or
// the shared quiescence check would make partition 0 wait.
func TestPartitionSweepsDoNotBlockEachOther(t *testing.T) {
	const nparts = 2
	c, err := NewCluster(Config{Nodes: 2, Partitions: nparts})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, nparts)
	for i, found := 0, 0; found < nparts; i++ {
		k := fmt.Sprintf("k%04d", i)
		if p := c.pmap.Of(k); keys[p] == "" {
			keys[p] = k
			found++
		}
	}
	for p, k := range keys {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		c.Preload(c.pmap.Primary(p), k, rec)
	}

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	c.SetPartPhaseHook(func(part, phase int) {
		if part == 1 && phase == 1 {
			once.Do(func() { close(entered) })
			<-release
		}
	})
	c.Start()
	defer c.Close()

	// Continuous acknowledged traffic in both partitions for the whole
	// stall window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent atomic.Int64
	for p := 0; p < nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, serr := c.Submit(&model.TxnSpec{Root: &model.SubtxnSpec{
					Node:    c.pmap.Primary(p),
					Updates: []model.KeyOp{{Key: keys[p], Op: model.AddOp{Field: "bal", Delta: 1}}},
				}})
				if serr != nil {
					t.Error(serr)
					return
				}
				if !h.WaitTimeout(30 * time.Second) {
					t.Error("update timed out")
					return
				}
				sent.Add(1)
			}
		}(p)
	}

	// Wedge partition 1's sweep right after phase 1 completes (vu
	// switched, quiescence not yet run) — it parks holding its own
	// advancement lock.
	done1 := make(chan AdvanceReport, 1)
	go func() { done1 <- c.AdvancePartition(1) }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("partition 1's sweep never completed phase 1")
	}

	// Partition 0's full four-phase sweep must complete while partition
	// 1 is wedged mid-advancement and both partitions carry traffic.
	done0 := make(chan AdvanceReport, 1)
	go func() { done0 <- c.AdvancePartition(0) }()
	select {
	case rep0 := <-done0:
		if rep0.Interrupted {
			t.Fatalf("partition 0's sweep failed: %v", rep0.Err)
		}
		if rep0.Part != 0 || rep0.NewVR != 1 {
			t.Fatalf("partition 0's sweep completed oddly: %+v", rep0)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("partition 0's sweep blocked behind partition 1's stalled sweep")
	}

	close(release)
	rep1 := <-done1
	if rep1.Interrupted {
		t.Fatalf("partition 1's sweep failed after release: %v", rep1.Err)
	}
	close(stop)
	wg.Wait()
	if sent.Load() == 0 {
		t.Fatal("no traffic flowed during the sweeps")
	}

	// Drain whatever the last submissions left in flight and audit.
	if rep := c.Advance(); rep.Interrupted {
		t.Fatalf("final full sweep failed: %v", rep.Err)
	}
	if errs := c.ConvergenceErrors(); len(errs) != 0 {
		t.Fatalf("convergence errors: %v", errs)
	}
}
