package core

import "testing"

// BenchmarkWorkQueue drives the node work queue through sustained
// 256-deep bursts — the delivery-goroutine → worker-pool handoff
// pattern under load. The pre-ring implementation (append +
// q.items = q.items[1:]) reallocates and retains dead backing arrays as
// the slice head advances; the ring reuses one power-of-two buffer.
func BenchmarkWorkQueue(b *testing.B) {
	q := newWorkQueue()
	it := workItem{}
	b.ReportAllocs()
	b.ResetTimer()
	for n := b.N; n > 0; {
		burst := 256
		if burst > n {
			burst = n
		}
		for i := 0; i < burst; i++ {
			q.put(it)
		}
		for i := 0; i < burst; i++ {
			if _, ok := q.get(); !ok {
				b.Fatal("queue closed early")
			}
		}
		n -= burst
	}
}

// BenchmarkWorkQueuePingPong measures the single put/get round trip
// (queue-depth-1 latency path).
func BenchmarkWorkQueuePingPong(b *testing.B) {
	q := newWorkQueue()
	it := workItem{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.put(it)
		if _, ok := q.get(); !ok {
			b.Fatal("queue closed early")
		}
	}
}
