package core

import (
	"sync"
	"testing"

	"repro/internal/model"
)

// TestWorkQueueFIFOAndClose covers the queue contract the worker pool
// relies on: FIFO order, close() draining to (zero, false), and puts
// after close being dropped.
func TestWorkQueueFIFOAndClose(t *testing.T) {
	q := newWorkQueue()
	for i := 0; i < 10; i++ {
		q.put(workItem{sub: SubtxnMsg{Version: model.Version(i)}})
	}
	for i := 0; i < 10; i++ {
		it, ok := q.get()
		if !ok || it.sub.Version != model.Version(i) {
			t.Fatalf("get #%d = v%d ok=%v", i, it.sub.Version, ok)
		}
	}
	q.close()
	if _, ok := q.get(); ok {
		t.Fatal("get after close on empty queue reported ok")
	}
	q.put(workItem{})
	if _, ok := q.get(); ok {
		t.Fatal("put after close was accepted")
	}
}

// TestWorkQueueSteadyStateCapacityBounded is the regression test for
// the slice-shift retention bug (q.items = q.items[1:] kept the backing
// array alive and growing under sustained load): after pushing far more
// items through the queue than its backlog ever holds, the ring's
// capacity must be bounded by the backlog high-water mark, not by
// cumulative throughput.
func TestWorkQueueSteadyStateCapacityBounded(t *testing.T) {
	q := newWorkQueue()
	const depth = 50
	for i := 0; i < 100000; i++ {
		q.put(workItem{})
		if i%2 == 0 || queueLen(q) >= depth {
			if _, ok := q.get(); !ok {
				t.Fatal("queue closed unexpectedly")
			}
		}
	}
	if c := queueCap(q); c > 64 { // next power of two above depth
		t.Errorf("steady-state capacity = %d after 100k items at backlog ≤ %d, want ≤ 64", c, depth)
	}
}

// TestWorkQueueConcurrentProducersConsumers moves a fixed item count
// through the queue with concurrent producers and consumers (run under
// -race in CI).
func TestWorkQueueConcurrentProducersConsumers(t *testing.T) {
	q := newWorkQueue()
	const (
		producers = 4
		perProd   = 5000
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.put(workItem{})
			}
		}()
	}
	var consumed sync.WaitGroup
	total := producers * perProd
	consumed.Add(total)
	for c := 0; c < 4; c++ {
		go func() {
			for {
				if _, ok := q.get(); !ok {
					return
				}
				consumed.Done()
			}
		}()
	}
	wg.Wait()
	consumed.Wait() // all items arrived exactly once (Done panics on extra)
	q.close()
}

func queueLen(q *workQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

func queueCap(q *workQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Cap()
}
