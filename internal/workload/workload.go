// Package workload generates the transaction mixes of the paper's
// application domain — data recording systems (Section 6): high-rate
// multi-node update transactions that insert observation tuples and
// bump summaries (all commuting), read-only inquiry transactions that
// must see globally consistent state, and (optionally) rare
// non-commuting administrative updates.
//
// Every generated update transaction follows the auditing convention of
// package verify: it touches every item of one "group" (a patient, an
// account, a stock item — data fragmented across nodes), writing one
// tuple per item with Part=1..Total, so a group read can be audited for
// atomic visibility without knowing the interleaving.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Kind classifies a generated transaction.
type Kind int

// Transaction kinds.
const (
	KindUpdate Kind = iota
	KindRead
	KindNonCommuting
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindRead:
		return "read"
	case KindNonCommuting:
		return "noncommuting"
	}
	return "unknown"
}

// Config parameterizes a Generator.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Groups is the number of item groups ("patients"); each group g is
	// one item per member node, all named the same key.
	Groups int
	// Span is the number of nodes each group spans (the transaction
	// fan-out); clamped to Nodes.
	Span int
	// ReadFraction is the probability a generated transaction is a
	// group read.
	ReadFraction float64
	// NonCommutingFraction is the probability an update is a
	// non-commuting Set transaction (requires NC3V).
	NonCommutingFraction float64
	// AbortFraction is the probability a commuting update aborts at the
	// root (compensating its whole tree).
	AbortFraction float64
	// Skew biases group selection toward low-numbered groups: 0 is
	// uniform; higher values concentrate load (P(g) ∝ (g+1)^-Skew).
	Skew float64
	// Seed makes the stream reproducible; 0 selects a fixed default.
	Seed int64
}

// Txn is one generated transaction plus the metadata the auditors and
// harness need.
type Txn struct {
	Spec  *model.TxnSpec
	Kind  Kind
	Group int
	// Writer is the tuple-identity of an update transaction (a
	// generator-minted id, distinct from the cluster's transaction id).
	Writer model.TxnID
	// Parts is the number of tuples the update writes (== group span).
	Parts int
	// Seq is the per-group update sequence number carried in the
	// "count" summary field; the harness derives read staleness from
	// it.
	Seq int64
	// Aborting marks an update generated with a root abort.
	Aborting bool
}

// Generator produces a reproducible transaction stream. Not safe for
// concurrent use; drivers pull from one goroutine (or shard by seed).
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	seq      uint64
	groupSeq []int64
	weights  []float64
	totalW   float64
}

// writerNamespace is the fake origin node used for generator-minted
// tuple identities so they can never collide with cluster transaction
// ids (real node ids are small).
const writerNamespace = model.NodeID(1 << 15)

// New builds a generator, applying defaults: Groups=64, Span=2.
func New(cfg Config) *Generator {
	if cfg.Nodes <= 0 {
		panic("workload: Config.Nodes must be positive")
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 64
	}
	if cfg.Span <= 0 {
		cfg.Span = 2
	}
	if cfg.Span > cfg.Nodes {
		cfg.Span = cfg.Nodes
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1997
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		groupSeq: make([]int64, cfg.Groups),
	}
	if cfg.Skew > 0 {
		g.weights = make([]float64, cfg.Groups)
		for i := range g.weights {
			g.weights[i] = math.Pow(float64(i+1), -cfg.Skew)
			g.totalW += g.weights[i]
		}
	}
	return g
}

// GroupKey returns the node-local key name of group g.
func GroupKey(g int) string { return fmt.Sprintf("g%05d", g) }

// GroupNodes returns the member nodes of group g under the generator's
// placement: consecutive nodes starting at g mod Nodes.
func (g *Generator) GroupNodes(group int) []model.NodeID {
	out := make([]model.NodeID, g.cfg.Span)
	for i := range out {
		out[i] = model.NodeID((group + i) % g.cfg.Nodes)
	}
	return out
}

// PreloadSpecs enumerates every (node, key) pair a driver should
// preload with {"count":0, "bal":0} before starting the run.
func (g *Generator) PreloadSpecs() []struct {
	Node model.NodeID
	Key  string
} {
	var out []struct {
		Node model.NodeID
		Key  string
	}
	for grp := 0; grp < g.cfg.Groups; grp++ {
		for _, n := range g.GroupNodes(grp) {
			out = append(out, struct {
				Node model.NodeID
				Key  string
			}{n, GroupKey(grp)})
		}
	}
	return out
}

// pickGroup draws a group per the skew setting.
func (g *Generator) pickGroup() int {
	if g.weights == nil {
		return g.rng.Intn(g.cfg.Groups)
	}
	x := g.rng.Float64() * g.totalW
	for i, w := range g.weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return g.cfg.Groups - 1
}

// Next produces the next transaction in the stream.
func (g *Generator) Next() Txn {
	r := g.rng.Float64()
	group := g.pickGroup()
	switch {
	case r < g.cfg.ReadFraction:
		return g.read(group)
	case r < g.cfg.ReadFraction+(1-g.cfg.ReadFraction)*g.cfg.NonCommutingFraction:
		return g.nonCommuting(group)
	default:
		return g.update(group)
	}
}

// update builds a commuting group update: a front-end root (a random
// member node, doing no local work) fanning out one child per member
// node, each inserting a tuple and bumping the summaries — the Figure 1
// shape.
func (g *Generator) update(group int) Txn {
	g.seq++
	writer := model.MakeTxnID(writerNamespace, g.seq)
	nodes := g.GroupNodes(group)
	key := GroupKey(group)
	g.groupSeq[group]++
	seq := g.groupSeq[group]
	amount := int64(g.rng.Intn(500) + 1)
	root := &model.SubtxnSpec{Node: nodes[g.rng.Intn(len(nodes))]}
	for i, n := range nodes {
		root.Children = append(root.Children, &model.SubtxnSpec{
			Node: n,
			Updates: []model.KeyOp{
				{Key: key, Op: model.AppendOp{T: model.Tuple{
					Txn: writer, Part: i + 1, Total: len(nodes), Attr: "chg", Amount: amount,
				}}},
				{Key: key, Op: model.AddOp{Field: "bal", Delta: amount}},
				{Key: key, Op: model.AddOp{Field: "count", Delta: 1}},
			},
		})
	}
	aborting := g.rng.Float64() < g.cfg.AbortFraction
	root.Abort = aborting
	if aborting {
		g.groupSeq[group]-- // an aborted update must not count toward staleness ground truth
		seq = g.groupSeq[group]
	}
	return Txn{
		Spec:     &model.TxnSpec{Root: root, Label: fmt.Sprintf("u%d", g.seq)},
		Kind:     KindUpdate,
		Group:    group,
		Writer:   writer,
		Parts:    len(nodes),
		Seq:      seq,
		Aborting: aborting,
	}
}

// read builds a group read covering every member item.
func (g *Generator) read(group int) Txn {
	g.seq++
	nodes := g.GroupNodes(group)
	key := GroupKey(group)
	root := &model.SubtxnSpec{Node: nodes[g.rng.Intn(len(nodes))]}
	for _, n := range nodes {
		root.Children = append(root.Children, &model.SubtxnSpec{Node: n, Reads: []string{key}})
	}
	return Txn{
		Spec:  &model.TxnSpec{Root: root, Label: fmt.Sprintf("r%d", g.seq)},
		Kind:  KindRead,
		Group: group,
		Seq:   g.groupSeq[group],
	}
}

// nonCommuting builds an administrative Set across the group (e.g. a
// price override), which must run under NC3V.
func (g *Generator) nonCommuting(group int) Txn {
	g.seq++
	nodes := g.GroupNodes(group)
	key := GroupKey(group)
	val := int64(g.rng.Intn(1000))
	root := &model.SubtxnSpec{Node: nodes[0], Updates: []model.KeyOp{
		{Key: key, Op: model.SetOp{Field: "override", Value: val}},
	}}
	for _, n := range nodes[1:] {
		root.Children = append(root.Children, &model.SubtxnSpec{
			Node:    n,
			Updates: []model.KeyOp{{Key: key, Op: model.SetOp{Field: "override", Value: val}}},
		})
	}
	return Txn{
		Spec:  &model.TxnSpec{Root: root, NonCommuting: true, Label: fmt.Sprintf("nc%d", g.seq)},
		Kind:  KindNonCommuting,
		Group: group,
		Seq:   g.groupSeq[group],
	}
}

// GroupSeq returns the current committed-update sequence number of a
// group (ground truth for staleness).
func (g *Generator) GroupSeq(group int) int64 { return g.groupSeq[group] }

// Hospital returns the Figure 1 configuration: a hospital with the
// given number of department databases; visits span two departments;
// a third of the traffic is patient inquiries.
func Hospital(nodes int, seed int64) Config {
	return Config{Nodes: nodes, Groups: 128, Span: 2, ReadFraction: 0.33, Seed: seed}
}

// CallRecording returns the Section 6 telephone configuration:
// high-rate recording with occasional billing inquiries; calls span two
// switches' databases.
func CallRecording(nodes int, seed int64) Config {
	return Config{Nodes: nodes, Groups: 512, Span: 2, ReadFraction: 0.05, Seed: seed}
}

// PointOfSale returns an inventory configuration with non-commuting
// price overrides mixed in.
func PointOfSale(nodes int, ncFraction float64, seed int64) Config {
	return Config{Nodes: nodes, Groups: 256, Span: 2, ReadFraction: 0.2, NonCommutingFraction: ncFraction, Seed: seed}
}
