package workload

import (
	"testing"

	"repro/internal/model"
)

func TestGeneratorReproducible(t *testing.T) {
	a := New(Config{Nodes: 4, Seed: 7, ReadFraction: 0.3})
	b := New(Config{Nodes: 4, Seed: 7, ReadFraction: 0.3})
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.Kind != tb.Kind || ta.Group != tb.Group || ta.Spec.String() != tb.Spec.String() {
			t.Fatalf("streams diverged at %d: %v vs %v", i, ta.Spec, tb.Spec)
		}
	}
}

func TestGeneratedSpecsValidate(t *testing.T) {
	g := New(Config{Nodes: 5, Span: 3, ReadFraction: 0.3, NonCommutingFraction: 0.1, AbortFraction: 0.1, Seed: 3})
	for i := 0; i < 500; i++ {
		txn := g.Next()
		if err := txn.Spec.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v", err)
		}
	}
}

func TestKindMixMatchesFractions(t *testing.T) {
	g := New(Config{Nodes: 4, ReadFraction: 0.5, NonCommutingFraction: 0.2, Seed: 11})
	counts := map[Kind]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if f := float64(counts[KindRead]) / n; f < 0.45 || f > 0.55 {
		t.Errorf("read fraction = %.3f, want ≈0.5", f)
	}
	// Non-commuting is 20% of the non-read half ≈ 10% overall.
	if f := float64(counts[KindNonCommuting]) / n; f < 0.07 || f > 0.13 {
		t.Errorf("nc fraction = %.3f, want ≈0.1", f)
	}
}

func TestUpdateShapeFollowsAuditConvention(t *testing.T) {
	g := New(Config{Nodes: 4, Span: 3, Seed: 5})
	var txn Txn
	for {
		txn = g.Next()
		if txn.Kind == KindUpdate {
			break
		}
	}
	if txn.Parts != 3 {
		t.Fatalf("Parts = %d, want 3", txn.Parts)
	}
	if len(txn.Spec.Root.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(txn.Spec.Root.Children))
	}
	seen := map[int]bool{}
	for _, c := range txn.Spec.Root.Children {
		var tuple *model.Tuple
		for _, u := range c.Updates {
			if ap, ok := u.Op.(model.AppendOp); ok {
				tt := ap.T
				tuple = &tt
			}
		}
		if tuple == nil {
			t.Fatal("child without tuple insert")
		}
		if tuple.Txn != txn.Writer || tuple.Total != 3 {
			t.Errorf("tuple identity wrong: %+v", tuple)
		}
		seen[tuple.Part] = true
	}
	if len(seen) != 3 {
		t.Errorf("parts not distinct: %v", seen)
	}
}

func TestReadCoversWholeGroup(t *testing.T) {
	g := New(Config{Nodes: 4, Span: 2, ReadFraction: 1, Seed: 9})
	txn := g.Next()
	if txn.Kind != KindRead {
		t.Fatal("expected read")
	}
	if !txn.Spec.ReadOnly() {
		t.Error("read spec not read-only")
	}
	if len(txn.Spec.Root.Children) != 2 {
		t.Errorf("read children = %d, want 2", len(txn.Spec.Root.Children))
	}
	nodes := g.GroupNodes(txn.Group)
	for i, c := range txn.Spec.Root.Children {
		if c.Node != nodes[i] {
			t.Errorf("read child %d at node %v, want %v", i, c.Node, nodes[i])
		}
		if len(c.Reads) != 1 || c.Reads[0] != GroupKey(txn.Group) {
			t.Errorf("read child keys = %v", c.Reads)
		}
	}
}

func TestNonCommutingSpecMarked(t *testing.T) {
	g := New(Config{Nodes: 4, NonCommutingFraction: 1, Seed: 13})
	txn := g.Next()
	if txn.Kind != KindNonCommuting {
		t.Fatal("expected NC txn")
	}
	if !txn.Spec.NonCommuting {
		t.Error("NC spec not marked")
	}
	if err := txn.Spec.Validate(); err != nil {
		t.Errorf("NC spec invalid: %v", err)
	}
}

func TestAbortFractionRespectsGroundTruth(t *testing.T) {
	g := New(Config{Nodes: 3, AbortFraction: 1, Seed: 17})
	before := g.GroupSeq(0)
	var txn Txn
	for {
		txn = g.Next()
		if txn.Kind == KindUpdate {
			break
		}
	}
	if !txn.Aborting || !txn.Spec.Root.Abort {
		t.Fatal("abort not injected with AbortFraction=1")
	}
	if g.GroupSeq(txn.Group) != before {
		t.Error("aborted update advanced the group sequence (staleness ground truth corrupted)")
	}
}

func TestSkewConcentratesLoad(t *testing.T) {
	g := New(Config{Nodes: 4, Groups: 50, Skew: 1.5, Seed: 21})
	counts := make([]int, 50)
	for i := 0; i < 5000; i++ {
		counts[g.Next().Group]++
	}
	if counts[0] <= counts[49]*2 {
		t.Errorf("skew ineffective: g0=%d g49=%d", counts[0], counts[49])
	}
}

func TestPreloadSpecsCoverAllGroups(t *testing.T) {
	g := New(Config{Nodes: 4, Groups: 10, Span: 2, Seed: 1})
	specs := g.PreloadSpecs()
	if len(specs) != 20 {
		t.Fatalf("preload specs = %d, want 20", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		seen[s.Key+"@"+s.Node.String()] = true
	}
	if len(seen) != 20 {
		t.Errorf("duplicate preload specs: %d unique", len(seen))
	}
}

func TestGroupNodesWrapAround(t *testing.T) {
	g := New(Config{Nodes: 3, Groups: 10, Span: 2, Seed: 1})
	nodes := g.GroupNodes(2) // starts at node 2, wraps to 0
	if nodes[0] != 2 || nodes[1] != 0 {
		t.Errorf("GroupNodes(2) = %v, want [2 0]", nodes)
	}
}

func TestSpanClampedToNodes(t *testing.T) {
	g := New(Config{Nodes: 2, Span: 8, Seed: 1})
	if got := len(g.GroupNodes(0)); got != 2 {
		t.Errorf("span = %d, want clamped to 2", got)
	}
}

func TestPresets(t *testing.T) {
	for name, cfg := range map[string]Config{
		"hospital": Hospital(4, 1),
		"calls":    CallRecording(4, 1),
		"pos":      PointOfSale(4, 0.05, 1),
	} {
		g := New(cfg)
		for i := 0; i < 50; i++ {
			if err := g.Next().Spec.Validate(); err != nil {
				t.Errorf("%s produced invalid spec: %v", name, err)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if KindUpdate.String() != "update" || KindRead.String() != "read" ||
		KindNonCommuting.String() != "noncommuting" || Kind(9).String() != "unknown" {
		t.Error("Kind.String values wrong")
	}
}
