package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestThreeProcessClusterOverTCP is the real-networking acceptance
// test: build cmd/threev-node once, spawn a three-process loopback
// cluster, drive a commuting workload from every process while every
// TCP connection is forcibly killed mid-run, run one full version
// advancement, and assert the cluster converged — each account must
// show every process's updates.
func TestThreeProcessClusterOverTCP(t *testing.T) {
	runThreeProcessCluster(t, 0)
}

// TestThreeProcessClusterOverTCPBatched runs the identical gate with
// the batched hot path on (-batch 8): batched wire frames across real
// TCP, chunked admission, batched counter sweeps, and group submit —
// additionally asserting the processes actually coalesced frames
// (observed mean batch size > 1 somewhere in the cluster).
func TestThreeProcessClusterOverTCPBatched(t *testing.T) {
	runThreeProcessCluster(t, 8)
}

func runThreeProcessCluster(t *testing.T, batch int) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "threev-node")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/threev-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building threev-node: %v\n%s", err, out)
	}

	const nodes, txns = 3, 40
	protoAddrs := reserveAddrs(t, nodes)
	ctrlAddrs := reserveAddrs(t, nodes)
	peers := ""
	for i, a := range protoAddrs {
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("%d=%s", i, a)
	}

	var logs [nodes]bytes.Buffer
	procs := make([]*exec.Cmd, nodes)
	for i := 0; i < nodes; i++ {
		args := []string{
			"-id", fmt.Sprint(i),
			"-nodes", fmt.Sprint(nodes),
			"-listen", protoAddrs[i],
			"-peers", peers,
			"-metrics", ctrlAddrs[i],
			"-trace-sample", "1",
			"-log-format", "json",
			// Failover is not this test's subject: a huge lease keeps the
			// killconns gap from electing a second coordinator.
			"-lease-timeout", "5m",
		}
		if batch > 0 {
			args = append(args, "-batch", fmt.Sprint(batch))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &logs[i]
		cmd.Stderr = &logs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		i := i
		t.Cleanup(func() {
			procs[i].Process.Kill()
			procs[i].Wait()
			if t.Failed() {
				t.Logf("process %d output:\n%s", i, logs[i].String())
			}
		})
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	get := func(i int, path string, out any) error {
		resp, err := client.Get("http://" + ctrlAddrs[i] + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %s: %s", path, resp.Status, body.String())
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	// Wait for every control endpoint to come up.
	for i := 0; i < nodes; i++ {
		waitUntil(t, fmt.Sprintf("process %d control endpoint", i), func() bool {
			return get(i, "/state", nil) == nil
		})
	}

	// Drive the workload from all three processes concurrently; kill
	// every TCP connection once cross-process traffic is flowing, so
	// the reliable session layer has a real gap to heal.
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = get(i, fmt.Sprintf("/workload?txns=%d", txns), nil)
		}()
	}
	waitUntil(t, "cross-process traffic", func() bool {
		var st struct {
			Messages int64 `json:"messages"`
		}
		return get(0, "/state", &st) == nil && st.Messages > 0
	})
	for i := 0; i < nodes; i++ {
		if err := get(i, "/killconns", nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("workload at process %d: %v", i, err)
		}
	}

	// One full advancement cycle from the coordinator process. Its
	// quiescence polls drain any cross-process subtransactions still in
	// flight, so this succeeding certifies the counters rebalanced.
	var adv struct {
		NewVR int64 `json:"new_vr"`
		NewVU int64 `json:"new_vu"`
	}
	if err := get(0, "/advance", &adv); err != nil {
		t.Fatalf("advancement: %v", err)
	}
	if adv.NewVR != 1 || adv.NewVU != 2 {
		t.Fatalf("advancement installed vr=%d vu=%d, want 1/2", adv.NewVR, adv.NewVU)
	}
	if err := get(1, "/advance", nil); err == nil {
		t.Error("advance on a non-coordinator process succeeded")
	}

	// Every account absorbed +1 per transaction from each process.
	const want = nodes * txns
	reconnects := int64(0)
	maxBatchSize := 0.0
	for i := 0; i < nodes; i++ {
		var rd struct {
			Bal     int64 `json:"bal"`
			Version int64 `json:"version"`
		}
		if err := get(i, "/read", &rd); err != nil {
			t.Fatal(err)
		}
		if rd.Bal != want {
			t.Errorf("process %d: bal %d, want %d", i, rd.Bal, want)
		}
		if rd.Version != 1 {
			t.Errorf("process %d: read version %d, want 1", i, rd.Version)
		}
		var st struct {
			VR            int64    `json:"vr"`
			VU            int64    `json:"vu"`
			Violations    []string `json:"violations"`
			Convergence   []string `json:"convergence_errors"`
			Reconnects    int64    `json:"reconnects"`
			MeanBatchSize float64  `json:"mean_batch_size"`
		}
		if err := get(i, "/state", &st); err != nil {
			t.Fatal(err)
		}
		if st.MeanBatchSize > maxBatchSize {
			maxBatchSize = st.MeanBatchSize
		}
		if st.VR != 1 || st.VU != 2 {
			t.Errorf("process %d at vr=%d vu=%d, want 1/2", i, st.VR, st.VU)
		}
		if len(st.Violations) > 0 {
			t.Errorf("process %d violations: %v", i, st.Violations)
		}
		if len(st.Convergence) > 0 {
			t.Errorf("process %d convergence: %v", i, st.Convergence)
		}
		reconnects += st.Reconnects
	}
	if reconnects == 0 {
		t.Error("no reconnects recorded despite killing every connection")
	}
	if batch > 0 && maxBatchSize <= 1 {
		t.Errorf("batched mode never coalesced: max observed mean batch size %.2f", maxBatchSize)
	}

	// Causal tracing across processes: every transaction was sampled
	// (-trace-sample 1), so each process must hold assembled traces for
	// the trees it rooted — and because every tree touches all three
	// processes, a complete trace has spans contributed by remote nodes
	// (shipped home as span reports over the same TCP links). Remote
	// reports race the handle's completion, so poll briefly.
	type traceJSON struct {
		TraceID  uint64 `json:"trace_id"`
		Complete bool   `json:"complete"`
		Spans    int    `json:"spans"`
		Orphans  int    `json:"orphans"`
		Root     *struct {
			Name   string `json:"name"`
			Stages []struct {
				Name  string `json:"name"`
				DurNS int64  `json:"dur_ns"`
			} `json:"stages"`
		} `json:"root"`
	}
	for i := 0; i < nodes; i++ {
		var full traceJSON
		waitUntil(t, fmt.Sprintf("process %d cross-process trace", i), func() bool {
			var traces []traceJSON
			if err := get(i, "/traces.json", &traces); err != nil {
				return false
			}
			// The demo tree spans all three processes: root "txn" span,
			// the root subtransaction's execution span, and one span per
			// remote child = 4 spans, none orphaned. (Skip coordinator
			// "advance" sweep traces — process 0 records those too.)
			for _, tr := range traces {
				if tr.Complete && tr.Orphans == 0 && tr.Spans >= 4 &&
					tr.Root != nil && tr.Root.Name == "txn" {
					full = tr
					return true
				}
			}
			return false
		})
		if full.Root == nil || full.Root.Name != "txn" {
			t.Fatalf("process %d: trace %+v has no txn root", i, full)
		}
		// The root span carries the stage partition; the four partition
		// stages must telescope to a positive total.
		var sum int64
		for _, st := range full.Root.Stages {
			switch st.Name {
			case "wire", "queue", "service", "ack":
				sum += st.DurNS
			}
		}
		if sum <= 0 {
			t.Errorf("process %d: trace %016x stage partition sums to %d", i, full.TraceID, sum)
		}
	}

	// Graceful shutdown: /quit, then wait for clean exits.
	for i := 0; i < nodes; i++ {
		if err := get(i, "/quit", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("process %d exit: %v\n%s", i, err, logs[i].String())
			}
		case <-time.After(20 * time.Second):
			t.Errorf("process %d did not exit after /quit", i)
		}
	}
}

// reserveAddrs picks n free loopback addresses by binding and releasing
// ephemeral ports. The tiny reuse race is acceptable on a test host.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
