package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestTheorem41UnderChaos is the survival proof the paper never needed:
// with the reliable session layer interposed, a seeded lossy network
// (2% drop, 2% duplication, plus a two-way partition injected and
// healed mid-run) changes nothing observable — every transaction
// completes, the serializability audit passes unchanged, and after
// heal the cluster converges (versions agreed, counters balanced).
// Without Config.Reliable this schedule wedges advancement forever on
// the first lost counter reply.
func TestTheorem41UnderChaos(t *testing.T) {
	runTheorem41Audit(t,
		core.Config{
			Nodes:          4,
			Reliable:       true,
			ResendInterval: 5 * time.Millisecond,
			AckTimeout:     60 * time.Second,
			NetConfig:      transport.Config{Jitter: 300 * time.Microsecond, Seed: 21},
		},
		workload.Config{Nodes: 4, Groups: 16, Span: 2, ReadFraction: 0.3, Seed: 401},
		250, time.Millisecond,
		&harness.ChaosConfig{
			DropRate:     0.02,
			DupRate:      0.02,
			PartitionAt:  5 * time.Millisecond,
			PartitionFor: 40 * time.Millisecond,
			PartitionA:   0,
			PartitionB:   3,
		})
}

// TestChaosWithCompensation layers compensating (aborting) transaction
// trees on top of the lossy network: compensation messages are as
// exposed to loss as forward subtransactions, and the session layer
// must repair both for the counters to balance.
func TestChaosWithCompensation(t *testing.T) {
	runTheorem41Audit(t,
		core.Config{
			Nodes:          3,
			Reliable:       true,
			ResendInterval: 5 * time.Millisecond,
			AckTimeout:     60 * time.Second,
			NetConfig:      transport.Config{Jitter: 200 * time.Microsecond, Seed: 22},
		},
		workload.Config{Nodes: 3, Groups: 12, Span: 2, ReadFraction: 0.25, AbortFraction: 0.15, Seed: 402},
		200, time.Millisecond,
		&harness.ChaosConfig{DropRate: 0.03, DupRate: 0.01})
}
