package integration

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
)

// confluenceRun executes a fixed transaction set on a scripted cluster,
// delivering every message in an order chosen by the seeded RNG, runs a
// full advancement (also pumped in random order), and returns the final
// rendered state of every node's store.
//
// This is the most direct test of the paper's premise: because update
// subtransactions commute and the protocol tolerates arbitrary message
// reordering (implicit notification, dual writes), EVERY delivery order
// must converge to the same database state. A divergence means either
// an op that doesn't really commute or a protocol path that depends on
// arrival order.
func confluenceRun(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	script := transport.NewScript(4)
	c, err := core.NewCluster(core.Config{
		Nodes:        3,
		Transport:    script,
		SyncExec:     true,
		PollInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for node, keys := range map[model.NodeID][]string{0: {"A", "B"}, 1: {"D", "E"}, 2: {"F"}} {
		for _, k := range keys {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			c.Preload(node, k, rec)
		}
	}
	c.Start()
	defer c.Close()

	// A fixed transaction set touching every item, including a
	// compensated (aborting) tree and deep fan-out with revisits.
	add := func(key string, d int64) model.KeyOp {
		return model.KeyOp{Key: key, Op: model.AddOp{Field: "bal", Delta: d}}
	}
	var handles []*core.Handle
	submit := func(spec *model.TxnSpec) {
		h, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i := 0; i < 6; i++ {
		submit(&model.TxnSpec{Root: &model.SubtxnSpec{
			Node:    model.NodeID(i % 3),
			Updates: nil,
			Children: []*model.SubtxnSpec{
				{Node: 0, Updates: []model.KeyOp{add("A", 1), add("B", 2)}},
				{Node: 1, Updates: []model.KeyOp{add("D", 3)}, Children: []*model.SubtxnSpec{
					{Node: 2, Updates: []model.KeyOp{add("F", 4)}},
				}},
			},
		}})
	}
	submit(&model.TxnSpec{Root: &model.SubtxnSpec{ // compensated tree: net zero
		Node:    0,
		Abort:   true,
		Updates: []model.KeyOp{add("A", 100)},
		Children: []*model.SubtxnSpec{
			{Node: 1, Updates: []model.KeyOp{add("E", 100)}},
		},
	}})

	// Random-order pump: deliver everything (including advancement
	// traffic) in RNG order until the advancement completes and no
	// messages remain.
	advDone := c.AdvanceAsync()
	deadline := time.Now().Add(20 * time.Second)
	advFinished := false
	for {
		n := script.PendingCount()
		if n > 0 {
			script.DeliverIndex(rng.Intn(n))
			continue
		}
		if !advFinished {
			select {
			case rep := <-advDone:
				advFinished = true
				if rep.Interrupted {
					t.Fatal("advancement interrupted")
				}
				continue
			default:
				time.Sleep(50 * time.Microsecond) // coordinator between sweeps
			}
		} else {
			allDone := true
			for _, h := range handles {
				select {
				case <-h.Done():
				default:
					allDone = false
				}
			}
			if allDone {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		if time.Now().After(deadline) {
			t.Fatalf("confluence run (seed %d) did not converge; %d pending", seed, script.PendingCount())
		}
	}
	if vio := c.Violations(); vio != nil {
		t.Fatalf("seed %d: violations %v", seed, vio)
	}
	if c.MaxLiveVersionsEver() > 3 {
		t.Fatalf("seed %d: %d live versions", seed, c.MaxLiveVersionsEver())
	}
	state := ""
	for i := 0; i < 3; i++ {
		state += fmt.Sprintf("node%d:\n%s", i, c.Node(i).Store().Dump())
	}
	return state
}

// TestConfluenceAcrossDeliveryOrders runs the same transaction set
// under many random delivery orders and requires byte-identical final
// states: the commutativity the protocol exploits, verified end to end.
func TestConfluenceAcrossDeliveryOrders(t *testing.T) {
	reference := confluenceRun(t, 1)
	// The expected final state: 6 × the fan-out increments, the
	// compensated tree invisible, everything at read version 1.
	for _, want := range []string{"A: v1={bal=6", "B: v1={bal=12", "D: v1={bal=18", "F: v1={bal=24", "E: v1={bal=0"} {
		if !containsStr(reference, want) {
			t.Fatalf("reference state missing %q:\n%s", want, reference)
		}
	}
	for seed := int64(2); seed <= 12; seed++ {
		got := confluenceRun(t, seed)
		if got != reference {
			t.Fatalf("delivery order (seed %d) changed the final state:\n--- reference ---\n%s\n--- seed %d ---\n%s",
				seed, reference, seed, got)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
