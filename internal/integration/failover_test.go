package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestCoordinatorFailoverThreeProcess is the coordinator-failover
// acceptance gate at process scale, run once per advancement phase:
// a three-process TCP cluster where process 0 starts with the active
// coordinator role (durably, so its fencing term survives restarts)
// and carries a crashpoint that exit-137s it the moment a sweep it
// drives completes phase N. The workload is fully acknowledged before
// the sweep, the kill orphans the advancement mid-protocol, process 0
// is restarted as a standby, and the gate requires that the lowest
// live standby takes over under a higher term, finishes the sweep,
// every process converges on (vr=1, vu=2), and every acknowledged
// update is still readable at the new read version.
func TestCoordinatorFailoverThreeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "threev-node")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/threev-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building threev-node: %v\n%s", err, out)
	}

	for phase := 1; phase <= 4; phase++ {
		phase := phase
		t.Run(fmt.Sprintf("phase%d", phase), func(t *testing.T) {
			const nodes, txns = 3, 10
			protoAddrs := reserveAddrs(t, nodes)
			ctrlAddrs := reserveAddrs(t, nodes)
			dataDir := filepath.Join(t.TempDir(), "node0")

			peers := ""
			for i, a := range protoAddrs {
				if i > 0 {
					peers += ","
				}
				peers += fmt.Sprintf("%d=%s", i, a)
			}

			var logMu sync.Mutex
			var logs [nodes]bytes.Buffer
			logOf := func(i int) string {
				logMu.Lock()
				defer logMu.Unlock()
				return logs[i].String()
			}
			start := func(i int, role string, extraEnv ...string) *exec.Cmd {
				args := []string{
					"-id", fmt.Sprint(i),
					"-nodes", fmt.Sprint(nodes),
					"-listen", protoAddrs[i],
					"-peers", peers,
					"-metrics", ctrlAddrs[i],
					"-coordinator", role,
					"-lease-interval", "100ms",
					// Wide enough that fsync bursts on the durable
					// coordinator can't starve heartbeats into a spurious
					// election before the planned kill.
					"-lease-timeout", "2s",
				}
				if i == 0 {
					// The coordinator host is durable so acknowledged
					// updates and the fencing term survive its kill.
					args = append(args, "-data-dir", dataDir, "-fsync", "always")
				}
				cmd := exec.Command(bin, args...)
				cmd.Stdout = syncWriter{mu: &logMu, buf: &logs[i]}
				cmd.Stderr = syncWriter{mu: &logMu, buf: &logs[i]}
				cmd.Env = append(os.Environ(), extraEnv...)
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				return cmd
			}

			procs := make([]*exec.Cmd, nodes)
			procs[0] = start(0, "active",
				fmt.Sprintf("THREEV_CRASHPOINT=advance-phase%d:1", phase))
			for i := 1; i < nodes; i++ {
				procs[i] = start(i, "standby")
			}
			t.Cleanup(func() {
				for i, p := range procs {
					if p != nil && p.Process != nil {
						p.Process.Kill()
						p.Wait()
					}
					if t.Failed() {
						t.Logf("process %d output:\n%s", i, logOf(i))
					}
				}
			})

			client := &http.Client{Timeout: 2 * time.Minute}
			get := func(i int, path string, out any) error {
				resp, err := client.Get("http://" + ctrlAddrs[i] + path)
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					var body bytes.Buffer
					body.ReadFrom(resp.Body)
					return fmt.Errorf("%s: %s: %s", path, resp.Status, body.String())
				}
				if out == nil {
					return nil
				}
				return json.NewDecoder(resp.Body).Decode(out)
			}

			for i := 0; i < nodes; i++ {
				waitUntil(t, fmt.Sprintf("process %d control endpoint", i), func() bool {
					return get(i, "/state", nil) == nil
				})
			}

			// Role flags over hardcoded id 0: process 0 is active, the
			// others report standby with /advance rejected.
			var st struct {
				Role string `json:"role"`
				Term uint64 `json:"term"`
				VR   int64  `json:"vr"`
				VU   int64  `json:"vu"`
			}
			if err := get(0, "/state", &st); err != nil || st.Role != "active" || st.Term == 0 {
				t.Fatalf("process 0 state %+v (%v), want active with a term", st, err)
			}
			if err := get(1, "/advance", nil); err == nil {
				t.Fatal("advance on a standby succeeded")
			}

			// Fully acknowledged workload before the sweep: every /workload
			// call waits its handles, so all 3×txns×nodes account updates
			// are acknowledged (and journaled on the durable process).
			var wg sync.WaitGroup
			werrs := make([]error, nodes)
			for i := 0; i < nodes; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					werrs[i] = get(i, fmt.Sprintf("/workload?txns=%d", txns), nil)
				}()
			}
			wg.Wait()
			for i, err := range werrs {
				if err != nil {
					t.Fatalf("workload at process %d: %v", i, err)
				}
			}

			// The fencing term the kill removes, read right before the
			// sweep so any startup churn has settled into it.
			if err := get(0, "/state", &st); err != nil || st.Role != "active" {
				t.Fatalf("process 0 lost the active role before the kill: %+v (%v)", st, err)
			}
			killedTerm := st.Term

			// Trigger the sweep; the crashpoint exit-137s the coordinator
			// as phase N completes, so the request dies with the process.
			if err := get(0, "/advance", nil); err == nil {
				t.Fatalf("advance survived a phase-%d coordinator kill", phase)
			}
			killed := procs[0]
			procs[0] = nil
			done := make(chan error, 1)
			go func() { done <- killed.Wait() }()
			select {
			case <-done:
				if code := killed.ProcessState.ExitCode(); code != 137 {
					t.Fatalf("coordinator exited %d, want 137\n%s", code, logOf(0))
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("coordinator never hit its crashpoint\n%s", logOf(0))
			}

			// With the coordinator dead, a standby must notice the lease
			// expiry and elect itself under a higher term. Which one is
			// deterministic by design (lowest live id moves first), but
			// scheduling jitter can flip it on a loaded host, so the gate
			// accepts either and pins the successor it observed.
			successor := -1
			waitUntil(t, "standby takeover", func() bool {
				for i := 1; i < nodes; i++ {
					if err := get(i, "/state", &st); err == nil &&
						st.Role == "active" && st.Term > killedTerm {
						successor = i
						return true
					}
				}
				return false
			})

			t.Logf("phase %d: process %d took over from killed term %d", phase, successor, killedTerm)

			// The successor's re-driven sweep is parked waiting on node 0
			// (every phase needs all three acknowledgements). Restart the
			// ex-coordinator as a standby from its data directory; the
			// resend path then drives the orphaned sweep to completion on
			// every process.
			procs[0] = start(0, "standby")
			waitUntil(t, "restarted ex-coordinator control endpoint", func() bool {
				return get(0, "/state", nil) == nil
			})
			// Completion means every process is at (vr=1, vu=2) with no
			// convergence errors; the successor's own report lags the
			// nodes until its Recover publishes, so poll for settlement.
			waitUntil(t, "sweep completion after takeover", func() bool {
				for i := 0; i < nodes; i++ {
					var cs struct {
						VR          int64    `json:"vr"`
						VU          int64    `json:"vu"`
						Convergence []string `json:"convergence_errors"`
					}
					if err := get(i, "/state", &cs); err != nil ||
						cs.VR != 1 || cs.VU != 2 || len(cs.Convergence) != 0 {
						return false
					}
				}
				return true
			})

			// Nothing acknowledged lost, and full convergence everywhere.
			const want = nodes * txns
			for i := 0; i < nodes; i++ {
				var rd struct {
					Bal     int64 `json:"bal"`
					Version int64 `json:"version"`
				}
				if err := get(i, "/read", &rd); err != nil {
					t.Fatal(err)
				}
				if rd.Bal != want || rd.Version != 1 {
					t.Errorf("process %d: bal %d at version %d, want %d at 1", i, rd.Bal, rd.Version, want)
				}
				var full struct {
					Violations  []string `json:"violations"`
					Convergence []string `json:"convergence_errors"`
				}
				if err := get(i, "/state", &full); err != nil {
					t.Fatal(err)
				}
				if len(full.Violations) > 0 {
					t.Errorf("process %d violations: %v", i, full.Violations)
				}
				if len(full.Convergence) > 0 {
					t.Errorf("process %d convergence: %v", i, full.Convergence)
				}
			}

			// Whoever holds the role now must be a fully functional
			// coordinator (its next sweep completes) and every other
			// process must still reject /advance. Normally that is the
			// successor elected above, but a long recovery can demote it
			// and re-elect, so re-discover the active process.
			active := -1
			waitUntil(t, "an active coordinator after the sweep", func() bool {
				for i := 0; i < nodes; i++ {
					if err := get(i, "/state", &st); err == nil && st.Role == "active" {
						active = i
						return true
					}
				}
				return false
			})
			var adv struct {
				NewVR int64 `json:"new_vr"`
				NewVU int64 `json:"new_vu"`
			}
			if err := get(active, "/advance", &adv); err != nil {
				t.Fatalf("successor advancement: %v", err)
			}
			if adv.NewVR != 2 || adv.NewVU != 3 {
				t.Fatalf("successor installed vr=%d vu=%d, want 2/3", adv.NewVR, adv.NewVU)
			}
			for i := 0; i < nodes; i++ {
				if i == active {
					continue
				}
				if err := get(i, "/advance", nil); err == nil {
					t.Errorf("advance on standby process %d succeeded after the takeover", i)
				}
			}

			for i := 0; i < nodes; i++ {
				if err := get(i, "/quit", nil); err != nil {
					t.Fatal(err)
				}
			}
			for i, p := range procs {
				done := make(chan error, 1)
				go func() { done <- p.Wait() }()
				select {
				case err := <-done:
					if err != nil {
						t.Errorf("process %d exit: %v\n%s", i, err, logOf(i))
					}
				case <-time.After(20 * time.Second):
					t.Errorf("process %d did not exit after /quit", i)
				}
			}
		})
	}
}
