package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// partitionedState is the slice of threev-node's /state response this
// test audits: the legacy single pair, the placement map, and the
// per-partition array.
type partitionedState struct {
	VR               int64      `json:"vr"`
	VU               int64      `json:"vu"`
	NumPartitions    int        `json:"num_partitions"`
	PlacementVersion int        `json:"placement_version"`
	Placement        [][]int    `json:"placement"`
	Partitions       []partStat `json:"partitions"`
	Violations       []string   `json:"violations"`
	Convergence      []string   `json:"convergence_errors"`
}

type partStat struct {
	Part    int    `json:"part"`
	Primary int    `json:"primary"`
	VR      int64  `json:"vr"`
	VU      int64  `json:"vu"`
	Term    uint64 `json:"term"`
	MaxLag  int64  `json:"max_lag"`
}

// TestThreeProcessPartitionedCluster is the partitioned real-networking
// gate: a three-process loopback cluster running -partitions 2, the
// owner-routed workload driven from every process, then the two
// partitions advanced ONE AT A TIME via /advance?part=N — after the
// first advancement, /state on every process must show partition 0 at
// (vr=1, vu=2) while partition 1 still sits at (vr=0, vu=1), the
// end-to-end form of per-partition independence. Afterwards both
// partitions are advanced, every account must show every process's
// updates, and the per-partition convergence audit must be clean on
// every process.
func TestThreeProcessPartitionedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "threev-node")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/threev-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building threev-node: %v\n%s", err, out)
	}

	const nodes, nparts, txns = 3, 2, 42
	protoAddrs := reserveAddrs(t, nodes)
	ctrlAddrs := reserveAddrs(t, nodes)
	peers := ""
	for i, a := range protoAddrs {
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("%d=%s", i, a)
	}

	var logs [nodes]bytes.Buffer
	procs := make([]*exec.Cmd, nodes)
	for i := 0; i < nodes; i++ {
		cmd := exec.Command(bin,
			"-id", fmt.Sprint(i),
			"-nodes", fmt.Sprint(nodes),
			"-partitions", fmt.Sprint(nparts),
			"-listen", protoAddrs[i],
			"-peers", peers,
			"-metrics", ctrlAddrs[i],
			"-trace-sample", "0",
			"-log-format", "json",
			"-lease-timeout", "5m",
		)
		cmd.Stdout = &logs[i]
		cmd.Stderr = &logs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		i := i
		t.Cleanup(func() {
			procs[i].Process.Kill()
			procs[i].Wait()
			if t.Failed() {
				t.Logf("process %d output:\n%s", i, logs[i].String())
			}
		})
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	get := func(i int, path string, out any) error {
		resp, err := client.Get("http://" + ctrlAddrs[i] + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %s: %s", path, resp.Status, body.String())
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	for i := 0; i < nodes; i++ {
		waitUntil(t, fmt.Sprintf("process %d control endpoint", i), func() bool {
			return get(i, "/state", nil) == nil
		})
	}

	// The placement map must be identical (same version, same owners) on
	// every process — it is derived deterministically from (P, nodes).
	var ref partitionedState
	if err := get(0, "/state", &ref); err != nil {
		t.Fatal(err)
	}
	if ref.NumPartitions != nparts || len(ref.Placement) != nparts || len(ref.Partitions) != nparts {
		t.Fatalf("process 0 placement shape: %+v", ref)
	}
	for i := 1; i < nodes; i++ {
		var st partitionedState
		if err := get(i, "/state", &st); err != nil {
			t.Fatal(err)
		}
		if st.PlacementVersion != ref.PlacementVersion || fmt.Sprint(st.Placement) != fmt.Sprint(ref.Placement) {
			t.Fatalf("placement map disagrees: process 0 %v v%d, process %d %v v%d",
				ref.Placement, ref.PlacementVersion, i, st.Placement, st.PlacementVersion)
		}
	}

	// Owner-routed workload from every process concurrently.
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = get(i, fmt.Sprintf("/workload?txns=%d", txns), nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("workload at process %d: %v", i, err)
		}
	}

	// Advance ONLY partition 0. Every process must then see partition 0
	// at (1, 2) while partition 1 still sits at its initial (0, 1).
	var adv struct {
		Part  int   `json:"part"`
		NewVR int64 `json:"new_vr"`
		NewVU int64 `json:"new_vu"`
	}
	if err := get(0, "/advance?part=0", &adv); err != nil {
		t.Fatalf("advance partition 0: %v", err)
	}
	if adv.Part != 0 || adv.NewVR != 1 || adv.NewVU != 2 {
		t.Fatalf("partition 0 advancement installed %+v, want part 0 at vr=1 vu=2", adv)
	}
	for i := 0; i < nodes; i++ {
		var st partitionedState
		if err := get(i, "/state", &st); err != nil {
			t.Fatal(err)
		}
		if len(st.Partitions) != nparts {
			t.Fatalf("process %d reports %d partitions", i, len(st.Partitions))
		}
		p0, p1 := st.Partitions[0], st.Partitions[1]
		if p0.VR != 1 || p0.VU != 2 {
			t.Errorf("process %d: partition 0 at (vr=%d, vu=%d), want (1, 2)", i, p0.VR, p0.VU)
		}
		if p1.VR != 0 || p1.VU != 1 {
			t.Errorf("process %d: partition 1 moved to (vr=%d, vu=%d) without being advanced", i, p1.VR, p1.VU)
		}
		// The legacy single pair tracks partition 0.
		if st.VR != p0.VR || st.VU != p0.VU {
			t.Errorf("process %d: legacy pair (%d, %d) diverged from partition 0 (%d, %d)",
				i, st.VR, st.VU, p0.VR, p0.VU)
		}
	}
	if err := get(1, "/advance?part=0", nil); err == nil {
		t.Error("advance on a non-coordinator process succeeded")
	}

	// Now bring partition 1 level and audit convergence everywhere.
	if err := get(0, "/advance?part=1", &adv); err != nil {
		t.Fatalf("advance partition 1: %v", err)
	}
	if adv.Part != 1 || adv.NewVR != 1 {
		t.Fatalf("partition 1 advancement installed %+v, want part 1 at vr=1", adv)
	}

	// Owner routing means account records materialize only at their
	// partition's primary: /read on each process returns the accounts it
	// owns, and the union across processes must cover every account
	// exactly once, each holding one +1 per update aimed at it — every
	// process submitted txns/nodes updates per account.
	const want = txns // nodes processes x txns/nodes updates per account
	seen := map[string]int{}
	for i := 0; i < nodes; i++ {
		var rd struct {
			Owned   map[string]int64 `json:"owned"`
			Version int64            `json:"version"`
		}
		if err := get(i, "/read", &rd); err != nil {
			t.Fatal(err)
		}
		for key, bal := range rd.Owned {
			seen[key]++
			if bal != want {
				t.Errorf("process %d: %s bal %d, want %d", i, key, bal, want)
			}
		}
		if len(rd.Owned) > 0 && rd.Version != 1 {
			t.Errorf("process %d: read version %d, want 1", i, rd.Version)
		}
		var st partitionedState
		if err := get(i, "/state", &st); err != nil {
			t.Fatal(err)
		}
		for _, p := range st.Partitions {
			if p.VR != 1 || p.VU != 2 {
				t.Errorf("process %d: partition %d at (vr=%d, vu=%d), want (1, 2)", i, p.Part, p.VR, p.VU)
			}
		}
		if len(st.Violations) > 0 {
			t.Errorf("process %d violations: %v", i, st.Violations)
		}
		if len(st.Convergence) > 0 {
			t.Errorf("process %d convergence: %v", i, st.Convergence)
		}
	}
	for j := 0; j < nodes; j++ {
		key := fmt.Sprintf("acct%d", j)
		if seen[key] != 1 {
			t.Errorf("account %s owned by %d processes, want exactly 1", key, seen[key])
		}
	}

	for i := 0; i < nodes; i++ {
		if err := get(i, "/quit", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("process %d exit: %v\n%s", i, err, logs[i].String())
			}
		case <-time.After(20 * time.Second):
			t.Errorf("process %d did not exit after /quit", i)
		}
	}
}
