package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCrashRestartThreeProcess is the durability acceptance test at
// process scale: a three-process TCP cluster with one durable node
// (-data-dir). The durable node settles a batch of 20 transactions
// (completed handles — durably journaled by definition), then is
// killed mid-flight in a second batch (exit 137, the crashpoint
// harness's stand-in for kill -9) and restarted from its data
// directory. The cluster must finish a full advancement with zero
// convergence errors and every process must agree on a balance that
// includes every durably-acknowledged update: the settled batch
// survives in full; the mid-flight batch contributes only what was
// journaled before the kill (legitimately 0..settled — Submit is
// asynchronous, so an unjournaled submission is unacknowledged and
// may be lost), but all three replicas must agree exactly.
func TestCrashRestartThreeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "threev-node")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/threev-node")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building threev-node: %v\n%s", err, out)
	}

	// The durable node settles `settled` transactions, then dies on the
	// crashAt-th cumulative submission — 10 into its second batch.
	const nodes, txns, settled, crashAt = 3, 40, 20, 30
	protoAddrs := reserveAddrs(t, nodes)
	ctrlAddrs := reserveAddrs(t, nodes)
	dataDir := filepath.Join(t.TempDir(), "node2")
	peers := ""
	for i, a := range protoAddrs {
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("%d=%s", i, a)
	}

	var logMu sync.Mutex
	var logs [nodes]bytes.Buffer
	logOf := func(i int) string {
		logMu.Lock()
		defer logMu.Unlock()
		return logs[i].String()
	}
	start := func(i int, extraEnv ...string) *exec.Cmd {
		args := []string{
			"-id", fmt.Sprint(i),
			"-nodes", fmt.Sprint(nodes),
			"-listen", protoAddrs[i],
			"-peers", peers,
			"-metrics", ctrlAddrs[i],
			// Failover is not this test's subject: on a loaded single-core
			// host the coordinator's heartbeats can starve past the default
			// 200ms lease while four processes contend, and a standby
			// takeover would fence process 0's /advance with a higher term.
			"-lease-timeout", "5m",
		}
		if i == 2 {
			args = append(args, "-data-dir", dataDir, "-fsync", "always", "-checkpoint-interval", "200ms")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = syncWriter{mu: &logMu, buf: &logs[i]}
		cmd.Stderr = syncWriter{mu: &logMu, buf: &logs[i]}
		cmd.Env = append(os.Environ(), extraEnv...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	procs := make([]*exec.Cmd, nodes)
	for i := 0; i < nodes; i++ {
		env := []string{}
		if i == 2 {
			env = append(env, fmt.Sprintf("THREEV_CRASHPOINT=workload-submit:%d", crashAt))
		}
		procs[i] = start(i, env...)
	}
	t.Cleanup(func() {
		for i, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
			if t.Failed() {
				t.Logf("process %d output:\n%s", i, logOf(i))
			}
		}
	})

	client := &http.Client{Timeout: 2 * time.Minute}
	get := func(i int, path string, out any) error {
		resp, err := client.Get("http://" + ctrlAddrs[i] + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %s: %s", path, resp.Status, body.String())
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	for i := 0; i < nodes; i++ {
		waitUntil(t, fmt.Sprintf("process %d control endpoint", i), func() bool {
			return get(i, "/state", nil) == nil
		})
	}
	var st0 struct {
		Durable bool `json:"durable"`
	}
	if err := get(2, "/state", &st0); err != nil || !st0.Durable {
		t.Fatalf("process 2 not durable at startup: %v %+v", err, st0)
	}

	// Settle a batch on the durable node first: /workload waits for its
	// handles, so these transactions are journaled (and their children
	// durably in the send mirrors) before it returns.
	if err := get(2, fmt.Sprintf("/workload?txns=%d", settled), nil); err != nil {
		t.Fatalf("settled workload at process 2: %v", err)
	}

	// Now drive workloads everywhere. Process 2's second batch dies
	// mid-flight when the crashpoint (armed at crashAt cumulative
	// submissions) fires — its connection error is the expected signal,
	// not a failure. The survivors' workloads include children on node
	// 2, so they block until the restarted process rejoins and drains
	// them.
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		n := txns
		if i == 2 {
			n = settled
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = get(i, fmt.Sprintf("/workload?txns=%d", n), nil)
		}()
	}

	// Wait for the crashpoint kill: exit code 137, like SIGKILL.
	crashed := procs[2]
	procs[2] = nil
	done := make(chan error, 1)
	go func() { done <- crashed.Wait() }()
	select {
	case <-done:
		if code := crashed.ProcessState.ExitCode(); code != 137 {
			t.Fatalf("crashed process exited %d, want 137\n%s", code, logOf(2))
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("process 2 did not hit its crashpoint\n%s", logOf(2))
	}

	// Restart from the same data directory, crashpoint disarmed.
	procs[2] = start(2)
	waitUntil(t, "restarted process control endpoint", func() bool {
		return get(2, "/state", nil) == nil
	})
	if !strings.Contains(logOf(2), "state=recovered") {
		t.Errorf("restarted process did not report recovery:\n%s", logOf(2))
	}

	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("workload at surviving process %d: %v", i, errs[i])
		}
	}
	if errs[2] == nil {
		t.Error("workload on the crashed process returned success; expected a severed connection")
	}

	// One full advancement certifies quiescence: every recovered
	// subtransaction (including the crashed node's 20 re-executed
	// roots and their cross-process children) terminated exactly once.
	var adv struct {
		NewVR int64 `json:"new_vr"`
		NewVU int64 `json:"new_vu"`
	}
	if err := get(0, "/advance", &adv); err != nil {
		t.Fatalf("advancement: %v", err)
	}
	if adv.NewVR != 1 || adv.NewVU != 2 {
		t.Fatalf("advancement installed vr=%d vu=%d, want 1/2", adv.NewVR, adv.NewVU)
	}

	// Every durably-acknowledged update survives: 40+40 from the
	// survivors plus the settled batch of 20. The mid-flight batch adds
	// whatever was journaled before the kill (0..10 of the submissions
	// the crashpoint allowed), and all replicas must agree exactly.
	const floor = 2*txns + settled
	const ceil = floor + (crashAt - settled)
	bals := make([]int64, nodes)
	for i := 0; i < nodes; i++ {
		var rd struct {
			Bal     int64 `json:"bal"`
			Version int64 `json:"version"`
		}
		if err := get(i, "/read", &rd); err != nil {
			t.Fatal(err)
		}
		bals[i] = rd.Bal
		if rd.Bal < floor || rd.Bal > ceil {
			t.Errorf("process %d: bal %d, want within [%d, %d]", i, rd.Bal, floor, ceil)
		}
		if rd.Bal != bals[0] {
			t.Errorf("replicas disagree: process %d bal %d, process 0 bal %d", i, rd.Bal, bals[0])
		}
		if rd.Version != 1 {
			t.Errorf("process %d: read version %d, want 1", i, rd.Version)
		}
		var st struct {
			VR          int64    `json:"vr"`
			VU          int64    `json:"vu"`
			Violations  []string `json:"violations"`
			Convergence []string `json:"convergence_errors"`
			Durable     bool     `json:"durable"`
			WALRecords  uint64   `json:"wal_records"`
		}
		if err := get(i, "/state", &st); err != nil {
			t.Fatal(err)
		}
		if st.VR != 1 || st.VU != 2 {
			t.Errorf("process %d at vr=%d vu=%d, want 1/2", i, st.VR, st.VU)
		}
		if len(st.Violations) > 0 {
			t.Errorf("process %d violations: %v", i, st.Violations)
		}
		if len(st.Convergence) > 0 {
			t.Errorf("process %d convergence: %v", i, st.Convergence)
		}
		if i == 2 && (!st.Durable || st.WALRecords == 0) {
			t.Errorf("restarted process durability state: %+v", st)
		}
	}

	for i := 0; i < nodes; i++ {
		if err := get(i, "/quit", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("process %d exit: %v\n%s", i, err, logOf(i))
			}
		case <-time.After(20 * time.Second):
			t.Errorf("process %d did not exit after /quit", i)
		}
	}
}

// syncWriter serializes child-process output into a shared buffer so
// the test can read logs while the process is still writing.
type syncWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
