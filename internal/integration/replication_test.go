package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The two-partition placement over three processes used by both gates.
// partition.NewMap(2, 3) hashes acct0 and acct2 into partition 0
// (owners [0 1 2], primary 0) and acct1 into partition 1 (owners
// [1 2 0], primary 1); internal/partition's tests pin the hash, so the
// constants here are stable.
const (
	replNodes = 3
	replParts = 2
)

// replCluster is the shared three-process scaffolding for the
// replication gates: build the binary, start the processes (one
// durable, crashpoint-armed), and expose helpers to drive the control
// endpoints.
type replCluster struct {
	t         *testing.T
	ctrlAddrs []string
	procs     []*exec.Cmd
	start     func(i int, extraEnv ...string) *exec.Cmd
	logOf     func(i int) string
	get       func(i int, path string, out any) error
}

// healthView mirrors the /health fields these gates consume.
type healthView struct {
	Replicate  bool `json:"replicate"`
	Partitions []struct {
		Part          int               `json:"part"`
		Role          string            `json:"role"`
		Primary       int               `json:"primary"`
		Term          uint64            `json:"term"`
		LastBeatAgeMs int64             `json:"last_beat_age_ms"`
		SentSeq       uint64            `json:"sent_seq"`
		Acked         map[string]uint64 `json:"acked"`
		Applied       map[string]uint64 `json:"applied"`
		MaxLag        uint64            `json:"max_lag"`
	} `json:"partitions"`
}

// startReplCluster builds threev-node (optionally with the race
// detector) and starts a three-process replicated two-partition
// cluster. Process durableID runs with -data-dir and the given
// crashpoint armed; coordinator failover is parked at a five-minute
// lease so only the replication lease is in play.
func startReplCluster(t *testing.T, race bool, durableID int, crashpoint string) *replCluster {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "threev-node")
	buildArgs := []string{"build"}
	if race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", bin, "repro/cmd/threev-node")
	build := exec.Command("go", buildArgs...)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building threev-node: %v\n%s", err, out)
	}

	protoAddrs := reserveAddrs(t, replNodes)
	ctrlAddrs := reserveAddrs(t, replNodes)
	dataDir := filepath.Join(t.TempDir(), fmt.Sprintf("node%d", durableID))
	peers := ""
	for i, a := range protoAddrs {
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("%d=%s", i, a)
	}

	var logMu sync.Mutex
	logs := make([]bytes.Buffer, replNodes)
	rc := &replCluster{t: t, ctrlAddrs: ctrlAddrs, procs: make([]*exec.Cmd, replNodes)}
	rc.logOf = func(i int) string {
		logMu.Lock()
		defer logMu.Unlock()
		return logs[i].String()
	}
	rc.start = func(i int, extraEnv ...string) *exec.Cmd {
		args := []string{
			"-id", fmt.Sprint(i),
			"-nodes", fmt.Sprint(replNodes),
			"-listen", protoAddrs[i],
			"-peers", peers,
			"-metrics", ctrlAddrs[i],
			"-partitions", fmt.Sprint(replParts),
			"-replicate",
			// The replication lease is the subject under test: a tight
			// heartbeat with a promotion threshold wide enough that a
			// loaded CI host cannot starve a live primary into a spurious
			// takeover.
			"-repl-lease-interval", "50ms",
			"-repl-lease-timeout", "2s",
			// Coordinator failover is not: park it so a standby takeover
			// never fences /advance mid-gate.
			"-lease-timeout", "5m",
			"-trace-sample", "0",
		}
		if i == durableID {
			args = append(args, "-data-dir", dataDir, "-fsync", "always", "-checkpoint-interval", "200ms")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = syncWriter{mu: &logMu, buf: &logs[i]}
		cmd.Stderr = syncWriter{mu: &logMu, buf: &logs[i]}
		cmd.Env = append(os.Environ(), extraEnv...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	for i := 0; i < replNodes; i++ {
		env := []string{}
		if i == durableID && crashpoint != "" {
			env = append(env, "THREEV_CRASHPOINT="+crashpoint)
		}
		rc.procs[i] = rc.start(i, env...)
	}
	t.Cleanup(func() {
		for i, p := range rc.procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
			if t.Failed() {
				t.Logf("process %d output:\n%s", i, rc.logOf(i))
			}
		}
	})

	client := &http.Client{Timeout: 2 * time.Minute}
	rc.get = func(i int, path string, out any) error {
		resp, err := client.Get("http://" + ctrlAddrs[i] + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %s: %s", path, resp.Status, body.String())
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	for i := 0; i < replNodes; i++ {
		i := i
		waitUntil(t, fmt.Sprintf("process %d control endpoint", i), func() bool {
			return rc.get(i, "/state", nil) == nil
		})
	}
	return rc
}

// waitExit137 waits for the crashpoint kill of process i: exit code
// 137, like SIGKILL. The process slot is cleared so Cleanup skips it.
func (rc *replCluster) waitExit137(i int) {
	rc.t.Helper()
	crashed := rc.procs[i]
	rc.procs[i] = nil
	done := make(chan error, 1)
	go func() { done <- crashed.Wait() }()
	select {
	case <-done:
		if code := crashed.ProcessState.ExitCode(); code != 137 {
			rc.t.Fatalf("crashed process %d exited %d, want 137\n%s", i, code, rc.logOf(i))
		}
	case <-time.After(30 * time.Second):
		rc.t.Fatalf("process %d did not hit its crashpoint\n%s", i, rc.logOf(i))
	}
}

// primaryOf asks observer's /health who currently holds partition
// part's replication lease.
func (rc *replCluster) primaryOf(observer, part int) int {
	rc.t.Helper()
	var h healthView
	if err := rc.get(observer, "/health", &h); err != nil {
		rc.t.Fatalf("/health at process %d: %v", observer, err)
	}
	for _, p := range h.Partitions {
		if p.Part == part {
			return p.Primary
		}
	}
	rc.t.Fatalf("/health at process %d has no partition %d: %+v", observer, part, h)
	return -1
}

// readOwned reads process i's /read response: the balances of the
// accounts whose partitions it is current primary for.
func (rc *replCluster) readOwned(i int) map[string]int64 {
	rc.t.Helper()
	var rd struct {
		Owned map[string]int64 `json:"owned"`
	}
	if err := rc.get(i, "/read", &rd); err != nil {
		rc.t.Fatalf("/read at process %d: %v", i, err)
	}
	return rd.Owned
}

// advanceRetry drives /advance at the coordinator until it succeeds:
// right after a process restart the sweep can race the transport
// reconnect, and those transient conflicts resolve on retry.
func (rc *replCluster) advanceRetry() {
	rc.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = rc.get(0, "/advance", nil); lastErr == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	rc.t.Fatalf("advancement did not complete: %v", lastErr)
}

// auditClean asserts process i reports no invariant violations and no
// convergence errors.
func (rc *replCluster) auditClean(i int) {
	rc.t.Helper()
	var st struct {
		Violations  []string `json:"violations"`
		Convergence []string `json:"convergence_errors"`
	}
	if err := rc.get(i, "/state", &st); err != nil {
		rc.t.Fatal(err)
	}
	if len(st.Violations) > 0 {
		rc.t.Errorf("process %d violations: %v", i, st.Violations)
	}
	if len(st.Convergence) > 0 {
		rc.t.Errorf("process %d convergence: %v", i, st.Convergence)
	}
}

// quitAll shuts the surviving processes down cleanly and waits for
// them.
func (rc *replCluster) quitAll() {
	rc.t.Helper()
	for i, p := range rc.procs {
		if p == nil {
			continue
		}
		if err := rc.get(i, "/quit", nil); err != nil {
			rc.t.Fatal(err)
		}
	}
	for i, p := range rc.procs {
		if p == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				rc.t.Errorf("process %d exit: %v\n%s", i, err, rc.logOf(i))
			}
		case <-time.After(20 * time.Second):
			rc.t.Errorf("process %d did not exit after /quit", i)
		}
		rc.procs[i] = nil
	}
}

// TestReplicaFailoverThreeProcess is the replica-group acceptance gate
// at process scale: a three-process TCP cluster with two partitions and
// replication on. Partition 1's placement primary (process 1, durable)
// settles a batch, then is killed mid-traffic (exit 137, the crashpoint
// harness's stand-in for kill -9). The replication lease must promote a
// surviving owner within its bounded window, every acknowledged update
// must stay readable from the promoted backup while the primary is
// gone, new updates must keep committing through it, and the restarted
// primary must recover from its WAL, catch up from the retransmitted
// stream, and rejoin a cluster whose advancement and convergence audits
// pass everywhere.
func TestReplicaFailoverThreeProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	// Process 1 is partition 1's placement primary; it dies on its 5th
	// locally-submitted transaction of the kill batch.
	const victim, crashAt = 1, 5
	rc := startReplCluster(t, false, victim, fmt.Sprintf("workload-submit:%d", crashAt))

	// Settle a batch from process 0: /workload waits for its handles,
	// so every one of these updates is acknowledged — and, for
	// partition 1, streamed to the backups. Then advance so reads see
	// them.
	if err := rc.get(0, "/workload?txns=20", nil); err != nil {
		t.Fatalf("settled workload: %v", err)
	}
	rc.advanceRetry()

	// The settled balance of partition 1's account, read from whichever
	// process currently holds the lease (the placement primary, absent
	// pathological starvation).
	prim := rc.primaryOf(0, 1)
	settled, ok := rc.readOwned(prim)["acct1"]
	if !ok {
		t.Fatalf("partition 1 primary %d does not serve acct1", prim)
	}
	if settled == 0 {
		t.Fatal("settled batch left acct1 at 0; expected replicated traffic")
	}

	// Kill the victim mid-traffic: its own workload trips the armed
	// crashpoint partway through, so the connection error is the
	// expected signal, with submissions in flight at the moment of
	// death.
	var wlErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wlErr = rc.get(victim, "/workload?txns=10", nil)
	}()
	rc.waitExit137(victim)
	wg.Wait()
	if wlErr == nil {
		t.Error("workload on the crashed process returned success; expected a severed connection")
	}

	// Promotion within the lease's bounded window: a surviving owner of
	// partition 1 takes over and routing follows.
	var promoted int
	waitUntil(t, "replica promotion for partition 1", func() bool {
		promoted = rc.primaryOf(0, 1)
		return promoted != victim
	})
	if promoted != 0 && promoted != 2 {
		t.Fatalf("promoted primary %d is not a surviving owner of partition 1", promoted)
	}

	// Availability: every acknowledged (settled) update is readable
	// from the promoted backup while the placement primary is dead.
	// Exact equality is the point — the kill batch ran above the
	// current read version, so it cannot leak into this read.
	if got := rc.readOwned(promoted)["acct1"]; got != settled {
		t.Fatalf("promoted backup %d serves acct1=%d, want the settled %d", promoted, got, settled)
	}

	// Writes keep committing through the promoted primary: 9 more
	// transactions, +3 per account, none of which need the dead
	// process.
	if err := rc.get(promoted, "/workload?txns=9", nil); err != nil {
		t.Fatalf("workload through promoted primary %d: %v", promoted, err)
	}

	// Restart the victim from its data directory, crashpoint disarmed:
	// it must recover its WAL and catch up from the session layer's
	// retransmitted stream.
	rc.procs[victim] = rc.start(victim)
	waitUntil(t, "restarted process control endpoint", func() bool {
		return rc.get(victim, "/state", nil) == nil
	})
	if !strings.Contains(rc.logOf(victim), "state=recovered") {
		t.Errorf("restarted process did not report recovery:\n%s", rc.logOf(victim))
	}

	// A full advancement over all three processes certifies quiescence:
	// the recovered roots re-executed exactly once and every partition's
	// version pair moved together.
	rc.advanceRetry()

	// The kill batch's round-robin put acct1 in submissions 1 and 4 of
	// the five the crashpoint allowed; a journaled-but-unacknowledged
	// prefix may legitimately contribute 0..2 extra on recovery.
	cur := rc.primaryOf(0, 1)
	got := rc.readOwned(cur)["acct1"]
	lo, hi := settled+3, settled+3+2
	if got < lo || got > hi {
		t.Errorf("acct1=%d at primary %d, want within [%d, %d]", got, cur, lo, hi)
	}
	// Partition 0 (acct0, acct2) was undisturbed by the failover; its
	// window likewise admits the recovered prefix of the kill batch.
	owned0 := rc.readOwned(rc.primaryOf(0, 0))
	if got := owned0["acct0"]; got < 10 || got > 12 {
		t.Errorf("acct0=%d, want within [10, 12]", got)
	}
	if got := owned0["acct2"]; got < 9 || got > 10 {
		t.Errorf("acct2=%d, want within [9, 10]", got)
	}

	for i := 0; i < replNodes; i++ {
		rc.auditClean(i)
	}
	rc.quitAll()
}

// TestReplicaBackupKillRecovery is the backup-crash half of the replica
// story, with the race detector compiled into the node binary: process
// 2 — a backup owner of partition 1 — journals replicated applies
// through its WAL and is killed (exit 137) mid-stream on its 4th
// applied frame while traffic flows. On restart it must recover its
// store and applied frontier from the WAL and catch up from the
// session layer's retransmissions without double-applying: frames the
// WAL already holds are rejected by the recovered per-sender frontier,
// frames lost in the crash window re-apply against a store that never
// saw them. The proof is exact — after the old primary is killed and
// the caught-up backup promoted, it serves precisely the acknowledged
// balance.
func TestReplicaBackupKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const backup = 2
	rc := startReplCluster(t, true, backup, "repl-p1-apply:4")

	// Traffic from process 0: the transaction paths touch only
	// processes 0 and 1 (the two partition primaries), so the workload
	// settles in full while the backup dies mid-stream behind it.
	if err := rc.get(0, "/workload?txns=20", nil); err != nil {
		t.Fatalf("workload: %v", err)
	}
	rc.waitExit137(backup)

	// Restart from the same data directory, crashpoint disarmed.
	rc.procs[backup] = rc.start(backup)
	waitUntil(t, "restarted backup control endpoint", func() bool {
		return rc.get(backup, "/state", nil) == nil
	})
	if !strings.Contains(rc.logOf(backup), "state=recovered") {
		t.Errorf("restarted backup did not report recovery:\n%s", rc.logOf(backup))
	}

	// Catch-up: partition 1's primary must see the restarted backup ack
	// an applied frontier equal to its sent frontier — replication lag
	// zero. (Acks carry the backup's local applied frontier, so this is
	// the applied position, not mere receipt.)
	waitUntil(t, "restarted backup to catch up", func() bool {
		var h healthView
		if err := rc.get(1, "/health", &h); err != nil {
			return false
		}
		for _, p := range h.Partitions {
			if p.Part == 1 && p.Role == "primary" {
				return p.SentSeq > 0 && p.Acked[fmt.Sprint(backup)] == p.SentSeq
			}
		}
		return false
	})

	// Advance so reads see the batch, and record the acknowledged
	// balance at the current primary.
	rc.advanceRetry()
	want := rc.readOwned(rc.primaryOf(0, 1))["acct1"]
	if want == 0 {
		t.Fatal("acct1 settled at 0; expected replicated traffic")
	}
	for i := 0; i < replNodes; i++ {
		rc.auditClean(i)
	}

	// Kill the primary outright and let the lease promote a survivor.
	// Whichever backup wins holds a store built purely from idempotent
	// replicated applies — for process 2, applies recovered from its
	// WAL plus retransmissions deduped against the recovered frontier —
	// and must serve exactly the acknowledged balance. One apply lost
	// in the crash window would read low; one double-applied retransmit
	// would read high.
	old := rc.procs[1]
	rc.procs[1] = nil
	old.Process.Kill()
	old.Wait()
	var promoted int
	waitUntil(t, "replica promotion after primary kill", func() bool {
		promoted = rc.primaryOf(0, 1)
		return promoted != 1
	})
	if got := rc.readOwned(promoted)["acct1"]; got != want {
		t.Fatalf("promoted backup %d serves acct1=%d, want exactly %d (lost or double-applied replicated frames)",
			promoted, got, want)
	}
	rc.auditClean(promoted)
	rc.quitAll()
}
