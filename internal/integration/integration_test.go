// Package integration holds cross-module end-to-end tests that exercise
// the full 3V stack — cluster, workload, verification — against the
// paper's strongest correctness statement, Theorem 4.1: every schedule
// is equivalent to a serial schedule in which transactions are ordered
// by version number, with updates of a version preceding the reads of
// that version.
package integration

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/verify"
	"repro/internal/workload"
)

// runTheorem41Audit drives a mixed workload with continuous
// advancement, collects full ground truth (each update's assigned
// version and part count, each read's assigned version and results),
// and checks the exact Theorem 4.1 visibility rule: a read of version v
// observes ALL parts of every update with version ≤ v and NOTHING of
// any update with version > v.
//
// With a non-nil chaos schedule the run doubles as a survival proof:
// faults are injected while the load runs, healed once it drains, and
// the cluster must then converge (versions agreed, counters balanced)
// with the full serializability audit still passing.
func runTheorem41Audit(t *testing.T, cfg core.Config, wl workload.Config, txns int, advEvery time.Duration, chaos *harness.ChaosConfig) {
	t.Helper()
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(wl)
	for _, p := range gen.PreloadSpecs() {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		rec.Fields["count"] = 0
		c.Preload(p.Node, p.Key, rec)
	}
	c.Start()
	defer c.Close()
	sys := baseline.ThreeV{Cluster: c}

	var cc *harness.Chaos
	if chaos != nil {
		fi, ok := c.Network().(transport.FaultInjector)
		if !ok {
			t.Fatal("chaos schedule requires a fault-injecting network")
		}
		cc = harness.StartChaos(fi, *chaos)
	}

	stop := make(chan struct{})
	advDone := make(chan struct{})
	go func() {
		defer close(advDone)
		for {
			select {
			case <-stop:
				return
			default:
				sys.Advance()
				time.Sleep(advEvery)
			}
		}
	}()

	type pendingRead struct {
		h     *core.Handle
		group int
	}
	updates := make(map[model.TxnID]verify.UpdateMeta) // keyed by tuple Writer id
	writerOf := make(map[model.TxnID]model.TxnID)      // cluster txn id -> writer id
	var updateHandles []*core.Handle
	var reads []pendingRead

	for i := 0; i < txns; i++ {
		txn := gen.Next()
		h, err := c.Submit(txn.Spec)
		if err != nil {
			t.Fatal(err)
		}
		switch txn.Kind {
		case workload.KindUpdate:
			writerOf[h.ID] = txn.Writer
			updates[txn.Writer] = verify.UpdateMeta{Parts: txn.Parts, Compensated: txn.Aborting}
			updateHandles = append(updateHandles, h)
		case workload.KindRead:
			reads = append(reads, pendingRead{h: h, group: txn.Group})
		}
	}
	// Wait for everything; record each update's assigned version.
	for _, h := range updateHandles {
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("update timed out")
		}
		v, ok := h.Version()
		if !ok {
			t.Fatal("update completed without a version")
		}
		w := writerOf[h.ID]
		meta := updates[w]
		meta.Version = v
		updates[w] = meta
	}
	var groupReads []verify.GroupRead
	for _, pr := range reads {
		if !pr.h.WaitTimeout(30 * time.Second) {
			t.Fatal("read timed out")
		}
		v, ok := pr.h.Version()
		if !ok {
			t.Fatal("read completed without a version")
		}
		groupReads = append(groupReads, verify.GroupRead{
			Txn:         pr.h.ID,
			ReadVersion: v,
			Results:     pr.h.Reads(),
		})
	}
	close(stop)
	<-advDone

	if cc != nil {
		cc.Stop() // heal everything before the convergence checks
		if rep := sys.Cluster.Advance(); rep.Interrupted {
			t.Fatalf("post-heal advancement failed: %v", rep.Err)
		}
		if rep := sys.Cluster.Advance(); rep.Interrupted {
			t.Fatalf("second post-heal advancement failed: %v", rep.Err)
		}
		for _, e := range c.ConvergenceErrors() {
			t.Errorf("convergence after heal: %s", e)
		}
		st := c.Metrics().Transport
		if st.Dropped == 0 || st.Duplicated == 0 {
			t.Fatalf("fault injection inactive (dropped=%d duplicated=%d); the chaos run proved nothing",
				st.Dropped, st.Duplicated)
		}
		if chaos.PartitionFor > 0 && cc.Partitions() == 0 {
			t.Fatal("the scheduled partition never fired")
		}
		t.Logf("chaos: dropped=%d partition-dropped=%d duplicated=%d retransmits=%d dup-discarded=%d",
			st.Dropped, st.PartitionDrops, st.Duplicated, st.Retransmits, st.DupDropped)
	}

	// The full-strength audit: every read sees exactly the updates of
	// its version prefix. One subtlety: the workload writes each group
	// update to ALL items of one group, and each read covers all items
	// of one group — but only ITS group. Restrict each read's ground
	// truth to writers of its group by keying updates per group.
	//
	// (Writers of other groups are invisible to this read trivially —
	// their tuples live in other items — so including them would only
	// produce spurious "missing-committed" findings. We therefore audit
	// group by group.)
	byGroup := make(map[int]map[model.TxnID]verify.UpdateMeta)
	gen2 := workload.New(wl) // regenerate the same stream for group info
	for i := 0; i < txns; i++ {
		txn := gen2.Next()
		if txn.Kind != workload.KindUpdate {
			continue
		}
		m := byGroup[txn.Group]
		if m == nil {
			m = make(map[model.TxnID]verify.UpdateMeta)
			byGroup[txn.Group] = m
		}
		if meta, ok := updates[txn.Writer]; ok {
			m[txn.Writer] = meta
		}
	}
	gen3 := workload.New(wl)
	readIdx := 0
	anomTotal := 0
	for i := 0; i < txns; i++ {
		txn := gen3.Next()
		if txn.Kind != workload.KindRead {
			continue
		}
		gr := groupReads[readIdx]
		readIdx++
		anoms := verify.AuditSerializability([]verify.GroupRead{gr}, byGroup[txn.Group])
		for _, a := range anoms {
			t.Errorf("Theorem 4.1 violation: %v", a)
			anomTotal++
			if anomTotal > 10 {
				t.Fatal("too many violations; aborting")
			}
		}
	}
	if readIdx != len(groupReads) {
		t.Fatalf("audited %d reads, collected %d", readIdx, len(groupReads))
	}
	if rep := verify.CheckStructural(c); !rep.OK() {
		t.Errorf("structural check failed: %v", rep)
	}
}

func TestTheorem41MixedLoad(t *testing.T) {
	runTheorem41Audit(t,
		core.Config{Nodes: 4, NetConfig: transport.Config{Jitter: 400 * time.Microsecond, Seed: 5}},
		workload.Config{Nodes: 4, Groups: 24, Span: 2, ReadFraction: 0.35, Seed: 301},
		300, time.Millisecond, nil)
}

func TestTheorem41WithCompensation(t *testing.T) {
	runTheorem41Audit(t,
		core.Config{Nodes: 3, NetConfig: transport.Config{Jitter: 400 * time.Microsecond, Seed: 6}},
		workload.Config{Nodes: 3, Groups: 16, Span: 2, ReadFraction: 0.3, AbortFraction: 0.15, Seed: 302},
		250, time.Millisecond, nil)
}

func TestTheorem41WideFanout(t *testing.T) {
	runTheorem41Audit(t,
		core.Config{Nodes: 6, NetConfig: transport.Config{Jitter: 600 * time.Microsecond, Seed: 7}},
		workload.Config{Nodes: 6, Groups: 12, Span: 4, ReadFraction: 0.3, Seed: 303},
		200, 2*time.Millisecond, nil)
}

// TestTheorem41RandomizedSeeds fuzzes the audit across seeds; each run
// is small but the interleavings differ.
func TestTheorem41RandomizedSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < 3; i++ {
		seed := rng.Int63()
		t.Logf("seed %d", seed)
		runTheorem41Audit(t,
			core.Config{Nodes: 3, NetConfig: transport.Config{Jitter: 300 * time.Microsecond, Seed: seed}},
			workload.Config{Nodes: 3, Groups: 8, Span: 2, ReadFraction: 0.4, Seed: seed},
			120, time.Millisecond, nil)
	}
}

// TestRecoveryUnderLoad crashes the advancement coordinator while a
// load is running, recovers, and requires the system to keep satisfying
// the atomic-visibility guarantee and to keep advancing.
func TestRecoveryUnderLoad(t *testing.T) {
	c, err := core.NewCluster(core.Config{Nodes: 3,
		NetConfig: transport.Config{Jitter: 300 * time.Microsecond, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(workload.Config{Nodes: 3, Groups: 16, Span: 2, ReadFraction: 0.3, Seed: 304})
	for _, p := range gen.PreloadSpecs() {
		rec := model.NewRecord()
		rec.Fields["bal"] = 0
		rec.Fields["count"] = 0
		c.Preload(p.Node, p.Key, rec)
	}
	c.Start()
	defer c.Close()

	var handles []*core.Handle
	var readHandles []*core.Handle
	submit := func(n int) {
		for i := 0; i < n; i++ {
			txn := gen.Next()
			h, err := c.Submit(txn.Spec)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
			if txn.Kind == workload.KindRead {
				readHandles = append(readHandles, h)
			}
		}
	}

	submit(60)
	advDone := c.AdvanceAsync()
	time.Sleep(500 * time.Microsecond)
	fresh := c.CrashCoordinator()
	rep := <-advDone
	_ = rep // may or may not have been interrupted depending on timing
	if _, err := fresh.Recover(); err != nil {
		t.Fatal(err)
	}
	submit(60)
	for _, h := range handles {
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatal("transaction stuck after coordinator crash/recovery")
		}
	}
	var groupReads []verify.GroupRead
	for _, h := range readHandles {
		groupReads = append(groupReads, verify.GroupRead{Txn: h.ID, Results: h.Reads()})
	}
	if len(groupReads) == 0 {
		t.Fatal("workload produced no reads to audit")
	}
	adv := c.Advance()
	if adv.Interrupted {
		t.Fatal("post-recovery advancement interrupted")
	}
	if anoms := verify.AuditAtomicVisibility(groupReads); len(anoms) > 0 {
		t.Errorf("anomalies after recovery: %v", anoms[0])
	}
	if rep := verify.CheckStructural(c); !rep.OK() {
		t.Errorf("structural check failed: %v", rep)
	}
}
