package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

type ping struct{ n int }
type pong struct{ n int }

func TestNetDeliversInOrderWithoutJitter(t *testing.T) {
	n := NewNet(Config{Nodes: 2})
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	n.Register(0, func(m Message) {})
	n.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(ping).n)
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	})
	n.Start()
	defer n.Close()
	for i := 0; i < 100; i++ {
		n.Send(Message{From: 0, To: 1, Payload: ping{i}})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d delivered as %d: zero-latency delivery must be FIFO", i, v)
		}
	}
}

func TestNetSendNeverBlocks(t *testing.T) {
	// Receiver is slow; 10k sends must still return promptly because
	// mailboxes are unbounded (the protocol's no-waiting requirement).
	n := NewNet(Config{Nodes: 2})
	release := make(chan struct{})
	var seen atomic.Int64
	n.Register(0, func(Message) {})
	n.Register(1, func(m Message) {
		<-release
		seen.Add(1)
	})
	n.Start()
	start := time.Now()
	for i := 0; i < 10000; i++ {
		n.Send(Message{From: 0, To: 1, Payload: ping{i}})
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("10k sends took %v; Send must not block on receiver", el)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for seen.Load() < 10000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if seen.Load() != 10000 {
		t.Fatalf("delivered %d of 10000", seen.Load())
	}
	n.Close()
}

func TestNetJitterReorders(t *testing.T) {
	// With jitter, some pair of messages must arrive out of send order.
	n := NewNet(Config{Nodes: 2, BaseLatency: 100 * time.Microsecond, Jitter: 2 * time.Millisecond, Seed: 7})
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	n.Register(0, func(Message) {})
	n.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(ping).n)
		if len(got) == 50 {
			close(done)
		}
		mu.Unlock()
	})
	n.Start()
	defer n.Close()
	for i := 0; i < 50; i++ {
		n.Send(Message{From: 0, To: 1, Payload: ping{i}})
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("jittered delivery never reordered 50 messages (statistically near-impossible)")
	}
}

func TestNetHandlerMaySend(t *testing.T) {
	n := NewNet(Config{Nodes: 2})
	done := make(chan int, 1)
	n.Register(0, func(m Message) {
		done <- m.Payload.(pong).n
	})
	n.Register(1, func(m Message) {
		n.Send(Message{From: 1, To: 0, Payload: pong{m.Payload.(ping).n + 1}})
	})
	n.Start()
	defer n.Close()
	n.Send(Message{From: 0, To: 1, Payload: ping{41}})
	select {
	case v := <-done:
		if v != 42 {
			t.Errorf("round trip = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round trip timed out")
	}
}

func TestNetStats(t *testing.T) {
	n := NewNet(Config{Nodes: 2})
	n.Register(0, func(Message) {})
	n.Register(1, func(Message) {})
	n.Start()
	defer n.Close()
	n.Send(Message{From: 0, To: 1, Payload: ping{1}})
	n.Send(Message{From: 0, To: 1, Payload: ping{2}})
	n.Send(Message{From: 1, To: 0, Payload: pong{1}})
	st := n.Stats()
	if st.Messages != 3 {
		t.Errorf("Messages = %d, want 3", st.Messages)
	}
	if st.ByType["transport.ping"] != 2 || st.ByType["transport.pong"] != 1 {
		t.Errorf("ByType = %v", st.ByType)
	}
}

func TestNetCloseIdempotentAndDropsQueued(t *testing.T) {
	n := NewNet(Config{Nodes: 1})
	n.Register(0, func(Message) {})
	n.Start()
	n.Close()
	n.Close() // second close must not panic
	n.Send(Message{From: 0, To: 0, Payload: ping{}})
}

func TestScriptHoldsUntilDelivered(t *testing.T) {
	s := NewScript(2)
	var got []int
	s.Register(0, func(Message) {})
	s.Register(1, func(m Message) { got = append(got, m.Payload.(ping).n) })
	s.Start()
	s.Send(Message{From: 0, To: 1, Payload: ping{1}})
	s.Send(Message{From: 0, To: 1, Payload: ping{2}})
	if len(got) != 0 {
		t.Fatal("script delivered without being asked")
	}
	if s.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", s.PendingCount())
	}
	if !s.DeliverNextTo(1) {
		t.Fatal("DeliverNextTo failed")
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after one delivery got = %v", got)
	}
	if n := s.DeliverAll(); n != 1 {
		t.Fatalf("DeliverAll delivered %d, want 1", n)
	}
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("got = %v", got)
	}
	if s.DeliverNextTo(1) {
		t.Error("delivery from empty script succeeded")
	}
}

func TestScriptDeliverWhereSelects(t *testing.T) {
	s := NewScript(3)
	var got []string
	for i := 0; i < 3; i++ {
		id := model.NodeID(i)
		s.Register(id, func(m Message) {
			got = append(got, m.To.String())
		})
	}
	s.Send(Message{From: 0, To: 1, Payload: ping{1}})
	s.Send(Message{From: 0, To: 2, Payload: ping{2}})
	s.Send(Message{From: 0, To: 1, Payload: pong{3}})
	// Deliver the pong first even though it was sent last.
	ok := s.DeliverWhere(func(m Message) bool {
		_, isPong := m.Payload.(pong)
		return isPong
	})
	if !ok || len(got) != 1 || got[0] != "q" {
		t.Fatalf("selective delivery failed: ok=%v got=%v", ok, got)
	}
	hc := s.HoldCount()
	if hc[1] != 1 || hc[2] != 1 {
		t.Errorf("HoldCount = %v", hc)
	}
	types := s.TypeNames()
	if len(types) != 1 || types[0] != "transport.ping" {
		t.Errorf("TypeNames = %v", types)
	}
	if n := s.DeliverAllTo(2); n != 1 {
		t.Errorf("DeliverAllTo(2) = %d", n)
	}
	pend := s.Pending()
	if len(pend) != 1 {
		t.Errorf("Pending = %v", pend)
	}
}

func TestScriptCascadedDelivery(t *testing.T) {
	// A handler that sends during delivery: DeliverAll must keep going
	// until the cascade settles.
	s := NewScript(2)
	hops := 0
	s.Register(0, func(m Message) {
		hops++
		if hops < 5 {
			s.Send(Message{From: 0, To: 1, Payload: ping{hops}})
		}
	})
	s.Register(1, func(m Message) {
		s.Send(Message{From: 1, To: 0, Payload: pong{}})
	})
	s.Send(Message{From: 1, To: 0, Payload: pong{}})
	n := s.DeliverAll()
	if hops != 5 {
		t.Errorf("cascade hops = %d, want 5", hops)
	}
	if n != 9 { // 5 pongs to node 0 + 4 pings to node 1
		t.Errorf("DeliverAll = %d, want 9", n)
	}
}

func TestScriptDeliverIndex(t *testing.T) {
	s := NewScript(2)
	var got []int
	s.Register(0, func(Message) {})
	s.Register(1, func(m Message) { got = append(got, m.Payload.(ping).n) })
	for i := 0; i < 3; i++ {
		s.Send(Message{From: 0, To: 1, Payload: ping{i}})
	}
	if s.DeliverIndex(5) || s.DeliverIndex(-1) {
		t.Error("out-of-range DeliverIndex succeeded")
	}
	if !s.DeliverIndex(1) { // deliver the middle message first
		t.Fatal("DeliverIndex(1) failed")
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got = %v, want [1]", got)
	}
	s.DeliverIndex(0)
	s.DeliverIndex(0)
	if len(got) != 3 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("got = %v, want [1 0 2]", got)
	}
}

func TestNetSendAfterCloseDropsDelayed(t *testing.T) {
	n := NewNet(Config{Nodes: 1, BaseLatency: time.Millisecond})
	n.Register(0, func(Message) {})
	n.Start()
	n.Close()
	// Must neither panic nor race Close's waiter.
	n.Send(Message{From: 0, To: 0, Payload: ping{1}})
}
