package reliable

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// batchedPair builds a started 2-node batched Session over a live Net.
func batchedPair(t *testing.T, f transport.Faults, cfg Config) (*Session, func() []any) {
	t.Helper()
	inner := transport.NewNet(transport.Config{Nodes: 2, Seed: 11, Faults: f})
	s := Wrap(inner, 2, cfg)
	var mu sync.Mutex
	var got []any
	s.Register(0, func(transport.Message) {})
	s.Register(1, func(m transport.Message) {
		mu.Lock()
		got = append(got, m.Payload)
		mu.Unlock()
	})
	s.Start()
	t.Cleanup(s.Close)
	return s, func() []any {
		mu.Lock()
		defer mu.Unlock()
		return append([]any(nil), got...)
	}
}

func (s *Session) linkInFlight(from, to int) int {
	l := s.send[from][to]
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.unacked)
}

// TestBatchedFIFOExactlyOnce pins the core contract with batching on:
// every message delivered exactly once, in per-link send order, and the
// wire actually coalesced (fewer flush envelopes than messages).
func TestBatchedFIFOExactlyOnce(t *testing.T) {
	s, got := batchedPair(t, transport.Faults{}, Config{
		RetransmitInterval: 2 * time.Millisecond,
		FlushInterval:      200 * time.Microsecond,
	})
	const n = 500
	for i := 0; i < n; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
	}
	waitFor(t, func() bool { return len(got()) == n }, "all deliveries")
	for i, p := range got() {
		if p != i {
			t.Fatalf("delivery %d = %v, want %d (per-link FIFO)", i, p, i)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("batched session recorded no flushes")
	}
	if st.Flushes >= n {
		t.Fatalf("flushes = %d for %d messages: nothing coalesced", st.Flushes, n)
	}
	waitFor(t, func() bool { return s.InFlight() == 0 }, "acks to drain")
}

// TestDelayedAckNeverStarves sends one-directional traffic (no reverse
// data to piggyback on) and asserts the AckDelay timer alone releases
// the sender's unacked frames — without a single retransmit. If delayed
// acks could starve, the sender's frames would sit unacked until the
// retransmission timer prodded the receiver into re-acking.
func TestDelayedAckNeverStarves(t *testing.T) {
	s, got := batchedPair(t, transport.Faults{}, Config{
		RetransmitInterval: 500 * time.Millisecond, // long: a retransmit means acks starved
		FlushInterval:      100 * time.Microsecond,
		AckDelay:           time.Millisecond,
	})
	const n = 50
	for i := 0; i < n; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
	}
	waitFor(t, func() bool { return len(got()) == n }, "all deliveries")
	waitFor(t, func() bool { return s.InFlight() == 0 }, "delayed acks to release every frame")
	if r := s.Stats().Retransmits; r != 0 {
		t.Fatalf("got %d retransmits: the delayed ack starved the sender", r)
	}
}

// TestAckPiggybacksOnReverseData arranges an owed ack and reverse-
// direction data inside the ack window, and asserts the sender's frame
// is released far sooner than the standalone AckDelay timer could —
// the ack must have ridden the reverse data flush.
func TestAckPiggybacksOnReverseData(t *testing.T) {
	s, got := batchedPair(t, transport.Faults{}, Config{
		RetransmitInterval: 5 * time.Second,
		FlushInterval:      100 * time.Microsecond,
		AckDelay:           2 * time.Second, // standalone ack would take this long
	})
	s.Send(transport.Message{From: 0, To: 1, Payload: "ping"})
	waitFor(t, func() bool { return len(got()) == 1 }, "forward delivery")
	// Node 1 now owes node 0 an ack. Reverse data must carry it.
	s.Send(transport.Message{From: 1, To: 0, Payload: "pong"})
	deadline := time.Now().Add(500 * time.Millisecond) // ≪ AckDelay
	for s.linkInFlight(0, 1) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("ack did not piggyback on the reverse data flush")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedChaosDropExactlyOnce runs a 1% drop rate against batched
// links: a dropped envelope loses the whole flush, and every member
// must come back via retransmission as a unit — still exactly once,
// still in FIFO order.
func TestBatchedChaosDropExactlyOnce(t *testing.T) {
	s, got := batchedPair(t,
		transport.Faults{Default: transport.LinkFaults{DropRate: 0.05}},
		Config{
			RetransmitInterval: time.Millisecond,
			FlushInterval:      200 * time.Microsecond,
		})
	const n = 2000
	for i := 0; i < n; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
		if i%10 == 9 {
			// Pace the producer so the run spans many flush windows —
			// a tight loop would coalesce into a handful of envelopes
			// and the drop rate would rarely fire.
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitFor(t, func() bool { return len(got()) >= n }, "all deliveries despite drops")
	time.Sleep(10 * time.Millisecond) // let stray duplicates surface
	final := got()
	if len(final) != n {
		t.Fatalf("delivered %d messages, want exactly %d", len(final), n)
	}
	for i, p := range final {
		if p != i {
			t.Fatalf("delivery %d = %v, want %d (FIFO violated under batched drops)", i, p, i)
		}
	}
	if s.Stats().Dropped == 0 {
		t.Fatal("chaos run dropped nothing; the test exercised no fault path")
	}
	waitFor(t, func() bool { return s.InFlight() == 0 }, "acks to drain")
}

func benchSession(nodes int) *Session {
	inner := transport.NewNet(transport.Config{Nodes: nodes, Seed: 1})
	s := Wrap(inner, nodes, Config{})
	return s
}

// BenchmarkRetransmitScanIdle measures one retransmit tick with every
// frame acked — the steady state of a healthy cluster. The idle guard
// reduces it to a single atomic load.
func BenchmarkRetransmitScanIdle(b *testing.B) {
	s := benchSession(16)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.retransmitOverdue(now)
	}
}

// BenchmarkRetransmitScanIdleFull measures the same idle tick without
// the guard: the full n² sweep over every link mutex that used to run
// on every TickInterval even with nothing in flight.
func BenchmarkRetransmitScanIdleFull(b *testing.B) {
	s := benchSession(16)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.scanOverdue(now)
	}
}
