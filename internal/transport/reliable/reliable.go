// Package reliable restores the exactly-once, per-link-FIFO delivery
// contract the 3V protocol's counter scheme depends on, over a network
// that drops, duplicates, reorders and partitions messages.
//
// The paper (Section 4) silently assumes a reliable network: a sender
// increments R[v][p][q] strictly before a subtransaction leaves, and
// the receiver increments C[v][p][q] at termination, so quiescence
// (R == C everywhere) is reachable only if every message eventually
// arrives exactly once. Session is the classic fix — a sequence-number
// session layer (think TCP-lite) interposed as a Network decorator:
//
//   - every data message on a directed link (s → r) carries a sequence
//     number drawn from the link's counter;
//   - the receiver delivers strictly in sequence order, buffering
//     out-of-order arrivals and discarding duplicates;
//   - the receiver acknowledges cumulatively (highest in-order sequence
//     delivered); acks ride the same lossy network and may themselves
//     be lost;
//   - the sender retransmits unacknowledged frames on a timer with
//     capped exponential backoff, so a partition merely delays
//     delivery until heal.
//
// The protocol layers above see exactly the Network interface they
// always had — core is untouched except for construction-time wiring.
package reliable

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// DataMsg is the session envelope for one application payload on a
// directed link. Seq starts at 1 and increments per link.
type DataMsg struct {
	Seq     uint64
	Payload any
}

// AckMsg is the receiver's cumulative acknowledgement for the reverse
// link: every data frame with Seq ≤ CumAck has been delivered.
type AckMsg struct {
	CumAck uint64
}

// Stable accounting names shared with internal/wire's codec registry so
// metrics labels agree across processes.
func init() {
	transport.RegisterPayloadName(DataMsg{}, "reliable_data")
	transport.RegisterPayloadName(AckMsg{}, "reliable_ack")
}

// Config tunes the session layer. The zero value selects defaults
// sized for the in-process simulation's microsecond-scale latencies.
type Config struct {
	// RetransmitInterval is the initial retransmission timeout for an
	// unacknowledged frame; 0 means 2ms.
	RetransmitInterval time.Duration
	// MaxBackoff caps the per-frame exponential backoff; 0 means 50ms.
	MaxBackoff time.Duration
	// TickInterval spaces scans of the unacked frame lists; 0 means
	// RetransmitInterval/2.
	TickInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 50 * time.Millisecond
	}
	if c.TickInterval <= 0 {
		c.TickInterval = c.RetransmitInterval / 2
	}
	return c
}

// pendingFrame is one sent-but-unacknowledged data frame.
type pendingFrame struct {
	msg        transport.Message // the enveloped message, ready to re-send
	seq        uint64
	backoff    time.Duration
	nextResend time.Time
}

// sendLink is the sender-side state of one directed link.
type sendLink struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []pendingFrame // ascending by seq
}

// recvLink is the receiver-side state of one directed link.
type recvLink struct {
	nextExpected uint64                 // next in-order seq to deliver
	buffer       map[uint64]interface{} // out-of-order payloads by seq
}

// Session is the reliable-delivery decorator. It implements
// transport.Network; wrap the faulty inner network with Wrap before
// registering handlers.
type Session struct {
	inner transport.Network
	cfg   Config
	n     int

	handlers []transport.Handler
	send     [][]*sendLink // [from][to]
	recvMu   []sync.Mutex  // per receiving node (delivery is serial per node already; the mutex guards cross-field invariants for Stats readers)
	recv     [][]*recvLink // [to][from]

	retransmits atomic.Int64
	dupDropped  atomic.Int64

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// Wrap decorates inner (serving node ids 0..nodes-1) with the session
// layer. The Session owns inner: closing the Session closes it.
func Wrap(inner transport.Network, nodes int, cfg Config) *Session {
	if nodes <= 0 {
		panic("reliable: nodes must be positive")
	}
	s := &Session{
		inner:    inner,
		cfg:      cfg.withDefaults(),
		n:        nodes,
		handlers: make([]transport.Handler, nodes),
		send:     make([][]*sendLink, nodes),
		recvMu:   make([]sync.Mutex, nodes),
		recv:     make([][]*recvLink, nodes),
		stop:     make(chan struct{}),
	}
	for i := 0; i < nodes; i++ {
		s.send[i] = make([]*sendLink, nodes)
		s.recv[i] = make([]*recvLink, nodes)
		for j := 0; j < nodes; j++ {
			s.send[i][j] = &sendLink{}
			s.recv[i][j] = &recvLink{nextExpected: 1, buffer: make(map[uint64]interface{})}
		}
	}
	return s
}

// Register implements Network: the user handler is invoked with
// unwrapped messages, exactly once each, in per-link send order.
func (s *Session) Register(id model.NodeID, h transport.Handler) {
	s.handlers[id] = h
	s.inner.Register(id, func(m transport.Message) { s.dispatch(id, m) })
}

// Start implements Network: starts the inner network and the
// retransmission scanner.
func (s *Session) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.inner.Start()
	s.wg.Add(1)
	go s.retransmitLoop()
}

// Close implements Network: stops retransmission, then closes the
// inner network.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.inner.Close()
}

// Send implements Network: the payload is enveloped with the link's
// next sequence number and tracked until acknowledged. Loopback sends
// bypass the session entirely (the fault layer never touches them).
func (s *Session) Send(m transport.Message) {
	if m.From == m.To {
		s.inner.Send(m)
		return
	}
	l := s.send[m.From][m.To]
	l.mu.Lock()
	l.nextSeq++
	seq := l.nextSeq
	env := transport.Message{From: m.From, To: m.To, Payload: DataMsg{Seq: seq, Payload: m.Payload}}
	l.unacked = append(l.unacked, pendingFrame{
		msg:        env,
		seq:        seq,
		backoff:    s.cfg.RetransmitInterval,
		nextResend: time.Now().Add(s.cfg.RetransmitInterval),
	})
	l.mu.Unlock()
	s.inner.Send(env)
}

// dispatch is the handler the Session registers with the inner
// network for node id.
func (s *Session) dispatch(id model.NodeID, m transport.Message) {
	switch p := m.Payload.(type) {
	case DataMsg:
		s.onData(id, m.From, p)
	case AckMsg:
		s.onAck(m.To, m.From, p.CumAck)
	default:
		// Loopback (or pre-wrap) traffic: hand through untouched.
		if h := s.handlers[id]; h != nil {
			h(m)
		}
	}
}

// onData handles one data frame on the link from → id: dedup, buffer,
// deliver in order, ack cumulatively.
func (s *Session) onData(id, from model.NodeID, d DataMsg) {
	rl := s.recv[id][from]
	s.recvMu[id].Lock()
	switch {
	case d.Seq < rl.nextExpected:
		// Already delivered: a duplicate (injected, or a retransmit
		// racing the ack). Discard and re-ack so the sender stops.
		s.dupDropped.Add(1)
	default:
		if _, held := rl.buffer[d.Seq]; held {
			s.dupDropped.Add(1)
			break
		}
		rl.buffer[d.Seq] = d.Payload
	}
	// Drain the in-order prefix.
	var deliver []any
	for {
		p, ok := rl.buffer[rl.nextExpected]
		if !ok {
			break
		}
		delete(rl.buffer, rl.nextExpected)
		rl.nextExpected++
		deliver = append(deliver, p)
	}
	ack := rl.nextExpected - 1
	s.recvMu[id].Unlock()

	// Deliver outside the lock: handlers may Send. The inner network
	// runs one delivery goroutine per node, so per-link order is
	// preserved without further locking.
	if h := s.handlers[id]; h != nil {
		for _, p := range deliver {
			h(transport.Message{From: from, To: id, Payload: p})
		}
	}
	// Cumulative ack (even for duplicates — the original ack may have
	// been lost). Acks are unsequenced; a lost ack is repaired by the
	// sender's retransmit provoking another one.
	s.inner.Send(transport.Message{From: id, To: from, Payload: AckMsg{CumAck: ack}})
}

// onAck handles a cumulative ack for the link id → from.
func (s *Session) onAck(id, from model.NodeID, cum uint64) {
	l := s.send[id][from]
	l.mu.Lock()
	i := 0
	for i < len(l.unacked) && l.unacked[i].seq <= cum {
		i++
	}
	if i > 0 {
		l.unacked = append(l.unacked[:0], l.unacked[i:]...)
	}
	l.mu.Unlock()
}

// retransmitLoop periodically re-sends overdue unacknowledged frames
// with capped exponential backoff.
func (s *Session) retransmitLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.retransmitOverdue(time.Now())
		}
	}
}

// retransmitOverdue re-sends every frame whose resend deadline has
// passed. Exposed to tests (deterministic retransmission without
// waiting out the ticker).
func (s *Session) retransmitOverdue(now time.Time) {
	for from := 0; from < s.n; from++ {
		for to := 0; to < s.n; to++ {
			l := s.send[from][to]
			l.mu.Lock()
			var resend []transport.Message
			for i := range l.unacked {
				f := &l.unacked[i]
				if now.Before(f.nextResend) {
					continue
				}
				f.backoff *= 2
				if f.backoff > s.cfg.MaxBackoff {
					f.backoff = s.cfg.MaxBackoff
				}
				f.nextResend = now.Add(f.backoff)
				resend = append(resend, f.msg)
			}
			l.mu.Unlock()
			for _, m := range resend {
				s.retransmits.Add(1)
				s.inner.Send(m)
			}
		}
	}
}

// Stats implements Network: the inner network's accounting plus the
// session layer's retransmit/duplicate counters.
func (s *Session) Stats() transport.Stats {
	st := s.inner.Stats()
	st.Retransmits += s.retransmits.Load()
	st.DupDropped += s.dupDropped.Load()
	return st
}

// InFlight returns the number of sent-but-unacknowledged frames across
// all links (diagnostics; 0 once the network has settled).
func (s *Session) InFlight() int {
	n := 0
	for from := 0; from < s.n; from++ {
		for to := 0; to < s.n; to++ {
			l := s.send[from][to]
			l.mu.Lock()
			n += len(l.unacked)
			l.mu.Unlock()
		}
	}
	return n
}

// Partition implements transport.FaultInjector by delegation; a no-op
// if the inner network does not inject faults.
func (s *Session) Partition(from, to model.NodeID) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.Partition(from, to)
	}
}

// Heal implements transport.FaultInjector by delegation.
func (s *Session) Heal() {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.Heal()
	}
}

// SetDropRate implements transport.FaultInjector by delegation.
func (s *Session) SetDropRate(rate float64) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.SetDropRate(rate)
	}
}

// SetDupRate implements transport.FaultInjector by delegation.
func (s *Session) SetDupRate(rate float64) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.SetDupRate(rate)
	}
}

var (
	_ transport.Network       = (*Session)(nil)
	_ transport.FaultInjector = (*Session)(nil)
)
