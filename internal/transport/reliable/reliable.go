// Package reliable restores the exactly-once, per-link-FIFO delivery
// contract the 3V protocol's counter scheme depends on, over a network
// that drops, duplicates, reorders and partitions messages.
//
// The paper (Section 4) silently assumes a reliable network: a sender
// increments R[v][p][q] strictly before a subtransaction leaves, and
// the receiver increments C[v][p][q] at termination, so quiescence
// (R == C everywhere) is reachable only if every message eventually
// arrives exactly once. Session is the classic fix — a sequence-number
// session layer (think TCP-lite) interposed as a Network decorator:
//
//   - every data message on a directed link (s → r) carries a sequence
//     number drawn from the link's counter;
//   - the receiver delivers strictly in sequence order, buffering
//     out-of-order arrivals and discarding duplicates;
//   - the receiver acknowledges cumulatively (highest in-order sequence
//     delivered); acks ride the same lossy network and may themselves
//     be lost;
//   - the sender retransmits unacknowledged frames on a timer with
//     capped exponential backoff, so a partition merely delays
//     delivery until heal.
//
// The protocol layers above see exactly the Network interface they
// always had — core is untouched except for construction-time wiring.
package reliable

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
)

// DataMsg is the session envelope for one application payload on a
// directed link. Seq starts at 1 and increments per link.
type DataMsg struct {
	Seq     uint64
	Payload any
}

// AckMsg is the receiver's cumulative acknowledgement for the reverse
// link: every data frame with Seq ≤ CumAck has been delivered.
type AckMsg struct {
	CumAck uint64
}

// NoopMsg is a hole-filling payload synthesized by crash recovery: a
// sequence number allocated with Prepare whose frame never became
// durable (the crash hit between Prepare and the execution record's
// barrier) would otherwise leave a permanent gap that wedges the
// receiver's in-order delivery. A noop frame consumes the sequence
// number at the receiver without ever reaching the application handler.
type NoopMsg struct{}

// Stable accounting names shared with internal/wire's codec registry so
// metrics labels agree across processes.
func init() {
	transport.RegisterPayloadName(DataMsg{}, "reliable_data")
	transport.RegisterPayloadName(AckMsg{}, "reliable_ack")
	transport.RegisterPayloadName(NoopMsg{}, "reliable_noop")
}

// Journal is the session layer's durability hook (implemented by
// internal/durable). A crash must never reuse a sequence number or
// re-deliver an acknowledged frame, so:
//
//   - NoteSend sees the enveloped frame strictly before it is handed to
//     the inner network and must not return until it is durable — the
//     sequence number is burned the moment this returns;
//   - NoteRecv sees a link's advanced in-order watermark strictly before
//     the cumulative ack leaves and must not return until it is durable
//     (together with whatever the delivery handler itself journaled);
//   - NoteAck is lazy bookkeeping with no durability barrier: frames
//     ≤ cum on the link are no longer needed for recovery.
type Journal interface {
	NoteSend(m transport.Message)
	NoteRecv(to, from model.NodeID, nextExpected uint64)
	NoteAck(from, to model.NodeID, cum uint64)
}

// LinkSendState is one directed link's sender-side durable state.
type LinkSendState struct {
	From, To model.NodeID
	NextSeq  uint64
	// Unacked holds the enveloped DataMsg frames still awaiting a
	// cumulative ack, ascending by sequence number. On restore they are
	// queued for immediate retransmission; receivers dedup by seq.
	Unacked []transport.Message
}

// LinkRecvState is one directed link's receiver-side durable state: the
// next in-order sequence number to deliver. Out-of-order buffered frames
// are deliberately not part of the state — they are still unacked at the
// sender and will be retransmitted.
type LinkRecvState struct {
	To, From     model.NodeID
	NextExpected uint64
}

// SessionState is a session's durable state, produced by ExportState
// under a checkpoint freeze and reinstalled via Config.Restore.
type SessionState struct {
	Send []LinkSendState
	Recv []LinkRecvState
}

// Config tunes the session layer. The zero value selects defaults
// sized for the in-process simulation's microsecond-scale latencies.
type Config struct {
	// RetransmitInterval is the initial retransmission timeout for an
	// unacknowledged frame; 0 means 2ms.
	RetransmitInterval time.Duration
	// MaxBackoff caps the per-frame exponential backoff; 0 means 50ms.
	MaxBackoff time.Duration
	// TickInterval spaces scans of the unacked frame lists; 0 means
	// RetransmitInterval/2.
	TickInterval time.Duration
	// FlushInterval, when positive, turns on frame batching: data frames
	// stage on a per-link outbox and leave as one transport.BatchMsg
	// envelope when the window expires (or the outbox hits MaxBatch), so
	// the inner network moves a whole flush per send. 0 disables
	// batching — every frame is transmitted individually, exactly the
	// pre-batching behaviour.
	FlushInterval time.Duration
	// AckDelay, when batching is on, is how long a receiver may owe a
	// cumulative ack before a standalone one is forced out; within the
	// window an owed ack piggybacks on the next data flush in the reverse
	// direction for free. It must stay well below RetransmitInterval or
	// delayed acks provoke spurious retransmits. 0 means FlushInterval.
	AckDelay time.Duration
	// MaxBatch caps frames per flush envelope; 0 means 256.
	MaxBatch int
	// Journal, when non-nil, receives the durability callbacks above.
	Journal Journal
	// Gate, when non-nil, brackets every inbound dispatch — watermark
	// advance, handler invocation, the NoteRecv barrier and the outgoing
	// ack run under one read-lock acquisition. The durability layer
	// installs its checkpoint freeze lock here so a checkpoint can never
	// capture a link watermark whose delivered frames have not yet
	// journaled their effects (which would make the sender's retransmit
	// a duplicate the restarted receiver silently drops).
	Gate interface {
		RLock()
		RUnlock()
	}
	// Restore, when non-nil, reinstalls a crashed session's link state
	// before any traffic flows.
	Restore *SessionState
	// Obs, when non-nil and tracing-enabled, receives the session-hold
	// stage for sampled frames: how long a frame waited in the reorder
	// buffer between arrival and in-order delivery. Unsampled traffic
	// never touches it.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 50 * time.Millisecond
	}
	if c.TickInterval <= 0 {
		c.TickInterval = c.RetransmitInterval / 2
	}
	if c.FlushInterval > 0 && c.AckDelay <= 0 {
		c.AckDelay = c.FlushInterval
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// pendingFrame is one sent-but-unacknowledged data frame.
type pendingFrame struct {
	msg        transport.Message // the enveloped message, ready to re-send
	seq        uint64
	backoff    time.Duration
	nextResend time.Time
}

// sendLink is the sender-side state of one directed link.
type sendLink struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []pendingFrame // ascending by seq
	// Batching state (FlushInterval > 0 only): frames staged for the
	// next flush, in send order, and whether a window timer is armed.
	outbox     []transport.Message
	flushArmed bool
}

// bufEntry is one received-but-undelivered frame: its payload, the
// trace context that rode its envelope, and (sampled frames only) its
// arrival time, so delivery can attribute the reorder hold.
type bufEntry struct {
	payload any
	tc      obs.TraceContext
	at      time.Time
}

// recvLink is the receiver-side state of one directed link.
type recvLink struct {
	nextExpected uint64              // next in-order seq to deliver
	buffer       map[uint64]bufEntry // out-of-order frames by seq
	// Delayed-ack state (FlushInterval > 0 only): whether a cumulative
	// ack is owed to the sender and whether the AckDelay timer that
	// bounds the debt is armed. The watermark itself (nextExpected) is
	// always current — delaying the ack never delays delivery, and
	// NoteRecv has already made the watermark durable, so a late ack is
	// merely a late release of the sender's retransmit state.
	ackOwed  bool
	ackArmed bool
}

// Session is the reliable-delivery decorator. It implements
// transport.Network; wrap the faulty inner network with Wrap before
// registering handlers.
type Session struct {
	inner transport.Network
	cfg   Config
	n     int

	handlers []transport.Handler
	send     [][]*sendLink // [from][to]
	recvMu   []sync.Mutex  // per receiving node (delivery is serial per node already; the mutex guards cross-field invariants for Stats readers)
	recv     [][]*recvLink // [to][from]

	retransmits atomic.Int64
	dupDropped  atomic.Int64
	// unackedTotal counts sent-but-unacknowledged frames across all
	// links, maintained next to each link's list mutation. The
	// retransmit scanner consults it first: when every frame is acked
	// (the common idle state) the tick returns without touching any of
	// the n² link locks.
	unackedTotal atomic.Int64
	// flushes counts link flush envelopes (batching only).
	flushes atomic.Int64

	batching bool // cfg.FlushInterval > 0

	mu      sync.Mutex
	started bool
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
	timers  sync.WaitGroup // in-flight flush/ack window timers
}

// Wrap decorates inner (serving node ids 0..nodes-1) with the session
// layer. The Session owns inner: closing the Session closes it.
func Wrap(inner transport.Network, nodes int, cfg Config) *Session {
	if nodes <= 0 {
		panic("reliable: nodes must be positive")
	}
	s := &Session{
		inner:    inner,
		cfg:      cfg.withDefaults(),
		batching: cfg.FlushInterval > 0,
		n:        nodes,
		handlers: make([]transport.Handler, nodes),
		send:     make([][]*sendLink, nodes),
		recvMu:   make([]sync.Mutex, nodes),
		recv:     make([][]*recvLink, nodes),
		stop:     make(chan struct{}),
	}
	for i := 0; i < nodes; i++ {
		s.send[i] = make([]*sendLink, nodes)
		s.recv[i] = make([]*recvLink, nodes)
		for j := 0; j < nodes; j++ {
			s.send[i][j] = &sendLink{}
			s.recv[i][j] = &recvLink{nextExpected: 1, buffer: make(map[uint64]bufEntry)}
		}
	}
	if st := s.cfg.Restore; st != nil {
		for _, ls := range st.Send {
			l := s.send[ls.From][ls.To]
			l.nextSeq = ls.NextSeq
			for _, m := range ls.Unacked {
				d, ok := m.Payload.(DataMsg)
				if !ok {
					continue
				}
				l.unacked = append(l.unacked, pendingFrame{
					msg:     m,
					seq:     d.Seq,
					backoff: s.cfg.RetransmitInterval,
					// Zero nextResend: overdue immediately, so the first
					// retransmit sweep re-offers every restored frame and
					// the peers' dedup absorbs what they already saw.
				})
				s.unackedTotal.Add(1)
			}
		}
		for _, lr := range st.Recv {
			s.recv[lr.To][lr.From].nextExpected = lr.NextExpected
		}
	}
	return s
}

// ExportState captures every link's durable state. Callers must quiesce
// the session first (the checkpoint freeze does): a send racing the
// export could otherwise straddle the snapshot.
func (s *Session) ExportState() *SessionState {
	st := &SessionState{}
	for from := 0; from < s.n; from++ {
		for to := 0; to < s.n; to++ {
			l := s.send[from][to]
			l.mu.Lock()
			if l.nextSeq > 0 || len(l.unacked) > 0 {
				ls := LinkSendState{From: model.NodeID(from), To: model.NodeID(to), NextSeq: l.nextSeq}
				for _, f := range l.unacked {
					ls.Unacked = append(ls.Unacked, f.msg)
				}
				st.Send = append(st.Send, ls)
			}
			l.mu.Unlock()
		}
	}
	for to := 0; to < s.n; to++ {
		s.recvMu[to].Lock()
		for from := 0; from < s.n; from++ {
			if rl := s.recv[to][from]; rl.nextExpected > 1 {
				st.Recv = append(st.Recv, LinkRecvState{To: model.NodeID(to), From: model.NodeID(from), NextExpected: rl.nextExpected})
			}
		}
		s.recvMu[to].Unlock()
	}
	return st
}

// Register implements Network: the user handler is invoked with
// unwrapped messages, exactly once each, in per-link send order.
func (s *Session) Register(id model.NodeID, h transport.Handler) {
	s.handlers[id] = h
	s.inner.Register(id, func(m transport.Message) { s.dispatch(id, m) })
}

// Start implements Network: starts the inner network and the
// retransmission scanner.
func (s *Session) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.inner.Start()
	s.wg.Add(1)
	go s.retransmitLoop()
}

// Close implements Network: stops retransmission, drains any staged
// flushes and owed acks, then closes the inner network.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	if s.batching {
		// Final sweep: emit every staged outbox (and piggybacked acks)
		// before the inner network's gate drops, then wait out armed
		// window timers — they re-run flushLink/flushAck, find nothing,
		// and exit, so no timer can touch a closed inner network.
		for from := 0; from < s.n; from++ {
			for to := 0; to < s.n; to++ {
				s.flushLink(model.NodeID(from), model.NodeID(to))
			}
		}
		for id := 0; id < s.n; id++ {
			for from := 0; from < s.n; from++ {
				s.flushAck(model.NodeID(id), model.NodeID(from))
			}
		}
		s.timers.Wait()
	}
	s.inner.Close()
}

// Send implements Network: the payload is enveloped with the link's
// next sequence number and tracked until acknowledged. Loopback sends
// bypass the session entirely (the fault layer never touches them).
func (s *Session) Send(m transport.Message) {
	if m.From == m.To {
		s.inner.Send(m)
		return
	}
	l := s.send[m.From][m.To]
	l.mu.Lock()
	l.nextSeq++
	seq := l.nextSeq
	env := transport.Message{From: m.From, To: m.To, Payload: DataMsg{Seq: seq, Payload: m.Payload}, TC: m.TC}
	l.unacked = append(l.unacked, pendingFrame{
		msg:        env,
		seq:        seq,
		backoff:    s.cfg.RetransmitInterval,
		nextResend: time.Now().Add(s.cfg.RetransmitInterval),
	})
	s.unackedTotal.Add(1)
	l.mu.Unlock()
	if s.cfg.Journal != nil {
		// Durable before first transmission: a crash after the frame is
		// on the wire must find it in the log, or recovery would reuse
		// the sequence number for a different payload.
		s.cfg.Journal.NoteSend(env)
	}
	if s.batching {
		s.stage(env)
		return
	}
	s.inner.Send(env)
}

// stage parks an enveloped frame on its link's outbox; the first frame
// arms the flush window, a full outbox flushes immediately. The frame
// is already tracked in unacked (and journaled), so a crash or drop
// between staging and flush is repaired by retransmission like any
// other loss.
func (s *Session) stage(env transport.Message) {
	l := s.send[env.From][env.To]
	l.mu.Lock()
	l.outbox = append(l.outbox, env)
	if len(l.outbox) >= s.cfg.MaxBatch {
		msgs := l.outbox
		l.outbox = nil
		l.mu.Unlock()
		s.emit(env.From, env.To, msgs)
		return
	}
	if !l.flushArmed {
		l.flushArmed = true
		from, to := env.From, env.To
		s.timers.Add(1)
		time.AfterFunc(s.cfg.FlushInterval, func() {
			defer s.timers.Done()
			s.flushLink(from, to)
		})
	}
	l.mu.Unlock()
}

// flushLink drains one link's outbox (window expiry, or the final
// sweep in Close) and emits the flush.
func (s *Session) flushLink(from, to model.NodeID) {
	l := s.send[from][to]
	l.mu.Lock()
	msgs := l.outbox
	l.outbox = nil
	l.flushArmed = false
	l.mu.Unlock()
	s.emit(from, to, msgs)
}

// emit sends one flush on the link from → to: the staged frames plus,
// piggybacked for free, any cumulative ack this node owes the peer for
// the reverse direction. A single frame leaves unwrapped; two or more
// leave as one BatchMsg envelope, which the inner network moves as a
// unit (one syscall, one fault draw) and unpacks in order on delivery,
// preserving per-link FIFO.
func (s *Session) emit(from, to model.NodeID, msgs []transport.Message) {
	rl := s.recv[from][to]
	s.recvMu[from].Lock()
	if rl.ackOwed {
		rl.ackOwed = false
		msgs = append(msgs, transport.Message{From: from, To: to, Payload: AckMsg{CumAck: rl.nextExpected - 1}})
	}
	s.recvMu[from].Unlock()
	switch len(msgs) {
	case 0:
		return
	case 1:
		s.flushes.Add(1)
		s.inner.Send(msgs[0])
	default:
		s.flushes.Add(1)
		s.inner.Send(transport.Message{From: from, To: to, Payload: transport.BatchMsg{Msgs: msgs}})
	}
}

// flushAck forces out a standalone cumulative ack when the AckDelay
// window expires with the debt still unpaid (no reverse data flush
// absorbed it) — the guarantee that delayed acks never starve a sender
// into retransmitting.
func (s *Session) flushAck(id, from model.NodeID) {
	rl := s.recv[id][from]
	s.recvMu[id].Lock()
	rl.ackArmed = false
	if !rl.ackOwed {
		s.recvMu[id].Unlock()
		return
	}
	rl.ackOwed = false
	ack := rl.nextExpected - 1
	s.recvMu[id].Unlock()
	s.inner.Send(transport.Message{From: id, To: from, Payload: AckMsg{CumAck: ack}})
}

// PreparedSend is a sequence-numbered frame that has not yet been
// transmitted or tracked — the two-phase send used by the execution
// path: core allocates children's frames with Prepare, journals them
// atomically inside the execution record, then releases them with
// CommitPrepared. A crash between the two phases re-creates the frames
// from the log; peers dedup by sequence number either way.
type PreparedSend struct {
	// Msg is the enveloped frame (DataMsg payload), ready to encode
	// into the journal or hand to CommitPrepared.
	Msg      transport.Message
	loopback bool
}

// Prepare allocates the link's next sequence number for m without
// sending or tracking it. Loopback messages pass through unsequenced.
func (s *Session) Prepare(m transport.Message) PreparedSend {
	if m.From == m.To {
		return PreparedSend{Msg: m, loopback: true}
	}
	l := s.send[m.From][m.To]
	l.mu.Lock()
	l.nextSeq++
	env := transport.Message{From: m.From, To: m.To, Payload: DataMsg{Seq: l.nextSeq, Payload: m.Payload}, TC: m.TC}
	l.mu.Unlock()
	return PreparedSend{Msg: env}
}

// CommitPrepared tracks and transmits previously Prepared frames, in
// order. The caller has already journaled them (or does not journal).
func (s *Session) CommitPrepared(frames []PreparedSend) {
	now := time.Now()
	for _, p := range frames {
		if p.loopback {
			s.inner.Send(p.Msg)
			continue
		}
		d := p.Msg.Payload.(DataMsg)
		l := s.send[p.Msg.From][p.Msg.To]
		l.mu.Lock()
		l.unacked = append(l.unacked, pendingFrame{
			msg:        p.Msg,
			seq:        d.Seq,
			backoff:    s.cfg.RetransmitInterval,
			nextResend: now.Add(s.cfg.RetransmitInterval),
		})
		// Keep the list ascending: a concurrent Send on the same link
		// may have appended a later sequence number first.
		for i := len(l.unacked) - 1; i > 0 && l.unacked[i].seq < l.unacked[i-1].seq; i-- {
			l.unacked[i], l.unacked[i-1] = l.unacked[i-1], l.unacked[i]
		}
		s.unackedTotal.Add(1)
		l.mu.Unlock()
		if s.batching {
			s.stage(p.Msg)
			continue
		}
		s.inner.Send(p.Msg)
	}
}

// dispatch is the handler the Session registers with the inner
// network for node id.
func (s *Session) dispatch(id model.NodeID, m transport.Message) {
	if g := s.cfg.Gate; g != nil {
		g.RLock()
		defer g.RUnlock()
	}
	if b, ok := m.Payload.(transport.BatchMsg); ok {
		// Defensive unpacking for transports that deliver flush envelopes
		// whole (the in-process Net and tcpnet both unpack before the
		// handler, so this path is a safety net). Members process in
		// order under the same gate acquisition.
		for _, mm := range b.Msgs {
			s.dispatchOne(id, mm)
		}
		return
	}
	s.dispatchOne(id, m)
}

func (s *Session) dispatchOne(id model.NodeID, m transport.Message) {
	switch p := m.Payload.(type) {
	case DataMsg:
		s.onData(id, m.From, p, m.TC)
	case AckMsg:
		s.onAck(m.To, m.From, p.CumAck)
	default:
		// Loopback (or pre-wrap) traffic: hand through untouched.
		if h := s.handlers[id]; h != nil {
			h(m)
		}
	}
}

// onData handles one data frame on the link from → id: dedup, buffer,
// deliver in order, ack cumulatively.
func (s *Session) onData(id, from model.NodeID, d DataMsg, tc obs.TraceContext) {
	rl := s.recv[id][from]
	s.recvMu[id].Lock()
	switch {
	case d.Seq < rl.nextExpected:
		// Already delivered: a duplicate (injected, or a retransmit
		// racing the ack). Discard and re-ack so the sender stops.
		s.dupDropped.Add(1)
	default:
		if _, held := rl.buffer[d.Seq]; held {
			s.dupDropped.Add(1)
			break
		}
		e := bufEntry{payload: d.Payload, tc: tc}
		if tc.Sampled() && s.cfg.Obs.TraceEnabled() {
			// Arrival stamp for sampled frames only, so the untraced hot
			// path never reads the clock here.
			e.at = time.Now()
		}
		rl.buffer[d.Seq] = e
	}
	// Drain the in-order prefix.
	var deliver []bufEntry
	for {
		e, ok := rl.buffer[rl.nextExpected]
		if !ok {
			break
		}
		delete(rl.buffer, rl.nextExpected)
		rl.nextExpected++
		deliver = append(deliver, e)
	}
	ack := rl.nextExpected - 1
	s.recvMu[id].Unlock()

	// Deliver outside the lock: handlers may Send. The inner network
	// runs one delivery goroutine per node, so per-link order is
	// preserved without further locking.
	if h := s.handlers[id]; h != nil {
		for _, e := range deliver {
			if _, hole := e.payload.(NoopMsg); hole {
				continue // recovery hole-filler: consume the seq, deliver nothing
			}
			if !e.at.IsZero() {
				// How long the frame sat in the reorder buffer (≈0 for
				// in-order arrivals, the hold time for gap-filled ones).
				s.cfg.Obs.ObserveStage(obs.StageSession, time.Since(e.at))
			}
			h(transport.Message{From: from, To: id, Payload: e.payload, TC: e.tc})
		}
	}
	// Cumulative ack (even for duplicates — the original ack may have
	// been lost). Acks are unsequenced; a lost ack is repaired by the
	// sender's retransmit provoking another one.
	if s.cfg.Journal != nil && len(deliver) > 0 {
		// The watermark (and whatever the handlers above journaled for
		// the delivered frames) must be durable before the ack releases
		// the sender's retransmissions — an acked frame will never be
		// offered again, so it must never be forgotten.
		s.cfg.Journal.NoteRecv(id, from, ack+1)
	}
	if !s.batching {
		s.inner.Send(transport.Message{From: id, To: from, Payload: AckMsg{CumAck: ack}})
		return
	}
	// Delayed ack: record the debt and bound it with the AckDelay timer.
	// The next data flush toward the sender pays it for free (see emit);
	// otherwise the timer forces a standalone ack, so a sender is never
	// starved into retransmitting by ack batching alone. Deferring is
	// safe: NoteRecv above already made the watermark durable, and an
	// unacked frame is merely re-offered, never lost.
	s.recvMu[id].Lock()
	rl.ackOwed = true
	if !rl.ackArmed {
		rl.ackArmed = true
		s.timers.Add(1)
		time.AfterFunc(s.cfg.AckDelay, func() {
			defer s.timers.Done()
			s.flushAck(id, from)
		})
	}
	s.recvMu[id].Unlock()
}

// onAck handles a cumulative ack for the link id → from.
func (s *Session) onAck(id, from model.NodeID, cum uint64) {
	l := s.send[id][from]
	l.mu.Lock()
	i := 0
	for i < len(l.unacked) && l.unacked[i].seq <= cum {
		i++
	}
	if i > 0 {
		l.unacked = append(l.unacked[:0], l.unacked[i:]...)
		s.unackedTotal.Add(-int64(i))
	}
	l.mu.Unlock()
	if s.cfg.Journal != nil && i > 0 {
		s.cfg.Journal.NoteAck(id, from, cum)
	}
}

// retransmitLoop periodically re-sends overdue unacknowledged frames
// with capped exponential backoff.
func (s *Session) retransmitLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.retransmitOverdue(time.Now())
		}
	}
}

// retransmitOverdue re-sends every frame whose resend deadline has
// passed. Exposed to tests (deterministic retransmission without
// waiting out the ticker). The idle guard makes the steady state —
// every frame acked — free: one atomic load per tick instead of an n²
// sweep over every link's mutex (see BenchmarkRetransmitScanIdle).
func (s *Session) retransmitOverdue(now time.Time) {
	if s.unackedTotal.Load() == 0 {
		return
	}
	s.scanOverdue(now)
}

// scanOverdue is the full sweep behind retransmitOverdue's idle guard.
func (s *Session) scanOverdue(now time.Time) {
	for from := 0; from < s.n; from++ {
		for to := 0; to < s.n; to++ {
			l := s.send[from][to]
			l.mu.Lock()
			var resend []transport.Message
			for i := range l.unacked {
				f := &l.unacked[i]
				if now.Before(f.nextResend) {
					continue
				}
				f.backoff *= 2
				if f.backoff > s.cfg.MaxBackoff {
					f.backoff = s.cfg.MaxBackoff
				}
				f.nextResend = now.Add(f.backoff)
				resend = append(resend, f.msg)
			}
			l.mu.Unlock()
			if len(resend) == 0 {
				continue
			}
			s.retransmits.Add(int64(len(resend)))
			if s.batching && len(resend) > 1 {
				// Re-batch the link's overdue frames into one envelope:
				// frames that travelled together retransmit together, as
				// one unit on the wire, still ascending by seq.
				s.inner.Send(transport.Message{From: model.NodeID(from), To: model.NodeID(to), Payload: transport.BatchMsg{Msgs: resend}})
				continue
			}
			for _, m := range resend {
				s.inner.Send(m)
			}
		}
	}
}

// Stats implements Network: the inner network's accounting plus the
// session layer's retransmit/duplicate counters.
func (s *Session) Stats() transport.Stats {
	st := s.inner.Stats()
	st.Retransmits += s.retransmits.Load()
	st.DupDropped += s.dupDropped.Load()
	st.Flushes += s.flushes.Load()
	return st
}

// InFlight returns the number of sent-but-unacknowledged frames across
// all links (diagnostics; 0 once the network has settled).
func (s *Session) InFlight() int {
	n := 0
	for from := 0; from < s.n; from++ {
		for to := 0; to < s.n; to++ {
			l := s.send[from][to]
			l.mu.Lock()
			n += len(l.unacked)
			l.mu.Unlock()
		}
	}
	return n
}

// Partition implements transport.FaultInjector by delegation; a no-op
// if the inner network does not inject faults.
func (s *Session) Partition(from, to model.NodeID) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.Partition(from, to)
	}
}

// Heal implements transport.FaultInjector by delegation.
func (s *Session) Heal() {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.Heal()
	}
}

// SetDropRate implements transport.FaultInjector by delegation.
func (s *Session) SetDropRate(rate float64) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.SetDropRate(rate)
	}
}

// SetDupRate implements transport.FaultInjector by delegation.
func (s *Session) SetDupRate(rate float64) {
	if fi, ok := s.inner.(transport.FaultInjector); ok {
		fi.SetDupRate(rate)
	}
}

var (
	_ transport.Network       = (*Session)(nil)
	_ transport.FaultInjector = (*Session)(nil)
)
