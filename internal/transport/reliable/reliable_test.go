package reliable

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// pair builds a started 2-node Session over a live Net with the given
// faults. Node 1's deliveries are recorded in order.
func pair(t *testing.T, f transport.Faults) (*Session, func() []any) {
	t.Helper()
	inner := transport.NewNet(transport.Config{Nodes: 2, Seed: 11, Faults: f})
	s := Wrap(inner, 2, Config{RetransmitInterval: time.Millisecond})
	var mu sync.Mutex
	var got []any
	s.Register(0, func(transport.Message) {})
	s.Register(1, func(m transport.Message) {
		mu.Lock()
		got = append(got, m.Payload)
		mu.Unlock()
	})
	s.Start()
	t.Cleanup(s.Close)
	return s, func() []any {
		mu.Lock()
		defer mu.Unlock()
		return append([]any(nil), got...)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRetransmitRepairsDrop(t *testing.T) {
	s, got := pair(t, transport.Faults{})
	// Drop the first transmission deterministically, then let the
	// retransmission timer repair it.
	s.SetDropRate(1)
	s.Send(transport.Message{From: 0, To: 1, Payload: "once"})
	s.SetDropRate(0)
	waitFor(t, func() bool { return len(got()) == 1 }, "retransmitted delivery")
	st := s.Stats()
	if st.Retransmits == 0 {
		t.Fatal("expected at least one retransmission")
	}
	if st.Dropped == 0 {
		t.Fatal("expected the inner network to count the drop")
	}
	waitFor(t, func() bool { return s.InFlight() == 0 }, "ack to clear the frame")
}

func TestDedupAfterDuplicate(t *testing.T) {
	s, got := pair(t, transport.Faults{Default: transport.LinkFaults{DupRate: 1}})
	for i := 0; i < 20; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
	}
	waitFor(t, func() bool { return len(got()) == 20 }, "exactly-once delivery")
	// Give the duplicate copies time to arrive and be discarded.
	waitFor(t, func() bool { return s.Stats().DupDropped > 0 }, "duplicate discard accounting")
	time.Sleep(20 * time.Millisecond)
	if n := len(got()); n != 20 {
		t.Fatalf("delivered %d messages, want exactly 20", n)
	}
	for i, p := range got() {
		if p != i {
			t.Fatalf("delivery %d = %v, want %d (per-link FIFO)", i, p, i)
		}
	}
}

func TestFIFOUnderReorderingJitter(t *testing.T) {
	inner := transport.NewNet(transport.Config{Nodes: 2, Seed: 3, Jitter: 500 * time.Microsecond})
	s := Wrap(inner, 2, Config{})
	var mu sync.Mutex
	var got []any
	s.Register(0, func(transport.Message) {})
	s.Register(1, func(m transport.Message) { mu.Lock(); got = append(got, m.Payload); mu.Unlock() })
	s.Start()
	defer s.Close()
	const n = 200
	for i := 0; i < n; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == n }, "all deliveries")
	mu.Lock()
	defer mu.Unlock()
	for i, p := range got {
		if p != i {
			t.Fatalf("delivery %d = %v: jitter reordering leaked through the session layer", i, p)
		}
	}
}

func TestPartitionHealConvergence(t *testing.T) {
	s, got := pair(t, transport.Faults{})
	s.Partition(0, 1)
	s.Partition(1, 0)
	const n = 10
	for i := 0; i < n; i++ {
		s.Send(transport.Message{From: 0, To: 1, Payload: i})
	}
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatalf("delivered %d messages through an active partition", len(got()))
	}
	s.Heal()
	waitFor(t, func() bool { return len(got()) == n }, "post-heal delivery")
	for i, p := range got() {
		if p != i {
			t.Fatalf("delivery %d = %v, want %d", i, p, i)
		}
	}
	waitFor(t, func() bool { return s.InFlight() == 0 }, "unacked frames to drain")
}

func TestBackoffCapsAndRetransmitOverdue(t *testing.T) {
	inner := transport.NewNet(transport.Config{Nodes: 2, Seed: 5})
	s := Wrap(inner, 2, Config{RetransmitInterval: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	s.Register(0, func(transport.Message) {})
	s.Register(1, func(transport.Message) {})
	// Not started: no retransmit loop, no inner delivery — frames just
	// accumulate, making the backoff arithmetic directly observable.
	s.Partition(0, 1)
	s.Send(transport.Message{From: 0, To: 1, Payload: "x"})
	l := s.send[0][1]
	now := time.Now()
	for i := 0; i < 5; i++ {
		now = now.Add(time.Hour) // always overdue
		s.retransmitOverdue(now)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.unacked) != 1 {
		t.Fatalf("unacked = %d, want 1", len(l.unacked))
	}
	if b := l.unacked[0].backoff; b != 4*time.Millisecond {
		t.Fatalf("backoff = %v, want capped at 4ms", b)
	}
	if s.Stats().Retransmits != 5 {
		t.Fatalf("Retransmits = %d, want 5", s.Stats().Retransmits)
	}
	inner.Close()
}

func TestLoopbackBypassesSession(t *testing.T) {
	inner := transport.NewNet(transport.Config{Nodes: 2, Seed: 13})
	s := Wrap(inner, 2, Config{})
	var mu sync.Mutex
	var self []any
	s.Register(0, func(m transport.Message) { mu.Lock(); self = append(self, m.Payload); mu.Unlock() })
	s.Register(1, func(transport.Message) {})
	s.Start()
	t.Cleanup(s.Close)
	s.Send(transport.Message{From: 0, To: 0, Payload: "me"})
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(self) == 1 }, "loopback delivery")
	if s.InFlight() != 0 {
		t.Fatal("loopback send must not be tracked for retransmission")
	}
	mu.Lock()
	defer mu.Unlock()
	if self[0] != "me" {
		t.Fatalf("loopback payload = %v, want unwrapped \"me\"", self[0])
	}
}
