package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// countingNet builds a started 2-node Net with the given faults; each
// node's handler counts deliveries.
func countingNet(t *testing.T, f Faults) (*Net, *[2]atomic.Int64) {
	t.Helper()
	n := NewNet(Config{Nodes: 2, Seed: 7, Faults: f})
	var got [2]atomic.Int64
	for i := 0; i < 2; i++ {
		i := i
		n.Register(model.NodeID(i), func(Message) { got[i].Add(1) })
	}
	n.Start()
	t.Cleanup(n.Close)
	return n, &got
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFaultsDropAll(t *testing.T) {
	n, got := countingNet(t, Faults{Default: LinkFaults{DropRate: 1}})
	for i := 0; i < 10; i++ {
		n.Send(Message{From: 0, To: 1, Payload: "x"})
	}
	// Loopback is exempt from fault injection.
	n.Send(Message{From: 1, To: 1, Payload: "self"})
	waitFor(t, func() bool { return got[1].Load() == 1 }, "loopback delivery")
	s := n.Stats()
	if s.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", s.Dropped)
	}
	if got[1].Load() != 1 {
		t.Fatalf("node 1 got %d messages, want only the loopback", got[1].Load())
	}
}

func TestFaultsDuplicateAll(t *testing.T) {
	n, got := countingNet(t, Faults{Default: LinkFaults{DupRate: 1}})
	for i := 0; i < 5; i++ {
		n.Send(Message{From: 0, To: 1, Payload: i})
	}
	waitFor(t, func() bool { return got[1].Load() == 10 }, "duplicated deliveries")
	if s := n.Stats(); s.Duplicated != 5 {
		t.Fatalf("Duplicated = %d, want 5", s.Duplicated)
	}
}

func TestPartitionThenHeal(t *testing.T) {
	n, got := countingNet(t, Faults{})
	n.Partition(0, 1)
	n.Send(Message{From: 0, To: 1, Payload: "lost"})
	// The reverse direction is untouched (one-way partition).
	n.Send(Message{From: 1, To: 0, Payload: "ok"})
	waitFor(t, func() bool { return got[0].Load() == 1 }, "reverse-direction delivery")
	if s := n.Stats(); s.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", s.PartitionDrops)
	}
	n.Heal()
	n.Send(Message{From: 0, To: 1, Payload: "after-heal"})
	waitFor(t, func() bool { return got[1].Load() == 1 }, "post-heal delivery")
}

func TestSetRatesAtRuntime(t *testing.T) {
	n, got := countingNet(t, Faults{})
	n.SetDropRate(1)
	n.Send(Message{From: 0, To: 1, Payload: "x"})
	n.SetDropRate(0)
	n.Send(Message{From: 0, To: 1, Payload: "y"})
	waitFor(t, func() bool { return got[1].Load() == 1 }, "post-reset delivery")
	if s := n.Stats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestLinkFaultOverride(t *testing.T) {
	f := Faults{
		Default: LinkFaults{},
		Links:   map[Link]LinkFaults{{From: 0, To: 1}: {DropRate: 1}},
	}
	n, got := countingNet(t, f)
	n.Send(Message{From: 0, To: 1, Payload: "dropped"})
	n.Send(Message{From: 1, To: 0, Payload: "fine"})
	waitFor(t, func() bool { return got[0].Load() == 1 }, "unfaulted link delivery")
	if got[1].Load() != 0 {
		t.Fatalf("overridden link delivered %d messages, want 0", got[1].Load())
	}
}

func TestSeededFaultsAreDeterministic(t *testing.T) {
	run := func() (dropped int64) {
		n := NewNet(Config{Nodes: 2, Seed: 99, Faults: Faults{Default: LinkFaults{DropRate: 0.5}}})
		n.Register(0, func(Message) {})
		n.Register(1, func(Message) {})
		n.Start()
		defer n.Close()
		for i := 0; i < 200; i++ {
			n.Send(Message{From: 0, To: 1, Payload: i})
		}
		return n.Stats().Dropped
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different drop counts: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("drop count %d not in the open interval (0, 200)", a)
	}
}

func TestCloseDroppedCounted(t *testing.T) {
	n := NewNet(Config{Nodes: 2, Seed: 1})
	n.Register(0, func(Message) {})
	n.Register(1, func(Message) {})
	n.Start()
	n.Close()
	n.Send(Message{From: 0, To: 1, Payload: "late"})
	if s := n.Stats(); s.CloseDropped != 1 {
		t.Fatalf("CloseDropped = %d, want 1", s.CloseDropped)
	}
}

func TestScriptDropAndDuplicate(t *testing.T) {
	s := NewScript(2)
	var got []any
	s.Register(0, func(Message) {})
	s.Register(1, func(m Message) { got = append(got, m.Payload) })
	s.Start()
	s.Send(Message{From: 0, To: 1, Payload: "a"})
	s.Send(Message{From: 0, To: 1, Payload: "b"})

	if !s.DropWhere(func(m Message) bool { return m.Payload == "a" }) {
		t.Fatal("DropWhere found no match")
	}
	if !s.DuplicateWhere(func(m Message) bool { return m.Payload == "b" }) {
		t.Fatal("DuplicateWhere found no match")
	}
	if !s.DuplicateIndex(0) {
		t.Fatal("DuplicateIndex out of range")
	}
	s.DeliverAll()

	// "a" dropped; "b" delivered three times (original + two clones).
	if len(got) != 3 {
		t.Fatalf("delivered %v, want three copies of b", got)
	}
	for _, p := range got {
		if p != "b" {
			t.Fatalf("delivered %v, want only b", got)
		}
	}
	st := s.Stats()
	if st.Dropped != 1 || st.Duplicated != 2 {
		t.Fatalf("Stats dropped/duplicated = %d/%d, want 1/2", st.Dropped, st.Duplicated)
	}
}
