package transport

import (
	"sync"
	"time"

	"repro/internal/model"
)

// This file is the fault layer of the live network. The paper assumes a
// reliable network — every subtransaction, advancement notice and
// counter snapshot arrives exactly once — and the counter-based
// quiescence condition R[v][p][q] == C[v][p][q] is unsound without that
// assumption: a single lost SubtxnMsg leaves R permanently ahead of C
// and wedges advancement forever. To exercise (and discharge, via the
// reliable session layer in transport/reliable) that assumption, Net
// can drop, duplicate, delay and partition messages per directed link,
// deterministically under a seed.
//
// Loopback sends (From == To) are never faulted: they model a node
// talking to itself and do not traverse the network.

// Link is one directed sender→receiver pair.
type Link struct {
	From, To model.NodeID
}

// LinkFaults are the fault rates applied to one directed link.
type LinkFaults struct {
	// DropRate is the probability in [0,1] that a message is silently
	// discarded.
	DropRate float64
	// DupRate is the probability in [0,1] that a message is delivered
	// twice (each copy with an independently drawn delay).
	DupRate float64
	// ExtraDelay is added to the link's one-way latency on every
	// message.
	ExtraDelay time.Duration
}

// zero reports whether the link injects no faults at all.
func (f LinkFaults) zero() bool {
	return f.DropRate == 0 && f.DupRate == 0 && f.ExtraDelay == 0
}

// Faults configures fault injection for a live Net. The zero value
// injects nothing.
type Faults struct {
	// Default applies to every directed link without an override.
	Default LinkFaults
	// Links overrides Default for specific directed links.
	Links map[Link]LinkFaults
}

// forLink resolves the effective fault rates for one directed link.
func (f Faults) forLink(l Link) LinkFaults {
	if lf, ok := f.Links[l]; ok {
		return lf
	}
	return f.Default
}

// FaultInjector is implemented by networks that support runtime fault
// control — the live Net directly, and the reliable session layer by
// delegation. The chaos harness programs against this interface.
type FaultInjector interface {
	// Partition blackholes the directed link from→to until Heal. Cut
	// both directions for a full partition.
	Partition(from, to model.NodeID)
	// Heal removes every active partition.
	Heal()
	// SetDropRate replaces the default per-message drop probability.
	SetDropRate(rate float64)
	// SetDupRate replaces the default per-message duplication
	// probability.
	SetDupRate(rate float64)
}

// faultState is the mutable fault configuration of a Net, guarded by
// its own mutex so fault decisions never contend with delivery.
type faultState struct {
	mu         sync.Mutex
	faults     Faults
	partitions map[Link]bool
}

// decide draws the fate of one message: whether it is dropped (by
// partition or loss), duplicated, and how much extra delay it carries.
// rnd supplies the randomness (called 0, 1 or 2 times); it is the
// caller's seeded source so runs stay reproducible.
func (fs *faultState) decide(l Link, rnd func() float64) (drop, partitioned, dup bool, extra time.Duration) {
	if l.From == l.To {
		return false, false, false, 0
	}
	fs.mu.Lock()
	part := fs.partitions[l]
	lf := fs.faults.forLink(l)
	fs.mu.Unlock()
	if part {
		return true, true, false, 0
	}
	if lf.zero() {
		return false, false, false, 0
	}
	if lf.DropRate > 0 && rnd() < lf.DropRate {
		return true, false, false, 0
	}
	if lf.DupRate > 0 && rnd() < lf.DupRate {
		dup = true
	}
	return false, false, dup, lf.ExtraDelay
}

// Partition implements FaultInjector: messages on the directed link
// from→to are blackholed (counted in Stats.PartitionDrops) until Heal.
func (n *Net) Partition(from, to model.NodeID) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.fs.partitions == nil {
		n.fs.partitions = make(map[Link]bool)
	}
	n.fs.partitions[Link{From: from, To: to}] = true
}

// Heal implements FaultInjector: every active partition is removed.
// Drop/duplication rates are untouched.
func (n *Net) Heal() {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	n.fs.partitions = nil
}

// SetDropRate implements FaultInjector, replacing the default link's
// drop probability at runtime. Per-link overrides are untouched.
func (n *Net) SetDropRate(rate float64) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	n.fs.faults.Default.DropRate = rate
}

// SetDupRate implements FaultInjector, replacing the default link's
// duplication probability at runtime.
func (n *Net) SetDupRate(rate float64) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	n.fs.faults.Default.DupRate = rate
}

// SetLinkFaults installs a per-link override at runtime.
func (n *Net) SetLinkFaults(l Link, lf LinkFaults) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.fs.faults.Links == nil {
		n.fs.faults.Links = make(map[Link]LinkFaults)
	}
	n.fs.faults.Links[l] = lf
}

var _ FaultInjector = (*Net)(nil)
