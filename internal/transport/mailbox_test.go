package transport

import "testing"

// TestMailboxSteadyStateCapacityBounded is the regression test for the
// slice-shift retention bug (mb.queue = mb.queue[1:] kept the backing
// array alive and growing under sustained load): after moving far more
// messages through a mailbox than its backlog ever holds, the ring
// capacity must be bounded by the backlog high-water mark, not by
// cumulative throughput.
func TestMailboxSteadyStateCapacityBounded(t *testing.T) {
	mb := newMailbox()
	const depth = 50
	m := Message{From: 0, To: 1, Payload: ping{}}
	for i := 0; i < 100000; i++ {
		mb.put(m)
		if i%2 == 0 || mbLen(mb) >= depth {
			if _, ok := mb.get(); !ok {
				t.Fatal("mailbox closed unexpectedly")
			}
		}
	}
	if c := mbCap(mb); c > 64 { // next power of two above depth
		t.Errorf("steady-state capacity = %d after 100k messages at backlog ≤ %d, want ≤ 64", c, depth)
	}
	delivered, highWater := mb.counts()
	if delivered == 0 || highWater == 0 || highWater > depth {
		t.Errorf("counts = (%d, %d), want delivered > 0 and 0 < highWater ≤ %d", delivered, highWater, depth)
	}
}

func mbLen(mb *mailbox) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.queue.Len()
}

func mbCap(mb *mailbox) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.queue.Cap()
}
