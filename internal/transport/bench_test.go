package transport

import "testing"

// BenchmarkMailbox drives one mailbox through sustained 256-deep
// bursts — the Send → delivery-goroutine handoff under backlog. The
// pre-ring implementation reallocates and retains dead Message backing
// arrays as the queue head advances; the ring reuses one power-of-two
// buffer and zeroes consumed slots.
func BenchmarkMailbox(b *testing.B) {
	mb := newMailbox()
	m := Message{From: 0, To: 1, Payload: ping{}}
	b.ReportAllocs()
	b.ResetTimer()
	for n := b.N; n > 0; {
		burst := 256
		if burst > n {
			burst = n
		}
		for i := 0; i < burst; i++ {
			mb.put(m)
		}
		for i := 0; i < burst; i++ {
			if _, ok := mb.get(); !ok {
				b.Fatal("mailbox closed early")
			}
		}
		n -= burst
	}
}

// BenchmarkStatsCount hammers the per-message accounting taken on
// every Net.Send from all procs — a node-global mutex in the pre-atomic
// implementation.
func BenchmarkStatsCount(b *testing.B) {
	var c StatsCollector
	msgs := [2]Message{
		{From: 0, To: 1, Payload: ping{}},
		{From: 1, To: 0, Payload: pong{}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Count(msgs[i&1])
			i++
		}
	})
	if c.Snapshot().Messages == 0 {
		b.Fatal("no messages counted")
	}
}
