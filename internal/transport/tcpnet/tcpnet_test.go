package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
)

// newTestCluster builds k tcpnet Nets in one process, endpoint i
// hosted by net i, all on loopback listeners. Returns the nets; the
// caller registers handlers and Starts them.
func newTestCluster(t *testing.T, k int, force bool) []*Net {
	t.Helper()
	listeners := make([]net.Listener, k)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
	}
	nets := make([]*Net, k)
	for i := range nets {
		peers := make(map[model.NodeID]string)
		for j, l := range listeners {
			if j != i {
				peers[model.NodeID(j)] = l.Addr().String()
			}
		}
		n, err := New(Config{
			Local:        []model.NodeID{model.NodeID(i)},
			Peers:        peers,
			Listener:     listeners[i],
			ReconnectMin: 5 * time.Millisecond,
			ForceTCP:     force,
		})
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = n
		t.Cleanup(n.Close)
	}
	return nets
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCrossProcessDelivery(t *testing.T) {
	const k, per = 3, 100
	nets := newTestCluster(t, k, false)
	var got [k]atomic.Int64
	var sum [k]atomic.Int64
	for i, n := range nets {
		i := i
		n.Register(model.NodeID(i), func(m transport.Message) {
			p, ok := m.Payload.(core.GCMsg)
			if !ok {
				t.Errorf("endpoint %d: unexpected payload %T", i, m.Payload)
				return
			}
			got[i].Add(1)
			sum[i].Add(int64(p.Keep))
		})
		n.Start()
	}
	want := int64(0)
	for v := 1; v <= per; v++ {
		want += int64(v)
	}
	for from, n := range nets {
		for to := 0; to < k; to++ {
			if to == from {
				continue
			}
			for v := 1; v <= per; v++ {
				n.Send(transport.Message{From: model.NodeID(from), To: model.NodeID(to), Payload: core.GCMsg{Keep: model.Version(v)}})
			}
		}
	}
	for i := 0; i < k; i++ {
		i := i
		waitFor(t, fmt.Sprintf("endpoint %d to receive %d messages", i, (k-1)*per), func() bool {
			return got[i].Load() == int64((k-1)*per)
		})
		if s := sum[i].Load(); s != int64(k-1)*want {
			t.Errorf("endpoint %d: payload sum %d, want %d", i, s, int64(k-1)*want)
		}
	}
	st := nets[0].Stats()
	if st.Messages != int64((k-1)*per) {
		t.Errorf("net 0 counted %d sends, want %d", st.Messages, (k-1)*per)
	}
	if st.ByType["gc"] != int64((k-1)*per) {
		t.Errorf("net 0 ByType[gc] = %d, want %d (stable registered name)", st.ByType["gc"], (k-1)*per)
	}
	if st.BytesSent == 0 || st.FramesSent == 0 {
		t.Errorf("net 0 reported no wire traffic: %+v", st)
	}
	if st.FramesReceived == 0 || st.BytesReceived == 0 {
		t.Errorf("net 0 reported no inbound traffic: %+v", st)
	}
}

// TestLoopbackBypass checks self-sends skip the codec entirely: an
// unregistered payload type (which the wire codec would reject) is
// delivered fine, and no frames are counted.
func TestLoopbackBypass(t *testing.T) {
	type unencodable struct{ v int }
	nets := newTestCluster(t, 1, false)
	var got atomic.Int64
	nets[0].Register(0, func(m transport.Message) {
		if p, ok := m.Payload.(unencodable); ok && p.v == 7 {
			got.Add(1)
		}
	})
	nets[0].Start()
	nets[0].Send(transport.Message{From: 0, To: 0, Payload: unencodable{v: 7}})
	waitFor(t, "loopback delivery", func() bool { return got.Load() == 1 })
	if st := nets[0].Stats(); st.FramesSent != 0 || st.BytesSent != 0 {
		t.Errorf("loopback send crossed the wire: %+v", st)
	}
}

// TestForceTCPSelfSend checks benchmark mode: with ForceTCP a
// self-send takes the full encode/socket/decode path.
func TestForceTCPSelfSend(t *testing.T) {
	nets := newTestCluster(t, 1, true)
	var got atomic.Int64
	nets[0].Register(0, func(m transport.Message) { got.Add(1) })
	nets[0].Start()
	nets[0].Send(transport.Message{From: 0, To: 0, Payload: core.GCMsg{Keep: 1}})
	waitFor(t, "forced TCP self delivery", func() bool { return got.Load() == 1 })
	if st := nets[0].Stats(); st.FramesSent != 1 || st.FramesReceived != 1 {
		t.Errorf("ForceTCP self-send did not cross the socket: %+v", st)
	}
}

// TestReliableHealsKilledConnections is the acceptance-criteria check
// at unit scale: reliable.Wrap composed over tcpnet delivers every
// message exactly once even when every live connection is forcibly
// killed mid-run.
func TestReliableHealsKilledConnections(t *testing.T) {
	const total = 400
	nets := newTestCluster(t, 2, false)
	sessions := make([]*reliable.Session, 2)
	for i, n := range nets {
		sessions[i] = reliable.Wrap(n, 2, reliable.Config{
			RetransmitInterval: 5 * time.Millisecond,
			MaxBackoff:         50 * time.Millisecond,
		})
	}
	var mu sync.Mutex
	seen := make(map[model.Version]int)
	sessions[1].Register(1, func(m transport.Message) {
		p, ok := m.Payload.(core.GCMsg)
		if !ok {
			t.Errorf("unexpected payload %T", m.Payload)
			return
		}
		mu.Lock()
		seen[p.Keep]++
		mu.Unlock()
	})
	sessions[0].Register(0, func(transport.Message) {})
	for _, s := range sessions {
		s.Start()
		defer s.Close()
	}
	for v := 1; v <= total; v++ {
		sessions[0].Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: model.Version(v)}})
		if v == total/4 || v == total/2 {
			nets[0].KillConnections()
			nets[1].KillConnections()
		}
		if v%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, "all messages delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == total
	})
	mu.Lock()
	for v, c := range seen {
		if c != 1 {
			t.Errorf("message %d delivered %d times, want exactly once", v, c)
		}
	}
	mu.Unlock()
	if r := nets[0].Stats().Reconnects; r < 1 {
		t.Errorf("expected at least one reconnect after KillConnections, got %d", r)
	}
	waitFor(t, "session to settle", func() bool { return sessions[0].InFlight() == 0 })
}

// TestPeerRestartRedial is the crash-restart regression at transport
// scale: when the remote process dies and a new one comes back on the
// SAME address, the reconnecting link must redial it and delivery must
// resume. It also pins the reconnect-counting semantics: one successful
// re-dial is one reconnect event, no matter how many backoff attempts
// the downtime cost.
func TestPeerRestartRedial(t *testing.T) {
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lb.Addr().String()
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	newB := func(l net.Listener) (*Net, *atomic.Int64) {
		nb, err := New(Config{
			Local:        []model.NodeID{1},
			Peers:        map[model.NodeID]string{0: la.Addr().String()},
			Listener:     l,
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got atomic.Int64
		nb.Register(1, func(m transport.Message) { got.Add(1) })
		nb.Start()
		return nb, &got
	}
	na, err := New(Config{
		Local:        []model.NodeID{0},
		Peers:        map[model.NodeID]string{1: addrB},
		Listener:     la,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	na.Register(0, func(transport.Message) {})
	na.Start()
	defer na.Close()

	b1, got1 := newB(lb)
	na.Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: 1}})
	waitFor(t, "delivery to first incarnation", func() bool { return got1.Load() == 1 })

	// Kill the remote process. Sends during the outage push the link
	// through the write-failure -> dial-backoff path.
	b1.Close()
	na.Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: 2}})
	time.Sleep(10 * time.Millisecond)

	// Restart on the same address.
	lb2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}
	b2, got2 := newB(lb2)
	defer b2.Close()

	// Raw tcpnet may lose frames written into the dying socket; keep
	// sending until the new incarnation hears us (the reliable layer's
	// job in production).
	waitFor(t, "delivery to restarted incarnation", func() bool {
		na.Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: 3}})
		return got2.Load() > 0
	})
	if r := na.Stats().Reconnects; r != 1 {
		t.Errorf("reconnects = %d, want exactly 1 (one successful re-dial, not one per attempt)", r)
	}
}

// TestCloseInterruptsDialBackoff: a Net shutting down while a writer is
// mid-backoff against a dead peer must not stall for the backoff
// duration — link.close() interrupts the sleep.
func TestCloseInterruptsDialBackoff(t *testing.T) {
	// Reserve an address nobody listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	na, err := New(Config{
		Local:        []model.NodeID{0},
		Peers:        map[model.NodeID]string{1: deadAddr},
		Listener:     la,
		ReconnectMin: 2 * time.Second,
		ReconnectMax: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	na.Register(0, func(transport.Message) {})
	na.Start()
	na.Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: 1}})
	time.Sleep(50 * time.Millisecond) // let the writer fail its dial and enter the 2s backoff
	start := time.Now()
	na.Close()
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("Close stalled %v behind dial backoff; want prompt return", d)
	}
}

// TestBatchFramesCoalesceAndRoute runs BatchFrames mode against a
// process hosting two endpoints on one address: the writer must encode
// runs of queued messages as single version-3 frames (fewer frames
// than messages, batch-size histogram populated), and the reader must
// route each member by its own To — in per-destination send order.
func TestBatchFramesCoalesceAndRoute(t *testing.T) {
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	na, err := New(Config{
		Local:       []model.NodeID{0},
		Peers:       map[model.NodeID]string{1: lb.Addr().String(), 2: lb.Addr().String()},
		Listener:    la,
		BatchFrames: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := New(Config{
		Local:       []model.NodeID{1, 2},
		Peers:       map[model.NodeID]string{0: la.Addr().String()},
		Listener:    lb,
		BatchFrames: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(na.Close)
	t.Cleanup(nb.Close)

	reg := obs.New(obs.Options{})
	na.SetObs(reg)
	var mu sync.Mutex
	got := map[model.NodeID][]model.Version{}
	record := func(id model.NodeID) transport.Handler {
		return func(m transport.Message) {
			if _, isBatch := m.Payload.(transport.BatchMsg); isBatch {
				t.Error("handler saw a BatchMsg envelope")
				return
			}
			mu.Lock()
			got[id] = append(got[id], m.Payload.(core.GCMsg).Keep)
			mu.Unlock()
		}
	}
	na.Register(0, func(transport.Message) {})
	nb.Register(1, record(1))
	nb.Register(2, record(2))
	na.Start()
	nb.Start()

	const perDest = 1000
	for v := 1; v <= perDest; v++ {
		na.Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: model.Version(v)}})
		na.Send(transport.Message{From: 0, To: 2, Payload: core.GCMsg{Keep: model.Version(v)}})
	}
	waitFor(t, "all batched deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got[1]) == perDest && len(got[2]) == perDest
	})
	mu.Lock()
	defer mu.Unlock()
	for _, id := range []model.NodeID{1, 2} {
		for i, v := range got[id] {
			if v != model.Version(i+1) {
				t.Fatalf("endpoint %d delivery %d = %d, want %d (order violated)", id, i, v, i+1)
			}
		}
	}
	st := na.Stats()
	if st.FramesSent >= 2*perDest {
		t.Errorf("FramesSent = %d for %d messages: nothing coalesced", st.FramesSent, 2*perDest)
	}
	if st.Flushes == 0 {
		t.Error("BatchFrames mode recorded no flushes")
	}
	if bs := reg.Snapshot().BatchSize; bs.Count == 0 || bs.Mean() <= 1 {
		t.Errorf("batch-size histogram count=%d mean=%.2f; want populated with mean > 1", bs.Count, bs.Mean())
	}
}

// TestScrapeUnderLoad hammers Stats() and the obs snapshot while
// senders and KillConnections run concurrently — the -race exercise
// for the accounting paths.
func TestScrapeUnderLoad(t *testing.T) {
	nets := newTestCluster(t, 2, false)
	reg := obs.New(obs.Options{})
	for i, n := range nets {
		i := i
		n.SetObs(reg)
		n.Register(model.NodeID(i), func(transport.Message) {})
		n.Start()
	}
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= total; v++ {
			nets[0].Send(transport.Message{From: 0, To: 1, Payload: core.GCMsg{Keep: model.Version(v)}})
			nets[1].Send(transport.Message{From: 1, To: 0, Payload: core.GCMsg{Keep: model.Version(v)}})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			nets[0].KillConnections()
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = nets[0].Stats()
		_ = nets[1].Stats()
		_ = reg.Snapshot()
	}
	wg.Wait()
	waitFor(t, "wire encode observations", func() bool { return reg.Snapshot().WireEncode.Count > 0 })
	if reg.Snapshot().WireDecode.Count == 0 {
		t.Error("no wire decode latency observed")
	}
}
