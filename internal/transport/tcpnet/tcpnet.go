// Package tcpnet is the real-network implementation of
// transport.Network: protocol endpoints hosted in different OS
// processes exchange wire-encoded frames over TCP. It is the piece
// that turns the in-process simulation into a deployable system — the
// protocol layers (core, reliable) program against the same Network
// interface and cannot tell the difference.
//
// Topology. Each process hosts one or more protocol endpoints
// (Config.Local) and knows every remote endpoint's TCP address
// (Config.Peers). Endpoints that share an address — node 0 and the
// coordinator in the standard deployment — share one connection, keyed
// by address, not by endpoint id. Connections are simplex: a process
// dials for its outbound traffic and accepts inbound traffic on its
// listener, so there is no connection-ownership handshake.
//
// Delivery contract. Sends never block (per-link unbounded ring, the
// same no-waiting property the in-memory Net provides) and local
// endpoints are delivered to by one goroutine per endpoint, preserving
// the handler-serialization the protocol relies on. Self-sends bypass
// the socket entirely (unless ForceTCP, used by benchmarks to measure
// the full encode/socket/decode path).
//
// Loss model. TCP gives in-order exactly-once delivery per connection,
// but a broken connection loses whatever was queued or in flight, and
// tcpnet reconnects with capped exponential backoff rather than
// guaranteeing delivery. End-to-end reliability is the session layer's
// job: wrap tcpnet with transport/reliable.Wrap (exactly as the chaos
// harness wraps the lossy in-memory net) and a killed connection is
// healed by retransmission. KillConnections exists so tests can force
// that code path deterministically.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config parameterizes a tcpnet Net.
type Config struct {
	// Local lists the protocol endpoint ids hosted by this process.
	Local []model.NodeID
	// Peers maps every remote endpoint id to its "host:port" address.
	// Local ids may be listed too (they are ignored unless ForceTCP).
	Peers map[model.NodeID]string
	// Listener is the caller-bound listener for inbound connections.
	// The caller binds (rather than passing an address) so tests can
	// listen on ":0" and learn the port before building peer maps.
	Listener net.Listener
	// DialTimeout bounds one outbound connection attempt; 0 means 2s.
	DialTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the capped exponential backoff
	// between failed dial attempts; 0 means 20ms / 2s.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// WriteTimeout bounds one batched write; 0 means 10s. Without it a
	// half-open connection (remote host gone without a RST) blocks the
	// writer forever once the kernel send buffer fills, wedging the
	// link past any redial path. A timeout is treated as a write
	// failure: drop the conn, redial, re-send the batch.
	WriteTimeout time.Duration
	// ForceTCP disables the loopback bypass: sends to local endpoints
	// are dialed back to this process's own listener, exercising the
	// full encode/socket/decode path (benchmark mode).
	ForceTCP bool
	// BatchFrames encodes each writer pass's drained queue as a single
	// version-3 batch frame instead of one frame per message: one length
	// prefix, one header, one decode on the far side. Messages whose
	// payload is already a transport.BatchMsg (an upper layer's flush
	// envelope) pass through as their own frames — batches never nest.
	// The receiver routes each member by its own To, so endpoints that
	// share an address still demultiplex correctly.
	BatchFrames bool
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 20 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// maxBatch bounds how many queued messages one writer pass coalesces
// into a single buffered write; it caps the encode buffer's growth
// while still amortizing syscalls under load.
const maxBatch = 256

// inbox is the per-local-endpoint delivery queue: unbounded ring,
// non-blocking put, one consuming goroutine per endpoint (handler
// serialization, as the protocol requires).
type inbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     ring.Ring[transport.Message]
	closed    bool
	delivered int64
	highWater int64
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m transport.Message) bool {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return false
	}
	ib.queue.Push(m)
	if n := int64(ib.queue.Len()); n > ib.highWater {
		ib.highWater = n
	}
	ib.cond.Signal()
	return true
}

func (ib *inbox) get() (transport.Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for ib.queue.Len() == 0 && !ib.closed {
		ib.cond.Wait()
	}
	m, ok := ib.queue.Pop()
	if ok {
		ib.delivered++
	}
	return m, ok
}

func (ib *inbox) counts() (delivered, highWater int64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.delivered, ib.highWater
}

func (ib *inbox) close() {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.closed = true
	ib.cond.Broadcast()
}

// peerLink is the outbound side of one connection: an unbounded send
// ring drained by a dedicated writer goroutine that owns the dial /
// reconnect / coalesce cycle for its remote address.
type peerLink struct {
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  ring.Ring[transport.Message]
	conn   net.Conn // current outbound conn, nil while down; guarded by mu for KillConnections
	closed bool
	down   chan struct{} // closed by close(); interrupts the dial backoff sleep
}

func newPeerLink(addr string) *peerLink {
	l := &peerLink{addr: addr, down: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *peerLink) enqueue(m transport.Message) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.queue.Push(m)
	l.cond.Signal()
	return true
}

// popBatch blocks until at least one message is queued (or the link
// closes), then drains up to maxBatch messages into batch.
func (l *peerLink) popBatch(batch []transport.Message) []transport.Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.queue.Len() == 0 && !l.closed {
		l.cond.Wait()
	}
	for len(batch) < maxBatch {
		m, ok := l.queue.Pop()
		if !ok {
			break
		}
		batch = append(batch, m)
	}
	return batch
}

func (l *peerLink) setConn(c net.Conn) {
	l.mu.Lock()
	l.conn = c
	l.mu.Unlock()
}

// kill closes the link's current connection (if any) without closing
// the link; the writer notices on its next write and redials.
func (l *peerLink) kill() {
	l.mu.Lock()
	c := l.conn
	l.conn = nil
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (l *peerLink) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	c := l.conn
	l.conn = nil
	l.cond.Broadcast()
	close(l.down)
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Net is the TCP transport.Network. Build with New, then Register
// local handlers and Start.
type Net struct {
	cfg      Config
	handlers map[model.NodeID]transport.Handler
	local    map[model.NodeID]bool
	inboxes  map[model.NodeID]*inbox
	links    map[string]*peerLink // by remote address
	route    map[model.NodeID]*peerLink

	stats      transport.StatsCollector
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	framesSent atomic.Int64
	framesRecv atomic.Int64
	reconnects atomic.Int64
	dropped    atomic.Int64 // undeliverable or lost on a dead link's final flush
	flushes    atomic.Int64 // batch frames written (BatchFrames mode)
	obs        atomic.Pointer[obs.Registry]

	mu      sync.Mutex
	started bool
	closed  bool
	inbound map[net.Conn]bool // accepted conns, for KillConnections/Close
	wg      sync.WaitGroup
}

// New builds a tcpnet Net. cfg.Listener is required; every endpoint id
// that is neither local nor in Peers is unroutable (Send drops and
// counts it).
func New(cfg Config) (*Net, error) {
	cfg = cfg.withDefaults()
	if cfg.Listener == nil {
		return nil, errors.New("tcpnet: Config.Listener is required")
	}
	if len(cfg.Local) == 0 {
		return nil, errors.New("tcpnet: Config.Local is empty")
	}
	n := &Net{
		cfg:      cfg,
		handlers: make(map[model.NodeID]transport.Handler),
		local:    make(map[model.NodeID]bool),
		inboxes:  make(map[model.NodeID]*inbox),
		links:    make(map[string]*peerLink),
		route:    make(map[model.NodeID]*peerLink),
		inbound:  make(map[net.Conn]bool),
	}
	for _, id := range cfg.Local {
		n.local[id] = true
		n.inboxes[id] = newInbox()
	}
	for id, addr := range cfg.Peers {
		if n.local[id] && !cfg.ForceTCP {
			continue
		}
		link, ok := n.links[addr]
		if !ok {
			link = newPeerLink(addr)
			n.links[addr] = link
		}
		n.route[id] = link
	}
	if cfg.ForceTCP {
		// Benchmark mode: local endpoints without an explicit peer
		// entry loop through our own listener.
		self := cfg.Listener.Addr().String()
		for id := range n.local {
			if _, ok := n.route[id]; ok {
				continue
			}
			link, ok := n.links[self]
			if !ok {
				link = newPeerLink(self)
				n.links[self] = link
			}
			n.route[id] = link
		}
	}
	return n, nil
}

// SetObs attaches an observability registry for the wire encode/decode
// latency histograms. Safe to call at any time (including never).
func (n *Net) SetObs(r *obs.Registry) { n.obs.Store(r) }

// Register implements Network. Only locally hosted endpoint ids accept
// handlers.
func (n *Net) Register(id model.NodeID, h transport.Handler) {
	if !n.local[id] {
		panic(fmt.Sprintf("tcpnet: Register(%d) but endpoint is not in Config.Local", id))
	}
	n.handlers[id] = h
}

// Start implements Network: spawns the acceptor, one delivery
// goroutine per local endpoint, and one writer per peer link.
func (n *Net) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.closed {
		return
	}
	n.started = true
	for id := range n.local {
		if n.handlers[id] == nil {
			panic(fmt.Sprintf("tcpnet: local endpoint %d has no handler", id))
		}
		n.wg.Add(1)
		go n.deliverLoop(id)
	}
	for _, link := range n.links {
		n.wg.Add(1)
		go n.writeLoop(link)
	}
	n.wg.Add(1)
	go n.acceptLoop()
}

func (n *Net) deliverLoop(id model.NodeID) {
	defer n.wg.Done()
	h := n.handlers[id]
	ib := n.inboxes[id]
	for {
		m, ok := ib.get()
		if !ok {
			return
		}
		// Deliver unpacks any flush envelope that reached the inbox
		// whole (the loopback-bypass path; socket batches are unpacked
		// at routing time), so handlers never see a BatchMsg.
		transport.Deliver(h, m)
	}
}

// Send implements Network: never blocks. Local destinations are
// delivered via the in-process inbox (unless ForceTCP); remote ones
// are queued on their link's send ring for the writer to encode and
// flush.
func (n *Net) Send(m transport.Message) {
	n.stats.Count(m)
	if link, ok := n.route[m.To]; ok {
		if !link.enqueue(m) {
			n.dropped.Add(1)
		}
		return
	}
	if n.local[m.To] {
		if !n.inboxes[m.To].put(m) {
			n.dropped.Add(1)
		}
		return
	}
	n.dropped.Add(1)
	log.Printf("tcpnet: send to unroutable endpoint %d (no peer address); dropped", m.To)
}

// writeLoop owns one link: dial (with capped backoff), coalesce queued
// messages into one buffered write, re-dial on failure. A write error
// loses the in-flight batch — that is the real-network loss the
// reliable session layer exists to heal.
func (n *Net) writeLoop(link *peerLink) {
	defer n.wg.Done()
	var (
		buf     []byte
		batch   []transport.Message
		conn    net.Conn
		backoff = n.cfg.ReconnectMin
		dialed  bool // a connection has succeeded before (re-dials count as reconnects)
	)
	for {
		batch = link.popBatch(batch[:0])
		if len(batch) == 0 {
			// Link closed. Best-effort flush already happened; drop
			// whatever raced in.
			if conn != nil {
				conn.Close()
			}
			return
		}
		// Encode the batch first: encoding is connection-independent
		// and the frames survive a redial below.
		buf = buf[:0]
		reg := n.obs.Load()
		if n.cfg.BatchFrames {
			buf = n.encodeBatched(buf, batch, reg, link.addr)
		} else {
			for _, m := range batch {
				buf, _ = n.appendFrame(buf, m, reg)
			}
		}
		if len(buf) == 0 {
			continue
		}
		for {
			if conn == nil {
				conn = n.dial(link, &backoff, &dialed)
				if conn == nil {
					// Link closed while dialing: the batch is lost.
					n.dropped.Add(int64(len(batch)))
					return
				}
			}
			conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
			if _, err := conn.Write(buf); err == nil {
				n.bytesSent.Add(int64(len(buf)))
				break
			}
			// Write failure: drop the conn and redial. The batch was
			// already encoded, so it is re-sent on the new conn —
			// receivers may see duplicates of frames that partially
			// landed, which the session layer's dedup absorbs.
			conn.Close()
			link.setConn(nil)
			conn = nil
		}
	}
}

// appendFrame encodes one frame onto buf, with wire-encode timing and
// frame accounting. An encode failure drops the message (counted) and
// leaves buf unchanged.
func (n *Net) appendFrame(buf []byte, m transport.Message, reg *obs.Registry) ([]byte, bool) {
	start := time.Now()
	out, err := wire.AppendFrame(buf, m)
	if err != nil {
		log.Printf("tcpnet: encode %T: %v; dropped", m.Payload, err)
		n.dropped.Add(1)
		return buf, false
	}
	reg.ObserveWireEncode(time.Since(start))
	n.framesSent.Add(1)
	return out, true
}

// encodeBatched encodes one writer pass as batch frames: maximal runs
// of ordinary messages become one version-3 envelope each, while
// messages that already are flush envelopes (upper-layer BatchMsg)
// pass through as their own frames, since batches must not nest. Every
// frame written is one flush for the batch-size histogram.
func (n *Net) encodeBatched(buf []byte, batch []transport.Message, reg *obs.Registry, addr string) []byte {
	i := 0
	for i < len(batch) {
		if b, isBatch := batch[i].Payload.(transport.BatchMsg); isBatch {
			if out, ok := n.appendFrame(buf, batch[i], reg); ok {
				buf = out
				n.flushes.Add(1)
				reg.ObserveBatchSize(addr, len(b.Msgs))
			}
			i++
			continue
		}
		j := i + 1
		for j < len(batch) {
			if _, isBatch := batch[j].Payload.(transport.BatchMsg); isBatch {
				break
			}
			j++
		}
		run := batch[i:j]
		m := run[0]
		if len(run) > 1 {
			m = transport.Message{From: run[0].From, To: run[0].To, Payload: transport.BatchMsg{Msgs: run}}
		}
		if out, ok := n.appendFrame(buf, m, reg); ok {
			buf = out
			n.flushes.Add(1)
			reg.ObserveBatchSize(addr, len(run))
		} else if len(run) > 1 {
			// appendFrame counted one drop; the envelope lost a whole run.
			n.dropped.Add(int64(len(run) - 1))
		}
		i = j
	}
	return buf
}

// dial establishes the link's outbound connection, backing off
// exponentially (capped) between failures. Returns nil once the link
// is closed. The backoff sleep is interruptible by link.close() so a
// Net shutdown never stalls behind a down peer, and a remote that
// restarts on the same address is picked up on the next (bounded)
// retry rather than wedging the writer.
func (n *Net) dial(link *peerLink, backoff *time.Duration, dialed *bool) net.Conn {
	for {
		link.mu.Lock()
		closed := link.closed
		link.mu.Unlock()
		if closed {
			return nil
		}
		c, err := net.DialTimeout("tcp", link.addr, n.cfg.DialTimeout)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			if *dialed {
				// Count one reconnect per successful re-dial, not per
				// attempt: a peer that is down for a while is one
				// reconnect event, however many retries it took.
				n.reconnects.Add(1)
			}
			*dialed = true
			*backoff = n.cfg.ReconnectMin
			link.setConn(c)
			return c
		}
		select {
		case <-link.down:
			return nil
		case <-time.After(*backoff):
		}
		*backoff *= 2
		if *backoff > n.cfg.ReconnectMax {
			*backoff = n.cfg.ReconnectMax
		}
	}
}

func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.cfg.Listener.Accept()
		if err != nil {
			return // listener closed (Close)
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.inbound[c] = true
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection and routes them
// to local inboxes. Any framing or decode error abandons the
// connection — the peer redials and the session layer re-sends.
func (n *Net) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
	}()
	var hdr [4]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > wire.MaxFrame {
			log.Printf("tcpnet: inbound frame of %d bytes exceeds limit; closing connection", size)
			return
		}
		if cap(body) < int(size) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		n.bytesRecv.Add(int64(size) + 4)
		start := time.Now()
		m, err := wire.DecodeFrame(body)
		if err != nil {
			log.Printf("tcpnet: decode error: %v; closing connection", err)
			return
		}
		n.obs.Load().ObserveWireDecode(time.Since(start))
		n.framesRecv.Add(1)
		if b, ok := m.Payload.(transport.BatchMsg); ok {
			// A batch frame: route each member by its own To — members
			// may target different endpoints hosted on this address.
			// Per-member order is preserved (one inbox put at a time,
			// in frame order), so per-link FIFO survives batching.
			for _, mm := range b.Msgs {
				n.routeInbound(mm)
			}
			continue
		}
		n.routeInbound(m)
	}
}

// routeInbound hands one decoded application message to its local
// endpoint's inbox.
func (n *Net) routeInbound(m transport.Message) {
	ib, ok := n.inboxes[m.To]
	if !ok {
		n.dropped.Add(1)
		log.Printf("tcpnet: inbound frame for endpoint %d not hosted here; dropped", m.To)
		return
	}
	if !ib.put(m) {
		n.dropped.Add(1)
	}
}

// KillConnections force-closes every live connection, inbound and
// outbound, without closing the Net — the fault-injection hook for
// reconnect and session-layer healing tests. Queued messages survive;
// in-flight batches may be lost or duplicated, exactly like a real
// connection failure.
func (n *Net) KillConnections() {
	for _, link := range n.links {
		link.kill()
	}
	n.mu.Lock()
	conns := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close implements Network: stops accepting, closes every connection
// and link, and waits for all goroutines. Queued-but-unsent messages
// are dropped (the protocol quiesces before shutdown, as with the
// in-memory transports).
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	started := n.started
	n.mu.Unlock()

	n.cfg.Listener.Close()
	for _, link := range n.links {
		link.close()
	}
	n.mu.Lock()
	for c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	for _, ib := range n.inboxes {
		ib.close()
	}
	if started {
		n.wg.Wait()
	}
}

// Stats implements Network.
func (n *Net) Stats() transport.Stats {
	s := n.stats.Snapshot()
	for _, ib := range n.inboxes {
		d, hw := ib.counts()
		s.Delivered += d
		if hw > s.MaxQueueDepth {
			s.MaxQueueDepth = hw
		}
	}
	s.BytesSent = n.bytesSent.Load()
	s.BytesReceived = n.bytesRecv.Load()
	s.FramesSent = n.framesSent.Load()
	s.FramesReceived = n.framesRecv.Load()
	s.Reconnects = n.reconnects.Load()
	s.Dropped = n.dropped.Load()
	s.Flushes = n.flushes.Load()
	return s
}

var _ transport.Network = (*Net)(nil)
