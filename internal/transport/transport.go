// Package transport provides the asynchronous message substrate the
// distributed protocol runs on. The paper's system is a set of database
// nodes exchanging subtransactions and version-advancement notices over
// an asynchronous network with no global clock; we reproduce that with
// one in-process mailbox per node and goroutine-based delivery.
//
// Two implementations are provided:
//
//   - Net: a live network with configurable per-message latency and
//     jitter. Jitter makes messages between the same pair of nodes
//     overtake each other, which is exactly the race the 3V protocol
//     must tolerate (a version-advancement notice arriving after a
//     version-2 subtransaction, a version-1 descendant arriving at an
//     already-advanced node, ...).
//
//   - Script: a deterministic network that holds every message until a
//     test or trace explicitly releases it, used to replay Table 1 of
//     the paper step by step.
//
// Substitution note (see DESIGN.md): the paper ran on real machines; an
// in-process transport preserves the protocol-relevant behaviour —
// asynchrony, reordering, delay — while adding the determinism a
// reproduction needs.
package transport

import (
	"container/heap"
	"fmt"
	"log"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ring"
)

// Message is one envelope on the wire. Payload is a protocol-defined
// struct; the transport never inspects it beyond its type name (for
// accounting).
type Message struct {
	From, To model.NodeID
	Payload  any
	// TC is the distributed-tracing context riding this envelope; the
	// transport never inspects it (the zero value means "not sampled").
	// In-process transports carry it with the struct; tcpnet encodes it
	// in the frame header (see internal/wire).
	TC obs.TraceContext
}

// BatchMsg is the batched wire frame: one envelope carrying every
// message a directed link coalesced during one flush window, so each
// layer that moves it — the mem transport's dispatch, reliable's
// flusher, tcpnet's writer — pays its per-envelope cost (timer tick,
// fault draw, syscall) once per flush instead of once per message.
//
// Members keep their own From/To/TC: a tcpnet process hosting several
// endpoints routes each member by its own To, and trace contexts ride
// the member, not the envelope. Batches never nest (enforced by the
// wire codec on both encode and decode), and application handlers never
// see one: every delivery path unpacks the envelope and hands members
// over one at a time, in order, so per-link FIFO is preserved — a batch
// is just a run of consecutive messages that travel together.
type BatchMsg struct {
	Msgs []Message
}

func init() { RegisterPayloadName(BatchMsg{}, "batch") }

// Deliver invokes h once per application message in m: BatchMsg
// envelopes are unpacked in order, so handlers never see one. Every
// transport's delivery loop funnels through this (tcpnet unpacks
// earlier, at routing time, since members may target different local
// endpoints).
func Deliver(h Handler, m Message) {
	if b, ok := m.Payload.(BatchMsg); ok {
		for _, mm := range b.Msgs {
			h(mm)
		}
		return
	}
	h(m)
}

// payloadNames maps payload types to stable accounting names. The
// protocol packages register their message types here (core and
// transport/reliable do so in init), and internal/wire's codec registry
// uses the same names, so metrics labels are identical across processes
// and across transports instead of leaking Go type strings.
var payloadNames sync.Map // reflect.Type -> string

// RegisterPayloadName assigns the stable accounting name for the
// payload type of prototype. Registering the same type twice with a
// different name panics (the name is a cross-process wire contract).
func RegisterPayloadName(prototype any, name string) {
	if name == "" {
		panic("transport: RegisterPayloadName with empty name")
	}
	t := reflect.TypeOf(prototype)
	if prev, loaded := payloadNames.LoadOrStore(t, name); loaded && prev.(string) != name {
		panic(fmt.Sprintf("transport: payload type %v registered as both %q and %q", t, prev, name))
	}
}

// PayloadName returns the stable registered name for a payload, falling
// back to the Go type string for unregistered types (tests, ad-hoc
// payloads).
func PayloadName(p any) string { return typeName(reflect.TypeOf(p)) }

func typeName(t reflect.Type) string {
	if v, ok := payloadNames.Load(t); ok {
		return v.(string)
	}
	return t.String()
}

// Handler consumes messages delivered to one node. A node's handler is
// invoked by a single delivery goroutine at a time (per node), so the
// handler itself serializes that node's message processing — matching
// the "server processes arriving subtransactions" model. Handlers may
// call Send freely (including to the handling node itself).
type Handler func(Message)

// Network is the interface the protocol layers program against.
type Network interface {
	// Register installs the handler for node id. Must be called for
	// every node before Start.
	Register(id model.NodeID, h Handler)
	// Send enqueues the message for asynchronous delivery. It never
	// blocks on the receiver: the paper's protocol requires that no
	// user transaction waits for remote activity, so sends are
	// fire-and-forget.
	Send(m Message)
	// Start begins delivery. Close stops it and waits for delivery
	// goroutines to drain.
	Start()
	Close()
	// Stats returns cumulative message accounting.
	Stats() Stats
}

// Stats is cumulative transport accounting.
type Stats struct {
	Messages int64
	ByType   map[string]int64
	// Delivered counts messages handed to receiver handlers (live Net
	// only; always ≤ Messages while sends are in flight).
	Delivered int64
	// MaxQueueDepth is the largest backlog any single mailbox ever
	// reached — the transport-level pressure gauge (live Net only).
	MaxQueueDepth int64

	// Fault-layer accounting (see faults.go; Script counts its scripted
	// DropWhere/DuplicateIndex interventions here too).
	//
	// Dropped counts messages discarded by injected loss.
	Dropped int64
	// Duplicated counts extra copies injected by duplication faults.
	Duplicated int64
	// PartitionDrops counts messages blackholed by an active partition.
	PartitionDrops int64
	// CloseDropped counts messages discarded because they were sent to
	// an already-closed network — a nonzero value means the caller shut
	// down before the protocol quiesced.
	CloseDropped int64

	// Flushes counts link flushes when batching is enabled (every
	// envelope that left a link, single-message flushes included); 0
	// when batching is off. Mean batch size is Messages-ish / Flushes;
	// the per-link size distribution lives in the obs registry.
	Flushes int64

	// Session-layer accounting (reliable transport only; see
	// transport/reliable).
	//
	// Retransmits counts data frames re-sent by the retransmission
	// timer.
	Retransmits int64
	// DupDropped counts received frames the session layer discarded as
	// duplicates (injected duplicates and spurious retransmits).
	DupDropped int64

	// Real-network accounting (transport/tcpnet only; zero for the
	// in-process transports).
	//
	// BytesSent/BytesReceived count frame bytes on the wire, length
	// prefixes included.
	BytesSent     int64
	BytesReceived int64
	// FramesSent/FramesReceived count encoded frames crossing sockets
	// (loopback-bypass deliveries are not frames).
	FramesSent     int64
	FramesReceived int64
	// Reconnects counts outbound connections re-dialed after a write
	// failure or a forced kill.
	Reconnects int64
}

// StatsCollector accumulates message counts. It sits on every Send, so
// it is all atomics: a total counter plus one atomic.Int64 per payload
// type in a sync.Map keyed by reflect.Type (cheap comparable key, no
// per-call formatting). The snapshot is best-effort — Messages and the
// per-type counts are read without mutual atomicity, like any gauge
// scrape. The zero value is ready to use; tcpnet shares it with the
// in-process transports.
type StatsCollector struct {
	messages atomic.Int64
	byType   sync.Map // reflect.Type -> *atomic.Int64
}

// Count accounts one sent message.
func (c *StatsCollector) Count(m Message) {
	c.messages.Add(1)
	t := reflect.TypeOf(m.Payload)
	if v, ok := c.byType.Load(t); ok {
		v.(*atomic.Int64).Add(1)
		return
	}
	v, _ := c.byType.LoadOrStore(t, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// Snapshot renders the counts, keying ByType by the stable registered
// payload names (see RegisterPayloadName) so labels agree across
// processes.
func (c *StatsCollector) Snapshot() Stats {
	out := Stats{Messages: c.messages.Load(), ByType: make(map[string]int64)}
	c.byType.Range(func(k, v any) bool {
		out.ByType[typeName(k.(reflect.Type))] += v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// mailbox is an unbounded FIFO queue with blocking receive. Sends never
// block (required by the protocol's no-waiting property); the consumer
// drains at its own pace. Like the node work queue, it is backed by a
// growable power-of-two ring so a sustained message flow reuses one
// buffer (bounded by the backlog high-water mark) instead of endlessly
// reallocating and retaining dead Message backing arrays.
type mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     ring.Ring[Message]
	closed    bool
	delivered int64 // messages handed to the consumer
	highWater int64 // largest queue length ever observed
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// put enqueues a message, reporting false if the mailbox has already
// closed (the message is then lost; callers count it).
func (mb *mailbox) put(m Message) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return false
	}
	mb.queue.Push(m)
	if n := int64(mb.queue.Len()); n > mb.highWater {
		mb.highWater = n
	}
	mb.cond.Signal()
	return true
}

// get blocks until a message is available or the mailbox closes.
func (mb *mailbox) get() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.queue.Len() == 0 && !mb.closed {
		mb.cond.Wait()
	}
	m, ok := mb.queue.Pop()
	if ok {
		mb.delivered++
	}
	return m, ok
}

// counts returns the mailbox's delivery count and backlog high-water
// mark for Stats aggregation.
func (mb *mailbox) counts() (delivered, highWater int64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.delivered, mb.highWater
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// Config parameterizes a live Net.
type Config struct {
	// Nodes is the cluster size (node ids 0..Nodes-1).
	Nodes int
	// BaseLatency is the fixed one-way delay applied to every message.
	BaseLatency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) to each
	// message; with Jitter > 0 messages between the same pair of nodes
	// can be reordered.
	Jitter time.Duration
	// Seed seeds the jitter and fault source; 0 means a fixed default
	// (runs are reproducible unless the caller randomizes the seed).
	Seed int64
	// Faults configures message loss, duplication, extra delay and the
	// initial partition set (see faults.go). The zero value injects
	// nothing; partitions and rates can also be changed at runtime via
	// the FaultInjector methods.
	Faults Faults

	// BatchWindow, when positive, coalesces each directed link's sends
	// for up to this long and dispatches them as one BatchMsg envelope.
	// The envelope is one unit to the fault layer — a drop loses the
	// whole flush, a duplicate copies it — exactly like a batched frame
	// on a real wire. 0 disables batching: every message dispatches
	// individually, byte-for-byte the pre-batching behaviour.
	BatchWindow time.Duration
	// MaxBatch caps messages per flush (a full buffer flushes without
	// waiting out the window); 0 means 256.
	MaxBatch int
	// PerBatchLatency charges BaseLatency + one jitter draw per flush
	// envelope instead of per member. Without it a k-message batch is
	// delayed by the max of k per-member draws — the batch arrives when
	// its slowest member would have — so enabling batching alone never
	// understates simulated latency; this flag is the explicit ablation
	// that removes the simulator's per-message jitter from the measured
	// path (see EXPERIMENTS.md "Batching").
	PerBatchLatency bool
}

// Net is the live network. Each node has one mailbox and one delivery
// goroutine invoking its handler; latency/jitter are imposed by timer
// goroutines between Send and mailbox insertion.
type Net struct {
	cfg      Config
	handlers []Handler
	boxes    []*mailbox
	stats    StatsCollector
	fs       faultState

	// Link batching (nil slices when Config.BatchWindow == 0).
	links      []*linkBuf // staging buffers, indexed from*Nodes+to
	linkLabels []string   // "from→to" histogram labels, same index
	maxBatch   int
	flushes    atomic.Int64
	reg        atomic.Pointer[obs.Registry]

	// Central delay queue: all latency/jitter-delayed sends wait in one
	// deadline-ordered heap serviced by a single goroutine, instead of a
	// goroutine-per-message sleep (whose stack allocations dominated the
	// profile and whose scheduling noise inflated tail latency on small
	// machines at batched-mode message rates).
	delayMu   sync.Mutex
	delayed   delayHeap
	delaySeq  uint64
	delayWake chan struct{} // cap 1: "an earlier deadline may exist"
	delayStop chan struct{}

	// Fault and shutdown accounting.
	dropped        atomic.Int64
	duplicated     atomic.Int64
	partitionDrops atomic.Int64
	closeDropped   atomic.Int64

	mu      sync.Mutex
	rng     *rand.Rand
	started bool
	closing bool
	closed  bool
	wg      sync.WaitGroup // delivery goroutines
	timers  sync.WaitGroup // in-flight delayed sends
}

// linkBuf stages one directed link's coalescing window: messages
// accumulate under mu until the window timer (armed by the first
// message) or a full buffer flushes them as one envelope. The timer is
// allocated once per link and re-armed with Reset — at tens of
// thousands of flushes per second a fresh AfterFunc per window is
// measurable allocation churn on the hot path.
type linkBuf struct {
	mu    sync.Mutex
	msgs  []Message
	armed bool
	timer *time.Timer
}

// NewNet builds a live network from cfg.
func NewNet(cfg Config) *Net {
	if cfg.Nodes <= 0 {
		panic("transport: Config.Nodes must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	n := &Net{
		cfg:       cfg,
		handlers:  make([]Handler, cfg.Nodes),
		boxes:     make([]*mailbox, cfg.Nodes),
		rng:       rand.New(rand.NewSource(seed)),
		delayWake: make(chan struct{}, 1),
		delayStop: make(chan struct{}),
	}
	go n.delayLoop()
	n.fs.faults = cfg.Faults
	for i := range n.boxes {
		n.boxes[i] = newMailbox()
	}
	if cfg.BatchWindow > 0 {
		n.maxBatch = cfg.MaxBatch
		if n.maxBatch <= 0 {
			n.maxBatch = 256
		}
		n.links = make([]*linkBuf, cfg.Nodes*cfg.Nodes)
		n.linkLabels = make([]string, cfg.Nodes*cfg.Nodes)
		for from := 0; from < cfg.Nodes; from++ {
			for to := 0; to < cfg.Nodes; to++ {
				n.links[from*cfg.Nodes+to] = &linkBuf{}
				n.linkLabels[from*cfg.Nodes+to] = fmt.Sprintf("%d→%d", from, to)
			}
		}
	}
	return n
}

// SetObs attaches an observability registry for the per-link
// batch-size histograms. Safe to call at any time (including never).
func (n *Net) SetObs(r *obs.Registry) { n.reg.Store(r) }

// Register implements Network.
func (n *Net) Register(id model.NodeID, h Handler) {
	n.handlers[id] = h
}

// Start implements Network.
func (n *Net) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for i := range n.boxes {
		if n.handlers[i] == nil {
			panic(fmt.Sprintf("transport: node %d has no handler", i))
		}
		n.wg.Add(1)
		go n.deliverLoop(i)
	}
}

func (n *Net) deliverLoop(i int) {
	defer n.wg.Done()
	h := n.handlers[i]
	for {
		m, ok := n.boxes[i].get()
		if !ok {
			return
		}
		Deliver(h, m)
	}
}

// rnd draws one uniform float from the net's seeded source (shared
// with jitter, so the whole run replays from one seed).
func (n *Net) rnd() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// Send implements Network. The sender never blocks: zero-delay messages
// go straight into the receiver's unbounded mailbox; delayed messages
// are held by a timer goroutine first. The fault layer sits here: a
// message may be blackholed by a partition, dropped, duplicated or
// extra-delayed before dispatch (never for loopback sends).
func (n *Net) Send(m Message) {
	if int(m.To) < 0 || int(m.To) >= len(n.boxes) {
		panic(fmt.Sprintf("transport: send to unknown node %d", m.To))
	}
	n.stats.Count(m)
	if b, ok := m.Payload.(BatchMsg); ok {
		// A pre-built envelope from an upper layer (reliable's flusher,
		// group submit). Never re-staged — batches must not nest — but
		// observed, so the obs histograms see every flush on this net.
		n.observeFlush(m.From, m.To, len(b.Msgs))
		n.transmit(m)
		return
	}
	if n.links != nil {
		n.stage(m)
		return
	}
	n.transmit(m)
}

// transmit runs one message (or envelope) through the fault layer and
// dispatches surviving copies — the whole envelope is one unit to
// faults, exactly like one frame on a real wire.
func (n *Net) transmit(m Message) {
	drop, partitioned, dup, extra := n.fs.decide(Link{From: m.From, To: m.To}, n.rnd)
	if drop {
		if partitioned {
			n.partitionDrops.Add(1)
		} else {
			n.dropped.Add(1)
		}
		return
	}
	n.dispatch(m, extra)
	if dup {
		n.duplicated.Add(1)
		n.dispatch(m, extra)
	}
}

// stage parks a message on its link's coalescing buffer; the first
// message arms the window timer, a full buffer flushes immediately.
func (n *Net) stage(m Message) {
	lb := n.links[int(m.From)*n.cfg.Nodes+int(m.To)]
	lb.mu.Lock()
	lb.msgs = append(lb.msgs, m)
	if len(lb.msgs) >= n.maxBatch {
		msgs := lb.msgs
		lb.msgs = nil
		lb.mu.Unlock()
		n.flush(m.From, m.To, msgs)
		return
	}
	if !lb.armed {
		lb.armed = true
		if lb.timer == nil {
			from, to := m.From, m.To
			lb.timer = time.AfterFunc(n.cfg.BatchWindow, func() { n.flushLink(from, to) })
		} else {
			// Re-arming an expired AfterFunc timer is safe: at worst a
			// stale callback drains the buffer early (a harmless short
			// window) and the re-armed one finds it empty.
			lb.timer.Reset(n.cfg.BatchWindow)
		}
	}
	lb.mu.Unlock()
}

// flushLink drains one link's staging buffer (window expiry, or the
// final sweep in Close).
func (n *Net) flushLink(from, to model.NodeID) {
	lb := n.links[int(from)*n.cfg.Nodes+int(to)]
	lb.mu.Lock()
	msgs := lb.msgs
	lb.msgs = nil
	lb.armed = false
	lb.mu.Unlock()
	if len(msgs) > 0 {
		n.flush(from, to, msgs)
	}
}

func (n *Net) flush(from, to model.NodeID, msgs []Message) {
	n.observeFlush(from, to, len(msgs))
	if len(msgs) == 1 {
		n.transmit(msgs[0])
		return
	}
	n.transmit(Message{From: from, To: to, Payload: BatchMsg{Msgs: msgs}})
}

func (n *Net) observeFlush(from, to model.NodeID, size int) {
	n.flushes.Add(1)
	if r := n.reg.Load(); r != nil {
		label := fmt.Sprintf("%d→%d", from, to)
		if n.linkLabels != nil && int(from) >= 0 && int(from) < n.cfg.Nodes && int(to) >= 0 && int(to) < n.cfg.Nodes {
			label = n.linkLabels[int(from)*n.cfg.Nodes+int(to)]
		}
		r.ObserveBatchSize(label, size)
	}
}

// dispatch imposes latency (base + jitter + fault extra) and enqueues
// one copy of the message.
func (n *Net) dispatch(m Message, extra time.Duration) {
	d := n.cfg.BaseLatency + extra
	if n.cfg.Jitter > 0 {
		// A batch envelope is delayed by the max of its members' draws —
		// it arrives when its slowest member would have — unless the
		// PerBatchLatency ablation charges a single draw per flush.
		draws := 1
		if b, ok := m.Payload.(BatchMsg); ok && !n.cfg.PerBatchLatency {
			draws = len(b.Msgs)
		}
		var jmax time.Duration
		n.mu.Lock()
		for i := 0; i < draws; i++ {
			if j := time.Duration(n.rng.Int63n(int64(n.cfg.Jitter))); j > jmax {
				jmax = j
			}
		}
		n.mu.Unlock()
		d += jmax
	}
	if d <= 0 {
		if !n.boxes[m.To].put(m) {
			n.closeDropped.Add(1)
		}
		return
	}
	// Register the delayed send under the lock so it cannot race
	// Close's timers.Wait (a WaitGroup Add that could start from zero
	// must happen-before the Wait); once closed, delayed messages are
	// dropped like queued ones.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.closeDropped.Add(1)
		return
	}
	n.timers.Add(1)
	n.mu.Unlock()
	n.delayMu.Lock()
	heap.Push(&n.delayed, delayedMsg{at: time.Now().Add(d), seq: n.delaySeq, m: m})
	n.delaySeq++
	n.delayMu.Unlock()
	select {
	case n.delayWake <- struct{}{}:
	default:
	}
}

// delayedMsg is one latency-delayed send parked in the central heap.
// seq breaks deadline ties in push order so equal-delay messages on a
// link keep their send order.
type delayedMsg struct {
	at  time.Time
	seq uint64
	m   Message
}

type delayHeap []delayedMsg

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(delayedMsg)) }
func (h *delayHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// delayLoop services the delay heap: deliver everything due, sleep
// until the earliest remaining deadline (or a wake for a new earlier
// one). One goroutine replaces one per in-flight delayed message.
func (n *Net) delayLoop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var wait time.Duration = -1
		for {
			n.delayMu.Lock()
			if len(n.delayed) == 0 {
				n.delayMu.Unlock()
				break
			}
			if d := time.Until(n.delayed[0].at); d > 0 {
				wait = d
				n.delayMu.Unlock()
				break
			}
			dm := heap.Pop(&n.delayed).(delayedMsg)
			n.delayMu.Unlock()
			if !n.boxes[dm.m.To].put(dm.m) {
				n.closeDropped.Add(1)
			}
			n.timers.Done()
		}
		if wait < 0 {
			wait = time.Hour
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-n.delayWake:
		case <-n.delayStop:
			return
		}
	}
}

// Close implements Network: waits for in-flight delayed sends, then
// stops delivery goroutines. Messages sent after this point are dropped
// and counted in Stats.CloseDropped; callers quiesce the protocol
// before closing, so a nonzero count is logged as a likely quiesce bug.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return
	}
	n.closing = true
	n.mu.Unlock()
	// Final sweep of the coalescing buffers before the gate drops, so
	// staged messages are delivered rather than close-dropped (their
	// window timers may fire after the gate and find nothing to do).
	if n.links != nil {
		for from := 0; from < n.cfg.Nodes; from++ {
			for to := 0; to < n.cfg.Nodes; to++ {
				n.flushLink(model.NodeID(from), model.NodeID(to))
			}
		}
	}
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.timers.Wait() // the delay loop drains every parked send first
	close(n.delayStop)
	for _, b := range n.boxes {
		b.close()
	}
	n.wg.Wait()
	if d := n.closeDropped.Load(); d > 0 {
		log.Printf("transport: Close dropped %d undelivered message(s); the protocol was not quiesced before shutdown", d)
	}
}

// Stats implements Network.
func (n *Net) Stats() Stats {
	s := n.stats.Snapshot()
	for _, mb := range n.boxes {
		d, hw := mb.counts()
		s.Delivered += d
		if hw > s.MaxQueueDepth {
			s.MaxQueueDepth = hw
		}
	}
	s.Dropped = n.dropped.Load()
	s.Duplicated = n.duplicated.Load()
	s.PartitionDrops = n.partitionDrops.Load()
	s.CloseDropped = n.closeDropped.Load()
	s.Flushes = n.flushes.Load()
	return s
}

// Script is the deterministic network: Send parks every message in a
// pending list; the driver delivers them one at a time with Deliver*,
// running the receiving node's handler synchronously in the driver's
// goroutine. This gives a test total control over interleaving — the
// tool that makes the Table 1 replay exact.
type Script struct {
	mu       sync.Mutex
	handlers []Handler
	pending  []Message
	nextID   int
	ids      []int // parallel to pending: stable ids for selection
	stats    StatsCollector

	dropped    atomic.Int64 // messages discarded via DropWhere
	duplicated atomic.Int64 // copies injected via DuplicateIndex/DuplicateWhere
}

// NewScript builds a scripted network for n nodes.
func NewScript(n int) *Script {
	return &Script{handlers: make([]Handler, n)}
}

// Register implements Network.
func (s *Script) Register(id model.NodeID, h Handler) {
	s.handlers[id] = h
}

// Start implements Network (no-op: delivery is manual).
func (s *Script) Start() {}

// Close implements Network (no-op).
func (s *Script) Close() {}

// Stats implements Network.
func (s *Script) Stats() Stats {
	out := s.stats.Snapshot()
	out.Dropped = s.dropped.Load()
	out.Duplicated = s.duplicated.Load()
	return out
}

// Send implements Network: the message is parked until released.
func (s *Script) Send(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Count(m)
	s.pending = append(s.pending, m)
	s.ids = append(s.ids, s.nextID)
	s.nextID++
}

// Pending returns descriptions of parked messages in send order
// ("from->to #id type"), for test diagnostics.
func (s *Script) Pending() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.pending))
	for i, m := range s.pending {
		out[i] = fmt.Sprintf("%v->%v #%d %T", m.From, m.To, s.ids[i], m.Payload)
	}
	return out
}

// PendingCount returns the number of parked messages.
func (s *Script) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// DeliverWhere removes the first parked message satisfying pred and
// runs the receiver's handler synchronously. It returns false if no
// parked message matches.
func (s *Script) DeliverWhere(pred func(Message) bool) bool {
	s.mu.Lock()
	var m Message
	found := -1
	for i, cand := range s.pending {
		if pred(cand) {
			m = cand
			found = i
			break
		}
	}
	if found < 0 {
		s.mu.Unlock()
		return false
	}
	s.pending = append(s.pending[:found], s.pending[found+1:]...)
	s.ids = append(s.ids[:found], s.ids[found+1:]...)
	h := s.handlers[m.To]
	s.mu.Unlock()
	Deliver(h, m)
	return true
}

// DeliverNextTo delivers the oldest parked message addressed to node
// to. It returns false if none is parked.
func (s *Script) DeliverNextTo(to model.NodeID) bool {
	return s.DeliverWhere(func(m Message) bool { return m.To == to })
}

// DeliverAll delivers parked messages (including ones generated during
// delivery) until none remain, in FIFO order, and returns how many were
// delivered. It is the "let the dust settle" operation used between
// scripted steps.
func (s *Script) DeliverAll() int {
	n := 0
	for s.DeliverWhere(func(Message) bool { return true }) {
		n++
	}
	return n
}

// DeliverAllTo drains every parked message addressed to one node
// (FIFO), without touching others. Returns the count delivered.
func (s *Script) DeliverAllTo(to model.NodeID) int {
	n := 0
	for s.DeliverNextTo(to) {
		n++
	}
	return n
}

// DeliverIndex delivers the i-th (0-based) parked message, running the
// receiver's handler synchronously. It returns false if i is out of
// range. Combined with a seeded random index choice this lets fuzz
// tests explore arbitrary delivery orders.
func (s *Script) DeliverIndex(i int) bool {
	s.mu.Lock()
	if i < 0 || i >= len(s.pending) {
		s.mu.Unlock()
		return false
	}
	m := s.pending[i]
	s.pending = append(s.pending[:i], s.pending[i+1:]...)
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	h := s.handlers[m.To]
	s.mu.Unlock()
	Deliver(h, m)
	return true
}

// DropWhere removes the first parked message satisfying pred WITHOUT
// delivering it — a scripted message loss. It returns false if no
// parked message matches. The drop is counted in Stats.Dropped.
func (s *Script) DropWhere(pred func(Message) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, cand := range s.pending {
		if pred(cand) {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			s.dropped.Add(1)
			return true
		}
	}
	return false
}

// DuplicateIndex clones the i-th (0-based) parked message, parking the
// copy at the tail with a fresh id — a scripted duplication. It returns
// false if i is out of range. The copy is counted in Stats.Duplicated.
func (s *Script) DuplicateIndex(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.pending) {
		return false
	}
	s.pending = append(s.pending, s.pending[i])
	s.ids = append(s.ids, s.nextID)
	s.nextID++
	s.duplicated.Add(1)
	return true
}

// DuplicateWhere clones the first parked message satisfying pred,
// parking the copy at the tail. It returns false if none matches.
func (s *Script) DuplicateWhere(pred func(Message) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cand := range s.pending {
		if pred(cand) {
			s.pending = append(s.pending, cand)
			s.ids = append(s.ids, s.nextID)
			s.nextID++
			s.duplicated.Add(1)
			return true
		}
	}
	return false
}

// CountWhere returns how many parked messages satisfy pred.
func (s *Script) CountWhere(pred func(Message) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.pending {
		if pred(m) {
			n++
		}
	}
	return n
}

// HoldCount returns, per destination node, how many messages are
// parked; useful for assertions that something is in flight.
func (s *Script) HoldCount() map[model.NodeID]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[model.NodeID]int)
	for _, m := range s.pending {
		out[m.To]++
	}
	return out
}

// TypeNames returns the sorted distinct payload type names currently
// parked (diagnostics).
func (s *Script) TypeNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := make(map[string]bool)
	for _, m := range s.pending {
		set[fmt.Sprintf("%T", m.Payload)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var (
	_ Network = (*Net)(nil)
	_ Network = (*Script)(nil)
)
