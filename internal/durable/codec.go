package durable

import (
	"encoding/binary"
	"fmt"

	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/wire"
)

// WAL record tags. Every record body starts with one tag byte; the
// layouts below use the same varint conventions as internal/wire.
// Network frames are embedded verbatim as wire.AppendFrame output —
// the 4-byte big-endian length prefix makes them self-delimiting — so
// recovery re-sends byte-identical frames and the journal never needs
// a second codec for message payloads.
const (
	recEnq  = 1 // id uvarint | frame                      — command arrived
	recExec = 2 // see appendExec                          — execution effects
	recVU   = 3 // v uvarint [| part uvarint]              — vu[part] = max(vu, v)
	recVR   = 4 // v uvarint [| part uvarint]              — vr[part] = max(vr, v)
	recGC   = 5 // v uvarint [| part uvarint]              — drop part's versions < v
	recSend = 6 // frame                                   — session frame sent
	recRecv = 7 // to varint | from varint | next uvarint  — recv watermark
	recAck  = 8 // from varint | to varint | cum uvarint   — peer cumulative ack

	recCoordTerm = 9 // t uvarint — coordinator term = max(term, t)

	// Replica-group records (core.ReplJournal).
	recRepl     = 10 // part uvarint | from varint | seq uvarint | v uvarint | nops uvarint | (key | op)* — backup applied a replicated effect set
	recReplTerm = 11 // t uvarint [| part uvarint]   — replTerm[part] = max(term, t)
	recReplSeq  = 12 // seq uvarint [| part uvarint] — replSeq[part] = max(seq, s)
)

// Checkpoint blob format version. Version 2 adds the coordinator term
// after nextEnq; version 3 adds the partition count plus per-partition
// version pairs and partition-tagged counter sections; version 4 adds
// the replica-group frontiers (per-partition replication term, sent
// sequence, and per-sender applied sequence). Older blobs still decode:
// a pre-v3 blob's single version pair and counter section describe
// partition 0 (the only partition a pre-partitioning node had), and a
// v3 blob restores with zero replica frontiers (replication had never
// run when it was taken). The version-switch records likewise append
// the partition id only when it is non-zero, so unpartitioned logs are
// byte-identical to version 2's.
const (
	ckptVersion   = 4
	ckptVersionV3 = 3
	ckptVersionV2 = 2
	ckptVersionV1 = 1
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// cur is a sticky-error decode cursor over one record body or
// checkpoint blob.
type cur struct {
	b   []byte
	off int
	err error
}

func (c *cur) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cur) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail("durable: truncated record (byte at %d)", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cur) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("durable: bad uvarint at %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cur) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail("durable: bad varint at %d", c.off)
		return 0
	}
	c.off += n
	return v
}

// count reads a collection length, bounds-checked against the bytes
// remaining so corrupt input cannot provoke huge allocations.
func (c *cur) count() int {
	v := c.uvarint()
	if c.err == nil && v > uint64(len(c.b)-c.off) {
		c.fail("durable: count %d exceeds %d remaining bytes", v, len(c.b)-c.off)
		return 0
	}
	return int(v)
}

func (c *cur) str() string {
	n := c.count()
	if c.err != nil {
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// frame decodes one embedded network frame, returning both the decoded
// message and the raw frame bytes (length prefix included) for mirror
// storage.
func (c *cur) frame() (transport.Message, []byte) {
	if c.err != nil {
		return transport.Message{}, nil
	}
	if c.off+4 > len(c.b) {
		c.fail("durable: truncated frame prefix at %d", c.off)
		return transport.Message{}, nil
	}
	n := int(binary.BigEndian.Uint32(c.b[c.off:]))
	if c.off+4+n > len(c.b) {
		c.fail("durable: frame length %d exceeds remaining bytes", n)
		return transport.Message{}, nil
	}
	raw := c.b[c.off : c.off+4+n]
	m, err := wire.DecodeFrame(raw[4:])
	if err != nil {
		c.fail("durable: embedded frame: %v", err)
		return transport.Message{}, nil
	}
	c.off += 4 + n
	out := make([]byte, len(raw))
	copy(out, raw)
	return m, out
}

func (c *cur) op() model.Op {
	if c.err != nil {
		return nil
	}
	op, n, err := wire.DecodeOp(c.b[c.off:])
	if err != nil {
		c.fail("durable: embedded op: %v", err)
		return nil
	}
	c.off += n
	return op
}

func (c *cur) record() *model.Record {
	if c.err != nil {
		return nil
	}
	rec, n, err := wire.DecodeRecord(c.b[c.off:])
	if err != nil {
		c.fail("durable: embedded record: %v", err)
		return nil
	}
	c.off += n
	return rec
}
