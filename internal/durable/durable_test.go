package durable

// The crash-restart test runs a three-process cluster in one test
// binary: each "process" is a distributed-mode Cluster hosting one
// node, wired together by a hub transport that can abruptly detach a
// process (its messages blackhole, like a kill -9 severing sockets).
// Node 2 runs with full durability; the test kills it mid-workload,
// reopens its data directory, and proves the restarted node rejoins
// with exactly the state its peers hold it accountable for: all
// transactions apply exactly once, the counters quiesce, and version
// advancement completes.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
	"repro/internal/wal"
)

// hub routes messages between hubNet "processes" by endpoint id.
type hub struct {
	mu    sync.Mutex
	ports map[model.NodeID]*hubNet
}

func newHub() *hub { return &hub{ports: make(map[model.NodeID]*hubNet)} }

// detach makes every endpoint of n unreachable and discards its queue:
// the in-flight traffic of a killed process.
func (h *hub) detach(n *hubNet) {
	h.mu.Lock()
	for id, p := range h.ports {
		if p == n {
			delete(h.ports, id)
		}
	}
	h.mu.Unlock()
	n.kill()
}

// hubNet is one process's view of the hub: a transport.Network whose
// sends route through the hub to whichever process currently owns the
// destination endpoint.
type hubNet struct {
	hub *hub

	mu       sync.Mutex
	handlers map[model.NodeID]transport.Handler
	q        chan transport.Message
	killed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
}

func (h *hub) net() *hubNet {
	return &hubNet{
		hub:      h,
		handlers: make(map[model.NodeID]transport.Handler),
		q:        make(chan transport.Message, 4096),
		stop:     make(chan struct{}),
	}
}

func (n *hubNet) Register(id model.NodeID, handler transport.Handler) {
	n.mu.Lock()
	n.handlers[id] = handler
	n.mu.Unlock()
	n.hub.mu.Lock()
	n.hub.ports[id] = n
	n.hub.mu.Unlock()
}

func (n *hubNet) Send(m transport.Message) {
	n.hub.mu.Lock()
	dst := n.hub.ports[m.To]
	n.hub.mu.Unlock()
	if dst == nil {
		return // destination process is down: blackhole
	}
	select {
	case dst.q <- m:
	case <-dst.stop:
	}
}

func (n *hubNet) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-n.stop:
				return
			case m := <-n.q:
				n.mu.Lock()
				h := n.handlers[m.To]
				killed := n.killed
				n.mu.Unlock()
				if h != nil && !killed {
					h(m)
				}
			}
		}
	}()
}

func (n *hubNet) kill() {
	n.mu.Lock()
	n.killed = true
	n.mu.Unlock()
	n.Close()
}

func (n *hubNet) Close() {
	n.mu.Lock()
	select {
	case <-n.stop:
		n.mu.Unlock()
		return
	default:
	}
	close(n.stop)
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *hubNet) Stats() transport.Stats { return transport.Stats{} }

const testNodes = 3

func accountKey(i int) string { return fmt.Sprintf("acct%d", i) }

// proc is one simulated process: a single-node cluster, optionally
// durable.
type proc struct {
	id      int
	net     *hubNet
	cluster *core.Cluster
	db      *DB
}

// startProc boots node id in its own "process". A non-empty dataDir
// makes it durable: on a fresh directory the node preloads its account
// and takes the initial anchoring checkpoint; on a recovered directory
// it restores instead.
func startProc(t *testing.T, h *hub, id int, dataDir string) *proc {
	t.Helper()
	p := &proc{id: id, net: h.net()}
	cfg := core.Config{
		Nodes:            testNodes,
		LocalNodes:       []int{id},
		LocalCoordinator: id == 0,
		Workers:          2,
		Transport:        p.net,
		Reliable:         true,
		ReliableConfig: reliable.Config{
			RetransmitInterval: 2 * time.Millisecond,
			MaxBackoff:         20 * time.Millisecond,
		},
		PollInterval:   200 * time.Microsecond,
		AckTimeout:     20 * time.Second,
		ResendInterval: 20 * time.Millisecond,
	}

	var restore *core.NodeRestore
	if dataDir != "" {
		db, rest, sess, err := Open(Options{
			Dir:                dataDir,
			Self:               model.NodeID(id),
			Nodes:              testNodes,
			Fsync:              wal.FsyncAlways,
			CheckpointInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("durable.Open: %v", err)
		}
		p.db = db
		restore = rest
		cfg.Journal = db
		cfg.Restore = rest
		cfg.ReliableConfig.Journal = db
		cfg.ReliableConfig.Gate = db.Gate()
		cfg.ReliableConfig.Restore = sess
	}

	cluster, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster(node %d): %v", id, err)
	}
	p.cluster = cluster
	if p.db != nil {
		p.db.Bind(cluster.Node(id), cluster.Session())
	}
	if restore == nil {
		cluster.Preload(model.NodeID(id), accountKey(id), model.NewRecord())
		if p.db != nil {
			// Anchor the log before any traffic: every later record
			// replays on top of a checkpoint that includes the preload.
			if err := p.db.Checkpoint(); err != nil {
				t.Fatalf("initial checkpoint: %v", err)
			}
		}
	}
	cluster.Start()
	return p
}

// submitBatch launches count all-node increment transactions from p
// (each adds 1 to every account) and returns the handles.
func submitBatch(t *testing.T, p *proc, count int) []*core.Handle {
	t.Helper()
	handles := make([]*core.Handle, 0, count)
	for i := 0; i < count; i++ {
		root := &model.SubtxnSpec{
			Node:    model.NodeID(p.id),
			Updates: []model.KeyOp{{Key: accountKey(p.id), Op: model.AddOp{Field: "bal", Delta: 1}}},
		}
		for j := 0; j < testNodes; j++ {
			if j != p.id {
				root.Children = append(root.Children, &model.SubtxnSpec{
					Node:    model.NodeID(j),
					Updates: []model.KeyOp{{Key: accountKey(j), Op: model.AddOp{Field: "bal", Delta: 1}}},
				})
			}
		}
		h, err := p.cluster.Submit(&model.TxnSpec{Label: fmt.Sprintf("t%d", i), Root: root})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		handles = append(handles, h)
	}
	return handles
}

func waitAll(t *testing.T, handles []*core.Handle) {
	t.Helper()
	for _, h := range handles {
		if !h.WaitTimeout(30 * time.Second) {
			t.Fatalf("transaction %v never completed", h.ID)
		}
	}
}

func balance(t *testing.T, p *proc) int64 {
	t.Helper()
	rec, _, ok := p.cluster.Node(p.id).Store().ReadMax(accountKey(p.id), model.Version(1)<<50)
	if !ok {
		t.Fatalf("node %d: account missing", p.id)
	}
	return rec.Field("bal")
}

// TestCrashRestartRecovers is the end-to-end durability property: a
// node killed mid-workload and restarted from its data directory loses
// nothing its peers could have observed an acknowledgement for, applies
// nothing twice, and the cluster afterwards completes version
// advancement with every account in exact agreement.
func TestCrashRestartRecovers(t *testing.T) {
	h := newHub()
	dir := t.TempDir()

	p0 := startProc(t, h, 0, "")
	p1 := startProc(t, h, 1, "")
	p2 := startProc(t, h, 2, dir)
	defer p0.cluster.Close()
	defer p1.cluster.Close()

	// Phase A: a settled batch plus one advancement cycle, so the kill
	// hits a node with real history (counter rows, version 2 traffic,
	// background checkpoints).
	waitAll(t, submitBatch(t, p0, 40))
	if rep := p0.cluster.Advance(); rep.Err != nil {
		t.Fatalf("advance before crash: %v", rep.Err)
	}

	// Phase B: kill node 2 while this batch is in flight. Roots run on
	// node 0, so the handles all complete; the children headed for node
	// 2 are in every possible state — acked and durable, delivered but
	// unacked, on the wire, not yet sent.
	batchB := submitBatch(t, p0, 40)
	time.Sleep(5 * time.Millisecond)
	h.detach(p2.net)   // sever the process: in-flight traffic drops
	p2.db.Close()      // the disk stops moving at the moment of death
	p2.cluster.Close() // reap the orphaned goroutines
	waitAll(t, batchB)

	// Phase C: restart node 2 from its directory and finish the
	// workload. Recovery must hand back a state the peers' sessions
	// agree with: retransmitted children dedup, journaled-but-unexecuted
	// commands re-run, and the coordinator resyncs the node's versions.
	p2 = startProc(t, h, 2, dir)
	defer p2.cluster.Close()
	if p2.db == nil {
		t.Fatal("restart did not recover a durable state")
	}
	waitAll(t, submitBatch(t, p0, 40))

	// Advancement completing proves the R/C counters balanced across
	// the crash: nothing acknowledged was lost, nothing applied twice —
	// otherwise quiescence would never be detected (or be detected
	// early, failing the balance check below).
	for i := 0; i < 2; i++ {
		if rep := p0.cluster.Advance(); rep.Err != nil {
			t.Fatalf("advance %d after restart: %v", i, rep.Err)
		}
	}

	const want = 120 // 3 batches x 40 txns, each +1 on every account
	deadline := time.Now().Add(30 * time.Second)
	for {
		b0, b1, b2 := balance(t, p0), balance(t, p1), balance(t, p2)
		if b0 == want && b1 == want && b2 == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balances never converged: node0=%d node1=%d node2=%d want %d", b0, b1, b2, want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The restarted node's versions caught up with the cluster.
	vr0, vu0 := p0.cluster.Node(0).Versions()
	vr2, vu2 := p2.cluster.Node(2).Versions()
	if vr0 != vr2 || vu0 != vu2 {
		t.Fatalf("restarted node versions (vr=%d,vu=%d) != cluster (vr=%d,vu=%d)", vr2, vu2, vr0, vu0)
	}

	if errs := p2.cluster.ConvergenceErrors(); len(errs) > 0 {
		t.Fatalf("convergence errors on restarted node: %v", errs)
	}
}

// TestRestartIdempotent restarts a cleanly checkpointed node twice with
// no intervening traffic: recovery must be a fixed point.
func TestRestartIdempotent(t *testing.T) {
	h := newHub()
	dir := t.TempDir()

	p0 := startProc(t, h, 0, "")
	p1 := startProc(t, h, 1, "")
	p2 := startProc(t, h, 2, dir)
	defer p0.cluster.Close()
	defer p1.cluster.Close()

	waitAll(t, submitBatch(t, p0, 25))
	if rep := p0.cluster.Advance(); rep.Err != nil {
		t.Fatalf("advance: %v", rep.Err)
	}

	for i := 0; i < 2; i++ {
		if err := p2.db.Checkpoint(); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		h.detach(p2.net)
		p2.db.Close()
		p2.cluster.Close()
		p2 = startProc(t, h, 2, dir)
		if got := balance(t, p2); got != 25 {
			t.Fatalf("restart %d: balance %d, want 25", i, got)
		}
	}
	defer p2.cluster.Close()

	waitAll(t, submitBatch(t, p0, 5))
	if rep := p0.cluster.Advance(); rep.Err != nil {
		t.Fatalf("advance after double restart: %v", rep.Err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for balance(t, p2) != 30 {
		if time.Now().After(deadline) {
			t.Fatalf("balance %d never reached 30", balance(t, p2))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
