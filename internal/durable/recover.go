package durable

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Open initializes a node's durability layer from its data directory.
//
// With no usable checkpoint the directory is treated as a fresh start:
// restore and session state are nil, and the caller is expected to
// preload initial data and take the first checkpoint before serving
// traffic (so every later WAL record is anchored by a checkpoint).
//
// With a checkpoint, Open decodes it, replays every WAL record at or
// after its anchor segment on top, plugs any sequence holes left by a
// crash between Prepare and commit with NoopMsg frames, and returns the
// rebuilt node state plus the session link state to reinstall.
func Open(opts Options) (*DB, *core.NodeRestore, *reliable.SessionState, error) {
	opts = opts.withDefaults()
	db := &DB{
		opts:      opts,
		pending:   make(map[uint64]pendingCmd),
		nextEnq:   1,
		send:      make(map[link]*sendMirror),
		recv:      make(map[link]uint64),
		stop:      make(chan struct{}),
		replTerms: make([]uint64, opts.Partitions),
		replSeqs:  make([]uint64, opts.Partitions),
	}
	db.replApplied = make([][]uint64, opts.Partitions)
	for p := range db.replApplied {
		db.replApplied[p] = make([]uint64, opts.Nodes)
	}

	seg, blob, found, err := wal.LoadCheckpoint(opts.Dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var restore *core.NodeRestore
	var sess *reliable.SessionState
	if found {
		restore, sess, err = db.recover(seg, blob)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	db.log, err = wal.Open(wal.Options{
		Dir:           opts.Dir,
		Fsync:         opts.Fsync,
		FsyncInterval: opts.FsyncInterval,
		SegmentBytes:  opts.SegmentBytes,
		Obs:           opts.Obs,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return db, restore, sess, nil
}

// replayState accumulates recovery: checkpoint state first, then WAL
// records applied on top in log order. Version pairs and counter
// tables are per partition (index 0 is the only entry when the node is
// unpartitioned).
type replayState struct {
	store     *storage.Store
	cnts      []*counters.Table
	vrs, vus  []model.Version
	nextEnq   uint64
	coordTerm uint64
	pending   map[uint64]pendingCmd
	send      map[link]*sendMirror
	recv      map[link]uint64

	// Replica-group frontiers, per partition (see DB's fields).
	replTerms   []uint64
	replSeqs    []uint64
	replApplied [][]uint64
}

// part clamps a decoded partition id into the replay arrays (a record
// for a partition this process was not configured with lands in 0
// rather than panicking; the cluster restore revalidates anyway).
func (rs *replayState) part(p int) int {
	if p < 0 || p >= len(rs.cnts) {
		return 0
	}
	return p
}

func (db *DB) recover(anchor uint64, blob []byte) (*core.NodeRestore, *reliable.SessionState, error) {
	rs, err := db.decodeCheckpoint(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: checkpoint: %w", err)
	}
	if err := wal.Replay(db.opts.Dir, anchor, func(body []byte) error {
		return db.apply(rs, body)
	}); err != nil {
		return nil, nil, fmt.Errorf("durable: replay: %w", err)
	}

	// Plug sequence holes: a crash between Prepare and the execution
	// record's barrier burned sequence numbers without journaling their
	// frames. Holes below a journaled (committed) frame would wedge the
	// receiver's in-order delivery forever, so recovery synthesizes
	// NoopMsg frames for them — the receiver consumes the seq and
	// delivers nothing. Holes above every journaled frame need no
	// filler: nextSeq restores to the highest journaled seq, so the
	// next live send simply reuses the hole's number.
	for k, sm := range rs.send {
		maxCommitted := sm.ackedTo
		for seq := range sm.unacked {
			if seq > maxCommitted {
				maxCommitted = seq
			}
		}
		for seq := sm.ackedTo + 1; seq <= maxCommitted; seq++ {
			if _, ok := sm.unacked[seq]; ok {
				continue
			}
			fb, err := wire.AppendFrame(nil, transport.Message{
				From: k.from, To: k.to,
				Payload: reliable.DataMsg{Seq: seq, Payload: reliable.NoopMsg{}},
			})
			if err != nil {
				return nil, nil, err
			}
			sm.unacked[seq] = fb
		}
		if sm.nextSeq < maxCommitted {
			sm.nextSeq = maxCommitted
		}
	}

	// Adopt the rebuilt journal state as the live state.
	db.pending = rs.pending
	db.nextEnq = rs.nextEnq
	db.coordTerm = rs.coordTerm
	db.send = rs.send
	db.recv = rs.recv
	db.replTerms = rs.replTerms
	db.replSeqs = rs.replSeqs
	db.replApplied = rs.replApplied

	restore := &core.NodeRestore{
		Store:       rs.store,
		Counters:    rs.cnts[0],
		VR:          rs.vrs[0],
		VU:          rs.vus[0],
		NextEnq:     rs.nextEnq,
		CoordTerm:   rs.coordTerm,
		ReplTerms:   rs.replTerms,
		ReplSeqs:    rs.replSeqs,
		ReplApplied: rs.replApplied,
	}
	if len(rs.cnts) > 1 {
		restore.PartCounters = rs.cnts
		restore.PartVR = rs.vrs
		restore.PartVU = rs.vus
	}
	ids := make([]uint64, 0, len(rs.pending))
	for id := range rs.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := rs.pending[id]
		restore.Pending = append(restore.Pending, core.PendingSubtxn{EnqID: id, From: p.from, Msg: p.msg})
	}

	sess := &reliable.SessionState{}
	for k, sm := range rs.send {
		ls := reliable.LinkSendState{From: k.from, To: k.to, NextSeq: sm.nextSeq}
		seqs := make([]uint64, 0, len(sm.unacked))
		for s := range sm.unacked {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			raw := sm.unacked[s]
			m, err := wire.DecodeFrame(raw[4:])
			if err != nil {
				return nil, nil, fmt.Errorf("durable: mirrored frame: %w", err)
			}
			ls.Unacked = append(ls.Unacked, m)
		}
		sess.Send = append(sess.Send, ls)
	}
	for k, next := range rs.recv {
		sess.Recv = append(sess.Recv, reliable.LinkRecvState{To: k.to, From: k.from, NextExpected: next})
	}
	return restore, sess, nil
}

func (db *DB) decodeCheckpoint(blob []byte) (*replayState, error) {
	c := &cur{b: blob}
	ver := c.byte()
	if c.err == nil && ver != ckptVersion && ver != ckptVersionV3 && ver != ckptVersionV2 && ver != ckptVersionV1 {
		return nil, fmt.Errorf("unsupported blob version %d", ver)
	}
	self := model.NodeID(c.varint())
	n := c.count()
	if c.err == nil && (self != db.opts.Self || n != db.opts.Nodes) {
		return nil, fmt.Errorf("checkpoint is for node %d of %d, this process is node %d of %d",
			self, n, db.opts.Self, db.opts.Nodes)
	}
	rs := &replayState{
		store:   storage.New(),
		pending: make(map[uint64]pendingCmd),
		send:    make(map[link]*sendMirror),
		recv:    make(map[link]uint64),
	}
	legacyVR := model.Version(c.uvarint())
	legacyVU := model.Version(c.uvarint())
	rs.nextEnq = c.uvarint()
	if ver >= ckptVersionV2 {
		rs.coordTerm = c.uvarint()
	}
	// Version 3 carries the partition count and every partition's
	// version pair; older blobs describe a single partition.
	nparts := 1
	if ver >= ckptVersionV3 {
		nparts = c.count()
		if c.err == nil && nparts != db.opts.Partitions {
			return nil, fmt.Errorf("checkpoint has %d partitions, this process is configured with %d",
				nparts, db.opts.Partitions)
		}
	} else if db.opts.Partitions != 1 {
		return nil, fmt.Errorf("checkpoint predates partitioning, this process is configured with %d partitions",
			db.opts.Partitions)
	}
	if c.err != nil {
		return nil, c.err
	}
	rs.cnts = make([]*counters.Table, nparts)
	rs.vrs = make([]model.Version, nparts)
	rs.vus = make([]model.Version, nparts)
	for p := range rs.cnts {
		rs.cnts[p] = counters.NewTable(db.opts.Self, db.opts.Nodes)
	}
	rs.vrs[0], rs.vus[0] = legacyVR, legacyVU
	if ver >= ckptVersionV3 {
		for p := 0; p < nparts && c.err == nil; p++ {
			rs.vrs[p] = model.Version(c.uvarint())
			rs.vus[p] = model.Version(c.uvarint())
		}
	}
	// Version 4: replica-group frontiers (pre-v4 blobs restore zeros —
	// replication had never run when they were taken).
	rs.replTerms = make([]uint64, nparts)
	rs.replSeqs = make([]uint64, nparts)
	rs.replApplied = make([][]uint64, nparts)
	for p := range rs.replApplied {
		rs.replApplied[p] = make([]uint64, db.opts.Nodes)
	}
	if ver >= ckptVersion {
		for p := 0; p < nparts && c.err == nil; p++ {
			rs.replTerms[p] = c.uvarint()
			rs.replSeqs[p] = c.uvarint()
			for q := 0; q < db.opts.Nodes && c.err == nil; q++ {
				rs.replApplied[p][q] = c.uvarint()
			}
		}
	}

	var items []storage.ExportedItem
	for s, nShards := 0, c.count(); s < nShards && c.err == nil; s++ {
		for i, nItems := 0, c.count(); i < nItems && c.err == nil; i++ {
			it := storage.ExportedItem{Key: c.str()}
			for v, nVers := 0, c.count(); v < nVers && c.err == nil; v++ {
				ver := model.Version(c.uvarint())
				it.Versions = append(it.Versions, storage.ExportedVersion{Ver: ver, Rec: c.record()})
			}
			items = append(items, it)
		}
	}
	if c.err == nil {
		rs.store.Import(items)
	}

	for p := 0; p < nparts && c.err == nil; p++ {
		for i, nVers := 0, c.count(); i < nVers && c.err == nil; i++ {
			ver := model.Version(c.uvarint())
			rRow := make([]int64, db.opts.Nodes)
			cRow := make([]int64, db.opts.Nodes)
			for j := range rRow {
				rRow[j] = c.varint()
			}
			for j := range cRow {
				cRow[j] = c.varint()
			}
			rs.cnts[p].RestoreRow(ver, rRow, cRow)
		}
	}

	for i, nPend := 0, c.count(); i < nPend && c.err == nil; i++ {
		id := c.uvarint()
		m, _ := c.frame()
		if c.err != nil {
			break
		}
		sub, ok := m.Payload.(core.SubtxnMsg)
		if !ok {
			return nil, fmt.Errorf("pending command %d is %T, not a subtransaction", id, m.Payload)
		}
		rs.pending[id] = pendingCmd{from: m.From, msg: sub}
	}

	for i, nSend := 0, c.count(); i < nSend && c.err == nil; i++ {
		k := link{from: model.NodeID(c.varint()), to: model.NodeID(c.varint())}
		sm := &sendMirror{unacked: make(map[uint64][]byte)}
		sm.nextSeq = c.uvarint()
		sm.ackedTo = c.uvarint()
		for j, nUn := 0, c.count(); j < nUn && c.err == nil; j++ {
			m, raw := c.frame()
			if c.err != nil {
				break
			}
			d, ok := m.Payload.(reliable.DataMsg)
			if !ok {
				return nil, fmt.Errorf("mirrored frame on link %d->%d is %T, not a data frame", k.from, k.to, m.Payload)
			}
			sm.unacked[d.Seq] = raw
		}
		rs.send[k] = sm
	}

	for i, nRecv := 0, c.count(); i < nRecv && c.err == nil; i++ {
		to := model.NodeID(c.varint())
		from := model.NodeID(c.varint())
		rs.recv[link{from: from, to: to}] = c.uvarint()
	}
	return rs, c.err
}

// apply folds one WAL record into the replay state. Order-independence
// of racing effect records is argued in the package comment.
func (db *DB) apply(rs *replayState, body []byte) error {
	if len(body) == 0 {
		return fmt.Errorf("empty record")
	}
	c := &cur{b: body[1:]}
	switch tag := body[0]; tag {
	case recEnq:
		id := c.uvarint()
		m, _ := c.frame()
		if c.err != nil {
			return c.err
		}
		sub, ok := m.Payload.(core.SubtxnMsg)
		if !ok {
			return fmt.Errorf("enq %d payload is %T", id, m.Payload)
		}
		rs.pending[id] = pendingCmd{from: m.From, msg: sub}
		if id >= rs.nextEnq {
			rs.nextEnq = id + 1
		}

	case recExec:
		enqID := c.uvarint()
		_ = model.TxnID(c.uvarint())
		from := model.NodeID(c.varint())
		ver := model.Version(c.uvarint())
		root := c.byte() == 1
		readOnly := c.byte() == 1
		type appliedOp struct {
			key string
			op  model.Op
		}
		var ops []appliedOp
		for i, n := 0, c.count(); i < n && c.err == nil; i++ {
			ops = append(ops, appliedOp{key: c.str(), op: c.op()})
		}
		var incR []model.NodeID
		for i, n := 0, c.count(); i < n && c.err == nil; i++ {
			incR = append(incR, model.NodeID(c.varint()))
		}
		type outFrame struct {
			m   transport.Message
			raw []byte
		}
		var out []outFrame
		for i, n := 0, c.count(); i < n && c.err == nil; i++ {
			m, raw := c.frame()
			out = append(out, outFrame{m: m, raw: raw})
		}
		type localCmd struct {
			id  uint64
			msg core.SubtxnMsg
		}
		var locals []localCmd
		for i, n := 0, c.count(); i < n && c.err == nil; i++ {
			id := c.uvarint()
			m, _ := c.frame()
			if c.err != nil {
				break
			}
			sub, ok := m.Payload.(core.SubtxnMsg)
			if !ok {
				return fmt.Errorf("exec local child is %T", m.Payload)
			}
			locals = append(locals, localCmd{id: id, msg: sub})
		}
		part := 0
		if c.err == nil && c.off < len(c.b) {
			part = rs.part(int(c.uvarint()))
		}
		if c.err != nil {
			return c.err
		}

		delete(rs.pending, enqID)
		// A non-root update execution implies the Step 2 implicit
		// advancement notification the node performed before executing.
		if !root && !readOnly && ver > rs.vus[part] {
			rs.vus[part] = ver
		}
		for _, ap := range ops {
			rs.store.EnsureVersion(ap.key, ver)
			rs.store.ApplyFrom(ap.key, ver, ap.op)
		}
		for _, to := range incR {
			rs.cnts[part].IncR(ver, to)
		}
		rs.cnts[part].IncC(ver, from)
		for _, f := range out {
			mirrorAdd(rs.send, f.m, f.raw)
		}
		for _, lc := range locals {
			rs.pending[lc.id] = pendingCmd{from: db.opts.Self, msg: lc.msg}
			if lc.id >= rs.nextEnq {
				rs.nextEnq = lc.id + 1
			}
		}

	case recVU:
		v := model.Version(c.uvarint())
		part := rs.optPart(c)
		if c.err == nil {
			if v > rs.vus[part] {
				rs.vus[part] = v
			}
			rs.cnts[part].EnsureVersion(v)
		}
	case recVR:
		v := model.Version(c.uvarint())
		part := rs.optPart(c)
		if c.err == nil && v > rs.vrs[part] {
			rs.vrs[part] = v
		}
	case recGC:
		v := model.Version(c.uvarint())
		part := rs.optPart(c)
		if c.err == nil {
			rs.store.GCFunc(v, db.gcPred(part))
			rs.cnts[part].DropBelow(v)
		}
	case recCoordTerm:
		if t := c.uvarint(); c.err == nil && t > rs.coordTerm {
			rs.coordTerm = t
		}

	case recRepl:
		part := rs.part(int(c.uvarint()))
		from := int(c.varint())
		seq := c.uvarint()
		ver := model.Version(c.uvarint())
		type appliedOp struct {
			key string
			op  model.Op
		}
		var ops []appliedOp
		for i, n := 0, c.count(); i < n && c.err == nil; i++ {
			ops = append(ops, appliedOp{key: c.str(), op: c.op()})
		}
		if c.err != nil {
			return c.err
		}
		// A replicated apply implies the same implicit vu advancement a
		// non-root update execution does (the primary executed at ver).
		if ver > rs.vus[part] {
			rs.vus[part] = ver
		}
		for _, ap := range ops {
			rs.store.EnsureVersion(ap.key, ver)
			rs.store.ApplyFrom(ap.key, ver, ap.op)
		}
		if from >= 0 && from < len(rs.replApplied[part]) && seq > rs.replApplied[part][from] {
			rs.replApplied[part][from] = seq
		}
	case recReplTerm:
		t := c.uvarint()
		part := rs.optPart(c)
		if c.err == nil && t > rs.replTerms[part] {
			rs.replTerms[part] = t
		}
	case recReplSeq:
		seq := c.uvarint()
		part := rs.optPart(c)
		if c.err == nil && seq > rs.replSeqs[part] {
			rs.replSeqs[part] = seq
		}

	case recSend:
		m, raw := c.frame()
		if c.err != nil {
			return c.err
		}
		mirrorAdd(rs.send, m, raw)
	case recRecv:
		to := model.NodeID(c.varint())
		from := model.NodeID(c.varint())
		next := c.uvarint()
		if c.err == nil {
			rs.recv[link{from: from, to: to}] = next
		}
	case recAck:
		from := model.NodeID(c.varint())
		to := model.NodeID(c.varint())
		cum := c.uvarint()
		if c.err == nil {
			if sm := rs.send[link{from: from, to: to}]; sm != nil {
				if cum > sm.ackedTo {
					sm.ackedTo = cum
				}
				for seq := range sm.unacked {
					if seq <= cum {
						delete(sm.unacked, seq)
					}
				}
			}
		}

	default:
		return fmt.Errorf("unknown record tag %d", tag)
	}
	return c.err
}

// optPart reads a record's optional trailing partition id (absent on
// partition-0 and pre-partitioning records).
func (rs *replayState) optPart(c *cur) int {
	if c.err != nil || c.off >= len(c.b) {
		return 0
	}
	return rs.part(int(c.uvarint()))
}

// gcPred returns the key predicate scoping a GC replay to one
// partition, rebuilt from the same deterministic placement the cluster
// uses; nil (collect everything) when unpartitioned.
func (db *DB) gcPred(part int) func(string) bool {
	if db.opts.Partitions <= 1 {
		return nil
	}
	pmap := partition.NewMap(db.opts.Partitions, db.opts.Nodes)
	return func(key string) bool { return pmap.Of(key) == part }
}

// mirrorAdd is the replay-side twin of DB.mirrorAddLocked.
func mirrorAdd(send map[link]*sendMirror, m transport.Message, raw []byte) {
	d, ok := m.Payload.(reliable.DataMsg)
	if !ok {
		return
	}
	k := link{from: m.From, to: m.To}
	sm := send[k]
	if sm == nil {
		sm = &sendMirror{unacked: make(map[uint64][]byte)}
		send[k] = sm
	}
	if d.Seq > sm.nextSeq {
		sm.nextSeq = d.Seq
	}
	if d.Seq > sm.ackedTo {
		sm.unacked[d.Seq] = raw
	}
}
