// Package durable is the crash-durability layer for a single 3V node
// process: a write-ahead log of protocol effects, periodic checkpoints
// of the full node state, and startup recovery that rebuilds a crashed
// node so it rejoins the cluster with exactly the state its peers
// already hold it accountable for.
//
// It sits between two seams that were designed for it:
//
//   - core.Journal — the node describes every arrived command (Enq),
//     every executed subtransaction's complete effect set (Exec), and
//     every version switch (VersionUpdate/VersionRead/GC);
//   - reliable.Journal — the session layer describes every sequenced
//     frame before it is transmitted (NoteSend), every in-order
//     delivery watermark before it is acknowledged (NoteRecv), and
//     every peer acknowledgement (NoteAck).
//
// The invariant is "nothing acknowledged is ever lost": any effect a
// peer (or client) could have observed an acknowledgement for is
// durable before that acknowledgement leaves the process. The converse
// is deliberately weak — effects that were never acknowledged may be
// lost, and the reliable session's retransmission plus receiver dedup
// absorb the difference.
//
// # Consistency of log, mirrors, and checkpoints
//
// Every mutation pairs a WAL append with an update of the DB's
// in-memory mirror state (pending commands, per-link send frames and
// receive watermarks) atomically under one mutex. A checkpoint takes
// the same mutex inside a full freeze (dispatch gate + worker barrier),
// rotates the log to a fresh anchor segment, and snapshots node state
// and mirrors together. Every effect is therefore either inside the
// checkpoint blob or in a record at or after the anchor — never both
// lost, never applied twice out of order.
//
// Replaying effect records in WAL order is correct even though the
// order can differ from the original latch order: concurrent
// subtransactions only ever race commuting ops, and the generalized
// dual write applies each op to every version >= v, so both
// interleavings produce identical version chains (the same stability
// argument as the paper's Section 4 counters).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/reliable"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Options parameterizes a node's durability layer.
type Options struct {
	// Dir is the node's data directory (WAL segments + checkpoints).
	Dir string
	// Self is the node id this journal serves; Nodes the cluster size.
	Self  model.NodeID
	Nodes int
	// Partitions is the cluster's partition count (core.Config.Partitions);
	// 0 or 1 means unpartitioned. Checkpoints carry one version pair and
	// one counter section per partition, and recovery restores them all.
	Partitions int
	// Fsync, FsyncInterval and SegmentBytes pass through to wal.Options.
	Fsync         wal.Policy
	FsyncInterval time.Duration
	SegmentBytes  int64
	// CheckpointInterval spaces background checkpoints once
	// StartCheckpoints is called; 0 means 2s.
	CheckpointInterval time.Duration
	// Obs, when non-nil, receives WAL latency and size observations.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 2 * time.Second
	}
	if o.Partitions < 1 {
		o.Partitions = 1
	}
	return o
}

// link identifies one directed session link.
type link struct{ from, to model.NodeID }

// sendMirror is the durability layer's own copy of one send link's
// state. It deliberately does not reuse reliable.Session's tracking:
// the coordinator endpoint co-located with node 0 sends outside the
// dispatch gate, so the session's live state cannot be snapshotted
// race-free — but this mirror can, because every mutation happens
// under the DB mutex together with its WAL append.
type sendMirror struct {
	nextSeq uint64            // highest sequence number journaled
	ackedTo uint64            // highest cumulative ack journaled
	unacked map[uint64][]byte // seq -> full frame bytes (prefix included)
}

// pendingCmd is a journaled-but-unexecuted subtransaction command.
type pendingCmd struct {
	from model.NodeID
	msg  core.SubtxnMsg
}

// DB is one node's durability state. It implements both core.Journal
// and reliable.Journal; wire it into core.Config.Journal,
// reliable.Config.Journal and reliable.Config.Gate, then Bind the
// started node and session for checkpointing.
type DB struct {
	opts Options
	log  *wal.Log

	// gate is installed as the reliable session's dispatch gate:
	// checkpoints take it exclusively so no inbound frame can advance a
	// watermark mid-snapshot.
	gate sync.RWMutex

	// mu guards everything below plus the pairing of WAL appends with
	// mirror updates (see the package comment).
	mu        sync.Mutex
	pending   map[uint64]pendingCmd
	nextEnq   uint64
	coordTerm uint64 // highest coordinator term fenced (monotonic)
	send      map[link]*sendMirror
	recv      map[link]uint64 // (to, from) -> nextExpected
	buf       []byte          // scratch encode buffer

	// Replica-group frontiers (core.ReplJournal), all monotonic:
	// replTerms[p] is the partition's highest journaled replication
	// lease term, replSeqs[p] the highest replication seq this node sent
	// as a primary, replApplied[p][from] the highest seq applied from
	// sender from's stream as a backup.
	replTerms   []uint64
	replSeqs    []uint64
	replApplied [][]uint64

	node    *core.Node
	session *reliable.Session

	ckptMu sync.Mutex // serializes Checkpoint callers
	stop   chan struct{}
	wg     sync.WaitGroup
}

// The DB is both durability seams at once.
var (
	_ core.Journal      = (*DB)(nil)
	_ core.ChunkJournal = (*DB)(nil)
	_ core.TermJournal  = (*DB)(nil)
	_ core.ReplJournal  = (*DB)(nil)
	_ reliable.Journal  = (*DB)(nil)
)

// must is the journal's error policy: a durability failure mid-flight
// leaves no safe way to keep acknowledging work, so it panics (crash
// and recover from the log written so far). ErrClosed is tolerated —
// it only occurs during shutdown, after the cluster has stopped
// acknowledging.
func (db *DB) must(err error) {
	if err != nil && !errors.Is(err, wal.ErrClosed) {
		panic(fmt.Sprintf("durable: write-ahead log failure: %v", err))
	}
}

// Bind attaches the started node and session so checkpoints can freeze
// and snapshot them. Call after core.NewCluster, before any traffic.
func (db *DB) Bind(node *core.Node, session *reliable.Session) {
	db.node = node
	db.session = session
}

// Gate returns the dispatch gate to install as reliable.Config.Gate.
func (db *DB) Gate() interface {
	RLock()
	RUnlock()
} {
	return &db.gate
}

// ---------------------------------------------------------------------
// core.Journal
// ---------------------------------------------------------------------

// Enq journals an arrived subtransaction command and returns its id.
// No explicit barrier: commands arriving over the session are covered
// by NoteRecv's barrier before the frame is acknowledged, and locally
// submitted roots are pre-acknowledgement by definition.
func (db *DB) Enq(from model.NodeID, msg core.SubtxnMsg) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.nextEnq
	db.nextEnq++
	frame, err := wire.AppendFrame(nil, transport.Message{From: from, To: db.opts.Self, Payload: msg})
	db.must(err)
	db.buf = append(db.buf[:0], recEnq)
	db.buf = binary.AppendUvarint(db.buf, id)
	db.buf = append(db.buf, frame...)
	_, err = db.log.Append(db.buf)
	db.must(err)
	db.pending[id] = pendingCmd{from: from, msg: msg}
	return id
}

// Exec journals one execution's complete effect set together with the
// exact child frames it spawns, makes the record durable, and only then
// releases the frames to the wire. Child frames get their sequence
// numbers from Session.Prepare, so recovery re-sends byte-identical
// frames and receivers dedup by seq. Returns one freshly assigned
// pending id per rec.Local entry.
func (db *DB) Exec(rec core.ExecRecord, outbox []transport.Message) []uint64 {
	// Sequence numbers are allocated outside db.mu (per-link mutexes).
	// Two racing Execs on one link can journal in the opposite order of
	// their seq allocation; a crash in the window leaves a sequence
	// hole, which recovery plugs with a NoopMsg frame.
	prepared := make([]reliable.PreparedSend, len(outbox))
	for i, m := range outbox {
		prepared[i] = db.session.Prepare(m)
	}

	db.mu.Lock()
	ids := db.appendExecLocked(rec, prepared)
	db.mu.Unlock()

	// Durability barrier, then transmission: the record (and therefore
	// every frame below) is stable before the first byte reaches a peer.
	db.must(db.log.Barrier())
	db.session.CommitPrepared(prepared)
	return ids
}

// ExecChunk implements core.ChunkJournal: the whole chunk's records
// and child frames become durable under one log barrier, then every
// member's frames are released. Per-link frame order still follows
// Prepare order, so receivers see the same sequences as N separate
// Execs would have produced.
func (db *DB) ExecChunk(recs []core.ExecRecord, outboxes [][]transport.Message) [][]uint64 {
	prepared := make([][]reliable.PreparedSend, len(recs))
	for i, outbox := range outboxes {
		prepared[i] = make([]reliable.PreparedSend, len(outbox))
		for j, m := range outbox {
			prepared[i][j] = db.session.Prepare(m)
		}
	}

	db.mu.Lock()
	idss := make([][]uint64, len(recs))
	for i := range recs {
		idss[i] = db.appendExecLocked(recs[i], prepared[i])
	}
	db.mu.Unlock()

	// One barrier covers the chunk; nothing was acknowledged (no child
	// frame sent, no completion reported) before this point.
	db.must(db.log.Barrier())
	for _, p := range prepared {
		db.session.CommitPrepared(p)
	}
	return idss
}

// appendExecLocked journals one execution record (no barrier) and
// updates the pending set and send mirrors. Caller holds db.mu.
func (db *DB) appendExecLocked(rec core.ExecRecord, prepared []reliable.PreparedSend) []uint64 {
	ids := make([]uint64, len(rec.Local))
	for i := range rec.Local {
		ids[i] = db.nextEnq
		db.nextEnq++
	}

	db.buf = append(db.buf[:0], recExec)
	db.buf = binary.AppendUvarint(db.buf, rec.EnqID)
	db.buf = binary.AppendUvarint(db.buf, uint64(rec.Txn))
	db.buf = binary.AppendVarint(db.buf, int64(rec.From))
	db.buf = binary.AppendUvarint(db.buf, uint64(rec.Version))
	db.buf = append(db.buf, b2u8(rec.Root), b2u8(rec.ReadOnly))
	db.buf = binary.AppendUvarint(db.buf, uint64(len(rec.Ops)))
	for _, ap := range rec.Ops {
		db.buf = appendString(db.buf, ap.Key)
		var err error
		db.buf, err = wire.AppendOp(db.buf, ap.Op)
		db.must(err)
	}
	db.buf = binary.AppendUvarint(db.buf, uint64(len(rec.IncR)))
	for _, to := range rec.IncR {
		db.buf = binary.AppendVarint(db.buf, int64(to))
	}
	db.buf = binary.AppendUvarint(db.buf, uint64(len(prepared)))
	frames := make([][]byte, len(prepared))
	for i, p := range prepared {
		fb, err := wire.AppendFrame(nil, p.Msg)
		db.must(err)
		frames[i] = fb
		db.buf = append(db.buf, fb...)
	}
	db.buf = binary.AppendUvarint(db.buf, uint64(len(rec.Local)))
	for i, m := range rec.Local {
		db.buf = binary.AppendUvarint(db.buf, ids[i])
		fb, err := wire.AppendFrame(nil, transport.Message{From: db.opts.Self, To: db.opts.Self, Payload: m})
		db.must(err)
		db.buf = append(db.buf, fb...)
	}
	if rec.Part != 0 {
		// Trailing, omitted for partition 0: pre-partitioning records
		// decode unchanged and unpartitioned logs stay byte-identical.
		db.buf = binary.AppendUvarint(db.buf, uint64(rec.Part))
	}
	_, err := db.log.Append(db.buf)
	db.must(err)

	delete(db.pending, rec.EnqID)
	for i, m := range rec.Local {
		db.pending[ids[i]] = pendingCmd{from: db.opts.Self, msg: m}
	}
	for i, p := range prepared {
		db.mirrorAddLocked(p.Msg, frames[i])
	}
	return ids
}

// VersionUpdate journals vu[part] = max(vu, v), durable before the node
// acks advancement Phase 1.
func (db *DB) VersionUpdate(part int, v model.Version) { db.versionRec(recVU, part, v) }

// VersionRead journals vr[part] = max(vr, v), durable before the
// Phase 3 ack.
func (db *DB) VersionRead(part int, v model.Version) { db.versionRec(recVR, part, v) }

// GC journals the truncation of the partition's versions below v,
// durable before the Phase 4 ack.
func (db *DB) GC(part int, v model.Version) { db.versionRec(recGC, part, v) }

// CoordTerm journals the node's fenced coordinator term (the
// core.TermJournal extension), durable before any reply under the new
// term leaves: a restarted node must never accept a message from a
// coordinator an earlier incarnation already fenced out.
func (db *DB) CoordTerm(t uint64) {
	db.mu.Lock()
	if t <= db.coordTerm {
		db.mu.Unlock()
		return
	}
	db.coordTerm = t
	db.buf = append(db.buf[:0], recCoordTerm)
	db.buf = binary.AppendUvarint(db.buf, t)
	_, err := db.log.Append(db.buf)
	db.mu.Unlock()
	db.must(err)
	db.must(db.log.Barrier())
}

func (db *DB) versionRec(tag byte, part int, v model.Version) {
	db.mu.Lock()
	db.buf = append(db.buf[:0], tag)
	db.buf = binary.AppendUvarint(db.buf, uint64(v))
	if part != 0 {
		// Partition 0 (and every pre-partitioning record) omits the id,
		// keeping unpartitioned logs byte-identical to the old format.
		db.buf = binary.AppendUvarint(db.buf, uint64(part))
	}
	_, err := db.log.Append(db.buf)
	db.mu.Unlock()
	db.must(err)
	db.must(db.log.Barrier())
}

// ---------------------------------------------------------------------
// core.ReplJournal
// ---------------------------------------------------------------------

// ReplApply journals a replicated effect set this node applied as a
// backup. Lazy, like Enq: the frame arrived over the reliable session,
// so NoteRecv's barrier makes the record durable before the session ack
// (and the replication ack the handler sent) leaves the process.
func (db *DB) ReplApply(part int, from model.NodeID, seq uint64, v model.Version, ops []core.AppliedOp) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.buf = append(db.buf[:0], recRepl)
	db.buf = binary.AppendUvarint(db.buf, uint64(part))
	db.buf = binary.AppendVarint(db.buf, int64(from))
	db.buf = binary.AppendUvarint(db.buf, seq)
	db.buf = binary.AppendUvarint(db.buf, uint64(v))
	db.buf = binary.AppendUvarint(db.buf, uint64(len(ops)))
	for _, ap := range ops {
		db.buf = appendString(db.buf, ap.Key)
		var err error
		db.buf, err = wire.AppendOp(db.buf, ap.Op)
		db.must(err)
	}
	_, err := db.log.Append(db.buf)
	db.must(err)
	if part >= 0 && part < len(db.replApplied) && int(from) >= 0 && int(from) < len(db.replApplied[part]) {
		if seq > db.replApplied[part][from] {
			db.replApplied[part][from] = seq
		}
	}
}

// ReplTerm journals the partition's replication lease term, durable
// before return: a restarted node must never treat a stream from a
// primary an earlier incarnation already saw deposed as current.
func (db *DB) ReplTerm(part int, t uint64) {
	db.mu.Lock()
	if part < 0 || part >= len(db.replTerms) || t <= db.replTerms[part] {
		db.mu.Unlock()
		return
	}
	db.replTerms[part] = t
	db.buf = append(db.buf[:0], recReplTerm)
	db.buf = binary.AppendUvarint(db.buf, t)
	if part != 0 {
		db.buf = binary.AppendUvarint(db.buf, uint64(part))
	}
	_, err := db.log.Append(db.buf)
	db.mu.Unlock()
	db.must(err)
	db.must(db.log.Barrier())
}

// ReplSend journals the partition's highest sent replication sequence
// number. Lazy: the Exec barrier that releases the replication frames
// to the wire follows immediately, so no backup can have deduped a seq
// that is not durable here.
func (db *DB) ReplSend(part int, seq uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if part < 0 || part >= len(db.replSeqs) || seq <= db.replSeqs[part] {
		return
	}
	db.replSeqs[part] = seq
	db.buf = append(db.buf[:0], recReplSeq)
	db.buf = binary.AppendUvarint(db.buf, seq)
	if part != 0 {
		db.buf = binary.AppendUvarint(db.buf, uint64(part))
	}
	_, err := db.log.Append(db.buf)
	db.must(err)
}

// ---------------------------------------------------------------------
// reliable.Journal
// ---------------------------------------------------------------------

// NoteSend journals a sequenced frame, durable before it is first
// transmitted: a crash after the frame is on the wire must find it in
// the log, or recovery would reuse the sequence number for a different
// payload.
func (db *DB) NoteSend(m transport.Message) {
	frame, err := wire.AppendFrame(nil, m)
	db.must(err)
	db.mu.Lock()
	db.buf = append(db.buf[:0], recSend)
	db.buf = append(db.buf, frame...)
	_, err = db.log.Append(db.buf)
	db.must(err)
	db.mirrorAddLocked(m, frame)
	db.mu.Unlock()
	db.must(db.log.Barrier())
}

// NoteRecv journals a link's advanced in-order watermark, durable —
// together with whatever the delivery handler journaled under the same
// dispatch gate — before the cumulative ack leaves.
func (db *DB) NoteRecv(to, from model.NodeID, nextExpected uint64) {
	db.mu.Lock()
	db.buf = append(db.buf[:0], recRecv)
	db.buf = binary.AppendVarint(db.buf, int64(to))
	db.buf = binary.AppendVarint(db.buf, int64(from))
	db.buf = binary.AppendUvarint(db.buf, nextExpected)
	_, err := db.log.Append(db.buf)
	db.recv[link{from: from, to: to}] = nextExpected
	db.mu.Unlock()
	db.must(err)
	db.must(db.log.Barrier())
}

// NoteAck journals a peer's cumulative ack and trims the mirror. Lazy:
// losing an ack record merely re-sends frames the peer will dedup.
func (db *DB) NoteAck(from, to model.NodeID, cum uint64) {
	db.mu.Lock()
	db.buf = append(db.buf[:0], recAck)
	db.buf = binary.AppendVarint(db.buf, int64(from))
	db.buf = binary.AppendVarint(db.buf, int64(to))
	db.buf = binary.AppendUvarint(db.buf, cum)
	_, err := db.log.Append(db.buf)
	db.mirrorAckLocked(link{from: from, to: to}, cum)
	db.mu.Unlock()
	db.must(err)
}

func (db *DB) mirrorAddLocked(m transport.Message, frame []byte) {
	d, ok := m.Payload.(reliable.DataMsg)
	if !ok {
		return // unsequenced (loopback) frames need no mirror
	}
	k := link{from: m.From, to: m.To}
	sm := db.send[k]
	if sm == nil {
		sm = &sendMirror{unacked: make(map[uint64][]byte)}
		db.send[k] = sm
	}
	if d.Seq > sm.nextSeq {
		sm.nextSeq = d.Seq
	}
	if d.Seq > sm.ackedTo {
		sm.unacked[d.Seq] = frame
	}
}

func (db *DB) mirrorAckLocked(k link, cum uint64) {
	sm := db.send[k]
	if sm == nil {
		return
	}
	if cum > sm.ackedTo {
		sm.ackedTo = cum
	}
	for seq := range sm.unacked {
		if seq <= cum {
			delete(sm.unacked, seq)
		}
	}
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

// Checkpoint freezes the node, snapshots its complete durable state
// anchored at a fresh WAL segment, and installs the snapshot. After it
// returns, replay starts at the anchor and all older segments are gone.
//
// Freeze order (deadlock-free by construction): the dispatch gate
// first — inbound dispatch only enqueues work and never blocks on the
// worker barrier — then the worker barrier via Frozen, then the DB
// mutex. Workers hold the barrier shared around executeSubtxn and take
// the DB mutex inside it, the same order.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	var anchor uint64
	var blob []byte
	var err error
	db.gate.Lock()
	db.node.Frozen(func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		anchor, err = db.log.Rotate()
		if err != nil {
			return
		}
		blob = db.encodeCheckpointLocked()
	})
	db.gate.Unlock()
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return err
		}
		db.must(err)
	}
	// Installation happens outside the freeze: until SaveCheckpoint
	// returns, the previous checkpoint plus the pre-anchor segments are
	// still a complete recovery story.
	return db.log.SaveCheckpoint(anchor, blob)
}

// encodeCheckpointLocked snapshots node + journal state. Caller holds
// the freeze (gate + Frozen) and db.mu.
func (db *DB) encodeCheckpointLocked() []byte {
	vr, vu := db.node.Versions()
	buf := []byte{ckptVersion}
	buf = binary.AppendVarint(buf, int64(db.opts.Self))
	buf = binary.AppendUvarint(buf, uint64(db.opts.Nodes))
	buf = binary.AppendUvarint(buf, uint64(vr))
	buf = binary.AppendUvarint(buf, uint64(vu))
	buf = binary.AppendUvarint(buf, db.nextEnq)
	buf = binary.AppendUvarint(buf, db.coordTerm)
	// Version 3: partition count plus every partition's version pair
	// (partition 0's repeats the legacy pair above).
	buf = binary.AppendUvarint(buf, uint64(db.opts.Partitions))
	for p := 0; p < db.opts.Partitions; p++ {
		pvr, pvu := db.node.VersionsPart(p)
		buf = binary.AppendUvarint(buf, uint64(pvr))
		buf = binary.AppendUvarint(buf, uint64(pvu))
	}
	// Version 4: replica-group frontiers — per partition the replication
	// lease term, sent sequence, and per-sender applied sequence (all
	// zero when replication never ran).
	for p := 0; p < db.opts.Partitions; p++ {
		buf = binary.AppendUvarint(buf, db.replTerms[p])
		buf = binary.AppendUvarint(buf, db.replSeqs[p])
		for q := 0; q < db.opts.Nodes; q++ {
			buf = binary.AppendUvarint(buf, db.replApplied[p][q])
		}
	}

	// Store, streamed shard by shard (no monolithic copy).
	st := db.node.Store()
	buf = binary.AppendUvarint(buf, uint64(st.ShardCount()))
	for i := 0; i < st.ShardCount(); i++ {
		items := st.ExportShard(i)
		buf = binary.AppendUvarint(buf, uint64(len(items)))
		for _, it := range items {
			buf = appendString(buf, it.Key)
			buf = binary.AppendUvarint(buf, uint64(len(it.Versions)))
			for _, v := range it.Versions {
				buf = binary.AppendUvarint(buf, uint64(v.Ver))
				buf = wire.AppendRecord(buf, v.Rec)
			}
		}
	}

	// Counter rows, one section per partition, one row per live version.
	for p := 0; p < db.opts.Partitions; p++ {
		cnt := db.node.CountersPart(p)
		vers := cnt.Versions()
		buf = binary.AppendUvarint(buf, uint64(len(vers)))
		for _, v := range vers {
			buf = binary.AppendUvarint(buf, uint64(v))
			for _, x := range cnt.SnapshotR(v) {
				buf = binary.AppendVarint(buf, x)
			}
			for _, x := range cnt.SnapshotC(v) {
				buf = binary.AppendVarint(buf, x)
			}
		}
	}

	// Pending commands, ascending by id for deterministic re-enqueue.
	ids := make([]uint64, 0, len(db.pending))
	for id := range db.pending {
		ids = append(ids, id)
	}
	sortU64(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		p := db.pending[id]
		buf = binary.AppendUvarint(buf, id)
		fb, err := wire.AppendFrame(nil, transport.Message{From: p.from, To: db.opts.Self, Payload: p.msg})
		db.must(err)
		buf = append(buf, fb...)
	}

	// Send mirrors.
	buf = binary.AppendUvarint(buf, uint64(len(db.send)))
	for k, sm := range db.send {
		buf = binary.AppendVarint(buf, int64(k.from))
		buf = binary.AppendVarint(buf, int64(k.to))
		buf = binary.AppendUvarint(buf, sm.nextSeq)
		buf = binary.AppendUvarint(buf, sm.ackedTo)
		seqs := make([]uint64, 0, len(sm.unacked))
		for s := range sm.unacked {
			seqs = append(seqs, s)
		}
		sortU64(seqs)
		buf = binary.AppendUvarint(buf, uint64(len(seqs)))
		for _, s := range seqs {
			buf = append(buf, sm.unacked[s]...)
		}
	}

	// Receive watermarks.
	buf = binary.AppendUvarint(buf, uint64(len(db.recv)))
	for k, next := range db.recv {
		buf = binary.AppendVarint(buf, int64(k.to))
		buf = binary.AppendVarint(buf, int64(k.from))
		buf = binary.AppendUvarint(buf, next)
	}
	return buf
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// StartCheckpoints launches the background checkpoint loop.
func (db *DB) StartCheckpoints() {
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		t := time.NewTicker(db.opts.CheckpointInterval)
		defer t.Stop()
		for {
			select {
			case <-db.stop:
				return
			case <-t.C:
				if err := db.Checkpoint(); err != nil {
					return // log closed: shutting down
				}
			}
		}
	}()
}

// Stats returns the underlying log's counters.
func (db *DB) Stats() wal.Stats { return db.log.Stats() }

// SetObs late-binds the observability registry (see wal.Log.SetObs).
func (db *DB) SetObs(r *obs.Registry) { db.log.SetObs(r) }

// Close stops the checkpoint loop and closes the log. Close the
// cluster first so no worker is still journaling.
func (db *DB) Close() error {
	close(db.stop)
	db.wg.Wait()
	return db.log.Close()
}
