package partition

import "testing"

func TestOfDeterministicAndInRange(t *testing.T) {
	m := NewMap(4, 3)
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		key := keyf(i)
		p := m.Of(key)
		if p < 0 || p >= 4 {
			t.Fatalf("Of(%q) = %d out of range", key, p)
		}
		if q := m.Of(key); q != p {
			t.Fatalf("Of(%q) unstable: %d then %d", key, p, q)
		}
		seen[p]++
	}
	// FNV-1a over a few thousand keys should land in every partition.
	for p := 0; p < 4; p++ {
		if seen[p] == 0 {
			t.Fatalf("partition %d received no keys: %v", p, seen)
		}
	}
}

func TestSinglePartitionDegenerates(t *testing.T) {
	m := NewMap(1, 5)
	for i := 0; i < 64; i++ {
		if p := m.Of(keyf(i)); p != 0 {
			t.Fatalf("P=1 Of = %d, want 0", p)
		}
	}
	if m.Primary(0) != 0 {
		t.Fatalf("P=1 primary = %d, want node 0", m.Primary(0))
	}
}

func TestOwnersRotation(t *testing.T) {
	m := NewMap(4, 3)
	if err := m.Validate(3); err != nil {
		t.Fatal(err)
	}
	wantPrimaries := []int{0, 1, 2, 0}
	for p, want := range wantPrimaries {
		if got := int(m.Primary(p)); got != want {
			t.Fatalf("Primary(%d) = %d, want %d", p, got, want)
		}
		if len(m.OwnerSet(p)) != 3 {
			t.Fatalf("OwnerSet(%d) has %d members, want 3", p, len(m.OwnerSet(p)))
		}
	}
}

func TestValidateRejectsBadMaps(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(m *Map)
		wantErr bool
	}{
		{name: "valid rotation", mutate: func(m *Map) {}, wantErr: false},
		{name: "zero partitions", mutate: func(m *Map) { m.P = 0 }, wantErr: true},
		{name: "owner group count mismatch", mutate: func(m *Map) { m.Owners = m.Owners[:1] }, wantErr: true},
		{name: "empty owner group", mutate: func(m *Map) { m.Owners[1] = nil }, wantErr: true},
		{name: "out-of-range owner", mutate: func(m *Map) { m.Owners[0][0] = 9 }, wantErr: true},
		{name: "negative owner", mutate: func(m *Map) { m.Owners[0][0] = -1 }, wantErr: true},
		{name: "duplicate owner in group", mutate: func(m *Map) { m.Owners[0][1] = m.Owners[0][0] }, wantErr: true},
		{name: "same owner across groups ok", mutate: func(m *Map) { m.Owners[1] = m.Owners[1][:1] }, wantErr: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMap(2, 2)
			tc.mutate(m)
			err := m.Validate(2)
			if tc.wantErr && err == nil {
				t.Fatal("expected validation error, got nil")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("unexpected validation error: %v", err)
			}
		})
	}
}

func keyf(i int) string {
	const digits = "0123456789"
	return "g" + string([]byte{digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10]})
}
