// Package partition implements the keyspace placement layer: a
// deterministic, versioned map from item keys to partitions and from
// partitions to owner node groups.
//
// Each partition runs its own independent epoch (version pair, R/C
// counter matrix, quiescence detection), so the map is the single
// source of truth for which counters a transaction touches. The map is
// pure data — hashing is seed-free (FNV-1a) so every process that
// shares a map version routes identically without coordination.
package partition

import (
	"fmt"

	"repro/internal/model"
)

// Map is a versioned placement of P partitions onto a node group. The
// Version field exists so a future rebalancer can install a successor
// map and fence routing decisions made under the old one; today there
// is a single generation (Version 1).
type Map struct {
	Version int              `json:"version"`
	P       int              `json:"partitions"`
	Owners  [][]model.NodeID `json:"owners"`
}

// NewMap builds the generation-1 placement of p partitions across
// nodes 0..nodes-1. Owners[i] lists the owner group for partition i in
// preference order: the primary is node i mod nodes, followed by the
// remaining nodes in rotation. With p==1 every node owns the single
// partition and the primary is node 0, which degenerates to the
// unpartitioned behaviour.
func NewMap(p, nodes int) *Map {
	if p < 1 {
		p = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	m := &Map{Version: 1, P: p, Owners: make([][]model.NodeID, p)}
	for i := 0; i < p; i++ {
		group := make([]model.NodeID, nodes)
		for j := 0; j < nodes; j++ {
			group[j] = model.NodeID((i + j) % nodes)
		}
		m.Owners[i] = group
	}
	return m
}

// fnv1a is the 64-bit FNV-1a hash. Inlined rather than using
// hash/maphash so the mapping is stable across processes and restarts:
// the three-process cluster must agree on key placement without
// exchanging seeds.
func fnv1a(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Of returns the partition that owns key. With P==1 this is always 0.
func (m *Map) Of(key string) int {
	if m == nil || m.P <= 1 {
		return 0
	}
	return int(fnv1a(key) % uint64(m.P))
}

// Primary returns the preferred owner node for a partition.
func (m *Map) Primary(part int) model.NodeID {
	if m == nil || part < 0 || part >= len(m.Owners) || len(m.Owners[part]) == 0 {
		return 0
	}
	return m.Owners[part][0]
}

// OwnerSet returns the owner group for a partition (primary first).
// The returned slice is shared; callers must not mutate it.
func (m *Map) OwnerSet(part int) []model.NodeID {
	if m == nil || part < 0 || part >= len(m.Owners) {
		return nil
	}
	return m.Owners[part]
}

// Validate checks structural sanity: every partition has at least one
// owner, owner ids are within [0, nodes), and no owner group lists the
// same node twice (a duplicate would make the replica set smaller than
// it looks and double-deliver replication streams).
func (m *Map) Validate(nodes int) error {
	if m.P < 1 {
		return fmt.Errorf("partition map: P=%d < 1", m.P)
	}
	if len(m.Owners) != m.P {
		return fmt.Errorf("partition map: %d owner groups for P=%d", len(m.Owners), m.P)
	}
	for i, group := range m.Owners {
		if len(group) == 0 {
			return fmt.Errorf("partition map: partition %d has no owners", i)
		}
		seen := make(map[model.NodeID]bool, len(group))
		for _, id := range group {
			if int(id) < 0 || int(id) >= nodes {
				return fmt.Errorf("partition map: partition %d owner %d out of range [0,%d)", i, id, nodes)
			}
			if seen[id] {
				return fmt.Errorf("partition map: partition %d lists owner %d twice", i, id)
			}
			seen[id] = true
		}
	}
	return nil
}
