package trace

import (
	"strings"
	"testing"
)

// TestReplayTable1 is experiment E1/E2: the paper's example execution
// must replay exactly, with every annotated counter value and every
// Figure 2 version state holding.
func TestReplayTable1(t *testing.T) {
	res, err := Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("replay failed %d checks:\n%s", res.Failed, res.String())
	}
	if res.Passed < 50 {
		t.Errorf("only %d checks ran; the replay should assert every Table 1 annotation", res.Passed)
	}
	out := res.String()
	for _, want := range []string{
		"dual write",            // step 13-16 narrative
		"implicit",              // step 19-22 narrative
		"Figure 2",              // the version-state snapshot
		"read version advances", // phase 3/4
	} {
		if !strings.Contains(out, want) {
			t.Errorf("replay report missing %q", want)
		}
	}
}

// TestReplayDeterministic runs the replay twice and requires identical
// reports — the scripted schedule must be fully reproducible.
func TestReplayDeterministic(t *testing.T) {
	a, err := Replay()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two replays produced different reports")
	}
}
