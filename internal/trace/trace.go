// Package trace replays, step by step and fully deterministically, the
// example execution of Table 1 of the paper (Section 2.3) on sites p,
// q, s with items A, B at p, D, E at q, and F at s — and checks every
// annotated counter value and every version state of Figure 2 along the
// way.
//
// The replay exercises all the protocol's delicate interleavings:
//
//   - a descendant (jp, version 2) arriving at a node (p) before the
//     advancement notice, acting as the implicit notification;
//   - a descendant (iq, version 1) arriving at a node (q) that has
//     already advanced, triggering the dual write on D (versions 1 AND
//     2) but a single write on E (no version-2 copy exists);
//   - lazy copy-on-update everywhere;
//   - the request/completion counter bookkeeping for every hop;
//   - quiescence detection by asynchronous counter reads, followed by
//     the read-version switch and garbage collection.
//
// Determinism comes from the scripted transport (messages are parked
// until the replay releases them) plus the cluster's SyncExec mode
// (subtransactions execute inline during delivery).
package trace

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
)

// Check is one assertion made during the replay.
type Check struct {
	Desc string
	Got  string
	Want string
	OK   bool
}

// Step is one row (or row group) of Table 1 as replayed.
type Step struct {
	Time   string
	Site   string
	What   string
	Checks []Check
}

// Result is a completed replay.
type Result struct {
	Steps  []Step
	Passed int
	Failed int
}

// OK reports whether every check passed.
func (r *Result) OK() bool { return r.Failed == 0 }

// String renders the replay as a table-like report.
func (r *Result) String() string {
	out := ""
	for _, s := range r.Steps {
		out += fmt.Sprintf("TIME %-6s SITE %-2s %s\n", s.Time, s.Site, s.What)
		for _, c := range s.Checks {
			mark := "ok"
			if !c.OK {
				mark = "FAIL"
			}
			out += fmt.Sprintf("    [%s] %s = %s (want %s)\n", mark, c.Desc, c.Got, c.Want)
		}
	}
	out += fmt.Sprintf("checks: %d passed, %d failed\n", r.Passed, r.Failed)
	return out
}

// replayer carries the machinery through the steps.
type replayer struct {
	script  *transport.Script
	cluster *core.Cluster
	res     *Result
	cur     *Step
}

const (
	p = model.NodeID(0)
	q = model.NodeID(1)
	s = model.NodeID(2)
)

// coordID is the coordinator endpoint in a 3-node cluster.
const coordID = model.NodeID(3)

func (r *replayer) step(timeLabel string, site model.NodeID, what string) {
	r.res.Steps = append(r.res.Steps, Step{Time: timeLabel, Site: site.String(), What: what})
	r.cur = &r.res.Steps[len(r.res.Steps)-1]
}

func (r *replayer) check(desc string, got, want any) {
	g, w := fmt.Sprint(got), fmt.Sprint(want)
	ok := g == w
	r.cur.Checks = append(r.cur.Checks, Check{Desc: desc, Got: g, Want: w, OK: ok})
	if ok {
		r.res.Passed++
	} else {
		r.res.Failed++
	}
}

// versions renders an item's live versions like "[0 1 2]".
func (r *replayer) versions(node model.NodeID, key string) string {
	return fmt.Sprint(r.cluster.Node(int(node)).Store().LiveVersions(key))
}

// bal reads the balance of key at exactly version v.
func (r *replayer) bal(node model.NodeID, key string, v model.Version) string {
	rec, ok := r.cluster.Node(int(node)).Store().Peek(key, v)
	if !ok {
		return "missing"
	}
	return fmt.Sprint(rec.Field("bal"))
}

// deliverSubtxn releases the oldest parked subtransaction of the given
// transaction addressed to node. Selecting by transaction id matters:
// Table 1 interleaves i's and j's subtransactions at the same sites.
func (r *replayer) deliverSubtxn(node model.NodeID, txn model.TxnID) bool {
	return r.script.DeliverWhere(func(m transport.Message) bool {
		sm, ok := m.Payload.(core.SubtxnMsg)
		return ok && m.To == node && sm.Txn == txn
	})
}

// deliverAdvancementTo releases the parked start-advancement notice for
// node.
func (r *replayer) deliverAdvancementTo(node model.NodeID) bool {
	return r.script.DeliverWhere(func(m transport.Message) bool {
		_, ok := m.Payload.(core.StartAdvancementMsg)
		return ok && m.To == node
	})
}

// Replay runs the full Table 1 schedule and returns the checked steps.
func Replay() (*Result, error) {
	script := transport.NewScript(4) // p, q, s + coordinator
	cluster, err := core.NewCluster(core.Config{
		Nodes:        3,
		Transport:    script,
		SyncExec:     true,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	for node, keys := range map[model.NodeID][]string{p: {"A", "B"}, q: {"D", "E"}, s: {"F"}} {
		for _, k := range keys {
			rec := model.NewRecord()
			rec.Fields["bal"] = 0
			cluster.Preload(node, k, rec)
		}
	}
	cluster.Start()
	defer cluster.Close()

	r := &replayer{script: script, cluster: cluster, res: &Result{}}

	// Transaction i (Figure 1 / Table 1): root at p updates A, spawns
	// iq to q (which updates D and E and spawns iqp back to p updating
	// B) and is to s (updating F).
	txnI := &model.TxnSpec{Label: "i", Root: &model.SubtxnSpec{
		Node:    p,
		Updates: []model.KeyOp{{Key: "A", Op: model.AddOp{Field: "bal", Delta: 10}}},
		Children: []*model.SubtxnSpec{
			{
				Node: q,
				Updates: []model.KeyOp{
					{Key: "D", Op: model.AddOp{Field: "bal", Delta: 20}},
					{Key: "E", Op: model.AddOp{Field: "bal", Delta: 30}},
				},
				Children: []*model.SubtxnSpec{
					{Node: p, Updates: []model.KeyOp{{Key: "B", Op: model.AddOp{Field: "bal", Delta: 40}}}},
				},
			},
			{Node: s, Updates: []model.KeyOp{{Key: "F", Op: model.AddOp{Field: "bal", Delta: 50}}}},
		},
	}}
	txnJ := &model.TxnSpec{Label: "j", Root: &model.SubtxnSpec{
		Node:    q,
		Updates: []model.KeyOp{{Key: "D", Op: model.AddOp{Field: "bal", Delta: 100}}},
		Children: []*model.SubtxnSpec{
			{Node: p, Updates: []model.KeyOp{{Key: "A", Op: model.AddOp{Field: "bal", Delta: 200}}}},
		},
	}}

	np := cluster.Node(int(p))
	nq := cluster.Node(int(q))
	ns := cluster.Node(int(s))

	// TIME 1-4: update transaction i arrives at p, updates A version 1,
	// issues iq and is. (The root commits after issuing its children,
	// bumping C1pp — the paper reports the client-side completion
	// notice later, at time 27; the counter semantics are identical.)
	hI, err := cluster.Submit(txnI)
	if err != nil {
		return nil, err
	}
	r.step("1-4", p, "update tx i arrives; i updates A version 1; subtx iq issued to q, is issued to s")
	r.deliverSubtxn(p, hI.ID)
	r.check("R1pp", np.Counters().R(1, p), 1)
	r.check("R1pq", np.Counters().R(1, q), 1)
	r.check("R1ps", np.Counters().R(1, s), 1)
	r.check("A versions", r.versions(p, "A"), "[0 1]")
	r.check("A@1.bal", r.bal(p, "A", 1), 10)
	r.check("A@0.bal untouched", r.bal(p, "A", 0), 0)

	// TIME 5-6: read transaction x arrives at p, reads A version 0.
	hX, err := cluster.Submit(&model.TxnSpec{Label: "x", Root: &model.SubtxnSpec{Node: p, Reads: []string{"A"}}})
	if err != nil {
		return nil, err
	}
	r.step("5-6", p, "read tx x arrives; x reads A version 0")
	r.deliverSubtxn(p, hX.ID)
	reads := hX.Reads()
	if len(reads) == 1 {
		r.check("x read version", reads[0].VersionRead, 0)
		r.check("x read value", reads[0].Record.Field("bal"), 0)
	} else {
		r.check("x read count", len(reads), 1)
	}

	// TIME 7-8: is arrives at s, updates F version 1.
	r.step("7-8", s, "is arrives; is updates F version 1")
	r.deliverSubtxn(s, hI.ID)
	r.check("F versions", r.versions(s, "F"), "[0 1]")
	r.check("F@1.bal", r.bal(s, "F", 1), 50)
	r.check("C1ps (at s)", ns.Counters().C(1, p), 1)

	// TIME 9: version advancement begins. The coordinator broadcasts
	// start-advancement notices; only q receives one now.
	advDone := cluster.AdvanceAsync()
	r.step("9", q, "version advancement begins; q advances update version to 2")
	// The coordinator goroutine sends the three notices asynchronously;
	// wait until they are all parked before delivering q's.
	waitParked(script, 3, func(m transport.Message) bool {
		_, ok := m.Payload.(core.StartAdvancementMsg)
		return ok
	})
	r.deliverAdvancementTo(q)
	vrq, vuq := nq.Versions()
	r.check("q.vu", vuq, 2)
	r.check("q.vr", vrq, 0)

	// TIME 10-12: update transaction j arrives at q, updates D version
	// 2, issues jp to p.
	hJ, err := cluster.Submit(txnJ)
	if err != nil {
		return nil, err
	}
	r.step("10-12", q, "update tx j arrives; j updates D version 2; jp issued to p")
	r.deliverSubtxn(q, hJ.ID)
	r.check("R2qq", nq.Counters().R(2, q), 1)
	r.check("R2qp", nq.Counters().R(2, p), 1)
	r.check("D versions", r.versions(q, "D"), "[0 2]")
	r.check("D@2.bal", r.bal(q, "D", 2), 100)
	r.check("C2qq (root j committed)", nq.Counters().C(2, q), 1)

	// TIME 13-16: iq (version 1) arrives at q, which already advanced:
	// iq updates D versions 1 AND 2 (the dual write) but E only in
	// version 1 (E has no version-2 copy); iqp issued to p.
	r.step("13-16", q, "iq arrives; iq updates D versions 1 and 2; iq updates E version 1; iqp issued to p")
	r.deliverSubtxn(q, hI.ID)
	r.check("D versions", r.versions(q, "D"), "[0 1 2]")
	r.check("D@1.bal (v1: only iq)", r.bal(q, "D", 1), 20)
	r.check("D@2.bal (v2: j and iq)", r.bal(q, "D", 2), 120)
	r.check("E versions (no dual write)", r.versions(q, "E"), "[0 1]")
	r.check("E@1.bal", r.bal(q, "E", 1), 30)
	r.check("R1qp", nq.Counters().R(1, p), 1)
	r.check("C1pq (iq committed at q)", nq.Counters().C(1, p), 1)
	r.check("dual writes at q", nq.Metrics().DualWrites, 1)

	// TIME 17-18: read transaction y arrives at q, reads D version 0.
	hY, err := cluster.Submit(&model.TxnSpec{Label: "y", Root: &model.SubtxnSpec{Node: q, Reads: []string{"D"}}})
	if err != nil {
		return nil, err
	}
	r.step("17-18", q, "read tx y arrives; y reads D version 0")
	r.deliverSubtxn(q, hY.ID)
	yReads := hY.Reads()
	if len(yReads) == 1 {
		r.check("y read version", yReads[0].VersionRead, 0)
		r.check("y read value", yReads[0].Record.Field("bal"), 0)
	} else {
		r.check("y read count", len(yReads), 1)
	}

	// TIME 19-22: jp (version 2) arrives at p BEFORE p was notified of
	// the advancement; its version-id is the notification. p advances
	// its update version to 2 and jp updates A version 2.
	r.step("19-22", p, "jp arrives with version 2; p begins version advancement implicitly; jp updates A version 2")
	r.deliverSubtxn(p, hJ.ID)
	_, vup := np.Versions()
	r.check("p.vu (implicit advancement)", vup, 2)
	r.check("p implicit advances", np.Metrics().ImplicitAdvances, 1)
	r.check("A versions", r.versions(p, "A"), "[0 1 2]")
	r.check("A@2.bal (i then jp)", r.bal(p, "A", 2), 210)
	r.check("A@1.bal (v1: only i)", r.bal(p, "A", 1), 10)
	r.check("C2qp (jp committed at p)", np.Counters().C(2, q), 1)

	// TIME 23: the coordinator's advancement notice finally arrives at
	// p; the update version is already 2.
	r.step("23", p, "version advancement notice arrives; update version already advanced to 2")
	r.deliverAdvancementTo(p)
	_, vup = np.Versions()
	r.check("p.vu unchanged", vup, 2)

	// TIME 24-25: iqp (version 1) arrives at p, updates B version 1.
	// B has no version-2 copy, so no dual write happens.
	r.step("24-25", p, "iqp arrives from q; iqp updates B version 1")
	r.deliverSubtxn(p, hI.ID)
	r.check("B versions", r.versions(p, "B"), "[0 1]")
	r.check("B@1.bal", r.bal(p, "B", 1), 40)
	r.check("C1qp (iqp committed at p)", np.Counters().C(1, q), 1)

	// The advancement notice for s is still in flight; deliver it now.
	r.step("25b", s, "advancement notice reaches s")
	r.deliverAdvancementTo(s)
	_, vus := ns.Versions()
	r.check("s.vu", vus, 2)

	// TIME 26-28: all completion notices arrive; transactions i and j
	// are complete and every counter matches its request counter.
	r.step("26-28", p, "i and j complete; all version-1 and version-2 counters match")
	if !hI.WaitTimeout(5 * time.Second) {
		r.check("txn i completed", "timeout", "completed")
	} else {
		r.check("txn i status", hI.Status(), core.StatusCommitted)
	}
	if !hJ.WaitTimeout(5 * time.Second) {
		r.check("txn j completed", "timeout", "completed")
	} else {
		r.check("txn j status", hJ.Status(), core.StatusCommitted)
	}
	r.check("v1 R/C p->p", fmt.Sprint(np.Counters().R(1, p), np.Counters().C(1, p)), "1 1")
	r.check("v1 R/C p->q", fmt.Sprint(np.Counters().R(1, q), nq.Counters().C(1, p)), "1 1")
	r.check("v1 R/C p->s", fmt.Sprint(np.Counters().R(1, s), ns.Counters().C(1, p)), "1 1")
	r.check("v1 R/C q->p", fmt.Sprint(nq.Counters().R(1, p), np.Counters().C(1, q)), "1 1")
	r.check("v2 R/C q->q", fmt.Sprint(nq.Counters().R(2, q), nq.Counters().C(2, q)), "1 1")
	r.check("v2 R/C q->p", fmt.Sprint(nq.Counters().R(2, p), np.Counters().C(2, q)), "1 1")

	// Figure 2, "Eventually (after time 28)" — before the read-version
	// switch and garbage collection.
	r.step("fig2", p, "Figure 2 'eventually' state (pre-GC)")
	r.check("A", r.versions(p, "A"), "[0 1 2]")
	r.check("B", r.versions(p, "B"), "[0 1]")
	r.check("D", r.versions(q, "D"), "[0 1 2]")
	r.check("E", r.versions(q, "E"), "[0 1]")
	r.check("F", r.versions(s, "F"), "[0 1]")

	// Beyond time 28: "A coordinator can determine [stability] by means
	// of an asynchronous read of the counters, and then inform each
	// site of a read version advancement." Pump the scripted network
	// until the four-phase advancement completes.
	r.step("29+", p, "coordinator detects quiescence asynchronously; read version advances; GC runs")
	var rep core.AdvanceReport
	pumped := false
	for i := 0; i < 100000; i++ {
		script.DeliverAll()
		select {
		case rep = <-advDone:
			pumped = true
		default:
			time.Sleep(200 * time.Microsecond)
			continue
		}
		break
	}
	r.check("advancement completed", pumped, true)
	if pumped {
		r.check("new read version", rep.NewVR, 1)
		r.check("new update version", rep.NewVU, 2)
	}
	for i, n := range []*core.Node{np, nq, ns} {
		vr, vu := n.Versions()
		r.check(fmt.Sprintf("node %v vr/vu", model.NodeID(i)), fmt.Sprint(vr, " ", vu), "1 2")
	}
	// Post-GC states: version 0 is gone; untouched copies were
	// renumbered.
	r.check("A post-GC", r.versions(p, "A"), "[1 2]")
	r.check("B post-GC", r.versions(p, "B"), "[1]")
	r.check("D post-GC", r.versions(q, "D"), "[1 2]")
	r.check("E post-GC", r.versions(q, "E"), "[1]")
	r.check("F post-GC", r.versions(s, "F"), "[1]")

	// A fresh read now sees version 1: the January charges are visible.
	hX2, err := cluster.Submit(&model.TxnSpec{Label: "x2", Root: &model.SubtxnSpec{Node: p, Reads: []string{"A"}}})
	if err != nil {
		return nil, err
	}
	r.step("final", p, "new read tx sees version 1")
	r.deliverSubtxn(p, hX2.ID)
	x2 := hX2.Reads()
	if len(x2) == 1 {
		r.check("x2 read version", x2[0].VersionRead, 1)
		r.check("x2 read value", x2[0].Record.Field("bal"), 10)
	} else {
		r.check("x2 read count", len(x2), 1)
	}
	r.check("max live versions ever", cluster.MaxLiveVersionsEver() <= 3, true)
	r.check("violations", len(cluster.Violations()), 0)

	// Let the stray read-transaction bookkeeping finish.
	script.DeliverAll()
	return r.res, nil
}

// waitParked spins until at least n parked messages match pred — the
// coordinator goroutine sends its broadcasts asynchronously.
func waitParked(script *transport.Script, n int, pred func(transport.Message) bool) {
	for i := 0; i < 50000; i++ {
		if script.CountWhere(pred) >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}
