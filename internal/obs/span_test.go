package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSpanRingWraparound: the ring keeps the newest spans, oldest
// first, and counts everything ever recorded.
func TestSpanRingWraparound(t *testing.T) {
	r := NewSpanRing(64)
	for i := 0; i < 100; i++ {
		r.Record(Span{TraceID: 1, SpanID: uint64(i + 1)})
	}
	if got := r.Recorded(); got != 100 {
		t.Fatalf("Recorded = %d, want 100", got)
	}
	out := r.Dump()
	if len(out) != 64 {
		t.Fatalf("Dump returned %d spans, want 64", len(out))
	}
	for i, s := range out {
		if want := uint64(100 - 64 + i + 1); s.SpanID != want {
			t.Fatalf("span %d: id=%d, want %d", i, s.SpanID, want)
		}
	}
	var nilRing *SpanRing
	nilRing.Record(Span{})
	if nilRing.Recorded() != 0 || nilRing.Dump() != nil {
		t.Fatal("nil ring not inert")
	}
}

// TestSpanRingConcurrent is the -race soak: many writers record while a
// reader repeatedly assembles traces from the ring. The assertion is
// simply that nothing races or tears (Dump never returns a half-written
// span, enforced by the race detector plus the pointer-publish scheme).
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(Span{TraceID: uint64(w + 1), SpanID: uint64(i + 1), Name: "subtxn", Node: w})
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, s := range r.Dump() {
			if s.TraceID == 0 || s.SpanID == 0 {
				t.Errorf("torn span: %+v", s)
			}
		}
		AssembleTraces(r.Dump())
	}
	close(stop)
	wg.Wait()
}

// TestAssembleTraces: parent links form trees, missing parents are
// counted as orphans, and completeness is root-and-no-orphans.
func TestAssembleTraces(t *testing.T) {
	spans := []Span{
		{TraceID: 7, SpanID: 7, Name: "txn", Start: 100, Dur: 50},         // root
		{TraceID: 7, SpanID: 20, ParentID: 7, Name: "subtxn", Start: 110}, // child
		{TraceID: 7, SpanID: 21, ParentID: 20, Name: "subtxn", Start: 120},
		{TraceID: 7, SpanID: 22, ParentID: 7, Name: "subtxn", Start: 105},
		{TraceID: 9, SpanID: 30, ParentID: 99, Name: "subtxn", Start: 300}, // orphan, no root
	}
	traces := AssembleTraces(spans)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// Newest-root-first: trace 9 has no root (start 0) so trace 7 leads.
	tr := traces[0]
	if tr.TraceID != 7 || !tr.Complete || tr.Orphans != 0 || tr.Spans != 4 {
		t.Fatalf("trace 7: %+v", tr)
	}
	if tr.Root == nil || tr.Root.SpanID != 7 || tr.DurNS != 50 {
		t.Fatalf("trace 7 root: %+v", tr.Root)
	}
	if len(tr.Root.Children) != 2 || tr.Root.Children[0].SpanID != 22 || tr.Root.Children[1].SpanID != 20 {
		t.Fatalf("children not sorted by start: %+v", tr.Root.Children)
	}
	if len(tr.Root.Children[1].Children) != 1 || tr.Root.Children[1].Children[0].SpanID != 21 {
		t.Fatalf("grandchild missing: %+v", tr.Root.Children[1])
	}
	or := traces[1]
	if or.TraceID != 9 || or.Complete || or.Orphans != 1 || or.Root != nil {
		t.Fatalf("orphan trace: %+v", or)
	}
}

// TestTracerSamplingAndIDs: 1-in-N head sampling, span-id namespacing,
// and the disabled registry answering inert defaults.
func TestTracerSamplingAndIDs(t *testing.T) {
	r := New(Options{TraceSampleN: 4})
	fired := 0
	for i := 1; i <= 40; i++ {
		if r.TraceSampleTick() {
			fired++
			if i%4 != 1 {
				t.Fatalf("sampled on tick %d", i)
			}
		}
	}
	if fired != 10 {
		t.Fatalf("sampled %d of 40, want 10", fired)
	}
	id1, id2 := r.NextSpanID(2), r.NextSpanID(2)
	if id1 == id2 {
		t.Fatal("span ids not unique")
	}
	if id1&(1<<62) == 0 || id1>>48&0x3fff != 3 {
		t.Fatalf("span id %x missing bit-62 namespace or node tag", id1)
	}

	// Disabled (and nil) registries are inert.
	for _, off := range []*Registry{New(Options{}), nil} {
		if off.TraceEnabled() || off.TraceSampleTick() || off.NextSpanID(0) != 0 {
			t.Fatal("tracing not inert when disabled")
		}
		off.RecordSpan(Span{TraceID: 1})
		off.ObserveStage(StageWire, time.Second)
		off.TraceRootExec(1, 0, 0, 0, 0, 0, time.Time{})
		off.SetSlowTraceHook(func(Span) {})
		if off.TraceTxnDone(1, 0, true, time.Now(), time.Second, "") {
			t.Fatal("disabled tracer reported slow")
		}
		if off.Traces() != nil || off.SpansRecorded() != 0 {
			t.Fatal("disabled tracer retained spans")
		}
	}
}

// TestTraceTxnDoneStages: a sampled completion merges the parked root
// execution into the root span, the stage partition telescopes to the
// total, and the slow hook fires only past the threshold.
func TestTraceTxnDoneStages(t *testing.T) {
	r := New(Options{TraceSampleN: 1, TraceSlow: 10 * time.Millisecond})
	var hooked []Span
	r.SetSlowTraceHook(func(s Span) { hooked = append(hooked, s) })

	sub := time.Now()
	r.TraceRootExec(42, 1, 2*time.Millisecond, time.Millisecond, 3*time.Millisecond, 500*time.Microsecond, sub.Add(6*time.Millisecond))
	if slow := r.TraceTxnDone(42, 1, true, sub, 8*time.Millisecond, "t0.42 committed"); slow {
		t.Fatal("8ms reported slow with a 10ms threshold")
	}
	traces := r.Traces()
	if len(traces) != 1 || !traces[0].Complete {
		t.Fatalf("traces: %+v", traces)
	}
	root := traces[0].Root
	if root.Name != "txn" || root.Node != 1 || root.Dur != int64(8*time.Millisecond) {
		t.Fatalf("root: %+v", root)
	}
	want := map[string]int64{
		"wire": int64(2 * time.Millisecond), "queue": int64(time.Millisecond),
		"service": int64(3 * time.Millisecond), "ack": int64(2 * time.Millisecond),
		"fsync": int64(500 * time.Microsecond),
	}
	var sum int64
	for _, st := range root.Stages {
		if want[st.Name] != st.Dur {
			t.Fatalf("stage %s = %d, want %d", st.Name, st.Dur, want[st.Name])
		}
		if st.Name != "fsync" { // fsync is inside service, not in the partition
			sum += st.Dur
		}
	}
	if sum != root.Dur {
		t.Fatalf("stage partition sums to %d, want %d", sum, root.Dur)
	}
	s := r.Snapshot()
	if s.Stages[StageTotal].Count != 1 || s.Stages[StageWire].Count != 1 {
		t.Fatalf("stage histograms not fed: %+v", s.Stages)
	}
	if s.SpansRecorded != 1 {
		t.Fatalf("spans recorded = %d", s.SpansRecorded)
	}
	if len(hooked) != 0 {
		t.Fatal("slow hook fired under threshold")
	}

	// A slow, head-unsampled transaction still produces a root-only span
	// and fires the hook.
	if slow := r.TraceTxnDone(43, 2, false, sub, 20*time.Millisecond, "t0.43 committed"); !slow {
		t.Fatal("20ms not reported slow")
	}
	if len(hooked) != 1 || hooked[0].TraceID != 43 || hooked[0].Attr != "t0.43 committed slow" {
		t.Fatalf("slow hook: %+v", hooked)
	}
	if got := r.SpansRecorded(); got != 2 {
		t.Fatalf("spans recorded = %d, want 2", got)
	}
}
