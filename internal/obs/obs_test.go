package obs

import (
	"strings"
	"testing"
	"time"
)

// TestBucketMath checks monotonicity and the index/upper round trip of
// the integer-only bucket functions.
func TestBucketMath(t *testing.T) {
	prev := 0
	for v := int64(0); v <= 1<<20; v++ {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at v=%d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("v=%d above its bucket's upper edge %d (bucket %d)", v, up, i)
		}
	}
	// Upper edges strictly increase over the buckets bucketIndex can
	// actually produce (octaves 0-2 use only their first slot), and
	// each edge maps back to its own bucket (stay below octave 62 to
	// avoid int64 overflow).
	prevUp := bucketUpper(0)
	for i := 1; i < 62*subBuckets; i++ {
		if i/subBuckets < 3 && i%subBuckets != 0 {
			continue // unreachable slot of an unsubdivided octave
		}
		up := bucketUpper(i)
		if up <= prevUp {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, up, prevUp)
		}
		prevUp = up
		if j := bucketIndex(up); j != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", i, j)
		}
	}
}

// TestHistogramQuantiles observes 1..1000 once each; quantile answers
// are then fully determined by the bucket layout.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum=%d", s.Sum)
	}
	// Rank 500 lands in bucket [480,511]; within-bucket interpolation
	// recovers the exact value on a uniform distribution.
	if got := s.Quantile(0.5); got != 500 {
		t.Fatalf("P50 = %d, want 500", got)
	}
	// The top quantile is clamped to the true observed max.
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want 1000", got)
	}
	if got := s.Mean(); got != 500.5 {
		t.Fatalf("Mean = %v, want 500.5", got)
	}
	// A quantile never exceeds the max even mid-bucket.
	if got := s.P99(); got > 1000 {
		t.Fatalf("P99 = %d exceeds max", got)
	}
}

// TestHistogramDistinctNearbyP50s is the regression test for the
// BENCH_1 artifact where read and update p50 both reported exactly
// 2.621 ms (= 2^21 ns × 1.25): with coarse power-of-two buckets and
// edge-valued quantiles, any latency in [2^21, 2.5·2^21) collapsed to
// the same number. Sub-bucketed octaves plus interpolation must keep
// nearby distinct latency populations apart.
func TestHistogramDistinctNearbyP50s(t *testing.T) {
	mk := func(center int64) HistSnapshot {
		var h Histogram
		// A tight population around the center: the old layout put the
		// whole spread of both populations into one bucket.
		for i := int64(-50); i <= 50; i++ {
			h.Observe(center + i*1000) // ±50µs around center
		}
		return h.Snapshot()
	}
	a := mk(2_400_000) // 2.4 ms — same old octave [2^21, 2^22)
	b := mk(2_550_000) // 2.55 ms
	pa, pb := a.P50(), b.P50()
	if pa == pb {
		t.Fatalf("nearby latency populations collapsed to the same p50 %d", pa)
	}
	// And each p50 lands near its own center, not a bucket edge.
	if diff := pa - 2_400_000; diff < -160_000 || diff > 160_000 {
		t.Fatalf("p50(2.4ms population) = %d, too far from center", pa)
	}
	if diff := pb - 2_550_000; diff < -160_000 || diff > 160_000 {
		t.Fatalf("p50(2.55ms population) = %d, too far from center", pb)
	}
}

// TestHistogramEmptyAndNil: zero snapshots answer zero; nil histograms
// swallow observations.
func TestHistogramEmptyAndNil(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot should answer 0")
	}
	var h *Histogram
	h.Observe(5) // must not panic
	h.ObserveDuration(time.Second)
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("nil histogram count = %d", got.Count)
	}
}

// TestEventLogWraparound fills a small ring past capacity and checks
// Dump returns exactly the newest entries, oldest first.
func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(8, 1)
	for i := 0; i < 20; i++ {
		l.Record(Event{Kind: EvTxnDone, Node: i})
	}
	if got := l.Recorded(); got != 20 {
		t.Fatalf("Recorded = %d, want 20", got)
	}
	out := l.Dump()
	if len(out) != 8 {
		t.Fatalf("Dump returned %d events, want 8", len(out))
	}
	for i, e := range out {
		wantSeq := uint64(12 + i)
		if e.Seq != wantSeq || e.Node != int(wantSeq) {
			t.Fatalf("event %d: seq=%d node=%d, want %d", i, e.Seq, e.Node, wantSeq)
		}
	}
}

// TestEventLogPartial: fewer events than capacity come back in order.
func TestEventLogPartial(t *testing.T) {
	l := NewEventLog(8, 1)
	for i := 0; i < 3; i++ {
		l.Record(Event{Node: i})
	}
	out := l.Dump()
	if len(out) != 3 {
		t.Fatalf("Dump returned %d, want 3", len(out))
	}
	for i, e := range out {
		if e.Seq != uint64(i) || e.Node != i {
			t.Fatalf("event %d: seq=%d node=%d", i, e.Seq, e.Node)
		}
	}
}

// TestSampleTick: 1-in-N sampling fires on every Nth tick exactly.
func TestSampleTick(t *testing.T) {
	l := NewEventLog(8, 4)
	fired := 0
	for i := 1; i <= 40; i++ {
		if l.SampleTick() {
			fired++
			if i%4 != 0 {
				t.Fatalf("fired on tick %d", i)
			}
		}
	}
	if fired != 10 {
		t.Fatalf("fired %d times, want 10", fired)
	}
	var nilLog *EventLog
	if nilLog.SampleTick() {
		t.Fatal("nil log sampled true")
	}
}

// TestRegistrySnapshot exercises counters, gauges and lag gauges
// through a registry round trip.
func TestRegistrySnapshot(t *testing.T) {
	r := New(Options{EventCapacity: 16, EventSampleN: 1})
	r.ObserveTxnLatency(true, 10*time.Microsecond)
	r.ObserveTxnLatency(false, 20*time.Microsecond)
	r.ObserveHop(time.Microsecond)
	r.ObserveExec(2 * time.Microsecond)
	r.ObserveAdvance([4]time.Duration{1, 2, 3, 4}, 10, 5)
	r.Inc(CtrTxnsSubmitted, 2)
	r.Inc(CtrTxnsCommitted, 1)
	r.SetGauge(GaugeVersionRead, 3)
	r.SetCounterLag(CounterLag{Version: 4, SumLag: 7, MaxPairLag: 2})
	r.SetCounterLag(CounterLag{Version: 2, SumLag: 0, MaxPairLag: 0})
	r.RecordEvent(Event{Kind: EvVersionSwitch, Version: 4})

	s := r.Snapshot()
	if s.TxnRead.Count != 1 || s.TxnUpdate.Count != 1 {
		t.Fatalf("txn counts: read=%d update=%d", s.TxnRead.Count, s.TxnUpdate.Count)
	}
	if s.Counters["txns_submitted"] != 2 || s.Counters["txns_committed"] != 1 {
		t.Fatalf("counters: %v", s.Counters)
	}
	if s.Counters["advancements"] != 1 {
		t.Fatalf("ObserveAdvance should bump advancements: %v", s.Counters)
	}
	if s.AdvSweeps.Sum != 5 || s.AdvPhases[3].Count != 1 {
		t.Fatalf("advance: sweeps=%+v phases=%+v", s.AdvSweeps, s.AdvPhases)
	}
	if s.Gauges[GaugeVersionRead] != 3 {
		t.Fatalf("gauges: %v", s.Gauges)
	}
	// Lags come back sorted by version.
	if len(s.CounterLags) != 2 || s.CounterLags[0].Version != 2 || s.CounterLags[1].SumLag != 7 {
		t.Fatalf("lags: %+v", s.CounterLags)
	}
	if s.EventsRecorded != 1 {
		t.Fatalf("events recorded = %d", s.EventsRecorded)
	}

	// GC of old lag gauges.
	r.DropLagsBelow(4)
	if got := r.Snapshot().CounterLags; len(got) != 1 || got[0].Version != 4 {
		t.Fatalf("after DropLagsBelow: %+v", got)
	}
}

// TestNilRegistry: every method is a no-op on nil.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.ObserveTxnLatency(true, time.Second)
	r.ObserveHop(time.Second)
	r.ObserveExec(time.Second)
	r.ObserveAdvance([4]time.Duration{}, 0, 0)
	r.Inc(CtrDualWrites, 1)
	r.SetGauge("g", 1)
	r.SetCounterLag(CounterLag{})
	r.DropLagsBelow(10)
	r.RecordEvent(Event{})
	if r.SampleTick() {
		t.Fatal("nil registry sampled true")
	}
	if s := r.Snapshot(); s.Counters != nil || s.TxnRead.Count != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if r.Events() != nil {
		t.Fatal("nil registry returned events")
	}
}

// TestWritePrometheus checks the exposition contains the advertised
// families with correct label shapes.
func TestWritePrometheus(t *testing.T) {
	r := New(Options{})
	r.ObserveTxnLatency(true, time.Millisecond)
	r.ObserveAdvance([4]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}, 4*time.Millisecond, 3)
	r.SetGauge(GaugeVersionRead, 1)
	r.SetGauge(GaugeVersionUpdate, 2)
	r.SetCounterLag(CounterLag{Version: 2, SumLag: 5, MaxPairLag: 1})
	r.SetCounterLag(CounterLag{Part: 1, Version: 2, SumLag: 7, MaxPairLag: 2})
	r.SetGauge(PartitionVersionGauge(0), 3)
	r.SetGauge(PartitionVersionGauge(1), 4)

	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())
	out := sb.String()
	for _, want := range []string{
		`threev_txn_latency_seconds{kind="read",quantile="0.5"}`,
		`threev_txn_latency_seconds_count{kind="update"} 0`,
		`threev_subtxn_hop_seconds{quantile="0.99"}`,
		`threev_subtxn_hop_seconds_count 0`,
		`threev_advance_phase_seconds{phase="4",quantile="1"}`,
		`threev_advance_sweeps{quantile="1"} 3`,
		`threev_events_total{event="advancements"} 1`,
		"threev_version_read 1\n",
		"threev_version_update 2\n",
		`threev_counter_lag{part="0",version="2",stat="sum"} 5`,
		`threev_counter_lag{part="0",version="2",stat="max_pair"} 1`,
		`threev_counter_lag{part="1",version="2",stat="sum"} 7`,
		`threev_partition_version{part="0"} 3`,
		`threev_partition_version{part="1"} 4`,
		"threev_eventlog_recorded_total 0",
		`threev_txn_stage_seconds{stage="wire",quantile="0.5"}`,
		`threev_txn_stage_seconds_count{stage="fsync"} 0`,
		"threev_trace_spans_recorded_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// No empty label set artifacts.
	if strings.Contains(out, "{}") {
		t.Fatalf("exposition contains empty label braces:\n%s", out)
	}
}

// TestReplicationMetricsExposition pins the replica-group metric
// surface: the per-(partition, backup) lag gauges collapse into one
// labeled threev_replica_lag metric, and the replication counters land
// under threev_events_total with their documented event names — all
// deterministic (no cluster, no clock).
func TestReplicationMetricsExposition(t *testing.T) {
	r := New(Options{})
	r.Inc(CtrReplSends, 7)
	r.Inc(CtrReplApplies, 5)
	r.Inc(CtrReplAcks, 5)
	r.Inc(CtrPromotions, 1)
	r.SetGauge(ReplicaLagGauge(0, 1), 2)
	r.SetGauge(ReplicaLagGauge(0, 2), 0)
	r.SetGauge(ReplicaLagGauge(1, 0), 3)

	snap := r.Snapshot()
	for name, want := range map[string]int64{
		"repl_sends":   7,
		"repl_applies": 5,
		"repl_acks":    5,
		"promotions":   1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("counter %q = %d, want %d", name, got, want)
		}
	}

	var sb strings.Builder
	WritePrometheus(&sb, snap)
	out := sb.String()
	for _, want := range []string{
		"# TYPE threev_replica_lag gauge",
		`threev_replica_lag{part="0",node="1"} 2`,
		`threev_replica_lag{part="0",node="2"} 0`,
		`threev_replica_lag{part="1",node="0"} 3`,
		`threev_events_total{event="repl_sends"} 7`,
		`threev_events_total{event="repl_applies"} 5`,
		`threev_events_total{event="repl_acks"} 5`,
		`threev_events_total{event="promotions"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The raw per-gauge form must not leak out beside the labeled one.
	if strings.Contains(out, "replica_lag_p") {
		t.Fatalf("exposition leaks raw replica-lag gauge names:\n%s", out)
	}
	// The TYPE header is written once, not per sample.
	if strings.Count(out, "# TYPE threev_replica_lag gauge") != 1 {
		t.Fatalf("threev_replica_lag TYPE header repeated:\n%s", out)
	}
}
