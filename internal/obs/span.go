package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of the observability layer:
// a compact trace context that rides network frames, a bounded
// lock-free span ring per registry, per-stage latency attribution for
// sampled root transactions, and assembly of recorded spans into causal
// trees for the /traces.json endpoint.
//
// Identifier scheme (all uint64, all nonzero when meaningful):
//
//   - transaction trace ids are the transaction id itself
//     (origin<<48|seq, bits 62/63 clear), so a trace is findable from a
//     log line with no extra lookup;
//   - span ids minted by NextSpanID set bit 62 (1<<62 | node<<48 | seq),
//     so they can never collide with a root span id, which equals the
//     trace id;
//   - advancement-sweep trace ids set bit 63, so sweep traces can never
//     merge with transaction traces during assembly.

// TraceContext is the compact causal context carried across processes
// in the wire codec's frame header: which trace the message belongs to
// and which span caused it. The zero value means "not sampled" — the
// sampling bit is TraceID != 0, so an untraced message costs nothing on
// the wire (the codec emits the version-1 header unchanged).
type TraceContext struct {
	TraceID uint64
	// SpanID is the sender-side span that caused this message; the
	// receiver uses it as the parent of whatever span it records.
	SpanID uint64
}

// Sampled reports whether the context carries a live trace.
func (tc TraceContext) Sampled() bool { return tc.TraceID != 0 }

// SpanStage is one named sub-interval of a span (queue wait, fsync
// barrier, ...). Dur is nanoseconds except where a span's documentation
// says otherwise.
type SpanStage struct {
	Name string `json:"name"`
	Dur  int64  `json:"dur_ns"`
}

// Span is one recorded interval of a trace. It is flat and
// wire-friendly (core ships spans home in SpanReportMsg frames);
// assembly into trees happens at read time.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Name identifies the interval: "txn" (root, submit→completion),
	// "subtxn"/"query"/"compensate" (one execution), "advance" and
	// "phase1".."phase4" (sweeps).
	Name string `json:"name"`
	// Node is the recording endpoint (database node id, or the
	// coordinator id for sweep spans).
	Node  int   `json:"node"`
	Start int64 `json:"start_unix_ns"`
	Dur   int64 `json:"dur_ns"`
	// Attr is a small free-form annotation ("t0.42 committed",
	// "sweeps=3").
	Attr   string      `json:"attr,omitempty"`
	Stages []SpanStage `json:"stages,omitempty"`
}

// SpanRing is a bounded lock-free span store: writers claim a slot with
// one atomic add and publish with one atomic pointer store, so
// recording never contends on a mutex (unlike the EventLog, whose
// mutex is fine for its sampled, lower-rate traffic). Old spans are
// overwritten once the ring laps; readers may observe a torn window
// (miss a span being overwritten mid-scan) but never a torn span.
type SpanRing struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[Span]
}

// NewSpanRing builds a ring holding up to capacity spans (minimum 64).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 64 {
		capacity = 64
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], capacity)}
}

// Record publishes one span. Safe for unsynchronized concurrent use.
func (r *SpanRing) Record(s Span) {
	if r == nil {
		return
	}
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&s)
}

// Recorded returns the total number of spans ever recorded (including
// ones the ring has since overwritten).
func (r *SpanRing) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Dump returns the retained spans, oldest first.
func (r *SpanRing) Dump() []Span {
	if r == nil {
		return nil
	}
	n := r.pos.Load()
	cap64 := uint64(len(r.slots))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Span, 0, n-start)
	for i := start; i < n; i++ {
		if p := r.slots[i%cap64].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// TraceSpan is one node of an assembled trace tree.
type TraceSpan struct {
	Span
	Children []*TraceSpan `json:"children,omitempty"`
}

// Trace is one assembled causal tree.
type Trace struct {
	TraceID uint64 `json:"trace_id"`
	// Root is the tree (nil when the root span was never recorded or
	// was overwritten; the trace is then incomplete by definition).
	Root *TraceSpan `json:"root,omitempty"`
	// Spans counts every span recorded for this trace; Orphans counts
	// spans whose parent span is missing (excluding the root itself).
	Spans   int `json:"spans"`
	Orphans int `json:"orphans"`
	// Complete: a root exists and every other span hangs off it.
	Complete bool  `json:"complete"`
	DurNS    int64 `json:"dur_ns"`
}

// AssembleTraces groups spans by trace id and links parents to
// children. Orphan spans (parent missing — lost report, lapped ring)
// are kept as extra roots under no parent and counted, so incomplete
// traces are visible rather than silently pretty. Traces are returned
// newest-root-first; children are sorted by start time.
func AssembleTraces(spans []Span) []Trace {
	byTrace := make(map[uint64][]*TraceSpan)
	for i := range spans {
		s := &TraceSpan{Span: spans[i]}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make([]Trace, 0, len(byTrace))
	for tid, nodes := range byTrace {
		byID := make(map[uint64]*TraceSpan, len(nodes))
		for _, n := range nodes {
			byID[n.SpanID] = n
		}
		t := Trace{TraceID: tid, Spans: len(nodes)}
		for _, n := range nodes {
			if n.ParentID != 0 {
				if p, ok := byID[n.ParentID]; ok && p != n {
					p.Children = append(p.Children, n)
					continue
				}
			}
			// No parent recorded: the trace root (ParentID 0) or an
			// orphan.
			if n.ParentID == 0 && t.Root == nil {
				t.Root = n
			} else {
				t.Orphans++
			}
		}
		for _, n := range nodes {
			sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Start < n.Children[j].Start })
		}
		if t.Root != nil {
			t.DurNS = t.Root.Dur
		}
		t.Complete = t.Root != nil && t.Orphans == 0
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		var si, sj int64
		if out[i].Root != nil {
			si = out[i].Root.Start
		}
		if out[j].Root != nil {
			sj = out[j].Root.Start
		}
		if si != sj {
			return si > sj
		}
		return out[i].TraceID > out[j].TraceID
	})
	return out
}

// Latency-stage indices for the per-stage attribution histograms. The
// first five stages partition a sampled root transaction's end-to-end
// latency exactly (StageTotal): wire transit of the root
// subtransaction, its queue wait, its service time, and everything
// after its execution until the completion edge (subtree + acks).
// StageFsync is a sub-interval of StageService and StageSession a
// sub-interval of StageWire; neither joins the partition sum.
const (
	StageWire    = iota // root subtxn: send → session delivery
	StageQueue          // root subtxn: delivery → worker pickup
	StageService        // root subtxn: worker execution (fsync included)
	StageAck            // root exec end → completion observed at the handle
	StageTotal          // submit → completion (same sampled population)
	StageFsync          // durability barrier inside StageService
	StageSession        // reliable-session reorder hold inside StageWire
	NumStages
)

// StageNames are the exposition labels, index-aligned with the Stage
// constants.
var StageNames = [NumStages]string{"wire", "queue", "service", "ack", "total", "fsync", "session"}

// rootExec is the root subtransaction's stage breakdown, parked by the
// executing node until the completion edge merges it into the root
// span (the two happen on different goroutines in general, but the
// node's report always happens-before completion).
type rootExec struct {
	node                        int
	wire, queue, service, fsync time.Duration
	execEnd                     time.Time
}

// tracer is the Registry's tracing state; nil when tracing is disabled
// (TraceSampleN == 0), so the disabled path costs one nil check.
type tracer struct {
	sampleN int64
	slow    time.Duration
	tick    atomic.Int64
	spanSeq atomic.Uint64
	ring    *SpanRing

	stages [NumStages]Histogram

	pendMu sync.Mutex
	pend   map[uint64]rootExec

	hookMu sync.Mutex
	slow1  func(Span)
}

// TraceEnabled reports whether span recording is on (a registry built
// with Options.TraceSampleN > 0).
func (r *Registry) TraceEnabled() bool {
	return r != nil && r.trace != nil
}

// TraceSampleTick makes one head-sampling decision: true for 1 in
// TraceSampleN calls (always true when TraceSampleN is 1). False on a
// nil or trace-disabled registry.
func (r *Registry) TraceSampleTick() bool {
	if r == nil || r.trace == nil {
		return false
	}
	return r.trace.tick.Add(1)%r.trace.sampleN == 1%r.trace.sampleN
}

// NextSpanID mints a process-unique span id namespaced by the minting
// endpoint (bit 62 set, see the id scheme above). Zero on a
// trace-disabled registry.
func (r *Registry) NextSpanID(node int) uint64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return 1<<62 | uint64(node+1)<<48 | (r.trace.spanSeq.Add(1) & (1<<48 - 1))
}

// RecordSpan publishes one completed span into the ring.
func (r *Registry) RecordSpan(s Span) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.ring.Record(s)
}

// SpansRecorded returns the total spans ever recorded here.
func (r *Registry) SpansRecorded() uint64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.ring.Recorded()
}

// ObserveStage records one value into a stage-attribution histogram.
func (r *Registry) ObserveStage(stage int, d time.Duration) {
	if r == nil || r.trace == nil || stage < 0 || stage >= NumStages {
		return
	}
	r.trace.stages[stage].ObserveDuration(d)
}

// TraceRootExec parks the root subtransaction's stage breakdown for
// traceID until TraceTxnDone merges it into the root span. Called by
// the executing node strictly before it reports the root done, so the
// breakdown is always parked before the completion edge can fire.
func (r *Registry) TraceRootExec(traceID uint64, node int, wire, queue, service, fsync time.Duration, execEnd time.Time) {
	if r == nil || r.trace == nil {
		return
	}
	t := r.trace
	t.pendMu.Lock()
	if t.pend == nil {
		t.pend = make(map[uint64]rootExec)
	}
	if len(t.pend) > 65536 {
		// Backstop against handles that never complete; sampled
		// transactions all complete in practice.
		t.pend = make(map[uint64]rootExec)
	}
	t.pend[traceID] = rootExec{node: node, wire: wire, queue: queue, service: service, fsync: fsync, execEnd: execEnd}
	t.pendMu.Unlock()
}

// SetSlowTraceHook installs fn to be called (synchronously, on the
// completion path) with the root span of every transaction whose
// end-to-end latency reached Options.TraceSlow. Used by threev-node's
// slow-transaction log line.
func (r *Registry) SetSlowTraceHook(fn func(Span)) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.hookMu.Lock()
	r.trace.slow1 = fn
	r.trace.hookMu.Unlock()
}

// TraceTxnDone closes out one completed transaction: head-sampled
// transactions get their root span (stages merged from TraceRootExec)
// recorded and the stage histograms fed; unsampled transactions whose
// latency reached the slow threshold get a post-hoc root-only span, so
// outliers appear in /traces.json?slow=... even at low sample rates.
// It reports whether the transaction was slow.
func (r *Registry) TraceTxnDone(traceID uint64, node int, sampled bool, submitted time.Time, total time.Duration, attr string) (slow bool) {
	if r == nil || r.trace == nil {
		return false
	}
	t := r.trace
	slow = t.slow > 0 && total >= t.slow
	if !sampled && !slow {
		return false
	}
	sp := Span{
		TraceID: traceID,
		SpanID:  traceID, // root span id == trace id by convention
		Name:    "txn",
		Node:    node,
		Start:   submitted.UnixNano(),
		Dur:     int64(total),
		Attr:    attr,
	}
	if sampled {
		t.pendMu.Lock()
		re, ok := t.pend[traceID]
		delete(t.pend, traceID)
		t.pendMu.Unlock()
		if ok {
			ack := total - (re.wire + re.queue + re.service)
			if ack < 0 {
				ack = 0
			}
			sp.Stages = []SpanStage{
				{Name: StageNames[StageWire], Dur: int64(re.wire)},
				{Name: StageNames[StageQueue], Dur: int64(re.queue)},
				{Name: StageNames[StageService], Dur: int64(re.service)},
				{Name: StageNames[StageAck], Dur: int64(ack)},
				{Name: StageNames[StageFsync], Dur: int64(re.fsync)},
			}
			t.stages[StageWire].ObserveDuration(re.wire)
			t.stages[StageQueue].ObserveDuration(re.queue)
			t.stages[StageService].ObserveDuration(re.service)
			t.stages[StageAck].ObserveDuration(ack)
			t.stages[StageTotal].ObserveDuration(total)
			t.stages[StageFsync].ObserveDuration(re.fsync)
		}
	}
	if slow {
		sp.Attr += " slow"
		t.hookMu.Lock()
		fn := t.slow1
		t.hookMu.Unlock()
		if fn != nil {
			fn(sp)
		}
	}
	t.ring.Record(sp)
	return slow
}

// Traces assembles every span currently retained in the ring.
func (r *Registry) Traces() []Trace {
	if r == nil || r.trace == nil {
		return nil
	}
	return AssembleTraces(r.trace.ring.Dump())
}
