// Package obs is the protocol observability layer: lock-free latency
// histograms, advancement phase timers, counter-lag gauges, a bounded
// structured event log, and Prometheus/JSON exposition — all stdlib
// only, and cheap enough to stay enabled on the hot path (atomic bucket
// increments; the event log samples transaction-level events).
//
// Everything is nil-safe: a nil *Registry (observability disabled)
// accepts every recording call as a no-op, so instrumented code never
// branches on configuration.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are log-spaced with subBuckets linear buckets per
// octave (power of two), giving ≤ 6.25% relative bucket width; with the
// within-bucket interpolation in Quantile, nearby distinct latencies
// report distinct quantiles instead of collapsing to shared bucket
// edges (the BENCH_1 "every p50 is exactly 2.621 ms" artifact). Values
// are int64 — nanoseconds for latencies, plain counts for e.g.
// quiescence sweeps.
const (
	subBuckets = 8
	numBuckets = 64 * subBuckets
)

// bucketIndex maps a value to its bucket using integer math only
// (deterministic, no floating point on the hot path). Values below 1
// land in bucket 0.
func bucketIndex(v int64) int {
	if v < 2 {
		return 0
	}
	o := bits.Len64(uint64(v)) - 1 // floor(log2 v) ≥ 1
	if o < 3 {
		return o * subBuckets // octave too narrow to subdivide
	}
	low := int64(1) << o
	sub := int((v - low) >> (o - 3)) // 0..7
	return o*subBuckets + sub
}

// bucketUpper returns the largest value that maps to bucket i.
func bucketUpper(i int) int64 {
	o := i / subBuckets
	sub := i % subBuckets
	low := int64(1) << o
	if o < 3 {
		return int64(1)<<(o+1) - 1
	}
	return low + int64(sub+1)*(low>>3) - 1
}

// bucketLowerOf returns the smallest value that maps to the bucket
// whose upper edge is upper (the interpolation base in Quantile).
func bucketLowerOf(upper int64) int64 {
	i := bucketIndex(upper)
	if i == 0 {
		return 0
	}
	return bucketUpper(i-1) + 1
}

// Histogram is a fixed-bucket, log-spaced histogram whose Observe path
// is three atomic adds and one atomic max — safe for unsynchronized use
// from every worker goroutine.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot returns a consistent-enough copy for reporting. (Counts are
// read without a global lock; a snapshot taken mid-Observe may be off
// by the in-flight sample, which is fine for monitoring.)
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: Count samples with value
// ≤ Upper (and greater than the previous bucket's Upper).
type Bucket struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram, serializable and
// queryable for quantiles.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1): the rank-⌈q·count⌉
// sample's bucket is located and the value is linearly interpolated
// across the bucket by the rank's position within it, then clamped to
// the true observed maximum. Interpolation keeps distinct nearby
// distributions from reporting the identical bucket edge. Zero if
// empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			low := bucketLowerOf(b.Upper)
			// Position of the rank within this bucket, at the midpoint
			// of its 1/Count-wide slot: pos ∈ (0, 1).
			pos := (float64(rank-(cum-b.Count)) - 0.5) / float64(b.Count)
			v := low + int64(float64(b.Upper-low)*pos+0.5)
			if v > s.Max {
				return s.Max
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the average observed value (zero if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// P50, P95, P99 are the quantiles every report wants.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P95 returns the 95th-percentile upper bound.
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }

// P99 returns the 99th-percentile upper bound.
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }
