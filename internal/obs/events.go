package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded in the structured event log.
const (
	EvTxnSpawn      = "txn_spawn"      // a transaction was submitted
	EvTxnDone       = "txn_done"       // a transaction tree fully terminated
	EvTxnAbort      = "txn_abort"      // a tree terminated compensated/aborted
	EvDualWrite     = "dual_write"     // an update hit more than one version
	EvVersionSwitch = "version_switch" // vu or vr switched cluster-wide
	EvAdvancePhase  = "advance_phase"  // one advancement phase completed
	EvGC            = "gc"             // garbage collection ran at a node
	EvNCAbort       = "nc_abort"       // 2PC decided abort for an NC txn
	EvTakeover      = "takeover"       // a standby claimed the coordinator role
)

// Event is one entry of the structured event log.
type Event struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Kind    string    `json:"kind"`
	Node    int       `json:"node,omitempty"`
	Txn     string    `json:"txn,omitempty"`
	Version int64     `json:"version,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog is a bounded ring buffer of Events for post-mortems: the
// newest Cap events are retained, older ones are overwritten. Writers
// serialize on a mutex — protocol-level events are rare, and
// transaction-level events are sampled (see Registry) before they reach
// the log, so the lock is off the common path.
type EventLog struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; next%len(buf) is the write slot

	sampleN uint64
	tick    atomic.Uint64
}

// NewEventLog returns a ring holding the last capacity events; sampled
// recordings keep 1 in sampleN (sampleN ≤ 1 keeps all).
func NewEventLog(capacity int, sampleN int) *EventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &EventLog{buf: make([]Event, capacity), sampleN: uint64(sampleN)}
}

// Record appends one event, overwriting the oldest if full. The event's
// Seq and At are assigned here.
func (l *EventLog) Record(e Event) {
	if l == nil {
		return
	}
	e.At = time.Now()
	l.mu.Lock()
	e.Seq = l.next
	l.buf[l.next%uint64(len(l.buf))] = e
	l.next++
	l.mu.Unlock()
}

// SampleTick reports whether a sampled event should be recorded now
// (1 in sampleN). Callers use it to skip building the Event at all on
// suppressed ticks, keeping the hot path allocation-free.
func (l *EventLog) SampleTick() bool {
	if l == nil {
		return false
	}
	return l.tick.Add(1)%l.sampleN == 0
}

// Recorded returns the total number of events ever recorded (including
// ones the ring has since overwritten).
func (l *EventLog) Recorded() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dump returns the retained events oldest-first.
func (l *EventLog) Dump() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	cap64 := uint64(len(l.buf))
	start := uint64(0)
	count := n
	if n > cap64 {
		start = n - cap64
		count = cap64
	}
	out := make([]Event, 0, count)
	for i := start; i < n; i++ {
		out = append(out, l.buf[i%cap64])
	}
	return out
}
