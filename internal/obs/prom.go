package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// secs converts a nanosecond value to seconds for exposition.
func secs(ns int64) float64 { return float64(ns) / 1e9 }

// writeSummary emits one Prometheus summary (quantiles + _sum/_count)
// from a histogram snapshot of nanosecond values.
func writeSummary(w io.Writer, name, labels string, s HistSnapshot) {
	prefix := name + "{"
	if labels != "" {
		prefix += labels + ","
	}
	for _, q := range []struct {
		q string
		v int64
	}{{"0.5", s.P50()}, {"0.95", s.P95()}, {"0.99", s.P99()}, {"1", s.Max}} {
		fmt.Fprintf(w, "%squantile=%q} %g\n", prefix, q.q, secs(q.v))
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, secs(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), stdlib only.
func WritePrometheus(w io.Writer, s Snapshot) {
	fmt.Fprintln(w, "# HELP threev_txn_latency_seconds End-to-end transaction latency by kind.")
	fmt.Fprintln(w, "# TYPE threev_txn_latency_seconds summary")
	writeSummary(w, "threev_txn_latency_seconds", `kind="read"`, s.TxnRead)
	writeSummary(w, "threev_txn_latency_seconds", `kind="update"`, s.TxnUpdate)

	fmt.Fprintln(w, "# HELP threev_subtxn_hop_seconds Per-hop subtransaction RPC latency (send to execution start).")
	fmt.Fprintln(w, "# TYPE threev_subtxn_hop_seconds summary")
	writeSummary(w, "threev_subtxn_hop_seconds", "", s.SubtxnHop)

	fmt.Fprintln(w, "# HELP threev_subtxn_exec_seconds Subtransaction local service time.")
	fmt.Fprintln(w, "# TYPE threev_subtxn_exec_seconds summary")
	writeSummary(w, "threev_subtxn_exec_seconds", "", s.SubtxnExec)

	fmt.Fprintln(w, "# HELP threev_advance_phase_seconds Version-advancement phase wall time (phases 1-4 of Section 4.3).")
	fmt.Fprintln(w, "# TYPE threev_advance_phase_seconds summary")
	for i, p := range s.AdvPhases {
		writeSummary(w, "threev_advance_phase_seconds", fmt.Sprintf(`phase="%d"`, i+1), p)
	}

	fmt.Fprintln(w, "# HELP threev_advance_total_seconds Full advancement cycle wall time.")
	fmt.Fprintln(w, "# TYPE threev_advance_total_seconds summary")
	writeSummary(w, "threev_advance_total_seconds", "", s.AdvTotal)

	fmt.Fprintln(w, "# HELP threev_advance_sweeps Counter sweeps needed per advancement cycle.")
	fmt.Fprintln(w, "# TYPE threev_advance_sweeps summary")
	for _, q := range []struct {
		q string
		v int64
	}{{"0.5", s.AdvSweeps.P50()}, {"0.99", s.AdvSweeps.P99()}, {"1", s.AdvSweeps.Max}} {
		fmt.Fprintf(w, "threev_advance_sweeps{quantile=%q} %d\n", q.q, q.v)
	}
	fmt.Fprintf(w, "threev_advance_sweeps_sum %d\n", s.AdvSweeps.Sum)
	fmt.Fprintf(w, "threev_advance_sweeps_count %d\n", s.AdvSweeps.Count)

	fmt.Fprintln(w, "# HELP threev_wire_encode_seconds Binary frame encode latency (tcpnet sender path).")
	fmt.Fprintln(w, "# TYPE threev_wire_encode_seconds summary")
	writeSummary(w, "threev_wire_encode_seconds", "", s.WireEncode)

	fmt.Fprintln(w, "# HELP threev_wire_decode_seconds Binary frame decode latency (tcpnet receiver path).")
	fmt.Fprintln(w, "# TYPE threev_wire_decode_seconds summary")
	writeSummary(w, "threev_wire_decode_seconds", "", s.WireDecode)

	fmt.Fprintln(w, "# HELP threev_wal_append_seconds WAL record append latency (frame + buffered write).")
	fmt.Fprintln(w, "# TYPE threev_wal_append_seconds summary")
	writeSummary(w, "threev_wal_append_seconds", "", s.WALAppend)

	fmt.Fprintln(w, "# HELP threev_wal_fsync_seconds WAL fsync (group-commit flush) latency.")
	fmt.Fprintln(w, "# TYPE threev_wal_fsync_seconds summary")
	writeSummary(w, "threev_wal_fsync_seconds", "", s.WALFsync)

	fmt.Fprintln(w, "# HELP threev_events_total Protocol events by kind.")
	fmt.Fprintln(w, "# TYPE threev_events_total counter")
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "threev_events_total{event=%q} %d\n", k, s.Counters[k])
	}

	gnames := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	wrotePartVer := false
	wroteReplLag := false
	for _, k := range gnames {
		// Per-partition version gauges collapse into one labeled metric.
		var part int
		if n, err := fmt.Sscanf(k, "partition_version_p%d", &part); err == nil && n == 1 {
			if !wrotePartVer {
				fmt.Fprintln(w, "# TYPE threev_partition_version gauge")
				wrotePartVer = true
			}
			fmt.Fprintf(w, "threev_partition_version{part=\"%d\"} %g\n", part, s.Gauges[k])
			continue
		}
		// Per-(partition, backup) replica lag gauges collapse likewise.
		var node int
		if n, err := fmt.Sscanf(k, "replica_lag_p%d_n%d", &part, &node); err == nil && n == 2 {
			if !wroteReplLag {
				fmt.Fprintln(w, "# HELP threev_replica_lag Replication frames sent but not yet acked, per (partition, backup).")
				fmt.Fprintln(w, "# TYPE threev_replica_lag gauge")
				wroteReplLag = true
			}
			fmt.Fprintf(w, "threev_replica_lag{part=\"%d\",node=\"%d\"} %g\n", part, node, s.Gauges[k])
			continue
		}
		fmt.Fprintf(w, "# TYPE threev_%s gauge\n", k)
		fmt.Fprintf(w, "threev_%s %g\n", k, s.Gauges[k])
	}

	fmt.Fprintln(w, "# HELP threev_counter_lag Live R[v][p][q]-C[v][p][q] lag per (partition, version) (0 = quiescent).")
	fmt.Fprintln(w, "# TYPE threev_counter_lag gauge")
	for _, l := range s.CounterLags {
		fmt.Fprintf(w, "threev_counter_lag{part=\"%d\",version=\"%d\",stat=\"sum\"} %d\n", l.Part, l.Version, l.SumLag)
		fmt.Fprintf(w, "threev_counter_lag{part=\"%d\",version=\"%d\",stat=\"max_pair\"} %d\n", l.Part, l.Version, l.MaxPairLag)
	}

	fmt.Fprintln(w, "# HELP threev_eventlog_recorded_total Events recorded into the ring buffer.")
	fmt.Fprintln(w, "# TYPE threev_eventlog_recorded_total counter")
	fmt.Fprintf(w, "threev_eventlog_recorded_total %d\n", s.EventsRecorded)

	fmt.Fprintln(w, "# HELP threev_txn_stage_seconds Per-stage latency attribution for head-sampled root transactions (wire+queue+service+ack = total; fsync ⊂ service, session ⊂ wire).")
	fmt.Fprintln(w, "# TYPE threev_txn_stage_seconds summary")
	for i, name := range StageNames {
		writeSummary(w, "threev_txn_stage_seconds", fmt.Sprintf("stage=%q", name), s.Stages[i])
	}

	fmt.Fprintln(w, "# HELP threev_trace_spans_recorded_total Trace spans recorded into the span ring.")
	fmt.Fprintln(w, "# TYPE threev_trace_spans_recorded_total counter")
	fmt.Fprintf(w, "threev_trace_spans_recorded_total %d\n", s.SpansRecorded)
}

// Source supplies the exposition endpoint with live data.
type Source interface {
	ObsSnapshot() Snapshot
	ObsEvents() []Event
}

// TraceSource is optionally implemented by a Source that can assemble
// traces; when it is, Handler also serves /traces.json.
type TraceSource interface {
	ObsTraces() []Trace
}

// Handler serves the observability endpoints from src:
//
//	/metrics       Prometheus text format
//	/metrics.json  the Snapshot as JSON
//	/events.json   the event-log dump as JSON
//	/traces.json   assembled trace trees (when src implements
//	               TraceSource); ?slow=<dur> keeps only traces at least
//	               that long, e.g. /traces.json?slow=5ms
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src.ObsSnapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(src.ObsSnapshot())
	})
	mux.HandleFunc("/events.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(src.ObsEvents())
	})
	if ts, ok := src.(TraceSource); ok {
		mux.HandleFunc("/traces.json", func(w http.ResponseWriter, r *http.Request) {
			traces := ts.ObsTraces()
			if arg := r.URL.Query().Get("slow"); arg != "" {
				min, err := time.ParseDuration(arg)
				if err != nil {
					http.Error(w, "bad slow duration: "+err.Error(), http.StatusBadRequest)
					return
				}
				kept := traces[:0]
				for _, t := range traces {
					if t.DurNS >= int64(min) {
						kept = append(kept, t)
					}
				}
				traces = kept
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(traces)
		})
	}
	return mux
}
