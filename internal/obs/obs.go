package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter indices for Registry.Inc / Snapshot.Counters.
const (
	CtrTxnsSubmitted = iota
	CtrTxnsCommitted
	CtrTxnsCompensated
	CtrTxnsAborted
	CtrAdvancements
	CtrDualWrites
	CtrCoordResends
	CtrCheckpoints
	CtrTakeovers
	CtrStaleTermRejects
	CtrReplSends
	CtrReplApplies
	CtrReplAcks
	CtrPromotions
	numCounters
)

// counterNames are the exposition names, index-aligned with the Ctr
// constants.
var counterNames = [numCounters]string{
	"txns_submitted",
	"txns_committed",
	"txns_compensated",
	"txns_aborted",
	"advancements",
	"dual_writes",
	"coord_resends",
	"checkpoints",
	"takeovers",
	"stale_term_rejects",
	"repl_sends",
	"repl_applies",
	"repl_acks",
	"promotions",
}

// Gauge names set by the protocol layers.
const (
	GaugeVersionRead   = "version_read"
	GaugeVersionUpdate = "version_update"
	// Transport-level accounting, refreshed from transport.Stats at
	// snapshot time: messages lost to fault injection (drops +
	// partition blackholing), injected duplicates, and the reliable
	// session layer's repair work (retransmissions sent, duplicate
	// frames discarded at receivers).
	GaugeNetDropped     = "transport_dropped"
	GaugeNetDuplicated  = "transport_duplicated"
	GaugeNetRetransmits = "transport_retransmits"
	GaugeNetDupDropped  = "transport_dup_dropped"
	// Real-network accounting (tcpnet transport only): frame bytes on
	// the wire and outbound connections re-dialed after a failure.
	GaugeNetBytesSent     = "net_bytes_sent"
	GaugeNetBytesReceived = "net_bytes_received"
	GaugeNetReconnects    = "net_reconnects"
	// Durability accounting (wal package): the active segment index and
	// the total bytes appended to the log since open.
	GaugeWALSegment = "wal_segment"
	GaugeWALBytes   = "wal_bytes_appended"
	// Failover accounting: the highest coordinator fencing term this
	// process has observed (0 until a fenced coordinator speaks), and
	// whether a locally hosted manager currently holds the active
	// coordinator role (1) or all local managers are standbys (0).
	GaugeCoordTerm   = "coord_term"
	GaugeCoordActive = "coord_active"
	// Batching accounting: total link flushes and the mean number of
	// messages coalesced per flush (1.0 means no coalescing happened).
	// Derived from the batch-size histogram at snapshot time.
	GaugeNetFlushes       = "net_flushes"
	GaugeNetBatchMeanSize = "net_batch_mean_size"
)

// PartitionVersionGauge names the per-partition read-version gauge
// ("partition_version_p<part>", exposed as threev_partition_version_p<part>).
// Partitioned clusters publish one per partition next to the legacy
// global version_read/version_update pair, which track partition 0.
func PartitionVersionGauge(part int) string {
	return fmt.Sprintf("partition_version_p%d", part)
}

// ReplicaLagGauge names the per-partition per-backup replication lag
// gauge ("replica_lag_p<part>_n<node>", exposed as the labeled
// threev_replica_lag{part,node} in Prometheus text). A partition's
// primary publishes one per backup: its sent stream frontier minus the
// backup's acked applied frontier.
func ReplicaLagGauge(part, node int) string {
	return fmt.Sprintf("replica_lag_p%d_n%d", part, node)
}

// CounterLag is one sampled observation of the quiescence quantity for
// a version v: how far the request counters R[v][p][q] run ahead of the
// completion counters C[v][p][q]. Quiescence (advancement Phases 2/4)
// is exactly SumLag == 0 twice in a row.
type CounterLag struct {
	// Part is the partition whose counter matrix was sampled (always 0
	// in unpartitioned clusters; each partition's matrix is independent).
	Part    int   `json:"part,omitempty"`
	Version int64 `json:"version"`
	// SumLag is Σ_pq (R[v][p][q] − C[v][p][q]).
	SumLag int64 `json:"sum_lag"`
	// MaxPairLag is max_pq (R[v][p][q] − C[v][p][q]).
	MaxPairLag int64 `json:"max_pair_lag"`
}

// Options configures a Registry.
type Options struct {
	// EventCapacity bounds the event ring; 0 means 4096.
	EventCapacity int
	// EventSampleN keeps 1 in N transaction-level events; 0 means 16.
	// Protocol-level events (version switches, GC, advancement phases)
	// are always recorded.
	EventSampleN int
	// TraceSampleN enables distributed tracing (span recording, stage
	// attribution, /traces.json) and head-samples 1 in N submitted
	// transactions (1 = every transaction). 0 — the default — disables
	// tracing entirely: no span ring is allocated, no trace context is
	// stamped on messages, and frames stay in the version-1 format.
	TraceSampleN int
	// TraceSlow, when positive, post-hoc records a root-only span for
	// every transaction (sampled or not) whose end-to-end latency
	// reaches it, and fires the slow-trace hook. Tracing must be
	// enabled (TraceSampleN > 0).
	TraceSlow time.Duration
	// TraceCapacity bounds the span ring; 0 means 4096 spans.
	TraceCapacity int
}

// Registry is the per-cluster observability hub. All methods are safe
// for concurrent use and all are no-ops on a nil receiver.
type Registry struct {
	txnRead    Histogram // end-to-end read txn latency (ns)
	txnUpdate  Histogram // end-to-end update txn latency (ns)
	subtxnHop  Histogram // send → execution-start per-hop latency (ns)
	subtxnExec Histogram // subtransaction service time (ns)

	advPhase  [4]Histogram // advancement phase wall time (ns)
	advTotal  Histogram    // full cycle wall time (ns)
	advSweeps Histogram    // counter sweeps per cycle (count)

	wireEncode Histogram // frame encode time (ns; tcpnet only)
	wireDecode Histogram // frame decode time (ns; tcpnet only)

	batchSize  Histogram // messages coalesced per link flush (count)
	batchLinks sync.Map  // link label ("from→to" / peer addr) -> *Histogram

	walAppend Histogram // WAL record append time (ns; durable nodes only)
	walFsync  Histogram // WAL fsync/group-commit time (ns; durable nodes only)

	counters [numCounters]atomic.Int64

	events *EventLog
	trace  *tracer // nil when tracing is disabled (TraceSampleN == 0)

	mu     sync.Mutex
	gauges map[string]float64
	lags   map[lagKey]CounterLag
}

// lagKey identifies one lag gauge: a (partition, version) pair.
type lagKey struct {
	part    int
	version int64
}

// New builds a Registry.
func New(opts Options) *Registry {
	cap := opts.EventCapacity
	if cap <= 0 {
		cap = 4096
	}
	sample := opts.EventSampleN
	if sample <= 0 {
		sample = 16
	}
	r := &Registry{
		events: NewEventLog(cap, sample),
		gauges: make(map[string]float64),
		lags:   make(map[lagKey]CounterLag),
	}
	if opts.TraceSampleN > 0 {
		spanCap := opts.TraceCapacity
		if spanCap <= 0 {
			spanCap = 4096
		}
		r.trace = &tracer{
			sampleN: int64(opts.TraceSampleN),
			slow:    opts.TraceSlow,
			ring:    NewSpanRing(spanCap),
		}
	}
	return r
}

// ObserveTxnLatency records one completed transaction's end-to-end
// latency.
func (r *Registry) ObserveTxnLatency(readOnly bool, d time.Duration) {
	if r == nil {
		return
	}
	if readOnly {
		r.txnRead.ObserveDuration(d)
	} else {
		r.txnUpdate.ObserveDuration(d)
	}
}

// ObserveHop records the send→execution-start latency of one
// subtransaction RPC.
func (r *Registry) ObserveHop(d time.Duration) {
	if r == nil {
		return
	}
	r.subtxnHop.ObserveDuration(d)
}

// ObserveExec records one subtransaction's local service time.
func (r *Registry) ObserveExec(d time.Duration) {
	if r == nil {
		return
	}
	r.subtxnExec.ObserveDuration(d)
}

// ObserveAdvance records one completed advancement cycle's per-phase
// wall times and total sweep count, and bumps the advancement counter.
func (r *Registry) ObserveAdvance(phases [4]time.Duration, total time.Duration, sweeps int) {
	if r == nil {
		return
	}
	for i, d := range phases {
		r.advPhase[i].ObserveDuration(d)
	}
	r.advTotal.ObserveDuration(total)
	r.advSweeps.Observe(int64(sweeps))
	r.counters[CtrAdvancements].Add(1)
}

// ObserveWireEncode records one frame's binary-encode latency (tcpnet
// sender path).
func (r *Registry) ObserveWireEncode(d time.Duration) {
	if r == nil {
		return
	}
	r.wireEncode.ObserveDuration(d)
}

// ObserveWireDecode records one frame's binary-decode latency (tcpnet
// receiver path).
func (r *Registry) ObserveWireDecode(d time.Duration) {
	if r == nil {
		return
	}
	r.wireDecode.ObserveDuration(d)
}

// ObserveBatchSize records one link flush of n coalesced messages.
// link labels the directed link ("0→2" for in-process transports, the
// peer address for tcpnet); every transport that batches feeds this,
// so the snapshot proves — per link — that coalescing actually
// happened (a mean of 1.0 means it did not).
func (r *Registry) ObserveBatchSize(link string, n int) {
	if r == nil {
		return
	}
	r.batchSize.Observe(int64(n))
	if h, ok := r.batchLinks.Load(link); ok {
		h.(*Histogram).Observe(int64(n))
		return
	}
	h, _ := r.batchLinks.LoadOrStore(link, &Histogram{})
	h.(*Histogram).Observe(int64(n))
}

// ObserveWALAppend records one WAL record's append (frame + buffered
// write) latency.
func (r *Registry) ObserveWALAppend(d time.Duration) {
	if r == nil {
		return
	}
	r.walAppend.ObserveDuration(d)
}

// ObserveWALFsync records one fsync (group-commit flush) latency on the
// WAL's active segment.
func (r *Registry) ObserveWALFsync(d time.Duration) {
	if r == nil {
		return
	}
	r.walFsync.ObserveDuration(d)
}

// Inc bumps one of the Ctr* counters by delta.
func (r *Registry) Inc(counter int, delta int64) {
	if r == nil || counter < 0 || counter >= numCounters {
		return
	}
	r.counters[counter].Add(delta)
}

// SetGauge publishes a named gauge value.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// SetCounterLag publishes the latest lag observation for a
// (partition, version) pair.
func (r *Registry) SetCounterLag(l CounterLag) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lags[lagKey{l.Part, l.Version}] = l
	r.mu.Unlock()
}

// DropLagsBelow forgets lag gauges for versions below v in every
// partition (mirroring the protocol's counter garbage collection).
func (r *Registry) DropLagsBelow(v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for k := range r.lags {
		if k.version < v {
			delete(r.lags, k)
		}
	}
	r.mu.Unlock()
}

// DropPartLagsBelow forgets one partition's lag gauges for versions
// below v; the partitioned coordinator calls it after each sweep so a
// partition's GC never erases another partition's live gauges.
func (r *Registry) DropPartLagsBelow(part int, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for k := range r.lags {
		if k.part == part && k.version < v {
			delete(r.lags, k)
		}
	}
	r.mu.Unlock()
}

// SampleTick reports whether a sampled (transaction-level) event should
// be recorded now. Returns false on a nil registry, so callers can skip
// building the Event entirely.
func (r *Registry) SampleTick() bool {
	if r == nil {
		return false
	}
	return r.events.SampleTick()
}

// RecordEvent appends an event to the ring (always; pair with
// SampleTick for high-frequency kinds).
func (r *Registry) RecordEvent(e Event) {
	if r == nil {
		return
	}
	r.events.Record(e)
}

// Events returns the retained event-log entries oldest-first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.Dump()
}

// Snapshot is a point-in-time, JSON-serializable view of the whole
// registry — the value ClusterMetrics.Obs carries and the exposition
// endpoint serves.
type Snapshot struct {
	TxnRead    HistSnapshot `json:"txn_read"`
	TxnUpdate  HistSnapshot `json:"txn_update"`
	SubtxnHop  HistSnapshot `json:"subtxn_hop"`
	SubtxnExec HistSnapshot `json:"subtxn_exec"`

	AdvPhases [4]HistSnapshot `json:"advance_phases"`
	AdvTotal  HistSnapshot    `json:"advance_total"`
	AdvSweeps HistSnapshot    `json:"advance_sweeps"`

	WireEncode HistSnapshot `json:"wire_encode"`
	WireDecode HistSnapshot `json:"wire_decode"`

	// BatchSize is the distribution of messages coalesced per link
	// flush across every batching transport; BatchLinks breaks it down
	// by directed link (empty when batching never ran).
	BatchSize  HistSnapshot            `json:"batch_size"`
	BatchLinks map[string]HistSnapshot `json:"batch_links,omitempty"`

	WALAppend HistSnapshot `json:"wal_append"`
	WALFsync  HistSnapshot `json:"wal_fsync"`

	// Stages are the per-stage latency-attribution histograms for
	// head-sampled root transactions, index-aligned with the Stage
	// constants (wire, queue, service, ack, total, fsync, session).
	// All zero-valued when tracing is disabled.
	Stages [NumStages]HistSnapshot `json:"stages"`

	Counters    map[string]int64   `json:"counters,omitempty"`
	Gauges      map[string]float64 `json:"gauges,omitempty"`
	CounterLags []CounterLag       `json:"counter_lags,omitempty"`

	EventsRecorded uint64 `json:"events_recorded"`
	SpansRecorded  uint64 `json:"spans_recorded"`
}

// Snapshot captures the registry. A nil registry yields a zero value.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.TxnRead = r.txnRead.Snapshot()
	s.TxnUpdate = r.txnUpdate.Snapshot()
	s.SubtxnHop = r.subtxnHop.Snapshot()
	s.SubtxnExec = r.subtxnExec.Snapshot()
	for i := range r.advPhase {
		s.AdvPhases[i] = r.advPhase[i].Snapshot()
	}
	s.AdvTotal = r.advTotal.Snapshot()
	s.AdvSweeps = r.advSweeps.Snapshot()
	s.WireEncode = r.wireEncode.Snapshot()
	s.WireDecode = r.wireDecode.Snapshot()
	s.BatchSize = r.batchSize.Snapshot()
	r.batchLinks.Range(func(k, v any) bool {
		if s.BatchLinks == nil {
			s.BatchLinks = make(map[string]HistSnapshot)
		}
		s.BatchLinks[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	s.WALAppend = r.walAppend.Snapshot()
	s.WALFsync = r.walFsync.Snapshot()
	if r.trace != nil {
		for i := range r.trace.stages {
			s.Stages[i] = r.trace.stages[i].Snapshot()
		}
		s.SpansRecorded = r.trace.ring.Recorded()
	}
	s.Counters = make(map[string]int64, numCounters)
	for i := 0; i < numCounters; i++ {
		s.Counters[counterNames[i]] = r.counters[i].Load()
	}
	r.mu.Lock()
	s.Gauges = make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	s.CounterLags = make([]CounterLag, 0, len(r.lags))
	for _, l := range r.lags {
		s.CounterLags = append(s.CounterLags, l)
	}
	r.mu.Unlock()
	if s.BatchSize.Count > 0 {
		// Derived gauges so exposition (and CI's batched smoke) can
		// assert coalescing without digging into histogram buckets.
		s.Gauges[GaugeNetFlushes] = float64(s.BatchSize.Count)
		s.Gauges[GaugeNetBatchMeanSize] = s.BatchSize.Mean()
	}
	sort.Slice(s.CounterLags, func(i, j int) bool {
		if s.CounterLags[i].Part != s.CounterLags[j].Part {
			return s.CounterLags[i].Part < s.CounterLags[j].Part
		}
		return s.CounterLags[i].Version < s.CounterLags[j].Version
	})
	s.EventsRecorded = r.events.Recorded()
	return s
}
