// Package profiling wires the standard Go profiling tools into the
// reproduction's command-line binaries: a net/http/pprof endpoint for
// live inspection of a running cluster, and file-based CPU/heap
// profiles for offline analysis with `go tool pprof`. The commands
// (threev-bench, threev-sim) register the shared flags and call Start
// once flags are parsed; everything is inert unless a flag is set.
package profiling

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the values of the shared profiling command-line flags.
type Flags struct {
	PprofAddr  string
	CPUProfile string
	MemProfile string
}

// Register installs the shared profiling flags on fs (use flag.CommandLine
// for a command's top-level flag set).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address, e.g. :6060")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
}

// Start activates whatever the flags ask for and returns a stop
// function that must run before the process exits (it finalizes the
// CPU profile and writes the heap profile). The pprof HTTP server, if
// any, keeps serving until the process dies; callers that want to
// block for scrapes should do so themselves.
func (f *Flags) Start() (stop func(), err error) {
	stop = func() {}
	if f.PprofAddr != "" {
		ln, lerr := net.Listen("tcp", f.PprofAddr)
		if lerr != nil {
			return stop, fmt.Errorf("pprof listen: %w", lerr)
		}
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers via the
			// blank import above.
			if serr := http.Serve(ln, nil); serr != nil {
				fmt.Fprintln(os.Stderr, "pprof serve:", serr)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", ln.Addr())
	}

	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
	}

	memPath := f.MemProfile
	stop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if memPath != "" {
			out, werr := os.Create(memPath)
			if werr != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", werr)
				return
			}
			defer out.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if werr := pprof.WriteHeapProfile(out); werr != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", werr)
			}
			memPath = ""
		}
	}
	return stop, nil
}
