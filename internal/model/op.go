package model

import "fmt"

// Op is a single update operation applied to one record. The 3V
// algorithm ships operations (not after-states) between versions: when
// a subtransaction must execute against both an old and a new copy of a
// data item (the "dual write" of Section 2.3), the same Op is applied
// to every version greater than or equal to the transaction's version.
//
// Commuting returns whether the operation commutes with every other
// commuting operation on the same record. Transactions whose update
// subtransactions consist solely of commuting ops form a well-behaved
// set (Definition 3.1); SetOp does not commute and may only be issued
// by non-well-behaved transactions handled by the NC3V extension
// (Section 5).
//
// Inverse returns a compensating operation such that applying op then
// op.Inverse() (in any order relative to other commuting ops) leaves
// the record as if op had never been applied. Compensation (Section
// 3.2) relies on inverses of commuting ops also being commuting ops, so
// a compensating subtransaction is an ordinary member of the
// transaction tree and arrival order does not matter. Ops without a
// well-defined inverse (SetOp) return nil; such ops are rolled back via
// the NC3V undo log instead.
type Op interface {
	Apply(*Record)
	Commuting() bool
	Inverse() Op
	fmt.Stringer
}

// AddOp adds Delta to the named summary field. It commutes with every
// AddOp and AppendOp; its inverse subtracts the same delta.
type AddOp struct {
	Field string
	Delta int64
}

// Apply implements Op.
func (o AddOp) Apply(r *Record) { r.Fields[o.Field] += o.Delta }

// Commuting implements Op.
func (o AddOp) Commuting() bool { return true }

// Inverse implements Op.
func (o AddOp) Inverse() Op { return AddOp{Field: o.Field, Delta: -o.Delta} }

// String implements fmt.Stringer.
func (o AddOp) String() string { return fmt.Sprintf("add(%s,%+d)", o.Field, o.Delta) }

// AppendOp inserts a tuple into the record's log — the "record a new
// observation" half of a data recording update (Section 6). Appends
// commute because the log is interpreted as a multiset; its inverse
// removes the same tuple.
type AppendOp struct {
	T Tuple
}

// Apply implements Op.
func (o AppendOp) Apply(r *Record) { r.Log = append(r.Log, o.T) }

// Commuting implements Op.
func (o AppendOp) Commuting() bool { return true }

// Inverse implements Op.
func (o AppendOp) Inverse() Op { return RemoveOp{T: o.T} }

// String implements fmt.Stringer.
func (o AppendOp) String() string {
	return fmt.Sprintf("append(%s part %d/%d %s=%d)", o.T.Txn, o.T.Part, o.T.Total, o.T.Attr, o.T.Amount)
}

// RemoveOp removes one occurrence of an identical tuple from the log.
// It exists solely as the inverse of AppendOp for compensation; if the
// tuple is not present (the compensator overtook the original on the
// network) the removal is remembered as a "pending removal" encoded by
// appending a negated marker — but because the 3V transport delivers
// each subtransaction exactly once and compensators are sent only for
// children that were actually spawned, the simpler semantics below
// (remove if present, otherwise append a tombstone that annihilates the
// late append) keeps compensation order-insensitive.
type RemoveOp struct {
	T Tuple
}

// Apply implements Op. Removal scans the log for an identical tuple; if
// found it is deleted, otherwise a tombstone (the tuple with negated
// Total) is appended, which a later identical AppendOp will annihilate.
// Deletion shifts elements in place, so the record must own its log
// first when a ShareClone snapshot aliases it (see Record.ownLog).
func (o RemoveOp) Apply(r *Record) {
	for i, t := range r.Log {
		if t == o.T {
			r.ownLog()
			r.Log = append(r.Log[:i], r.Log[i+1:]...)
			return
		}
	}
	tomb := o.T
	tomb.Total = -tomb.Total
	r.Log = append(r.Log, tomb)
}

// Commuting implements Op.
func (o RemoveOp) Commuting() bool { return true }

// Inverse implements Op.
func (o RemoveOp) Inverse() Op { return AppendOp{T: o.T} }

// String implements fmt.Stringer.
func (o RemoveOp) String() string {
	return fmt.Sprintf("remove(%s part %d/%d)", o.T.Txn, o.T.Part, o.T.Total)
}

// annihilate is invoked by AppendOp.Apply indirectly: appends check for
// a matching tombstone first. To keep Apply implementations independent
// we instead normalize at read time; NormalizeLog removes
// tombstone/tuple pairs. Auditors call it before checking visibility.
func NormalizeLog(log []Tuple) []Tuple {
	// Fast path: tombstones only exist where compensation ran, which is
	// rare; without any, the log is already normal and is returned
	// as-is (callers treat the result as read-only), allocating nothing.
	// The auditors call NormalizeLog per read, so this is hot.
	clean := true
	for _, t := range log {
		if t.Total < 0 {
			clean = false
			break
		}
	}
	if clean {
		return log
	}
	out := make([]Tuple, 0, len(log))
	tombs := make(map[Tuple]int)
	for _, t := range log {
		if t.Total < 0 {
			pos := t
			pos.Total = -pos.Total
			tombs[pos]++
			continue
		}
		out = append(out, t)
	}
	if len(tombs) == 0 {
		return out
	}
	final := out[:0]
	for _, t := range out {
		if tombs[t] > 0 {
			tombs[t]--
			continue
		}
		final = append(final, t)
	}
	return final
}

// SetOp overwrites the named summary field with an absolute value. It
// does not commute (two Sets of different values yield order-dependent
// states, and Set does not commute with Add), so it may only appear in
// non-well-behaved transactions executed under the NC3V protocol with
// two-phase locking and two-phase commit. Its inverse is nil: NC3V
// rolls back via a before-image undo log rather than compensation.
type SetOp struct {
	Field string
	Value int64
}

// Apply implements Op.
func (o SetOp) Apply(r *Record) { r.Fields[o.Field] = o.Value }

// Commuting implements Op.
func (o SetOp) Commuting() bool { return false }

// Inverse implements Op. SetOp has no state-independent inverse.
func (o SetOp) Inverse() Op { return nil }

// String implements fmt.Stringer.
func (o SetOp) String() string { return fmt.Sprintf("set(%s,%d)", o.Field, o.Value) }

// ScaleOp multiplies the named summary field by a rational factor
// Num/Den (integer arithmetic, rounding toward zero). Like SetOp it
// does not commute with AddOp and is reserved for NC3V transactions
// (e.g. applying a percentage surcharge or discount to a balance).
type ScaleOp struct {
	Field string
	Num   int64
	Den   int64
}

// Apply implements Op.
func (o ScaleOp) Apply(r *Record) {
	if o.Den != 0 {
		r.Fields[o.Field] = r.Fields[o.Field] * o.Num / o.Den
	}
}

// Commuting implements Op.
func (o ScaleOp) Commuting() bool { return false }

// Inverse implements Op. Integer scaling loses information; NC3V rolls
// back via before-images.
func (o ScaleOp) Inverse() Op { return nil }

// String implements fmt.Stringer.
func (o ScaleOp) String() string { return fmt.Sprintf("scale(%s,%d/%d)", o.Field, o.Num, o.Den) }
