package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeIDString(t *testing.T) {
	cases := map[NodeID]string{0: "p", 1: "q", 2: "s", 3: "n3", 7: "n7"}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("NodeID(%d).String() = %q, want %q", int(id), got, want)
		}
	}
}

func TestTxnIDRoundTrip(t *testing.T) {
	for _, origin := range []NodeID{0, 1, 2, 15, 255} {
		for _, seq := range []uint64{0, 1, 42, 1 << 47} {
			id := MakeTxnID(origin, seq)
			if id.Origin() != origin {
				t.Errorf("MakeTxnID(%v,%d).Origin() = %v", origin, seq, id.Origin())
			}
			if id.Seq() != seq {
				t.Errorf("MakeTxnID(%v,%d).Seq() = %d", origin, seq, id.Seq())
			}
		}
	}
}

func TestTxnIDUniqueAcrossNodes(t *testing.T) {
	seen := make(map[TxnID]bool)
	for origin := NodeID(0); origin < 8; origin++ {
		for seq := uint64(0); seq < 100; seq++ {
			id := MakeTxnID(origin, seq)
			if seen[id] {
				t.Fatalf("duplicate TxnID %v for origin=%v seq=%d", id, origin, seq)
			}
			seen[id] = true
		}
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := NewRecord()
	AddOp{Field: "bal", Delta: 10}.Apply(r)
	AppendOp{T: Tuple{Txn: 1, Part: 1, Total: 2, Attr: "x", Amount: 5}}.Apply(r)
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatalf("clone not equal: %v vs %v", r, c)
	}
	AddOp{Field: "bal", Delta: 99}.Apply(c)
	AppendOp{T: Tuple{Txn: 2, Part: 1, Total: 1}}.Apply(c)
	if r.Field("bal") != 10 {
		t.Errorf("mutating clone changed original field: %d", r.Field("bal"))
	}
	if len(r.Log) != 1 {
		t.Errorf("mutating clone changed original log: %d entries", len(r.Log))
	}
}

func TestRecordEqualIgnoresLogOrder(t *testing.T) {
	a, b := NewRecord(), NewRecord()
	t1 := Tuple{Txn: 1, Part: 1, Total: 2, Attr: "x", Amount: 3}
	t2 := Tuple{Txn: 2, Part: 2, Total: 2, Attr: "y", Amount: 4}
	AppendOp{T: t1}.Apply(a)
	AppendOp{T: t2}.Apply(a)
	AppendOp{T: t2}.Apply(b)
	AppendOp{T: t1}.Apply(b)
	if !a.Equal(b) {
		t.Errorf("records with same tuple multiset in different order should be equal")
	}
}

func TestRemoveOpTombstoneAnnihilation(t *testing.T) {
	// Compensator overtakes the original append: remove first, then
	// append. After normalization the log must be empty.
	r := NewRecord()
	tu := Tuple{Txn: 7, Part: 1, Total: 3, Attr: "a", Amount: 1}
	RemoveOp{T: tu}.Apply(r)
	AppendOp{T: tu}.Apply(r)
	if got := NormalizeLog(r.Log); len(got) != 0 {
		t.Errorf("normalized log after remove-then-append = %v, want empty", got)
	}
	empty := NewRecord()
	if !r.Equal(empty) {
		t.Errorf("record with annihilated pair should equal empty record")
	}
}

func TestRemoveOpRemovesPresent(t *testing.T) {
	r := NewRecord()
	tu := Tuple{Txn: 7, Part: 1, Total: 3}
	AppendOp{T: tu}.Apply(r)
	RemoveOp{T: tu}.Apply(r)
	if len(r.Log) != 0 {
		t.Errorf("log after append-then-remove = %v, want empty", r.Log)
	}
}

// randomCommutingOps builds a slice of random commuting ops.
func randomCommutingOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		switch rng.Intn(3) {
		case 0:
			ops[i] = AddOp{Field: string(rune('a' + rng.Intn(4))), Delta: int64(rng.Intn(21) - 10)}
		case 1:
			ops[i] = AppendOp{T: Tuple{
				Txn: TxnID(rng.Intn(50)), Part: rng.Intn(3) + 1, Total: 3,
				Attr: "f", Amount: int64(rng.Intn(100)),
			}}
		default:
			ops[i] = AddOp{Field: "bal", Delta: int64(rng.Intn(5))}
		}
	}
	return ops
}

func applyAll(ops []Op) *Record {
	r := NewRecord()
	for _, op := range ops {
		op.Apply(r)
	}
	return r
}

// TestPropertyCommutingOpsOrderIndependent is the heart of the paper's
// premise: applying any permutation of a set of commuting ops yields
// the same record state (property-based, testing/quick).
func TestPropertyCommutingOpsOrderIndependent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomCommutingOps(rng, int(n%16)+2)
		base := applyAll(ops)
		perm := rng.Perm(len(ops))
		shuffled := make([]Op, len(ops))
		for i, p := range perm {
			shuffled[i] = ops[p]
		}
		return base.Equal(applyAll(shuffled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInverseCancels: op then inverse restores the record, even
// with unrelated commuting ops interleaved (the compensation guarantee
// of Section 3.2).
func TestPropertyInverseCancels(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		noise := randomCommutingOps(rng, int(n%8)+1)
		target := randomCommutingOps(rng, 1)[0]
		// base: just the noise.
		base := applyAll(noise)
		// with: noise[0..k) + target + noise[k..] + inverse.
		k := rng.Intn(len(noise) + 1)
		var seq []Op
		seq = append(seq, noise[:k]...)
		seq = append(seq, target)
		seq = append(seq, noise[k:]...)
		seq = append(seq, target.Inverse())
		return base.Equal(applyAll(seq))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySetOpDoesNotCommuteWithAdd(t *testing.T) {
	// Sanity: the one non-commuting op really is order-dependent, so
	// tests exercising NC3V exercise a real conflict.
	a, b := NewRecord(), NewRecord()
	set := SetOp{Field: "bal", Value: 100}
	add := AddOp{Field: "bal", Delta: 1}
	set.Apply(a)
	add.Apply(a)
	add.Apply(b)
	set.Apply(b)
	if a.Field("bal") == b.Field("bal") {
		t.Fatalf("set/add should not commute, both orders gave %d", a.Field("bal"))
	}
	if set.Commuting() {
		t.Error("SetOp.Commuting() = true, want false")
	}
	if (ScaleOp{Field: "x", Num: 2, Den: 1}).Commuting() {
		t.Error("ScaleOp.Commuting() = true, want false")
	}
}

func TestScaleOp(t *testing.T) {
	r := NewRecord()
	r.Fields["bal"] = 100
	ScaleOp{Field: "bal", Num: 110, Den: 100}.Apply(r)
	if got := r.Field("bal"); got != 110 {
		t.Errorf("scale 110/100 of 100 = %d, want 110", got)
	}
	ScaleOp{Field: "bal", Num: 1, Den: 0}.Apply(r) // division guard: no-op
	if got := r.Field("bal"); got != 110 {
		t.Errorf("scale with zero denominator changed value to %d", got)
	}
}

func exampleTree() *TxnSpec {
	// Mirrors transaction T1 of Figure 1: a front-end root (node 0)
	// fanning out writes to radiology (node 1) and pediatric (node 2).
	return &TxnSpec{
		Label: "T1",
		Root: &SubtxnSpec{
			Node: 0,
			Children: []*SubtxnSpec{
				{Node: 1, Updates: []KeyOp{{Key: "x1", Op: AddOp{Field: "due", Delta: 30}}}},
				{Node: 2, Updates: []KeyOp{{Key: "x2", Op: AddOp{Field: "due", Delta: 70}}}},
			},
		},
	}
}

func TestTxnSpecClassification(t *testing.T) {
	up := exampleTree()
	if up.ReadOnly() {
		t.Error("update tree classified read-only")
	}
	if !up.WellBehaved() {
		t.Error("commuting update tree classified non-well-behaved")
	}
	rd := &TxnSpec{Label: "T2", Root: &SubtxnSpec{
		Node: 0,
		Children: []*SubtxnSpec{
			{Node: 1, Reads: []string{"x1"}},
			{Node: 2, Reads: []string{"x2"}},
		},
	}}
	if !rd.ReadOnly() {
		t.Error("read tree classified as update")
	}
	nc := &TxnSpec{Label: "K", NonCommuting: true, Root: &SubtxnSpec{
		Node: 1, Updates: []KeyOp{{Key: "x1", Op: SetOp{Field: "due", Value: 0}}},
	}}
	if nc.WellBehaved() {
		t.Error("SetOp tree classified well-behaved")
	}
	if err := nc.Validate(); err != nil {
		t.Errorf("valid NC spec rejected: %v", err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []*TxnSpec{
		{Label: "nilroot"},
		{Label: "nilop", Root: &SubtxnSpec{Node: 0, Updates: []KeyOp{{Key: "k"}}}},
		{Label: "emptykey", Root: &SubtxnSpec{Node: 0, Updates: []KeyOp{{Key: "", Op: AddOp{Field: "f", Delta: 1}}}}},
		{Label: "emptyread", Root: &SubtxnSpec{Node: 0, Reads: []string{""}}},
		{Label: "negnode", Root: &SubtxnSpec{Node: -1}},
		{Label: "unmarked-nc", Root: &SubtxnSpec{Node: 0, Updates: []KeyOp{{Key: "k", Op: SetOp{Field: "f", Value: 1}}}}},
		{Label: "nc-readonly", NonCommuting: true, Root: &SubtxnSpec{Node: 0, Reads: []string{"k"}}},
		{Label: "badchild", Root: &SubtxnSpec{Node: 0, Children: []*SubtxnSpec{{Node: 0, Updates: []KeyOp{{Key: "k"}}}}}},
	}
	for _, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid spec", spec.Label)
		}
	}
	if err := exampleTree().Validate(); err != nil {
		t.Errorf("Validate rejected valid spec: %v", err)
	}
}

func TestCompensatorInvertsTree(t *testing.T) {
	spec := exampleTree()
	comp := spec.Root.Compensator()
	// Apply original then compensator op-by-op per node; final state of
	// each touched record must be the empty state.
	records := map[string]*Record{"x1": NewRecord(), "x2": NewRecord()}
	var apply func(s *SubtxnSpec)
	apply = func(s *SubtxnSpec) {
		for _, u := range s.Updates {
			u.Op.Apply(records[u.Key])
		}
		for _, c := range s.Children {
			apply(c)
		}
	}
	apply(spec.Root)
	apply(comp)
	for k, r := range records {
		if !r.Equal(NewRecord()) {
			t.Errorf("record %s after compensation = %v, want empty", k, r)
		}
	}
}

func TestCompensatorPanicsOnNonInvertible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compensator of SetOp did not panic")
		}
	}()
	(&SubtxnSpec{Node: 0, Updates: []KeyOp{{Key: "k", Op: SetOp{Field: "f", Value: 1}}}}).Compensator()
}

func TestNodesAndCount(t *testing.T) {
	spec := exampleTree()
	nodes := spec.Nodes()
	want := []NodeID{0, 1, 2}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", nodes, want)
		}
	}
	if got := spec.CountSubtxns(); got != 3 {
		t.Errorf("CountSubtxns() = %d, want 3", got)
	}
	// Revisiting a node counts once in Nodes but twice in CountSubtxns.
	revisit := &TxnSpec{Root: &SubtxnSpec{Node: 1, Children: []*SubtxnSpec{
		{Node: 0, Children: []*SubtxnSpec{{Node: 1}}},
	}}}
	if got := len(revisit.Nodes()); got != 2 {
		t.Errorf("revisit Nodes() has %d entries, want 2", got)
	}
	if got := revisit.CountSubtxns(); got != 3 {
		t.Errorf("revisit CountSubtxns() = %d, want 3", got)
	}
}

func TestStringRenderings(t *testing.T) {
	spec := exampleTree()
	s := spec.String()
	for _, want := range []string{"T1", "@p", "@q", "@s", "add(due,+30)"} {
		if !contains(s, want) {
			t.Errorf("TxnSpec.String() = %q, missing %q", s, want)
		}
	}
	r := NewRecord()
	r.Fields["b"] = 2
	r.Fields["a"] = 1
	if got := r.String(); got != "{a=1 b=2 |log|=0}" {
		t.Errorf("Record.String() = %q", got)
	}
	id := MakeTxnID(1, 9)
	if got := id.String(); got != "tq.9" {
		t.Errorf("TxnID.String() = %q, want tq.9", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
