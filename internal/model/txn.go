package model

import (
	"fmt"
	"strings"
)

// KeyOp binds an update operation to the local key it targets.
type KeyOp struct {
	Key string
	Op  Op
}

// SubtxnSpec describes the work one subtransaction performs at one node
// in the tree model of transactions (Mohan et al., R*; Section 2.1 of
// the paper): read some local items, update some local items, then send
// child subtransactions to other nodes (possibly revisiting nodes
// already visited) and commit locally. A transaction is a root
// SubtxnSpec; its descendants are partially ordered below it.
type SubtxnSpec struct {
	// Node is the site this subtransaction executes on.
	Node NodeID
	// Reads lists local keys whose current (per the transaction's
	// version) record is read. Read results are reported to the
	// transaction's observer.
	Reads []string
	// Updates lists local update operations. Empty for subtransactions
	// of read-only transactions.
	Updates []KeyOp
	// Children are subtransactions sent to other nodes after the local
	// work completes. The paper's model sends them before the local
	// commit; request counters are incremented before each send.
	Children []*SubtxnSpec
	// Abort, if true, makes this subtransaction abort after performing
	// its local work and sending its children: it rolls back its local
	// effects and sends compensating subtransactions for every child it
	// spawned (Section 3.2). Used for fault-injection in tests and
	// experiment E10.
	Abort bool
}

// TxnSpec is a complete global transaction: a root subtransaction plus
// metadata used by the drivers and auditors.
type TxnSpec struct {
	Root *SubtxnSpec
	// NonCommuting marks a non-well-behaved transaction that must be
	// executed under the NC3V protocol (two-phase locking plus global
	// two-phase commit, Section 5). Transactions containing any
	// non-commuting Op must set this.
	NonCommuting bool
	// Label is an optional human-readable tag ("i", "j", "x", "y" in the
	// paper's Table 1) used by traces and tests.
	Label string
}

// ReadOnly reports whether the whole tree performs no updates, i.e. the
// transaction belongs to the read set R rather than the update set U.
func (t *TxnSpec) ReadOnly() bool { return t.Root.readOnly() }

func (s *SubtxnSpec) readOnly() bool {
	if len(s.Updates) > 0 {
		return false
	}
	for _, c := range s.Children {
		if !c.readOnly() {
			return false
		}
	}
	return true
}

// WellBehaved reports whether every update operation in the tree
// commutes, i.e. the transaction may run under plain 3V without locks.
func (t *TxnSpec) WellBehaved() bool { return t.Root.wellBehaved() }

func (s *SubtxnSpec) wellBehaved() bool {
	for _, u := range s.Updates {
		if !u.Op.Commuting() {
			return false
		}
	}
	for _, c := range s.Children {
		if !c.wellBehaved() {
			return false
		}
	}
	return true
}

// Validate checks structural sanity of the spec: non-nil root, no nil
// children or ops, and that a transaction containing non-commuting ops
// is marked NonCommuting. It returns the first problem found.
func (t *TxnSpec) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("model: transaction %q has nil root", t.Label)
	}
	if err := t.Root.validate(); err != nil {
		return fmt.Errorf("model: transaction %q: %w", t.Label, err)
	}
	if !t.NonCommuting && !t.WellBehaved() {
		return fmt.Errorf("model: transaction %q contains non-commuting ops but is not marked NonCommuting", t.Label)
	}
	if t.NonCommuting && t.ReadOnly() {
		return fmt.Errorf("model: read-only transaction %q must not be marked NonCommuting", t.Label)
	}
	return nil
}

func (s *SubtxnSpec) validate() error {
	if s == nil {
		return fmt.Errorf("nil subtransaction")
	}
	if s.Node < 0 {
		return fmt.Errorf("subtransaction on negative node %d", s.Node)
	}
	for i, u := range s.Updates {
		if u.Op == nil {
			return fmt.Errorf("nil op at update %d on node %v", i, s.Node)
		}
		if u.Key == "" {
			return fmt.Errorf("empty key at update %d on node %v", i, s.Node)
		}
	}
	for _, r := range s.Reads {
		if r == "" {
			return fmt.Errorf("empty read key on node %v", s.Node)
		}
	}
	for _, c := range s.Children {
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Compensator returns a subtransaction spec that undoes this
// subtransaction's updates and, recursively, its descendants'. Per
// Section 3.2 compensating subtransactions are ordinary members of the
// transaction tree (same version id, same counter discipline); because
// the inverses of commuting ops also commute, the database state is
// restored regardless of the order compensators interleave with other
// transactions. Reads are dropped (compensating a read is a no-op).
// Compensator panics if any update lacks an inverse — callers must not
// compensate non-commuting transactions (NC3V aborts via 2PC instead).
func (s *SubtxnSpec) Compensator() *SubtxnSpec {
	c := &SubtxnSpec{Node: s.Node}
	for _, u := range s.Updates {
		inv := u.Op.Inverse()
		if inv == nil {
			panic(fmt.Sprintf("model: op %v on %q has no inverse; cannot compensate", u.Op, u.Key))
		}
		c.Updates = append(c.Updates, KeyOp{Key: u.Key, Op: inv})
	}
	for _, child := range s.Children {
		c.Children = append(c.Children, child.Compensator())
	}
	return c
}

// Nodes returns the set of nodes the tree touches, in ascending order.
func (t *TxnSpec) Nodes() []NodeID {
	seen := make(map[NodeID]bool)
	t.Root.collectNodes(seen)
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *SubtxnSpec) collectNodes(seen map[NodeID]bool) {
	seen[s.Node] = true
	for _, c := range s.Children {
		c.collectNodes(seen)
	}
}

// CountSubtxns returns the number of subtransactions in the tree
// (including the root).
func (t *TxnSpec) CountSubtxns() int { return t.Root.count() }

func (s *SubtxnSpec) count() int {
	n := 1
	for _, c := range s.Children {
		n += c.count()
	}
	return n
}

// String renders the tree compactly for traces and test failures.
func (t *TxnSpec) String() string {
	var b strings.Builder
	if t.Label != "" {
		b.WriteString(t.Label)
	} else {
		b.WriteString("txn")
	}
	if t.NonCommuting {
		b.WriteString("!nc")
	}
	t.Root.render(&b)
	return b.String()
}

func (s *SubtxnSpec) render(b *strings.Builder) {
	fmt.Fprintf(b, "[@%v", s.Node)
	for _, r := range s.Reads {
		fmt.Fprintf(b, " r(%s)", r)
	}
	for _, u := range s.Updates {
		fmt.Fprintf(b, " w(%s:%v)", u.Key, u.Op)
	}
	if s.Abort {
		b.WriteString(" ABORT")
	}
	for _, c := range s.Children {
		c.render(b)
	}
	b.WriteByte(']')
}

// ReadResult is one read observation reported back to the transaction's
// observer: the key, the node it lives on, the version actually read
// (the maximum existing version not exceeding the transaction version),
// and a deep copy of the record.
type ReadResult struct {
	Node        NodeID
	Key         string
	VersionRead Version
	Record      *Record
}
