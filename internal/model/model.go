// Package model defines the transaction model of the 3V reproduction:
// data items, the commuting operation algebra, versioned records, and
// transaction trees (a root subtransaction plus partially ordered
// descendant subtransactions), following Section 3 of Jagadish, Mumick
// and Rabinovich, "Scalable Versioning in Distributed Databases with
// Commuting Updates" (ICDE 1997).
//
// The model is shared by the 3V core, all baselines, the workload
// generators and the verification auditors, so it deliberately contains
// no protocol logic.
package model

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a database node (site) in the distributed system.
// Nodes are numbered 0..N-1 within a cluster.
type NodeID int

// String implements fmt.Stringer using the paper's site naming where
// possible (p, q, s for the first three sites), falling back to n<i>.
func (n NodeID) String() string {
	names := [...]string{"p", "q", "s"}
	if int(n) >= 0 && int(n) < len(names) {
		return names[n]
	}
	return fmt.Sprintf("n%d", int(n))
}

// Version is a data/transaction version number. The paper assumes
// version numbers increase monotonically with time (Section 4); real
// implementations may recycle three distinct numbers, but monotonic
// uint64 versions never wrap in practice and keep the exposition (and
// the invariant checks) simple.
type Version uint64

// TxnID uniquely identifies a global transaction. IDs are minted by the
// node that received the root subtransaction: the high bits carry the
// node id and the low bits a node-local sequence number, so no global
// coordination is needed to allocate them.
type TxnID uint64

// MakeTxnID builds a TxnID from the originating node and its local
// sequence number.
func MakeTxnID(origin NodeID, seq uint64) TxnID {
	return TxnID(uint64(origin)<<48 | (seq & (1<<48 - 1)))
}

// Origin returns the node that minted this transaction id.
func (t TxnID) Origin() NodeID { return NodeID(uint64(t) >> 48) }

// Seq returns the node-local sequence number of this transaction id.
func (t TxnID) Seq() uint64 { return uint64(t) & (1<<48 - 1) }

// String implements fmt.Stringer.
func (t TxnID) String() string {
	return fmt.Sprintf("t%s.%d", t.Origin(), t.Seq())
}

// Tuple is one entry of a record's append-only log (the "chronicle" of a
// data recording system, Section 6 of the paper: recorded observations
// are inserted and summaries are updated). Tuples carry enough identity
// for the verification auditors to check atomic visibility: Txn is the
// writing transaction, Part/Total say "this is part Part of a
// transaction that writes Total parts in total", and TxnVersion is the
// version the writing transaction executed in.
type Tuple struct {
	Txn        TxnID
	Part       int
	Total      int
	Attr       string
	Amount     int64
	TxnVersion Version
}

// Record is the unit of versioned storage: a set of named summary
// fields (account balances, items sold, ...) plus the append-only tuple
// log of recorded observations. Updates in data recording systems
// insert tuples and adjust summaries; both operations commute.
type Record struct {
	Fields map[string]int64
	Log    []Tuple

	// aliased (accessed atomically) marks that Log's backing array may
	// be shared with a ShareClone snapshot: any in-place mutation of
	// existing log elements must call ownLog first. Plain appends are
	// always safe — snapshots are cut to len == cap, so an append either
	// reallocates or writes beyond every snapshot's view.
	aliased int32
}

// NewRecord returns an empty record ready for use.
func NewRecord() *Record {
	return &Record{Fields: make(map[string]int64)}
}

// Clone returns a deep copy of the record. Storage uses Clone for
// copy-on-update when a new version of an item is materialized and for
// every ReadMax, so it sits on the protocol's read hot path:
// maps.Clone hits the runtime's bulk map-copy (no per-key rehashing)
// and an empty log clones to nil rather than allocating.
func (r *Record) Clone() *Record {
	c := &Record{Fields: maps.Clone(r.Fields)}
	if c.Fields == nil {
		c.Fields = make(map[string]int64)
	}
	if len(r.Log) > 0 {
		// Leave append headroom: a materialized version's very next
		// recorded tuple would otherwise reallocate (and re-copy) the
		// whole log, which dominated allocation profiles under load.
		c.Log = make([]Tuple, len(r.Log), len(r.Log)+len(r.Log)/4+4)
		copy(c.Log, r.Log)
	}
	return c
}

// ShareClone returns a read snapshot that deep-copies the summary
// fields but shares the tuple log's backing array with the source,
// trimmed to len == cap. The sharing is safe against concurrent
// appends to the source (they reallocate or land beyond the snapshot's
// view) and against in-place log edits (RemoveOp copies first when the
// record is marked aliased). Storage uses it for ReadMax, where a full
// deep copy per point read dominated allocation profiles.
func (r *Record) ShareClone() *Record {
	c := &Record{Fields: maps.Clone(r.Fields)}
	if c.Fields == nil {
		c.Fields = make(map[string]int64)
	}
	if n := len(r.Log); n > 0 {
		c.Log = r.Log[:n:n]
		c.aliased = 1
		// The source may be shared by concurrent readers under a read
		// lock; the flag write must not race another ShareClone's.
		atomic.StoreInt32(&r.aliased, 1)
	}
	return c
}

// ownLog makes the record the sole owner of its log's backing array.
// Mutating ops that edit existing elements in place call it before
// writing; callers hold whatever lock guards the record.
func (r *Record) ownLog() {
	if atomic.LoadInt32(&r.aliased) == 0 {
		return
	}
	l := make([]Tuple, len(r.Log), len(r.Log)+4)
	copy(l, r.Log)
	r.Log = l
	atomic.StoreInt32(&r.aliased, 0)
}

// SizeBytes approximates the in-memory footprint of the record; the
// storage engine uses it to account for bytes copied on version
// materialization (experiment E8).
func (r *Record) SizeBytes() int64 {
	n := int64(0)
	for k := range r.Fields {
		n += int64(len(k)) + 8
	}
	n += int64(len(r.Log)) * 48
	return n
}

// Field returns the named summary field (zero if absent).
func (r *Record) Field(name string) int64 { return r.Fields[name] }

// Equal reports whether two records have identical fields and logs,
// treating the log as a multiset (commuting updates may append tuples
// in any order; two records are "the same state" if they carry the same
// tuples regardless of arrival order). Logs are normalized first so a
// compensation tombstone plus its late-arriving append compare equal to
// their absence.
// A field stored as zero equals an absent field (an Add cancelled by
// its inverse leaves a zero entry that means "never touched").
func (r *Record) Equal(o *Record) bool {
	for k, v := range r.Fields {
		if o.Fields[k] != v {
			return false
		}
	}
	for k, v := range o.Fields {
		if r.Fields[k] != v {
			return false
		}
	}
	return tupleMultiset(NormalizeLog(r.Log)) == tupleMultiset(NormalizeLog(o.Log))
}

func tupleMultiset(log []Tuple) string {
	keys := make([]string, len(log))
	for i, t := range log {
		keys[i] = fmt.Sprintf("%d/%d/%d/%s/%d/%d", t.Txn, t.Part, t.Total, t.Attr, t.Amount, t.TxnVersion)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// String implements fmt.Stringer, rendering fields in sorted order.
func (r *Record) String() string {
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, r.Fields[k])
	}
	fmt.Fprintf(&b, " |log|=%d}", len(r.Log))
	return b.String()
}
