package model

import (
	"math/rand"
	"testing"
)

// FuzzCommutingOpsOrderIndependent is the native-fuzzing companion to
// the testing/quick property: any random batch of commuting ops applied
// in two different orders must yield equal records. Run the seeds with
// `go test`; explore with `go test -fuzz=FuzzCommutingOps`.
func FuzzCommutingOpsOrderIndependent(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(42), uint8(9))
	f.Add(int64(-7), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		ops := randomCommutingOps(rng, int(n%24)+2)
		base := applyAll(ops)
		perm := rng.Perm(len(ops))
		shuffled := make([]Op, len(ops))
		for i, p := range perm {
			shuffled[i] = ops[p]
		}
		if !base.Equal(applyAll(shuffled)) {
			t.Fatalf("order dependence: %v", ops)
		}
	})
}

// FuzzNormalizeLog checks that log normalization is idempotent, never
// yields tombstones, and preserves non-compensated tuples, for
// arbitrary interleavings of appends and removals.
func FuzzNormalizeLog(f *testing.F) {
	f.Add(int64(3), uint8(6))
	f.Add(int64(99), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecord()
		type key struct {
			txn  TxnID
			part int
		}
		balance := make(map[key]int) // appends minus removals per tuple identity
		for i := 0; i < int(n%20)+1; i++ {
			tu := Tuple{
				Txn:   TxnID(rng.Intn(4)),
				Part:  rng.Intn(2) + 1,
				Total: 2,
				Attr:  "x",
			}
			k := key{tu.Txn, tu.Part}
			if rng.Intn(2) == 0 {
				AppendOp{T: tu}.Apply(r)
				balance[k]++
			} else {
				RemoveOp{T: tu}.Apply(r)
				balance[k]--
			}
		}
		norm := NormalizeLog(r.Log)
		for _, tu := range norm {
			if tu.Total < 0 {
				t.Fatalf("tombstone survived normalization: %+v", tu)
			}
		}
		// Idempotence.
		again := NormalizeLog(norm)
		if tupleMultiset(again) != tupleMultiset(norm) {
			t.Fatal("NormalizeLog not idempotent")
		}
		// Every tuple identity with positive balance appears that many
		// times; negative balances (remove overtook append and no append
		// followed) leave tombstones that normalization cancels against
		// nothing — they are filtered, so identities with balance <= 0
		// must be absent.
		counts := make(map[key]int)
		for _, tu := range norm {
			counts[key{tu.Txn, tu.Part}]++
		}
		for k, want := range balance {
			got := counts[k]
			if want > 0 && got != want {
				t.Fatalf("identity %+v: %d tuples after normalization, want %d", k, got, want)
			}
			if want <= 0 && got != 0 {
				t.Fatalf("identity %+v: %d tuples survived with balance %d", k, got, want)
			}
		}
	})
}
