// Package harness drives workloads against the 3V system and the
// baselines, measures latency/throughput/staleness/anomaly-rate, and
// renders the result tables of EXPERIMENTS.md. It is shared by
// cmd/threev-bench and the root-level testing.B benchmarks.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Histo is a simple latency distribution (all samples retained).
type Histo struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histo) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// N returns the sample count.
func (h *Histo) N() int { return len(h.samples) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1); zero if empty.
func (h *Histo) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	i := int(q * float64(len(h.samples)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(h.samples) {
		i = len(h.samples) - 1
	}
	return h.samples[i]
}

// Max returns the largest sample.
func (h *Histo) Max() time.Duration { return h.Quantile(1) }

// Mean returns the average sample.
func (h *Histo) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// RunConfig parameterizes one measured run.
type RunConfig struct {
	// Txns is the number of transactions to issue (closed loop).
	Txns int
	// Concurrency is the number of in-flight transactions; 0 means 8.
	Concurrency int
	// Batch groups submissions: each worker takes up to Batch
	// transactions from the stream and launches them in one call when
	// the system supports batched admission (baseline.BatchSystem), so
	// Concurrency×Batch transactions are in flight and the hot path
	// amortizes per-message costs across the group. Each member's
	// latency is measured from the group's submit time (the client-fair
	// accounting: the whole group was handed over at once). <= 1, or a
	// system without BatchSystem, submits one at a time.
	Batch int
	// Timeout bounds each transaction wait; 0 means 30s.
	Timeout time.Duration
	// AdvanceInterval runs System.Advance on this period in the
	// background (0 = only the final advance).
	AdvanceInterval time.Duration
	// FinalAdvance runs Advance twice after the load drains so every
	// update is published before the verification reads.
	FinalAdvance bool
	// Gen supplies the transaction stream (required).
	Gen *workload.Generator
	// Preload, when set, is called for every (node, key) the generator
	// will touch, before the run starts.
	Preload func(node model.NodeID, key string)
}

// RunResult is the measurement of one run.
type RunResult struct {
	System   string
	Duration time.Duration
	// Counts by outcome and kind.
	Issued, Completed, TimedOut int
	Updates, Reads, NCs         int
	// Latency distributions.
	LatAll, LatUpdate, LatRead Histo
	// Anomalies found by the atomic-visibility audit over all group
	// reads, and the audited read count.
	Anomalies    int
	AuditedReads int
	// Staleness: for each read, how many committed updates of its group
	// it was missing at completion (in updates-behind).
	StalenessMean float64
	StalenessMax  int64
	// Advances is how many Advance calls ran during the load window.
	Advances int
}

// Throughput returns completed transactions per second.
func (r RunResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Duration.Seconds()
}

// AnomalyRate returns anomalies per audited read.
func (r RunResult) AnomalyRate() float64 {
	if r.AuditedReads == 0 {
		return 0
	}
	return float64(r.Anomalies) / float64(r.AuditedReads)
}

// Run drives cfg.Txns transactions from the generator through sys with
// the configured concurrency, measuring as it goes.
func Run(sys baseline.System, cfg RunConfig) RunResult {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	// Pre-generate the stream (the generator is not concurrency-safe
	// and pre-generation keeps runs reproducible across systems).
	txns := make([]workload.Txn, cfg.Txns)
	for i := range txns {
		txns[i] = cfg.Gen.Next()
	}
	if cfg.Preload != nil {
		for _, p := range cfg.Gen.PreloadSpecs() {
			cfg.Preload(p.Node, p.Key)
		}
	}

	res := RunResult{System: sys.Name()}
	var mu sync.Mutex // guards res histograms and counters

	// committedSeq[group] tracks the highest update sequence whose
	// transaction has completed — ground truth for staleness.
	committedSeq := make([]atomic.Int64, maxGroup(txns)+1)
	// Reads are audited as they complete (each read's atomic-visibility
	// check is independent), so the run never retains the full cloned
	// record set of every read — at batched-mode throughputs that
	// retention grew the live heap enough for GC mark time to dominate
	// tail latency.
	var auditedReads, anomalies int
	var staleSum, staleN, staleMax int64

	// Background advancement.
	var advances atomic.Int64
	stopAdv := make(chan struct{})
	var advWG sync.WaitGroup
	if cfg.AdvanceInterval > 0 {
		advWG.Add(1)
		go func() {
			defer advWG.Done()
			t := time.NewTicker(cfg.AdvanceInterval)
			defer t.Stop()
			for {
				select {
				case <-stopAdv:
					return
				case <-t.C:
					sys.Advance()
					advances.Add(1)
				}
			}
		}()
	}

	work := make(chan workload.Txn)
	var wg sync.WaitGroup
	start := time.Now()
	bs, hasBatch := sys.(baseline.BatchSystem)
	batch := cfg.Batch
	if batch < 1 || !hasBatch {
		batch = 1
	}
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// complete waits out one submitted transaction and folds its
			// measurement in; t0 is its (individual or group) submit time.
			complete := func(txn workload.Txn, h baseline.Handle, t0 time.Time) {
				ok := h.WaitTimeout(cfg.Timeout)
				lat := time.Since(t0)
				mu.Lock()
				res.Issued++
				if !ok {
					res.TimedOut++
					mu.Unlock()
					return
				}
				res.Completed++
				res.LatAll.Add(lat)
				switch txn.Kind {
				case workload.KindUpdate:
					res.Updates++
					res.LatUpdate.Add(lat)
				case workload.KindRead:
					res.Reads++
					res.LatRead.Add(lat)
				case workload.KindNonCommuting:
					res.NCs++
					res.LatUpdate.Add(lat)
				}
				mu.Unlock()

				switch txn.Kind {
				case workload.KindUpdate:
					if !txn.Aborting {
						bumpMax(&committedSeq[txn.Group], txn.Seq)
					}
				case workload.KindRead:
					reads := h.Reads()
					observed := minCount(reads)
					truth := committedSeq[txn.Group].Load()
					lag := truth - observed
					if lag < 0 {
						lag = 0
					}
					mu.Lock()
					staleSum += lag
					staleN++
					if lag > staleMax {
						staleMax = lag
					}
					n := auditedReads
					auditedReads++
					mu.Unlock()
					anoms := verify.AuditAtomicVisibility([]verify.GroupRead{{
						Txn:     model.MakeTxnID(model.NodeID(1<<14), uint64(n)),
						Results: reads,
					}})
					if len(anoms) > 0 {
						mu.Lock()
						anomalies += len(anoms)
						mu.Unlock()
					}
				}
			}

			if batch <= 1 {
				for txn := range work {
					t0 := time.Now()
					h, err := sys.Submit(txn.Spec)
					if err != nil {
						continue
					}
					complete(txn, h, t0)
				}
				return
			}
			// Group submit: fill a group of up to batch transactions from
			// the stream, launch it in one call, then wait out every
			// member. The channel drains the remainder when it closes.
			group := make([]workload.Txn, 0, batch)
			specs := make([]*model.TxnSpec, 0, batch)
			for {
				txn, ok := <-work
				if !ok {
					return
				}
				group = append(group[:0], txn)
				for len(group) < batch {
					next, more := <-work
					if !more {
						break
					}
					group = append(group, next)
				}
				specs = specs[:0]
				for _, t := range group {
					specs = append(specs, t.Spec)
				}
				t0 := time.Now()
				hs, err := bs.SubmitBatch(specs)
				if err != nil {
					continue
				}
				for i, h := range hs {
					complete(group[i], h, t0)
				}
			}
		}()
	}
	for _, txn := range txns {
		work <- txn
	}
	close(work)
	wg.Wait()
	res.Duration = time.Since(start)
	close(stopAdv)
	advWG.Wait()
	res.Advances = int(advances.Load())

	if cfg.FinalAdvance {
		sys.Advance()
		sys.Advance()
	}

	res.Anomalies = anomalies
	res.AuditedReads = auditedReads
	if staleN > 0 {
		res.StalenessMean = float64(staleSum) / float64(staleN)
	}
	res.StalenessMax = staleMax
	return res
}

func maxGroup(txns []workload.Txn) int {
	max := 0
	for _, t := range txns {
		if t.Group > max {
			max = t.Group
		}
	}
	return max
}

func bumpMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// minCount returns the smallest "count" summary across the read's
// results — the number of group updates fully visible to the reader.
func minCount(reads []model.ReadResult) int64 {
	min := int64(-1)
	for _, r := range reads {
		if r.Record == nil {
			continue
		}
		c := r.Record.Field("count")
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Table renders aligned experiment tables.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String implements fmt.Stringer with tab-aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// Ms formats a duration in fractional milliseconds.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }
